// Versioned plain-struct requests of the nanocache public API (schema v4).
//
// One Request wraps exactly one of the operation payloads, selected by
// `kind`.  All numeric fields use the paper's reporting units (pS, mW, pJ,
// Angstrom); the facade converts to the library's SI-internal units at the
// boundary.
//
// Schema v2 factors the fields every operation repeated in v1 into two
// shared structs: GridSpec (which cache: level + size) and DelayConstraint
// (the timing target(s) an operation answers).  Schema v3 adds the
// design-space axes: OrganizationSpec (associativity + banks),
// PowerGatingSpec (sleep states under a performance-loss budget) and a
// `node_nm` technology-node selector — all defaulting to the paper's fixed
// 65 nm organization, so v1/v2 requests normalize losslessly.  Schema v4
// adds the `exactness` routing selector on eval/optimize: whether the
// answer must come from the exact engine, must come from the precomputed
// surrogate tables, or (the default) may come from either.  The JSONL
// wire encoding — including the v1–v3 compatibility parse — is documented
// in docs/API.md and implemented by src/api/batch_io.{h,cc}.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "nanocache/types.h"
#include "nanocache/version.h"

namespace nanocache::api {

/// Which operation a Request carries.
enum class RequestKind {
  kEval,          ///< evaluate one cache at one uniform knob pair
  kOptimize,      ///< Section 4: minimize leakage under a delay constraint
  kSweep,         ///< Section 4/5 sweeps (scheme ladder, L1/L2 size sweeps)
  kTupleMenu,     ///< Section 5 / Figure 2: the (Tox, Vth) tuple problem
  kCapabilities,  ///< discovery: schema versions, grid bounds, schemes
};

inline const char* request_kind_name(RequestKind kind) {
  switch (kind) {
    case RequestKind::kEval: return "eval";
    case RequestKind::kOptimize: return "optimize";
    case RequestKind::kSweep: return "sweep";
    case RequestKind::kTupleMenu: return "tuple_menu";
    case RequestKind::kCapabilities: return "capabilities";
  }
  return "eval";
}

/// Which cache model an operation targets: level + size.  Shared by every
/// request kind that names a cache (v2 replaces the per-request
/// level/size_bytes field pairs of v1).
struct GridSpec {
  Level level = Level::kL1;
  /// 0 = the service's configured default size for `level`.
  std::uint64_t size_bytes = 0;
};

/// A timing constraint: one target, a target ladder, or both empty for the
/// operation's configured default.  Shared by optimize (single target),
/// sweeps (target or ladder override) and the tuple problem (target
/// ladder); v2 replaces v1's delay_ps / amat_ps / delay_targets_ps /
/// amat_targets_ps spellings.
struct DelayConstraint {
  double target_ps = 0.0;          ///< single target (0 = default)
  std::vector<double> targets_ps;  ///< explicit ladder (empty = default)
};

/// v3: explicit cache organization.  All-default (associativity 0, banks 0)
/// selects the paper's fixed organization and routes through the exact v2
/// code path; anything else engages the extended split-tag model with tag
/// arrays and way comparators as additional optimizable components.
struct OrganizationSpec {
  /// 0 = service default; 1/2/4/8 = explicit set-associativity; -1 = fully
  /// associative (spelled "full" on the wire).
  int associativity = 0;
  /// 0 = service default (single bank); otherwise a power of two <= 8.
  /// An explicit 1 normalizes to 0 at parse (same organization).
  std::uint32_t banks = 0;

  bool is_default() const { return associativity == 0 && banks == 0; }
};

/// v3: per-domain power gating.  When enabled, every component option also
/// exists in a sleep state (leakage scaled down, wake latency added); the
/// optimizer may use sleep states as long as the resulting access time
/// stays within `perf_loss_budget` of the original delay constraint.
struct PowerGatingSpec {
  bool enabled = false;
  /// Relative constraint relaxation in [0, 1]: the effective delay
  /// constraint becomes target * (1 + perf_loss_budget).
  double perf_loss_budget = 0.0;
};

/// v4: how an eval/optimize answer may be produced.
enum class Exactness {
  /// Serve from the surrogate tables when they cover the request, fall back
  /// to the exact engine otherwise.  The wire default; v1–v3 requests
  /// normalize to it.
  kAuto,
  /// Always run the exact engine, even when a surrogate table covers the
  /// request.  Pinning is part of the request's structural identity, so
  /// exact answers never share a cache entry with surrogate answers.
  kExact,
  /// Require a surrogate answer; a request no table covers fails with a
  /// typed kConfig error instead of silently costing an exact evaluation.
  kSurrogate,
};

inline const char* exactness_name(Exactness e) {
  switch (e) {
    case Exactness::kAuto: return "auto";
    case Exactness::kExact: return "exact";
    case Exactness::kSurrogate: return "surrogate";
  }
  return "auto";
}

/// Evaluate one cache model at a uniform (Vth, Tox) assignment and report
/// per-component and total delay/leakage/dynamic-energy.
struct EvalRequest {
  GridSpec target{Level::kL1, 16 * 1024};
  Knobs knobs{};
  /// v3: organization override (default = the paper's fixed organization).
  OrganizationSpec organization{};
  /// v3: technology node in nm (0 = the configured default technology;
  /// explicit 90/65/45/32/22 select the named node menu).
  int node_nm = 0;
  /// v4: surrogate-vs-exact routing (auto = either, preferring surrogate).
  Exactness exactness = Exactness::kAuto;
};

/// Minimize a single cache's leakage under an access-time constraint with
/// one of the paper's three assignment schemes.
struct OptimizeRequest {
  GridSpec target{Level::kL1, 16 * 1024};
  SchemeId scheme = SchemeId::kII;
  /// `target_ps` is the access-time constraint in pS; `targets_ps` unused.
  DelayConstraint delay{1400.0, {}};
  /// v3: organization override (default = the paper's fixed organization).
  OrganizationSpec organization{};
  /// v3: sleep-state power gating under a performance-loss budget.
  PowerGatingSpec power_gating{};
  /// v3: technology node in nm (0 = the configured default technology).
  int node_nm = 0;
  /// v4: surrogate-vs-exact routing (auto = either, preferring surrogate).
  Exactness exactness = Exactness::kAuto;
};

/// Which sweep a SweepRequest runs.
enum class SweepKind {
  kSchemes,  ///< scheme I/II/III comparison across a delay-target ladder
  kL1Sizes,  ///< Section 5 L1 size sweep (scheme II per size)
  kL2Sizes,  ///< Section 5 L2 size sweep (scheme per `l2_scheme`)
};

inline const char* sweep_kind_name(SweepKind kind) {
  switch (kind) {
    case SweepKind::kSchemes: return "schemes";
    case SweepKind::kL1Sizes: return "l1_sizes";
    case SweepKind::kL2Sizes: return "l2_sizes";
  }
  return "schemes";
}

struct SweepRequest {
  SweepKind kind = SweepKind::kL2Sizes;

  /// kSchemes only: the cache being compared (size 0 = the service's
  /// configured L1 size).
  GridSpec target{Level::kL1, 0};
  int ladder_steps = 9;

  /// kSchemes: `targets_ps` overrides the generated delay ladder when
  /// non-empty.  Size sweeps: `target_ps` is the AMAT constraint in pS
  /// (0 = the "squeeze" default derived from the configuration, as the
  /// paper's Section 5 tables use).
  DelayConstraint delay{0.0, {}};

  /// L2 sweep only: the per-size assignment scheme (the paper studies
  /// III = one pair and II = array/periphery split).
  SchemeId l2_scheme = SchemeId::kIII;

  /// v3: technology node in nm (0 = the configured default technology).
  int node_nm = 0;
};

/// The (Tox, Vth) tuple problem for one menu cardinality: best system
/// design per AMAT target, optionally with the energy/AMAT frontier.
struct TupleMenuRequest {
  int num_tox = 2;
  int num_vth = 2;
  /// `targets_ps` are the AMAT targets in pS (empty = the paper's Figure 2
  /// targets); `target_ps` unused.
  DelayConstraint delay{0.0, {}};
  bool include_frontier = false;
  int frontier_max_points = 96;
};

/// Discovery request: no parameters.  The response reports what this
/// service build and configuration can do (schema versions, knob bounds,
/// configured grid, schemes, thread/cache configuration).
struct CapabilitiesRequest {};

/// One versioned request.  Exactly one payload (selected by `kind`) is
/// meaningful; the others stay default-constructed.
struct Request {
  int schema_version = kSchemaVersion;
  /// Caller-chosen correlation id, echoed verbatim on the response.  Not
  /// part of the request's structural identity: requests differing only in
  /// id deduplicate to one evaluation in a batch.
  std::string id;
  RequestKind kind = RequestKind::kEval;

  EvalRequest eval{};
  OptimizeRequest optimize{};
  SweepRequest sweep{};
  TupleMenuRequest tuple_menu{};
  CapabilitiesRequest capabilities{};
};

}  // namespace nanocache::api
