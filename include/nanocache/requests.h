// Versioned plain-struct requests of the nanocache public API.
//
// One Request wraps exactly one of the four operation payloads, selected by
// `kind`.  All numeric fields use the paper's reporting units (pS, mW, pJ,
// Angstrom); the facade converts to the library's SI-internal units at the
// boundary.  The JSONL wire encoding of these structs is documented in
// docs/API.md and implemented by src/api/batch_io.{h,cc}.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "nanocache/types.h"
#include "nanocache/version.h"

namespace nanocache::api {

/// Which operation a Request carries.
enum class RequestKind {
  kEval,       ///< evaluate one cache at one uniform knob pair
  kOptimize,   ///< Section 4: minimize leakage under a delay constraint
  kSweep,      ///< Section 4/5 sweeps (scheme ladder, L1/L2 size sweeps)
  kTupleMenu,  ///< Section 5 / Figure 2: the (Tox, Vth) tuple problem
};

inline const char* request_kind_name(RequestKind kind) {
  switch (kind) {
    case RequestKind::kEval: return "eval";
    case RequestKind::kOptimize: return "optimize";
    case RequestKind::kSweep: return "sweep";
    case RequestKind::kTupleMenu: return "tuple_menu";
  }
  return "eval";
}

/// Evaluate one cache model at a uniform (Vth, Tox) assignment and report
/// per-component and total delay/leakage/dynamic-energy.
struct EvalRequest {
  Level level = Level::kL1;
  std::uint64_t size_bytes = 16 * 1024;
  Knobs knobs{};
};

/// Minimize a single cache's leakage under an access-time constraint with
/// one of the paper's three assignment schemes.
struct OptimizeRequest {
  Level level = Level::kL1;
  std::uint64_t size_bytes = 16 * 1024;
  SchemeId scheme = SchemeId::kII;
  double delay_ps = 1400.0;
};

/// Which sweep a SweepRequest runs.
enum class SweepKind {
  kSchemes,  ///< scheme I/II/III comparison across a delay-target ladder
  kL1Sizes,  ///< Section 5 L1 size sweep (scheme II per size)
  kL2Sizes,  ///< Section 5 L2 size sweep (scheme per `l2_scheme`)
};

inline const char* sweep_kind_name(SweepKind kind) {
  switch (kind) {
    case SweepKind::kSchemes: return "schemes";
    case SweepKind::kL1Sizes: return "l1_sizes";
    case SweepKind::kL2Sizes: return "l2_sizes";
  }
  return "schemes";
}

struct SweepRequest {
  SweepKind kind = SweepKind::kL2Sizes;

  /// kSchemes only: the cache size being compared (0 = the service's
  /// configured L1 size) and the delay ladder.  When `delay_targets_ps` is
  /// non-empty it overrides the generated ladder.
  std::uint64_t cache_size_bytes = 0;
  int ladder_steps = 9;
  std::vector<double> delay_targets_ps;

  /// Size sweeps only: the AMAT constraint in pS (0 = the "squeeze"
  /// default derived from the configuration, as the paper's Section 5
  /// tables use) and, for the L2 sweep, the per-size assignment scheme
  /// (the paper studies III = one pair and II = array/periphery split).
  double amat_ps = 0.0;
  SchemeId l2_scheme = SchemeId::kIII;
};

/// The (Tox, Vth) tuple problem for one menu cardinality: best system
/// design per AMAT target, optionally with the energy/AMAT frontier.
struct TupleMenuRequest {
  int num_tox = 2;
  int num_vth = 2;
  /// AMAT targets in pS; empty = the paper's Figure 2 targets.
  std::vector<double> amat_targets_ps;
  bool include_frontier = false;
  int frontier_max_points = 96;
};

/// One versioned request.  Exactly one payload (selected by `kind`) is
/// meaningful; the others stay default-constructed.
struct Request {
  int schema_version = kSchemaVersion;
  /// Caller-chosen correlation id, echoed verbatim on the response.  Not
  /// part of the request's structural identity: requests differing only in
  /// id deduplicate to one evaluation in a batch.
  std::string id;
  RequestKind kind = RequestKind::kEval;

  EvalRequest eval{};
  OptimizeRequest optimize{};
  SweepRequest sweep{};
  TupleMenuRequest tuple_menu{};
};

}  // namespace nanocache::api
