// Public API versioning.
//
// Two independent version numbers govern the facade:
//
//  * kSchemaVersion — the wire schema of the request/response structs and
//    their JSONL encoding.  Every request carries its schema_version; the
//    service rejects versions it does not understand with a typed config
//    error instead of guessing.  Bumped only on incompatible changes
//    (renamed/retyped fields); additive optional fields do NOT bump it.
//  * kApiVersion* — the compiled C++ surface under include/nanocache/.
//    Follows the project version.
//
// See docs/API.md for the full versioning policy.
#pragma once

namespace nanocache::api {

/// Wire-schema version of the request/response types in requests.h /
/// responses.h and their JSONL encoding.  v2 factored the per-request
/// cache/constraint fields into the shared GridSpec and DelayConstraint
/// structs; v3 added the design-space axes (nested `organization`
/// associativity/banks, `power_gating` with a performance-loss budget, and
/// `node_nm` technology selection); v4 added the `exactness` routing field
/// on eval/optimize requests (exact | surrogate | auto) together with the
/// `served_by` / `max_error` response annotations of the surrogate serving
/// tier.  v1–v3 requests are still accepted and normalized to v4 on parse —
/// every new field defaults to the fixed 65 nm organization the paper
/// studies and to `exactness: auto`, so old clients get byte-identical
/// responses modulo the echoed schema_version (see docs/API.md for the
/// field mapping).
inline constexpr int kSchemaVersion = 4;

/// Oldest wire-schema version the parser still accepts (normalizing to
/// kSchemaVersion).
inline constexpr int kMinSchemaVersion = 1;

inline constexpr int kApiVersionMajor = 1;
inline constexpr int kApiVersionMinor = 0;

}  // namespace nanocache::api
