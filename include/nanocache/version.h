// Public API versioning.
//
// Two independent version numbers govern the facade:
//
//  * kSchemaVersion — the wire schema of the request/response structs and
//    their JSONL encoding.  Every request carries its schema_version; the
//    service rejects versions it does not understand with a typed config
//    error instead of guessing.  Bumped only on incompatible changes
//    (renamed/retyped fields); additive optional fields do NOT bump it.
//  * kApiVersion* — the compiled C++ surface under include/nanocache/.
//    Follows the project version.
//
// See docs/API.md for the full versioning policy.
#pragma once

namespace nanocache::api {

/// Wire-schema version of the request/response types in requests.h /
/// responses.h and their JSONL encoding.  v2 factored the per-request
/// cache/constraint fields into the shared GridSpec and DelayConstraint
/// structs; v1 requests are still accepted and normalized to v2 on parse
/// (see docs/API.md for the field mapping).
inline constexpr int kSchemaVersion = 2;

/// Oldest wire-schema version the parser still accepts (normalizing to
/// kSchemaVersion).
inline constexpr int kMinSchemaVersion = 1;

inline constexpr int kApiVersionMajor = 1;
inline constexpr int kApiVersionMinor = 0;

}  // namespace nanocache::api
