// Public API versioning.
//
// Two independent version numbers govern the facade:
//
//  * kSchemaVersion — the wire schema of the request/response structs and
//    their JSONL encoding.  Every request carries its schema_version; the
//    service rejects versions it does not understand with a typed config
//    error instead of guessing.  Bumped only on incompatible changes
//    (renamed/retyped fields); additive optional fields do NOT bump it.
//  * kApiVersion* — the compiled C++ surface under include/nanocache/.
//    Follows the project version.
//
// See docs/API.md for the full versioning policy.
#pragma once

namespace nanocache::api {

/// Wire-schema version of the request/response types in requests.h /
/// responses.h and their JSONL encoding.
inline constexpr int kSchemaVersion = 1;

inline constexpr int kApiVersionMajor = 1;
inline constexpr int kApiVersionMinor = 0;

}  // namespace nanocache::api
