// Versioned plain-struct responses of the nanocache public API.
//
// Responses mirror requests one-to-one: Response::kind names the payload
// that is filled in.  Units are the paper's reporting units (pS, mW, pJ,
// um^2).  Infeasibility is data, not an error: an optimize/sweep cell that
// cannot meet its constraint reports feasible=false plus the violated
// constraint, while transport/config failures surface as Response::error.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "nanocache/requests.h"
#include "nanocache/types.h"
#include "nanocache/version.h"

namespace nanocache::api {

/// Metrics of one cache component at one knob pair.
struct ComponentEval {
  std::string component;  ///< "cell-array", "decoder", ...
  Knobs knobs{};
  double delay_ps = 0.0;
  double leakage_mw = 0.0;
  double dynamic_pj = 0.0;
};

struct EvalResponse {
  std::string organization;  ///< human-readable cache organization
  double access_time_ps = 0.0;
  double leakage_mw = 0.0;
  double leakage_sub_mw = 0.0;   ///< subthreshold share
  double leakage_gate_mw = 0.0;  ///< gate-tunnelling share
  double dynamic_pj = 0.0;
  double area_um2 = 0.0;
  std::vector<ComponentEval> components;  ///< the paper's four components
};

/// Result of one single-cache scheme optimization.  Shared by
/// OptimizeResponse and the sweep rows.
struct OptimizedCache {
  bool feasible = false;
  std::string infeasible_reason;  ///< violated constraint when infeasible
  double leakage_mw = 0.0;
  double access_time_ps = 0.0;
  double dynamic_pj = 0.0;
  std::vector<ComponentKnobs> assignment;  ///< per-component knob choice
};

struct OptimizeResponse {
  OptimizedCache result{};
};

/// One delay target of the scheme-comparison sweep.
struct SchemesRow {
  double delay_target_ps = 0.0;
  OptimizedCache scheme1{};
  OptimizedCache scheme2{};
  OptimizedCache scheme3{};
};

/// One size point of the Section 5 L1/L2 size sweeps.
struct SizeRow {
  std::uint64_t size_bytes = 0;
  bool feasible = false;
  std::string infeasible_reason;
  double miss_rate = 0.0;         ///< local miss rate of the swept level
  double amat_ps = 0.0;           ///< achieved AMAT
  double level_leakage_mw = 0.0;  ///< swept level only
  double total_leakage_mw = 0.0;  ///< both cache levels
  OptimizedCache result{};        ///< swept level's optimized assignment
};

struct SweepResponse {
  SweepKind kind = SweepKind::kSchemes;
  /// Resolved AMAT constraint (size sweeps; 0 for kSchemes).
  double amat_target_ps = 0.0;
  std::vector<SchemesRow> schemes;  ///< kSchemes only
  std::vector<SizeRow> sizes;       ///< size sweeps only
};

/// One optimized two-level system design of the tuple problem.
struct MenuDesign {
  /// The AMAT constraint this design answers (0 on frontier points).
  double amat_target_ps = 0.0;
  bool feasible = false;
  double amat_ps = 0.0;
  double energy_pj = 0.0;  ///< total energy per access
  double leakage_mw = 0.0;
  std::vector<double> tox_menu_a;  ///< chosen process menu
  std::vector<double> vth_menu_v;
  std::vector<ComponentKnobs> l1_assignment;
  std::vector<ComponentKnobs> l2_assignment;
};

struct TupleMenuResponse {
  int num_tox = 0;
  int num_vth = 0;
  std::string label;        ///< e.g. "2 Tox + 3 Vth"
  double min_amat_ps = 0.0; ///< feasibility bound of the menu spec
  std::vector<MenuDesign> targets;   ///< one per requested AMAT target
  std::vector<MenuDesign> frontier;  ///< when include_frontier was set
};

/// What this service build + configuration can do.  Everything here is
/// configuration-derived and cheap; the payload is NOT covered by the
/// thread-count byte-identity contract (the resolved `threads` value
/// reflects the caller's pool configuration by design), so keep
/// capabilities lines out of fixtures that diff across thread counts.
struct CapabilitiesResponse {
  std::vector<int> schema_versions;  ///< accepted request schema versions
  int api_version_major = 0;
  int api_version_minor = 0;

  /// The paper's calibrated knob bounds: grid overrides must stay inside.
  double vth_min_v = 0.0;
  double vth_max_v = 0.0;
  double tox_min_a = 0.0;
  double tox_max_a = 0.0;

  /// The configured knob grid the optimizers search.
  std::vector<double> grid_vth_v;
  std::vector<double> grid_tox_a;

  std::vector<std::string> schemes;  ///< "I", "II", "III"
  std::vector<std::string> sweeps;   ///< "schemes", "l1_sizes", "l2_sizes"

  std::uint64_t l1_size_bytes = 0;  ///< configured default sizes
  std::uint64_t l2_size_bytes = 0;

  int threads = 0;             ///< resolved worker-pool width
  std::string search_mode;     ///< "pruned" or "exhaustive"
  bool fitted_models = false;  ///< optimizers use the fitted closed forms
  bool disk_cache = false;     ///< persistent result cache enabled
  std::string cache_dir;       ///< its directory (empty when disabled)

  /// v3 design-space knobs: explicit organization overrides accepted by
  /// eval/optimize requests.
  std::vector<int> organization_associativities;  ///< {1, 2, 4, 8}
  bool organization_fully_associative = false;    ///< "full" accepted
  std::uint32_t organization_max_banks = 0;       ///< power of two <= this

  /// v3 power gating: the build's sleep-state model constants and the
  /// accepted budget range.
  bool power_gating_supported = false;
  double power_gating_sleep_factor = 0.0;  ///< sleep-state leakage multiplier
  double power_gating_wake_factor = 0.0;   ///< wake delay penalty multiplier
  double power_gating_max_budget = 0.0;    ///< max perf_loss_budget

  /// v3 technology menu: selectable `node_nm` values.
  std::vector<int> nodes_nm;

  /// v4 surrogate serving tier: what the loaded table set covers.  All
  /// fields stay at their defaults when no surrogate directory is
  /// configured or no usable tables were found.
  bool surrogate_loaded = false;
  int surrogate_eval_tables = 0;
  int surrogate_optimize_tables = 0;
  /// Library fingerprint the tables were precomputed against (16 hex).
  std::string surrogate_fingerprint;
  /// Caller-supplied precompute stamp (passed to `precompute --stamp`, not
  /// wall-clock, so capabilities stay deterministic).
  std::string surrogate_stamp;
  std::vector<std::uint64_t> surrogate_sizes_bytes;  ///< covered sizes
  std::vector<int> surrogate_nodes_nm;               ///< covered nodes
  std::vector<std::string> surrogate_schemes;        ///< covered schemes
  /// Worst certified per-answer error bound across all loaded tables.
  double surrogate_max_error_leakage_mw = 0.0;
  double surrogate_max_error_access_time_ps = 0.0;
  double surrogate_max_error_dynamic_pj = 0.0;
};

/// v4: which engine produced an eval/optimize answer.
enum class ServedBy {
  kExact,      ///< the structural/fitted model (wire default; omitted)
  kSurrogate,  ///< precomputed table + interpolation, `max_error` certified
};

inline const char* served_by_name(ServedBy s) {
  switch (s) {
    case ServedBy::kExact: return "exact";
    case ServedBy::kSurrogate: return "surrogate";
  }
  return "exact";
}

/// v4: certified absolute error bounds of a surrogate answer, in the
/// paper's reporting units.  The exact engine's answer for the same request
/// is guaranteed to lie within these bounds of the served values
/// (docs/MODELING.md §13 describes the certification).
struct SurrogateErrorBounds {
  double leakage_mw = 0.0;
  double access_time_ps = 0.0;
  double dynamic_pj = 0.0;
};

/// One versioned response.  `ok` distinguishes a served request (payload
/// filled per `kind`) from a failed one (`error` filled).
struct Response {
  int schema_version = kSchemaVersion;
  std::string id;  ///< echo of Request::id (empty when the request had none)
  RequestKind kind = RequestKind::kEval;
  bool ok = false;
  ErrorInfo error{};

  /// v4: which engine served this answer.  kExact serializes as an omitted
  /// field so pre-v4 response bytes are unchanged; kSurrogate adds
  /// `"served_by":"surrogate"` plus the `max_error` bounds.
  ServedBy served_by = ServedBy::kExact;
  SurrogateErrorBounds max_error{};

  EvalResponse eval{};
  OptimizeResponse optimize{};
  SweepResponse sweep{};
  TupleMenuResponse tuple_menu{};
  CapabilitiesResponse capabilities{};
};

/// Batch accounting: how much work the dedup + memoization layers saved.
struct BatchStats {
  std::size_t requests = 0;         ///< input stream length
  std::size_t unique_requests = 0;  ///< structurally distinct requests
  /// Requests answered by copying another request's response (request-level
  /// dedup; deterministic at any thread count).
  std::size_t request_hits = 0;
  /// Sub-evaluation memoization (model evaluations, scheme-optimizer
  /// results) during this batch.  Hit/miss split can vary with thread
  /// scheduling; hits return bitwise-identical values to the miss path, so
  /// responses never depend on it.
  std::size_t memo_hits = 0;
  std::size_t memo_misses = 0;

  /// Persistent cross-run disk-cache lookups during this batch (both zero
  /// when the service has no cache directory configured).  A disk hit
  /// returns the byte-identical response the original run serialized.
  std::size_t disk_hits = 0;
  std::size_t disk_misses = 0;

  /// Fraction of all lookups (request-level dedup + sub-evaluation memo)
  /// served from cache.
  double hit_rate() const {
    const std::size_t hits = request_hits + memo_hits;
    const std::size_t lookups = requests + memo_hits + memo_misses;
    return lookups == 0 ? 0.0
                        : static_cast<double>(hits) /
                              static_cast<double>(lookups);
  }
};

/// Responses in input order plus the batch accounting.
struct BatchResult {
  std::vector<Response> responses;
  BatchStats stats{};
};

}  // namespace nanocache::api
