// nanocache::api::Service — the stable public facade over the library.
//
// A Service owns one technology/model library (cache models, fitted closed
// forms) and one exploration engine, configured once at construction, and
// answers the versioned requests of requests.h with the responses of
// responses.h.  All internal types stay behind the pimpl: consumers compile
// against include/nanocache/ alone and link the nanocache libraries.
//
//   auto service = nanocache::api::Service::create({});
//   auto eval = (*service)->evaluate({});              // 16 KB L1 defaults
//   auto batch = (*service)->run_batch(requests);      // deduped, parallel
//
// Batched evaluation: run_batch() deduplicates structurally identical
// requests (same payload, ids ignored), fans the unique ones out over the
// process-wide worker pool, shares sub-evaluations (model evaluations and
// scheme-optimizer results) through a content-keyed memoization cache, and
// returns responses in input order.  Responses are byte-identical (after
// serialization) at any thread count: a memo hit returns the same bits the
// miss path would have computed.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "nanocache/requests.h"
#include "nanocache/responses.h"
#include "nanocache/types.h"

namespace nanocache::core {
class Explorer;  // internal engine, reachable via the documented escape hatch
}  // namespace nanocache::core

namespace nanocache::api {

/// Construction-time configuration of a Service.  Zero/empty fields mean
/// "library default" (the paper's configuration).
struct ServiceConfig {
  /// Drive optimizers from the paper's fitted closed forms instead of the
  /// structural model (the CLI's --fitted).
  bool use_fitted_models = false;
  /// Treat fitted-model degradation as a hard error instead of falling
  /// back to the structural model (the CLI's --strict).
  bool strict_degradation = false;

  /// Default cache sizes (0 = 16 KB L1 / 1 MB L2).
  std::uint64_t l1_size_bytes = 0;
  std::uint64_t l2_size_bytes = 0;

  /// Knob grid override (empty = the paper's grid: Vth 0.20..0.50 V step
  /// 0.05, Tox 10..14 A step 1).  Values must be sorted, strictly
  /// increasing, and inside the paper's knob ranges (Vth 0.2-0.5 V, Tox
  /// 10-14 A); Service::create returns a kConfig error otherwise — values
  /// are never silently clamped.
  std::vector<double> grid_vth_v;
  std::vector<double> grid_tox_a;

  /// Directory for the persistent cross-run result cache (the CLI's
  /// --cache-dir / NANOCACHE_CACHE_DIR).  Empty disables persistence.
  /// Segments are content-addressed by a fingerprint over this
  /// configuration + schema/API version + search mode, so runs with
  /// different configurations never share entries; an unusable directory is
  /// a typed kIo error from Service::create.
  std::string cache_dir;

  /// Directory holding precomputed surrogate answer tables (the CLI's
  /// --surrogate-dir / NANOCACHE_SURROGATE_DIR, written by `nanocache_cli
  /// precompute --out`).  Empty disables the surrogate tier.  Tables are
  /// bound to the same configuration fingerprint as disk-cache segments, so
  /// a model/schema/search-mode change invalidates them; a missing
  /// directory or missing/corrupt table file degrades to exact serving
  /// (never a wrong answer), while a path that exists but is not a
  /// directory is a typed kIo error from Service::create.
  std::string surrogate_dir;

  /// Use the exhaustive reference search instead of the dominance-pruned
  /// engine (the CLI's --search exhaustive).  Results are byte-identical
  /// either way; the exhaustive path exists as the differential-testing
  /// oracle and costs ~an order of magnitude more combo evaluations.
  bool exhaustive_search = false;

  /// Lock-stripe shard count of the in-process memoization cache (0 = the
  /// library default, currently 16).  Must be a power of two in [1, 4096];
  /// Service::create returns a kConfig error otherwise.  Purely a
  /// concurrency knob: results are byte-identical at any shard count.
  std::size_t memo_shards = 0;
};

/// Running counters of the service's sub-evaluation memoization cache.
struct MemoStats {
  std::size_t hits = 0;
  std::size_t misses = 0;
  std::size_t entries = 0;
};

class Service {
 public:
  /// Validate `config` and build the service.  Returns a typed kConfig
  /// error for malformed configurations (out-of-range grid values, bad
  /// sizes); never clamps silently.
  static Outcome<std::shared_ptr<Service>> create(ServiceConfig config = {});

  ~Service();
  Service(const Service&) = delete;
  Service& operator=(const Service&) = delete;

  const ServiceConfig& config() const;

  /// The library fingerprint (16 hex digits) this configuration answers
  /// under — a hash over everything that can change an answer (model
  /// configuration, grid bit patterns, schema + API version, search mode).
  /// Disk-cache segments and surrogate table files are both addressed by
  /// it; `precompute` stamps it into the tables it writes.
  const std::string& configuration_fingerprint() const;

  // --- single-request entry points ---------------------------------------
  Outcome<EvalResponse> evaluate(const EvalRequest& request) const;
  Outcome<OptimizeResponse> optimize(const OptimizeRequest& request) const;
  Outcome<SweepResponse> sweep(const SweepRequest& request) const;
  Outcome<TupleMenuResponse> tuple_menu(const TupleMenuRequest& request) const;
  /// Discovery: what this build + configuration supports (schema versions,
  /// knob bounds, grid, schemes, thread/cache configuration).  Never
  /// disk-cached, and exempt from the thread-count byte-identity contract
  /// (it reports the resolved thread count).
  Outcome<CapabilitiesResponse> capabilities(
      const CapabilitiesRequest& request) const;

  /// Serve one wrapped request: validates schema_version, dispatches on
  /// kind, and folds success or failure into a Response (never throws).
  Response serve(const Request& request) const;

  // --- batched evaluation -------------------------------------------------
  /// Serve a request stream: dedup structurally identical requests, fan
  /// unique ones out over the worker pool, emit responses in input order.
  BatchResult run_batch(const std::vector<Request>& requests) const;

  /// Cumulative sub-evaluation memoization counters (across all calls).
  MemoStats memo_stats() const;

  /// Durability barrier for the persistent cross-run disk cache: fsync the
  /// segment file (appends are flushed per entry, but only into the page
  /// cache) and return its entry count.  No-op returning 0 when no
  /// cache_dir is configured.  The server's graceful shutdown calls this
  /// so results computed while serving survive to the next run.
  std::size_t flush_disk_cache() const;

  /// Escape hatch to the internal exploration engine for reporting code
  /// (CSV export, figure rendering).  NOT part of the stable API surface:
  /// the returned type lives in src/core and may change between versions.
  const core::Explorer& explorer() const;

 private:
  Service();
  /// serve() minus the observability wrapper (span + latency histogram).
  Response serve_impl(const Request& request) const;
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace nanocache::api
