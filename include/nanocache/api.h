// Umbrella header for the nanocache public API.
#pragma once

#include "nanocache/requests.h"   // IWYU pragma: export
#include "nanocache/responses.h"  // IWYU pragma: export
#include "nanocache/service.h"    // IWYU pragma: export
#include "nanocache/types.h"      // IWYU pragma: export
#include "nanocache/version.h"    // IWYU pragma: export
