// Plain value types shared by the public request/response surface.
//
// Everything in this header is a dumb struct or enum: no internal nanocache
// headers, no model types, no exceptions from the library's internals.  The
// facade (service.h) converts internal results/errors into these types at
// the boundary, so consumers compile against include/nanocache/ alone.
#pragma once

#include <optional>
#include <stdexcept>
#include <string>
#include <utility>

namespace nanocache::api {

/// Failure taxonomy mirrored across the facade boundary.  Matches the
/// library's internal ErrorCategory one-to-one; the CLI maps these to
/// process exit codes (config=2, io=3, numeric-domain/infeasible=4,
/// internal=1).
enum class ErrorCode {
  kConfig,         ///< malformed request/configuration: fix inputs, retry
  kNumericDomain,  ///< valid request hit a numeric domain violation
  kIo,             ///< filesystem / serialization failure
  kInfeasible,     ///< well-formed request with no satisfying solution
  kInternal,       ///< library invariant violation (a bug)
};

/// Stable lower-case name ("config", "numeric-domain", "io", "infeasible",
/// "internal") used on the wire and in logs.
inline const char* error_code_name(ErrorCode code) {
  switch (code) {
    case ErrorCode::kConfig: return "config";
    case ErrorCode::kNumericDomain: return "numeric-domain";
    case ErrorCode::kIo: return "io";
    case ErrorCode::kInfeasible: return "infeasible";
    case ErrorCode::kInternal: return "internal";
  }
  return "internal";
}

/// A typed error crossing the facade boundary.
struct ErrorInfo {
  ErrorCode code = ErrorCode::kInternal;
  std::string message;
};

/// Value-or-typed-error result of every facade call.  Deliberately
/// optional-like (ok / operator bool / value), but a failed Outcome carries
/// an ErrorInfo instead of being empty.  value() on a failed outcome
/// throws std::logic_error — a caller bug, not a service failure.
template <typename T>
class Outcome {
 public:
  Outcome(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  static Outcome failure(ErrorInfo error) {
    Outcome o;
    o.error_ = std::move(error);
    return o;
  }
  static Outcome failure(ErrorCode code, std::string message) {
    return failure(ErrorInfo{code, std::move(message)});
  }

  bool ok() const { return value_.has_value(); }
  explicit operator bool() const { return ok(); }

  const T& value() const {
    if (!value_) {
      throw std::logic_error("Outcome::value() on failed outcome: " +
                             error_.message);
    }
    return *value_;
  }
  T& value() {
    if (!value_) {
      throw std::logic_error("Outcome::value() on failed outcome: " +
                             error_.message);
    }
    return *value_;
  }
  const T& operator*() const { return value(); }
  const T* operator->() const { return &value(); }

  /// Only meaningful when !ok().
  const ErrorInfo& error() const { return error_; }

 private:
  Outcome() = default;
  std::optional<T> value_;
  ErrorInfo error_{};
};

/// Cache level selector.
enum class Level {
  kL1,
  kL2,
};

inline const char* level_name(Level level) {
  return level == Level::kL2 ? "l2" : "l1";
}

/// The paper's three Vth/Tox assignment schemes (Section 4).
enum class SchemeId {
  kI,    ///< per-component pairs
  kII,   ///< array pair + shared periphery pair
  kIII,  ///< one uniform pair
};

inline const char* scheme_id_name(SchemeId scheme) {
  switch (scheme) {
    case SchemeId::kI: return "I";
    case SchemeId::kII: return "II";
    case SchemeId::kIII: return "III";
  }
  return "II";
}

/// One (Vth, Tox) knob pair.  Vth in volts, Tox in Angstrom — the units the
/// paper quotes.
struct Knobs {
  double vth_v = 0.35;
  double tox_a = 12.0;
};

/// A knob pair assigned to one named cache component.
struct ComponentKnobs {
  std::string component;  ///< "cell-array", "decoder", ...
  Knobs knobs{};
  /// v3: true when the optimizer parked this component in its power-gated
  /// sleep state (only ever set when the request enabled power gating).
  bool gated = false;
};

}  // namespace nanocache::api
