// Knob sensitivity analysis: normalized local derivatives of a component's
// leakage and delay with respect to Vth and Tox.  This quantifies the
// Figure 1 discussion — which knob is the stronger leakage lever and which
// the stronger delay lever — at any operating point, and drives the
// ablation benches.
#pragma once

#include <vector>

#include "opt/options.h"

namespace nanocache::opt {

/// Normalized (logarithmic) sensitivities at one operating point:
/// d ln(metric) / d knob, evaluated by central differences.  Units:
/// 1/V for Vth, 1/Angstrom for Tox.
struct KnobSensitivity {
  double leakage_vs_vth = 0.0;  ///< d ln(P) / d Vth   (negative)
  double leakage_vs_tox = 0.0;  ///< d ln(P) / d Tox   (negative)
  double delay_vs_vth = 0.0;    ///< d ln(Td) / d Vth  (positive)
  double delay_vs_tox = 0.0;    ///< d ln(Td) / d Tox  (positive)

  /// Leakage reduction bought per unit of delay given up, moving along one
  /// knob: |d ln P / d ln Td|.  The better leakage knob has the larger
  /// efficiency.
  double leakage_efficiency_vth() const;
  double leakage_efficiency_tox() const;
};

/// Central-difference sensitivities of one component at `at`.
/// Steps default to 10 mV / 0.1 A and are shrunk near the knob bounds.
KnobSensitivity component_sensitivity(const ComponentEvaluator& eval,
                                      cachemodel::ComponentKind kind,
                                      const tech::DeviceKnobs& at,
                                      const tech::KnobRange& range,
                                      double vth_step_v = 0.01,
                                      double tox_step_a = 0.1);

/// Whole-cache sensitivity (component metrics summed before the log).
KnobSensitivity cache_sensitivity(const ComponentEvaluator& eval,
                                  const tech::DeviceKnobs& at,
                                  const tech::KnobRange& range,
                                  double vth_step_v = 0.01,
                                  double tox_step_a = 0.1);

/// A sensitivity map over a knob grid (row-major, vth-major ordering as
/// KnobGrid::pairs).  Feeds the ablation bench's tables.
std::vector<KnobSensitivity> sensitivity_map(const ComponentEvaluator& eval,
                                             const KnobGrid& grid,
                                             const tech::KnobRange& range);

}  // namespace nanocache::opt
