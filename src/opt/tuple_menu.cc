#include "opt/tuple_menu.h"

#include <array>
#include <limits>

#include "opt/pareto.h"
#include "opt/pruned.h"
#include "util/error.h"
#include "util/metrics.h"
#include "util/parallel.h"
#include "util/trace_span.h"

namespace nanocache::opt {

using cachemodel::ComponentAssignment;
using cachemodel::ComponentKind;
using cachemodel::kAllComponents;
using cachemodel::kNumComponents;

namespace {

constexpr std::size_t kSystemComponents = 2 * kNumComponents;  // L1 + L2

/// DP state across the eight system components.
struct SysCombo {
  double wdelay_s = 0.0;   ///< AMAT-weighted delay sum
  double leakage_w = 0.0;
  double wdyn_j = 0.0;     ///< access-weighted dynamic energy
  std::array<std::uint16_t, kSystemComponents> choice{};
};

/// Strict-only weak-dominance pre-filter on one weighted option table:
/// drop an option iff another is <= in all three objectives and strictly
/// better in at least one.  Exact full ties are kept and survivor order is
/// preserved, so the DP's stable first-wins representative choice — and
/// with it every materialized design — is untouched (docs/MODELING.md §10).
std::vector<ComponentOption> prefilter_options(
    std::vector<ComponentOption> table) {
  std::vector<ComponentOption> kept;
  kept.reserve(table.size());
  for (std::size_t i = 0; i < table.size(); ++i) {
    bool dominated = false;
    for (std::size_t j = 0; j < table.size() && !dominated; ++j) {
      if (j == i) continue;
      const auto& a = table[j];
      const auto& b = table[i];
      dominated = a.delay_s <= b.delay_s && a.leakage_w <= b.leakage_w &&
                  a.dynamic_j <= b.dynamic_j &&
                  (a.delay_s < b.delay_s || a.leakage_w < b.leakage_w ||
                   a.dynamic_j < b.dynamic_j);
    }
    if (!dominated) kept.push_back(table[i]);
  }
  return kept;
}

}  // namespace

TupleMenuSolver::TupleMenuSolver(const energy::MemorySystemModel& system,
                                 KnobGrid grid)
    : system_(system), grid_(std::move(grid)) {
  grid_.validate();
}

std::vector<SystemDesignPoint> TupleMenuSolver::designs_for_menu(
    const std::vector<double>& vth_menu,
    const std::vector<double>& tox_menu) const {
  const auto pairs = menu_pairs(vth_menu, tox_menu);
  const double ml1 = system_.miss().l1;

  // Per-system-component option tables with AMAT weights:
  // L1 components contribute delay/dynamic at weight 1, L2 at weight mL1.
  std::array<std::vector<ComponentOption>, kSystemComponents> options;
  const auto l1_eval =
      [this](ComponentKind kind, const tech::DeviceKnobs& k) {
        return system_.l1().component(kind, k);
      };
  const auto l2_eval =
      [this](ComponentKind kind, const tech::DeviceKnobs& k) {
        return system_.l2().component(kind, k);
      };
  std::array<std::size_t, kSystemComponents> full_n{};
  for (ComponentKind kind : kAllComponents) {
    const auto i = static_cast<std::size_t>(kind);
    options[i] = component_options(l1_eval, kind, pairs);
    options[kNumComponents + i] = component_options(l2_eval, kind, pairs);
    for (auto& o : options[kNumComponents + i]) {
      o.delay_s *= ml1;
      o.dynamic_j *= ml1;
    }
  }
  // Dominance-prune each weighted table before the DP forms products.
  for (std::size_t i = 0; i < kSystemComponents; ++i) {
    full_n[i] = options[i].size();
    options[i] = prefilter_options(std::move(options[i]));
  }

  // Pareto-DP over the eight components.
  std::vector<SysCombo> combos{SysCombo{}};
  for (std::size_t ci = 0; ci < kSystemComponents; ++ci) {
    detail::count_combos_evaluated(combos.size() * options[ci].size());
    detail::count_combos_skipped(combos.size() *
                                 (full_n[ci] - options[ci].size()));
    std::vector<SysCombo> next;
    next.reserve(combos.size() * options[ci].size());
    for (const auto& c : combos) {
      for (std::size_t oi = 0; oi < options[ci].size(); ++oi) {
        SysCombo n = c;
        n.wdelay_s += options[ci][oi].delay_s;
        n.leakage_w += options[ci][oi].leakage_w;
        n.wdyn_j += options[ci][oi].dynamic_j;
        n.choice[ci] = static_cast<std::uint16_t>(oi);
        next.push_back(n);
      }
    }
    next = pareto_min3(
        std::move(next), [](const SysCombo& c) { return c.wdelay_s; },
        [](const SysCombo& c) { return c.leakage_w; },
        [](const SysCombo& c) { return c.wdyn_j; });
    thin_to(next, state_cap_);
    combos = std::move(next);
  }

  // Materialize design points: energy uses the achieved AMAT.
  const double mem_amat = system_.memory_amat_term_s();
  const double mem_dyn = system_.memory_dynamic_energy_j();
  const double mem_background = system_.memory().background_power_w;
  std::vector<SystemDesignPoint> designs;
  designs.reserve(combos.size());
  for (const auto& c : combos) {
    SystemDesignPoint d;
    d.amat_s = c.wdelay_s + mem_amat;
    d.leakage_w = c.leakage_w + mem_background;
    d.energy_j = c.wdyn_j + mem_dyn + d.leakage_w * d.amat_s;
    for (std::size_t i = 0; i < kNumComponents; ++i) {
      d.l1.set(static_cast<ComponentKind>(i), options[i][c.choice[i]].knobs);
      d.l2.set(static_cast<ComponentKind>(i),
               options[kNumComponents + i][c.choice[kNumComponents + i]].knobs);
    }
    d.tox_menu = tox_menu;
    d.vth_menu = vth_menu;
    designs.push_back(std::move(d));
  }
  return designs;
}

std::vector<SystemDesignPoint> TupleMenuSolver::all_designs(
    const MenuSpec& spec) const {
  NC_REQUIRE(spec.num_tox >= 1 && spec.num_vth >= 1,
             "menu cardinalities must be >= 1");
  const auto tox_menus = choose_subsets(grid_.tox_values, spec.num_tox);
  const auto vth_menus = choose_subsets(grid_.vth_values, spec.num_vth);
  // The menu enumeration is the hot axis of the Figure 2 sweep: every menu
  // runs an independent Pareto-DP, so fan the (tox, vth) menu cross
  // product over the pool and concatenate per-menu results in enumeration
  // order — identical output at any thread count.
  const std::size_t nv = vth_menus.size();
  metrics::TraceSpan span("opt.tuple_menu.all_designs");
  static auto& menus =
      metrics::Registry::instance().counter("opt.menus_enumerated");
  menus.add(tox_menus.size() * nv);
  auto per_menu = par::parallel_map(
      tox_menus.size() * nv, [&](std::size_t i) {
        return designs_for_menu(vth_menus[i % nv], tox_menus[i / nv]);
      });
  std::vector<SystemDesignPoint> all;
  for (auto& designs : per_menu) {
    all.insert(all.end(), std::make_move_iterator(designs.begin()),
               std::make_move_iterator(designs.end()));
  }
  static auto& designs_considered =
      metrics::Registry::instance().counter("opt.designs_considered");
  designs_considered.add(all.size());
  return all;
}

std::vector<SystemDesignPoint> TupleMenuSolver::frontier(
    const MenuSpec& spec, std::size_t max_points) const {
  auto all = all_designs(spec);
  auto front = pareto_min2(
      std::move(all), [](const SystemDesignPoint& d) { return d.amat_s; },
      [](const SystemDesignPoint& d) { return d.energy_j; });
  thin_to(front, max_points);
  return front;
}

std::optional<SystemDesignPoint> TupleMenuSolver::best_at(
    const MenuSpec& spec, double amat_target_s) const {
  NC_REQUIRE(amat_target_s > 0.0, "AMAT target must be positive");
  std::optional<SystemDesignPoint> best;
  for (auto& d : all_designs(spec)) {
    if (d.amat_s > amat_target_s) continue;
    if (!best || d.energy_j < best->energy_j) best = std::move(d);
  }
  return best;
}

double TupleMenuSolver::min_amat_s(const MenuSpec& spec) const {
  double best = std::numeric_limits<double>::infinity();
  for (const auto& d : all_designs(spec)) {
    best = std::min(best, d.amat_s);
  }
  return best;
}

}  // namespace nanocache::opt
