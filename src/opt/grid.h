// Discrete knob grids.  The paper's optimizer works on "discrete values
// with small step size" (Section 4); this module defines those grids and
// the subset enumeration the Section 5 tuple problem needs.
#pragma once

#include <vector>

#include "tech/device.h"

namespace nanocache::opt {

struct KnobGrid {
  std::vector<double> vth_values;
  std::vector<double> tox_values;

  /// The paper's grid: Vth 0.20..0.50 V step 0.05 (7 values),
  /// Tox 10..14 A step 1 (5 values).
  static KnobGrid paper_default();

  /// Finer grid for smooth figure sweeps (step 0.025 V / 0.5 A).
  static KnobGrid fine();

  /// Baseline of the paper's refs [1-7]: Vth is the only free knob, Tox
  /// pinned (subthreshold-era optimization).
  static KnobGrid vth_only(double tox_a = 12.0);

  /// Dual baseline: Tox free, Vth pinned.
  static KnobGrid tox_only(double vth_v = 0.35);

  /// Cartesian product as knob pairs (vth-major order).
  std::vector<tech::DeviceKnobs> pairs() const;

  /// Throws unless both axes are non-empty, sorted and strictly increasing.
  void validate() const;
};

/// All k-element subsets of `values` (preserving order).  Used to enumerate
/// the process menus of the (Tox, Vth) tuple problem.
std::vector<std::vector<double>> choose_subsets(
    const std::vector<double>& values, int k);

/// Cartesian pairs from explicit per-axis menus.
std::vector<tech::DeviceKnobs> menu_pairs(const std::vector<double>& vth_menu,
                                          const std::vector<double>& tox_menu);

}  // namespace nanocache::opt
