#include "opt/grid.h"

#include "util/error.h"
#include "util/numeric_guard.h"

namespace nanocache::opt {

namespace {
std::vector<double> linspace(double lo, double hi, int n) {
  std::vector<double> v(n);
  for (int i = 0; i < n; ++i) {
    v[i] = lo + (hi - lo) * static_cast<double>(i) / (n - 1);
  }
  return v;
}
}  // namespace

KnobGrid KnobGrid::paper_default() {
  return KnobGrid{linspace(0.20, 0.50, 7), linspace(10.0, 14.0, 5)};
}

KnobGrid KnobGrid::fine() {
  return KnobGrid{linspace(0.20, 0.50, 13), linspace(10.0, 14.0, 9)};
}

KnobGrid KnobGrid::vth_only(double tox_a) {
  return KnobGrid{linspace(0.20, 0.50, 7), {tox_a}};
}

KnobGrid KnobGrid::tox_only(double vth_v) {
  return KnobGrid{{vth_v}, linspace(10.0, 14.0, 5)};
}

std::vector<tech::DeviceKnobs> KnobGrid::pairs() const {
  validate();
  std::vector<tech::DeviceKnobs> out;
  out.reserve(vth_values.size() * tox_values.size());
  for (double vth : vth_values) {
    for (double tox : tox_values) {
      out.push_back(tech::DeviceKnobs{vth, tox});
    }
  }
  return out;
}

void KnobGrid::validate() const {
  NC_REQUIRE(!vth_values.empty() && !tox_values.empty(),
             "knob grid axes must be non-empty");
  for (double v : vth_values) num::ensure_positive(v, "knob grid Vth value");
  for (double t : tox_values) num::ensure_positive(t, "knob grid Tox value");
  for (std::size_t i = 1; i < vth_values.size(); ++i) {
    NC_REQUIRE(vth_values[i] > vth_values[i - 1],
               "vth grid must strictly increase");
  }
  for (std::size_t i = 1; i < tox_values.size(); ++i) {
    NC_REQUIRE(tox_values[i] > tox_values[i - 1],
               "tox grid must strictly increase");
  }
}

std::vector<std::vector<double>> choose_subsets(
    const std::vector<double>& values, int k) {
  NC_REQUIRE(k >= 1, "subset size must be >= 1");
  NC_REQUIRE(static_cast<std::size_t>(k) <= values.size(),
             "subset size exceeds grid size");
  std::vector<std::vector<double>> out;
  std::vector<std::size_t> idx(static_cast<std::size_t>(k));
  // Standard lexicographic combination enumeration.
  for (int i = 0; i < k; ++i) idx[static_cast<std::size_t>(i)] = i;
  while (true) {
    std::vector<double> subset;
    subset.reserve(idx.size());
    for (std::size_t i : idx) subset.push_back(values[i]);
    out.push_back(std::move(subset));
    // Advance.
    int pos = k - 1;
    while (pos >= 0 &&
           idx[static_cast<std::size_t>(pos)] ==
               values.size() - static_cast<std::size_t>(k - pos)) {
      --pos;
    }
    if (pos < 0) break;
    ++idx[static_cast<std::size_t>(pos)];
    for (int j = pos + 1; j < k; ++j) {
      idx[static_cast<std::size_t>(j)] = idx[static_cast<std::size_t>(j - 1)] + 1;
    }
  }
  return out;
}

std::vector<tech::DeviceKnobs> menu_pairs(const std::vector<double>& vth_menu,
                                          const std::vector<double>& tox_menu) {
  NC_REQUIRE(!vth_menu.empty() && !tox_menu.empty(), "menus must be non-empty");
  std::vector<tech::DeviceKnobs> out;
  out.reserve(vth_menu.size() * tox_menu.size());
  for (double vth : vth_menu) {
    for (double tox : tox_menu) {
      out.push_back(tech::DeviceKnobs{vth, tox});
    }
  }
  return out;
}

}  // namespace nanocache::opt
