// Continuous optimizer over the paper's fitted closed forms — the
// nonlinear-programming path the paper itself took (its ref [10],
// Bertsekas), as opposed to the discrete grid search.
//
// The delay constraint is the only coupling between components, so the
// problem decomposes by Lagrangian relaxation:
//
//   min  sum_i P_i(v_i, t_i)   s.t.  sum_i Td_i(v_i, t_i) <= T,  knobs in box
//
// For a multiplier lambda >= 0 the inner problem separates into per-block
// box-constrained 2-D minimizations of P_i + lambda * Td_i (solved by
// cyclic coordinate descent with golden-section line searches — the fitted
// forms are smooth and axis-unimodal); bisection on lambda then drives the
// total delay to the constraint.
#pragma once

#include "cachemodel/fitted_cache.h"
#include "opt/outcome.h"
#include "opt/schemes.h"

namespace nanocache::opt {

struct ContinuousResult {
  cachemodel::ComponentAssignment assignment;
  double leakage_w = 0.0;
  double access_time_s = 0.0;
  double lambda = 0.0;    ///< final delay-constraint multiplier
  int outer_iterations = 0;
};

/// Minimize fitted leakage subject to fitted access time <= the constraint,
/// under the given scheme's sharing structure, with knobs continuous in the
/// box `range`.  Infeasible outcomes name the violated delay constraint and
/// the fastest corner of the box (when even that corner misses the
/// constraint) or the Lagrangian search's best delay.
OptOutcome<ContinuousResult> optimize_continuous(
    const cachemodel::FittedCacheModel& fits, const tech::KnobRange& range,
    Scheme scheme, double delay_constraint_s);

}  // namespace nanocache::opt
