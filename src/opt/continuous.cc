#include "opt/continuous.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <limits>
#include <vector>

#include "util/error.h"
#include "util/numeric_guard.h"

namespace nanocache::opt {

using cachemodel::ComponentAssignment;
using cachemodel::ComponentKind;
using cachemodel::FittedCacheModel;
using cachemodel::kAllComponents;

namespace {

/// One knob-sharing block: a set of components forced to the same pair.
using Block = std::vector<ComponentKind>;

std::vector<Block> blocks_for(Scheme scheme) {
  switch (scheme) {
    case Scheme::kPerComponent:
      return {{ComponentKind::kCellArray},
              {ComponentKind::kDecoder},
              {ComponentKind::kAddressDrivers},
              {ComponentKind::kDataDrivers}};
    case Scheme::kArrayPeriphery:
      return {{ComponentKind::kCellArray},
              {ComponentKind::kDecoder, ComponentKind::kAddressDrivers,
               ComponentKind::kDataDrivers}};
    case Scheme::kUniform:
      return {{ComponentKind::kCellArray, ComponentKind::kDecoder,
               ComponentKind::kAddressDrivers, ComponentKind::kDataDrivers}};
  }
  throw Error("unknown scheme");
}

double block_leakage(const FittedCacheModel& fits, const Block& block,
                     const tech::DeviceKnobs& k) {
  double sum = 0.0;
  for (ComponentKind kind : block) sum += fits.component_leakage_w(kind, k);
  return num::ensure_finite(sum, "continuous-optimizer block leakage");
}

double block_delay(const FittedCacheModel& fits, const Block& block,
                   const tech::DeviceKnobs& k) {
  double sum = 0.0;
  for (ComponentKind kind : block) sum += fits.component_delay_s(kind, k);
  return num::ensure_finite(sum, "continuous-optimizer block delay");
}

/// Golden-section minimization of a unimodal 1-D function on [lo, hi].
template <typename F>
double golden_min(F f, double lo, double hi) {
  constexpr double kInvPhi = 0.6180339887498949;
  for (int it = 0; it < 80; ++it) {
    const double m1 = hi - kInvPhi * (hi - lo);
    const double m2 = lo + kInvPhi * (hi - lo);
    if (f(m1) < f(m2)) {
      hi = m2;
    } else {
      lo = m1;
    }
  }
  return 0.5 * (lo + hi);
}

/// Minimize leak + lambda * delay for one block over the knob box by
/// cyclic coordinate descent with golden-section line searches.
tech::DeviceKnobs minimize_block(const FittedCacheModel& fits,
                                 const Block& block, double lambda,
                                 const tech::KnobRange& range) {
  tech::DeviceKnobs k{0.5 * (range.vth_min_v + range.vth_max_v),
                      0.5 * (range.tox_min_a + range.tox_max_a)};
  auto objective = [&](const tech::DeviceKnobs& at) {
    return block_leakage(fits, block, at) +
           lambda * block_delay(fits, block, at);
  };
  for (int sweep = 0; sweep < 40; ++sweep) {
    const tech::DeviceKnobs before = k;
    k.vth_v = golden_min(
        [&](double v) {
          return objective(tech::DeviceKnobs{v, k.tox_a});
        },
        range.vth_min_v, range.vth_max_v);
    k.tox_a = golden_min(
        [&](double t) {
          return objective(tech::DeviceKnobs{k.vth_v, t});
        },
        range.tox_min_a, range.tox_max_a);
    if (std::abs(k.vth_v - before.vth_v) < 1e-9 &&
        std::abs(k.tox_a - before.tox_a) < 1e-7) {
      break;
    }
  }
  return k;
}

struct InnerSolution {
  ComponentAssignment assignment;
  double leakage_w = 0.0;
  double delay_s = 0.0;
};

InnerSolution solve_inner(const FittedCacheModel& fits,
                          const std::vector<Block>& blocks, double lambda,
                          const tech::KnobRange& range) {
  InnerSolution s;
  for (const auto& block : blocks) {
    const auto k = minimize_block(fits, block, lambda, range);
    for (ComponentKind kind : block) s.assignment.set(kind, k);
    s.leakage_w += block_leakage(fits, block, k);
    s.delay_s += block_delay(fits, block, k);
  }
  return s;
}

}  // namespace

OptOutcome<ContinuousResult> optimize_continuous(
    const FittedCacheModel& fits, const tech::KnobRange& range, Scheme scheme,
    double delay_constraint_s) {
  NC_REQUIRE(delay_constraint_s > 0.0, "delay constraint must be positive");
  num::ensure_positive(range.vth_max_v - range.vth_min_v,
                       "continuous-optimizer Vth box span");
  num::ensure_positive(range.tox_max_a - range.tox_min_a,
                       "continuous-optimizer Tox box span");
  const auto blocks = blocks_for(scheme);

  // Feasibility: the fastest corner of the box.
  double fastest = 0.0;
  for (const auto& block : blocks) {
    fastest += block_delay(fits, block,
                           tech::DeviceKnobs{range.vth_min_v,
                                             range.tox_min_a});
  }
  if (fastest > delay_constraint_s) {
    return OptOutcome<ContinuousResult>::infeasible(InfeasibleInfo{
        "access time <= delay constraint [s]", delay_constraint_s, fastest,
        "even the fastest corner of the knob box misses the constraint"});
  }

  ContinuousResult best;
  best.leakage_w = std::numeric_limits<double>::infinity();
  double best_delay_seen = std::numeric_limits<double>::infinity();
  auto consider = [&](const InnerSolution& s, double lambda, int iters) {
    best_delay_seen = std::min(best_delay_seen, s.delay_s);
    if (s.delay_s <= delay_constraint_s && s.leakage_w < best.leakage_w) {
      best.assignment = s.assignment;
      best.leakage_w = s.leakage_w;
      best.access_time_s = s.delay_s;
      best.lambda = lambda;
      best.outer_iterations = iters;
    }
  };

  // lambda = 0: pure leakage minimization (slowest useful point).
  int iters = 0;
  auto relaxed = solve_inner(fits, blocks, 0.0, range);
  ++iters;
  consider(relaxed, 0.0, iters);
  if (relaxed.delay_s <= delay_constraint_s) {
    return best;  // constraint inactive
  }

  // Find a multiplier that over-satisfies the constraint.
  double lambda_lo = 0.0;
  double lambda_hi = relaxed.leakage_w / relaxed.delay_s;  // natural scale
  for (int grow = 0; grow < 80; ++grow) {
    const auto s = solve_inner(fits, blocks, lambda_hi, range);
    ++iters;
    consider(s, lambda_hi, iters);
    if (s.delay_s <= delay_constraint_s) break;
    lambda_lo = lambda_hi;
    lambda_hi *= 4.0;
  }

  // Bisection: delay(lambda) is monotone non-increasing.
  for (int it = 0; it < 60; ++it) {
    const double lambda = 0.5 * (lambda_lo + lambda_hi);
    const auto s = solve_inner(fits, blocks, lambda, range);
    ++iters;
    consider(s, lambda, iters);
    if (s.delay_s <= delay_constraint_s) {
      lambda_hi = lambda;
    } else {
      lambda_lo = lambda;
    }
  }

  if (!std::isfinite(best.leakage_w)) {
    // The box corner was feasible but the Lagrangian search never landed a
    // feasible inner solution — report it as a typed infeasibility rather
    // than an empty result mid-sweep.
    return OptOutcome<ContinuousResult>::infeasible(InfeasibleInfo{
        "access time <= delay constraint [s]", delay_constraint_s,
        best_delay_seen,
        "Lagrangian search produced no feasible inner solution after " +
            std::to_string(iters) + " outer iterations"});
  }
  return best;
}

}  // namespace nanocache::opt
