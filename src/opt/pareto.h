// Pareto-dominance utilities (minimization on every axis).  The scheme
// optimizers and the tuple solver run Pareto-filtered dynamic programming
// over per-component option sets; these are the shared primitives.
#pragma once

#include <algorithm>
#include <cstddef>
#include <limits>
#include <utility>
#include <vector>

namespace nanocache::opt {

/// Filter `items` to the 2-objective Pareto front under (fx, fy)
/// minimization.  Stable-ish: sorted by fx ascending on return.
template <typename T, typename FX, typename FY>
std::vector<T> pareto_min2(std::vector<T> items, FX fx, FY fy) {
  std::sort(items.begin(), items.end(), [&](const T& a, const T& b) {
    if (fx(a) != fx(b)) return fx(a) < fx(b);
    return fy(a) < fy(b);
  });
  std::vector<T> front;
  double best_y = std::numeric_limits<double>::infinity();
  for (auto& item : items) {
    if (fy(item) < best_y) {
      best_y = fy(item);
      front.push_back(std::move(item));
    }
  }
  return front;
}

/// Filter to the 3-objective Pareto front under (fx, fy, fz) minimization,
/// via the sorted-sweep + 2D staircase query (O(n log n)).
template <typename T, typename FX, typename FY, typename FZ>
std::vector<T> pareto_min3(std::vector<T> items, FX fx, FY fy, FZ fz) {
  std::sort(items.begin(), items.end(), [&](const T& a, const T& b) {
    if (fx(a) != fx(b)) return fx(a) < fx(b);
    if (fy(a) != fy(b)) return fy(a) < fy(b);
    return fz(a) < fz(b);
  });
  // Staircase of mutually non-dominated (y, z) minima over all accepted
  // points: y strictly increasing, z strictly decreasing.
  std::vector<std::pair<double, double>> stair;
  std::vector<T> front;
  for (auto& item : items) {
    const double y = fy(item);
    const double z = fz(item);
    // Dominated iff some accepted point (all of which have fx <= item's fx)
    // has y' <= y and z' <= z: find the last stair entry with y' <= y.
    auto it = std::upper_bound(
        stair.begin(), stair.end(), y,
        [](double value, const std::pair<double, double>& s) {
          return value < s.first;
        });
    if (it != stair.begin() && std::prev(it)->second <= z) {
      continue;  // dominated
    }
    front.push_back(item);
    // Insert (y, z) into the staircase, removing entries it dominates.
    auto ins = std::lower_bound(
        stair.begin(), stair.end(), y,
        [](const std::pair<double, double>& s, double value) {
          return s.first < value;
        });
    ins = stair.insert(ins, {y, z});
    auto next = std::next(ins);
    while (next != stair.end() && next->second >= z) {
      next = stair.erase(next);
    }
  }
  return front;
}

/// Evenly thin `items` (assumed sorted along the sweep axis) down to at
/// most `cap` entries, always keeping the first and last.  Used to bound DP
/// state growth; a documented approximation.
template <typename T>
void thin_to(std::vector<T>& items, std::size_t cap) {
  if (cap < 2 || items.size() <= cap) return;
  std::vector<T> kept;
  kept.reserve(cap);
  const double step =
      static_cast<double>(items.size() - 1) / static_cast<double>(cap - 1);
  std::size_t last = static_cast<std::size_t>(-1);
  for (std::size_t i = 0; i < cap; ++i) {
    const auto idx = static_cast<std::size_t>(i * step + 0.5);
    if (idx != last) {
      kept.push_back(std::move(items[idx]));
      last = idx;
    }
  }
  items = std::move(kept);
}

}  // namespace nanocache::opt
