// Pareto-dominance utilities (minimization on every axis).  The scheme
// optimizers and the tuple solver run Pareto-filtered dynamic programming
// over per-component option sets; these are the shared primitives.
//
// Determinism: all sorts are stable and acceptance is first-wins, so the
// returned front (including which of several exactly-equal points
// survives) is a pure function of the input order.  Large inputs are
// pre-filtered in parallel chunks whose local fronts are concatenated in
// chunk order before the final serial pass; because every global-front
// member survives its chunk pass and the final pass re-applies the exact
// serial rule, the parallel path returns byte-identical fronts at any
// thread count.
#pragma once

#include <algorithm>
#include <cstddef>
#include <limits>
#include <utility>
#include <vector>

#include "util/parallel.h"

namespace nanocache::opt {

namespace detail {

/// Inputs below this size are filtered serially: the sort is cheap and
/// chunk bookkeeping would dominate.
constexpr std::size_t kParetoParallelThreshold = 4096;

/// Chunking for the parallel pre-filter: a function of the input size
/// only, never the thread count, so chunk-front contents are reproducible.
inline std::size_t pareto_chunk(std::size_t n) {
  const std::size_t chunk = (n + 63) / 64;  // at most 64 chunks
  return chunk == 0 ? 1 : chunk;
}

template <typename T, typename FX, typename FY>
std::vector<T> pareto_min2_serial(std::vector<T> items, FX& fx, FY& fy) {
  std::stable_sort(items.begin(), items.end(), [&](const T& a, const T& b) {
    if (fx(a) != fx(b)) return fx(a) < fx(b);
    return fy(a) < fy(b);
  });
  std::vector<T> front;
  double best_y = std::numeric_limits<double>::infinity();
  for (auto& item : items) {
    if (fy(item) < best_y) {
      best_y = fy(item);
      front.push_back(std::move(item));
    }
  }
  return front;
}

template <typename T, typename FX, typename FY, typename FZ>
std::vector<T> pareto_min3_serial(std::vector<T> items, FX& fx, FY& fy,
                                  FZ& fz) {
  std::stable_sort(items.begin(), items.end(), [&](const T& a, const T& b) {
    if (fx(a) != fx(b)) return fx(a) < fx(b);
    if (fy(a) != fy(b)) return fy(a) < fy(b);
    return fz(a) < fz(b);
  });
  // Staircase of mutually non-dominated (y, z) minima over all accepted
  // points: y strictly increasing, z strictly decreasing.
  std::vector<std::pair<double, double>> stair;
  std::vector<T> front;
  for (auto& item : items) {
    const double y = fy(item);
    const double z = fz(item);
    // Dominated iff some accepted point (all of which have fx <= item's fx)
    // has y' <= y and z' <= z: find the last stair entry with y' <= y.
    auto it = std::upper_bound(
        stair.begin(), stair.end(), y,
        [](double value, const std::pair<double, double>& s) {
          return value < s.first;
        });
    if (it != stair.begin() && std::prev(it)->second <= z) {
      continue;  // dominated
    }
    front.push_back(item);
    // Insert (y, z) into the staircase, removing entries it dominates.
    auto ins = std::lower_bound(
        stair.begin(), stair.end(), y,
        [](const std::pair<double, double>& s, double value) {
          return s.first < value;
        });
    ins = stair.insert(ins, {y, z});
    auto next = std::next(ins);
    while (next != stair.end() && next->second >= z) {
      next = stair.erase(next);
    }
  }
  return front;
}

/// Split `items` into order-preserving chunks, reduce each to its local
/// front via `filter` (in parallel), and concatenate the local fronts in
/// chunk order.  The result is a superset of the global front whose
/// relative order of surviving elements matches the input.
template <typename T, typename Filter>
std::vector<T> chunked_prefilter(std::vector<T>&& items, Filter&& filter) {
  const std::size_t n = items.size();
  const std::size_t chunk = pareto_chunk(n);
  const std::size_t num_chunks = (n + chunk - 1) / chunk;
  auto fronts = par::parallel_map(num_chunks, [&](std::size_t c) {
    const std::size_t lo = c * chunk;
    const std::size_t hi = lo + chunk < n ? lo + chunk : n;
    std::vector<T> slice;
    slice.reserve(hi - lo);
    for (std::size_t i = lo; i < hi; ++i) slice.push_back(std::move(items[i]));
    return filter(std::move(slice));
  });
  std::vector<T> merged;
  for (auto& f : fronts) {
    merged.insert(merged.end(), std::make_move_iterator(f.begin()),
                  std::make_move_iterator(f.end()));
  }
  return merged;
}

}  // namespace detail

/// Filter `items` to the 2-objective Pareto front under (fx, fy)
/// minimization.  Deterministic: sorted by fx ascending on return, ties
/// resolved by input order.
template <typename T, typename FX, typename FY>
std::vector<T> pareto_min2(std::vector<T> items, FX fx, FY fy) {
  if (items.size() >= detail::kParetoParallelThreshold &&
      !par::in_parallel_region() && par::default_threads() > 1) {
    items = detail::chunked_prefilter(
        std::move(items), [&](std::vector<T> slice) {
          return detail::pareto_min2_serial(std::move(slice), fx, fy);
        });
  }
  return detail::pareto_min2_serial(std::move(items), fx, fy);
}

/// Filter to the 3-objective Pareto front under (fx, fy, fz) minimization,
/// via the sorted-sweep + 2D staircase query (O(n log n)).
template <typename T, typename FX, typename FY, typename FZ>
std::vector<T> pareto_min3(std::vector<T> items, FX fx, FY fy, FZ fz) {
  if (items.size() >= detail::kParetoParallelThreshold &&
      !par::in_parallel_region() && par::default_threads() > 1) {
    items = detail::chunked_prefilter(
        std::move(items), [&](std::vector<T> slice) {
          return detail::pareto_min3_serial(std::move(slice), fx, fy, fz);
        });
  }
  return detail::pareto_min3_serial(std::move(items), fx, fy, fz);
}

/// Evenly thin `items` (assumed sorted along the sweep axis) down to at
/// most `cap` entries, always keeping the first and last.  Used to bound DP
/// state growth; a documented approximation.
template <typename T>
void thin_to(std::vector<T>& items, std::size_t cap) {
  if (cap < 2 || items.size() <= cap) return;
  std::vector<T> kept;
  kept.reserve(cap);
  const double step =
      static_cast<double>(items.size() - 1) / static_cast<double>(cap - 1);
  std::size_t last = static_cast<std::size_t>(-1);
  for (std::size_t i = 0; i < cap; ++i) {
    const auto idx = static_cast<std::size_t>(i * step + 0.5);
    if (idx != last) {
      kept.push_back(std::move(items[idx]));
      last = idx;
    }
  }
  items = std::move(kept);
}

}  // namespace nanocache::opt
