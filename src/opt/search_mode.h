// Selects the single-cache assignment search engine.  Both engines return
// byte-identical results (same argmin, same tie-breaks, same infeasibility
// diagnostics); the exhaustive path survives as the correctness oracle the
// pruned engine is differentially tested against.
#pragma once

namespace nanocache::opt {

enum class SearchMode {
  /// Per-component Pareto pre-filter + frontier-merge composition +
  /// branch-and-bound delay/leakage tail cuts (the default).
  kPruned,
  /// Reference nested-product search over the full knob grid.
  kExhaustive,
};

inline const char* search_mode_name(SearchMode mode) {
  return mode == SearchMode::kPruned ? "pruned" : "exhaustive";
}

}  // namespace nanocache::opt
