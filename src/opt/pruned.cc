#include "opt/pruned.h"

#include <algorithm>
#include <array>
#include <cstdint>
#include <limits>
#include <vector>

#include "opt/pareto.h"
#include "util/error.h"
#include "util/metrics.h"

namespace nanocache::opt {

using cachemodel::ComponentAssignment;
using cachemodel::ComponentKind;
using cachemodel::kAllComponents;
using cachemodel::kNumComponents;

namespace detail {

void count_combos_evaluated(std::size_t n) {
  static auto& evaluated =
      metrics::Registry::instance().counter("opt.combos_evaluated");
  evaluated.add(n);
}

void count_combos_skipped(std::size_t n) {
  static auto& skipped =
      metrics::Registry::instance().counter("opt.combos_skipped");
  skipped.add(n);
}

}  // namespace detail

namespace {

/// Same diagnosis (same bytes) as the exhaustive path in schemes.cc.
OptOutcome<SchemeResult> infeasible_delay(double delay_constraint_s,
                                          double fastest_s, Scheme scheme) {
  return OptOutcome<SchemeResult>::infeasible(InfeasibleInfo{
      "access time <= delay constraint [s]", delay_constraint_s, fastest_s,
      "scheme " + scheme_name(scheme)});
}

/// (delay, leakage) frontier of one component's option table.  pareto_min2
/// is stable and first-wins, so among exactly-equal points the lowest grid
/// index survives — the identical representative the exhaustive DP keeps.
/// The result is a strict staircase: delay strictly increasing, leakage
/// strictly decreasing.
std::vector<ComponentOption> option_frontier(std::vector<ComponentOption> v) {
  return pareto_min2(
      std::move(v), [](const ComponentOption& o) { return o.delay_s; },
      [](const ComponentOption& o) { return o.leakage_w; });
}

// ---------------------------------------------------------------------------
// Scheme I: per-component assignment via frontier-merge + branch-and-bound.
// ---------------------------------------------------------------------------

/// Partial state over a prefix of components.  `choice[i]` indexes the
/// PRUNED option table of component i.
struct Combo {
  double delay_s = 0.0;
  double leakage_w = 0.0;
  double dynamic_j = 0.0;
  std::array<std::uint16_t, kNumComponents> choice{};
};

/// One frontier-merge step: identical arithmetic (and thus identical
/// floating-point association) to the exhaustive DP's combine(), only the
/// option table has been pre-filtered to its frontier.
std::vector<Combo> merge_frontier(const std::vector<Combo>& partial,
                                  const std::vector<ComponentOption>& options,
                                  std::size_t component_index) {
  std::vector<Combo> next;
  next.reserve(partial.size() * options.size());
  for (const auto& p : partial) {
    for (std::size_t oi = 0; oi < options.size(); ++oi) {
      Combo c = p;
      c.delay_s += options[oi].delay_s;
      c.leakage_w += options[oi].leakage_w;
      c.dynamic_j += options[oi].dynamic_j;
      c.choice[component_index] = static_cast<std::uint16_t>(oi);
      next.push_back(c);
    }
  }
  detail::count_combos_evaluated(next.size());
  return pareto_min2(
      std::move(next), [](const Combo& c) { return c.delay_s; },
      [](const Combo& c) { return c.leakage_w; });
}

/// Minimum completion delay of a partial state, accumulated in the same
/// left-to-right order the DP adds components.  Floating-point addition is
/// weakly monotone, so this equals — bitwise — the delay of the cheapest
/// full assignment extending the state.
double completion_delay(
    double delay_s,
    const std::array<std::vector<ComponentOption>, kNumComponents>& pruned,
    std::size_t next_component) {
  for (std::size_t j = next_component; j < kNumComponents; ++j) {
    delay_s += pruned[j][0].delay_s;  // frontier head = per-component min
  }
  return delay_s;
}

/// Minimum completion leakage, same left-fold association.  The frontier
/// is a staircase, so its last entry carries the component's minimum
/// leakage.
double completion_leakage(
    double leakage_w,
    const std::array<std::vector<ComponentOption>, kNumComponents>& pruned,
    std::size_t next_component) {
  for (std::size_t j = next_component; j < kNumComponents; ++j) {
    leakage_w += pruned[j].back().leakage_w;
  }
  return leakage_w;
}

OptOutcome<SchemeResult> scheme1_pruned(
    const ComponentEvaluator& eval,
    const std::vector<tech::DeviceKnobs>& pairs, double delay_constraint_s) {
  std::array<std::vector<ComponentOption>, kNumComponents> pruned;
  std::array<std::size_t, kNumComponents> full_n{};
  for (ComponentKind kind : kAllComponents) {
    const auto i = static_cast<std::size_t>(kind);
    auto table = component_options(eval, kind, pairs);
    full_n[i] = table.size();
    pruned[i] = option_frontier(std::move(table));
  }

  // Feasibility bound first: the fastest assignment sums the frontier
  // heads, bit-identical to the exhaustive front's fastest member.
  const double fastest = completion_delay(0.0, pruned, 0);
  if (fastest > delay_constraint_s) {
    return infeasible_delay(delay_constraint_s, fastest,
                            Scheme::kPerComponent);
  }

  // Branch-and-bound incumbent: the all-minimum-leakage chain is a real
  // assignment, so when it meets the constraint its leakage bounds the
  // optimum from above.  States whose minimum-leakage completion strictly
  // exceeds it can neither win nor tie the winner (the tie-breaks only
  // engage at equal leakage), so they are safe to drop mid-search.
  double incumbent_leak = std::numeric_limits<double>::infinity();
  double chain_delay = 0.0;
  for (std::size_t j = 0; j < kNumComponents; ++j) {
    chain_delay += pruned[j].back().delay_s;
  }
  if (chain_delay <= delay_constraint_s) {
    incumbent_leak = completion_leakage(0.0, pruned, 0);
  }

  // Frontier-merge the first kNumComponents-1 components.  Fronts come
  // back sorted by delay ascending (leakage descending), and the two
  // completion bounds are monotone along the staircase, so the delay cut
  // removes a suffix (too slow to finish) and the leakage cut a prefix
  // (too leaky to beat the incumbent).
  std::vector<Combo> combos{Combo{}};
  for (std::size_t i = 0; i + 1 < kNumComponents; ++i) {
    detail::count_combos_skipped(combos.size() *
                                 (full_n[i] - pruned[i].size()));
    combos = merge_frontier(combos, pruned[i], i);
    std::size_t keep = combos.size();
    while (keep > 0 && completion_delay(combos[keep - 1].delay_s, pruned,
                                        i + 1) > delay_constraint_s) {
      --keep;
    }
    std::size_t drop = 0;
    while (drop < keep && completion_leakage(combos[drop].leakage_w, pruned,
                                             i + 1) > incumbent_leak) {
      ++drop;
    }
    detail::count_combos_skipped((combos.size() - (keep - drop)) *
                                 full_n[i + 1]);
    combos.erase(combos.begin() + static_cast<std::ptrdiff_t>(keep),
                 combos.end());
    combos.erase(combos.begin(),
                 combos.begin() + static_cast<std::ptrdiff_t>(drop));
  }

  // Final component: scan the frontier product directly instead of
  // materializing a last merge.  The exhaustive winner is the feasible
  // front member with minimum (leakage, delay, first-formed) — formation
  // order here is (front rank, frontier option rank), matching the DP's
  // stable (partial, option) product order, so keeping the first incumbent
  // on full ties reproduces the same representative.
  const std::size_t last = kNumComponents - 1;
  const auto& tail = pruned[last];
  const double tail_min_leak = tail.back().leakage_w;  // staircase end

  struct Best {
    bool has = false;
    double leakage_w = 0.0;
    double delay_s = 0.0;
    double dynamic_j = 0.0;
    std::size_t front_rank = 0;
    std::size_t option_rank = 0;
  };
  // Walk the front from its low-leakage end: the merge loop already cut
  // every state whose fastest completion misses the constraint, so each
  // remaining state yields a feasible pair and the first iterations land
  // near the optimum.  Once even the minimum-leakage tail cannot strictly
  // beat the incumbent the walk stops — earlier front members only get
  // leakier.  Never cut on equality: an equal-leakage completion can still
  // win the delay tie-break, and full ties fall back to the exhaustive
  // DP's (partial rank, option rank) formation order.
  Best best;
  std::size_t evaluated = 0;
  for (std::size_t fi = combos.size(); fi-- > 0;) {
    const Combo& f = combos[fi];
    if (best.has && f.leakage_w + tail_min_leak > best.leakage_w) break;
    for (std::size_t oi = 0; oi < tail.size(); ++oi) {
      const double delay = f.delay_s + tail[oi].delay_s;
      ++evaluated;
      if (delay > delay_constraint_s) break;  // tail sorted by delay
      const double leak = f.leakage_w + tail[oi].leakage_w;
      if (!best.has || leak < best.leakage_w ||
          (leak == best.leakage_w &&
           (delay < best.delay_s ||
            (delay == best.delay_s &&
             (fi < best.front_rank ||
              (fi == best.front_rank && oi < best.option_rank)))))) {
        best = Best{true, leak, delay, f.dynamic_j + tail[oi].dynamic_j, fi,
                    oi};
      }
    }
  }
  detail::count_combos_evaluated(evaluated);
  detail::count_combos_skipped(combos.size() * full_n[last] - evaluated);

  if (!best.has) {
    // Unreachable once fastest <= constraint: the head×head pair above is
    // feasible by construction.  Kept as a defensive diagnosis.
    return infeasible_delay(delay_constraint_s, fastest,
                            Scheme::kPerComponent);
  }
  SchemeResult r;
  r.leakage_w = best.leakage_w;
  r.access_time_s = best.delay_s;
  r.dynamic_energy_j = best.dynamic_j;
  const Combo& f = combos[best.front_rank];
  for (std::size_t i = 0; i + 1 < kNumComponents; ++i) {
    r.assignment.set(static_cast<ComponentKind>(i), pruned[i][f.choice[i]].knobs);
  }
  r.assignment.set(static_cast<ComponentKind>(last),
                   tail[best.option_rank].knobs);
  return r;
}

// ---------------------------------------------------------------------------
// Schemes II / III: frontier prune + feasible-prefix scan.  The exhaustive
// searches break (leakage, delay) ties on the ORIGINAL flat grid index, so
// the pruned tables carry their original indices through the filter.
// ---------------------------------------------------------------------------

struct Indexed {
  ComponentOption opt;
  std::size_t orig = 0;
};

std::vector<Indexed> indexed_frontier(const std::vector<ComponentOption>& v) {
  std::vector<Indexed> idx;
  idx.reserve(v.size());
  for (std::size_t i = 0; i < v.size(); ++i) idx.push_back({v[i], i});
  return pareto_min2(
      std::move(idx), [](const Indexed& o) { return o.opt.delay_s; },
      [](const Indexed& o) { return o.opt.leakage_w; });
}

OptOutcome<SchemeResult> scheme2_pruned(
    const ComponentEvaluator& eval,
    const std::vector<tech::DeviceKnobs>& pairs, double delay_constraint_s) {
  const auto array_opts =
      component_options(eval, ComponentKind::kCellArray, pairs);
  const auto periph_opts = periphery_options(eval, pairs);
  const std::size_t np = periph_opts.size();
  const auto af = indexed_frontier(array_opts);
  const auto pf = indexed_frontier(periph_opts);

  const double fastest = af.front().opt.delay_s + pf.front().opt.delay_s;
  if (fastest > delay_constraint_s) {
    return infeasible_delay(delay_constraint_s, fastest,
                            Scheme::kArrayPeriphery);
  }
  const double periph_min_leak = pf.back().opt.leakage_w;

  struct Best {
    bool has = false;
    double leakage_w = 0.0;
    double delay_s = 0.0;
    double dynamic_j = 0.0;
    std::size_t flat = 0;  ///< original ai * np + pi — the exhaustive key
    std::size_t ai = 0;
    std::size_t pi = 0;
  };
  Best best;
  std::size_t evaluated = 0;
  for (const auto& a : af) {
    if (a.opt.delay_s + pf.front().opt.delay_s > delay_constraint_s) break;
    if (best.has && a.opt.leakage_w + periph_min_leak > best.leakage_w) {
      continue;
    }
    for (const auto& p : pf) {
      const double delay = a.opt.delay_s + p.opt.delay_s;
      ++evaluated;
      if (delay > delay_constraint_s) break;
      const double leak = a.opt.leakage_w + p.opt.leakage_w;
      const std::size_t flat = a.orig * np + p.orig;
      if (!best.has || leak < best.leakage_w ||
          (leak == best.leakage_w &&
           (delay < best.delay_s ||
            (delay == best.delay_s && flat < best.flat)))) {
        best = Best{true, leak, delay, a.opt.dynamic_j + p.opt.dynamic_j,
                    flat, a.orig, p.orig};
      }
    }
  }
  detail::count_combos_evaluated(evaluated);
  detail::count_combos_skipped(array_opts.size() * np - evaluated);

  if (!best.has) {
    return infeasible_delay(delay_constraint_s, fastest,
                            Scheme::kArrayPeriphery);
  }
  SchemeResult r;
  r.assignment = ComponentAssignment::split(array_opts[best.ai].knobs,
                                            periph_opts[best.pi].knobs);
  r.leakage_w = best.leakage_w;
  r.access_time_s = best.delay_s;
  r.dynamic_energy_j = best.dynamic_j;
  return r;
}

OptOutcome<SchemeResult> scheme3_pruned(
    const ComponentEvaluator& eval,
    const std::vector<tech::DeviceKnobs>& pairs, double delay_constraint_s) {
  const auto opts = uniform_options(eval, pairs);
  const auto uf = indexed_frontier(opts);

  const double fastest = uf.front().opt.delay_s;
  if (fastest > delay_constraint_s) {
    return infeasible_delay(delay_constraint_s, fastest, Scheme::kUniform);
  }
  // On the staircase leakage strictly decreases with delay, so the optimum
  // is simply the last feasible frontier member; no sums are formed, so the
  // equivalence to the exhaustive flat argmin is exact with no FP caveat.
  std::size_t winner = 0;
  std::size_t evaluated = 0;
  for (std::size_t i = 0; i < uf.size(); ++i) {
    ++evaluated;
    if (uf[i].opt.delay_s > delay_constraint_s) break;
    winner = i;
  }
  detail::count_combos_evaluated(evaluated);
  detail::count_combos_skipped(opts.size() - evaluated);

  SchemeResult r;
  r.assignment = ComponentAssignment(opts[uf[winner].orig].knobs);
  r.leakage_w = uf[winner].opt.leakage_w;
  r.access_time_s = uf[winner].opt.delay_s;
  r.dynamic_energy_j = uf[winner].opt.dynamic_j;
  return r;
}

// ---------------------------------------------------------------------------
// Generalized design-space engine: the same three layers over any component
// list (plus the power-gating axis).  Tables come from the same opt::space_*
// builders the generalized exhaustive engine uses, fold order is the same
// left-to-right DP order, and all tie-breaks are reproduced, so §10's
// byte-identity argument extends unchanged to the enlarged axes (§11).
// ---------------------------------------------------------------------------

using cachemodel::kMaxComponents;

struct VecCombo {
  double delay_s = 0.0;
  double leakage_w = 0.0;
  double dynamic_j = 0.0;
  std::array<std::uint16_t, kMaxComponents> choice{};
};

std::vector<VecCombo> merge_frontier_vec(
    const std::vector<VecCombo>& partial,
    const std::vector<ComponentOption>& options,
    std::size_t component_index) {
  std::vector<VecCombo> next;
  next.reserve(partial.size() * options.size());
  for (const auto& p : partial) {
    for (std::size_t oi = 0; oi < options.size(); ++oi) {
      VecCombo c = p;
      c.delay_s += options[oi].delay_s;
      c.leakage_w += options[oi].leakage_w;
      c.dynamic_j += options[oi].dynamic_j;
      c.choice[component_index] = static_cast<std::uint16_t>(oi);
      next.push_back(c);
    }
  }
  detail::count_combos_evaluated(next.size());
  return pareto_min2(
      std::move(next), [](const VecCombo& c) { return c.delay_s; },
      [](const VecCombo& c) { return c.leakage_w; });
}

double completion_delay_vec(
    double delay_s, const std::vector<std::vector<ComponentOption>>& pruned,
    std::size_t next_component) {
  for (std::size_t j = next_component; j < pruned.size(); ++j) {
    delay_s += pruned[j][0].delay_s;
  }
  return delay_s;
}

double completion_leakage_vec(
    double leakage_w, const std::vector<std::vector<ComponentOption>>& pruned,
    std::size_t next_component) {
  for (std::size_t j = next_component; j < pruned.size(); ++j) {
    leakage_w += pruned[j].back().leakage_w;
  }
  return leakage_w;
}

void apply_option(ComponentAssignment& asg, ComponentKind kind,
                  const ComponentOption& opt) {
  asg.set(kind, opt.knobs);
  asg.set_gated(kind, opt.gated);
}

OptOutcome<SchemeResult> scheme1_pruned_space(
    const ComponentEvaluator& eval,
    const std::vector<tech::DeviceKnobs>& pairs, double delay_constraint_s,
    const OptSpace& space) {
  const auto full = space_component_tables(eval, space, pairs);
  const std::size_t n = full.size();
  std::vector<std::vector<ComponentOption>> pruned(n);
  std::vector<std::size_t> full_n(n);
  for (std::size_t i = 0; i < n; ++i) {
    full_n[i] = full[i].size();
    pruned[i] = option_frontier(full[i]);
  }

  const double fastest = completion_delay_vec(0.0, pruned, 0);
  if (fastest > delay_constraint_s) {
    return infeasible_delay(delay_constraint_s, fastest,
                            Scheme::kPerComponent);
  }

  double incumbent_leak = std::numeric_limits<double>::infinity();
  double chain_delay = 0.0;
  for (std::size_t j = 0; j < n; ++j) {
    chain_delay += pruned[j].back().delay_s;
  }
  if (chain_delay <= delay_constraint_s) {
    incumbent_leak = completion_leakage_vec(0.0, pruned, 0);
  }

  std::vector<VecCombo> combos{VecCombo{}};
  for (std::size_t i = 0; i + 1 < n; ++i) {
    detail::count_combos_skipped(combos.size() *
                                 (full_n[i] - pruned[i].size()));
    combos = merge_frontier_vec(combos, pruned[i], i);
    std::size_t keep = combos.size();
    while (keep > 0 && completion_delay_vec(combos[keep - 1].delay_s, pruned,
                                            i + 1) > delay_constraint_s) {
      --keep;
    }
    std::size_t drop = 0;
    while (drop < keep &&
           completion_leakage_vec(combos[drop].leakage_w, pruned, i + 1) >
               incumbent_leak) {
      ++drop;
    }
    detail::count_combos_skipped((combos.size() - (keep - drop)) *
                                 full_n[i + 1]);
    combos.erase(combos.begin() + static_cast<std::ptrdiff_t>(keep),
                 combos.end());
    combos.erase(combos.begin(),
                 combos.begin() + static_cast<std::ptrdiff_t>(drop));
  }

  const std::size_t last = n - 1;
  const auto& tail = pruned[last];
  const double tail_min_leak = tail.back().leakage_w;

  struct Best {
    bool has = false;
    double leakage_w = 0.0;
    double delay_s = 0.0;
    double dynamic_j = 0.0;
    std::size_t front_rank = 0;
    std::size_t option_rank = 0;
  };
  Best best;
  std::size_t evaluated = 0;
  for (std::size_t fi = combos.size(); fi-- > 0;) {
    const VecCombo& f = combos[fi];
    if (best.has && f.leakage_w + tail_min_leak > best.leakage_w) break;
    for (std::size_t oi = 0; oi < tail.size(); ++oi) {
      const double delay = f.delay_s + tail[oi].delay_s;
      ++evaluated;
      if (delay > delay_constraint_s) break;
      const double leak = f.leakage_w + tail[oi].leakage_w;
      if (!best.has || leak < best.leakage_w ||
          (leak == best.leakage_w &&
           (delay < best.delay_s ||
            (delay == best.delay_s &&
             (fi < best.front_rank ||
              (fi == best.front_rank && oi < best.option_rank)))))) {
        best = Best{true, leak, delay, f.dynamic_j + tail[oi].dynamic_j, fi,
                    oi};
      }
    }
  }
  detail::count_combos_evaluated(evaluated);
  detail::count_combos_skipped(combos.size() * full_n[last] - evaluated);

  if (!best.has) {
    return infeasible_delay(delay_constraint_s, fastest,
                            Scheme::kPerComponent);
  }
  SchemeResult r;
  r.leakage_w = best.leakage_w;
  r.access_time_s = best.delay_s;
  r.dynamic_energy_j = best.dynamic_j;
  const VecCombo& f = combos[best.front_rank];
  for (std::size_t i = 0; i + 1 < n; ++i) {
    apply_option(r.assignment, space.components[i], pruned[i][f.choice[i]]);
  }
  apply_option(r.assignment, space.components[last], tail[best.option_rank]);
  return r;
}

OptOutcome<SchemeResult> scheme2_pruned_space(
    const ComponentEvaluator& eval,
    const std::vector<tech::DeviceKnobs>& pairs, double delay_constraint_s,
    const OptSpace& space) {
  const auto array_opts = space_block_options(eval, space, true, pairs);
  const auto periph_opts = space_block_options(eval, space, false, pairs);
  const std::size_t np = periph_opts.size();
  const auto af = indexed_frontier(array_opts);
  const auto pf = indexed_frontier(periph_opts);

  const double fastest = af.front().opt.delay_s + pf.front().opt.delay_s;
  if (fastest > delay_constraint_s) {
    return infeasible_delay(delay_constraint_s, fastest,
                            Scheme::kArrayPeriphery);
  }
  const double periph_min_leak = pf.back().opt.leakage_w;

  struct Best {
    bool has = false;
    double leakage_w = 0.0;
    double delay_s = 0.0;
    double dynamic_j = 0.0;
    std::size_t flat = 0;
    std::size_t ai = 0;
    std::size_t pi = 0;
  };
  Best best;
  std::size_t evaluated = 0;
  for (const auto& a : af) {
    if (a.opt.delay_s + pf.front().opt.delay_s > delay_constraint_s) break;
    if (best.has && a.opt.leakage_w + periph_min_leak > best.leakage_w) {
      continue;
    }
    for (const auto& p : pf) {
      const double delay = a.opt.delay_s + p.opt.delay_s;
      ++evaluated;
      if (delay > delay_constraint_s) break;
      const double leak = a.opt.leakage_w + p.opt.leakage_w;
      const std::size_t flat = a.orig * np + p.orig;
      if (!best.has || leak < best.leakage_w ||
          (leak == best.leakage_w &&
           (delay < best.delay_s ||
            (delay == best.delay_s && flat < best.flat)))) {
        best = Best{true, leak, delay, a.opt.dynamic_j + p.opt.dynamic_j,
                    flat, a.orig, p.orig};
      }
    }
  }
  detail::count_combos_evaluated(evaluated);
  detail::count_combos_skipped(array_opts.size() * np - evaluated);

  if (!best.has) {
    return infeasible_delay(delay_constraint_s, fastest,
                            Scheme::kArrayPeriphery);
  }
  SchemeResult r;
  for (std::size_t i = 0; i < space.components.size(); ++i) {
    apply_option(r.assignment, space.components[i],
                 i < space.array_count ? array_opts[best.ai]
                                       : periph_opts[best.pi]);
  }
  r.leakage_w = best.leakage_w;
  r.access_time_s = best.delay_s;
  r.dynamic_energy_j = best.dynamic_j;
  return r;
}

OptOutcome<SchemeResult> scheme3_pruned_space(
    const ComponentEvaluator& eval,
    const std::vector<tech::DeviceKnobs>& pairs, double delay_constraint_s,
    const OptSpace& space) {
  const auto opts = space_uniform_options(eval, space, pairs);
  const auto uf = indexed_frontier(opts);

  const double fastest = uf.front().opt.delay_s;
  if (fastest > delay_constraint_s) {
    return infeasible_delay(delay_constraint_s, fastest, Scheme::kUniform);
  }
  std::size_t winner = 0;
  std::size_t evaluated = 0;
  for (std::size_t i = 0; i < uf.size(); ++i) {
    ++evaluated;
    if (uf[i].opt.delay_s > delay_constraint_s) break;
    winner = i;
  }
  detail::count_combos_evaluated(evaluated);
  detail::count_combos_skipped(opts.size() - evaluated);

  SchemeResult r;
  for (std::size_t i = 0; i < space.components.size(); ++i) {
    apply_option(r.assignment, space.components[i], opts[uf[winner].orig]);
  }
  r.leakage_w = uf[winner].opt.leakage_w;
  r.access_time_s = uf[winner].opt.delay_s;
  r.dynamic_energy_j = uf[winner].opt.dynamic_j;
  return r;
}

}  // namespace

OptOutcome<SchemeResult> optimize_single_cache_pruned(
    const ComponentEvaluator& eval, const KnobGrid& grid, Scheme scheme,
    double delay_constraint_s, const OptSpace& space) {
  const auto pairs = grid.pairs();
  if (!(space.is_base() && !space.gating.enabled)) {
    switch (scheme) {
      case Scheme::kPerComponent:
        return scheme1_pruned_space(eval, pairs, delay_constraint_s, space);
      case Scheme::kArrayPeriphery:
        return scheme2_pruned_space(eval, pairs, delay_constraint_s, space);
      case Scheme::kUniform:
        return scheme3_pruned_space(eval, pairs, delay_constraint_s, space);
    }
    throw Error("unknown scheme");
  }
  switch (scheme) {
    case Scheme::kPerComponent:
      return scheme1_pruned(eval, pairs, delay_constraint_s);
    case Scheme::kArrayPeriphery:
      return scheme2_pruned(eval, pairs, delay_constraint_s);
    case Scheme::kUniform:
      return scheme3_pruned(eval, pairs, delay_constraint_s);
  }
  throw Error("unknown scheme");
}

}  // namespace nanocache::opt
