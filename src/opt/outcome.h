// Typed optimizer outcomes.  An infeasible constraint is a first-class,
// diagnosable result — not an empty optional: OptOutcome either holds the
// optimum or an InfeasibleInfo naming the violated constraint and the best
// the search could achieve.  The interface is deliberately optional-like
// (has_value / operator bool / * / ->) so call sites read the same either
// way, but dereferencing an infeasible outcome throws a categorized
// nanocache::Error(kInfeasible) instead of being undefined behaviour.
#pragma once

#include <optional>
#include <sstream>
#include <string>
#include <utility>

#include "util/error.h"

namespace nanocache::opt {

/// Why an optimization returned no solution.
struct InfeasibleInfo {
  std::string constraint;   ///< the violated constraint, human-readable
  double required = 0.0;    ///< the bound the caller asked for
  double achievable = 0.0;  ///< best value the search could reach (0 = n/a)
  std::string detail;       ///< optional extra context

  std::string describe() const {
    std::ostringstream os;
    os << "infeasible: " << constraint;
    if (required > 0.0) os << " (required " << required;
    if (required > 0.0 && achievable > 0.0) {
      os << ", best achievable " << achievable;
    }
    if (required > 0.0) os << ")";
    if (!detail.empty()) os << "; " << detail;
    return os.str();
  }
};

/// Result-or-typed-infeasibility.  Feasible outcomes construct implicitly
/// from T; infeasible ones via OptOutcome<T>::infeasible(info).
template <typename T>
class OptOutcome {
 public:
  /// Default-constructed outcomes are infeasible placeholders (sweep rows
  /// start in this state until an optimizer fills them in).
  OptOutcome() : info_{InfeasibleInfo{"not solved", 0.0, 0.0, {}}} {}

  OptOutcome(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  static OptOutcome infeasible(InfeasibleInfo info) {
    OptOutcome o;
    o.info_ = std::move(info);
    return o;
  }

  bool has_value() const { return value_.has_value(); }
  explicit operator bool() const { return value_.has_value(); }

  /// Access the optimum; throws nanocache::Error(kInfeasible) carrying the
  /// violated constraint when there is none.
  const T& value() const {
    if (!value_) throw Error(ErrorCategory::kInfeasible, info_->describe());
    return *value_;
  }
  const T& operator*() const { return value(); }
  const T* operator->() const { return &value(); }

  /// The infeasibility diagnosis; only meaningful when !has_value().
  const InfeasibleInfo& why() const {
    NC_REQUIRE_INTERNAL(!value_.has_value(),
                        "why() queried on a feasible outcome");
    return *info_;
  }

 private:
  std::optional<T> value_;
  std::optional<InfeasibleInfo> info_;
};

}  // namespace nanocache::opt
