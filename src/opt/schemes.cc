#include "opt/schemes.h"

#include <algorithm>
#include <array>
#include <limits>
#include <optional>

#include "opt/pareto.h"
#include "util/error.h"

namespace nanocache::opt {

using cachemodel::ComponentAssignment;
using cachemodel::ComponentKind;
using cachemodel::kAllComponents;
using cachemodel::kNumComponents;

std::string scheme_name(Scheme scheme) {
  switch (scheme) {
    case Scheme::kPerComponent:
      return "I (per-component)";
    case Scheme::kArrayPeriphery:
      return "II (array/periphery)";
    case Scheme::kUniform:
      return "III (uniform)";
  }
  return "unknown";
}

namespace {

/// Partial DP state for Scheme I: accumulated delay/leak/dynamic plus the
/// option index chosen for each component combined so far.
struct Combo {
  double delay_s = 0.0;
  double leakage_w = 0.0;
  double dynamic_j = 0.0;
  std::array<std::uint16_t, kNumComponents> choice{};
};

std::vector<Combo> combine(const std::vector<Combo>& partial,
                           const std::vector<ComponentOption>& options,
                           std::size_t component_index) {
  std::vector<Combo> next;
  next.reserve(partial.size() * options.size());
  for (const auto& p : partial) {
    for (std::size_t oi = 0; oi < options.size(); ++oi) {
      Combo c = p;
      c.delay_s += options[oi].delay_s;
      c.leakage_w += options[oi].leakage_w;
      c.dynamic_j += options[oi].dynamic_j;
      c.choice[component_index] = static_cast<std::uint16_t>(oi);
      next.push_back(c);
    }
  }
  // Pareto filter on (delay, leakage): any dominated partial state can
  // never become optimal because both objectives add monotonically.
  return pareto_min2(
      std::move(next), [](const Combo& c) { return c.delay_s; },
      [](const Combo& c) { return c.leakage_w; });
}

/// Infeasibility diagnosis shared by every scheme branch.
OptOutcome<SchemeResult> infeasible_delay(double delay_constraint_s,
                                          double fastest_s, Scheme scheme) {
  return OptOutcome<SchemeResult>::infeasible(InfeasibleInfo{
      "access time <= delay constraint [s]", delay_constraint_s, fastest_s,
      "scheme " + scheme_name(scheme)});
}

OptOutcome<SchemeResult> pick_best(
    const std::vector<Combo>& combos,
    const std::array<std::vector<ComponentOption>, kNumComponents>& options,
    double delay_constraint_s, Scheme scheme) {
  const Combo* best = nullptr;
  double fastest = std::numeric_limits<double>::infinity();
  for (const auto& c : combos) {
    fastest = std::min(fastest, c.delay_s);
    if (c.delay_s > delay_constraint_s) continue;
    if (best == nullptr || c.leakage_w < best->leakage_w) best = &c;
  }
  if (best == nullptr) {
    return infeasible_delay(delay_constraint_s, fastest, scheme);
  }
  SchemeResult r;
  r.leakage_w = best->leakage_w;
  r.access_time_s = best->delay_s;
  r.dynamic_energy_j = best->dynamic_j;
  for (std::size_t i = 0; i < kNumComponents; ++i) {
    r.assignment.set(static_cast<ComponentKind>(i),
                     options[i][best->choice[i]].knobs);
  }
  return r;
}

std::vector<Combo> scheme1_combos(
    const std::array<std::vector<ComponentOption>, kNumComponents>& options) {
  std::vector<Combo> combos{Combo{}};
  for (std::size_t i = 0; i < kNumComponents; ++i) {
    combos = combine(combos, options[i], i);
  }
  return combos;
}

std::array<std::vector<ComponentOption>, kNumComponents> all_options(
    const ComponentEvaluator& eval,
    const std::vector<tech::DeviceKnobs>& pairs) {
  std::array<std::vector<ComponentOption>, kNumComponents> out;
  for (ComponentKind kind : kAllComponents) {
    out[static_cast<std::size_t>(kind)] =
        component_options(eval, kind, pairs);
  }
  return out;
}

}  // namespace

OptOutcome<SchemeResult> optimize_single_cache(
    const ComponentEvaluator& eval, const KnobGrid& grid, Scheme scheme,
    double delay_constraint_s) {
  NC_REQUIRE(delay_constraint_s > 0.0, "delay constraint must be positive");
  const auto pairs = grid.pairs();

  switch (scheme) {
    case Scheme::kPerComponent: {
      const auto options = all_options(eval, pairs);
      return pick_best(scheme1_combos(options), options, delay_constraint_s,
                       scheme);
    }

    case Scheme::kArrayPeriphery: {
      const auto array_opts = component_options(
          eval, ComponentKind::kCellArray, pairs);
      const auto periph_opts = periphery_options(eval, pairs);
      std::optional<SchemeResult> best;
      double fastest = std::numeric_limits<double>::infinity();
      for (const auto& a : array_opts) {
        for (const auto& p : periph_opts) {
          const double delay = a.delay_s + p.delay_s;
          fastest = std::min(fastest, delay);
          if (delay > delay_constraint_s) continue;
          const double leak = a.leakage_w + p.leakage_w;
          if (!best || leak < best->leakage_w) {
            SchemeResult r;
            r.assignment = ComponentAssignment::split(a.knobs, p.knobs);
            r.leakage_w = leak;
            r.access_time_s = delay;
            r.dynamic_energy_j = a.dynamic_j + p.dynamic_j;
            best = r;
          }
        }
      }
      if (!best) return infeasible_delay(delay_constraint_s, fastest, scheme);
      return *best;
    }

    case Scheme::kUniform: {
      const auto opts = uniform_options(eval, pairs);
      std::optional<SchemeResult> best;
      double fastest = std::numeric_limits<double>::infinity();
      for (const auto& o : opts) {
        fastest = std::min(fastest, o.delay_s);
        if (o.delay_s > delay_constraint_s) continue;
        if (!best || o.leakage_w < best->leakage_w) {
          SchemeResult r;
          r.assignment = ComponentAssignment(o.knobs);
          r.leakage_w = o.leakage_w;
          r.access_time_s = o.delay_s;
          r.dynamic_energy_j = o.dynamic_j;
          best = r;
        }
      }
      if (!best) return infeasible_delay(delay_constraint_s, fastest, scheme);
      return *best;
    }
  }
  throw Error("unknown scheme");
}

double min_access_time(const ComponentEvaluator& eval, const KnobGrid& grid,
                       Scheme scheme) {
  const auto pairs = grid.pairs();
  double best = std::numeric_limits<double>::infinity();
  switch (scheme) {
    case Scheme::kPerComponent: {
      // Independent per-component minima sum to the overall minimum.
      double total = 0.0;
      for (ComponentKind kind : kAllComponents) {
        double comp_best = std::numeric_limits<double>::infinity();
        for (const auto& o : component_options(eval, kind, pairs)) {
          comp_best = std::min(comp_best, o.delay_s);
        }
        total += comp_best;
      }
      return total;
    }
    case Scheme::kArrayPeriphery: {
      double a_best = std::numeric_limits<double>::infinity();
      for (const auto& o :
           component_options(eval, ComponentKind::kCellArray, pairs)) {
        a_best = std::min(a_best, o.delay_s);
      }
      double p_best = std::numeric_limits<double>::infinity();
      for (const auto& o : periphery_options(eval, pairs)) {
        p_best = std::min(p_best, o.delay_s);
      }
      return a_best + p_best;
    }
    case Scheme::kUniform: {
      for (const auto& o : uniform_options(eval, pairs)) {
        best = std::min(best, o.delay_s);
      }
      return best;
    }
  }
  throw Error("unknown scheme");
}

std::vector<SchemeResult> scheme_frontier(const ComponentEvaluator& eval,
                                          const KnobGrid& grid,
                                          Scheme scheme) {
  const auto pairs = grid.pairs();
  std::vector<SchemeResult> all;

  switch (scheme) {
    case Scheme::kPerComponent: {
      const auto options = all_options(eval, pairs);
      for (const auto& c : scheme1_combos(options)) {
        SchemeResult r;
        r.leakage_w = c.leakage_w;
        r.access_time_s = c.delay_s;
        r.dynamic_energy_j = c.dynamic_j;
        for (std::size_t i = 0; i < kNumComponents; ++i) {
          r.assignment.set(static_cast<ComponentKind>(i),
                           options[i][c.choice[i]].knobs);
        }
        all.push_back(std::move(r));
      }
      break;
    }
    case Scheme::kArrayPeriphery: {
      const auto array_opts =
          component_options(eval, ComponentKind::kCellArray, pairs);
      const auto periph_opts = periphery_options(eval, pairs);
      for (const auto& a : array_opts) {
        for (const auto& p : periph_opts) {
          SchemeResult r;
          r.assignment = ComponentAssignment::split(a.knobs, p.knobs);
          r.leakage_w = a.leakage_w + p.leakage_w;
          r.access_time_s = a.delay_s + p.delay_s;
          r.dynamic_energy_j = a.dynamic_j + p.dynamic_j;
          all.push_back(std::move(r));
        }
      }
      break;
    }
    case Scheme::kUniform: {
      for (const auto& o : uniform_options(eval, pairs)) {
        SchemeResult r;
        r.assignment = ComponentAssignment(o.knobs);
        r.leakage_w = o.leakage_w;
        r.access_time_s = o.delay_s;
        r.dynamic_energy_j = o.dynamic_j;
        all.push_back(std::move(r));
      }
      break;
    }
  }

  return pareto_min2(
      std::move(all), [](const SchemeResult& r) { return r.access_time_s; },
      [](const SchemeResult& r) { return r.leakage_w; });
}

std::vector<TradeoffPoint> leakage_delay_curve(
    const ComponentEvaluator& eval, const KnobGrid& grid, Scheme scheme,
    const std::vector<double>& delay_targets_s) {
  std::vector<TradeoffPoint> out;
  for (double target : delay_targets_s) {
    auto r = optimize_single_cache(eval, grid, scheme, target);
    if (!r) continue;
    out.push_back(TradeoffPoint{target, *r});
  }
  return out;
}

}  // namespace nanocache::opt
