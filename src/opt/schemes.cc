#include "opt/schemes.h"

#include <algorithm>
#include <array>
#include <limits>
#include <optional>

#include "opt/pareto.h"
#include "opt/pruned.h"
#include "util/error.h"
#include "util/metrics.h"
#include "util/parallel.h"

namespace nanocache::opt {

using cachemodel::ComponentAssignment;
using cachemodel::ComponentKind;
using cachemodel::kAllComponents;
using cachemodel::kNumComponents;

std::string scheme_name(Scheme scheme) {
  switch (scheme) {
    case Scheme::kPerComponent:
      return "I (per-component)";
    case Scheme::kArrayPeriphery:
      return "II (array/periphery)";
    case Scheme::kUniform:
      return "III (uniform)";
  }
  return "unknown";
}

namespace {

/// Partial DP state for Scheme I: accumulated delay/leak/dynamic plus the
/// option index chosen for each component combined so far.
struct Combo {
  double delay_s = 0.0;
  double leakage_w = 0.0;
  double dynamic_j = 0.0;
  std::array<std::uint16_t, kNumComponents> choice{};
};

/// Argmin order for feasible candidates: lowest leakage, then lowest
/// delay, then lowest grid index (the per-component option-index tuple,
/// compared lexicographically).  A total order, so any reduction —
/// sequential or merged from parallel partials — selects the same winner
/// regardless of iteration or arrival order.
bool better_combo(const Combo& a, const Combo& b) {
  if (a.leakage_w != b.leakage_w) return a.leakage_w < b.leakage_w;
  if (a.delay_s != b.delay_s) return a.delay_s < b.delay_s;
  return a.choice < b.choice;
}

std::vector<Combo> combine(const std::vector<Combo>& partial,
                           const std::vector<ComponentOption>& options,
                           std::size_t component_index) {
  std::vector<Combo> next;
  next.reserve(partial.size() * options.size());
  for (const auto& p : partial) {
    for (std::size_t oi = 0; oi < options.size(); ++oi) {
      Combo c = p;
      c.delay_s += options[oi].delay_s;
      c.leakage_w += options[oi].leakage_w;
      c.dynamic_j += options[oi].dynamic_j;
      c.choice[component_index] = static_cast<std::uint16_t>(oi);
      next.push_back(c);
    }
  }
  detail::count_combos_evaluated(next.size());
  // Pareto filter on (delay, leakage): any dominated partial state can
  // never become optimal because both objectives add monotonically.
  return pareto_min2(
      std::move(next), [](const Combo& c) { return c.delay_s; },
      [](const Combo& c) { return c.leakage_w; });
}

/// Infeasibility diagnosis shared by every scheme branch.
OptOutcome<SchemeResult> infeasible_delay(double delay_constraint_s,
                                          double fastest_s, Scheme scheme) {
  return OptOutcome<SchemeResult>::infeasible(InfeasibleInfo{
      "access time <= delay constraint [s]", delay_constraint_s, fastest_s,
      "scheme " + scheme_name(scheme)});
}

OptOutcome<SchemeResult> pick_best(
    const std::vector<Combo>& combos,
    const std::array<std::vector<ComponentOption>, kNumComponents>& options,
    double delay_constraint_s, Scheme scheme) {
  struct Acc {
    const Combo* best = nullptr;
    double fastest = std::numeric_limits<double>::infinity();
  };
  const Acc acc = par::parallel_reduce(
      combos.size(), Acc{},
      [&](Acc& a, std::size_t i) {
        const Combo& c = combos[i];
        a.fastest = std::min(a.fastest, c.delay_s);
        if (c.delay_s > delay_constraint_s) return;
        if (a.best == nullptr || better_combo(c, *a.best)) a.best = &c;
      },
      [](Acc& into, Acc&& from) {
        into.fastest = std::min(into.fastest, from.fastest);
        if (from.best != nullptr &&
            (into.best == nullptr || better_combo(*from.best, *into.best))) {
          into.best = from.best;
        }
      });
  if (acc.best == nullptr) {
    return infeasible_delay(delay_constraint_s, acc.fastest, scheme);
  }
  SchemeResult r;
  r.leakage_w = acc.best->leakage_w;
  r.access_time_s = acc.best->delay_s;
  r.dynamic_energy_j = acc.best->dynamic_j;
  for (std::size_t i = 0; i < kNumComponents; ++i) {
    r.assignment.set(static_cast<ComponentKind>(i),
                     options[i][acc.best->choice[i]].knobs);
  }
  return r;
}

std::vector<Combo> scheme1_combos(
    const std::array<std::vector<ComponentOption>, kNumComponents>& options) {
  std::vector<Combo> combos{Combo{}};
  for (std::size_t i = 0; i < kNumComponents; ++i) {
    combos = combine(combos, options[i], i);
  }
  return combos;
}

std::array<std::vector<ComponentOption>, kNumComponents> all_options(
    const ComponentEvaluator& eval,
    const std::vector<tech::DeviceKnobs>& pairs) {
  std::array<std::vector<ComponentOption>, kNumComponents> out;
  for (ComponentKind kind : kAllComponents) {
    out[static_cast<std::size_t>(kind)] =
        component_options(eval, kind, pairs);
  }
  return out;
}

/// Feasible-argmin accumulator for the scheme II/III flat searches.
/// Candidates are ordered by (leakage, delay, grid index) — see
/// better_combo for why the index tie-break makes the reduction
/// deterministic under any chunking.
struct FlatBest {
  bool has = false;
  double leakage_w = 0.0;
  double delay_s = 0.0;
  double dynamic_j = 0.0;
  std::size_t index = 0;  ///< flattened grid index of the candidate
  double fastest = std::numeric_limits<double>::infinity();

  bool candidate_better(double leak, double delay, std::size_t idx) const {
    if (!has) return true;
    if (leak != leakage_w) return leak < leakage_w;
    if (delay != delay_s) return delay < delay_s;
    return idx < index;
  }

  void merge(const FlatBest& other) {
    fastest = std::min(fastest, other.fastest);
    if (other.has &&
        candidate_better(other.leakage_w, other.delay_s, other.index)) {
      has = true;
      leakage_w = other.leakage_w;
      delay_s = other.delay_s;
      dynamic_j = other.dynamic_j;
      index = other.index;
    }
  }
};

}  // namespace

namespace {

/// Candidate-space observability: every (assignment, scheme) combination a
/// single-cache optimization considers, across all three schemes.
void count_combos(std::size_t n) {
  static auto& combos =
      metrics::Registry::instance().counter("opt.combos_considered");
  combos.add(n);
}

// ---------------------------------------------------------------------------
// Generalized design-space engine: any component list plus the power-gating
// axis.  Mirrors the fixed four-component code above step for step (same
// fold order, same tie-breaks) so the pruned engine's byte-identity argument
// carries over; the fixed space never routes through here.
// ---------------------------------------------------------------------------

using cachemodel::kMaxComponents;

/// Partial DP state over a space's component prefix.  choice[i] indexes
/// component i's (gating-expanded) option table.
struct VecCombo {
  double delay_s = 0.0;
  double leakage_w = 0.0;
  double dynamic_j = 0.0;
  std::array<std::uint16_t, kMaxComponents> choice{};
};

bool better_vec_combo(const VecCombo& a, const VecCombo& b) {
  if (a.leakage_w != b.leakage_w) return a.leakage_w < b.leakage_w;
  if (a.delay_s != b.delay_s) return a.delay_s < b.delay_s;
  return a.choice < b.choice;
}

std::vector<VecCombo> combine_vec(const std::vector<VecCombo>& partial,
                                  const std::vector<ComponentOption>& options,
                                  std::size_t component_index) {
  std::vector<VecCombo> next;
  next.reserve(partial.size() * options.size());
  for (const auto& p : partial) {
    for (std::size_t oi = 0; oi < options.size(); ++oi) {
      VecCombo c = p;
      c.delay_s += options[oi].delay_s;
      c.leakage_w += options[oi].leakage_w;
      c.dynamic_j += options[oi].dynamic_j;
      c.choice[component_index] = static_cast<std::uint16_t>(oi);
      next.push_back(c);
    }
  }
  detail::count_combos_evaluated(next.size());
  return pareto_min2(
      std::move(next), [](const VecCombo& c) { return c.delay_s; },
      [](const VecCombo& c) { return c.leakage_w; });
}

void apply_option(ComponentAssignment& asg, ComponentKind kind,
                  const ComponentOption& opt) {
  asg.set(kind, opt.knobs);
  asg.set_gated(kind, opt.gated);
}

OptOutcome<SchemeResult> optimize_space_exhaustive(
    const ComponentEvaluator& eval,
    const std::vector<tech::DeviceKnobs>& pairs, Scheme scheme,
    double delay_constraint_s, const OptSpace& space) {
  switch (scheme) {
    case Scheme::kPerComponent: {
      const auto tables = space_component_tables(eval, space, pairs);
      std::vector<VecCombo> combos{VecCombo{}};
      for (std::size_t i = 0; i < tables.size(); ++i) {
        combos = combine_vec(combos, tables[i], i);
      }
      count_combos(combos.size());

      struct Acc {
        const VecCombo* best = nullptr;
        double fastest = std::numeric_limits<double>::infinity();
      };
      const Acc acc = par::parallel_reduce(
          combos.size(), Acc{},
          [&](Acc& a, std::size_t i) {
            const VecCombo& c = combos[i];
            a.fastest = std::min(a.fastest, c.delay_s);
            if (c.delay_s > delay_constraint_s) return;
            if (a.best == nullptr || better_vec_combo(c, *a.best)) a.best = &c;
          },
          [](Acc& into, Acc&& from) {
            into.fastest = std::min(into.fastest, from.fastest);
            if (from.best != nullptr &&
                (into.best == nullptr ||
                 better_vec_combo(*from.best, *into.best))) {
              into.best = from.best;
            }
          });
      if (acc.best == nullptr) {
        return infeasible_delay(delay_constraint_s, acc.fastest, scheme);
      }
      SchemeResult r;
      r.leakage_w = acc.best->leakage_w;
      r.access_time_s = acc.best->delay_s;
      r.dynamic_energy_j = acc.best->dynamic_j;
      for (std::size_t i = 0; i < space.components.size(); ++i) {
        apply_option(r.assignment, space.components[i],
                     tables[i][acc.best->choice[i]]);
      }
      return r;
    }

    case Scheme::kArrayPeriphery: {
      const auto array_opts = space_block_options(eval, space, true, pairs);
      const auto periph_opts = space_block_options(eval, space, false, pairs);
      const std::size_t np = periph_opts.size();
      count_combos(array_opts.size() * np);
      detail::count_combos_evaluated(array_opts.size() * np);
      const FlatBest best = par::parallel_reduce(
          array_opts.size() * np, FlatBest{},
          [&](FlatBest& acc, std::size_t i) {
            const auto& a = array_opts[i / np];
            const auto& p = periph_opts[i % np];
            const double delay = a.delay_s + p.delay_s;
            acc.fastest = std::min(acc.fastest, delay);
            if (delay > delay_constraint_s) return;
            const double leak = a.leakage_w + p.leakage_w;
            if (acc.candidate_better(leak, delay, i)) {
              acc.has = true;
              acc.leakage_w = leak;
              acc.delay_s = delay;
              acc.dynamic_j = a.dynamic_j + p.dynamic_j;
              acc.index = i;
            }
          },
          [](FlatBest& into, FlatBest&& from) { into.merge(from); });
      if (!best.has) {
        return infeasible_delay(delay_constraint_s, best.fastest, scheme);
      }
      SchemeResult r;
      const auto& a = array_opts[best.index / np];
      const auto& p = periph_opts[best.index % np];
      for (std::size_t i = 0; i < space.components.size(); ++i) {
        apply_option(r.assignment, space.components[i],
                     i < space.array_count ? a : p);
      }
      r.leakage_w = best.leakage_w;
      r.access_time_s = best.delay_s;
      r.dynamic_energy_j = best.dynamic_j;
      return r;
    }

    case Scheme::kUniform: {
      const auto opts = space_uniform_options(eval, space, pairs);
      count_combos(opts.size());
      detail::count_combos_evaluated(opts.size());
      const FlatBest best = par::parallel_reduce(
          opts.size(), FlatBest{},
          [&](FlatBest& acc, std::size_t i) {
            const auto& o = opts[i];
            acc.fastest = std::min(acc.fastest, o.delay_s);
            if (o.delay_s > delay_constraint_s) return;
            if (acc.candidate_better(o.leakage_w, o.delay_s, i)) {
              acc.has = true;
              acc.leakage_w = o.leakage_w;
              acc.delay_s = o.delay_s;
              acc.dynamic_j = o.dynamic_j;
              acc.index = i;
            }
          },
          [](FlatBest& into, FlatBest&& from) { into.merge(from); });
      if (!best.has) {
        return infeasible_delay(delay_constraint_s, best.fastest, scheme);
      }
      SchemeResult r;
      for (std::size_t i = 0; i < space.components.size(); ++i) {
        apply_option(r.assignment, space.components[i], opts[best.index]);
      }
      r.leakage_w = best.leakage_w;
      r.access_time_s = best.delay_s;
      r.dynamic_energy_j = best.dynamic_j;
      return r;
    }
  }
  throw Error("unknown scheme");
}

}  // namespace

OptOutcome<SchemeResult> optimize_single_cache(
    const ComponentEvaluator& eval, const KnobGrid& grid, Scheme scheme,
    double delay_constraint_s, SearchMode mode, const OptSpace& space) {
  static auto& optimize_calls =
      metrics::Registry::instance().counter("opt.optimize_calls");
  optimize_calls.add(1);
  NC_REQUIRE(delay_constraint_s > 0.0, "delay constraint must be positive");
  if (mode == SearchMode::kPruned) {
    return optimize_single_cache_pruned(eval, grid, scheme,
                                        delay_constraint_s, space);
  }
  const auto pairs = grid.pairs();
  if (!(space.is_base() && !space.gating.enabled)) {
    return optimize_space_exhaustive(eval, pairs, scheme, delay_constraint_s,
                                     space);
  }

  switch (scheme) {
    case Scheme::kPerComponent: {
      const auto options = all_options(eval, pairs);
      auto combos = scheme1_combos(options);
      count_combos(combos.size());
      return pick_best(combos, options, delay_constraint_s, scheme);
    }

    case Scheme::kArrayPeriphery: {
      const auto array_opts = component_options(
          eval, ComponentKind::kCellArray, pairs);
      const auto periph_opts = periphery_options(eval, pairs);
      const std::size_t np = periph_opts.size();
      count_combos(array_opts.size() * np);
      detail::count_combos_evaluated(array_opts.size() * np);
      const FlatBest best = par::parallel_reduce(
          array_opts.size() * np, FlatBest{},
          [&](FlatBest& acc, std::size_t i) {
            const auto& a = array_opts[i / np];
            const auto& p = periph_opts[i % np];
            const double delay = a.delay_s + p.delay_s;
            acc.fastest = std::min(acc.fastest, delay);
            if (delay > delay_constraint_s) return;
            const double leak = a.leakage_w + p.leakage_w;
            if (acc.candidate_better(leak, delay, i)) {
              acc.has = true;
              acc.leakage_w = leak;
              acc.delay_s = delay;
              acc.dynamic_j = a.dynamic_j + p.dynamic_j;
              acc.index = i;
            }
          },
          [](FlatBest& into, FlatBest&& from) { into.merge(from); });
      if (!best.has) {
        return infeasible_delay(delay_constraint_s, best.fastest, scheme);
      }
      SchemeResult r;
      r.assignment = ComponentAssignment::split(
          array_opts[best.index / np].knobs, periph_opts[best.index % np].knobs);
      r.leakage_w = best.leakage_w;
      r.access_time_s = best.delay_s;
      r.dynamic_energy_j = best.dynamic_j;
      return r;
    }

    case Scheme::kUniform: {
      const auto opts = uniform_options(eval, pairs);
      count_combos(opts.size());
      detail::count_combos_evaluated(opts.size());
      const FlatBest best = par::parallel_reduce(
          opts.size(), FlatBest{},
          [&](FlatBest& acc, std::size_t i) {
            const auto& o = opts[i];
            acc.fastest = std::min(acc.fastest, o.delay_s);
            if (o.delay_s > delay_constraint_s) return;
            if (acc.candidate_better(o.leakage_w, o.delay_s, i)) {
              acc.has = true;
              acc.leakage_w = o.leakage_w;
              acc.delay_s = o.delay_s;
              acc.dynamic_j = o.dynamic_j;
              acc.index = i;
            }
          },
          [](FlatBest& into, FlatBest&& from) { into.merge(from); });
      if (!best.has) {
        return infeasible_delay(delay_constraint_s, best.fastest, scheme);
      }
      SchemeResult r;
      r.assignment = ComponentAssignment(opts[best.index].knobs);
      r.leakage_w = best.leakage_w;
      r.access_time_s = best.delay_s;
      r.dynamic_energy_j = best.dynamic_j;
      return r;
    }
  }
  throw Error("unknown scheme");
}

double min_access_time(const ComponentEvaluator& eval, const KnobGrid& grid,
                       Scheme scheme, const OptSpace& space) {
  const auto pairs = grid.pairs();
  double best = std::numeric_limits<double>::infinity();
  if (!(space.is_base() && !space.gating.enabled)) {
    switch (scheme) {
      case Scheme::kPerComponent: {
        double total = 0.0;
        for (const auto& table : space_component_tables(eval, space, pairs)) {
          double comp_best = std::numeric_limits<double>::infinity();
          for (const auto& o : table) {
            comp_best = std::min(comp_best, o.delay_s);
          }
          total += comp_best;
        }
        return total;
      }
      case Scheme::kArrayPeriphery: {
        double a_best = std::numeric_limits<double>::infinity();
        for (const auto& o : space_block_options(eval, space, true, pairs)) {
          a_best = std::min(a_best, o.delay_s);
        }
        double p_best = std::numeric_limits<double>::infinity();
        for (const auto& o : space_block_options(eval, space, false, pairs)) {
          p_best = std::min(p_best, o.delay_s);
        }
        return a_best + p_best;
      }
      case Scheme::kUniform: {
        for (const auto& o : space_uniform_options(eval, space, pairs)) {
          best = std::min(best, o.delay_s);
        }
        return best;
      }
    }
    throw Error("unknown scheme");
  }
  switch (scheme) {
    case Scheme::kPerComponent: {
      // Independent per-component minima sum to the overall minimum.
      double total = 0.0;
      for (ComponentKind kind : kAllComponents) {
        double comp_best = std::numeric_limits<double>::infinity();
        for (const auto& o : component_options(eval, kind, pairs)) {
          comp_best = std::min(comp_best, o.delay_s);
        }
        total += comp_best;
      }
      return total;
    }
    case Scheme::kArrayPeriphery: {
      double a_best = std::numeric_limits<double>::infinity();
      for (const auto& o :
           component_options(eval, ComponentKind::kCellArray, pairs)) {
        a_best = std::min(a_best, o.delay_s);
      }
      double p_best = std::numeric_limits<double>::infinity();
      for (const auto& o : periphery_options(eval, pairs)) {
        p_best = std::min(p_best, o.delay_s);
      }
      return a_best + p_best;
    }
    case Scheme::kUniform: {
      for (const auto& o : uniform_options(eval, pairs)) {
        best = std::min(best, o.delay_s);
      }
      return best;
    }
  }
  throw Error("unknown scheme");
}

std::vector<SchemeResult> scheme_frontier(const ComponentEvaluator& eval,
                                          const KnobGrid& grid, Scheme scheme,
                                          const OptSpace& space) {
  const auto pairs = grid.pairs();
  std::vector<SchemeResult> all;

  if (!(space.is_base() && !space.gating.enabled)) {
    switch (scheme) {
      case Scheme::kPerComponent: {
        const auto tables = space_component_tables(eval, space, pairs);
        std::vector<VecCombo> combos{VecCombo{}};
        for (std::size_t i = 0; i < tables.size(); ++i) {
          combos = combine_vec(combos, tables[i], i);
        }
        for (const auto& c : combos) {
          SchemeResult r;
          r.leakage_w = c.leakage_w;
          r.access_time_s = c.delay_s;
          r.dynamic_energy_j = c.dynamic_j;
          for (std::size_t i = 0; i < space.components.size(); ++i) {
            apply_option(r.assignment, space.components[i],
                         tables[i][c.choice[i]]);
          }
          all.push_back(std::move(r));
        }
        break;
      }
      case Scheme::kArrayPeriphery: {
        const auto array_opts = space_block_options(eval, space, true, pairs);
        const auto periph_opts =
            space_block_options(eval, space, false, pairs);
        all.reserve(array_opts.size() * periph_opts.size());
        for (const auto& a : array_opts) {
          for (const auto& p : periph_opts) {
            SchemeResult r;
            for (std::size_t i = 0; i < space.components.size(); ++i) {
              apply_option(r.assignment, space.components[i],
                           i < space.array_count ? a : p);
            }
            r.leakage_w = a.leakage_w + p.leakage_w;
            r.access_time_s = a.delay_s + p.delay_s;
            r.dynamic_energy_j = a.dynamic_j + p.dynamic_j;
            all.push_back(std::move(r));
          }
        }
        break;
      }
      case Scheme::kUniform: {
        for (const auto& o : space_uniform_options(eval, space, pairs)) {
          SchemeResult r;
          for (std::size_t i = 0; i < space.components.size(); ++i) {
            apply_option(r.assignment, space.components[i], o);
          }
          r.leakage_w = o.leakage_w;
          r.access_time_s = o.delay_s;
          r.dynamic_energy_j = o.dynamic_j;
          all.push_back(std::move(r));
        }
        break;
      }
    }
    return pareto_min2(
        std::move(all),
        [](const SchemeResult& r) { return r.access_time_s; },
        [](const SchemeResult& r) { return r.leakage_w; });
  }

  switch (scheme) {
    case Scheme::kPerComponent: {
      const auto options = all_options(eval, pairs);
      for (const auto& c : scheme1_combos(options)) {
        SchemeResult r;
        r.leakage_w = c.leakage_w;
        r.access_time_s = c.delay_s;
        r.dynamic_energy_j = c.dynamic_j;
        for (std::size_t i = 0; i < kNumComponents; ++i) {
          r.assignment.set(static_cast<ComponentKind>(i),
                           options[i][c.choice[i]].knobs);
        }
        all.push_back(std::move(r));
      }
      break;
    }
    case Scheme::kArrayPeriphery: {
      const auto array_opts =
          component_options(eval, ComponentKind::kCellArray, pairs);
      const auto periph_opts = periphery_options(eval, pairs);
      all.reserve(array_opts.size() * periph_opts.size());
      for (const auto& a : array_opts) {
        for (const auto& p : periph_opts) {
          SchemeResult r;
          r.assignment = ComponentAssignment::split(a.knobs, p.knobs);
          r.leakage_w = a.leakage_w + p.leakage_w;
          r.access_time_s = a.delay_s + p.delay_s;
          r.dynamic_energy_j = a.dynamic_j + p.dynamic_j;
          all.push_back(std::move(r));
        }
      }
      break;
    }
    case Scheme::kUniform: {
      for (const auto& o : uniform_options(eval, pairs)) {
        SchemeResult r;
        r.assignment = ComponentAssignment(o.knobs);
        r.leakage_w = o.leakage_w;
        r.access_time_s = o.delay_s;
        r.dynamic_energy_j = o.dynamic_j;
        all.push_back(std::move(r));
      }
      break;
    }
  }

  return pareto_min2(
      std::move(all), [](const SchemeResult& r) { return r.access_time_s; },
      [](const SchemeResult& r) { return r.leakage_w; });
}

std::vector<TradeoffPoint> leakage_delay_curve(
    const ComponentEvaluator& eval, const KnobGrid& grid, Scheme scheme,
    const std::vector<double>& delay_targets_s, SearchMode mode,
    const OptSpace& space) {
  // One optimization per target, fanned out over the pool; infeasible
  // targets are dropped after the sweep so output order is target order.
  const auto per_target = par::parallel_map(
      delay_targets_s.size(), [&](std::size_t i) {
        auto r = optimize_single_cache(eval, grid, scheme,
                                       delay_targets_s[i], mode, space);
        std::optional<TradeoffPoint> point;
        if (r) point = TradeoffPoint{delay_targets_s[i], *r};
        return point;
      });
  std::vector<TradeoffPoint> out;
  for (const auto& p : per_target) {
    if (p) out.push_back(*p);
  }
  return out;
}

}  // namespace nanocache::opt
