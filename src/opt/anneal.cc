#include "opt/anneal.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <optional>
#include <vector>

#include "util/error.h"
#include "util/numeric_guard.h"
#include "util/rng.h"

namespace nanocache::opt {

using cachemodel::ComponentAssignment;
using cachemodel::ComponentKind;
using cachemodel::kAllComponents;
using cachemodel::kNumComponents;

namespace {

/// The annealing state: per-block indices into the pair list.  Blocks
/// follow the scheme's sharing structure.
struct State {
  std::vector<std::size_t> choice;  // one index per block
};

std::vector<std::vector<ComponentKind>> blocks_for(Scheme scheme) {
  switch (scheme) {
    case Scheme::kPerComponent:
      return {{ComponentKind::kCellArray},
              {ComponentKind::kDecoder},
              {ComponentKind::kAddressDrivers},
              {ComponentKind::kDataDrivers}};
    case Scheme::kArrayPeriphery:
      return {{ComponentKind::kCellArray},
              {ComponentKind::kDecoder, ComponentKind::kAddressDrivers,
               ComponentKind::kDataDrivers}};
    case Scheme::kUniform:
      return {{ComponentKind::kCellArray, ComponentKind::kDecoder,
               ComponentKind::kAddressDrivers, ComponentKind::kDataDrivers}};
  }
  throw Error("unknown scheme");
}

}  // namespace

OptOutcome<SchemeResult> anneal_single_cache(
    const ComponentEvaluator& eval, const KnobGrid& grid, Scheme scheme,
    double delay_constraint_s, const AnnealConfig& config) {
  NC_REQUIRE(delay_constraint_s > 0.0, "delay constraint must be positive");
  NC_REQUIRE(config.iterations >= 100, "annealing needs >= 100 iterations");
  NC_REQUIRE(config.cooling > 0.0 && config.cooling < 1.0,
             "cooling must be in (0,1)");

  const auto pairs = grid.pairs();
  const auto blocks = blocks_for(scheme);

  // Precompute per-block (delay, leakage) for every pair.
  struct BlockOption {
    double delay_s;
    double leakage_w;
  };
  std::vector<std::vector<BlockOption>> options(blocks.size());
  double leak_scale = 0.0;
  for (std::size_t b = 0; b < blocks.size(); ++b) {
    options[b].reserve(pairs.size());
    for (const auto& pair : pairs) {
      BlockOption o{0.0, 0.0};
      for (ComponentKind kind : blocks[b]) {
        const auto m = eval(kind, pair);
        o.delay_s += num::ensure_finite(m.delay_s, "annealer option delay");
        o.leakage_w +=
            num::ensure_finite(m.leakage_w, "annealer option leakage");
      }
      options[b].push_back(o);
      leak_scale = std::max(leak_scale, o.leakage_w);
    }
  }
  NC_REQUIRE(leak_scale > 0.0, "degenerate leakage scale");

  auto cost_of = [&](const State& s, double* delay_out,
                     double* leak_out) {
    double delay = 0.0;
    double leakage = 0.0;
    for (std::size_t b = 0; b < blocks.size(); ++b) {
      delay += options[b][s.choice[b]].delay_s;
      leakage += options[b][s.choice[b]].leakage_w;
    }
    *delay_out = delay;
    *leak_out = leakage;
    const double violation =
        std::max(0.0, delay / delay_constraint_s - 1.0);
    return leakage / leak_scale + config.penalty_weight * violation;
  };

  Rng rng(config.seed);
  State current;
  current.choice.assign(blocks.size(), 0);  // fastest-ish corner start
  double cur_delay = 0.0;
  double cur_leak = 0.0;
  double cur_cost = cost_of(current, &cur_delay, &cur_leak);

  std::optional<SchemeResult> best;
  auto consider = [&](const State& s, double delay, double leakage) {
    if (delay > delay_constraint_s) return;
    if (best && leakage >= best->leakage_w) return;
    SchemeResult r;
    r.leakage_w = leakage;
    r.access_time_s = delay;
    for (std::size_t b = 0; b < blocks.size(); ++b) {
      for (ComponentKind kind : blocks[b]) {
        r.assignment.set(kind, pairs[s.choice[b]]);
      }
    }
    best = r;
  };
  consider(current, cur_delay, cur_leak);

  double temperature = config.initial_temperature;
  for (int it = 0; it < config.iterations; ++it) {
    State next = current;
    const std::size_t block = rng.below(blocks.size());
    // Neighbourhood: mostly local grid moves, occasional random jump.
    if (rng.uniform() < 0.85) {
      const auto cur_idx = static_cast<std::int64_t>(next.choice[block]);
      const std::int64_t step = rng.uniform() < 0.5 ? -1 : 1;
      // Pair index layout is vth-major; +-1 moves Tox, +-|tox| moves Vth.
      const std::int64_t stride =
          rng.uniform() < 0.5
              ? 1
              : static_cast<std::int64_t>(grid.tox_values.size());
      std::int64_t idx = cur_idx + step * stride;
      if (idx < 0 || idx >= static_cast<std::int64_t>(pairs.size())) {
        continue;
      }
      next.choice[block] = static_cast<std::size_t>(idx);
    } else {
      next.choice[block] = rng.below(pairs.size());
    }

    double nd = 0.0;
    double nl = 0.0;
    const double nc = cost_of(next, &nd, &nl);
    const double delta = nc - cur_cost;
    if (delta <= 0.0 ||
        rng.uniform() < std::exp(-delta / std::max(temperature, 1e-9))) {
      current = next;
      cur_cost = nc;
      cur_delay = nd;
      cur_leak = nl;
      consider(current, cur_delay, cur_leak);
    }
    temperature *= config.cooling;
  }
  if (!best) {
    double fastest = 0.0;
    for (std::size_t b = 0; b < blocks.size(); ++b) {
      double block_fastest = options[b].front().delay_s;
      for (const auto& o : options[b]) {
        block_fastest = std::min(block_fastest, o.delay_s);
      }
      fastest += block_fastest;
    }
    return OptOutcome<SchemeResult>::infeasible(InfeasibleInfo{
        "access time <= delay constraint [s]", delay_constraint_s, fastest,
        "annealing never reached a feasible state in " +
            std::to_string(config.iterations) + " iterations"});
  }
  return *best;
}

}  // namespace nanocache::opt
