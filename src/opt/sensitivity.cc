#include "opt/sensitivity.h"

#include <cmath>

#include "util/error.h"

namespace nanocache::opt {

using cachemodel::ComponentKind;
using cachemodel::kAllComponents;

double KnobSensitivity::leakage_efficiency_vth() const {
  NC_REQUIRE(delay_vs_vth != 0.0, "degenerate delay sensitivity");
  return std::abs(leakage_vs_vth / delay_vs_vth);
}

double KnobSensitivity::leakage_efficiency_tox() const {
  NC_REQUIRE(delay_vs_tox != 0.0, "degenerate delay sensitivity");
  return std::abs(leakage_vs_tox / delay_vs_tox);
}

namespace {

/// Clamp a central-difference stencil inside [lo, hi]; returns the actual
/// plus/minus abscissae used.
void stencil(double at, double step, double lo, double hi, double* minus,
             double* plus) {
  NC_REQUIRE(step > 0.0, "sensitivity step must be positive");
  NC_REQUIRE(at >= lo && at <= hi, "operating point outside knob range");
  *minus = std::max(lo, at - step);
  *plus = std::min(hi, at + step);
  NC_REQUIRE(*plus > *minus, "knob range too narrow for a stencil");
}

/// d ln f / dx by (possibly one-sided) finite differences.
template <typename F>
double log_derivative(F f, double at, double step, double lo, double hi) {
  double minus = 0.0;
  double plus = 0.0;
  stencil(at, step, lo, hi, &minus, &plus);
  const double f_minus = f(minus);
  const double f_plus = f(plus);
  NC_REQUIRE(f_minus > 0.0 && f_plus > 0.0,
             "log-sensitivity requires positive metrics");
  return (std::log(f_plus) - std::log(f_minus)) / (plus - minus);
}

template <typename LeakFn, typename DelayFn>
KnobSensitivity sensitivities(LeakFn leak, DelayFn delay,
                              const tech::DeviceKnobs& at,
                              const tech::KnobRange& range, double vth_step,
                              double tox_step) {
  KnobSensitivity s;
  s.leakage_vs_vth = log_derivative(
      [&](double v) { return leak(tech::DeviceKnobs{v, at.tox_a}); },
      at.vth_v, vth_step, range.vth_min_v, range.vth_max_v);
  s.leakage_vs_tox = log_derivative(
      [&](double t) { return leak(tech::DeviceKnobs{at.vth_v, t}); },
      at.tox_a, tox_step, range.tox_min_a, range.tox_max_a);
  s.delay_vs_vth = log_derivative(
      [&](double v) { return delay(tech::DeviceKnobs{v, at.tox_a}); },
      at.vth_v, vth_step, range.vth_min_v, range.vth_max_v);
  s.delay_vs_tox = log_derivative(
      [&](double t) { return delay(tech::DeviceKnobs{at.vth_v, t}); },
      at.tox_a, tox_step, range.tox_min_a, range.tox_max_a);
  return s;
}

}  // namespace

KnobSensitivity component_sensitivity(const ComponentEvaluator& eval,
                                      ComponentKind kind,
                                      const tech::DeviceKnobs& at,
                                      const tech::KnobRange& range,
                                      double vth_step_v, double tox_step_a) {
  return sensitivities(
      [&](const tech::DeviceKnobs& k) { return eval(kind, k).leakage_w; },
      [&](const tech::DeviceKnobs& k) { return eval(kind, k).delay_s; }, at,
      range, vth_step_v, tox_step_a);
}

KnobSensitivity cache_sensitivity(const ComponentEvaluator& eval,
                                  const tech::DeviceKnobs& at,
                                  const tech::KnobRange& range,
                                  double vth_step_v, double tox_step_a) {
  auto total = [&](const tech::DeviceKnobs& k, bool leak) {
    double sum = 0.0;
    for (ComponentKind kind : kAllComponents) {
      const auto m = eval(kind, k);
      sum += leak ? m.leakage_w : m.delay_s;
    }
    return sum;
  };
  return sensitivities(
      [&](const tech::DeviceKnobs& k) { return total(k, true); },
      [&](const tech::DeviceKnobs& k) { return total(k, false); }, at, range,
      vth_step_v, tox_step_a);
}

std::vector<KnobSensitivity> sensitivity_map(const ComponentEvaluator& eval,
                                             const KnobGrid& grid,
                                             const tech::KnobRange& range) {
  std::vector<KnobSensitivity> out;
  for (const auto& k : grid.pairs()) {
    out.push_back(cache_sensitivity(eval, k, range));
  }
  return out;
}

}  // namespace nanocache::opt
