// Simulated-annealing optimizer for knob assignment.  The exact Pareto-DP
// optimizers cover the paper's problem sizes; annealing is the scalable
// fallback for assignment spaces the DP cannot enumerate (many more
// components, finer grids, or objectives that break the additive structure)
// — and an independent cross-check of the exact results.
#pragma once

#include <cstdint>

#include "opt/outcome.h"
#include "opt/schemes.h"

namespace nanocache::opt {

struct AnnealConfig {
  int iterations = 20'000;
  double initial_temperature = 1.0;  ///< in units of the leakage scale
  double cooling = 0.9995;           ///< geometric cooling per step
  /// Penalty weight on delay-constraint violation, in leakage units per
  /// unit of relative violation.
  double penalty_weight = 50.0;
  std::uint64_t seed = 2005;
};

/// Minimize leakage subject to the access-time constraint under the given
/// scheme by annealing over the discrete grid.  Infeasible when no
/// feasible assignment was found (the run never left the infeasible
/// region); the outcome records the violated constraint and the fastest
/// state visited.  Deterministic for a given config.
OptOutcome<SchemeResult> anneal_single_cache(
    const ComponentEvaluator& eval, const KnobGrid& grid, Scheme scheme,
    double delay_constraint_s, const AnnealConfig& config = {});

}  // namespace nanocache::opt
