// The (Tox, Vth) tuple problem (paper Section 5, Figure 2): given a process
// menu with at most `num_tox` distinct oxide thicknesses and `num_vth`
// distinct threshold voltages, assign a menu pair to each of the eight
// cache components (4 per level) of an L1+L2+memory system so total energy
// per access is minimized subject to an AMAT constraint.
//
// Solved exactly per menu by Pareto-filtered DP over
// (AMAT-weighted delay, leakage, weighted dynamic energy); menus are
// enumerated exhaustively over grid subsets.
#pragma once

#include <optional>
#include <vector>

#include "energy/memory_system.h"
#include "opt/options.h"

namespace nanocache::opt {

/// Menu cardinality: the paper sweeps {1,2,3} x {1,2,3}.
struct MenuSpec {
  int num_tox = 2;
  int num_vth = 2;
};

/// One optimized system design.
struct SystemDesignPoint {
  double amat_s = 0.0;
  double energy_j = 0.0;        ///< total energy per access
  double leakage_w = 0.0;
  cachemodel::ComponentAssignment l1;
  cachemodel::ComponentAssignment l2;
  std::vector<double> tox_menu;
  std::vector<double> vth_menu;
};

class TupleMenuSolver {
 public:
  /// `system` supplies the two cache models and the miss statistics;
  /// evaluators default to the structural models of each level.
  TupleMenuSolver(const energy::MemorySystemModel& system, KnobGrid grid);

  /// Energy/AMAT Pareto frontier achievable with menus of the given
  /// cardinality (best menu chosen per point).
  std::vector<SystemDesignPoint> frontier(const MenuSpec& spec,
                                          std::size_t max_points = 96) const;

  /// Minimum-energy design meeting `amat_target_s`; nullopt if infeasible.
  std::optional<SystemDesignPoint> best_at(const MenuSpec& spec,
                                           double amat_target_s) const;

  /// Fastest achievable AMAT for the spec (feasibility bound).
  double min_amat_s(const MenuSpec& spec) const;

 private:
  std::vector<SystemDesignPoint> designs_for_menu(
      const std::vector<double>& vth_menu,
      const std::vector<double>& tox_menu) const;
  std::vector<SystemDesignPoint> all_designs(const MenuSpec& spec) const;

  const energy::MemorySystemModel& system_;
  KnobGrid grid_;
  /// DP state cap per combine step (documented approximation knob).
  std::size_t state_cap_ = 4096;
};

}  // namespace nanocache::opt
