#include "opt/options.h"

#include "util/error.h"
#include "util/numeric_guard.h"

namespace nanocache::opt {

using cachemodel::ComponentKind;
using cachemodel::ComponentMetrics;
using cachemodel::kAllComponents;

ComponentEvaluator structural_evaluator(const cachemodel::CacheModel& model) {
  return [&model](ComponentKind kind, const tech::DeviceKnobs& knobs) {
    return model.component(kind, knobs);
  };
}

ComponentEvaluator fitted_evaluator(
    const cachemodel::FittedCacheModel& fits,
    const cachemodel::CacheModel& dynamic_source) {
  return [&fits, &dynamic_source](ComponentKind kind,
                                  const tech::DeviceKnobs& knobs) {
    ComponentMetrics m = dynamic_source.component(kind, knobs);
    // Closed forms replace the structural leakage and delay.
    m.leakage_w = fits.component_leakage_w(kind, knobs);
    m.delay_s = fits.component_delay_s(kind, knobs);
    return m;
  };
}

std::vector<ComponentOption> component_options(
    const ComponentEvaluator& eval, ComponentKind kind,
    const std::vector<tech::DeviceKnobs>& pairs) {
  NC_REQUIRE(!pairs.empty(), "option table needs at least one pair");
  std::vector<ComponentOption> out;
  out.reserve(pairs.size());
  for (const auto& k : pairs) {
    const auto m = eval(kind, k);
    out.push_back(ComponentOption{
        k, num::ensure_finite(m.delay_s, "component option delay"),
        num::ensure_finite(m.leakage_w, "component option leakage"),
        num::ensure_finite(m.dynamic_energy_j,
                           "component option dynamic energy")});
  }
  return out;
}

std::vector<ComponentOption> periphery_options(
    const ComponentEvaluator& eval,
    const std::vector<tech::DeviceKnobs>& pairs) {
  NC_REQUIRE(!pairs.empty(), "option table needs at least one pair");
  std::vector<ComponentOption> out;
  out.reserve(pairs.size());
  for (const auto& k : pairs) {
    ComponentOption opt;
    opt.knobs = k;
    for (ComponentKind kind :
         {ComponentKind::kDecoder, ComponentKind::kAddressDrivers,
          ComponentKind::kDataDrivers}) {
      const auto m = eval(kind, k);
      opt.delay_s += num::ensure_finite(m.delay_s, "periphery option delay");
      opt.leakage_w +=
          num::ensure_finite(m.leakage_w, "periphery option leakage");
      opt.dynamic_j += num::ensure_finite(m.dynamic_energy_j,
                                          "periphery option dynamic energy");
    }
    out.push_back(opt);
  }
  return out;
}

std::vector<ComponentOption> uniform_options(
    const ComponentEvaluator& eval,
    const std::vector<tech::DeviceKnobs>& pairs) {
  NC_REQUIRE(!pairs.empty(), "option table needs at least one pair");
  std::vector<ComponentOption> out;
  out.reserve(pairs.size());
  for (const auto& k : pairs) {
    ComponentOption opt;
    opt.knobs = k;
    for (ComponentKind kind : kAllComponents) {
      const auto m = eval(kind, k);
      opt.delay_s += num::ensure_finite(m.delay_s, "uniform option delay");
      opt.leakage_w +=
          num::ensure_finite(m.leakage_w, "uniform option leakage");
      opt.dynamic_j += num::ensure_finite(m.dynamic_energy_j,
                                          "uniform option dynamic energy");
    }
    out.push_back(opt);
  }
  return out;
}

}  // namespace nanocache::opt
