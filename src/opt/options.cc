#include "opt/options.h"

#include <algorithm>

#include "util/error.h"
#include "util/metrics.h"
#include "util/numeric_guard.h"
#include "util/parallel.h"

namespace nanocache::opt {

using cachemodel::ComponentKind;
using cachemodel::ComponentMetrics;
using cachemodel::kAllComponents;

namespace {

/// Grids smaller than this are evaluated serially: one structural
/// evaluation is microseconds, so pool dispatch only pays off once the
/// pair count clears the fork-join overhead.  Outer sweep loops (targets,
/// sizes, menus) are the primary parallel axis; when one of those is
/// already running, nested calls here collapse to serial anyway.
constexpr std::size_t kMinParallelPairs = 64;

int option_threads(std::size_t n) {
  return n < kMinParallelPairs ? 1 : 0;  // 0 = pool default
}

void count_grid_points(std::size_t n) {
  static auto& grid_points =
      metrics::Registry::instance().counter("opt.grid_points_evaluated");
  grid_points.add(n);
}

/// Rows handed to one batched-kernel call.  Small enough that grids past
/// kMinParallelPairs split into several chunks for the pool, large enough
/// to amortize the per-call table allocation.
constexpr std::size_t kBatchChunkPairs = 32;

/// Per-component eval cost, used as the parallel_for serial-fallback hint.
constexpr std::uint64_t kEvalCostHintNs = 20'000;

/// Evaluate `kinds` at every pair through the batched kernel.  Chunked so
/// the pool can spread rows across workers; each chunk is an independent
/// batch() call and the assembly order is fixed, so the result is bitwise
/// identical at any thread count (and to the scalar path, per the batch
/// contract).  Returned as out[k][r] like CacheModel::components_batch.
std::vector<std::vector<ComponentMetrics>> batch_eval(
    const ComponentEvaluator::Batch& batch,
    const std::vector<ComponentKind>& kinds,
    const std::vector<tech::DeviceKnobs>& pairs) {
  const std::size_t n = pairs.size();
  const std::size_t num_chunks = (n + kBatchChunkPairs - 1) / kBatchChunkPairs;
  std::vector<std::vector<std::vector<ComponentMetrics>>> chunks(num_chunks);
  par::parallel_for(
      num_chunks,
      [&](std::size_t c) {
        const std::size_t lo = c * kBatchChunkPairs;
        const std::size_t hi = std::min(lo + kBatchChunkPairs, n);
        const std::vector<tech::DeviceKnobs> sub(pairs.begin() + lo,
                                                 pairs.begin() + hi);
        chunks[c] = batch(kinds, sub);
      },
      option_threads(n), /*chunk_size=*/1,
      /*cost_hint_ns=*/kEvalCostHintNs * kinds.size() * kBatchChunkPairs);
  std::vector<std::vector<ComponentMetrics>> out(kinds.size());
  for (auto& table : out) table.reserve(n);
  for (std::size_t c = 0; c < num_chunks; ++c) {
    for (std::size_t k = 0; k < kinds.size(); ++k) {
      auto& src = chunks[c][k];
      out[k].insert(out[k].end(), src.begin(), src.end());
    }
  }
  return out;
}

/// Fold one row of batched metrics into a summed option, in `kinds` order —
/// the same left fold the scalar loops perform, term for term.
ComponentOption fold_option_row(
    const std::vector<std::vector<ComponentMetrics>>& metrics, std::size_t r,
    const tech::DeviceKnobs& knobs, const char* delay_msg,
    const char* leakage_msg, const char* dynamic_msg) {
  ComponentOption opt;
  opt.knobs = knobs;
  for (const auto& table : metrics) {
    const auto& m = table[r];
    opt.delay_s += num::ensure_finite(m.delay_s, delay_msg);
    opt.leakage_w += num::ensure_finite(m.leakage_w, leakage_msg);
    opt.dynamic_j += num::ensure_finite(m.dynamic_energy_j, dynamic_msg);
  }
  return opt;
}

}  // namespace

ComponentEvaluator structural_evaluator(const cachemodel::CacheModel& model) {
  return ComponentEvaluator(
      [&model](ComponentKind kind, const tech::DeviceKnobs& knobs) {
        return model.component(kind, knobs);
      },
      [&model](const std::vector<ComponentKind>& kinds,
               const std::vector<tech::DeviceKnobs>& pairs) {
        return model.components_batch(kinds, pairs);
      });
}

ComponentEvaluator fitted_evaluator(
    const cachemodel::FittedCacheModel& fits,
    const cachemodel::CacheModel& dynamic_source) {
  return [&fits, &dynamic_source](ComponentKind kind,
                                  const tech::DeviceKnobs& knobs) {
    ComponentMetrics m = dynamic_source.component(kind, knobs);
    // Closed forms replace the structural leakage and delay.
    m.leakage_w = fits.component_leakage_w(kind, knobs);
    m.delay_s = fits.component_delay_s(kind, knobs);
    return m;
  };
}

std::vector<ComponentOption> component_options(
    const ComponentEvaluator& eval, ComponentKind kind,
    const std::vector<tech::DeviceKnobs>& pairs) {
  NC_REQUIRE(!pairs.empty(), "option table needs at least one pair");
  count_grid_points(pairs.size());
  if (const auto& batch = eval.batch()) {
    const auto metrics = batch_eval(batch, {kind}, pairs);
    std::vector<ComponentOption> out;
    out.reserve(pairs.size());
    for (std::size_t i = 0; i < pairs.size(); ++i) {
      const auto& m = metrics[0][i];
      out.push_back(ComponentOption{
          pairs[i], num::ensure_finite(m.delay_s, "component option delay"),
          num::ensure_finite(m.leakage_w, "component option leakage"),
          num::ensure_finite(m.dynamic_energy_j,
                             "component option dynamic energy")});
    }
    return out;
  }
  return par::parallel_map(
      pairs.size(),
      [&](std::size_t i) {
        const auto& k = pairs[i];
        const auto m = eval(kind, k);
        return ComponentOption{
            k, num::ensure_finite(m.delay_s, "component option delay"),
            num::ensure_finite(m.leakage_w, "component option leakage"),
            num::ensure_finite(m.dynamic_energy_j,
                               "component option dynamic energy")};
      },
      option_threads(pairs.size()), /*chunk_size=*/0,
      /*cost_hint_ns=*/kEvalCostHintNs);
}

std::vector<ComponentOption> periphery_options(
    const ComponentEvaluator& eval,
    const std::vector<tech::DeviceKnobs>& pairs) {
  NC_REQUIRE(!pairs.empty(), "option table needs at least one pair");
  count_grid_points(pairs.size());
  static const std::vector<ComponentKind> kPeriphery{
      ComponentKind::kDecoder, ComponentKind::kAddressDrivers,
      ComponentKind::kDataDrivers};
  if (const auto& batch = eval.batch()) {
    const auto metrics = batch_eval(batch, kPeriphery, pairs);
    std::vector<ComponentOption> out;
    out.reserve(pairs.size());
    for (std::size_t i = 0; i < pairs.size(); ++i) {
      out.push_back(fold_option_row(metrics, i, pairs[i],
                                    "periphery option delay",
                                    "periphery option leakage",
                                    "periphery option dynamic energy"));
    }
    return out;
  }
  return par::parallel_map(
      pairs.size(),
      [&](std::size_t i) {
        const auto& k = pairs[i];
        ComponentOption opt;
        opt.knobs = k;
        for (ComponentKind kind : kPeriphery) {
          const auto m = eval(kind, k);
          opt.delay_s +=
              num::ensure_finite(m.delay_s, "periphery option delay");
          opt.leakage_w +=
              num::ensure_finite(m.leakage_w, "periphery option leakage");
          opt.dynamic_j += num::ensure_finite(
              m.dynamic_energy_j, "periphery option dynamic energy");
        }
        return opt;
      },
      option_threads(pairs.size()), /*chunk_size=*/0,
      /*cost_hint_ns=*/kEvalCostHintNs * kPeriphery.size());
}

std::vector<ComponentOption> block_options(
    const ComponentEvaluator& eval,
    const std::vector<ComponentKind>& kinds,
    const std::vector<tech::DeviceKnobs>& pairs) {
  NC_REQUIRE(!kinds.empty(), "component block needs at least one member");
  NC_REQUIRE(!pairs.empty(), "option table needs at least one pair");
  count_grid_points(pairs.size());
  if (const auto& batch = eval.batch()) {
    const auto metrics = batch_eval(batch, kinds, pairs);
    std::vector<ComponentOption> out;
    out.reserve(pairs.size());
    for (std::size_t i = 0; i < pairs.size(); ++i) {
      out.push_back(fold_option_row(metrics, i, pairs[i],
                                    "block option delay",
                                    "block option leakage",
                                    "block option dynamic energy"));
    }
    return out;
  }
  return par::parallel_map(
      pairs.size(),
      [&](std::size_t i) {
        const auto& k = pairs[i];
        ComponentOption opt;
        opt.knobs = k;
        for (ComponentKind kind : kinds) {
          const auto m = eval(kind, k);
          opt.delay_s += num::ensure_finite(m.delay_s, "block option delay");
          opt.leakage_w +=
              num::ensure_finite(m.leakage_w, "block option leakage");
          opt.dynamic_j += num::ensure_finite(m.dynamic_energy_j,
                                              "block option dynamic energy");
        }
        return opt;
      },
      option_threads(pairs.size()), /*chunk_size=*/0,
      /*cost_hint_ns=*/kEvalCostHintNs * kinds.size());
}

OptSpace OptSpace::base() {
  OptSpace s;
  s.components = {ComponentKind::kCellArray, ComponentKind::kDecoder,
                  ComponentKind::kAddressDrivers,
                  ComponentKind::kDataDrivers};
  s.array_count = 1;
  return s;
}

OptSpace OptSpace::extended() {
  OptSpace s;
  s.components = {ComponentKind::kCellArray,
                  ComponentKind::kTagArray,
                  ComponentKind::kDecoder,
                  ComponentKind::kAddressDrivers,
                  ComponentKind::kDataDrivers,
                  ComponentKind::kWayComparators};
  s.array_count = 2;
  return s;
}

bool OptSpace::is_base() const {
  return array_count == 1 && components.size() == cachemodel::kNumComponents &&
         components[0] == ComponentKind::kCellArray &&
         components[1] == ComponentKind::kDecoder &&
         components[2] == ComponentKind::kAddressDrivers &&
         components[3] == ComponentKind::kDataDrivers;
}

std::vector<ComponentOption> with_gating(std::vector<ComponentOption> options,
                                         const GatingSpec& gating) {
  if (!gating.enabled) return options;
  NC_REQUIRE(gating.sleep_leakage_factor > 0.0 &&
                 gating.sleep_leakage_factor <= 1.0,
             "sleep leakage factor must be in (0, 1]");
  NC_REQUIRE(gating.wake_delay_factor >= 0.0,
             "wake delay factor must be non-negative");
  std::vector<ComponentOption> out;
  out.reserve(options.size() * 2);
  for (const auto& o : options) {
    out.push_back(o);
    ComponentOption g = o;
    g.gated = true;
    g.leakage_w *= gating.sleep_leakage_factor;
    g.delay_s *= 1.0 + gating.wake_delay_factor;
    out.push_back(g);
  }
  return out;
}

std::vector<std::vector<ComponentOption>> space_component_tables(
    const ComponentEvaluator& eval, const OptSpace& space,
    const std::vector<tech::DeviceKnobs>& pairs) {
  NC_REQUIRE(!space.components.empty(), "optimization space has no components");
  std::vector<std::vector<ComponentOption>> tables;
  tables.reserve(space.components.size());
  for (ComponentKind kind : space.components) {
    tables.push_back(
        with_gating(component_options(eval, kind, pairs), space.gating));
  }
  return tables;
}

std::vector<ComponentOption> space_block_options(
    const ComponentEvaluator& eval, const OptSpace& space, bool array_block,
    const std::vector<tech::DeviceKnobs>& pairs) {
  NC_REQUIRE(space.array_count >= 1 &&
                 space.array_count < space.components.size(),
             "space must split into non-empty array and periphery blocks");
  std::vector<ComponentKind> kinds;
  if (array_block) {
    kinds.assign(space.components.begin(),
                 space.components.begin() +
                     static_cast<std::ptrdiff_t>(space.array_count));
  } else {
    kinds.assign(space.components.begin() +
                     static_cast<std::ptrdiff_t>(space.array_count),
                 space.components.end());
  }
  return with_gating(block_options(eval, kinds, pairs), space.gating);
}

std::vector<ComponentOption> space_uniform_options(
    const ComponentEvaluator& eval, const OptSpace& space,
    const std::vector<tech::DeviceKnobs>& pairs) {
  return with_gating(block_options(eval, space.components, pairs),
                     space.gating);
}

std::vector<ComponentOption> uniform_options(
    const ComponentEvaluator& eval,
    const std::vector<tech::DeviceKnobs>& pairs) {
  NC_REQUIRE(!pairs.empty(), "option table needs at least one pair");
  count_grid_points(pairs.size());
  static const std::vector<ComponentKind> kUniform(kAllComponents.begin(),
                                                   kAllComponents.end());
  if (const auto& batch = eval.batch()) {
    const auto metrics = batch_eval(batch, kUniform, pairs);
    std::vector<ComponentOption> out;
    out.reserve(pairs.size());
    for (std::size_t i = 0; i < pairs.size(); ++i) {
      out.push_back(fold_option_row(metrics, i, pairs[i],
                                    "uniform option delay",
                                    "uniform option leakage",
                                    "uniform option dynamic energy"));
    }
    return out;
  }
  return par::parallel_map(
      pairs.size(),
      [&](std::size_t i) {
        const auto& k = pairs[i];
        ComponentOption opt;
        opt.knobs = k;
        for (ComponentKind kind : kAllComponents) {
          const auto m = eval(kind, k);
          opt.delay_s +=
              num::ensure_finite(m.delay_s, "uniform option delay");
          opt.leakage_w +=
              num::ensure_finite(m.leakage_w, "uniform option leakage");
          opt.dynamic_j += num::ensure_finite(
              m.dynamic_energy_j, "uniform option dynamic energy");
        }
        return opt;
      },
      option_threads(pairs.size()), /*chunk_size=*/0,
      /*cost_hint_ns=*/kEvalCostHintNs * kAllComponents.size());
}

}  // namespace nanocache::opt
