#include "opt/options.h"

#include "util/error.h"
#include "util/metrics.h"
#include "util/numeric_guard.h"
#include "util/parallel.h"

namespace nanocache::opt {

using cachemodel::ComponentKind;
using cachemodel::ComponentMetrics;
using cachemodel::kAllComponents;

namespace {

/// Grids smaller than this are evaluated serially: one structural
/// evaluation is microseconds, so pool dispatch only pays off once the
/// pair count clears the fork-join overhead.  Outer sweep loops (targets,
/// sizes, menus) are the primary parallel axis; when one of those is
/// already running, nested calls here collapse to serial anyway.
constexpr std::size_t kMinParallelPairs = 64;

int option_threads(std::size_t n) {
  return n < kMinParallelPairs ? 1 : 0;  // 0 = pool default
}

void count_grid_points(std::size_t n) {
  static auto& grid_points =
      metrics::Registry::instance().counter("opt.grid_points_evaluated");
  grid_points.add(n);
}

}  // namespace

ComponentEvaluator structural_evaluator(const cachemodel::CacheModel& model) {
  return [&model](ComponentKind kind, const tech::DeviceKnobs& knobs) {
    return model.component(kind, knobs);
  };
}

ComponentEvaluator fitted_evaluator(
    const cachemodel::FittedCacheModel& fits,
    const cachemodel::CacheModel& dynamic_source) {
  return [&fits, &dynamic_source](ComponentKind kind,
                                  const tech::DeviceKnobs& knobs) {
    ComponentMetrics m = dynamic_source.component(kind, knobs);
    // Closed forms replace the structural leakage and delay.
    m.leakage_w = fits.component_leakage_w(kind, knobs);
    m.delay_s = fits.component_delay_s(kind, knobs);
    return m;
  };
}

std::vector<ComponentOption> component_options(
    const ComponentEvaluator& eval, ComponentKind kind,
    const std::vector<tech::DeviceKnobs>& pairs) {
  NC_REQUIRE(!pairs.empty(), "option table needs at least one pair");
  count_grid_points(pairs.size());
  return par::parallel_map(
      pairs.size(),
      [&](std::size_t i) {
        const auto& k = pairs[i];
        const auto m = eval(kind, k);
        return ComponentOption{
            k, num::ensure_finite(m.delay_s, "component option delay"),
            num::ensure_finite(m.leakage_w, "component option leakage"),
            num::ensure_finite(m.dynamic_energy_j,
                               "component option dynamic energy")};
      },
      option_threads(pairs.size()));
}

std::vector<ComponentOption> periphery_options(
    const ComponentEvaluator& eval,
    const std::vector<tech::DeviceKnobs>& pairs) {
  NC_REQUIRE(!pairs.empty(), "option table needs at least one pair");
  count_grid_points(pairs.size());
  return par::parallel_map(
      pairs.size(),
      [&](std::size_t i) {
        const auto& k = pairs[i];
        ComponentOption opt;
        opt.knobs = k;
        for (ComponentKind kind :
             {ComponentKind::kDecoder, ComponentKind::kAddressDrivers,
              ComponentKind::kDataDrivers}) {
          const auto m = eval(kind, k);
          opt.delay_s +=
              num::ensure_finite(m.delay_s, "periphery option delay");
          opt.leakage_w +=
              num::ensure_finite(m.leakage_w, "periphery option leakage");
          opt.dynamic_j += num::ensure_finite(
              m.dynamic_energy_j, "periphery option dynamic energy");
        }
        return opt;
      },
      option_threads(pairs.size()));
}

std::vector<ComponentOption> uniform_options(
    const ComponentEvaluator& eval,
    const std::vector<tech::DeviceKnobs>& pairs) {
  NC_REQUIRE(!pairs.empty(), "option table needs at least one pair");
  count_grid_points(pairs.size());
  return par::parallel_map(
      pairs.size(),
      [&](std::size_t i) {
        const auto& k = pairs[i];
        ComponentOption opt;
        opt.knobs = k;
        for (ComponentKind kind : kAllComponents) {
          const auto m = eval(kind, k);
          opt.delay_s +=
              num::ensure_finite(m.delay_s, "uniform option delay");
          opt.leakage_w +=
              num::ensure_finite(m.leakage_w, "uniform option leakage");
          opt.dynamic_j += num::ensure_finite(
              m.dynamic_energy_j, "uniform option dynamic energy");
        }
        return opt;
      },
      option_threads(pairs.size()));
}

}  // namespace nanocache::opt
