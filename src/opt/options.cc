#include "opt/options.h"

#include "util/error.h"

namespace nanocache::opt {

using cachemodel::ComponentKind;
using cachemodel::ComponentMetrics;
using cachemodel::kAllComponents;

ComponentEvaluator structural_evaluator(const cachemodel::CacheModel& model) {
  return [&model](ComponentKind kind, const tech::DeviceKnobs& knobs) {
    return model.component(kind, knobs);
  };
}

ComponentEvaluator fitted_evaluator(
    const cachemodel::FittedCacheModel& fits,
    const cachemodel::CacheModel& dynamic_source) {
  return [&fits, &dynamic_source](ComponentKind kind,
                                  const tech::DeviceKnobs& knobs) {
    ComponentMetrics m = dynamic_source.component(kind, knobs);
    // Closed forms replace the structural leakage and delay.
    m.leakage_w = fits.component_leakage_w(kind, knobs);
    m.delay_s = fits.component_delay_s(kind, knobs);
    return m;
  };
}

std::vector<ComponentOption> component_options(
    const ComponentEvaluator& eval, ComponentKind kind,
    const std::vector<tech::DeviceKnobs>& pairs) {
  NC_REQUIRE(!pairs.empty(), "option table needs at least one pair");
  std::vector<ComponentOption> out;
  out.reserve(pairs.size());
  for (const auto& k : pairs) {
    const auto m = eval(kind, k);
    out.push_back(ComponentOption{k, m.delay_s, m.leakage_w,
                                  m.dynamic_energy_j});
  }
  return out;
}

std::vector<ComponentOption> periphery_options(
    const ComponentEvaluator& eval,
    const std::vector<tech::DeviceKnobs>& pairs) {
  NC_REQUIRE(!pairs.empty(), "option table needs at least one pair");
  std::vector<ComponentOption> out;
  out.reserve(pairs.size());
  for (const auto& k : pairs) {
    ComponentOption opt;
    opt.knobs = k;
    for (ComponentKind kind :
         {ComponentKind::kDecoder, ComponentKind::kAddressDrivers,
          ComponentKind::kDataDrivers}) {
      const auto m = eval(kind, k);
      opt.delay_s += m.delay_s;
      opt.leakage_w += m.leakage_w;
      opt.dynamic_j += m.dynamic_energy_j;
    }
    out.push_back(opt);
  }
  return out;
}

std::vector<ComponentOption> uniform_options(
    const ComponentEvaluator& eval,
    const std::vector<tech::DeviceKnobs>& pairs) {
  NC_REQUIRE(!pairs.empty(), "option table needs at least one pair");
  std::vector<ComponentOption> out;
  out.reserve(pairs.size());
  for (const auto& k : pairs) {
    ComponentOption opt;
    opt.knobs = k;
    for (ComponentKind kind : kAllComponents) {
      const auto m = eval(kind, k);
      opt.delay_s += m.delay_s;
      opt.leakage_w += m.leakage_w;
      opt.dynamic_j += m.dynamic_energy_j;
    }
    out.push_back(opt);
  }
  return out;
}

}  // namespace nanocache::opt
