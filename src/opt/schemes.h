// Single-cache leakage optimization (paper Section 4): minimize total
// leakage subject to an access-time constraint, under the three Vth/Tox
// assignment schemes.  All three are solved exactly over the discrete grid
// (Scheme I via Pareto-filtered dynamic programming, which is exhaustive-
// equivalent for monotone objectives).
#pragma once

#include <string>

#include "opt/options.h"
#include "opt/outcome.h"
#include "opt/search_mode.h"

namespace nanocache::opt {

/// The paper's three assignment schemes.
enum class Scheme {
  kPerComponent,    ///< Scheme I: independent pair per component
  kArrayPeriphery,  ///< Scheme II: array pair + shared periphery pair
  kUniform,         ///< Scheme III: one pair for the whole cache
};

std::string scheme_name(Scheme scheme);

struct SchemeResult {
  cachemodel::ComponentAssignment assignment;
  double leakage_w = 0.0;
  double access_time_s = 0.0;
  double dynamic_energy_j = 0.0;
};

/// Minimize leakage subject to access_time <= delay_constraint_s.
/// When no grid assignment meets the constraint the outcome is infeasible
/// and carries the violated constraint plus the fastest achievable time.
/// Both search modes return byte-identical results (opt/pruned.h); the
/// exhaustive mode is the differential-testing oracle.
///
/// `space` selects the component structure (and the power-gating axis);
/// the default is the paper's fixed four-component space, which runs the
/// original code paths untouched.
OptOutcome<SchemeResult> optimize_single_cache(
    const ComponentEvaluator& eval, const KnobGrid& grid, Scheme scheme,
    double delay_constraint_s, SearchMode mode = SearchMode::kPruned,
    const OptSpace& space = OptSpace::base());

/// Fastest achievable access time under a scheme (the feasibility bound).
double min_access_time(const ComponentEvaluator& eval, const KnobGrid& grid,
                       Scheme scheme, const OptSpace& space = OptSpace::base());

/// Leakage-vs-delay trade-off curve: optimal leakage at each constraint in
/// `delay_targets_s` (infeasible targets are skipped).
struct TradeoffPoint {
  double delay_constraint_s = 0.0;
  SchemeResult result;
};
std::vector<TradeoffPoint> leakage_delay_curve(
    const ComponentEvaluator& eval, const KnobGrid& grid, Scheme scheme,
    const std::vector<double>& delay_targets_s,
    SearchMode mode = SearchMode::kPruned,
    const OptSpace& space = OptSpace::base());

/// The full (access time, leakage) Pareto front of a cache under a scheme:
/// every non-dominated assignment on the grid, sorted by access time
/// ascending / leakage descending.  This is the per-level primitive joint
/// multi-level studies combine.
std::vector<SchemeResult> scheme_frontier(
    const ComponentEvaluator& eval, const KnobGrid& grid, Scheme scheme,
    const OptSpace& space = OptSpace::base());

}  // namespace nanocache::opt
