// Per-component option tables: each (Vth, Tox) grid pair evaluated to the
// component's delay/leakage/dynamic-energy.  Both the structural model and
// the paper's fitted closed forms plug in through the same evaluator
// signature, so every optimizer runs on either.
#pragma once

#include <functional>
#include <type_traits>
#include <utility>
#include <vector>

#include "cachemodel/cache_model.h"
#include "cachemodel/fitted_cache.h"
#include "opt/grid.h"

namespace nanocache::opt {

/// Evaluator shared by all optimizers: a scalar (kind, knobs) -> metrics
/// callable, optionally paired with a batched kernel that evaluates many
/// kinds at many knob pairs in one call (CacheModel::components_batch).
/// The batch hook must return values bitwise equal to the scalar path —
/// the option-table builders use it when present and fall back to the
/// scalar callable otherwise, so the two must be interchangeable.
class ComponentEvaluator {
 public:
  using Scalar = std::function<cachemodel::ComponentMetrics(
      cachemodel::ComponentKind, const tech::DeviceKnobs&)>;
  using Batch =
      std::function<std::vector<std::vector<cachemodel::ComponentMetrics>>(
          const std::vector<cachemodel::ComponentKind>&,
          const std::vector<tech::DeviceKnobs>&)>;

  ComponentEvaluator() = default;

  /// Implicit from any scalar callable, so existing lambdas (including the
  /// explorer's degradation wrappers) keep working unchanged.
  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, ComponentEvaluator> &&
                std::is_constructible_v<Scalar, F&&>>>
  ComponentEvaluator(F&& scalar)  // NOLINT(google-explicit-constructor)
      : scalar_(std::forward<F>(scalar)) {}

  ComponentEvaluator(Scalar scalar, Batch batch)
      : scalar_(std::move(scalar)), batch_(std::move(batch)) {}

  cachemodel::ComponentMetrics operator()(
      cachemodel::ComponentKind kind, const tech::DeviceKnobs& knobs) const {
    return scalar_(kind, knobs);
  }

  /// Empty when this evaluator has no batched kernel.
  const Batch& batch() const { return batch_; }

  explicit operator bool() const { return static_cast<bool>(scalar_); }

 private:
  Scalar scalar_;
  Batch batch_;
};

/// Evaluator backed by the structural (CACTI-style) model.
ComponentEvaluator structural_evaluator(const cachemodel::CacheModel& model);

/// Evaluator backed by the paper's fitted Eq. (1)/(2) closed forms.
/// Dynamic energy and area come from `dynamic_source` (the structural
/// model) since the paper's forms cover only leakage and delay.
ComponentEvaluator fitted_evaluator(const cachemodel::FittedCacheModel& fits,
                                    const cachemodel::CacheModel& dynamic_source);

/// One knob choice for one component.
struct ComponentOption {
  tech::DeviceKnobs knobs;
  double delay_s = 0.0;
  double leakage_w = 0.0;
  double dynamic_j = 0.0;
  /// Sleep-state variant: this option spends idle time power-gated,
  /// retaining a fraction of its leakage at a wake-up delay penalty.
  bool gated = false;
};

/// Per-domain power gating: a gated component keeps
/// `sleep_leakage_factor` of its leakage (sleep-transistor retention
/// supply) and pays `wake_delay_factor` extra access delay for wake-up.
/// The optimizer decides per domain whether the leakage savings are worth
/// the delay inside the performance-loss budget.
struct GatingSpec {
  bool enabled = false;
  double sleep_leakage_factor = 0.05;
  double wake_delay_factor = 0.10;
};

/// The component structure one optimization runs over: the paper's four
/// components (base) or the six of a split-tag organization (extended),
/// plus the power-gating axis.  The first `array_count` entries form the
/// SRAM-array block that shares Scheme II's first knob pair; the rest are
/// the periphery block.
struct OptSpace {
  std::vector<cachemodel::ComponentKind> components;
  std::size_t array_count = 1;
  GatingSpec gating;

  /// The paper's fixed four-component space.  Optimizations over this
  /// space (without gating) take the original code paths untouched.
  static OptSpace base();
  /// All six components of a split-tag organization: cell + tag arrays in
  /// the array block; decoder, drivers, and comparators in the periphery.
  static OptSpace extended();

  bool is_base() const;
};

/// Option tables for every component of a space, in space order, with
/// sleep-state variants interleaved when gating is enabled.  Both search
/// engines build their tables through this one function so every
/// floating-point value they compare is formed identically.
std::vector<std::vector<ComponentOption>> space_component_tables(
    const ComponentEvaluator& eval, const OptSpace& space,
    const std::vector<tech::DeviceKnobs>& pairs);

/// Scheme II block table over a space: the array block (first array_count
/// components) or the periphery block (the rest), gating variants
/// included.
std::vector<ComponentOption> space_block_options(
    const ComponentEvaluator& eval, const OptSpace& space, bool array_block,
    const std::vector<tech::DeviceKnobs>& pairs);

/// Scheme III uniform table over all of a space's components, gating
/// variants included.
std::vector<ComponentOption> space_uniform_options(
    const ComponentEvaluator& eval, const OptSpace& space,
    const std::vector<tech::DeviceKnobs>& pairs);

/// Interleave sleep-state variants into an option table: for each option,
/// the awake original followed by its gated twin (leakage scaled by the
/// sleep factor, delay by 1 + wake penalty, dynamic energy unchanged).
/// Identity when gating is disabled.
std::vector<ComponentOption> with_gating(std::vector<ComponentOption> options,
                                         const GatingSpec& gating);

/// Evaluate every pair for one component.
std::vector<ComponentOption> component_options(
    const ComponentEvaluator& eval, cachemodel::ComponentKind kind,
    const std::vector<tech::DeviceKnobs>& pairs);

/// Options for a block of components sharing one pair: the per-pair sums
/// of their delay/leakage/dynamic energy.
std::vector<ComponentOption> block_options(
    const ComponentEvaluator& eval,
    const std::vector<cachemodel::ComponentKind>& kinds,
    const std::vector<tech::DeviceKnobs>& pairs);

/// Options for a "merged periphery" pseudo-component: decoder + address
/// drivers + data drivers all at the same pair (Scheme II's second knob).
std::vector<ComponentOption> periphery_options(
    const ComponentEvaluator& eval,
    const std::vector<tech::DeviceKnobs>& pairs);

/// Options for the whole cache at a uniform pair (Scheme III).
std::vector<ComponentOption> uniform_options(
    const ComponentEvaluator& eval,
    const std::vector<tech::DeviceKnobs>& pairs);

}  // namespace nanocache::opt
