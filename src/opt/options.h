// Per-component option tables: each (Vth, Tox) grid pair evaluated to the
// component's delay/leakage/dynamic-energy.  Both the structural model and
// the paper's fitted closed forms plug in through the same evaluator
// signature, so every optimizer runs on either.
#pragma once

#include <functional>
#include <vector>

#include "cachemodel/cache_model.h"
#include "cachemodel/fitted_cache.h"
#include "opt/grid.h"

namespace nanocache::opt {

/// Evaluator signature shared by all optimizers.
using ComponentEvaluator = std::function<cachemodel::ComponentMetrics(
    cachemodel::ComponentKind, const tech::DeviceKnobs&)>;

/// Evaluator backed by the structural (CACTI-style) model.
ComponentEvaluator structural_evaluator(const cachemodel::CacheModel& model);

/// Evaluator backed by the paper's fitted Eq. (1)/(2) closed forms.
/// Dynamic energy and area come from `dynamic_source` (the structural
/// model) since the paper's forms cover only leakage and delay.
ComponentEvaluator fitted_evaluator(const cachemodel::FittedCacheModel& fits,
                                    const cachemodel::CacheModel& dynamic_source);

/// One knob choice for one component.
struct ComponentOption {
  tech::DeviceKnobs knobs;
  double delay_s = 0.0;
  double leakage_w = 0.0;
  double dynamic_j = 0.0;
};

/// Evaluate every pair for one component.
std::vector<ComponentOption> component_options(
    const ComponentEvaluator& eval, cachemodel::ComponentKind kind,
    const std::vector<tech::DeviceKnobs>& pairs);

/// Options for a "merged periphery" pseudo-component: decoder + address
/// drivers + data drivers all at the same pair (Scheme II's second knob).
std::vector<ComponentOption> periphery_options(
    const ComponentEvaluator& eval,
    const std::vector<tech::DeviceKnobs>& pairs);

/// Options for the whole cache at a uniform pair (Scheme III).
std::vector<ComponentOption> uniform_options(
    const ComponentEvaluator& eval,
    const std::vector<tech::DeviceKnobs>& pairs);

}  // namespace nanocache::opt
