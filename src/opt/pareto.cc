#include "opt/pareto.h"

// Header-only templates; this translation unit exists so the library has a
// stable archive member for the module and a home for future non-template
// helpers.

namespace nanocache::opt {}
