// Dominance-pruned single-cache assignment search (the SearchMode::kPruned
// engine behind opt::optimize_single_cache).
//
// Three layers, each provably argmin-preserving (docs/MODELING.md §10):
//  1. Per-component Pareto pre-filter: any (Vth,Tox) grid point dominated
//     in both delay and leakage by another point of the same component can
//     never appear in an optimum, because both objectives add monotonically
//     across components.
//  2. Frontier-merge composition: partial assignments are combined
//     component-by-component, keeping only the (delay, leakage) staircase
//     after each merge — the same left-fold the exhaustive DP performs, so
//     every floating-point sum is formed in the identical association.
//  3. Branch-and-bound: partial states whose minimum completion delay
//     (accumulated in DP order) already exceeds the constraint are cut, and
//     the final scan skips frontier states that cannot beat the incumbent
//     even with the minimum-leakage tail.
//
// The engine reproduces the exhaustive search's grid-index tie-breaks, so
// results are byte-identical — the one theoretical exception (a strict
// per-component inequality collapsing to an exactly equal rounded sum,
// which would need sub-ULP spacing the physical models never produce) is
// documented in docs/MODELING.md and guarded by differential tests.
#pragma once

#include <cstddef>

#include "opt/outcome.h"
#include "opt/schemes.h"

namespace nanocache::opt {

/// Pruned counterpart of the exhaustive search in schemes.cc.  Same
/// contract: minimize leakage subject to access_time <= delay_constraint_s,
/// infeasible outcomes carry the fastest achievable time.  The byte-identity
/// guarantee holds for any `space`: both engines build their option tables
/// through the same opt::space_* builders and keep the same tie-breaks.
OptOutcome<SchemeResult> optimize_single_cache_pruned(
    const ComponentEvaluator& eval, const KnobGrid& grid, Scheme scheme,
    double delay_constraint_s, const OptSpace& space = OptSpace::base());

namespace detail {

/// Shared search-effort counters.  `evaluated` counts candidate pair
/// states actually materialized (products formed and compared);
/// `skipped` counts the states a nested product loop over the unpruned
/// option tables would have formed for the same partial sets but the
/// pruned engine never touched.
void count_combos_evaluated(std::size_t n);
void count_combos_skipped(std::size_t n);

}  // namespace detail

}  // namespace nanocache::opt
