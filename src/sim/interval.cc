#include "sim/interval.h"

#include "util/error.h"
#include "util/stats.h"

namespace nanocache::sim {

IntervalRecorder::IntervalRecorder(std::uint64_t window) : window_(window) {
  NC_REQUIRE(window_ >= 1, "interval window must be >= 1");
}

void IntervalRecorder::record(bool miss) {
  if (miss) ++misses_in_window_;
  if (++in_window_ == window_) {
    rates_.push_back(static_cast<double>(misses_in_window_) /
                     static_cast<double>(window_));
    in_window_ = 0;
    misses_in_window_ = 0;
  }
}

double IntervalRecorder::mean() const {
  if (rates_.empty()) return 0.0;
  return math::mean(rates_);
}

double IntervalRecorder::coefficient_of_variation() const {
  return math::coefficient_of_variation(rates_);
}

}  // namespace nanocache::sim
