// Address-trace abstraction consumed by the cache simulator.  Traces are
// pull-based streams so synthetic generators of unbounded length compose
// with finite replay buffers.
#pragma once

#include <cstdint>
#include <vector>

namespace nanocache::sim {

/// One memory reference.
struct Access {
  std::uint64_t address = 0;
  bool is_write = false;
};

/// Pull-based trace source.  next() returns successive references; sources
/// are infinite unless documented otherwise.
class TraceSource {
 public:
  virtual ~TraceSource() = default;
  virtual Access next() = 0;
};

/// Fixed prerecorded trace that replays (and wraps around) a buffer.
class VectorTrace final : public TraceSource {
 public:
  explicit VectorTrace(std::vector<Access> accesses)
      : accesses_(std::move(accesses)) {}

  Access next() override {
    const Access a = accesses_[cursor_];
    cursor_ = (cursor_ + 1) % accesses_.size();
    return a;
  }

  std::size_t size() const { return accesses_.size(); }

 private:
  std::vector<Access> accesses_;
  std::size_t cursor_ = 0;
};

}  // namespace nanocache::sim
