// Synthetic workload generators.  These substitute for the paper's
// SPEC2000 / SPECWEB / TPC-C traces: each produces a reference stream with
// a distinct locality signature, and mixtures of them reproduce the
// miss-rate-vs-size shapes architectural simulation of those suites yields
// (low, flat L1 local miss rates; L2 miss rates falling with size with
// diminishing returns).
#pragma once

#include <memory>
#include <vector>

#include "sim/trace.h"
#include "util/rng.h"

namespace nanocache::sim {

/// Sequential streaming with a fixed stride over a large footprint —
/// models the scan-heavy phases of SPEC fp / database table scans.
class StrideGenerator final : public TraceSource {
 public:
  StrideGenerator(std::uint64_t base, std::uint64_t stride_bytes,
                  std::uint64_t footprint_bytes, double write_fraction,
                  std::uint64_t seed);

  Access next() override;

 private:
  std::uint64_t base_;
  std::uint64_t stride_;
  std::uint64_t footprint_;
  double write_fraction_;
  std::uint64_t offset_ = 0;
  Rng rng_;
};

/// Hot/cold working-set model: pages are ranked by Zipf popularity; within
/// a touched page, short sequential runs.  The classic integer-code
/// signature (gcc/perl-like).
class WorkingSetGenerator final : public TraceSource {
 public:
  struct Config {
    std::uint64_t base = 0;
    std::uint64_t footprint_bytes = 8ull << 20;  ///< total pages footprint
    std::uint32_t page_bytes = 4096;
    double zipf_s = 0.9;            ///< popularity skew
    std::uint32_t run_length = 8;   ///< sequential words per page visit
    double write_fraction = 0.25;
  };

  WorkingSetGenerator(const Config& config, std::uint64_t seed);

  Access next() override;

 private:
  std::uint64_t pick_page();

  Config cfg_;
  std::uint64_t num_pages_;
  std::vector<double> cdf_;  ///< Zipf CDF over page ranks
  std::vector<std::uint32_t> rank_to_page_;
  Rng rng_;
  std::uint64_t run_remaining_ = 0;
  std::uint64_t run_addr_ = 0;
};

/// Dependent pointer chase over a shuffled ring — the latency-bound
/// signature (mcf/olden-like): almost no spatial locality, temporal reuse
/// only at the footprint scale.
class PointerChaseGenerator final : public TraceSource {
 public:
  PointerChaseGenerator(std::uint64_t base, std::uint64_t footprint_bytes,
                        std::uint32_t node_bytes, std::uint64_t seed);

  Access next() override;

 private:
  std::uint64_t base_;
  std::uint32_t node_bytes_;
  std::vector<std::uint32_t> next_index_;
  std::uint32_t cursor_ = 0;
};

/// Instruction-fetch stream: a program counter walking sequentially with
/// geometrically distributed basic-block lengths, branching either to one
/// of a few hot loop targets (temporal locality) or to a fresh location in
/// the code footprint.  The highly sequential signature is what makes
/// I-caches behave so differently from D-caches.
class InstructionFetchGenerator final : public TraceSource {
 public:
  struct Config {
    std::uint64_t base = 0x0040'0000;
    std::uint64_t code_bytes = 512 << 10;  ///< text-segment footprint
    double mean_block_instructions = 8.0;  ///< instructions per basic block
    double loop_back_probability = 0.85;   ///< taken branch returns to a loop
    std::uint32_t hot_targets = 16;        ///< live loop-header set
  };

  InstructionFetchGenerator(const Config& config, std::uint64_t seed);

  Access next() override;

 private:
  Config cfg_;
  Rng rng_;
  std::uint64_t pc_;
  std::vector<std::uint64_t> loop_targets_;
};

/// Program-phase model: a Markov chain over child sources.  Unlike
/// MixGenerator (which interleaves per access), PhaseGenerator stays in
/// one phase for a geometrically distributed run of accesses before
/// switching — reproducing the phase behaviour that makes miss rates
/// time-varying in real programs.
class PhaseGenerator final : public TraceSource {
 public:
  /// `mean_phase_length` accesses per phase on average (geometric).
  PhaseGenerator(std::vector<std::unique_ptr<TraceSource>> sources,
                 std::uint64_t mean_phase_length, std::uint64_t seed);

  Access next() override;

  std::size_t current_phase() const { return current_; }
  std::uint64_t phase_transitions() const { return transitions_; }

 private:
  std::vector<std::unique_ptr<TraceSource>> sources_;
  double switch_probability_;
  std::size_t current_ = 0;
  std::uint64_t transitions_ = 0;
  Rng rng_;
};

/// Weighted mixture of sources; models a multiprogrammed/benchmark-suite
/// blend.  Weights need not be normalized.
class MixGenerator final : public TraceSource {
 public:
  MixGenerator(std::vector<std::unique_ptr<TraceSource>> sources,
               std::vector<double> weights, std::uint64_t seed);

  Access next() override;

 private:
  std::vector<std::unique_ptr<TraceSource>> sources_;
  std::vector<double> cumulative_;
  Rng rng_;
};

}  // namespace nanocache::sim
