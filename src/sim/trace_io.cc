#include "sim/trace_io.h"

#include <fstream>
#include <sstream>

#include "util/error.h"

namespace nanocache::sim {

void save_trace(TraceSource& source, std::uint64_t count,
                const std::string& path) {
  std::ofstream out(path);
  NC_REQUIRE_IO(out.good(), "cannot open trace file for writing: " + path);
  out << "# nanocache trace v1\n" << std::hex;
  for (std::uint64_t i = 0; i < count; ++i) {
    const Access a = source.next();
    out << (a.is_write ? 'W' : 'R') << ' ' << a.address << '\n';
  }
  NC_REQUIRE_IO(out.good(), "failed writing trace file: " + path);
}

VectorTrace load_trace(const std::string& path,
                       const TraceLoadOptions& options) {
  NC_REQUIRE_CONFIG(options.max_accesses > 0,
                    "trace load limit must be positive");
  std::ifstream in(path);
  NC_REQUIRE_IO(in.good(), "cannot open trace file: " + path);
  std::vector<Access> accesses;
  std::string line;
  std::uint64_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    // Tolerate CRLF files from Windows-side capture tools.
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty() || line[0] == '#') continue;
    std::istringstream is(line);
    char kind = 0;
    std::string addr_hex;
    is >> kind >> addr_hex;
    if (kind == 'r') kind = 'R';
    if (kind == 'w') kind = 'W';
    NC_REQUIRE_IO(!is.fail() && (kind == 'R' || kind == 'W'),
                  "malformed trace line " + std::to_string(line_no) + ": " +
                      line);
    std::uint64_t address = 0;
    std::size_t consumed = 0;
    try {
      address = std::stoull(addr_hex, &consumed, 16);
    } catch (const std::exception&) {
      consumed = 0;
    }
    NC_REQUIRE_IO(consumed == addr_hex.size() && !addr_hex.empty(),
                  "bad address on trace line " + std::to_string(line_no) +
                      ": " + line);
    NC_REQUIRE_IO(accesses.size() < options.max_accesses,
                  "trace file exceeds the configured limit of " +
                      std::to_string(options.max_accesses) +
                      " accesses: " + path);
    accesses.push_back(Access{address, kind == 'W'});
  }
  NC_REQUIRE_IO(!accesses.empty(), "trace file contains no accesses: " + path);
  return VectorTrace(std::move(accesses));
}

}  // namespace nanocache::sim
