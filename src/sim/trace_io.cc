#include "sim/trace_io.h"

#include <fstream>
#include <sstream>

#include "util/error.h"

namespace nanocache::sim {

void save_trace(TraceSource& source, std::uint64_t count,
                const std::string& path) {
  std::ofstream out(path);
  NC_REQUIRE(out.good(), "cannot open trace file for writing: " + path);
  out << "# nanocache trace v1\n" << std::hex;
  for (std::uint64_t i = 0; i < count; ++i) {
    const Access a = source.next();
    out << (a.is_write ? 'W' : 'R') << ' ' << a.address << '\n';
  }
  NC_REQUIRE(out.good(), "failed writing trace file: " + path);
}

VectorTrace load_trace(const std::string& path) {
  std::ifstream in(path);
  NC_REQUIRE(in.good(), "cannot open trace file: " + path);
  std::vector<Access> accesses;
  std::string line;
  std::uint64_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream is(line);
    char kind = 0;
    std::string addr_hex;
    is >> kind >> addr_hex;
    NC_REQUIRE(!is.fail() && (kind == 'R' || kind == 'W'),
               "malformed trace line " + std::to_string(line_no) + ": " +
                   line);
    std::uint64_t address = 0;
    std::size_t consumed = 0;
    try {
      address = std::stoull(addr_hex, &consumed, 16);
    } catch (const std::exception&) {
      consumed = 0;
    }
    NC_REQUIRE(consumed == addr_hex.size() && !addr_hex.empty(),
               "bad address on trace line " + std::to_string(line_no) + ": " +
                   line);
    accesses.push_back(Access{address, kind == 'W'});
  }
  NC_REQUIRE(!accesses.empty(), "trace file contains no accesses: " + path);
  return VectorTrace(std::move(accesses));
}

}  // namespace nanocache::sim
