// Windowed statistics: records per-reference hit/miss outcomes into
// fixed-size windows, exposing the miss-rate time series.  Makes program
// phase behaviour (PhaseGenerator, real traces) visible and measurable.
#pragma once

#include <cstdint>
#include <vector>

namespace nanocache::sim {

class IntervalRecorder {
 public:
  /// `window` references per interval.
  explicit IntervalRecorder(std::uint64_t window);

  /// Record one reference outcome.
  void record(bool miss);

  /// Miss rates of all *completed* windows, in time order.
  const std::vector<double>& miss_rates() const { return rates_; }

  /// Mean of the completed-window miss rates (0 if none).
  double mean() const;

  /// Coefficient of variation (stddev/mean) of the window miss rates —
  /// the phase-iness metric: ~0 for stationary streams, large when the
  /// workload alternates between regimes.  0 if fewer than 2 windows or
  /// zero mean.
  double coefficient_of_variation() const;

  std::uint64_t window() const { return window_; }

 private:
  std::uint64_t window_;
  std::uint64_t in_window_ = 0;
  std::uint64_t misses_in_window_ = 0;
  std::vector<double> rates_;
};

}  // namespace nanocache::sim
