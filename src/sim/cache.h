// Trace-driven set-associative cache with pluggable replacement.  This is
// the architectural-simulation substrate behind the paper's Section 5 miss
// statistics.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/trace.h"

namespace nanocache::sim {

enum class Replacement { kLru, kFifo, kRandom, kPlru };

std::string replacement_name(Replacement r);

/// Outcome of one cache lookup.
struct AccessResult {
  bool hit = false;
  bool writeback = false;              ///< eviction of a dirty line occurred
  std::uint64_t evicted_block = 0;     ///< block address of the victim
};

struct CacheStats {
  std::uint64_t accesses = 0;
  std::uint64_t misses = 0;
  std::uint64_t writebacks = 0;
  /// Misses caused by decay (line was resident but asleep).  Subset of
  /// `misses`.  Only non-zero when decay is enabled.
  std::uint64_t decay_misses = 0;

  double miss_rate() const {
    return accesses == 0 ? 0.0 : static_cast<double>(misses) / accesses;
  }
};

class SetAssociativeCache {
 public:
  SetAssociativeCache(std::uint64_t size_bytes, std::uint32_t block_bytes,
                      std::uint32_t associativity,
                      Replacement policy = Replacement::kLru,
                      std::uint64_t seed = 1);

  /// Look up `address`; on miss, allocate by default (write-allocate,
  /// writeback).  With `allocate_on_miss` false, a miss is counted but the
  /// line is not filled — the no-write-allocate path of a write-through
  /// front side.
  AccessResult access(std::uint64_t address, bool is_write,
                      bool allocate_on_miss = true);

  /// Probe without updating state; true if resident.
  bool contains(std::uint64_t address) const;

  /// Invalidate a block if present (back-invalidation support); returns
  /// whether the line was present and dirty.
  bool invalidate_block(std::uint64_t block_address);

  /// Enable cache decay (gated-Vdd-style, state-destroying): a line
  /// untouched for `interval_accesses` cache accesses is put to sleep.
  /// Re-referencing a sleeping line is a miss (counted in decay_misses; a
  /// dirty sleeping line is written back at that point).  Time is measured
  /// in accesses to this cache.  Pass 0 to disable (default).
  void enable_decay(std::uint64_t interval_accesses);
  std::uint64_t decay_interval() const { return decay_interval_; }

  /// Time-averaged fraction of lines awake, over the window since stats
  /// were last reset.  1.0 when decay is disabled or nothing ran.
  double average_live_fraction() const;

  void reset_stats();
  const CacheStats& stats() const { return stats_; }

  std::uint64_t size_bytes() const { return size_bytes_; }
  std::uint32_t block_bytes() const { return block_bytes_; }
  std::uint32_t associativity() const { return assoc_; }
  std::uint64_t num_sets() const { return num_sets_; }

 private:
  struct Line {
    std::uint64_t tag = 0;
    bool valid = false;
    bool dirty = false;
    std::uint64_t order = 0;        ///< LRU/FIFO timestamp
    std::uint64_t last_access = 0;  ///< decay clock (access ticks)
    std::uint32_t plru = 0;         ///< PLRU reference bit
  };

  bool decayed(const Line& line) const {
    return decay_interval_ != 0 && line.valid &&
           tick_ - line.last_access > decay_interval_;
  }
  /// Account the awake interval a line accrued since its last access.
  void accrue_awake(const Line& line);

  std::uint64_t block_of(std::uint64_t address) const {
    return address / block_bytes_;
  }
  std::uint64_t set_of(std::uint64_t block) const {
    return block % num_sets_;
  }
  std::uint64_t tag_of(std::uint64_t block) const {
    return block / num_sets_;
  }
  std::uint32_t pick_victim(std::uint64_t set_index);

  std::uint64_t size_bytes_;
  std::uint32_t block_bytes_;
  std::uint32_t assoc_;
  std::uint64_t num_sets_;
  Replacement policy_;
  std::vector<Line> lines_;  ///< num_sets * assoc, set-major
  std::uint64_t tick_ = 0;
  std::uint64_t rng_state_;
  std::uint64_t decay_interval_ = 0;
  std::uint64_t stats_start_tick_ = 0;
  double awake_line_ticks_ = 0.0;
  CacheStats stats_;
};

}  // namespace nanocache::sim
