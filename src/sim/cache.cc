#include "sim/cache.h"

#include <limits>

#include "util/error.h"

namespace nanocache::sim {

namespace {
bool is_pow2(std::uint64_t v) { return v != 0 && (v & (v - 1)) == 0; }
}  // namespace

std::string replacement_name(Replacement r) {
  switch (r) {
    case Replacement::kLru:
      return "LRU";
    case Replacement::kFifo:
      return "FIFO";
    case Replacement::kRandom:
      return "random";
    case Replacement::kPlru:
      return "PLRU";
  }
  return "unknown";
}

SetAssociativeCache::SetAssociativeCache(std::uint64_t size_bytes,
                                         std::uint32_t block_bytes,
                                         std::uint32_t associativity,
                                         Replacement policy,
                                         std::uint64_t seed)
    : size_bytes_(size_bytes),
      block_bytes_(block_bytes),
      assoc_(associativity),
      policy_(policy),
      rng_state_(seed | 1) {
  NC_REQUIRE(is_pow2(size_bytes_), "cache size must be a power of two");
  NC_REQUIRE(is_pow2(block_bytes_) && block_bytes_ >= 8,
             "block size must be a power of two >= 8");
  NC_REQUIRE(is_pow2(assoc_) && assoc_ >= 1,
             "associativity must be a power of two >= 1");
  NC_REQUIRE(size_bytes_ >= static_cast<std::uint64_t>(block_bytes_) * assoc_,
             "cache must hold at least one set");
  num_sets_ = size_bytes_ / (static_cast<std::uint64_t>(block_bytes_) * assoc_);
  lines_.resize(num_sets_ * assoc_);
}

std::uint32_t SetAssociativeCache::pick_victim(std::uint64_t set_index) {
  Line* set = &lines_[set_index * assoc_];
  // Prefer an invalid way.
  for (std::uint32_t w = 0; w < assoc_; ++w) {
    if (!set[w].valid) return w;
  }
  switch (policy_) {
    case Replacement::kLru:
    case Replacement::kFifo: {
      std::uint32_t victim = 0;
      std::uint64_t oldest = std::numeric_limits<std::uint64_t>::max();
      for (std::uint32_t w = 0; w < assoc_; ++w) {
        if (set[w].order < oldest) {
          oldest = set[w].order;
          victim = w;
        }
      }
      return victim;
    }
    case Replacement::kRandom: {
      // xorshift64 step.
      rng_state_ ^= rng_state_ << 13;
      rng_state_ ^= rng_state_ >> 7;
      rng_state_ ^= rng_state_ << 17;
      return static_cast<std::uint32_t>(rng_state_ % assoc_);
    }
    case Replacement::kPlru: {
      // Bit-PLRU: evict the first way whose reference bit is clear.
      for (std::uint32_t w = 0; w < assoc_; ++w) {
        if (set[w].plru == 0) return w;
      }
      // All set (shouldn't persist; access() clears) — fall back to way 0.
      return 0;
    }
  }
  return 0;
}

void SetAssociativeCache::enable_decay(std::uint64_t interval_accesses) {
  decay_interval_ = interval_accesses;
}

void SetAssociativeCache::accrue_awake(const Line& line) {
  if (decay_interval_ == 0 || !line.valid) return;
  const std::uint64_t since =
      tick_ - std::max(line.last_access, stats_start_tick_);
  awake_line_ticks_ +=
      static_cast<double>(std::min(since, decay_interval_));
}

double SetAssociativeCache::average_live_fraction() const {
  if (decay_interval_ == 0) return 1.0;
  const std::uint64_t window = tick_ - stats_start_tick_;
  if (window == 0) return 1.0;
  // Accrued awake time of retired intervals plus the still-open intervals
  // of currently valid lines.
  double awake = awake_line_ticks_;
  for (const auto& line : lines_) {
    if (!line.valid) continue;
    const std::uint64_t since =
        tick_ - std::max(line.last_access, stats_start_tick_);
    awake += static_cast<double>(std::min(since, decay_interval_));
  }
  return awake /
         (static_cast<double>(lines_.size()) * static_cast<double>(window));
}

void SetAssociativeCache::reset_stats() {
  stats_ = CacheStats{};
  stats_start_tick_ = tick_;
  awake_line_ticks_ = 0.0;
}

AccessResult SetAssociativeCache::access(std::uint64_t address, bool is_write,
                                         bool allocate_on_miss) {
  ++stats_.accesses;
  ++tick_;
  const std::uint64_t block = block_of(address);
  const std::uint64_t set_index = set_of(block);
  const std::uint64_t tag = tag_of(block);
  Line* set = &lines_[set_index * assoc_];

  AccessResult result;
  for (std::uint32_t w = 0; w < assoc_; ++w) {
    if (set[w].valid && set[w].tag == tag) {
      if (decayed(set[w])) {
        // The line is resident but asleep: state lost (gated Vdd).
        ++stats_.misses;
        ++stats_.decay_misses;
        accrue_awake(set[w]);
        if (set[w].dirty) {
          // Gated-Vdd implementations drain dirty lines when the decay
          // timer fires; charge the writeback here, where it is observed.
          result.writeback = true;
          result.evicted_block = set[w].tag * num_sets_ + set_index;
          ++stats_.writebacks;
        }
        if (!allocate_on_miss) {
          set[w].valid = false;
          set[w].dirty = false;
          return result;
        }
        set[w].tag = tag;
        set[w].dirty = is_write;
        set[w].order = tick_;
        set[w].last_access = tick_;
        set[w].plru = 1;
        return result;
      }
      result.hit = true;
      if (is_write) set[w].dirty = true;
      accrue_awake(set[w]);
      set[w].last_access = tick_;
      if (policy_ == Replacement::kLru) set[w].order = tick_;
      if (policy_ == Replacement::kPlru) {
        set[w].plru = 1;
        // If all reference bits are now set, clear the others.
        bool all = true;
        for (std::uint32_t v = 0; v < assoc_; ++v) {
          if (set[v].plru == 0) {
            all = false;
            break;
          }
        }
        if (all) {
          for (std::uint32_t v = 0; v < assoc_; ++v) {
            if (v != w) set[v].plru = 0;
          }
        }
      }
      return result;
    }
  }

  ++stats_.misses;
  if (!allocate_on_miss) return result;

  const std::uint32_t victim = pick_victim(set_index);
  Line& line = set[victim];
  if (line.valid) {
    accrue_awake(line);
    result.evicted_block = line.tag * num_sets_ + set_index;
    // A dirty line is drained exactly once — at the decay timer for
    // sleeping lines (observed lazily) or here at eviction; either way it
    // is charged at the moment its story ends.
    if (line.dirty) {
      result.writeback = true;
      ++stats_.writebacks;
    }
  }
  line.valid = true;
  line.tag = tag;
  line.dirty = is_write;
  line.order = tick_;  // insertion time serves both LRU and FIFO
  line.last_access = tick_;
  line.plru = 1;
  return result;
}

bool SetAssociativeCache::contains(std::uint64_t address) const {
  const std::uint64_t block = block_of(address);
  const std::uint64_t set_index = set_of(block);
  const std::uint64_t tag = tag_of(block);
  const Line* set = &lines_[set_index * assoc_];
  for (std::uint32_t w = 0; w < assoc_; ++w) {
    if (set[w].valid && set[w].tag == tag) return !decayed(set[w]);
  }
  return false;
}

bool SetAssociativeCache::invalidate_block(std::uint64_t block_address) {
  const std::uint64_t set_index = set_of(block_address);
  const std::uint64_t tag = tag_of(block_address);
  Line* set = &lines_[set_index * assoc_];
  for (std::uint32_t w = 0; w < assoc_; ++w) {
    if (set[w].valid && set[w].tag == tag) {
      const bool dirty = set[w].dirty;
      set[w].valid = false;
      set[w].dirty = false;
      return dirty;
    }
  }
  return false;
}

}  // namespace nanocache::sim
