// Two-level cache hierarchy driven by a trace: unified L1 -> unified L2 ->
// main memory, write-allocate/write-back at both levels.  Produces the
// local miss statistics Section 5's AMAT and energy models consume.
#pragma once

#include <cstdint>

#include "sim/cache.h"
#include "sim/trace.h"

namespace nanocache::sim {

/// Local (per-level) statistics of one hierarchy run.
struct HierarchyStats {
  std::uint64_t references = 0;
  std::uint64_t l1_misses = 0;
  std::uint64_t l2_accesses = 0;
  std::uint64_t l2_misses = 0;
  std::uint64_t memory_accesses = 0;
  std::uint64_t l1_writebacks = 0;
  std::uint64_t l2_writebacks = 0;
  std::uint64_t l2_prefetches = 0;  ///< prefetch fills issued (if enabled)

  double l1_miss_rate() const {
    return references == 0 ? 0.0
                           : static_cast<double>(l1_misses) / references;
  }
  /// Local L2 miss rate (misses per L2 access), the paper's mL2.
  double l2_local_miss_rate() const {
    return l2_accesses == 0 ? 0.0
                            : static_cast<double>(l2_misses) / l2_accesses;
  }
  /// Global L2 miss rate (misses per reference).
  double l2_global_miss_rate() const {
    return references == 0 ? 0.0
                           : static_cast<double>(l2_misses) / references;
  }
};

/// L1 write handling.
enum class WritePolicy {
  /// Write-back, write-allocate (default, what the paper-era L1s used for
  /// data): writes dirty the L1 line; dirty victims drain into L2.
  kWriteBackAllocate,
  /// Write-through, no-write-allocate: every write also goes to L2; write
  /// misses do not fill L1.
  kWriteThroughNoAllocate,
};

class TwoLevelHierarchy {
 public:
  /// Caches are moved in; L2 block size must be >= L1 block size and both
  /// must divide evenly.
  TwoLevelHierarchy(SetAssociativeCache l1, SetAssociativeCache l2,
                    WritePolicy policy = WritePolicy::kWriteBackAllocate);

  /// Process one reference through the hierarchy.
  void access(std::uint64_t address, bool is_write);

  /// Drive `count` references from `trace`.
  void run(TraceSource& trace, std::uint64_t count);

  /// Warm up (references processed but not counted in stats).
  void warmup(TraceSource& trace, std::uint64_t count);

  /// Enable sequential (next-line) prefetching into the L2: every demand
  /// L2 miss also fetches the following L2 block.  Prefetches are counted
  /// separately and do not inflate the demand miss statistics.
  void enable_l2_next_line_prefetch() { l2_prefetch_ = true; }

  const HierarchyStats& stats() const { return stats_; }
  void reset_stats();

  const SetAssociativeCache& l1() const { return l1_; }
  const SetAssociativeCache& l2() const { return l2_; }

  WritePolicy write_policy() const { return policy_; }

 private:
  /// L2-side handling shared by both write policies.
  void access_l2(std::uint64_t address, bool is_write);

  SetAssociativeCache l1_;
  SetAssociativeCache l2_;
  WritePolicy policy_;
  bool l2_prefetch_ = false;
  HierarchyStats stats_;
};

/// Split-L1 hierarchy: separate instruction and data L1s in front of a
/// shared unified L2 — the organization real processors of the paper's era
/// used.  The I-side is read-only (no writebacks); both sides' misses and
/// the D-side's dirty victims share the L2.
class SplitL1Hierarchy {
 public:
  SplitL1Hierarchy(SetAssociativeCache l1i, SetAssociativeCache l1d,
                   SetAssociativeCache l2);

  void access_instruction(std::uint64_t pc);
  void access_data(std::uint64_t address, bool is_write);

  struct Stats {
    std::uint64_t instruction_refs = 0;
    std::uint64_t data_refs = 0;
    std::uint64_t l1i_misses = 0;
    std::uint64_t l1d_misses = 0;
    std::uint64_t l2_accesses = 0;
    std::uint64_t l2_misses = 0;
    std::uint64_t memory_accesses = 0;

    double l1i_miss_rate() const {
      return instruction_refs == 0
                 ? 0.0
                 : static_cast<double>(l1i_misses) / instruction_refs;
    }
    double l1d_miss_rate() const {
      return data_refs == 0 ? 0.0
                            : static_cast<double>(l1d_misses) / data_refs;
    }
    double l2_local_miss_rate() const {
      return l2_accesses == 0
                 ? 0.0
                 : static_cast<double>(l2_misses) / l2_accesses;
    }
  };

  const Stats& stats() const { return stats_; }
  void reset_stats();

  const SetAssociativeCache& l1i() const { return l1i_; }
  const SetAssociativeCache& l1d() const { return l1d_; }
  const SetAssociativeCache& l2() const { return l2_; }

 private:
  void access_l2(std::uint64_t address, bool is_write);

  SetAssociativeCache l1i_;
  SetAssociativeCache l1d_;
  SetAssociativeCache l2_;
  Stats stats_;
};

}  // namespace nanocache::sim
