// Analytic miss-rate models.  The benches use these for smooth parameter
// sweeps; tests cross-validate them against the trace-driven simulator.
//
// The L2 model is the classic power law ("square-root rule of thumb"):
// miss_rate(C) = m0 * (C / C0)^(-s), clamped to [floor, 1].  The L1 local
// model reproduces the Section 5 observation that 4K-64K L1 local miss
// rates are low and vary little.
#pragma once

#include <cstdint>
#include <vector>

namespace nanocache::sim {

/// Power-law miss curve with saturation floor.
class PowerLawMissModel {
 public:
  /// miss(C) = clamp(m0 * (C/C0)^(-exponent), floor, 1).
  PowerLawMissModel(double m0, std::uint64_t c0_bytes, double exponent,
                    double floor);

  double operator()(std::uint64_t size_bytes) const;

  double m0() const { return m0_; }
  double exponent() const { return exponent_; }
  double floor() const { return floor_; }

  /// Fit from measured (size, miss-rate) points (log-log least squares);
  /// floor taken as a fraction of the smallest observed rate.
  static PowerLawMissModel fit(const std::vector<std::uint64_t>& sizes,
                               const std::vector<double>& rates,
                               double floor_fraction = 0.25);

 private:
  double m0_;
  double c0_;
  double exponent_;
  double floor_;
};

/// Default workload population used by the paper-shaped experiments:
/// local miss-rate curves averaged over the synthetic suite.  Values are
/// produced once by sim::measure_suite_miss_curves (see suite.h) and
/// re-fitted here so benches don't pay simulation cost on every run.
struct MissCurves {
  PowerLawMissModel l1;  ///< local L1 miss rate vs L1 size
  PowerLawMissModel l2;  ///< local L2 miss rate vs L2 size (L1 filtered)
};

/// The calibrated default curves (constants documented in missmodel.cc).
MissCurves default_miss_curves();

}  // namespace nanocache::sim
