// Trace serialization: save any TraceSource prefix to a simple line-based
// text format and load it back for replay.  Format, one access per line:
//
//   R 1a2b3c
//   W 40
//
// ('R'/'W', one hexadecimal address, '#'-prefixed comment lines ignored).
// This is the interchange point for driving the simulator with externally
// captured traces.
#pragma once

#include <string>

#include "sim/trace.h"

namespace nanocache::sim {

/// Write the next `count` accesses of `source` to `path`.
/// Throws nanocache::Error on I/O failure.
void save_trace(TraceSource& source, std::uint64_t count,
                const std::string& path);

/// Load a trace file into a replayable VectorTrace.
/// Throws nanocache::Error on I/O failure or malformed lines.
VectorTrace load_trace(const std::string& path);

}  // namespace nanocache::sim
