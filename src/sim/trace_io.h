// Trace serialization: save any TraceSource prefix to a simple line-based
// text format and load it back for replay.  Format, one access per line:
//
//   R 1a2b3c
//   W 40
//
// ('R'/'W' case-insensitive, one hexadecimal address, '#'-prefixed comment
// lines ignored, LF or CRLF line endings).  This is the interchange point
// for driving the simulator with externally captured traces.
#pragma once

#include <cstdint>
#include <string>

#include "sim/trace.h"

namespace nanocache::sim {

/// Knobs for load_trace.  Defaults accept any well-formed trace that fits
/// comfortably in memory.
struct TraceLoadOptions {
  /// Upper bound on accepted accesses; a longer file throws
  /// Error(kIo) instead of silently exhausting memory.  16 bytes per
  /// access puts the default around 1.6 GB.
  std::uint64_t max_accesses = 100'000'000;
};

/// Write the next `count` accesses of `source` to `path`.
/// Throws nanocache::Error(kIo) on I/O failure.
void save_trace(TraceSource& source, std::uint64_t count,
                const std::string& path);

/// Load a trace file into a replayable VectorTrace.
/// Throws nanocache::Error(kIo) on I/O failure, malformed lines, or a
/// trace longer than options.max_accesses.
VectorTrace load_trace(const std::string& path,
                       const TraceLoadOptions& options = {});

}  // namespace nanocache::sim
