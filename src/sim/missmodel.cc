#include "sim/missmodel.h"

#include <algorithm>
#include <cmath>

#include "util/error.h"
#include "util/math.h"

namespace nanocache::sim {

PowerLawMissModel::PowerLawMissModel(double m0, std::uint64_t c0_bytes,
                                     double exponent, double floor)
    : m0_(m0),
      c0_(static_cast<double>(c0_bytes)),
      exponent_(exponent),
      floor_(floor) {
  NC_REQUIRE(m0_ > 0.0 && m0_ <= 1.0, "m0 must be in (0,1]");
  NC_REQUIRE(c0_ > 0.0, "reference size must be positive");
  NC_REQUIRE(exponent_ > 0.0, "exponent must be positive");
  NC_REQUIRE(floor_ >= 0.0 && floor_ < m0_, "floor must be in [0, m0)");
}

double PowerLawMissModel::operator()(std::uint64_t size_bytes) const {
  NC_REQUIRE(size_bytes > 0, "size must be positive");
  const double ratio = static_cast<double>(size_bytes) / c0_;
  const double rate = m0_ * std::pow(ratio, -exponent_);
  return std::clamp(rate, floor_, 1.0);
}

PowerLawMissModel PowerLawMissModel::fit(
    const std::vector<std::uint64_t>& sizes, const std::vector<double>& rates,
    double floor_fraction) {
  NC_REQUIRE(sizes.size() == rates.size() && sizes.size() >= 2,
             "fit needs >= 2 points");
  std::vector<double> x(sizes.size());
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    x[i] = static_cast<double>(sizes[i]);
  }
  const auto pl = math::fit_power_law(x, rates);
  NC_REQUIRE(pl.exponent < 0.0, "miss rate must fall with size");
  const double c0 = x.front();
  const double m0 = std::min(1.0, pl(c0));
  const double min_rate = *std::min_element(rates.begin(), rates.end());
  return PowerLawMissModel(m0, sizes.front(), -pl.exponent,
                           min_rate * floor_fraction);
}

MissCurves default_miss_curves() {
  // Calibrated against the synthetic suite in suite.cc (see the
  // SimSuite tests):
  //  - L1 local miss rate: a few percent at 4K-64K, falling slowly
  //    (exponent ~0.25 => 64K is ~2x better than 4K, still "low and flat"
  //    in the Section 5 sense).
  //  - L2 local miss rate: falls with size but is floor-dominated — the
  //    suite's streaming/pointer components produce compulsory misses no
  //    L2 capacity removes.  The flat slope matters: it puts the size
  //    sweep in the regime the paper studies, where one extra size
  //    doubling buys about as much AMAT through miss rate as the knobs
  //    can buy through hit time (Section 5's "same AMAT, different size"
  //    comparisons need both levers to be in play).
  return MissCurves{
      PowerLawMissModel(/*m0=*/0.045, /*c0=*/4 * 1024, /*exponent=*/0.25,
                        /*floor=*/0.010),
      PowerLawMissModel(/*m0=*/0.22, /*c0=*/256 * 1024, /*exponent=*/0.22,
                        /*floor=*/0.090),
  };
}

}  // namespace nanocache::sim
