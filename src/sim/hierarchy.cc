#include "sim/hierarchy.h"

#include "util/error.h"

namespace nanocache::sim {

TwoLevelHierarchy::TwoLevelHierarchy(SetAssociativeCache l1,
                                     SetAssociativeCache l2,
                                     WritePolicy policy)
    : l1_(std::move(l1)), l2_(std::move(l2)), policy_(policy) {
  NC_REQUIRE(l2_.block_bytes() >= l1_.block_bytes(),
             "L2 block must be >= L1 block");
  NC_REQUIRE(l2_.block_bytes() % l1_.block_bytes() == 0,
             "L2 block must be a multiple of L1 block");
  NC_REQUIRE(l2_.size_bytes() >= l1_.size_bytes(),
             "L2 must be at least as large as L1");
}

void TwoLevelHierarchy::access_l2(std::uint64_t address, bool is_write) {
  ++stats_.l2_accesses;
  const auto r2 = l2_.access(address, is_write);
  if (r2.writeback) {
    ++stats_.l2_writebacks;
    ++stats_.memory_accesses;
  }
  if (!r2.hit) {
    ++stats_.l2_misses;
    ++stats_.memory_accesses;  // line fill (or fetch-on-write) from memory

    if (l2_prefetch_) {
      // Sequential prefetch of the next L2 block.  The hierarchy's demand
      // counters (l2_accesses / l2_misses) are untouched — prefetch
      // traffic is reported via l2_prefetches and memory_accesses.  (The
      // cache-internal l2().stats() do include the prefetch fills.)
      const std::uint64_t next_block = address / l2_.block_bytes() + 1;
      const std::uint64_t next_addr = next_block * l2_.block_bytes();
      if (!l2_.contains(next_addr)) {
        const auto rp = l2_.access(next_addr, /*is_write=*/false);
        ++stats_.l2_prefetches;
        ++stats_.memory_accesses;
        if (rp.writeback) {
          ++stats_.l2_writebacks;
          ++stats_.memory_accesses;
        }
      }
    }
  }
}

void TwoLevelHierarchy::access(std::uint64_t address, bool is_write) {
  ++stats_.references;

  if (policy_ == WritePolicy::kWriteThroughNoAllocate && is_write) {
    // L1 is updated only on hit (clean — L2 always has the data too);
    // the write itself always proceeds to L2.
    const auto r1 = l1_.access(address, /*is_write=*/false,
                               /*allocate_on_miss=*/false);
    if (!r1.hit) ++stats_.l1_misses;
    access_l2(address, /*is_write=*/true);
    return;
  }

  const auto r1 = l1_.access(address, is_write);
  if (r1.writeback) {
    ++stats_.l1_writebacks;
    // Dirty L1 victim is written into L2 (write-back, write-allocate).
    access_l2(r1.evicted_block * l1_.block_bytes(), /*is_write=*/true);
  }
  if (r1.hit) return;

  ++stats_.l1_misses;
  access_l2(address, /*is_write=*/false);
}

void TwoLevelHierarchy::run(TraceSource& trace, std::uint64_t count) {
  for (std::uint64_t i = 0; i < count; ++i) {
    const Access a = trace.next();
    access(a.address, a.is_write);
  }
}

void TwoLevelHierarchy::warmup(TraceSource& trace, std::uint64_t count) {
  run(trace, count);
  reset_stats();
}

void TwoLevelHierarchy::reset_stats() {
  stats_ = HierarchyStats{};
  l1_.reset_stats();
  l2_.reset_stats();
}

// --- SplitL1Hierarchy --------------------------------------------------------

SplitL1Hierarchy::SplitL1Hierarchy(SetAssociativeCache l1i,
                                   SetAssociativeCache l1d,
                                   SetAssociativeCache l2)
    : l1i_(std::move(l1i)), l1d_(std::move(l1d)), l2_(std::move(l2)) {
  for (const auto* l1 : {&l1i_, &l1d_}) {
    NC_REQUIRE(l2_.block_bytes() >= l1->block_bytes(),
               "L2 block must be >= L1 block");
    NC_REQUIRE(l2_.block_bytes() % l1->block_bytes() == 0,
               "L2 block must be a multiple of L1 block");
  }
  NC_REQUIRE(l2_.size_bytes() >= l1i_.size_bytes() + l1d_.size_bytes(),
             "L2 must cover both L1s");
}

void SplitL1Hierarchy::access_l2(std::uint64_t address, bool is_write) {
  ++stats_.l2_accesses;
  const auto r = l2_.access(address, is_write);
  if (r.writeback) ++stats_.memory_accesses;
  if (!r.hit) {
    ++stats_.l2_misses;
    ++stats_.memory_accesses;
  }
}

void SplitL1Hierarchy::access_instruction(std::uint64_t pc) {
  ++stats_.instruction_refs;
  const auto r = l1i_.access(pc, /*is_write=*/false);
  if (r.hit) return;
  ++stats_.l1i_misses;
  access_l2(pc, /*is_write=*/false);
}

void SplitL1Hierarchy::access_data(std::uint64_t address, bool is_write) {
  ++stats_.data_refs;
  const auto r = l1d_.access(address, is_write);
  if (r.writeback) {
    access_l2(r.evicted_block * l1d_.block_bytes(), /*is_write=*/true);
  }
  if (r.hit) return;
  ++stats_.l1d_misses;
  access_l2(address, /*is_write=*/false);
}

void SplitL1Hierarchy::reset_stats() {
  stats_ = Stats{};
  l1i_.reset_stats();
  l1d_.reset_stats();
  l2_.reset_stats();
}

}  // namespace nanocache::sim
