#include "sim/suite.h"

#include <algorithm>

#include "sim/generators.h"
#include "util/error.h"

namespace nanocache::sim {

namespace {

// Every workload mixes in a small, very hot region standing in for stack /
// register-spill traffic — that component is what keeps real codes' local
// L1 miss rates in the low single digits (the paper's Section 5 premise).
std::unique_ptr<TraceSource> make_hot_stack(std::uint64_t base,
                                            std::uint64_t seed) {
  WorkingSetGenerator::Config cfg;
  cfg.base = base;
  cfg.footprint_bytes = 4ull << 10;  // resident in every L1 size studied
  cfg.page_bytes = 256;
  cfg.zipf_s = 1.0;
  cfg.run_length = 8;
  cfg.write_fraction = 0.45;
  return std::make_unique<WorkingSetGenerator>(cfg, seed);
}

std::unique_ptr<TraceSource> make_intcode(std::uint64_t seed) {
  // gcc/perl-like: hot stack + skewed heap working set (~3 MB) with short
  // sequential runs.
  std::vector<std::unique_ptr<TraceSource>> parts;
  parts.push_back(make_hot_stack(0x1000'0000ull, seed ^ 0x10));
  WorkingSetGenerator::Config heap;
  heap.base = 0x2000'0000ull;
  heap.footprint_bytes = 3ull << 20;
  heap.zipf_s = 1.10;
  heap.run_length = 12;
  heap.write_fraction = 0.30;
  parts.push_back(std::make_unique<WorkingSetGenerator>(heap, seed ^ 0x11));
  return std::make_unique<MixGenerator>(std::move(parts),
                                        std::vector<double>{0.78, 0.22},
                                        seed ^ 0x12);
}

std::unique_ptr<TraceSource> make_pointer(std::uint64_t seed) {
  // mcf-like: hot stack + dependent chase over 2.5 MB with no spatial
  // locality (fits only in the larger L2 sizes).
  std::vector<std::unique_ptr<TraceSource>> parts;
  parts.push_back(make_hot_stack(0x3000'0000ull, seed ^ 0x20));
  parts.push_back(std::make_unique<PointerChaseGenerator>(
      0x4000'0000ull, (5ull << 20) / 2, 64, seed ^ 0x22));
  return std::make_unique<MixGenerator>(std::move(parts),
                                        std::vector<double>{0.90, 0.10},
                                        seed ^ 0x23);
}

std::unique_ptr<TraceSource> make_stream(std::uint64_t seed) {
  // fp/stream-like: hot stack + unit-stride scans over 12 MB (compulsory
  // misses no cache capacity removes -> the L2 miss-rate floor).
  std::vector<std::unique_ptr<TraceSource>> parts;
  parts.push_back(make_hot_stack(0x7000'0000ull, seed ^ 0x30));
  parts.push_back(std::make_unique<StrideGenerator>(
      0x8000'0000ull, 8, 12ull << 20, 0.2, seed ^ 0x33));
  return std::make_unique<MixGenerator>(std::move(parts),
                                        std::vector<double>{0.82, 0.18},
                                        seed ^ 0x34);
}

std::unique_ptr<TraceSource> make_oltp(std::uint64_t seed) {
  // TPC-C-like: hot stack + hot index pages + table scans + log writes.
  std::vector<std::unique_ptr<TraceSource>> parts;
  parts.push_back(make_hot_stack(0xb000'0000ull, seed ^ 0x40));
  WorkingSetGenerator::Config idx;
  idx.base = 0xa000'0000ull;
  idx.footprint_bytes = 2ull << 20;
  idx.zipf_s = 1.2;
  idx.run_length = 8;
  idx.write_fraction = 0.35;
  parts.push_back(std::make_unique<WorkingSetGenerator>(idx, seed ^ 0x44));
  parts.push_back(std::make_unique<StrideGenerator>(
      0xc000'0000ull, 8, 6ull << 20, 0.1, seed ^ 0x55));
  parts.push_back(std::make_unique<StrideGenerator>(
      0xe000'0000ull, 64, 2ull << 20, 1.0, seed ^ 0x66));
  return std::make_unique<MixGenerator>(
      std::move(parts), std::vector<double>{0.60, 0.25, 0.10, 0.05},
      seed ^ 0x77);
}

std::unique_ptr<TraceSource> make_web(std::uint64_t seed) {
  // SPECWEB-like: very hot small object cache + long-tail object fetches.
  std::vector<std::unique_ptr<TraceSource>> parts;
  parts.push_back(make_hot_stack(0x1800'0000ull, seed ^ 0x80));
  WorkingSetGenerator::Config hot;
  hot.footprint_bytes = (3ull << 20) / 2;
  hot.zipf_s = 1.3;
  hot.run_length = 16;
  hot.write_fraction = 0.1;
  parts.push_back(std::make_unique<WorkingSetGenerator>(hot, seed ^ 0x88));
  WorkingSetGenerator::Config tail;
  tail.base = 0x2000'0000ull;
  tail.footprint_bytes = 24ull << 20;
  tail.zipf_s = 0.7;
  tail.run_length = 32;
  tail.write_fraction = 0.05;
  parts.push_back(std::make_unique<WorkingSetGenerator>(tail, seed ^ 0x99));
  return std::make_unique<MixGenerator>(std::move(parts),
                                        std::vector<double>{0.62, 0.28, 0.10},
                                        seed ^ 0xaa);
}

std::unique_ptr<TraceSource> make_dss(std::uint64_t seed) {
  // Decision-support-like: long table scans joined against a hash table
  // that fits mid-size L2s.
  std::vector<std::unique_ptr<TraceSource>> parts;
  parts.push_back(make_hot_stack(0x3800'0000ull, seed ^ 0xb0));
  parts.push_back(std::make_unique<StrideGenerator>(
      0x4800'0000ull, 8, 20ull << 20, 0.05, seed ^ 0xb1));
  WorkingSetGenerator::Config hash;
  hash.base = 0x5800'0000ull;
  hash.footprint_bytes = 1ull << 20;
  hash.zipf_s = 0.8;  // hash probes are nearly uniform over the table
  hash.run_length = 4;
  hash.write_fraction = 0.15;
  parts.push_back(std::make_unique<WorkingSetGenerator>(hash, seed ^ 0xb2));
  return std::make_unique<MixGenerator>(std::move(parts),
                                        std::vector<double>{0.62, 0.16, 0.22},
                                        seed ^ 0xb3);
}

std::unique_ptr<TraceSource> make_media(std::uint64_t seed) {
  // Media-kernel-like: streaming frames through a small hot coefficient
  // table; very regular, low miss rates everywhere.
  std::vector<std::unique_ptr<TraceSource>> parts;
  parts.push_back(make_hot_stack(0x6800'0000ull, seed ^ 0xc0));
  WorkingSetGenerator::Config coeff;
  coeff.base = 0x7000'0000ull;
  coeff.footprint_bytes = 64ull << 10;
  coeff.zipf_s = 1.0;
  coeff.run_length = 32;
  parts.push_back(std::make_unique<WorkingSetGenerator>(coeff, seed ^ 0xc1));
  parts.push_back(std::make_unique<StrideGenerator>(
      0x7800'0000ull, 8, 8ull << 20, 0.3, seed ^ 0xc2));
  return std::make_unique<MixGenerator>(std::move(parts),
                                        std::vector<double>{0.58, 0.32, 0.10},
                                        seed ^ 0xc3);
}

std::unique_ptr<TraceSource> make_jvm(std::uint64_t seed) {
  // Managed-runtime-like: long mutator phases (intcode signature)
  // alternating with GC sweeps (strided scans of the heap) — a genuinely
  // phased workload, built on the Markov phase generator.
  // Three mutator phases to one GC phase keeps the long-run time share
  // at ~3:1 (the phase generator switches uniformly among entries).
  std::vector<std::unique_ptr<TraceSource>> phases;
  phases.push_back(make_intcode(seed ^ 0xd0));
  phases.push_back(make_intcode(seed ^ 0xd3));
  phases.push_back(make_intcode(seed ^ 0xd4));
  phases.push_back(std::make_unique<StrideGenerator>(
      0x2000'0000ull, 8, 4ull << 20, 0.4, seed ^ 0xd1));
  return std::make_unique<PhaseGenerator>(std::move(phases),
                                          /*mean_phase_length=*/40'000,
                                          seed ^ 0xd2);
}

}  // namespace

const std::vector<Workload>& default_suite() {
  static const std::vector<Workload> suite = {
      {"intcode", 101, &make_intcode}, {"pointer", 202, &make_pointer},
      {"stream", 303, &make_stream},   {"oltp", 404, &make_oltp},
      {"web", 505, &make_web},         {"dss", 606, &make_dss},
      {"media", 707, &make_media},     {"jvm", 808, &make_jvm},
  };
  return suite;
}

std::unique_ptr<TraceSource> make_workload(const std::string& name,
                                           std::uint64_t seed) {
  for (const auto& w : default_suite()) {
    if (w.name == name) return w.make(seed == 0 ? w.seed : seed);
  }
  throw Error("unknown workload: " + name);
}

namespace {

SuitePoint run_point(const Workload& w, const SuiteRunConfig& cfg,
                     std::uint64_t l1_bytes, std::uint64_t l2_bytes) {
  auto trace = w.make(w.seed);
  TwoLevelHierarchy hier(
      SetAssociativeCache(l1_bytes, cfg.l1_block, cfg.l1_assoc),
      SetAssociativeCache(l2_bytes, cfg.l2_block, cfg.l2_assoc));
  hier.warmup(*trace, cfg.warmup_refs);
  hier.run(*trace, cfg.measured_refs);
  SuitePoint p;
  p.workload = w.name;
  p.l1_bytes = l1_bytes;
  p.l2_bytes = l2_bytes;
  p.l1_miss_rate = hier.stats().l1_miss_rate();
  p.l2_local_miss_rate = hier.stats().l2_local_miss_rate();
  return p;
}

}  // namespace

std::vector<SuitePoint> measure_suite(const SuiteRunConfig& cfg) {
  NC_REQUIRE(!cfg.l1_sizes.empty() && !cfg.l2_sizes.empty(),
             "suite config needs sizes");
  std::vector<SuitePoint> out;
  const std::uint64_t l2_fixed = cfg.l2_sizes[cfg.l2_sizes.size() / 2];
  const std::uint64_t l1_fixed = cfg.l1_sizes[cfg.l1_sizes.size() / 2];
  for (const auto& w : default_suite()) {
    for (std::uint64_t l1 : cfg.l1_sizes) {
      out.push_back(run_point(w, cfg, l1, l2_fixed));
    }
    for (std::uint64_t l2 : cfg.l2_sizes) {
      out.push_back(run_point(w, cfg, l1_fixed, l2));
    }
  }
  return out;
}

namespace {

std::vector<double> average_curve(const std::vector<SuitePoint>& points,
                                  const std::vector<std::uint64_t>& sizes,
                                  bool by_l1) {
  std::vector<double> avg(sizes.size(), 0.0);
  std::vector<int> count(sizes.size(), 0);
  // L1 sweep points share the modal L2 size and vice versa; identify the
  // fixed level as the most frequent value of the other dimension.
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    for (const auto& p : points) {
      const std::uint64_t key = by_l1 ? p.l1_bytes : p.l2_bytes;
      if (key != sizes[i]) continue;
      avg[i] += by_l1 ? p.l1_miss_rate : p.l2_local_miss_rate;
      ++count[i];
    }
    NC_REQUIRE(count[i] > 0, "no suite points for requested size");
    avg[i] /= count[i];
  }
  return avg;
}

}  // namespace

std::vector<double> average_l1_curve(const std::vector<SuitePoint>& points,
                                     const std::vector<std::uint64_t>& sizes) {
  return average_curve(points, sizes, /*by_l1=*/true);
}

std::vector<double> average_l2_curve(const std::vector<SuitePoint>& points,
                                     const std::vector<std::uint64_t>& sizes) {
  return average_curve(points, sizes, /*by_l1=*/false);
}

}  // namespace nanocache::sim
