// The synthetic benchmark suite standing in for the paper's SPEC2000 /
// SPECWEB / TPC-C trace collection: a set of named workloads with distinct
// locality signatures, plus the measurement harness that produces
// miss-rate-vs-size curves by running them through the simulator.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "sim/hierarchy.h"
#include "sim/trace.h"

namespace nanocache::sim {

/// A named workload factory (fresh generator per call, deterministic for a
/// given seed).
struct Workload {
  std::string name;
  std::uint64_t seed = 1;
  std::unique_ptr<TraceSource> (*make)(std::uint64_t seed);
};

/// The default suite: integer-code-like, pointer-chasing, streaming,
/// transaction-mix and web-mix signatures.
const std::vector<Workload>& default_suite();

/// Look up one workload by name; throws if unknown.
std::unique_ptr<TraceSource> make_workload(const std::string& name,
                                           std::uint64_t seed = 0);

/// Miss statistics of one (workload, L1 size, L2 size) run.
struct SuitePoint {
  std::string workload;
  std::uint64_t l1_bytes = 0;
  std::uint64_t l2_bytes = 0;
  double l1_miss_rate = 0.0;
  double l2_local_miss_rate = 0.0;
};

struct SuiteRunConfig {
  std::vector<std::uint64_t> l1_sizes = {4096, 8192, 16384, 32768, 65536};
  std::vector<std::uint64_t> l2_sizes = {256 * 1024, 512 * 1024, 1024 * 1024,
                                         2048 * 1024, 4096 * 1024};
  std::uint64_t warmup_refs = 200'000;
  std::uint64_t measured_refs = 800'000;
  std::uint32_t l1_block = 32;
  std::uint32_t l1_assoc = 2;
  std::uint32_t l2_block = 64;
  std::uint32_t l2_assoc = 8;
};

/// Run every workload over the size cross-product; one SuitePoint each.
/// (L1 varies with L2 fixed at its median entry and vice versa, rather than
/// the full product, to bound runtime.)
std::vector<SuitePoint> measure_suite(const SuiteRunConfig& config);

/// Average local miss rate per L1 size (L2 fixed) across workloads.
std::vector<double> average_l1_curve(const std::vector<SuitePoint>& points,
                                     const std::vector<std::uint64_t>& sizes);

/// Average local L2 miss rate per L2 size (L1 fixed) across workloads.
std::vector<double> average_l2_curve(const std::vector<SuitePoint>& points,
                                     const std::vector<std::uint64_t>& sizes);

}  // namespace nanocache::sim
