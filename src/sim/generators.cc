#include "sim/generators.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/error.h"

namespace nanocache::sim {

// --- StrideGenerator --------------------------------------------------------

StrideGenerator::StrideGenerator(std::uint64_t base, std::uint64_t stride_bytes,
                                 std::uint64_t footprint_bytes,
                                 double write_fraction, std::uint64_t seed)
    : base_(base),
      stride_(stride_bytes),
      footprint_(footprint_bytes),
      write_fraction_(write_fraction),
      rng_(seed) {
  NC_REQUIRE(stride_ > 0, "stride must be positive");
  NC_REQUIRE(footprint_ >= stride_, "footprint must cover one stride");
  NC_REQUIRE(write_fraction_ >= 0.0 && write_fraction_ <= 1.0,
             "write fraction must be in [0,1]");
}

Access StrideGenerator::next() {
  Access a;
  a.address = base_ + offset_;
  a.is_write = rng_.uniform() < write_fraction_;
  offset_ += stride_;
  if (offset_ >= footprint_) offset_ = 0;
  return a;
}

// --- WorkingSetGenerator ----------------------------------------------------

WorkingSetGenerator::WorkingSetGenerator(const Config& config,
                                         std::uint64_t seed)
    : cfg_(config), rng_(seed) {
  NC_REQUIRE(cfg_.page_bytes >= 64, "page must be >= 64 bytes");
  NC_REQUIRE(cfg_.footprint_bytes >= cfg_.page_bytes,
             "footprint must cover one page");
  NC_REQUIRE(cfg_.zipf_s > 0.0, "zipf skew must be positive");
  NC_REQUIRE(cfg_.run_length >= 1, "run length must be >= 1");
  num_pages_ = cfg_.footprint_bytes / cfg_.page_bytes;

  // Zipf CDF over ranks 1..num_pages (capped to bound setup cost; ranks
  // beyond the cap share the tail mass uniformly).
  const std::uint64_t ranked = std::min<std::uint64_t>(num_pages_, 65536);
  cdf_.resize(ranked);
  double sum = 0.0;
  for (std::uint64_t r = 0; r < ranked; ++r) {
    sum += 1.0 / std::pow(static_cast<double>(r + 1), cfg_.zipf_s);
    cdf_[r] = sum;
  }
  for (double& v : cdf_) v /= sum;

  // Random rank -> page mapping so popular pages are scattered in memory.
  rank_to_page_.resize(ranked);
  std::iota(rank_to_page_.begin(), rank_to_page_.end(), 0u);
  Rng shuffle_rng(seed ^ 0xabcdef123456ull);
  for (std::size_t i = rank_to_page_.size(); i > 1; --i) {
    std::swap(rank_to_page_[i - 1], rank_to_page_[shuffle_rng.below(i)]);
  }
}

std::uint64_t WorkingSetGenerator::pick_page() {
  const double u = rng_.uniform();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  std::uint64_t rank = static_cast<std::uint64_t>(it - cdf_.begin());
  if (rank >= cdf_.size()) rank = cdf_.size() - 1;
  std::uint64_t page = rank_to_page_[rank];
  if (num_pages_ > cdf_.size()) {
    // Spread the coarsely ranked tail over the full footprint.
    page = page * (num_pages_ / cdf_.size()) + rng_.below(num_pages_ / cdf_.size());
    if (page >= num_pages_) page = num_pages_ - 1;
  }
  return page;
}

Access WorkingSetGenerator::next() {
  if (run_remaining_ == 0) {
    const std::uint64_t page = pick_page();
    const std::uint64_t word =
        rng_.below(cfg_.page_bytes / 8 - cfg_.run_length + 1);
    run_addr_ = cfg_.base + page * cfg_.page_bytes + word * 8;
    run_remaining_ = cfg_.run_length;
  }
  Access a;
  a.address = run_addr_;
  a.is_write = rng_.uniform() < cfg_.write_fraction;
  run_addr_ += 8;
  --run_remaining_;
  return a;
}

// --- PointerChaseGenerator --------------------------------------------------

PointerChaseGenerator::PointerChaseGenerator(std::uint64_t base,
                                             std::uint64_t footprint_bytes,
                                             std::uint32_t node_bytes,
                                             std::uint64_t seed)
    : base_(base), node_bytes_(node_bytes) {
  NC_REQUIRE(node_bytes_ >= 8, "node must be >= 8 bytes");
  NC_REQUIRE(footprint_bytes >= node_bytes_ * 2ull,
             "footprint must hold >= 2 nodes");
  const std::uint64_t nodes64 = footprint_bytes / node_bytes_;
  NC_REQUIRE(nodes64 <= 1ull << 28, "pointer-chase footprint too large");
  const auto nodes = static_cast<std::uint32_t>(nodes64);

  // Sattolo's algorithm: a single cycle visiting every node.
  std::vector<std::uint32_t> perm(nodes);
  std::iota(perm.begin(), perm.end(), 0u);
  Rng rng(seed);
  for (std::uint32_t i = nodes - 1; i > 0; --i) {
    const auto j = static_cast<std::uint32_t>(rng.below(i));
    std::swap(perm[i], perm[j]);
  }
  next_index_.resize(nodes);
  for (std::uint32_t i = 0; i + 1 < nodes; ++i) {
    next_index_[perm[i]] = perm[i + 1];
  }
  next_index_[perm[nodes - 1]] = perm[0];
}

Access PointerChaseGenerator::next() {
  Access a;
  a.address = base_ + static_cast<std::uint64_t>(cursor_) * node_bytes_;
  a.is_write = false;
  cursor_ = next_index_[cursor_];
  return a;
}

// --- InstructionFetchGenerator ----------------------------------------------

InstructionFetchGenerator::InstructionFetchGenerator(const Config& config,
                                                     std::uint64_t seed)
    : cfg_(config), rng_(seed), pc_(config.base) {
  NC_REQUIRE(cfg_.code_bytes >= 4096, "code footprint must be >= 4KB");
  NC_REQUIRE(cfg_.mean_block_instructions >= 1.0,
             "basic blocks must average >= 1 instruction");
  NC_REQUIRE(cfg_.loop_back_probability >= 0.0 &&
                 cfg_.loop_back_probability <= 1.0,
             "loop-back probability must be in [0,1]");
  NC_REQUIRE(cfg_.hot_targets >= 1, "need at least one loop target");
  loop_targets_.resize(cfg_.hot_targets);
  for (auto& t : loop_targets_) {
    t = cfg_.base + (rng_.below(cfg_.code_bytes / 4)) * 4;
  }
}

Access InstructionFetchGenerator::next() {
  Access a;
  a.address = pc_;
  a.is_write = false;  // instruction fetches never write

  // End of basic block with probability 1/mean_block (geometric lengths).
  if (rng_.uniform() < 1.0 / cfg_.mean_block_instructions) {
    if (rng_.uniform() < cfg_.loop_back_probability) {
      // Taken branch to a hot loop header.
      pc_ = loop_targets_[rng_.below(loop_targets_.size())];
    } else {
      // Fresh target: call/long jump; it becomes a new hot header.
      pc_ = cfg_.base + rng_.below(cfg_.code_bytes / 4) * 4;
      loop_targets_[rng_.below(loop_targets_.size())] = pc_;
    }
  } else {
    pc_ += 4;
    if (pc_ >= cfg_.base + cfg_.code_bytes) pc_ = cfg_.base;
  }
  return a;
}

// --- PhaseGenerator ---------------------------------------------------------

PhaseGenerator::PhaseGenerator(
    std::vector<std::unique_ptr<TraceSource>> sources,
    std::uint64_t mean_phase_length, std::uint64_t seed)
    : sources_(std::move(sources)), rng_(seed) {
  NC_REQUIRE(!sources_.empty(), "phase generator needs at least one source");
  NC_REQUIRE(mean_phase_length >= 1, "mean phase length must be >= 1");
  switch_probability_ = 1.0 / static_cast<double>(mean_phase_length);
}

Access PhaseGenerator::next() {
  if (sources_.size() > 1 && rng_.uniform() < switch_probability_) {
    // Jump to a uniformly chosen *different* phase.
    const std::size_t offset = 1 + rng_.below(sources_.size() - 1);
    current_ = (current_ + offset) % sources_.size();
    ++transitions_;
  }
  return sources_[current_]->next();
}

// --- MixGenerator -----------------------------------------------------------

MixGenerator::MixGenerator(std::vector<std::unique_ptr<TraceSource>> sources,
                           std::vector<double> weights, std::uint64_t seed)
    : sources_(std::move(sources)), rng_(seed) {
  NC_REQUIRE(!sources_.empty(), "mix needs at least one source");
  NC_REQUIRE(sources_.size() == weights.size(),
             "mix weights/sources size mismatch");
  double sum = 0.0;
  for (double w : weights) {
    NC_REQUIRE(w > 0.0, "mix weights must be positive");
    sum += w;
    cumulative_.push_back(sum);
  }
  for (double& c : cumulative_) c /= sum;
}

Access MixGenerator::next() {
  const double u = rng_.uniform();
  const auto it = std::lower_bound(cumulative_.begin(), cumulative_.end(), u);
  std::size_t idx = static_cast<std::size_t>(it - cumulative_.begin());
  if (idx >= sources_.size()) idx = sources_.size() - 1;
  return sources_[idx]->next();
}

}  // namespace nanocache::sim
