#include "surrogate/store.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <set>
#include <utility>

#include "util/error.h"
#include "util/hash.h"
#include "util/json.h"
#include "util/metrics.h"

namespace nanocache::surrogate {

namespace {

struct StoreCounters {
  metrics::Counter& tables;
  metrics::Counter& corrupt;
  metrics::Counter& rejects;
};

StoreCounters& store_counters() {
  static auto& registry = metrics::Registry::instance();
  static StoreCounters counters{
      registry.counter("api.surrogate.tables"),
      registry.counter("api.surrogate.corrupt_lines"),
      registry.counter("api.surrogate.segment_rejects")};
  return counters;
}

std::string eval_key(api::Level level, std::uint64_t size_bytes,
                     int node_nm) {
  return std::string(api::level_name(level)) + '|' +
         std::to_string(size_bytes) + '|' + std::to_string(node_nm);
}

std::string optimize_key(api::Level level, std::uint64_t size_bytes,
                         int node_nm, api::SchemeId scheme) {
  return eval_key(level, size_bytes, node_nm) + '|' +
         api::scheme_id_name(scheme);
}

double cell_spread(const EvalTable& table, const math::BilinearGrid::Cell& c,
                   std::size_t metric) {
  const double v00 = table.values[table.point_index(c.ix, c.iy) + metric];
  const double v10 = table.values[table.point_index(c.ix + 1, c.iy) + metric];
  const double v01 = table.values[table.point_index(c.ix, c.iy + 1) + metric];
  const double v11 =
      table.values[table.point_index(c.ix + 1, c.iy + 1) + metric];
  const double lo = std::min(std::min(v00, v10), std::min(v01, v11));
  const double hi = std::max(std::max(v00, v10), std::max(v01, v11));
  return hi - lo;
}

double certified_bound(const BoundModel& model, double spread) {
  return model.scale * spread + model.floor;
}

/// Max spread of `metric` over every cell of the table (the coverage-wide
/// worst case reported by capabilities).
double max_spread(const EvalTable& table, std::size_t metric) {
  double worst = 0.0;
  for (std::size_t iv = 0; iv + 1 < table.vth_v.size(); ++iv) {
    for (std::size_t it = 0; it + 1 < table.tox_a.size(); ++it) {
      math::BilinearGrid::Cell cell;
      cell.ix = iv;
      cell.iy = it;
      worst = std::max(worst, cell_spread(table, cell, metric));
    }
  }
  return worst;
}

}  // namespace

std::unique_ptr<SurrogateStore> SurrogateStore::open(
    const std::string& dir, const std::string& fingerprint) {
  NC_REQUIRE(!dir.empty(), "surrogate directory must be non-empty");
  auto store = std::unique_ptr<SurrogateStore>(new SurrogateStore());
  store->fingerprint_ = fingerprint;
  store->content_checksum_ = fnv1a64_hex("");

  std::error_code ec;
  const auto status = std::filesystem::status(dir, ec);
  if (ec || !std::filesystem::exists(status)) {
    return store;  // no tables yet: exact fallback, not an error
  }
  NC_REQUIRE_IO(std::filesystem::is_directory(status),
                "surrogate path '" + dir + "' is not a directory");
  const std::string path = segment_path(dir, fingerprint);
  if (!std::filesystem::exists(path, ec)) {
    return store;
  }
  store->load(path);
  store->index_tables();
  return store;
}

void SurrogateStore::load(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) return;  // racing deletion: degrade to exact

  std::string line;
  if (!std::getline(in, line)) return;  // empty file: no tables
  try {
    const auto header = json::parse(line);
    const auto magic = header->get("nanocache_surrogate");
    const auto fp = header->get("fingerprint");
    NC_REQUIRE(magic && magic->as_int() == 1 && fp &&
                   fp->as_string() == fingerprint_,
               "surrogate segment header mismatch");
    if (const auto stamp = header->get("stamp")) {
      stamp_ = stamp->as_string();
    }
  } catch (const Error&) {
    // A segment written by a different build (or garbage): reject it
    // whole rather than risk serving answers certified against another
    // model.  Never rewritten here — the store is a read-only consumer.
    store_counters().rejects.add(1);
    return;
  }

  std::string content;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    try {
      const auto entry = json::parse(line);
      const auto checksum = entry->get("checksum");
      const auto table = entry->get("table");
      NC_REQUIRE(checksum && table, "surrogate entry missing fields");
      const std::string& text = table->as_string();
      NC_REQUIRE(fnv1a64_hex(text) == checksum->as_string(),
                 "surrogate entry checksum mismatch");
      EvalTable eval;
      OptimizeTable optimize;
      if (parse_table_json(text, &eval, &optimize)) {
        EvalEntry e;
        e.grid = std::make_unique<math::BilinearGrid>(eval.vth_v, eval.tox_a);
        const std::string key =
            eval_key(eval.level, eval.size_bytes, eval.node_nm);
        e.table = std::move(eval);
        evals_[key] = std::move(e);
      } else {
        optimizes_[optimize_key(optimize.level, optimize.size_bytes,
                                optimize.node_nm, optimize.scheme)] =
            std::move(optimize);
      }
      content += text;
      content += '\n';
    } catch (const Error&) {
      ++corrupt_lines_;
      store_counters().corrupt.add(1);
    }
  }
  content_checksum_ = fnv1a64_hex(content);
  store_counters().tables.add(evals_.size() + optimizes_.size());
}

void SurrogateStore::index_tables() {
  api::SurrogateErrorBounds worst{};
  for (const auto& [key, entry] : evals_) {
    const auto& t = entry.table;
    worst.leakage_mw =
        std::max(worst.leakage_mw,
                 certified_bound(t.bound_leakage, max_spread(t, kLeakageMw)));
    worst.access_time_ps = std::max(
        worst.access_time_ps,
        certified_bound(t.bound_access, max_spread(t, kAccessTimePs)));
    worst.dynamic_pj =
        std::max(worst.dynamic_pj,
                 certified_bound(t.bound_dynamic, max_spread(t, kDynamicPj)));
  }
  for (const auto& [key, t] : optimizes_) {
    for (std::size_t i = 0; i + 1 < t.rungs.size(); ++i) {
      worst.leakage_mw =
          std::max(worst.leakage_mw, std::max(0.0, t.rungs[i].leakage_mw -
                                                       t.rungs[i + 1].leakage_mw));
    }
  }
  worst_bounds_ = worst;
}

std::optional<EvalAnswer> SurrogateStore::lookup_eval(
    api::Level level, std::uint64_t size_bytes, int node_nm,
    const api::Knobs& knobs) const {
  const auto it = evals_.find(eval_key(level, size_bytes, node_nm));
  if (it == evals_.end()) return std::nullopt;
  const EvalEntry& entry = it->second;
  const EvalTable& t = entry.table;
  if (!entry.grid->contains(knobs.vth_v, knobs.tox_a)) return std::nullopt;
  const auto cell = entry.grid->locate(knobs.vth_v, knobs.tox_a);

  const auto value_at = [&](std::size_t metric) {
    return entry.grid->interpolate(
        cell, t.values[t.point_index(cell.ix, cell.iy) + metric],
        t.values[t.point_index(cell.ix + 1, cell.iy) + metric],
        t.values[t.point_index(cell.ix, cell.iy + 1) + metric],
        t.values[t.point_index(cell.ix + 1, cell.iy + 1) + metric]);
  };

  EvalAnswer answer;
  auto& r = answer.response;
  r.organization = t.organization;
  r.access_time_ps = value_at(kAccessTimePs);
  r.leakage_mw = value_at(kLeakageMw);
  r.leakage_sub_mw = value_at(kLeakageSubMw);
  r.leakage_gate_mw = value_at(kLeakageGateMw);
  r.dynamic_pj = value_at(kDynamicPj);
  r.area_um2 = value_at(kAreaUm2);
  r.components.reserve(t.components.size());
  for (std::size_t c = 0; c < t.components.size(); ++c) {
    api::ComponentEval comp;
    comp.component = t.components[c];
    comp.knobs = knobs;
    const std::size_t base = kTotalsPerPoint + c * kPerComponent;
    comp.delay_ps = value_at(base + 0);
    comp.leakage_mw = value_at(base + 1);
    comp.dynamic_pj = value_at(base + 2);
    r.components.push_back(std::move(comp));
  }

  answer.bounds.leakage_mw =
      certified_bound(t.bound_leakage, cell_spread(t, cell, kLeakageMw));
  answer.bounds.access_time_ps =
      certified_bound(t.bound_access, cell_spread(t, cell, kAccessTimePs));
  answer.bounds.dynamic_pj =
      certified_bound(t.bound_dynamic, cell_spread(t, cell, kDynamicPj));
  return answer;
}

std::optional<OptimizeAnswer> SurrogateStore::lookup_optimize(
    api::Level level, std::uint64_t size_bytes, int node_nm,
    api::SchemeId scheme, double target_ps) const {
  const auto it =
      optimizes_.find(optimize_key(level, size_bytes, node_nm, scheme));
  if (it == optimizes_.end()) return std::nullopt;
  const OptimizeTable& t = it->second;
  if (target_ps < t.rungs.front().target_ps ||
      target_ps > t.rungs.back().target_ps) {
    return std::nullopt;  // off the ladder: exact fallback
  }
  // Largest tabulated rung <= target: its design is feasible for the
  // requested target and optimal for a (possibly) tighter one.
  const auto rung_it = std::upper_bound(
      t.rungs.begin(), t.rungs.end(), target_ps,
      [](double v, const OptimizeRung& r) { return v < r.target_ps; });
  const std::size_t idx =
      static_cast<std::size_t>(rung_it - t.rungs.begin()) - 1;
  const OptimizeRung& rung = t.rungs[idx];

  OptimizeAnswer answer;
  auto& result = answer.response.result;
  result.feasible = true;
  result.leakage_mw = rung.leakage_mw;
  result.access_time_ps = rung.access_time_ps;
  result.dynamic_pj = rung.dynamic_pj;
  result.assignment = rung.assignment;

  // Exact at a rung; between rungs the true optimum is bracketed by the
  // neighboring rungs' optima (feasible sets nest), so the served leakage
  // over-estimates by at most the adjacent-rung gap.
  if (target_ps != rung.target_ps && idx + 1 < t.rungs.size()) {
    answer.bounds.leakage_mw =
        std::max(0.0, rung.leakage_mw - t.rungs[idx + 1].leakage_mw);
  }
  return answer;
}

std::vector<std::uint64_t> SurrogateStore::covered_sizes() const {
  std::set<std::uint64_t> sizes;
  for (const auto& [key, entry] : evals_) sizes.insert(entry.table.size_bytes);
  for (const auto& [key, t] : optimizes_) sizes.insert(t.size_bytes);
  return {sizes.begin(), sizes.end()};
}

std::vector<int> SurrogateStore::covered_nodes() const {
  std::set<int> nodes;
  for (const auto& [key, entry] : evals_) nodes.insert(entry.table.node_nm);
  for (const auto& [key, t] : optimizes_) nodes.insert(t.node_nm);
  return {nodes.begin(), nodes.end()};
}

std::vector<std::string> SurrogateStore::covered_schemes() const {
  std::set<std::string> schemes;
  for (const auto& [key, t] : optimizes_) {
    schemes.insert(api::scheme_id_name(t.scheme));
  }
  return {schemes.begin(), schemes.end()};
}

}  // namespace nanocache::surrogate
