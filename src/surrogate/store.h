// SurrogateStore — the read side of the surrogate serving tier.
//
// A store loads the one table segment matching the service's library
// fingerprint at Service::create time and answers covered eval/optimize
// requests in microseconds: an O(1) keyed table lookup plus bilinear
// interpolation (eval) or a ladder binary search (optimize).  Everything a
// request needs beyond what a table covers — other sizes/nodes, explicit
// organizations, power gating, out-of-lattice knobs or targets — is simply
// "not covered": lookups return nullopt and the service falls back to the
// exact engine.  Robustness mirrors DiskCache: a missing directory or
// segment and any corrupt line degrade coverage, never answers.
//
// Thread safety: a store is immutable after open(); concurrent lookups
// need no synchronization.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "nanocache/responses.h"
#include "nanocache/types.h"
#include "surrogate/tables.h"
#include "util/interp.h"

namespace nanocache::surrogate {

/// A served eval answer plus its certified error bounds.
struct EvalAnswer {
  api::EvalResponse response;
  api::SurrogateErrorBounds bounds;
};

/// A served optimize answer plus its certified error bounds (access time
/// and dynamic energy of the served design are exact, so those bounds are
/// always 0).
struct OptimizeAnswer {
  api::OptimizeResponse response;
  api::SurrogateErrorBounds bounds;
};

class SurrogateStore {
 public:
  /// Load the segment for `fingerprint` inside `dir`.  A missing directory
  /// or segment yields an empty store (exact fallback, not an error); a
  /// `dir` that exists but is not a directory throws Error(kIo).  Corrupt
  /// lines and fingerprint-mismatched segments are dropped and counted
  /// (api.surrogate.corrupt_lines / api.surrogate.segment_rejects).
  static std::unique_ptr<SurrogateStore> open(const std::string& dir,
                                              const std::string& fingerprint);

  std::optional<EvalAnswer> lookup_eval(api::Level level,
                                        std::uint64_t size_bytes, int node_nm,
                                        const api::Knobs& knobs) const;

  std::optional<OptimizeAnswer> lookup_optimize(api::Level level,
                                                std::uint64_t size_bytes,
                                                int node_nm,
                                                api::SchemeId scheme,
                                                double target_ps) const;

  std::size_t eval_tables() const { return evals_.size(); }
  std::size_t optimize_tables() const { return optimizes_.size(); }
  bool loaded() const { return !evals_.empty() || !optimizes_.empty(); }
  std::size_t corrupt_lines() const { return corrupt_lines_; }

  const std::string& fingerprint() const { return fingerprint_; }
  /// The segment's precompute stamp (caller-supplied, not wall-clock).
  const std::string& stamp() const { return stamp_; }
  /// Content hash over the accepted table lines; the service folds it into
  /// the disk-cache fingerprint so surrogate-served and exact-only runs
  /// never share cache entries.
  const std::string& content_checksum() const { return content_checksum_; }

  /// Coverage summary for the capabilities response.
  std::vector<std::uint64_t> covered_sizes() const;
  std::vector<int> covered_nodes() const;
  std::vector<std::string> covered_schemes() const;
  /// Worst certified per-answer bound across all loaded tables.
  api::SurrogateErrorBounds worst_bounds() const { return worst_bounds_; }

 private:
  SurrogateStore() = default;
  void load(const std::string& path);
  void index_tables();

  struct EvalEntry {
    EvalTable table;
    std::unique_ptr<math::BilinearGrid> grid;
  };

  std::string fingerprint_;
  std::string stamp_;
  std::string content_checksum_;
  std::size_t corrupt_lines_ = 0;
  api::SurrogateErrorBounds worst_bounds_{};
  /// Keyed "level|size|node" and "level|size|node|scheme".
  std::map<std::string, EvalEntry> evals_;
  std::map<std::string, OptimizeTable> optimizes_;
};

}  // namespace nanocache::surrogate
