#include "surrogate/tables.h"

#include <filesystem>
#include <fstream>
#include <utility>

#include "util/error.h"
#include "util/hash.h"
#include "util/json.h"

namespace nanocache::surrogate {

namespace {

api::Level parse_level(const std::string& s) {
  if (s == "l1") return api::Level::kL1;
  if (s == "l2") return api::Level::kL2;
  throw Error(ErrorCategory::kConfig, "unknown level '" + s + "'");
}

api::SchemeId parse_scheme(const std::string& s) {
  if (s == "I") return api::SchemeId::kI;
  if (s == "II") return api::SchemeId::kII;
  if (s == "III") return api::SchemeId::kIII;
  throw Error(ErrorCategory::kConfig, "unknown scheme '" + s + "'");
}

std::string double_array_json(const std::vector<double>& values) {
  std::string out = "[";
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i != 0) out += ',';
    out += json::format_double(values[i]);
  }
  out += ']';
  return out;
}

std::string string_array_json(const std::vector<std::string>& values) {
  std::string out = "[";
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i != 0) out += ',';
    out += json::quote(values[i]);
  }
  out += ']';
  return out;
}

std::string bound_model_json(const BoundModel& bound) {
  return "{\"scale\":" + json::format_double(bound.scale) +
         ",\"floor\":" + json::format_double(bound.floor) + "}";
}

BoundModel parse_bound_model(const json::ValuePtr& value) {
  NC_REQUIRE(value && value->is_object(), "bound model must be an object");
  BoundModel bound;
  const auto scale = value->get("scale");
  const auto floor = value->get("floor");
  NC_REQUIRE(scale && floor, "bound model needs scale and floor");
  bound.scale = scale->as_double();
  bound.floor = floor->as_double();
  return bound;
}

std::vector<double> parse_double_array(const json::ValuePtr& value,
                                       const char* what) {
  NC_REQUIRE(value && value->is_array(),
             std::string("expected array for ") + what);
  std::vector<double> out;
  out.reserve(value->as_array().size());
  for (const auto& v : value->as_array()) out.push_back(v->as_double());
  return out;
}

json::ValuePtr require_field(const json::ValuePtr& root, const char* key) {
  auto v = root->get(key);
  NC_REQUIRE(v != nullptr, std::string("surrogate table missing '") + key +
                               "' field");
  return v;
}

void require_axis(const std::vector<double>& axis, const char* what) {
  NC_REQUIRE(axis.size() >= 2,
             std::string("surrogate table axis '") + what +
                 "' needs >= 2 points");
  for (std::size_t i = 1; i < axis.size(); ++i) {
    NC_REQUIRE(axis[i] > axis[i - 1],
               std::string("surrogate table axis '") + what +
                   "' must be strictly increasing");
  }
}

EvalTable parse_eval_table(const json::ValuePtr& root) {
  EvalTable t;
  t.level = parse_level(require_field(root, "level")->as_string());
  t.size_bytes = require_field(root, "size_bytes")->as_uint();
  t.node_nm = static_cast<int>(require_field(root, "node_nm")->as_int());
  t.organization = require_field(root, "organization")->as_string();
  for (const auto& c : require_field(root, "components")->as_array()) {
    t.components.push_back(c->as_string());
  }
  NC_REQUIRE(!t.components.empty(), "surrogate eval table has no components");
  t.vth_v = parse_double_array(require_field(root, "vth_v"), "vth_v");
  t.tox_a = parse_double_array(require_field(root, "tox_a"), "tox_a");
  require_axis(t.vth_v, "vth_v");
  require_axis(t.tox_a, "tox_a");
  t.values = parse_double_array(require_field(root, "values"), "values");
  NC_REQUIRE(t.values.size() ==
                 t.vth_v.size() * t.tox_a.size() * t.values_per_point(),
             "surrogate eval table value count mismatch");
  const auto bounds = require_field(root, "bounds");
  t.bound_leakage = parse_bound_model(bounds->get("leakage_mw"));
  t.bound_access = parse_bound_model(bounds->get("access_time_ps"));
  t.bound_dynamic = parse_bound_model(bounds->get("dynamic_pj"));
  return t;
}

OptimizeTable parse_optimize_table(const json::ValuePtr& root) {
  OptimizeTable t;
  t.level = parse_level(require_field(root, "level")->as_string());
  t.size_bytes = require_field(root, "size_bytes")->as_uint();
  t.node_nm = static_cast<int>(require_field(root, "node_nm")->as_int());
  t.scheme = parse_scheme(require_field(root, "scheme")->as_string());
  for (const auto& rv : require_field(root, "rungs")->as_array()) {
    OptimizeRung rung;
    rung.target_ps = require_field(rv, "target_ps")->as_double();
    rung.leakage_mw = require_field(rv, "leakage_mw")->as_double();
    rung.access_time_ps = require_field(rv, "access_time_ps")->as_double();
    rung.dynamic_pj = require_field(rv, "dynamic_pj")->as_double();
    for (const auto& av : require_field(rv, "assignment")->as_array()) {
      api::ComponentKnobs knobs;
      knobs.component = require_field(av, "component")->as_string();
      knobs.knobs.vth_v = require_field(av, "vth_v")->as_double();
      knobs.knobs.tox_a = require_field(av, "tox_a")->as_double();
      rung.assignment.push_back(std::move(knobs));
    }
    t.rungs.push_back(std::move(rung));
  }
  NC_REQUIRE(!t.rungs.empty(), "surrogate optimize table has no rungs");
  for (std::size_t i = 1; i < t.rungs.size(); ++i) {
    NC_REQUIRE(t.rungs[i].target_ps > t.rungs[i - 1].target_ps,
               "surrogate optimize ladder must increase");
  }
  return t;
}

}  // namespace

std::string eval_table_json(const EvalTable& table) {
  std::string out = "{\"kind\":\"eval\"";
  out += ",\"level\":" + json::quote(api::level_name(table.level));
  out += ",\"size_bytes\":" + std::to_string(table.size_bytes);
  out += ",\"node_nm\":" + std::to_string(table.node_nm);
  out += ",\"organization\":" + json::quote(table.organization);
  out += ",\"components\":" + string_array_json(table.components);
  out += ",\"vth_v\":" + double_array_json(table.vth_v);
  out += ",\"tox_a\":" + double_array_json(table.tox_a);
  out += ",\"values\":" + double_array_json(table.values);
  out += ",\"bounds\":{\"leakage_mw\":" + bound_model_json(table.bound_leakage);
  out += ",\"access_time_ps\":" + bound_model_json(table.bound_access);
  out += ",\"dynamic_pj\":" + bound_model_json(table.bound_dynamic);
  out += "}}";
  return out;
}

std::string optimize_table_json(const OptimizeTable& table) {
  std::string out = "{\"kind\":\"optimize\"";
  out += ",\"level\":" + json::quote(api::level_name(table.level));
  out += ",\"size_bytes\":" + std::to_string(table.size_bytes);
  out += ",\"node_nm\":" + std::to_string(table.node_nm);
  out += ",\"scheme\":" + json::quote(api::scheme_id_name(table.scheme));
  out += ",\"rungs\":[";
  for (std::size_t i = 0; i < table.rungs.size(); ++i) {
    const auto& rung = table.rungs[i];
    if (i != 0) out += ',';
    out += "{\"target_ps\":" + json::format_double(rung.target_ps);
    out += ",\"leakage_mw\":" + json::format_double(rung.leakage_mw);
    out += ",\"access_time_ps\":" + json::format_double(rung.access_time_ps);
    out += ",\"dynamic_pj\":" + json::format_double(rung.dynamic_pj);
    out += ",\"assignment\":[";
    for (std::size_t a = 0; a < rung.assignment.size(); ++a) {
      const auto& knobs = rung.assignment[a];
      if (a != 0) out += ',';
      out += "{\"component\":" + json::quote(knobs.component);
      out += ",\"vth_v\":" + json::format_double(knobs.knobs.vth_v);
      out += ",\"tox_a\":" + json::format_double(knobs.knobs.tox_a);
      out += '}';
    }
    out += "]}";
  }
  out += "]}";
  return out;
}

bool parse_table_json(const std::string& text, EvalTable* eval,
                      OptimizeTable* optimize) {
  const auto root = json::parse(text);
  NC_REQUIRE(root->is_object(), "surrogate table line must be an object");
  const std::string kind = require_field(root, "kind")->as_string();
  if (kind == "eval") {
    *eval = parse_eval_table(root);
    return true;
  }
  if (kind == "optimize") {
    *optimize = parse_optimize_table(root);
    return false;
  }
  throw Error(ErrorCategory::kConfig,
              "unknown surrogate table kind '" + kind + "'");
}

std::string segment_path(const std::string& dir,
                         const std::string& fingerprint) {
  return dir + "/nanocache-surrogate-" + fingerprint + ".jsonl";
}

void write_segment(const std::string& dir, const std::string& fingerprint,
                   const std::string& stamp,
                   const std::vector<EvalTable>& evals,
                   const std::vector<OptimizeTable>& optimizes) {
  NC_REQUIRE(!dir.empty(), "surrogate directory must be non-empty");
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  NC_REQUIRE_IO(!ec, "cannot create surrogate directory '" + dir +
                         "': " + ec.message());

  const std::string path = segment_path(dir, fingerprint);
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    NC_REQUIRE_IO(out.good(),
                  "cannot write surrogate segment '" + tmp + "'");
    out << "{\"nanocache_surrogate\":1,\"fingerprint\":"
        << json::quote(fingerprint) << ",\"stamp\":" << json::quote(stamp)
        << "}\n";
    const auto emit = [&out](const std::string& table) {
      out << "{\"checksum\":" << json::quote(fnv1a64_hex(table))
          << ",\"table\":" << json::quote(table) << "}\n";
    };
    for (const auto& t : evals) emit(eval_table_json(t));
    for (const auto& t : optimizes) emit(optimize_table_json(t));
    out.flush();
    NC_REQUIRE_IO(out.good(),
                  "failed writing surrogate segment '" + tmp + "'");
  }
  std::filesystem::rename(tmp, path, ec);
  NC_REQUIRE_IO(!ec, "cannot finalize surrogate segment '" + path +
                         "': " + ec.message());
}

}  // namespace nanocache::surrogate
