// Precomputed answer tables of the surrogate serving tier.
//
// Two table shapes cover the two expensive request kinds:
//
//  * EvalTable — a dense (Vth, Tox) lattice for one (level, size, node)
//    cache, storing every metric an EvalResponse reports (six totals plus
//    delay/leakage/dynamic per component).  Serving bilinearly interpolates
//    inside the containing cell; the certified error bound of an answer is
//    an affine function of the cell's corner spread, `scale * spread +
//    floor`, whose per-metric coefficients the precompute step calibrates
//    against the exact engine on a validation lattice (cell midpoints — the
//    worst case for bilinear interpolation of the smooth, convex response
//    surfaces the paper's Section 3 models produce).
//
//  * OptimizeTable — a ladder of exact optimizer answers over increasing
//    delay targets for one (level, size, node, scheme).  Serving snaps a
//    target T to the largest tabulated rung t_i <= T and returns that
//    rung's exact design: the design is feasible for T (achieved <= t_i <=
//    T) and its leakage over-estimates the true optimum by at most
//    leakage(t_i) - leakage(t_{i+1}), because the optimum at T is bracketed
//    by the two rungs' optima (feasible sets nest as the constraint
//    relaxes).  The bound is rigorous, not sampled; access time and dynamic
//    energy of the served design are exact (bound 0).
//
// Tables serialize to one JSONL segment per library fingerprint,
// mirroring the DiskCache layout (header + checksummed lines, corruption
// drops lines instead of ever serving a wrong answer):
//
//   <dir>/nanocache-surrogate-<fingerprint>.jsonl
//     {"nanocache_surrogate":1,"fingerprint":"<16 hex>","stamp":"..."}
//     {"checksum":"<16 hex>","table":"{...}"}
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "nanocache/types.h"

namespace nanocache::surrogate {

/// Index arithmetic of EvalTable::values: per lattice point, the six
/// totals in this order, then (delay_ps, leakage_mw, dynamic_pj) per
/// component.
enum EvalMetric {
  kAccessTimePs = 0,
  kLeakageMw = 1,
  kLeakageSubMw = 2,
  kLeakageGateMw = 3,
  kDynamicPj = 4,
  kAreaUm2 = 5,
  kTotalsPerPoint = 6,
  kPerComponent = 3,
};

/// Coefficients of one metric's certified bound: `scale * spread + floor`
/// where `spread` is the max-min range of the metric over the containing
/// cell's four corners.
struct BoundModel {
  double scale = 1.0;
  double floor = 0.0;
};

struct EvalTable {
  api::Level level = api::Level::kL1;
  std::uint64_t size_bytes = 0;
  int node_nm = 0;  ///< 0 = the service's configured default technology
  std::string organization;  ///< describe() string echoed into responses
  std::vector<std::string> components;
  std::vector<double> vth_v;  ///< strictly increasing lattice axes
  std::vector<double> tox_a;
  /// Row-major [vth][tox][metric]; metric indexed per EvalMetric then
  /// kPerComponent values per component.
  std::vector<double> values;
  BoundModel bound_leakage{};
  BoundModel bound_access{};
  BoundModel bound_dynamic{};

  std::size_t values_per_point() const {
    return kTotalsPerPoint + kPerComponent * components.size();
  }
  std::size_t point_index(std::size_t iv, std::size_t it) const {
    return (iv * tox_a.size() + it) * values_per_point();
  }
};

/// One exact optimizer answer at one tabulated delay target.
struct OptimizeRung {
  double target_ps = 0.0;
  double leakage_mw = 0.0;
  double access_time_ps = 0.0;
  double dynamic_pj = 0.0;
  std::vector<api::ComponentKnobs> assignment;
};

struct OptimizeTable {
  api::Level level = api::Level::kL1;
  std::uint64_t size_bytes = 0;
  int node_nm = 0;
  api::SchemeId scheme = api::SchemeId::kII;
  /// Strictly increasing in target_ps; every rung feasible.
  std::vector<OptimizeRung> rungs;
};

/// Serialize one table to its canonical single-line JSON (the bytes the
/// segment checksum covers).
std::string eval_table_json(const EvalTable& table);
std::string optimize_table_json(const OptimizeTable& table);

/// Parse a canonical table line back; returns true when it filled `eval`,
/// false when it filled `optimize`.  Throws nanocache::Error(kConfig) on
/// malformed input; the caller (segment loader) treats that as a corrupt
/// line and drops the table.
bool parse_table_json(const std::string& text, EvalTable* eval,
                      OptimizeTable* optimize);

/// Segment file naming, shared by reader and writer.
std::string segment_path(const std::string& dir,
                         const std::string& fingerprint);

/// Write a complete segment (header + one checksummed line per table),
/// creating `dir` as needed.  Throws Error(kIo) when the directory or file
/// cannot be written.
void write_segment(const std::string& dir, const std::string& fingerprint,
                   const std::string& stamp,
                   const std::vector<EvalTable>& evals,
                   const std::vector<OptimizeTable>& optimizes);

}  // namespace nanocache::surrogate
