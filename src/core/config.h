// Experiment configuration shared by benches, examples and tests: the
// defaults the paper's evaluation uses (16 KB L1, megabyte-class L2,
// SPEC-like miss curves, DATE'05 knob grid).
#pragma once

#include <cstdint>
#include <vector>

#include "energy/memory_system.h"
#include "opt/grid.h"
#include "opt/search_mode.h"
#include "sim/missmodel.h"
#include "tech/params.h"

namespace nanocache::core {

/// What the Explorer does when its fitted path degrades — the fit's R^2
/// drops below the configured floor, or an evaluation asks for knobs
/// outside the fitted (Vth, Tox) domain.
enum class DegradationPolicy {
  kFallbackToStructural,  ///< use the structural model and record the event
  kStrict,                ///< throw nanocache::Error(kNumericDomain)
};

struct ExperimentConfig {
  // Cache sizes.
  std::uint64_t l1_size_bytes = 16 * 1024;
  std::uint64_t l2_size_bytes = 1024 * 1024;
  std::vector<std::uint64_t> l1_size_sweep = {4096, 8192, 16384, 32768,
                                              65536};
  std::vector<std::uint64_t> l2_size_sweep = {256 * 1024, 512 * 1024,
                                              1024 * 1024, 2048 * 1024,
                                              4096 * 1024};

  /// "Default Vth and Tox" assigned to the fixed L1 in the Section 5 L2
  /// study: mid-grid values.
  tech::DeviceKnobs default_knobs{0.35, 12.0};

  opt::KnobGrid grid = opt::KnobGrid::paper_default();
  energy::MainMemoryParams memory{};

  /// Assignment search engine for the single-cache optimizers.  Both modes
  /// return byte-identical results (opt/search_mode.h); kExhaustive is the
  /// reference oracle for differential testing and CI smokes.
  opt::SearchMode search_mode = opt::SearchMode::kPruned;

  /// Technology the cache models are built in.  Replace for ablations
  /// (gate-leakage magnitude, temperature, area-scaling on/off, ...).
  tech::TechnologyParams technology = tech::bptm65();

  /// When true, the Explorer's optimizers consume the paper's fitted
  /// closed forms (Eqs. 1-2, fitted per cache) instead of the structural
  /// model — the exact pipeline the paper ran.  Defaults to the structural
  /// model, which is strictly more accurate; the integration tests assert
  /// that the headline claims hold on both paths.
  bool use_fitted_models = false;

  /// Minimum acceptable worst-case R^2 across a cache's eight component
  /// fits.  Below the floor, the closed forms no longer track the
  /// structural model and the fitted path degrades per
  /// `degradation_policy`.  The healthy 65 nm fits score well above this.
  double fitted_r2_floor = 0.80;

  /// Policy for fitted-path degradation events (see DegradationPolicy).
  DegradationPolicy degradation_policy =
      DegradationPolicy::kFallbackToStructural;

  /// AMAT targets for the Figure 2 sweep, seconds (paper x-axis:
  /// 1300-2100 pS).
  std::vector<double> amat_targets_s() const;

  /// Default AMAT constraint for the Section 5 table experiments; sits
  /// where mid-size L2s can run conservative knobs while the extremes are
  /// squeezed (the regime Section 5 explores).
  double amat_target_s = 1.72e-9;

  /// Miss-rate curves standing in for the paper's benchmark suite.
  sim::MissCurves miss_curves = sim::default_miss_curves();

  void validate() const;
};

}  // namespace nanocache::core
