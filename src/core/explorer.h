// High-level exploration API: one entry point per paper experiment.
// Benches and examples call these and print; tests assert on the returned
// structures.  The Explorer caches constructed cache models (they are
// immutable once built).
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "core/config.h"
#include "opt/outcome.h"
#include "opt/schemes.h"
#include "opt/tuple_menu.h"

namespace nanocache::core {

/// One point of a Figure-1 style curve.
struct Fig1Point {
  double swept_value = 0.0;  ///< the free knob's value at this point
  double access_time_s = 0.0;
  double leakage_w = 0.0;
};

struct Fig1Series {
  std::string label;        ///< e.g. "Tox=10A" (Vth swept)
  bool vth_fixed = false;   ///< true when Vth is held and Tox swept
  double fixed_value = 0.0;
  std::vector<Fig1Point> points;
};

/// One row of the Section 4 scheme comparison.  Infeasible cells carry the
/// violated constraint instead of being silently empty.
struct SchemeComparisonRow {
  double delay_target_s = 0.0;
  opt::OptOutcome<opt::SchemeResult> scheme1;
  opt::OptOutcome<opt::SchemeResult> scheme2;
  opt::OptOutcome<opt::SchemeResult> scheme3;
};

/// One recorded fitted->structural degradation (see
/// DegradationPolicy::kFallbackToStructural).
struct DegradationEvent {
  std::string model;   ///< organization description of the affected cache
  std::string reason;  ///< why the fitted path was abandoned
};

/// One row of the Section 5 L2 (or L1) size sweeps.
struct SizeSweepRow {
  std::uint64_t size_bytes = 0;
  bool feasible = false;
  double miss_rate = 0.0;      ///< local miss rate of the swept level
  double amat_s = 0.0;         ///< achieved AMAT
  double level_leakage_w = 0.0;   ///< leakage of the swept level
  double total_leakage_w = 0.0;   ///< both cache levels
  opt::SchemeResult result;    ///< swept level's optimized assignment
  /// Why the row is infeasible (empty when feasible): the violated
  /// constraint, so a sweep never emits an unexplained hole.
  std::string infeasible_reason;
};

/// One Figure-2 series: energy/AMAT frontier for a menu cardinality.
struct Fig2Series {
  opt::MenuSpec spec;
  std::string label;  ///< e.g. "2 Tox + 3 Vth"
  std::vector<opt::SystemDesignPoint> points;
};

class Explorer {
 public:
  explicit Explorer(ExperimentConfig config = {});

  const ExperimentConfig& config() const { return config_; }

  /// FIG1: leakage vs access time for a single cache, holding one knob and
  /// sweeping the other (uniform assignment, as in the paper's Figure 1).
  /// Default curves: Tox fixed at 10/14 A, Vth fixed at 0.2/0.4 V.
  std::vector<Fig1Series> fig1_fixed_knob(std::uint64_t cache_size_bytes,
                                          int sweep_steps = 13) const;

  /// TAB-S4: scheme I/II/III optimal leakage across delay targets.
  std::vector<SchemeComparisonRow> scheme_comparison(
      std::uint64_t cache_size_bytes,
      const std::vector<double>& delay_targets_s) const;

  /// Convenience delay-target ladder spanning the feasible range of the
  /// given cache (from fastest scheme-I point to slowest useful target).
  std::vector<double> delay_ladder(std::uint64_t cache_size_bytes,
                                   int steps = 7) const;

  /// TAB-L2A/L2B: sweep L2 size at fixed default-knob L1; optimize the L2
  /// assignment under `scheme` to meet the AMAT target.
  std::vector<SizeSweepRow> l2_size_sweep(opt::Scheme scheme,
                                          double amat_target_s) const;

  /// The "squeeze" AMAT: a target that forces the reference L2 size
  /// (default: the smallest in the sweep) to run within `headroom_factor`
  /// of its fastest achievable access time, with L1 at default knobs.
  /// Targets near this value put the size sweep in the regime Section 5
  /// studies: small L2s must burn leakage on fast knobs while mid sizes
  /// coast on conservative ones and the largest run out of slack again.
  double l2_squeeze_target_s(double headroom_factor = 1.15,
                             std::uint64_t reference_l2_bytes = 0) const;

  /// TAB-L1: sweep L1 size at fixed L2 (scheme II optimized once); optimize
  /// each L1 under scheme II to meet the AMAT target.
  std::vector<SizeSweepRow> l1_size_sweep(double amat_target_s) const;

  /// EXT-JOINT: joint L1 x L2 sizing — for every (L1 size, L2 size) pair in
  /// the configured sweeps, co-optimize both levels' scheme-II assignments
  /// under the AMAT target and report the minimum total leakage.  The
  /// paper optimizes the levels one at a time (Section 5); this extension
  /// closes the loop and shows where the joint optimum sits.
  struct JointSizingRow {
    std::uint64_t l1_size_bytes = 0;
    std::uint64_t l2_size_bytes = 0;
    bool feasible = false;
    double total_leakage_w = 0.0;
    double amat_s = 0.0;
    opt::SchemeResult l1;
    opt::SchemeResult l2;
  };
  std::vector<JointSizingRow> joint_size_study(double amat_target_s) const;

  /// FIG2: energy/AMAT frontiers for the paper's five menu cardinalities.
  std::vector<Fig2Series> fig2_tuple_frontiers(
      const std::vector<opt::MenuSpec>& specs = default_fig2_specs()) const;

  /// Best energy per menu spec at each AMAT target (the tabular view of
  /// Figure 2).
  std::vector<std::vector<std::optional<opt::SystemDesignPoint>>>
  fig2_tuple_table(const std::vector<opt::MenuSpec>& specs,
                   const std::vector<double>& amat_targets_s) const;

  static std::vector<opt::MenuSpec> default_fig2_specs();
  static std::string menu_label(const opt::MenuSpec& spec);

  /// Model access (lazily constructed, cached).
  const cachemodel::CacheModel& l1_model(std::uint64_t size_bytes) const;
  const cachemodel::CacheModel& l2_model(std::uint64_t size_bytes) const;

  /// Design-space variant: a split-tag organization with explicit
  /// associativity (1/2/4/8, or -1 for fully associative) and bank count.
  /// Variant models always use the structural evaluator — the fitted
  /// closed forms are calibrated on the paper's fixed organization only.
  const cachemodel::CacheModel& variant_model(std::uint64_t size_bytes,
                                              bool is_l2, int associativity,
                                              std::uint32_t banks) const;

  /// The component evaluator the experiments optimize over: structural by
  /// default, or the cached per-cache fitted closed forms when
  /// `config().use_fitted_models` is set.
  ///
  /// The fitted path degrades gracefully per config().degradation_policy:
  /// a fit whose worst R^2 is below config().fitted_r2_floor, or an
  /// evaluation outside the fitted (Vth, Tox) domain, falls back to the
  /// structural model and records a DegradationEvent (or throws
  /// kNumericDomain under the strict policy) — garbage extrapolations
  /// never propagate silently.
  opt::ComponentEvaluator evaluator(const cachemodel::CacheModel& model) const;

  /// Fitted->structural fallbacks recorded so far (deduplicated per cache
  /// and cause).  Empty on the pure structural path.
  const std::vector<DegradationEvent>& degradation_events() const {
    return degradation_log_;
  }
  void clear_degradation_events() {
    degradation_log_.clear();
    degradation_keys_.clear();
  }

  /// Memory-system model for the configured default sizes.
  energy::MemorySystemModel default_system() const;

 private:
  const cachemodel::CacheModel& model(std::uint64_t size_bytes,
                                      bool is_l2) const;

  /// Record one degradation event, deduplicated by `key` so a sweep that
  /// leaves the fitted domain thousands of times logs it once per cause.
  /// Thread-safe: inside run_parallel_sweep the event lands in the task's
  /// buffer; otherwise it goes straight to the shared log under a mutex.
  void record_degradation(const cachemodel::CacheModel& model,
                          const std::string& key,
                          const std::string& reason) const;

  /// Degradation events staged by one sweep task: (dedup key, event),
  /// merged into the shared log after the parallel region.
  using PendingDegradations =
      std::vector<std::pair<std::string, DegradationEvent>>;

  /// Run `body(i)` for i in [0, n) on the parallel pool, giving each task
  /// a private degradation buffer and merging the buffers into the shared
  /// log in task index order afterwards — event content AND order are
  /// identical at every thread count.
  void run_parallel_sweep(std::size_t n,
                          const std::function<void(std::size_t)>& body) const;

  void merge_pending(std::vector<PendingDegradations>&& buffers) const;

  ExperimentConfig config_;
  /// Guards degradation_log_/degradation_keys_ for recordings made outside
  /// a buffered sweep (direct evaluator use by callers).
  mutable std::mutex degradation_mutex_;
  mutable std::vector<DegradationEvent> degradation_log_;
  mutable std::set<std::string> degradation_keys_;
  /// Guards the lazily-populated model/fit caches.  Construction happens
  /// under the lock; returned references stay valid because node-based map
  /// insertion never relocates existing entries.
  mutable std::mutex cache_mutex_;
  mutable std::map<std::pair<bool, std::uint64_t>,
                   std::unique_ptr<cachemodel::CacheModel>>
      models_;
  /// Design-space variants keyed by (is_l2, size, associativity, banks);
  /// same node-based-map reference stability as models_.
  mutable std::map<std::tuple<bool, std::uint64_t, int, std::uint32_t>,
                   std::unique_ptr<cachemodel::CacheModel>>
      variant_models_;
  /// Fitted closed forms per cache model (only populated when
  /// use_fitted_models is set).
  mutable std::map<const cachemodel::CacheModel*,
                   std::unique_ptr<cachemodel::FittedCacheModel>>
      fits_;
};

}  // namespace nanocache::core
