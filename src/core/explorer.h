// High-level exploration API: one entry point per paper experiment.
// Benches and examples call these and print; tests assert on the returned
// structures.  The Explorer caches constructed cache models (they are
// immutable once built).
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/config.h"
#include "opt/schemes.h"
#include "opt/tuple_menu.h"

namespace nanocache::core {

/// One point of a Figure-1 style curve.
struct Fig1Point {
  double swept_value = 0.0;  ///< the free knob's value at this point
  double access_time_s = 0.0;
  double leakage_w = 0.0;
};

struct Fig1Series {
  std::string label;        ///< e.g. "Tox=10A" (Vth swept)
  bool vth_fixed = false;   ///< true when Vth is held and Tox swept
  double fixed_value = 0.0;
  std::vector<Fig1Point> points;
};

/// One row of the Section 4 scheme comparison.
struct SchemeComparisonRow {
  double delay_target_s = 0.0;
  std::optional<opt::SchemeResult> scheme1;
  std::optional<opt::SchemeResult> scheme2;
  std::optional<opt::SchemeResult> scheme3;
};

/// One row of the Section 5 L2 (or L1) size sweeps.
struct SizeSweepRow {
  std::uint64_t size_bytes = 0;
  bool feasible = false;
  double miss_rate = 0.0;      ///< local miss rate of the swept level
  double amat_s = 0.0;         ///< achieved AMAT
  double level_leakage_w = 0.0;   ///< leakage of the swept level
  double total_leakage_w = 0.0;   ///< both cache levels
  opt::SchemeResult result;    ///< swept level's optimized assignment
};

/// One Figure-2 series: energy/AMAT frontier for a menu cardinality.
struct Fig2Series {
  opt::MenuSpec spec;
  std::string label;  ///< e.g. "2 Tox + 3 Vth"
  std::vector<opt::SystemDesignPoint> points;
};

class Explorer {
 public:
  explicit Explorer(ExperimentConfig config = {});

  const ExperimentConfig& config() const { return config_; }

  /// FIG1: leakage vs access time for a single cache, holding one knob and
  /// sweeping the other (uniform assignment, as in the paper's Figure 1).
  /// Default curves: Tox fixed at 10/14 A, Vth fixed at 0.2/0.4 V.
  std::vector<Fig1Series> fig1_fixed_knob(std::uint64_t cache_size_bytes,
                                          int sweep_steps = 13) const;

  /// TAB-S4: scheme I/II/III optimal leakage across delay targets.
  std::vector<SchemeComparisonRow> scheme_comparison(
      std::uint64_t cache_size_bytes,
      const std::vector<double>& delay_targets_s) const;

  /// Convenience delay-target ladder spanning the feasible range of the
  /// given cache (from fastest scheme-I point to slowest useful target).
  std::vector<double> delay_ladder(std::uint64_t cache_size_bytes,
                                   int steps = 7) const;

  /// TAB-L2A/L2B: sweep L2 size at fixed default-knob L1; optimize the L2
  /// assignment under `scheme` to meet the AMAT target.
  std::vector<SizeSweepRow> l2_size_sweep(opt::Scheme scheme,
                                          double amat_target_s) const;

  /// The "squeeze" AMAT: a target that forces the reference L2 size
  /// (default: the smallest in the sweep) to run within `headroom_factor`
  /// of its fastest achievable access time, with L1 at default knobs.
  /// Targets near this value put the size sweep in the regime Section 5
  /// studies: small L2s must burn leakage on fast knobs while mid sizes
  /// coast on conservative ones and the largest run out of slack again.
  double l2_squeeze_target_s(double headroom_factor = 1.15,
                             std::uint64_t reference_l2_bytes = 0) const;

  /// TAB-L1: sweep L1 size at fixed L2 (scheme II optimized once); optimize
  /// each L1 under scheme II to meet the AMAT target.
  std::vector<SizeSweepRow> l1_size_sweep(double amat_target_s) const;

  /// EXT-JOINT: joint L1 x L2 sizing — for every (L1 size, L2 size) pair in
  /// the configured sweeps, co-optimize both levels' scheme-II assignments
  /// under the AMAT target and report the minimum total leakage.  The
  /// paper optimizes the levels one at a time (Section 5); this extension
  /// closes the loop and shows where the joint optimum sits.
  struct JointSizingRow {
    std::uint64_t l1_size_bytes = 0;
    std::uint64_t l2_size_bytes = 0;
    bool feasible = false;
    double total_leakage_w = 0.0;
    double amat_s = 0.0;
    opt::SchemeResult l1;
    opt::SchemeResult l2;
  };
  std::vector<JointSizingRow> joint_size_study(double amat_target_s) const;

  /// FIG2: energy/AMAT frontiers for the paper's five menu cardinalities.
  std::vector<Fig2Series> fig2_tuple_frontiers(
      const std::vector<opt::MenuSpec>& specs = default_fig2_specs()) const;

  /// Best energy per menu spec at each AMAT target (the tabular view of
  /// Figure 2).
  std::vector<std::vector<std::optional<opt::SystemDesignPoint>>>
  fig2_tuple_table(const std::vector<opt::MenuSpec>& specs,
                   const std::vector<double>& amat_targets_s) const;

  static std::vector<opt::MenuSpec> default_fig2_specs();
  static std::string menu_label(const opt::MenuSpec& spec);

  /// Model access (lazily constructed, cached).
  const cachemodel::CacheModel& l1_model(std::uint64_t size_bytes) const;
  const cachemodel::CacheModel& l2_model(std::uint64_t size_bytes) const;

  /// The component evaluator the experiments optimize over: structural by
  /// default, or the cached per-cache fitted closed forms when
  /// `config().use_fitted_models` is set.
  opt::ComponentEvaluator evaluator(const cachemodel::CacheModel& model) const;

  /// Memory-system model for the configured default sizes.
  energy::MemorySystemModel default_system() const;

 private:
  const cachemodel::CacheModel& model(std::uint64_t size_bytes,
                                      bool is_l2) const;

  ExperimentConfig config_;
  mutable std::map<std::pair<bool, std::uint64_t>,
                   std::unique_ptr<cachemodel::CacheModel>>
      models_;
  /// Fitted closed forms per cache model (only populated when
  /// use_fitted_models is set).
  mutable std::map<const cachemodel::CacheModel*,
                   std::unique_ptr<cachemodel::FittedCacheModel>>
      fits_;
};

}  // namespace nanocache::core
