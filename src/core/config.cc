#include "core/config.h"

#include "util/error.h"

namespace nanocache::core {

std::vector<double> ExperimentConfig::amat_targets_s() const {
  std::vector<double> targets;
  for (double ps = 1300.0; ps <= 2100.0 + 1e-9; ps += 100.0) {
    targets.push_back(ps * 1e-12);
  }
  return targets;
}

void ExperimentConfig::validate() const {
  NC_REQUIRE(l1_size_bytes >= 1024, "L1 too small");
  NC_REQUIRE(l2_size_bytes > l1_size_bytes, "L2 must exceed L1");
  NC_REQUIRE(!l1_size_sweep.empty() && !l2_size_sweep.empty(),
             "size sweeps must be non-empty");
  NC_REQUIRE(amat_target_s > 0.0, "AMAT target must be positive");
  grid.validate();
  technology.validate();
}

}  // namespace nanocache::core
