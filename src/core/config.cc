#include "core/config.h"

#include "util/error.h"

namespace nanocache::core {

std::vector<double> ExperimentConfig::amat_targets_s() const {
  std::vector<double> targets;
  for (double ps = 1300.0; ps <= 2100.0 + 1e-9; ps += 100.0) {
    targets.push_back(ps * 1e-12);
  }
  return targets;
}

void ExperimentConfig::validate() const {
  NC_REQUIRE(l1_size_bytes >= 1024, "L1 too small");
  NC_REQUIRE(l2_size_bytes > l1_size_bytes, "L2 must exceed L1");
  NC_REQUIRE(!l1_size_sweep.empty() && !l2_size_sweep.empty(),
             "size sweeps must be non-empty");
  NC_REQUIRE(amat_target_s > 0.0, "AMAT target must be positive");
  NC_REQUIRE(fitted_r2_floor >= 0.0 && fitted_r2_floor <= 1.0,
             "fitted R^2 floor must be in [0,1]");
  grid.validate();
  technology.validate();
}

}  // namespace nanocache::core
