#include "core/explorer.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/error.h"
#include "util/numeric_guard.h"

namespace nanocache::core {

using cachemodel::CacheModel;
using cachemodel::l1_organization;
using cachemodel::l2_organization;
using opt::Scheme;

Explorer::Explorer(ExperimentConfig config) : config_(std::move(config)) {
  config_.validate();
}

const CacheModel& Explorer::model(std::uint64_t size_bytes, bool is_l2) const {
  const auto key = std::make_pair(is_l2, size_bytes);
  auto it = models_.find(key);
  if (it == models_.end()) {
    tech::DeviceModel dev(config_.technology);
    auto org = is_l2 ? l2_organization(size_bytes, dev)
                     : l1_organization(size_bytes, dev);
    it = models_
             .emplace(key, std::make_unique<CacheModel>(
                               org, tech::DeviceModel(dev.params())))
             .first;
  }
  return *it->second;
}

void Explorer::record_degradation(const cachemodel::CacheModel& model,
                                  const std::string& key,
                                  const std::string& reason) const {
  std::ostringstream k;
  k << &model << ':' << key;
  if (!degradation_keys_.insert(k.str()).second) return;
  degradation_log_.push_back(
      DegradationEvent{model.organization().describe(), reason});
}

opt::ComponentEvaluator Explorer::evaluator(
    const cachemodel::CacheModel& model) const {
  if (!config_.use_fitted_models) {
    return opt::structural_evaluator(model);
  }
  auto it = fits_.find(&model);
  if (it == fits_.end()) {
    it = fits_
             .emplace(&model,
                      std::make_unique<cachemodel::FittedCacheModel>(
                          cachemodel::FittedCacheModel::fit(model)))
             .first;
  }
  const cachemodel::FittedCacheModel& fits = *it->second;
  const bool strict =
      config_.degradation_policy == DegradationPolicy::kStrict;

  // Whole-model degradation: a poorly-conditioned fit is unusable at every
  // knob point, so the cache drops to the structural path outright.
  if (fits.worst_r2() < config_.fitted_r2_floor) {
    std::ostringstream os;
    os << "fitted closed forms rejected: worst R^2 " << fits.worst_r2()
       << " below floor " << config_.fitted_r2_floor;
    if (strict) {
      throw Error(ErrorCategory::kNumericDomain,
                  os.str() + " (strict degradation policy)");
    }
    record_degradation(model, "r2-floor", os.str() + "; structural model used");
    return opt::structural_evaluator(model);
  }

  // Per-evaluation degradation: knobs outside the characterization
  // rectangle would extrapolate the exponentials — answer from the
  // structural model instead (or throw under the strict policy).
  const cachemodel::CacheModel* structural = &model;
  const cachemodel::FittedCacheModel* f = &fits;
  return [this, structural, f, strict](cachemodel::ComponentKind kind,
                                       const tech::DeviceKnobs& knobs) {
    num::ensure_finite(knobs.vth_v, "evaluator knob Vth");
    num::ensure_finite(knobs.tox_a, "evaluator knob Tox");
    if (!f->in_domain(knobs)) {
      std::ostringstream os;
      os << "knobs outside fitted domain (Vth=" << knobs.vth_v
         << " V, Tox=" << knobs.tox_a << " A, domain "
         << f->domain().describe() << ")";
      if (strict) {
        throw Error(ErrorCategory::kNumericDomain,
                    os.str() + " (strict degradation policy)");
      }
      record_degradation(*structural, "out-of-domain",
                         os.str() + "; structural value used");
      return structural->component(kind, knobs);
    }
    cachemodel::ComponentMetrics m = structural->component(kind, knobs);
    m.leakage_w = f->component_leakage_w(kind, knobs);
    m.delay_s = f->component_delay_s(kind, knobs);
    return m;
  };
}

const CacheModel& Explorer::l1_model(std::uint64_t size_bytes) const {
  return model(size_bytes, /*is_l2=*/false);
}

const CacheModel& Explorer::l2_model(std::uint64_t size_bytes) const {
  return model(size_bytes, /*is_l2=*/true);
}

energy::MemorySystemModel Explorer::default_system() const {
  energy::MissRates miss;
  miss.l1 = config_.miss_curves.l1(config_.l1_size_bytes);
  miss.l2_local = config_.miss_curves.l2(config_.l2_size_bytes);
  return energy::MemorySystemModel(l1_model(config_.l1_size_bytes),
                                   l2_model(config_.l2_size_bytes), miss,
                                   config_.memory);
}

// --- FIG1 -------------------------------------------------------------------

std::vector<Fig1Series> Explorer::fig1_fixed_knob(
    std::uint64_t cache_size_bytes, int sweep_steps) const {
  NC_REQUIRE(sweep_steps >= 2, "sweep needs >= 2 steps");
  const auto& m = l1_model(cache_size_bytes);
  const auto& knobs = m.device().params().knobs;

  std::vector<Fig1Series> series;
  auto sweep = [&](bool vth_fixed, double fixed_value) {
    Fig1Series s;
    s.vth_fixed = vth_fixed;
    s.fixed_value = fixed_value;
    std::ostringstream label;
    if (vth_fixed) {
      label << "Vth=" << static_cast<int>(fixed_value * 1000 + 0.5) << "mV";
    } else {
      label << "Tox=" << static_cast<int>(fixed_value + 0.5) << "A";
    }
    s.label = label.str();
    for (int i = 0; i < sweep_steps; ++i) {
      const double t = static_cast<double>(i) / (sweep_steps - 1);
      tech::DeviceKnobs k;
      if (vth_fixed) {
        k.vth_v = fixed_value;
        k.tox_a = knobs.tox_min_a + t * (knobs.tox_max_a - knobs.tox_min_a);
      } else {
        k.tox_a = fixed_value;
        k.vth_v = knobs.vth_min_v + t * (knobs.vth_max_v - knobs.vth_min_v);
      }
      const auto r = m.evaluate_uniform(k);
      s.points.push_back(Fig1Point{vth_fixed ? k.tox_a : k.vth_v,
                                   r.access_time_s, r.leakage_w});
    }
    return s;
  };

  // The paper's four curves: Tox fixed at the range ends (Vth swept), and
  // Vth fixed at 0.2 / 0.4 V (Tox swept).
  series.push_back(sweep(/*vth_fixed=*/false, knobs.tox_min_a));
  series.push_back(sweep(/*vth_fixed=*/false, knobs.tox_max_a));
  series.push_back(sweep(/*vth_fixed=*/true, 0.2));
  series.push_back(sweep(/*vth_fixed=*/true, 0.4));
  return series;
}

// --- TAB-S4 -----------------------------------------------------------------

std::vector<SchemeComparisonRow> Explorer::scheme_comparison(
    std::uint64_t cache_size_bytes,
    const std::vector<double>& delay_targets_s) const {
  const auto& m = l1_model(cache_size_bytes);
  const auto eval = evaluator(m);
  std::vector<SchemeComparisonRow> rows;
  for (double target : delay_targets_s) {
    SchemeComparisonRow row;
    row.delay_target_s = target;
    row.scheme1 = opt::optimize_single_cache(eval, config_.grid,
                                             Scheme::kPerComponent, target);
    row.scheme2 = opt::optimize_single_cache(eval, config_.grid,
                                             Scheme::kArrayPeriphery, target);
    row.scheme3 = opt::optimize_single_cache(eval, config_.grid,
                                             Scheme::kUniform, target);
    rows.push_back(std::move(row));
  }
  return rows;
}

std::vector<double> Explorer::delay_ladder(std::uint64_t cache_size_bytes,
                                           int steps) const {
  NC_REQUIRE(steps >= 2, "ladder needs >= 2 steps");
  const auto& m = l1_model(cache_size_bytes);
  const auto eval = evaluator(m);
  const double lo =
      opt::min_access_time(eval, config_.grid, Scheme::kUniform) * 1.001;
  const auto& knobs = m.device().params().knobs;
  const double hi =
      m.evaluate_uniform(tech::DeviceKnobs{knobs.vth_max_v, knobs.tox_max_a})
          .access_time_s;
  std::vector<double> ladder(static_cast<std::size_t>(steps));
  for (int i = 0; i < steps; ++i) {
    ladder[static_cast<std::size_t>(i)] =
        lo + (hi - lo) * static_cast<double>(i) / (steps - 1);
  }
  return ladder;
}

// --- Section 5 size sweeps ----------------------------------------------------

double Explorer::l2_squeeze_target_s(double headroom_factor,
                                     std::uint64_t reference_l2_bytes) const {
  NC_REQUIRE(headroom_factor >= 1.0, "headroom factor must be >= 1");
  if (reference_l2_bytes == 0) {
    reference_l2_bytes = *std::min_element(config_.l2_size_sweep.begin(),
                                           config_.l2_size_sweep.end());
  }
  const auto& l1 = l1_model(config_.l1_size_bytes);
  const double t_l1 =
      l1.evaluate_uniform(config_.default_knobs).access_time_s;
  const double ml1 = config_.miss_curves.l1(config_.l1_size_bytes);
  const double ml2 = config_.miss_curves.l2(reference_l2_bytes);
  const auto& l2 = l2_model(reference_l2_bytes);
  const double t_l2_fast = opt::min_access_time(evaluator(l2), config_.grid,
                                                opt::Scheme::kUniform);
  return t_l1 + ml1 * (headroom_factor * t_l2_fast +
                       ml2 * config_.memory.access_latency_s);
}

std::vector<SizeSweepRow> Explorer::l2_size_sweep(Scheme scheme,
                                                  double amat_target_s) const {
  const auto& l1 = l1_model(config_.l1_size_bytes);
  const auto l1_metrics = l1.evaluate_uniform(config_.default_knobs);
  const double ml1 = config_.miss_curves.l1(config_.l1_size_bytes);
  const double tmem = config_.memory.access_latency_s;

  std::vector<SizeSweepRow> rows;
  for (std::uint64_t size : config_.l2_size_sweep) {
    SizeSweepRow row;
    row.size_bytes = size;
    const double ml2 = config_.miss_curves.l2(size);
    row.miss_rate = ml2;
    // AMAT = tL1 + mL1*(tL2 + mL2*tmem)  =>  tL2 budget.
    const double budget =
        (amat_target_s - l1_metrics.access_time_s) / ml1 - ml2 * tmem;
    if (budget <= 0.0) {
      row.infeasible_reason =
          "AMAT target leaves no L2 time budget at this size";
      rows.push_back(row);
      continue;
    }
    const auto& l2 = l2_model(size);
    const auto eval = evaluator(l2);
    auto best = opt::optimize_single_cache(eval, config_.grid, scheme, budget);
    if (!best) {
      row.infeasible_reason = best.why().describe();
      rows.push_back(row);
      continue;
    }
    row.feasible = true;
    row.result = *best;
    row.level_leakage_w = best->leakage_w;
    row.total_leakage_w = best->leakage_w + l1_metrics.leakage_w;
    row.amat_s = l1_metrics.access_time_s +
                 ml1 * (best->access_time_s + ml2 * tmem);
    rows.push_back(row);
  }
  return rows;
}

std::vector<SizeSweepRow> Explorer::l1_size_sweep(double amat_target_s) const {
  // Fix the L2: scheme-II optimum for the default configuration.
  const double tmem = config_.memory.access_latency_s;
  const double ml2 = config_.miss_curves.l2(config_.l2_size_bytes);
  const auto& l2 = l2_model(config_.l2_size_bytes);
  const auto l2_eval = evaluator(l2);
  const double ml1_default = config_.miss_curves.l1(config_.l1_size_bytes);
  const auto& l1_default = l1_model(config_.l1_size_bytes);
  const double l1_time_default =
      l1_default.evaluate_uniform(config_.default_knobs).access_time_s;
  const double l2_budget =
      (amat_target_s - l1_time_default) / ml1_default - ml2 * tmem;
  auto l2_fixed = opt::optimize_single_cache(
      l2_eval, config_.grid, Scheme::kArrayPeriphery, l2_budget);
  NC_REQUIRE_FEASIBLE(l2_fixed.has_value(),
                      "AMAT target infeasible for the fixed L2 configuration: " +
                          (l2_fixed ? std::string() : l2_fixed.why().describe()));

  std::vector<SizeSweepRow> rows;
  for (std::uint64_t size : config_.l1_size_sweep) {
    SizeSweepRow row;
    row.size_bytes = size;
    const double ml1 = config_.miss_curves.l1(size);
    row.miss_rate = ml1;
    const double budget =
        amat_target_s - ml1 * (l2_fixed->access_time_s + ml2 * tmem);
    if (budget <= 0.0) {
      row.infeasible_reason =
          "AMAT target leaves no L1 time budget at this size";
      rows.push_back(row);
      continue;
    }
    const auto& l1 = l1_model(size);
    const auto eval = evaluator(l1);
    auto best = opt::optimize_single_cache(eval, config_.grid,
                                           Scheme::kArrayPeriphery, budget);
    if (!best) {
      row.infeasible_reason = best.why().describe();
      rows.push_back(row);
      continue;
    }
    row.feasible = true;
    row.result = *best;
    row.level_leakage_w = best->leakage_w;
    row.total_leakage_w = best->leakage_w + l2_fixed->leakage_w;
    row.amat_s = best->access_time_s +
                 ml1 * (l2_fixed->access_time_s + ml2 * tmem);
    rows.push_back(row);
  }
  return rows;
}

std::vector<Explorer::JointSizingRow> Explorer::joint_size_study(
    double amat_target_s) const {
  NC_REQUIRE(amat_target_s > 0.0, "AMAT target must be positive");
  const double tmem = config_.memory.access_latency_s;

  std::vector<JointSizingRow> rows;
  for (std::uint64_t l1_size : config_.l1_size_sweep) {
    const double ml1 = config_.miss_curves.l1(l1_size);
    const auto l1_front = opt::scheme_frontier(
        evaluator(l1_model(l1_size)), config_.grid,
        opt::Scheme::kArrayPeriphery);
    for (std::uint64_t l2_size : config_.l2_size_sweep) {
      JointSizingRow row;
      row.l1_size_bytes = l1_size;
      row.l2_size_bytes = l2_size;
      const double ml2 = config_.miss_curves.l2(l2_size);
      const auto l2_front = opt::scheme_frontier(
          evaluator(l2_model(l2_size)), config_.grid,
          opt::Scheme::kArrayPeriphery);

      // Both fronts are sorted by delay ascending / leakage descending.
      // Sweep L1 points; for each, the L2 budget follows from the AMAT
      // identity, and the best L2 choice is the slowest front point that
      // still fits (leakage falls with delay along the front).
      for (const auto& p1 : l1_front) {
        const double l2_budget =
            (amat_target_s - p1.access_time_s) / ml1 - ml2 * tmem;
        if (l2_budget <= 0.0) continue;
        const opt::SchemeResult* best_l2 = nullptr;
        for (const auto& p2 : l2_front) {
          if (p2.access_time_s > l2_budget) break;
          best_l2 = &p2;  // later points are slower and less leaky
        }
        if (best_l2 == nullptr) continue;
        const double total = p1.leakage_w + best_l2->leakage_w;
        if (!row.feasible || total < row.total_leakage_w) {
          row.feasible = true;
          row.total_leakage_w = total;
          row.l1 = p1;
          row.l2 = *best_l2;
          row.amat_s = p1.access_time_s +
                       ml1 * (best_l2->access_time_s + ml2 * tmem);
        }
      }
      rows.push_back(std::move(row));
    }
  }
  return rows;
}

// --- FIG2 -------------------------------------------------------------------

std::vector<opt::MenuSpec> Explorer::default_fig2_specs() {
  return {{2, 2}, {2, 3}, {3, 2}, {2, 1}, {1, 2}};
}

std::string Explorer::menu_label(const opt::MenuSpec& spec) {
  std::ostringstream os;
  os << spec.num_tox << " Tox + " << spec.num_vth << " Vth";
  return os.str();
}

std::vector<Fig2Series> Explorer::fig2_tuple_frontiers(
    const std::vector<opt::MenuSpec>& specs) const {
  const auto system = default_system();
  const opt::TupleMenuSolver solver(system, config_.grid);
  std::vector<Fig2Series> out;
  for (const auto& spec : specs) {
    Fig2Series s;
    s.spec = spec;
    s.label = menu_label(spec);
    s.points = solver.frontier(spec);
    out.push_back(std::move(s));
  }
  return out;
}

std::vector<std::vector<std::optional<opt::SystemDesignPoint>>>
Explorer::fig2_tuple_table(const std::vector<opt::MenuSpec>& specs,
                           const std::vector<double>& amat_targets_s) const {
  const auto system = default_system();
  const opt::TupleMenuSolver solver(system, config_.grid);
  std::vector<std::vector<std::optional<opt::SystemDesignPoint>>> table;
  for (const auto& spec : specs) {
    std::vector<std::optional<opt::SystemDesignPoint>> row;
    for (double target : amat_targets_s) {
      row.push_back(solver.best_at(spec, target));
    }
    table.push_back(std::move(row));
  }
  return table;
}

}  // namespace nanocache::core
