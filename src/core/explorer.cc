#include "core/explorer.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/error.h"
#include "util/metrics.h"
#include "util/numeric_guard.h"
#include "util/parallel.h"
#include "util/trace_span.h"

namespace nanocache::core {

using cachemodel::CacheModel;
using cachemodel::extended_organization;
using cachemodel::l1_organization;
using cachemodel::l2_organization;
using opt::Scheme;

namespace {

/// Same type as Explorer::PendingDegradations (a private alias).
using PendingVec = std::vector<std::pair<std::string, DegradationEvent>>;

/// Active degradation buffer of the current sweep task (if any).  Workers
/// run exactly one task body at a time and nested parallel calls stay on
/// the same thread, so a thread-local pointer is task-scoped.
thread_local PendingVec* tl_degradation_buffer = nullptr;

/// RAII installer for the task-local degradation buffer.
class DegradationBufferScope {
 public:
  explicit DegradationBufferScope(PendingVec* buffer)
      : previous_(tl_degradation_buffer) {
    tl_degradation_buffer = buffer;
  }
  ~DegradationBufferScope() { tl_degradation_buffer = previous_; }
  DegradationBufferScope(const DegradationBufferScope&) = delete;
  DegradationBufferScope& operator=(const DegradationBufferScope&) = delete;

 private:
  PendingVec* previous_;
};
}  // namespace

Explorer::Explorer(ExperimentConfig config) : config_(std::move(config)) {
  config_.validate();
}

const CacheModel& Explorer::model(std::uint64_t size_bytes, bool is_l2) const {
  const auto key = std::make_pair(is_l2, size_bytes);
  std::lock_guard<std::mutex> lock(cache_mutex_);
  auto it = models_.find(key);
  if (it == models_.end()) {
    tech::DeviceModel dev(config_.technology);
    auto org = is_l2 ? l2_organization(size_bytes, dev)
                     : l1_organization(size_bytes, dev);
    it = models_
             .emplace(key, std::make_unique<CacheModel>(
                               org, tech::DeviceModel(dev.params())))
             .first;
  }
  return *it->second;
}

const CacheModel& Explorer::variant_model(std::uint64_t size_bytes, bool is_l2,
                                          int associativity,
                                          std::uint32_t banks) const {
  const auto key = std::make_tuple(is_l2, size_bytes, associativity, banks);
  std::lock_guard<std::mutex> lock(cache_mutex_);
  auto it = variant_models_.find(key);
  if (it == variant_models_.end()) {
    tech::DeviceModel dev(config_.technology);
    auto org =
        extended_organization(size_bytes, is_l2, associativity, banks, dev);
    it = variant_models_
             .emplace(key, std::make_unique<CacheModel>(
                               org, tech::DeviceModel(dev.params())))
             .first;
  }
  return *it->second;
}

void Explorer::record_degradation(const cachemodel::CacheModel& model,
                                  const std::string& key,
                                  const std::string& reason) const {
  // The dedup key is derived from the cache organization (not the model's
  // address) so logs and CSV exports are reproducible across processes.
  const std::string dedup_key = model.organization().describe() + ':' + key;
  static auto& degradations =
      metrics::Registry::instance().counter("explorer.degradation_events");
  degradations.add(1);
  DegradationEvent event{model.organization().describe(), reason};
  if (tl_degradation_buffer != nullptr) {
    tl_degradation_buffer->emplace_back(dedup_key, std::move(event));
    return;
  }
  std::lock_guard<std::mutex> lock(degradation_mutex_);
  if (!degradation_keys_.insert(dedup_key).second) return;
  degradation_log_.push_back(std::move(event));
}

void Explorer::merge_pending(
    std::vector<PendingDegradations>&& buffers) const {
  std::lock_guard<std::mutex> lock(degradation_mutex_);
  for (auto& buffer : buffers) {
    for (auto& [key, event] : buffer) {
      if (!degradation_keys_.insert(key).second) continue;
      degradation_log_.push_back(std::move(event));
    }
  }
}

void Explorer::run_parallel_sweep(
    std::size_t n, const std::function<void(std::size_t)>& body) const {
  static auto& sweep_tasks =
      metrics::Registry::instance().counter("explorer.sweep_tasks");
  sweep_tasks.add(n);
  std::vector<PendingDegradations> buffers(n);
  try {
    par::parallel_for(n, [&](std::size_t i) {
      DegradationBufferScope scope(&buffers[i]);
      body(i);
    });
  } catch (...) {
    merge_pending(std::move(buffers));  // keep events from completed tasks
    throw;
  }
  merge_pending(std::move(buffers));
}

opt::ComponentEvaluator Explorer::evaluator(
    const cachemodel::CacheModel& model) const {
  if (!config_.use_fitted_models) {
    return opt::structural_evaluator(model);
  }
  const cachemodel::FittedCacheModel* fitted = nullptr;
  {
    std::lock_guard<std::mutex> lock(cache_mutex_);
    auto it = fits_.find(&model);
    if (it == fits_.end()) {
      it = fits_
               .emplace(&model,
                        std::make_unique<cachemodel::FittedCacheModel>(
                            cachemodel::FittedCacheModel::fit(model)))
               .first;
    }
    fitted = it->second.get();
  }
  const cachemodel::FittedCacheModel& fits = *fitted;
  const bool strict =
      config_.degradation_policy == DegradationPolicy::kStrict;

  // Whole-model degradation: a poorly-conditioned fit is unusable at every
  // knob point, so the cache drops to the structural path outright.
  if (fits.worst_r2() < config_.fitted_r2_floor) {
    std::ostringstream os;
    os << "fitted closed forms rejected: worst R^2 " << fits.worst_r2()
       << " below floor " << config_.fitted_r2_floor;
    if (strict) {
      throw Error(ErrorCategory::kNumericDomain,
                  os.str() + " (strict degradation policy)");
    }
    record_degradation(model, "r2-floor", os.str() + "; structural model used");
    return opt::structural_evaluator(model);
  }

  // Per-evaluation degradation: knobs outside the characterization
  // rectangle would extrapolate the exponentials — answer from the
  // structural model instead (or throw under the strict policy).  The
  // returned callable is invoked concurrently from sweep workers:
  // evaluations are pure const and record_degradation is thread-safe.
  const cachemodel::CacheModel* structural = &model;
  const cachemodel::FittedCacheModel* f = &fits;
  return [this, structural, f, strict](cachemodel::ComponentKind kind,
                                       const tech::DeviceKnobs& knobs) {
    num::ensure_finite(knobs.vth_v, "evaluator knob Vth");
    num::ensure_finite(knobs.tox_a, "evaluator knob Tox");
    if (!f->in_domain(knobs)) {
      std::ostringstream os;
      os << "knobs outside fitted domain (Vth=" << knobs.vth_v
         << " V, Tox=" << knobs.tox_a << " A, domain "
         << f->domain().describe() << ")";
      if (strict) {
        throw Error(ErrorCategory::kNumericDomain,
                    os.str() + " (strict degradation policy)");
      }
      record_degradation(*structural, "out-of-domain",
                         os.str() + "; structural value used");
      return structural->component(kind, knobs);
    }
    cachemodel::ComponentMetrics m = structural->component(kind, knobs);
    m.leakage_w = f->component_leakage_w(kind, knobs);
    m.delay_s = f->component_delay_s(kind, knobs);
    return m;
  };
}

const CacheModel& Explorer::l1_model(std::uint64_t size_bytes) const {
  return model(size_bytes, /*is_l2=*/false);
}

const CacheModel& Explorer::l2_model(std::uint64_t size_bytes) const {
  return model(size_bytes, /*is_l2=*/true);
}

energy::MemorySystemModel Explorer::default_system() const {
  energy::MissRates miss;
  miss.l1 = config_.miss_curves.l1(config_.l1_size_bytes);
  miss.l2_local = config_.miss_curves.l2(config_.l2_size_bytes);
  return energy::MemorySystemModel(l1_model(config_.l1_size_bytes),
                                   l2_model(config_.l2_size_bytes), miss,
                                   config_.memory);
}

// --- FIG1 -------------------------------------------------------------------

std::vector<Fig1Series> Explorer::fig1_fixed_knob(
    std::uint64_t cache_size_bytes, int sweep_steps) const {
  metrics::TraceSpan span("explorer.fig1_fixed_knob");
  NC_REQUIRE(sweep_steps >= 2, "sweep needs >= 2 steps");
  const auto& m = l1_model(cache_size_bytes);
  const auto& knobs = m.device().params().knobs;

  auto sweep = [&](bool vth_fixed, double fixed_value) {
    Fig1Series s;
    s.vth_fixed = vth_fixed;
    s.fixed_value = fixed_value;
    std::ostringstream label;
    if (vth_fixed) {
      label << "Vth=" << static_cast<int>(fixed_value * 1000 + 0.5) << "mV";
    } else {
      label << "Tox=" << static_cast<int>(fixed_value + 0.5) << "A";
    }
    s.label = label.str();
    for (int i = 0; i < sweep_steps; ++i) {
      const double t = static_cast<double>(i) / (sweep_steps - 1);
      tech::DeviceKnobs k;
      if (vth_fixed) {
        k.vth_v = fixed_value;
        k.tox_a = knobs.tox_min_a + t * (knobs.tox_max_a - knobs.tox_min_a);
      } else {
        k.tox_a = fixed_value;
        k.vth_v = knobs.vth_min_v + t * (knobs.vth_max_v - knobs.vth_min_v);
      }
      const auto r = m.evaluate_uniform(k);
      s.points.push_back(Fig1Point{vth_fixed ? k.tox_a : k.vth_v,
                                   r.access_time_s, r.leakage_w});
    }
    return s;
  };

  // The paper's four curves: Tox fixed at the range ends (Vth swept), and
  // Vth fixed at 0.2 / 0.4 V (Tox swept).
  const std::pair<bool, double> curves[] = {{false, knobs.tox_min_a},
                                            {false, knobs.tox_max_a},
                                            {true, 0.2},
                                            {true, 0.4}};
  std::vector<Fig1Series> series(std::size(curves));
  run_parallel_sweep(series.size(), [&](std::size_t i) {
    series[i] = sweep(curves[i].first, curves[i].second);
  });
  return series;
}

// --- TAB-S4 -----------------------------------------------------------------

std::vector<SchemeComparisonRow> Explorer::scheme_comparison(
    std::uint64_t cache_size_bytes,
    const std::vector<double>& delay_targets_s) const {
  metrics::TraceSpan span("explorer.scheme_comparison");
  const auto& m = l1_model(cache_size_bytes);
  // Build the evaluator once, serially: fitting (and any r2-floor event)
  // happens before the fan-out.
  const auto eval = evaluator(m);
  std::vector<SchemeComparisonRow> rows(delay_targets_s.size());
  run_parallel_sweep(rows.size(), [&](std::size_t i) {
    const double target = delay_targets_s[i];
    SchemeComparisonRow row;
    row.delay_target_s = target;
    row.scheme1 =
        opt::optimize_single_cache(eval, config_.grid, Scheme::kPerComponent,
                                   target, config_.search_mode);
    row.scheme2 =
        opt::optimize_single_cache(eval, config_.grid, Scheme::kArrayPeriphery,
                                   target, config_.search_mode);
    row.scheme3 = opt::optimize_single_cache(
        eval, config_.grid, Scheme::kUniform, target, config_.search_mode);
    rows[i] = std::move(row);
  });
  return rows;
}

std::vector<double> Explorer::delay_ladder(std::uint64_t cache_size_bytes,
                                           int steps) const {
  NC_REQUIRE(steps >= 2, "ladder needs >= 2 steps");
  const auto& m = l1_model(cache_size_bytes);
  // Serial on purpose: this is a handful of evaluations, and direct
  // (unbuffered) degradation recording stays in deterministic order.
  par::SerialRegionGuard serial;
  const auto eval = evaluator(m);
  const double lo =
      opt::min_access_time(eval, config_.grid, Scheme::kUniform) * 1.001;
  const auto& knobs = m.device().params().knobs;
  const double hi =
      m.evaluate_uniform(tech::DeviceKnobs{knobs.vth_max_v, knobs.tox_max_a})
          .access_time_s;
  std::vector<double> ladder(static_cast<std::size_t>(steps));
  for (int i = 0; i < steps; ++i) {
    ladder[static_cast<std::size_t>(i)] =
        lo + (hi - lo) * static_cast<double>(i) / (steps - 1);
  }
  return ladder;
}

// --- Section 5 size sweeps ----------------------------------------------------

double Explorer::l2_squeeze_target_s(double headroom_factor,
                                     std::uint64_t reference_l2_bytes) const {
  NC_REQUIRE(headroom_factor >= 1.0, "headroom factor must be >= 1");
  if (reference_l2_bytes == 0) {
    reference_l2_bytes = *std::min_element(config_.l2_size_sweep.begin(),
                                           config_.l2_size_sweep.end());
  }
  // Serial on purpose — see delay_ladder.
  par::SerialRegionGuard serial;
  const auto& l1 = l1_model(config_.l1_size_bytes);
  const double t_l1 =
      l1.evaluate_uniform(config_.default_knobs).access_time_s;
  const double ml1 = config_.miss_curves.l1(config_.l1_size_bytes);
  const double ml2 = config_.miss_curves.l2(reference_l2_bytes);
  const auto& l2 = l2_model(reference_l2_bytes);
  const double t_l2_fast = opt::min_access_time(evaluator(l2), config_.grid,
                                                opt::Scheme::kUniform);
  return t_l1 + ml1 * (headroom_factor * t_l2_fast +
                       ml2 * config_.memory.access_latency_s);
}

std::vector<SizeSweepRow> Explorer::l2_size_sweep(Scheme scheme,
                                                  double amat_target_s) const {
  metrics::TraceSpan span("explorer.l2_size_sweep");
  const auto& l1 = l1_model(config_.l1_size_bytes);
  const auto l1_metrics = l1.evaluate_uniform(config_.default_knobs);
  const double ml1 = config_.miss_curves.l1(config_.l1_size_bytes);
  const double tmem = config_.memory.access_latency_s;

  // Pre-warm the per-size models and evaluators serially: construction and
  // fitting mutate the caches once, after which workers only read.
  const auto& sizes = config_.l2_size_sweep;
  std::vector<opt::ComponentEvaluator> evals;
  evals.reserve(sizes.size());
  for (std::uint64_t size : sizes) evals.push_back(evaluator(l2_model(size)));

  std::vector<SizeSweepRow> rows(sizes.size());
  run_parallel_sweep(rows.size(), [&](std::size_t i) {
    const std::uint64_t size = sizes[i];
    SizeSweepRow row;
    row.size_bytes = size;
    const double ml2 = config_.miss_curves.l2(size);
    row.miss_rate = ml2;
    // AMAT = tL1 + mL1*(tL2 + mL2*tmem)  =>  tL2 budget.
    const double budget =
        (amat_target_s - l1_metrics.access_time_s) / ml1 - ml2 * tmem;
    if (budget <= 0.0) {
      row.infeasible_reason =
          "AMAT target leaves no L2 time budget at this size";
      rows[i] = std::move(row);
      return;
    }
    auto best = opt::optimize_single_cache(evals[i], config_.grid, scheme,
                                           budget, config_.search_mode);
    if (!best) {
      row.infeasible_reason = best.why().describe();
      rows[i] = std::move(row);
      return;
    }
    row.feasible = true;
    row.result = *best;
    row.level_leakage_w = best->leakage_w;
    row.total_leakage_w = best->leakage_w + l1_metrics.leakage_w;
    row.amat_s = l1_metrics.access_time_s +
                 ml1 * (best->access_time_s + ml2 * tmem);
    rows[i] = std::move(row);
  });
  return rows;
}

std::vector<SizeSweepRow> Explorer::l1_size_sweep(double amat_target_s) const {
  metrics::TraceSpan span("explorer.l1_size_sweep");
  // Fix the L2: scheme-II optimum for the default configuration.
  const double tmem = config_.memory.access_latency_s;
  const double ml2 = config_.miss_curves.l2(config_.l2_size_bytes);
  const auto& l2 = l2_model(config_.l2_size_bytes);
  const auto l2_eval = evaluator(l2);
  const double ml1_default = config_.miss_curves.l1(config_.l1_size_bytes);
  const auto& l1_default = l1_model(config_.l1_size_bytes);
  const double l1_time_default =
      l1_default.evaluate_uniform(config_.default_knobs).access_time_s;
  const double l2_budget =
      (amat_target_s - l1_time_default) / ml1_default - ml2 * tmem;
  auto l2_fixed =
      opt::optimize_single_cache(l2_eval, config_.grid,
                                 Scheme::kArrayPeriphery, l2_budget,
                                 config_.search_mode);
  NC_REQUIRE_FEASIBLE(l2_fixed.has_value(),
                      "AMAT target infeasible for the fixed L2 configuration: " +
                          (l2_fixed ? std::string() : l2_fixed.why().describe()));

  const auto& sizes = config_.l1_size_sweep;
  std::vector<opt::ComponentEvaluator> evals;
  evals.reserve(sizes.size());
  for (std::uint64_t size : sizes) evals.push_back(evaluator(l1_model(size)));

  std::vector<SizeSweepRow> rows(sizes.size());
  run_parallel_sweep(rows.size(), [&](std::size_t i) {
    const std::uint64_t size = sizes[i];
    SizeSweepRow row;
    row.size_bytes = size;
    const double ml1 = config_.miss_curves.l1(size);
    row.miss_rate = ml1;
    const double budget =
        amat_target_s - ml1 * (l2_fixed->access_time_s + ml2 * tmem);
    if (budget <= 0.0) {
      row.infeasible_reason =
          "AMAT target leaves no L1 time budget at this size";
      rows[i] = std::move(row);
      return;
    }
    auto best =
        opt::optimize_single_cache(evals[i], config_.grid,
                                   Scheme::kArrayPeriphery, budget,
                                   config_.search_mode);
    if (!best) {
      row.infeasible_reason = best.why().describe();
      rows[i] = std::move(row);
      return;
    }
    row.feasible = true;
    row.result = *best;
    row.level_leakage_w = best->leakage_w;
    row.total_leakage_w = best->leakage_w + l2_fixed->leakage_w;
    row.amat_s = best->access_time_s +
                 ml1 * (l2_fixed->access_time_s + ml2 * tmem);
    rows[i] = std::move(row);
  });
  return rows;
}

std::vector<Explorer::JointSizingRow> Explorer::joint_size_study(
    double amat_target_s) const {
  metrics::TraceSpan span("explorer.joint_size_study");
  NC_REQUIRE(amat_target_s > 0.0, "AMAT target must be positive");
  const double tmem = config_.memory.access_latency_s;
  const auto& l1_sizes = config_.l1_size_sweep;
  const auto& l2_sizes = config_.l2_size_sweep;

  // Pre-warm models/evaluators, then build the per-size fronts in
  // parallel (each front is itself a full grid enumeration).
  std::vector<opt::ComponentEvaluator> l1_evals, l2_evals;
  for (std::uint64_t s : l1_sizes) l1_evals.push_back(evaluator(l1_model(s)));
  for (std::uint64_t s : l2_sizes) l2_evals.push_back(evaluator(l2_model(s)));

  std::vector<std::vector<opt::SchemeResult>> l1_fronts(l1_sizes.size());
  std::vector<std::vector<opt::SchemeResult>> l2_fronts(l2_sizes.size());
  run_parallel_sweep(l1_sizes.size() + l2_sizes.size(), [&](std::size_t i) {
    if (i < l1_sizes.size()) {
      l1_fronts[i] = opt::scheme_frontier(l1_evals[i], config_.grid,
                                          opt::Scheme::kArrayPeriphery);
    } else {
      const std::size_t j = i - l1_sizes.size();
      l2_fronts[j] = opt::scheme_frontier(l2_evals[j], config_.grid,
                                          opt::Scheme::kArrayPeriphery);
    }
  });

  // The (L1, L2) matching pass is cheap per pair; still fanned out so big
  // configured sweeps scale.  Row order matches the serial loops (L1-major).
  std::vector<JointSizingRow> rows(l1_sizes.size() * l2_sizes.size());
  run_parallel_sweep(rows.size(), [&](std::size_t idx) {
    const std::size_t i1 = idx / l2_sizes.size();
    const std::size_t i2 = idx % l2_sizes.size();
    const double ml1 = config_.miss_curves.l1(l1_sizes[i1]);
    const double ml2 = config_.miss_curves.l2(l2_sizes[i2]);
    JointSizingRow row;
    row.l1_size_bytes = l1_sizes[i1];
    row.l2_size_bytes = l2_sizes[i2];

    // Both fronts are sorted by delay ascending / leakage descending.
    // Sweep L1 points; for each, the L2 budget follows from the AMAT
    // identity, and the best L2 choice is the slowest front point that
    // still fits (leakage falls with delay along the front).
    for (const auto& p1 : l1_fronts[i1]) {
      const double l2_budget =
          (amat_target_s - p1.access_time_s) / ml1 - ml2 * tmem;
      if (l2_budget <= 0.0) continue;
      const opt::SchemeResult* best_l2 = nullptr;
      for (const auto& p2 : l2_fronts[i2]) {
        if (p2.access_time_s > l2_budget) break;
        best_l2 = &p2;  // later points are slower and less leaky
      }
      if (best_l2 == nullptr) continue;
      const double total = p1.leakage_w + best_l2->leakage_w;
      if (!row.feasible || total < row.total_leakage_w) {
        row.feasible = true;
        row.total_leakage_w = total;
        row.l1 = p1;
        row.l2 = *best_l2;
        row.amat_s = p1.access_time_s +
                     ml1 * (best_l2->access_time_s + ml2 * tmem);
      }
    }
    rows[idx] = std::move(row);
  });
  return rows;
}

// --- FIG2 -------------------------------------------------------------------

std::vector<opt::MenuSpec> Explorer::default_fig2_specs() {
  return {{2, 2}, {2, 3}, {3, 2}, {2, 1}, {1, 2}};
}

std::string Explorer::menu_label(const opt::MenuSpec& spec) {
  std::ostringstream os;
  os << spec.num_tox << " Tox + " << spec.num_vth << " Vth";
  return os.str();
}

std::vector<Fig2Series> Explorer::fig2_tuple_frontiers(
    const std::vector<opt::MenuSpec>& specs) const {
  metrics::TraceSpan span("explorer.fig2_tuple_frontiers");
  const auto system = default_system();
  const opt::TupleMenuSolver solver(system, config_.grid);
  // Specs run serially; each frontier fans its menu enumeration out over
  // the pool (parallelizing both layers would just collapse the inner one).
  std::vector<Fig2Series> out;
  for (const auto& spec : specs) {
    Fig2Series s;
    s.spec = spec;
    s.label = menu_label(spec);
    s.points = solver.frontier(spec);
    out.push_back(std::move(s));
  }
  return out;
}

std::vector<std::vector<std::optional<opt::SystemDesignPoint>>>
Explorer::fig2_tuple_table(const std::vector<opt::MenuSpec>& specs,
                           const std::vector<double>& amat_targets_s) const {
  metrics::TraceSpan span("explorer.fig2_tuple_table");
  const auto system = default_system();
  const opt::TupleMenuSolver solver(system, config_.grid);
  std::vector<std::vector<std::optional<opt::SystemDesignPoint>>> table;
  for (const auto& spec : specs) {
    std::vector<std::optional<opt::SystemDesignPoint>> row;
    for (double target : amat_targets_s) {
      row.push_back(solver.best_at(spec, target));
    }
    table.push_back(std::move(row));
  }
  return table;
}

}  // namespace nanocache::core
