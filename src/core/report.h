// Reporting: long-format tables for every experiment's output and CSV
// artifact export.  The bench binaries print richer per-claim views; these
// functions provide the machine-readable versions (one row per data point)
// that downstream plotting consumes.
#pragma once

#include <string>

#include "core/explorer.h"
#include "util/table.h"

namespace nanocache::core {

/// FIG1 long format: series, swept knob, value, access time [pS],
/// leakage [mW].
TextTable fig1_long_table(const std::vector<Fig1Series>& series);

/// TAB-S4 long format: target [pS], scheme, leakage [mW], achieved [pS].
TextTable scheme_long_table(const std::vector<SchemeComparisonRow>& rows);

/// Size-sweep long format (works for both the L2 and L1 sweeps).
TextTable size_sweep_table(const std::vector<SizeSweepRow>& rows,
                           const std::string& level_name);

/// FIG2 long format: menu, AMAT [pS], energy [pJ], leakage [mW].
TextTable fig2_long_table(const std::vector<Fig2Series>& series);

/// Fitted->structural degradation events recorded by the explorer so far:
/// model, reason.  Empty on the pure structural path.
TextTable degradation_table(const Explorer& explorer);

/// Run every experiment at default settings and write one CSV per
/// experiment into `directory` (created if absent).  Returns the number of
/// files written.  File names: fig1.csv, scheme_comparison.csv,
/// l2_sweep_uniform.csv, l2_sweep_split.csv, l1_sweep.csv, fig2.csv,
/// degradation.csv.
int export_all_csv(const Explorer& explorer, const std::string& directory);

}  // namespace nanocache::core
