#include "core/report.h"

#include <filesystem>
#include <fstream>

#include "util/error.h"
#include "util/units.h"

namespace nanocache::core {

TextTable fig1_long_table(const std::vector<Fig1Series>& series) {
  TextTable t("fig1");
  t.set_header({"series", "swept_knob", "knob_value", "access_time_ps",
                "leakage_mw"});
  for (const auto& s : series) {
    for (const auto& p : s.points) {
      t.add_row({s.label, s.vth_fixed ? "tox_a" : "vth_v",
                 fmt_fixed(p.swept_value, 3),
                 fmt_fixed(units::seconds_to_ps(p.access_time_s), 2),
                 fmt_fixed(units::watts_to_mw(p.leakage_w), 4)});
    }
  }
  return t;
}

TextTable scheme_long_table(const std::vector<SchemeComparisonRow>& rows) {
  TextTable t("scheme_comparison");
  t.set_header({"target_ps", "scheme", "leakage_mw", "achieved_ps", "note"});
  auto emit = [&t](double target, const char* name,
                   const opt::OptOutcome<opt::SchemeResult>& r) {
    t.add_row({fmt_fixed(units::seconds_to_ps(target), 1), name,
               r ? fmt_fixed(units::watts_to_mw(r->leakage_w), 4)
                 : "infeasible",
               r ? fmt_fixed(units::seconds_to_ps(r->access_time_s), 1)
                 : "-",
               r ? "" : r.why().describe()});
  };
  for (const auto& row : rows) {
    emit(row.delay_target_s, "I", row.scheme1);
    emit(row.delay_target_s, "II", row.scheme2);
    emit(row.delay_target_s, "III", row.scheme3);
  }
  return t;
}

TextTable size_sweep_table(const std::vector<SizeSweepRow>& rows,
                           const std::string& level_name) {
  TextTable t(level_name + "_size_sweep");
  t.set_header({"size_bytes", "miss_rate", "feasible", "level_leakage_mw",
                "total_leakage_mw", "amat_ps", "note"});
  for (const auto& r : rows) {
    t.add_row({std::to_string(r.size_bytes), fmt_fixed(r.miss_rate, 5),
               r.feasible ? "1" : "0",
               r.feasible ? fmt_fixed(units::watts_to_mw(r.level_leakage_w), 4)
                          : "-",
               r.feasible ? fmt_fixed(units::watts_to_mw(r.total_leakage_w), 4)
                          : "-",
               r.feasible ? fmt_fixed(units::seconds_to_ps(r.amat_s), 1)
                          : "-",
               r.infeasible_reason});
  }
  return t;
}

TextTable degradation_table(const Explorer& explorer) {
  TextTable t("degradation_events");
  t.set_header({"model", "reason"});
  for (const auto& e : explorer.degradation_events()) {
    t.add_row({e.model, e.reason});
  }
  return t;
}

TextTable fig2_long_table(const std::vector<Fig2Series>& series) {
  TextTable t("fig2");
  t.set_header({"menu", "amat_ps", "energy_pj", "leakage_mw"});
  for (const auto& s : series) {
    for (const auto& p : s.points) {
      t.add_row({s.label, fmt_fixed(units::seconds_to_ps(p.amat_s), 1),
                 fmt_fixed(units::joules_to_pj(p.energy_j), 2),
                 fmt_fixed(units::watts_to_mw(p.leakage_w), 2)});
    }
  }
  return t;
}

namespace {

void write_csv(const std::filesystem::path& path, const TextTable& table) {
  std::ofstream out(path);
  NC_REQUIRE_IO(out.good(), "cannot open CSV for writing: " + path.string());
  out << table.to_csv();
  NC_REQUIRE_IO(out.good(), "failed writing CSV: " + path.string());
}

}  // namespace

int export_all_csv(const Explorer& explorer, const std::string& directory) {
  const std::filesystem::path dir(directory);
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  NC_REQUIRE_IO(!ec, "cannot create CSV directory " + dir.string() + ": " +
                         ec.message());

  int written = 0;
  write_csv(dir / "fig1.csv",
            fig1_long_table(explorer.fig1_fixed_knob(
                explorer.config().l1_size_bytes)));
  ++written;

  const auto ladder =
      explorer.delay_ladder(explorer.config().l1_size_bytes, 9);
  write_csv(dir / "scheme_comparison.csv",
            scheme_long_table(explorer.scheme_comparison(
                explorer.config().l1_size_bytes, ladder)));
  ++written;

  const double squeeze = explorer.l2_squeeze_target_s();
  write_csv(dir / "l2_sweep_uniform.csv",
            size_sweep_table(
                explorer.l2_size_sweep(opt::Scheme::kUniform, squeeze),
                "l2_uniform"));
  ++written;
  write_csv(dir / "l2_sweep_split.csv",
            size_sweep_table(explorer.l2_size_sweep(
                                 opt::Scheme::kArrayPeriphery, squeeze),
                             "l2_split"));
  ++written;
  write_csv(dir / "l1_sweep.csv",
            size_sweep_table(explorer.l1_size_sweep(
                                 explorer.l2_squeeze_target_s(1.25)),
                             "l1"));
  ++written;

  write_csv(dir / "fig2.csv",
            fig2_long_table(explorer.fig2_tuple_frontiers()));
  ++written;

  // Fitted->structural fallbacks recorded while the experiments above ran.
  // Empty on the structural path, but always written so consumers can rely
  // on the file's presence.
  write_csv(dir / "degradation.csv", degradation_table(explorer));
  ++written;
  return written;
}

}  // namespace nanocache::core
