// Terminal scatter/line charts: renders (x, y) series into a character
// grid so the bench harness can show the paper's figures, not just their
// tables, directly in the terminal.
#pragma once

#include <string>
#include <vector>

namespace nanocache {

class AsciiChart {
 public:
  /// Plot area dimensions in characters (axes add a margin around them).
  AsciiChart(int width = 72, int height = 20);

  /// Add a series; each is drawn with its own marker character.
  /// Markers cycle through "*o+x#@" when 0 is passed.
  void add_series(std::string label, std::vector<double> x,
                  std::vector<double> y, char marker = 0);

  /// Optional axis labels and title.
  void set_title(std::string title) { title_ = std::move(title); }
  void set_x_label(std::string label) { x_label_ = std::move(label); }
  void set_y_label(std::string label) { y_label_ = std::move(label); }

  /// Log-scale the y axis (data must be positive).
  void set_log_y(bool log_y) { log_y_ = log_y; }

  /// Render the chart with axes, tick values and a legend.
  std::string render() const;

 private:
  struct Series {
    std::string label;
    std::vector<double> x;
    std::vector<double> y;
    char marker;
  };

  int width_;
  int height_;
  bool log_y_ = false;
  std::string title_;
  std::string x_label_;
  std::string y_label_;
  std::vector<Series> series_;
};

}  // namespace nanocache
