#include "util/math.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/error.h"

namespace nanocache::math {

std::vector<double> solve_linear_system(std::vector<double> a,
                                        std::vector<double> b) {
  const std::size_t n = b.size();
  NC_REQUIRE(a.size() == n * n, "matrix/vector size mismatch");
  for (std::size_t col = 0; col < n; ++col) {
    std::size_t pivot = col;
    for (std::size_t row = col + 1; row < n; ++row) {
      if (std::abs(a[row * n + col]) > std::abs(a[pivot * n + col])) {
        pivot = row;
      }
    }
    if (pivot != col) {
      for (std::size_t k = 0; k < n; ++k) {
        std::swap(a[col * n + k], a[pivot * n + k]);
      }
      std::swap(b[col], b[pivot]);
    }
    const double p = a[col * n + col];
    NC_REQUIRE(std::abs(p) > 1e-300, "singular linear system");
    for (std::size_t row = col + 1; row < n; ++row) {
      const double f = a[row * n + col] / p;
      if (f == 0.0) continue;
      for (std::size_t k = col; k < n; ++k) {
        a[row * n + k] -= f * a[col * n + k];
      }
      b[row] -= f * b[col];
    }
  }
  std::vector<double> x(n, 0.0);
  for (std::size_t i = n; i-- > 0;) {
    double s = b[i];
    for (std::size_t k = i + 1; k < n; ++k) {
      s -= a[i * n + k] * x[k];
    }
    x[i] = s / a[i * n + i];
  }
  return x;
}

std::vector<double> least_squares(const std::vector<double>& x_rowmajor,
                                  std::size_t cols,
                                  const std::vector<double>& y) {
  NC_REQUIRE(cols > 0, "least_squares needs at least one column");
  NC_REQUIRE(x_rowmajor.size() == cols * y.size(),
             "design matrix size mismatch");
  NC_REQUIRE(y.size() >= cols, "underdetermined least squares");
  const std::size_t rows = y.size();
  // Normal equations: (X^T X) beta = X^T y.
  std::vector<double> xtx(cols * cols, 0.0);
  std::vector<double> xty(cols, 0.0);
  for (std::size_t r = 0; r < rows; ++r) {
    const double* xr = &x_rowmajor[r * cols];
    for (std::size_t i = 0; i < cols; ++i) {
      xty[i] += xr[i] * y[r];
      for (std::size_t j = 0; j < cols; ++j) {
        xtx[i * cols + j] += xr[i] * xr[j];
      }
    }
  }
  // Tiny ridge term keeps nearly-collinear rate scans well conditioned.
  for (std::size_t i = 0; i < cols; ++i) {
    xtx[i * cols + i] += 1e-12 * (xtx[i * cols + i] + 1.0);
  }
  return solve_linear_system(std::move(xtx), std::move(xty));
}

double r_squared(const std::vector<double>& observed,
                 const std::vector<double>& predicted) {
  NC_REQUIRE(observed.size() == predicted.size() && !observed.empty(),
             "r_squared input mismatch");
  double mean = 0.0;
  for (double v : observed) mean += v;
  mean /= static_cast<double>(observed.size());
  double ss_res = 0.0;
  double ss_tot = 0.0;
  for (std::size_t i = 0; i < observed.size(); ++i) {
    const double r = observed[i] - predicted[i];
    const double t = observed[i] - mean;
    ss_res += r * r;
    ss_tot += t * t;
  }
  if (ss_tot <= 0.0) return ss_res <= 1e-30 ? 1.0 : 0.0;
  return 1.0 - ss_res / ss_tot;
}

double ExpFit::operator()(double x) const { return c0 + c1 * std::exp(rate * x); }

namespace {

/// Inner solve for y = c0 + c1 * exp(rate * x) at a fixed rate; returns the
/// sum of squared residuals and fills c0/c1.
double exp_inner_solve(const std::vector<double>& x,
                       const std::vector<double>& y, double rate, double* c0,
                       double* c1) {
  const std::size_t n = y.size();
  std::vector<double> design(n * 2);
  for (std::size_t i = 0; i < n; ++i) {
    design[i * 2 + 0] = 1.0;
    design[i * 2 + 1] = std::exp(rate * x[i]);
  }
  const auto beta = least_squares(design, 2, y);
  *c0 = beta[0];
  *c1 = beta[1];
  double ss = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double r = y[i] - (beta[0] + beta[1] * design[i * 2 + 1]);
    ss += r * r;
  }
  return ss;
}

}  // namespace

ExpFit fit_exponential(const std::vector<double>& x,
                       const std::vector<double>& y, double rate_lo,
                       double rate_hi, int steps) {
  NC_REQUIRE(x.size() == y.size() && x.size() >= 3,
             "fit_exponential needs >= 3 samples");
  NC_REQUIRE(rate_hi > rate_lo, "invalid rate bracket");
  NC_REQUIRE(steps >= 2, "fit_exponential needs >= 2 scan steps");

  double best_rate = rate_lo;
  double best_ss = std::numeric_limits<double>::infinity();
  double c0 = 0.0;
  double c1 = 0.0;
  for (int i = 0; i <= steps; ++i) {
    const double rate =
        rate_lo + (rate_hi - rate_lo) * static_cast<double>(i) / steps;
    double a = 0.0;
    double b = 0.0;
    const double ss = exp_inner_solve(x, y, rate, &a, &b);
    if (ss < best_ss) {
      best_ss = ss;
      best_rate = rate;
    }
  }
  // Golden-section refinement around the best grid point.
  const double span = (rate_hi - rate_lo) / steps;
  double lo = best_rate - span;
  double hi = best_rate + span;
  constexpr double kInvPhi = 0.6180339887498949;
  for (int it = 0; it < 60; ++it) {
    const double m1 = hi - kInvPhi * (hi - lo);
    const double m2 = lo + kInvPhi * (hi - lo);
    double a = 0.0;
    double b = 0.0;
    const double s1 = exp_inner_solve(x, y, m1, &a, &b);
    const double s2 = exp_inner_solve(x, y, m2, &a, &b);
    if (s1 < s2) {
      hi = m2;
    } else {
      lo = m1;
    }
  }
  best_rate = 0.5 * (lo + hi);
  exp_inner_solve(x, y, best_rate, &c0, &c1);

  ExpFit fit;
  fit.c0 = c0;
  fit.c1 = c1;
  fit.rate = best_rate;
  std::vector<double> pred(y.size());
  for (std::size_t i = 0; i < y.size(); ++i) pred[i] = fit(x[i]);
  fit.r2 = r_squared(y, pred);
  return fit;
}

double SeparableExpFit::operator()(double x1, double x2) const {
  return c0 + c1 * std::exp(r1 * x1) + c2 * std::exp(r2 * x2);
}

SeparableExpFit fit_separable_exponentials(
    const std::vector<double>& x1, const std::vector<double>& x2,
    const std::vector<double>& y, double r1_lo, double r1_hi, double r2_lo,
    double r2_hi, int steps) {
  NC_REQUIRE(x1.size() == y.size() && x2.size() == y.size() && y.size() >= 5,
             "fit_separable_exponentials needs >= 5 samples");
  NC_REQUIRE(r1_hi > r1_lo && r2_hi > r2_lo, "invalid rate brackets");

  const std::size_t n = y.size();
  SeparableExpFit best;
  double best_ss = std::numeric_limits<double>::infinity();

  std::vector<double> design(n * 3);
  for (int i = 0; i <= steps; ++i) {
    const double r1 = r1_lo + (r1_hi - r1_lo) * static_cast<double>(i) / steps;
    for (int j = 0; j <= steps; ++j) {
      const double r2 =
          r2_lo + (r2_hi - r2_lo) * static_cast<double>(j) / steps;
      for (std::size_t k = 0; k < n; ++k) {
        design[k * 3 + 0] = 1.0;
        design[k * 3 + 1] = std::exp(r1 * x1[k]);
        design[k * 3 + 2] = std::exp(r2 * x2[k]);
      }
      const auto beta = least_squares(design, 3, y);
      double ss = 0.0;
      for (std::size_t k = 0; k < n; ++k) {
        const double p = beta[0] + beta[1] * design[k * 3 + 1] +
                         beta[2] * design[k * 3 + 2];
        const double r = y[k] - p;
        ss += r * r;
      }
      if (ss < best_ss) {
        best_ss = ss;
        best.c0 = beta[0];
        best.c1 = beta[1];
        best.r1 = r1;
        best.c2 = beta[2];
        best.r2 = r2;
      }
    }
  }
  std::vector<double> pred(n);
  for (std::size_t k = 0; k < n; ++k) pred[k] = best(x1[k], x2[k]);
  best.r2_score = r_squared(y, pred);
  return best;
}

double ExpLinearFit::operator()(double x1, double x2) const {
  return c0 + c1 * std::exp(rate * x1) + c2 * x2;
}

ExpLinearFit fit_exp_linear(const std::vector<double>& x1,
                            const std::vector<double>& x2,
                            const std::vector<double>& y, double rate_lo,
                            double rate_hi, int steps) {
  NC_REQUIRE(x1.size() == y.size() && x2.size() == y.size() && y.size() >= 4,
             "fit_exp_linear needs >= 4 samples");
  NC_REQUIRE(rate_hi > rate_lo, "invalid rate bracket");

  const std::size_t n = y.size();
  ExpLinearFit best;
  double best_ss = std::numeric_limits<double>::infinity();
  std::vector<double> design(n * 3);
  for (int i = 0; i <= steps; ++i) {
    const double rate =
        rate_lo + (rate_hi - rate_lo) * static_cast<double>(i) / steps;
    for (std::size_t k = 0; k < n; ++k) {
      design[k * 3 + 0] = 1.0;
      design[k * 3 + 1] = std::exp(rate * x1[k]);
      design[k * 3 + 2] = x2[k];
    }
    const auto beta = least_squares(design, 3, y);
    double ss = 0.0;
    for (std::size_t k = 0; k < n; ++k) {
      const double p = beta[0] + beta[1] * design[k * 3 + 1] +
                       beta[2] * design[k * 3 + 2];
      const double r = y[k] - p;
      ss += r * r;
    }
    if (ss < best_ss) {
      best_ss = ss;
      best.c0 = beta[0];
      best.c1 = beta[1];
      best.rate = rate;
      best.c2 = beta[2];
    }
  }
  std::vector<double> pred(n);
  for (std::size_t k = 0; k < n; ++k) pred[k] = best(x1[k], x2[k]);
  best.r2_score = r_squared(y, pred);
  return best;
}

double PowerLawFit::operator()(double x) const {
  return scale * std::pow(x, exponent);
}

PowerLawFit fit_power_law(const std::vector<double>& x,
                          const std::vector<double>& y) {
  NC_REQUIRE(x.size() == y.size() && x.size() >= 2,
             "fit_power_law needs >= 2 samples");
  const std::size_t n = x.size();
  std::vector<double> design(n * 2);
  std::vector<double> logy(n);
  for (std::size_t i = 0; i < n; ++i) {
    NC_REQUIRE(x[i] > 0.0 && y[i] > 0.0,
               "fit_power_law needs strictly positive data");
    design[i * 2 + 0] = 1.0;
    design[i * 2 + 1] = std::log(x[i]);
    logy[i] = std::log(y[i]);
  }
  const auto beta = least_squares(design, 2, logy);
  PowerLawFit fit;
  fit.scale = std::exp(beta[0]);
  fit.exponent = beta[1];
  std::vector<double> pred(n);
  for (std::size_t i = 0; i < n; ++i) {
    pred[i] = beta[0] + beta[1] * design[i * 2 + 1];
  }
  fit.r2_log = r_squared(logy, pred);
  return fit;
}

double lerp(double a, double b, double t) { return a + (b - a) * t; }

}  // namespace nanocache::math
