// Stable content hashing shared by the persistent result cache and the
// surrogate table store.  FNV-1a is deliberate: the fingerprint is a file
// naming / corruption-detection device, not a security boundary, and the
// 16-hex-digit output must stay byte-stable across platforms and releases
// because it is embedded in on-disk segment names.
#pragma once

#include <string>
#include <string_view>

namespace nanocache {

/// 64-bit FNV-1a over `s`, rendered as 16 lowercase hex digits.
std::string fnv1a64_hex(std::string_view s);

}  // namespace nanocache
