#include "util/metrics.h"

namespace nanocache::metrics {

std::size_t Histogram::bucket_for(std::uint64_t v) {
  if (v <= 1) return 0;
  // Index of the first power of two >= v.
  std::size_t b = 0;
  std::uint64_t bound = 1;
  while (bound < v && b + 1 < kBuckets) {
    bound <<= 1;
    ++b;
  }
  return bound >= v ? b : kBuckets - 1;
}

void Histogram::observe(std::uint64_t v) {
  buckets_[bucket_for(v)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);
}

void Histogram::reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
}

Registry& Registry::instance() {
  static Registry registry;
  return registry;
}

Counter& Registry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  return counters_[name];
}

Gauge& Registry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  return gauges_[name];
}

Histogram& Registry::histogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  return histograms_[name];
}

void Registry::record_phase(const std::string& name,
                            std::uint64_t duration_ns) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& phase = phases_[name];
  phase.count += 1;
  phase.total_ns += duration_ns;
  if (duration_ns > phase.max_ns) phase.max_ns = duration_ns;
}

MetricsSnapshot Registry::snapshot() const {
  MetricsSnapshot out;
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [name, c] : counters_) out.counters[name] = c.value();
  for (const auto& [name, g] : gauges_) out.gauges[name] = g.value();
  for (const auto& [name, h] : histograms_) {
    HistogramSnapshot s;
    s.count = h.count();
    s.sum = h.sum();
    for (std::size_t b = 0; b < Histogram::kBuckets; ++b) {
      s.buckets[b] = h.bucket(b);
    }
    out.histograms[name] = s;
  }
  out.phases = phases_;
  return out;
}

void Registry::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, c] : counters_) c.reset();
  for (auto& [name, g] : gauges_) g.reset();
  for (auto& [name, h] : histograms_) h.reset();
  phases_.clear();
}

}  // namespace nanocache::metrics
