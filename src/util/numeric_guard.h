// Numeric domain guards for model-evaluation boundaries.
//
// The fitted closed forms and the structural model are algebra over exp()
// and division; fed a NaN, an infinity or an out-of-domain knob they
// silently produce garbage that poisons every downstream Pareto front.
// These helpers turn that into a detected, categorized event: each check
// throws nanocache::Error with ErrorCategory::kNumericDomain and names the
// offending quantity, so a NaN can never cross a guarded boundary
// unnoticed.  All helpers return the validated value so they compose
// inline: `return ensure_finite(model(k), "fitted leakage");`.
#pragma once

#include <cmath>
#include <string>

#include "util/error.h"

namespace nanocache::num {

/// Largest exponent argument accepted by checked_exp: exp(709.8) is the
/// edge of double range, so anything this size is already a modelling
/// failure, not a physical quantity.
inline constexpr double kMaxExpArg = 700.0;

[[noreturn]] inline void throw_domain(const std::string& what,
                                      const char* context, double value) {
  throw Error(ErrorCategory::kNumericDomain,
              what + " in " + context + " (value " + std::to_string(value) +
                  ")");
}

/// Value must be neither NaN nor infinite.
inline double ensure_finite(double value, const char* context) {
  if (!std::isfinite(value)) throw_domain("non-finite value", context, value);
  return value;
}

/// Value must be finite and strictly positive.
inline double ensure_positive(double value, const char* context) {
  ensure_finite(value, context);
  if (!(value > 0.0)) throw_domain("non-positive value", context, value);
  return value;
}

/// Value must be finite and >= 0.
inline double ensure_nonnegative(double value, const char* context) {
  ensure_finite(value, context);
  if (value < 0.0) throw_domain("negative value", context, value);
  return value;
}

/// Value must be finite and inside [lo, hi].
inline double ensure_in_range(double value, double lo, double hi,
                              const char* context) {
  ensure_finite(value, context);
  if (value < lo || value > hi) {
    throw Error(ErrorCategory::kNumericDomain,
                std::string("value out of range in ") + context + " (" +
                    std::to_string(value) + " not in [" + std::to_string(lo) +
                    ", " + std::to_string(hi) + "])");
  }
  return value;
}

/// exp() that refuses non-finite or overflowing arguments instead of
/// returning Inf.
inline double checked_exp(double x, const char* context) {
  ensure_finite(x, context);
  if (x > kMaxExpArg) throw_domain("exp overflow", context, x);
  return std::exp(x);
}

/// log() that refuses non-positive or non-finite arguments instead of
/// returning NaN/-Inf.
inline double checked_log(double x, const char* context) {
  ensure_positive(x, context);
  return std::log(x);
}

}  // namespace nanocache::num
