#include "util/ascii_chart.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

#include "util/error.h"
#include "util/table.h"

namespace nanocache {

namespace {
constexpr char kMarkers[] = "*o+x#@";
}

AsciiChart::AsciiChart(int width, int height)
    : width_(width), height_(height) {
  NC_REQUIRE(width_ >= 16 && width_ <= 200, "chart width out of range");
  NC_REQUIRE(height_ >= 6 && height_ <= 100, "chart height out of range");
}

void AsciiChart::add_series(std::string label, std::vector<double> x,
                            std::vector<double> y, char marker) {
  NC_REQUIRE(x.size() == y.size(), "series x/y size mismatch");
  NC_REQUIRE(!x.empty(), "series must be non-empty");
  if (marker == 0) {
    marker = kMarkers[series_.size() % (sizeof(kMarkers) - 1)];
  }
  series_.push_back(Series{std::move(label), std::move(x), std::move(y),
                           marker});
}

std::string AsciiChart::render() const {
  NC_REQUIRE(!series_.empty(), "chart has no series");

  double x_min = std::numeric_limits<double>::infinity();
  double x_max = -x_min;
  double y_min = x_min;
  double y_max = -x_min;
  for (const auto& s : series_) {
    for (std::size_t i = 0; i < s.x.size(); ++i) {
      x_min = std::min(x_min, s.x[i]);
      x_max = std::max(x_max, s.x[i]);
      double yv = s.y[i];
      if (log_y_) {
        NC_REQUIRE(yv > 0.0, "log-scale chart requires positive y values");
        yv = std::log10(yv);
      }
      y_min = std::min(y_min, yv);
      y_max = std::max(y_max, yv);
    }
  }
  if (x_max == x_min) x_max = x_min + 1.0;
  if (y_max == y_min) y_max = y_min + 1.0;

  std::vector<std::string> grid(
      static_cast<std::size_t>(height_),
      std::string(static_cast<std::size_t>(width_), ' '));
  auto place = [&](double x, double y, char m) {
    const int col = static_cast<int>(std::lround(
        (x - x_min) / (x_max - x_min) * (width_ - 1)));
    const int row = static_cast<int>(std::lround(
        (y - y_min) / (y_max - y_min) * (height_ - 1)));
    char& cell = grid[static_cast<std::size_t>(height_ - 1 - row)]
                     [static_cast<std::size_t>(col)];
    // Overlapping series show as '&'.
    cell = (cell == ' ' || cell == m) ? m : '&';
  };
  for (const auto& s : series_) {
    for (std::size_t i = 0; i < s.x.size(); ++i) {
      place(s.x[i], log_y_ ? std::log10(s.y[i]) : s.y[i], s.marker);
    }
  }

  std::ostringstream os;
  if (!title_.empty()) os << title_ << "\n";
  auto y_tick = [&](int row) {
    const double t = static_cast<double>(height_ - 1 - row) / (height_ - 1);
    const double v = y_min + t * (y_max - y_min);
    return log_y_ ? std::pow(10.0, v) : v;
  };
  for (int row = 0; row < height_; ++row) {
    std::string tick(10, ' ');
    if (row == 0 || row == height_ - 1 || row == height_ / 2) {
      std::string v = fmt_fixed(y_tick(row), 1);
      if (v.size() > 9) v = v.substr(0, 9);
      tick = std::string(9 - v.size(), ' ') + v + " ";
    }
    os << tick << '|' << grid[static_cast<std::size_t>(row)] << "\n";
  }
  os << std::string(10, ' ') << '+'
     << std::string(static_cast<std::size_t>(width_), '-') << "\n";
  // X tick line: min, mid, max.
  const std::string lo = fmt_fixed(x_min, 0);
  const std::string mid = fmt_fixed(0.5 * (x_min + x_max), 0);
  const std::string hi = fmt_fixed(x_max, 0);
  std::string xticks(static_cast<std::size_t>(width_) + 11, ' ');
  xticks.replace(11, lo.size(), lo);
  const std::size_t mid_pos = 11 + static_cast<std::size_t>(width_ / 2) -
                              mid.size() / 2;
  xticks.replace(mid_pos, mid.size(), mid);
  if (hi.size() < static_cast<std::size_t>(width_)) {
    xticks.replace(11 + static_cast<std::size_t>(width_) - hi.size(),
                   hi.size(), hi);
  }
  os << xticks << "\n";
  if (!x_label_.empty() || !y_label_.empty()) {
    os << "           x: " << x_label_;
    if (!y_label_.empty()) {
      os << "   y: " << y_label_ << (log_y_ ? " (log scale)" : "");
    }
    os << "\n";
  }
  os << "           legend:";
  for (const auto& s : series_) {
    os << "  " << s.marker << " " << s.label;
  }
  os << "\n";
  return os.str();
}

}  // namespace nanocache
