#include "util/json.h"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <utility>

#include "util/error.h"

namespace nanocache::json {

namespace {

[[noreturn]] void type_error(const char* wanted, Type got) {
  const char* names[] = {"null", "bool", "number", "string", "array",
                         "object"};
  throw Error(ErrorCategory::kConfig,
              std::string("JSON type mismatch: wanted ") + wanted + ", got " +
                  names[static_cast<int>(got)]);
}

}  // namespace

bool Value::as_bool() const {
  if (type_ != Type::kBool) type_error("bool", type_);
  return bool_;
}

double Value::as_double() const {
  if (type_ != Type::kNumber) type_error("number", type_);
  return number_;
}

std::int64_t Value::as_int() const {
  const double d = as_double();
  const auto i = static_cast<std::int64_t>(d);
  NC_REQUIRE(static_cast<double>(i) == d,
             "JSON number is not an integer: " + format_double(d));
  return i;
}

std::uint64_t Value::as_uint() const {
  const double d = as_double();
  NC_REQUIRE(d >= 0.0, "JSON number is negative: " + format_double(d));
  const auto u = static_cast<std::uint64_t>(d);
  NC_REQUIRE(static_cast<double>(u) == d,
             "JSON number is not a non-negative integer: " + format_double(d));
  return u;
}

const std::string& Value::as_string() const {
  if (type_ != Type::kString) type_error("string", type_);
  return string_;
}

const Value::Array& Value::as_array() const {
  if (type_ != Type::kArray) type_error("array", type_);
  return array_;
}

const Value::Object& Value::as_object() const {
  if (type_ != Type::kObject) type_error("object", type_);
  return object_;
}

ValuePtr Value::get(const std::string& key) const {
  if (type_ != Type::kObject) return nullptr;
  const auto it = object_.find(key);
  return it == object_.end() ? nullptr : it->second;
}

ValuePtr Value::make_null() { return std::shared_ptr<Value>(new Value()); }

ValuePtr Value::make_bool(bool b) {
  auto v = std::shared_ptr<Value>(new Value());
  v->type_ = Type::kBool;
  v->bool_ = b;
  return v;
}

ValuePtr Value::make_number(double d) {
  auto v = std::shared_ptr<Value>(new Value());
  v->type_ = Type::kNumber;
  v->number_ = d;
  return v;
}

ValuePtr Value::make_string(std::string s) {
  auto v = std::shared_ptr<Value>(new Value());
  v->type_ = Type::kString;
  v->string_ = std::move(s);
  return v;
}

ValuePtr Value::make_array(Array a) {
  auto v = std::shared_ptr<Value>(new Value());
  v->type_ = Type::kArray;
  v->array_ = std::move(a);
  return v;
}

ValuePtr Value::make_object(Object o) {
  auto v = std::shared_ptr<Value>(new Value());
  v->type_ = Type::kObject;
  v->object_ = std::move(o);
  return v;
}

namespace {

/// Strict recursive-descent parser over a string view of the input.
class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  ValuePtr parse_document() {
    ValuePtr v = parse_value();
    skip_ws();
    NC_REQUIRE(pos_ == text_.size(),
               "trailing garbage after JSON value at offset " +
                   std::to_string(pos_));
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) {
    throw Error(ErrorCategory::kConfig,
                "JSON parse error at offset " + std::to_string(pos_) + ": " +
                    what);
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(const char* lit) {
    std::size_t n = 0;
    while (lit[n] != '\0') ++n;
    if (text_.compare(pos_, n, lit) != 0) return false;
    pos_ += n;
    return true;
  }

  ValuePtr parse_value() {
    skip_ws();
    const char c = peek();
    switch (c) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return Value::make_string(parse_string());
      case 't':
        if (!consume_literal("true")) fail("bad literal");
        return Value::make_bool(true);
      case 'f':
        if (!consume_literal("false")) fail("bad literal");
        return Value::make_bool(false);
      case 'n':
        if (!consume_literal("null")) fail("bad literal");
        return Value::make_null();
      default: return Value::make_number(parse_number());
    }
  }

  ValuePtr parse_object() {
    expect('{');
    Value::Object fields;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return Value::make_object(std::move(fields));
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      ValuePtr value = parse_value();
      if (!fields.emplace(std::move(key), std::move(value)).second) {
        fail("duplicate object key");
      }
      skip_ws();
      const char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == '}') {
        ++pos_;
        return Value::make_object(std::move(fields));
      }
      fail("expected ',' or '}' in object");
    }
  }

  ValuePtr parse_array() {
    expect('[');
    Value::Array items;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return Value::make_array(std::move(items));
    }
    while (true) {
      items.push_back(parse_value());
      skip_ws();
      const char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == ']') {
        ++pos_;
        return Value::make_array(std::move(items));
      }
      fail("expected ',' or ']' in array");
    }
  }

  std::string parse_string() {
    if (peek() != '"') fail("expected string");
    ++pos_;
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) {
        fail("unescaped control character in string");
      }
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            if (pos_ >= text_.size()) fail("truncated \\u escape");
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code += static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code += static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code += static_cast<unsigned>(h - 'A' + 10);
            } else {
              fail("bad hex digit in \\u escape");
            }
          }
          // UTF-8 encode the BMP code point; surrogate pairs are rejected
          // (the batch format is ASCII-clean in practice).
          if (code >= 0xD800 && code <= 0xDFFF) {
            fail("surrogate \\u escapes are not supported");
          }
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default: fail("bad escape character");
      }
    }
  }

  double parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    auto digits = [&] {
      std::size_t n = 0;
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
        ++n;
      }
      return n;
    };
    if (digits() == 0) fail("expected digits in number");
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      if (digits() == 0) fail("expected digits after decimal point");
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (digits() == 0) fail("expected digits in exponent");
    }
    double value = 0.0;
    const char* first = text_.data() + start;
    const char* last = text_.data() + pos_;
    const auto [ptr, ec] = std::from_chars(first, last, value);
    if (ec != std::errc() || ptr != last) fail("unparseable number");
    return value;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

ValuePtr parse(const std::string& text) {
  return Parser(text).parse_document();
}

std::string format_double(double d) {
  NC_REQUIRE_DOMAIN(std::isfinite(d),
                    "non-finite double cannot be serialized to JSON");
  char buf[64];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), d);
  NC_REQUIRE_INTERNAL(ec == std::errc(), "to_chars failed");
  return std::string(buf, ptr);
}

std::string quote(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  out.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
  return out;
}

}  // namespace nanocache::json
