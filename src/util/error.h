// Error handling for nanocache.
//
// The library throws nanocache::Error (derived from std::runtime_error) for
// all precondition and model-domain violations.  Every Error carries an
// ErrorCategory so callers (the CLI, the fault-injection harness, serving
// layers) can map failures to distinct recovery paths and exit codes
// without parsing message text.
//
// NC_REQUIRE is the standard argument-validation macro (category kConfig);
// the NC_REQUIRE_* variants attach the other categories.  All of them
// format the failed condition and a caller-supplied message into the
// exception text.
#pragma once

#include <stdexcept>
#include <string>

namespace nanocache {

/// Coarse failure taxonomy.  Categories are part of the public contract:
/// the CLI maps them to process exit codes and the fault-injection suite
/// asserts them, so pick the category by what the *caller* should do:
///   kConfig        - the request itself is malformed (bad sizes, ranges,
///                    steps, schemes); fix the inputs and retry.
///   kNumericDomain - an in-principle-valid request hit a numeric domain
///                    violation (NaN/Inf inputs, out-of-fit-domain knobs,
///                    overflowing exp, degenerate fits); recoverable by
///                    falling back to a more robust model path.
///   kIo            - filesystem / serialization failures (missing,
///                    truncated or corrupt trace/CSV files).
///   kInfeasible    - the request is well-formed but no solution satisfies
///                    its constraints (impossible delay/AMAT budgets).
///   kInternal      - invariant violations inside the library; a bug, not
///                    a user error.
enum class ErrorCategory {
  kConfig,
  kNumericDomain,
  kIo,
  kInfeasible,
  kInternal,
};

/// Stable lower-case name ("config", "numeric-domain", "io", "infeasible",
/// "internal") used in messages, reports and logs.
const char* category_name(ErrorCategory category);

/// Exception type thrown for all nanocache precondition/model violations.
class Error : public std::runtime_error {
 public:
  /// Uncategorized errors are internal: reaching one means a library
  /// invariant broke, not that the caller misused the API.
  explicit Error(const std::string& what)
      : Error(ErrorCategory::kInternal, what) {}

  Error(ErrorCategory category, const std::string& what);

  ErrorCategory category() const noexcept { return category_; }

 private:
  ErrorCategory category_;
};

namespace detail {
[[noreturn]] void throw_require_failure(ErrorCategory category,
                                        const char* condition,
                                        const char* file, int line,
                                        const std::string& message);
}  // namespace detail

}  // namespace nanocache

#define NC_REQUIRE_CAT_(category, cond, message)                          \
  do {                                                                    \
    if (!(cond)) {                                                        \
      ::nanocache::detail::throw_require_failure(                         \
          (category), #cond, __FILE__, __LINE__, (message));              \
    }                                                                     \
  } while (false)

/// Validate a precondition; throws nanocache::Error with context on
/// failure.  Plain NC_REQUIRE is for argument/configuration validation and
/// carries ErrorCategory::kConfig.
#define NC_REQUIRE(cond, message) \
  NC_REQUIRE_CAT_(::nanocache::ErrorCategory::kConfig, cond, message)

/// Category-explicit variants of NC_REQUIRE.
#define NC_REQUIRE_CONFIG(cond, message) \
  NC_REQUIRE_CAT_(::nanocache::ErrorCategory::kConfig, cond, message)
#define NC_REQUIRE_DOMAIN(cond, message) \
  NC_REQUIRE_CAT_(::nanocache::ErrorCategory::kNumericDomain, cond, message)
#define NC_REQUIRE_IO(cond, message) \
  NC_REQUIRE_CAT_(::nanocache::ErrorCategory::kIo, cond, message)
#define NC_REQUIRE_FEASIBLE(cond, message) \
  NC_REQUIRE_CAT_(::nanocache::ErrorCategory::kInfeasible, cond, message)
#define NC_REQUIRE_INTERNAL(cond, message) \
  NC_REQUIRE_CAT_(::nanocache::ErrorCategory::kInternal, cond, message)
