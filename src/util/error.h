// Error handling for nanocache.
//
// The library throws nanocache::Error (derived from std::runtime_error) for
// all precondition and model-domain violations.  NC_REQUIRE is the standard
// argument-validation macro; it formats the failed condition and a
// caller-supplied message into the exception text.
#pragma once

#include <stdexcept>
#include <string>

namespace nanocache {

/// Exception type thrown for all nanocache precondition/model violations.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
[[noreturn]] void throw_require_failure(const char* condition, const char* file,
                                        int line, const std::string& message);
}  // namespace detail

}  // namespace nanocache

/// Validate a precondition; throws nanocache::Error with context on failure.
#define NC_REQUIRE(cond, message)                                        \
  do {                                                                   \
    if (!(cond)) {                                                       \
      ::nanocache::detail::throw_require_failure(#cond, __FILE__,        \
                                                 __LINE__, (message));   \
    }                                                                    \
  } while (false)
