// Piecewise-linear interpolation over strictly increasing abscissa tables:
// 1-D (miss-rate-vs-size curves, calibration tables) and the 2-D tensor-
// product cell arithmetic the surrogate serving tier builds on.
#pragma once

#include <cstddef>
#include <vector>

namespace nanocache::math {

class LinearInterpolator {
 public:
  /// Construct from parallel (x, y) tables; x must be strictly increasing
  /// with at least two entries.  Throws nanocache::Error otherwise.
  LinearInterpolator(std::vector<double> x, std::vector<double> y);

  /// Evaluate at `x`; clamps to the end values outside the table range.
  double operator()(double x) const;

  double min_x() const { return x_.front(); }
  double max_x() const { return x_.back(); }
  std::size_t size() const { return x_.size(); }

 private:
  std::vector<double> x_;
  std::vector<double> y_;
};

/// Cell arithmetic of a rectilinear 2-D grid: locate the cell containing a
/// query point and bilinearly combine its four corner values.  The grid
/// stores only the axes; value storage stays with the caller (the surrogate
/// tables keep many metrics per lattice point), which is why interpolate()
/// takes the corner values explicitly.
class BilinearGrid {
 public:
  /// Both axes must be strictly increasing with at least two entries.
  /// Throws nanocache::Error otherwise.
  BilinearGrid(std::vector<double> x, std::vector<double> y);

  /// A located query point: lower-corner cell indices plus the fractional
  /// position inside the cell (in [0, 1] per axis).
  struct Cell {
    std::size_t ix = 0;
    std::size_t iy = 0;
    double tx = 0.0;
    double ty = 0.0;
  };

  /// True when (x, y) lies inside the grid's bounding box (inclusive).
  bool contains(double x, double y) const;

  /// Locate the cell containing (x, y).  Requires contains(x, y); points on
  /// the upper boundary land in the last cell with fraction exactly 1 so
  /// lattice points reproduce their stored values bit-for-bit.
  Cell locate(double x, double y) const;

  /// Bilinear combination of the four corner values of `cell`, ordered
  /// v(ix,iy), v(ix+1,iy), v(ix,iy+1), v(ix+1,iy+1).  Fractions of exactly
  /// 0 or 1 return corner values without arithmetic (bitwise-exact on the
  /// lattice).
  double interpolate(const Cell& cell, double v00, double v10, double v01,
                     double v11) const;

  const std::vector<double>& x() const { return x_; }
  const std::vector<double>& y() const { return y_; }

 private:
  std::vector<double> x_;
  std::vector<double> y_;
};

}  // namespace nanocache::math
