// 1-D piecewise-linear interpolation over a strictly increasing abscissa
// table.  Used for miss-rate-vs-size curves and calibration tables.
#pragma once

#include <vector>

namespace nanocache::math {

class LinearInterpolator {
 public:
  /// Construct from parallel (x, y) tables; x must be strictly increasing
  /// with at least two entries.  Throws nanocache::Error otherwise.
  LinearInterpolator(std::vector<double> x, std::vector<double> y);

  /// Evaluate at `x`; clamps to the end values outside the table range.
  double operator()(double x) const;

  double min_x() const { return x_.front(); }
  double max_x() const { return x_.back(); }
  std::size_t size() const { return x_.size(); }

 private:
  std::vector<double> x_;
  std::vector<double> y_;
};

}  // namespace nanocache::math
