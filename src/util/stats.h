// Small summary-statistics helpers shared by the variation analysis,
// interval recorder and tests.
#pragma once

#include <vector>

namespace nanocache::math {

double mean(const std::vector<double>& values);

/// Sample standard deviation (n-1 denominator); 0 for fewer than 2 values.
double sample_stddev(const std::vector<double>& values);

/// Percentile by nearest-rank on a copy of the data; `q` in [0, 1].
double percentile(std::vector<double> values, double q);

/// stddev / mean; 0 when the mean is non-positive or n < 2.
double coefficient_of_variation(const std::vector<double>& values);

}  // namespace nanocache::math
