#include "util/interp.h"

#include <algorithm>

#include "util/error.h"
#include "util/math.h"

namespace nanocache::math {

LinearInterpolator::LinearInterpolator(std::vector<double> x,
                                       std::vector<double> y)
    : x_(std::move(x)), y_(std::move(y)) {
  NC_REQUIRE(x_.size() == y_.size(), "interpolator table size mismatch");
  NC_REQUIRE(x_.size() >= 2, "interpolator needs >= 2 points");
  for (std::size_t i = 1; i < x_.size(); ++i) {
    NC_REQUIRE(x_[i] > x_[i - 1], "interpolator abscissa must increase");
  }
}

double LinearInterpolator::operator()(double x) const {
  if (x <= x_.front()) return y_.front();
  if (x >= x_.back()) return y_.back();
  const auto it = std::upper_bound(x_.begin(), x_.end(), x);
  const std::size_t hi = static_cast<std::size_t>(it - x_.begin());
  const std::size_t lo = hi - 1;
  const double t = (x - x_[lo]) / (x_[hi] - x_[lo]);
  return lerp(y_[lo], y_[hi], t);
}

namespace {

void require_axis(const std::vector<double>& axis, const char* name) {
  NC_REQUIRE(axis.size() >= 2, std::string("bilinear grid axis '") + name +
                                   "' needs >= 2 points");
  for (std::size_t i = 1; i < axis.size(); ++i) {
    NC_REQUIRE(axis[i] > axis[i - 1],
               std::string("bilinear grid axis '") + name +
                   "' must be strictly increasing");
  }
}

/// Lower cell index and in-cell fraction along one axis.  The upper
/// boundary maps to (last cell, fraction 1) so on-lattice queries stay
/// bitwise-exact through interpolate().
void locate_axis(const std::vector<double>& axis, double v, std::size_t* idx,
                 double* t) {
  if (v >= axis.back()) {
    *idx = axis.size() - 2;
    *t = 1.0;
    return;
  }
  const auto it = std::upper_bound(axis.begin(), axis.end(), v);
  const std::size_t hi =
      it == axis.begin() ? 1 : static_cast<std::size_t>(it - axis.begin());
  *idx = hi - 1;
  *t = (v - axis[*idx]) / (axis[hi] - axis[*idx]);
}

/// lerp() that returns the endpoints untouched at t == 0 / t == 1 (the
/// a + t*(b-a) form only guarantees that for t == 0).
double lerp_exact(double a, double b, double t) {
  if (t == 0.0) return a;
  if (t == 1.0) return b;
  return lerp(a, b, t);
}

}  // namespace

BilinearGrid::BilinearGrid(std::vector<double> x, std::vector<double> y)
    : x_(std::move(x)), y_(std::move(y)) {
  require_axis(x_, "x");
  require_axis(y_, "y");
}

bool BilinearGrid::contains(double x, double y) const {
  return x >= x_.front() && x <= x_.back() && y >= y_.front() &&
         y <= y_.back();
}

BilinearGrid::Cell BilinearGrid::locate(double x, double y) const {
  NC_REQUIRE(contains(x, y), "bilinear grid query out of range");
  Cell cell;
  locate_axis(x_, x, &cell.ix, &cell.tx);
  locate_axis(y_, y, &cell.iy, &cell.ty);
  return cell;
}

double BilinearGrid::interpolate(const Cell& cell, double v00, double v10,
                                 double v01, double v11) const {
  const double lo = lerp_exact(v00, v10, cell.tx);
  const double hi = lerp_exact(v01, v11, cell.tx);
  return lerp_exact(lo, hi, cell.ty);
}

}  // namespace nanocache::math
