#include "util/interp.h"

#include <algorithm>

#include "util/error.h"
#include "util/math.h"

namespace nanocache::math {

LinearInterpolator::LinearInterpolator(std::vector<double> x,
                                       std::vector<double> y)
    : x_(std::move(x)), y_(std::move(y)) {
  NC_REQUIRE(x_.size() == y_.size(), "interpolator table size mismatch");
  NC_REQUIRE(x_.size() >= 2, "interpolator needs >= 2 points");
  for (std::size_t i = 1; i < x_.size(); ++i) {
    NC_REQUIRE(x_[i] > x_[i - 1], "interpolator abscissa must increase");
  }
}

double LinearInterpolator::operator()(double x) const {
  if (x <= x_.front()) return y_.front();
  if (x >= x_.back()) return y_.back();
  const auto it = std::upper_bound(x_.begin(), x_.end(), x);
  const std::size_t hi = static_cast<std::size_t>(it - x_.begin());
  const std::size_t lo = hi - 1;
  const double t = (x - x_[lo]) / (x_[hi] - x_[lo]);
  return lerp(y_[lo], y_[hi], t);
}

}  // namespace nanocache::math
