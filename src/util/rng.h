// Deterministic, seedable random number generation for the workload
// generators.  SplitMix64 seeds an xoshiro256** core; both are tiny,
// reproducible across platforms, and fast enough for trace generation.
#pragma once

#include <cstdint>

namespace nanocache {

/// xoshiro256** PRNG with SplitMix64 seeding.  Deterministic for a given
/// seed on every platform; satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull) {
    std::uint64_t s = seed;
    for (auto& word : state_) {
      word = splitmix64(&s);
    }
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ull; }

  result_type operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform integer in [0, bound) for bound > 0 (Lemire's method).
  std::uint64_t below(std::uint64_t bound) {
    const auto x = (*this)();
    // 128-bit multiply-shift; bias is negligible for the trace lengths used.
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(x) * bound) >> 64);
  }

 private:
  static std::uint64_t splitmix64(std::uint64_t* s) {
    std::uint64_t z = (*s += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4];
};

}  // namespace nanocache
