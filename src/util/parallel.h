// Parallel execution engine for the exploration sweeps.
//
// The paper's experiments are embarrassingly parallel enumerations
// (Section 4 scheme grids, Section 5 size sweeps and menu tuples), so the
// engine is a chunked fork-join pool: `parallel_for` splits an index range
// into contiguous chunks which persistent worker threads claim from an
// atomic counter (chunked self-scheduling, the cheap cousin of work
// stealing).  The calling thread always participates, so `threads == 1`
// degrades to a plain serial loop with zero pool traffic.
//
// Determinism contract (what the reduction helpers guarantee):
//  * `parallel_map` writes result i from task i — output order is index
//    order regardless of thread count or chunk schedule.
//  * `parallel_reduce` chunks the range as a function of the range size
//    ONLY (never the thread count) and merges per-chunk partials in chunk
//    index order, so even non-associative merges (floating-point sums,
//    first-wins argmin) produce bit-identical results at any thread count.
//  * Nested calls are rejected: a `parallel_for` issued from inside a
//    worker runs inline and serially on that worker (no oversubscription,
//    no deadlock, and the task keeps exclusive use of any thread-local
//    state its caller installed).
//
// Error contract: the exception at the LOWEST failing index is captured
// via std::exception_ptr and rethrown on the calling thread after the
// region drains — exactly the error a serial loop would have hit first, so
// typed nanocache::Error values cross the pool with their ErrorCategory
// intact and the propagated error is byte-identical at any thread count.
// Work at indices above an already-recorded failure is cancelled (the
// serial loop would never have reached it); work below always runs to the
// failure, which is what makes the lowest-index guarantee exact rather
// than best-effort.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <type_traits>
#include <vector>

namespace nanocache::par {

/// Hardware concurrency, never less than 1.
int hardware_threads();

/// Set the process-wide default thread count used when a call site passes
/// `threads == 0`.  `n == 0` restores the built-in default (the
/// NANOCACHE_THREADS environment variable if set, else hardware
/// concurrency).  Throws Error(kConfig) for negative counts.
void set_default_threads(int n);

/// The resolved process-wide default thread count (>= 1).  Throws
/// Error(kConfig) when NANOCACHE_THREADS is set but malformed or outside
/// [1, 1024] — a bad explicit setting is surfaced, never silently replaced
/// by hardware concurrency.  (Counts above the pool's internal cap of 64
/// are valid and clamp to it.)
int default_threads();

/// True while the calling thread is executing inside a parallel region
/// (its own or one it joined as a worker).  Nested parallel calls made in
/// this state run serially inline.
bool in_parallel_region();

/// RAII guard forcing every parallel call issued from the current thread
/// to run serially for the guard's lifetime.  Used by code that needs a
/// deterministic single-threaded evaluation order (for example
/// degradation-event recording outside a buffered sweep).
class SerialRegionGuard {
 public:
  SerialRegionGuard();
  ~SerialRegionGuard();
  SerialRegionGuard(const SerialRegionGuard&) = delete;
  SerialRegionGuard& operator=(const SerialRegionGuard&) = delete;
};

/// Estimated total serial cost (ns) below which forking a region costs
/// more than it saves: regions with a non-zero cost hint whose estimated
/// total falls under this threshold run serially.  ~3 ms comfortably
/// covers pool wake/drain latency plus cross-core cache traffic.
inline constexpr std::uint64_t kSerialFallbackNs = 3'000'000;

namespace detail {

/// Type-erased region body: `invoke(ctx, i)` runs index i.  A raw function
/// pointer + context pointer instead of std::function keeps the per-index
/// dispatch to one indirect call with no allocation or virtual-table hop.
using RawBody = void (*)(void*, std::size_t);

/// Resolves `threads` in place (0 -> default_threads(), clamped to the
/// pool cap) and decides whether the region must run serially: single
/// thread, degenerate range, nested call, or an estimated total cost
/// (n * cost_hint_ns) under kSerialFallbackNs.
bool use_serial(std::size_t n, int& threads, std::uint64_t cost_hint_ns);

/// Bumps the parallel.serial_regions counter (cached reference inside).
void count_serial_region();

/// Parallel path: chunk [0, n) and run it on the pool.  Rethrows the
/// lowest-index failure.  May still fall back to a serial loop when the
/// chunking degenerates to a single chunk.
void run_region(std::size_t n, RawBody invoke, void* ctx, int threads,
                std::size_t chunk_size);

/// Chunk size for parallel_reduce: a function of the range size only, so
/// partial-result boundaries (and therefore merged results) are identical
/// at every thread count.
inline std::size_t reduce_chunk(std::size_t n) {
  const std::size_t chunk = (n + 255) / 256;  // at most 256 chunks
  return chunk == 0 ? 1 : chunk;
}

}  // namespace detail

/// Run `body(i)` for every i in [0, n), distributing contiguous chunks
/// over `threads` threads (0 = default_threads()).  `chunk_size == 0`
/// picks a balanced chunk automatically.  Runs serially when n < 2,
/// threads == 1, the caller is already inside a parallel region, or
/// `cost_hint_ns` (estimated serial cost per index, 0 = unknown) says the
/// whole region is cheaper than a pool round trip — the serial fallback
/// never changes results, only scheduling (see the determinism contract
/// above).  `body` is invoked through a per-region function pointer, not a
/// std::function, so lambdas run with zero per-index type-erasure cost.
template <typename Body>
void parallel_for(std::size_t n, Body&& body, int threads = 0,
                  std::size_t chunk_size = 0, std::uint64_t cost_hint_ns = 0) {
  if (n == 0) return;
  if (detail::use_serial(n, threads, cost_hint_ns)) {
    detail::count_serial_region();
    for (std::size_t i = 0; i < n; ++i) body(i);
    return;
  }
  using B = std::remove_reference_t<Body>;
  detail::run_region(
      n,
      [](void* ctx, std::size_t i) { (*static_cast<B*>(ctx))(i); },
      const_cast<void*>(
          static_cast<const void*>(std::addressof(body))),
      threads, chunk_size);
}

/// Map [0, n) through `fn`, returning results in index order.  The result
/// type must be default-constructible.
template <typename Fn>
auto parallel_map(std::size_t n, Fn&& fn, int threads = 0,
                  std::size_t chunk_size = 0, std::uint64_t cost_hint_ns = 0)
    -> std::vector<decltype(fn(std::size_t{}))> {
  std::vector<decltype(fn(std::size_t{}))> out(n);
  parallel_for(
      n, [&](std::size_t i) { out[i] = fn(i); }, threads, chunk_size,
      cost_hint_ns);
  return out;
}

/// Deterministic reduction: accumulate indices into per-chunk copies of
/// `identity` via `accumulate(acc, i)`, then fold the per-chunk partials
/// with `merge(into, from)` in chunk index order.  Chunk boundaries depend
/// only on `n`, so the result is bit-identical at any thread count even
/// for non-associative merges.
template <typename T, typename Accumulate, typename Merge>
T parallel_reduce(std::size_t n, T identity, Accumulate&& accumulate,
                  Merge&& merge, int threads = 0,
                  std::uint64_t cost_hint_ns = 0) {
  if (n == 0) return identity;
  const std::size_t chunk = detail::reduce_chunk(n);
  const std::size_t num_chunks = (n + chunk - 1) / chunk;
  std::vector<T> partials(num_chunks, identity);
  parallel_for(
      num_chunks,
      [&](std::size_t c) {
        const std::size_t lo = c * chunk;
        const std::size_t hi = lo + chunk < n ? lo + chunk : n;
        T& acc = partials[c];
        for (std::size_t i = lo; i < hi; ++i) accumulate(acc, i);
      },
      threads, /*chunk_size=*/1,
      // A chunk task costs `chunk` per-index units; the fallback compares
      // num_chunks * (chunk * hint) ~= n * hint, as intended.
      cost_hint_ns == 0 ? 0 : cost_hint_ns * chunk);
  T result = std::move(partials[0]);
  for (std::size_t c = 1; c < num_chunks; ++c) {
    merge(result, std::move(partials[c]));
  }
  return result;
}

}  // namespace nanocache::par
