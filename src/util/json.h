// Minimal JSON support shared by the batch API, server, and surrogate
// table I/O: a strict recursive-descent parser
// into a small value tree, plus deterministic number formatting for the
// writer side.  In-repo on purpose — the batch wire format must not pull in
// an external dependency (ISSUE 3 / container constraint), and the subset
// we need (RFC 8259 minus \u surrogate pairs collapsing to UTF-8) is small.
//
// Writer determinism: format_double uses std::to_chars shortest round-trip
// formatting, so equal doubles always serialize to equal bytes — the
// foundation of the batch byte-identity guarantee.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace nanocache::json {

class Value;
using ValuePtr = std::shared_ptr<const Value>;

enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

/// Immutable parsed JSON value.
class Value {
 public:
  using Array = std::vector<ValuePtr>;
  /// std::map: deterministic iteration order for canonicalization.
  using Object = std::map<std::string, ValuePtr>;

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  /// Typed accessors; throw nanocache::Error(kConfig) on type mismatch
  /// (a malformed request, not an internal bug).
  bool as_bool() const;
  double as_double() const;
  std::int64_t as_int() const;    ///< rejects non-integral numbers
  std::uint64_t as_uint() const;  ///< rejects negatives / non-integral
  const std::string& as_string() const;
  const Array& as_array() const;
  const Object& as_object() const;

  /// Object field lookup; nullptr when absent (or not an object).
  ValuePtr get(const std::string& key) const;

  static ValuePtr make_null();
  static ValuePtr make_bool(bool b);
  static ValuePtr make_number(double d);
  static ValuePtr make_string(std::string s);
  static ValuePtr make_array(Array a);
  static ValuePtr make_object(Object o);

 private:
  Value() = default;
  Type type_ = Type::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  Array array_;
  Object object_;
};

/// Parse one complete JSON document.  Throws nanocache::Error(kConfig)
/// with position context on malformed input or trailing garbage.
ValuePtr parse(const std::string& text);

/// Shortest round-trip decimal representation of `d` (std::to_chars).
/// NaN/Inf are rejected with Error(kNumericDomain) — they are not JSON.
std::string format_double(double d);

/// JSON string literal (quotes + escapes) for `s`.
std::string quote(const std::string& s);

}  // namespace nanocache::json
