#include "util/table.h"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

namespace nanocache {

void TextTable::set_header(std::vector<std::string> header) {
  header_ = std::move(header);
}

void TextTable::add_row(std::vector<std::string> row) {
  rows_.push_back(std::move(row));
}

namespace {

std::vector<std::size_t> column_widths(
    const std::vector<std::string>& header,
    const std::vector<std::vector<std::string>>& rows) {
  std::size_t ncols = header.size();
  for (const auto& r : rows) ncols = std::max(ncols, r.size());
  std::vector<std::size_t> widths(ncols, 0);
  for (std::size_t i = 0; i < header.size(); ++i) {
    widths[i] = std::max(widths[i], header[i].size());
  }
  for (const auto& r : rows) {
    for (std::size_t i = 0; i < r.size(); ++i) {
      widths[i] = std::max(widths[i], r[i].size());
    }
  }
  return widths;
}

void render_row(std::ostream& os, const std::vector<std::string>& row,
                const std::vector<std::size_t>& widths) {
  os << "|";
  for (std::size_t i = 0; i < widths.size(); ++i) {
    const std::string& cell = i < row.size() ? row[i] : std::string{};
    os << ' ' << std::left << std::setw(static_cast<int>(widths[i])) << cell
       << " |";
  }
  os << '\n';
}

void render_rule(std::ostream& os, const std::vector<std::size_t>& widths) {
  os << "+";
  for (std::size_t w : widths) {
    os << std::string(w + 2, '-') << '+';
  }
  os << '\n';
}

std::string csv_escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string out = "\"";
  for (char c : cell) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace

std::string TextTable::to_string() const {
  std::ostringstream os;
  if (!title_.empty()) os << "== " << title_ << " ==\n";
  const auto widths = column_widths(header_, rows_);
  if (widths.empty()) return os.str();
  render_rule(os, widths);
  if (!header_.empty()) {
    render_row(os, header_, widths);
    render_rule(os, widths);
  }
  for (const auto& r : rows_) render_row(os, r, widths);
  render_rule(os, widths);
  return os.str();
}

std::string TextTable::to_csv() const {
  std::ostringstream os;
  auto emit = [&os](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i) os << ',';
      os << csv_escape(row[i]);
    }
    os << '\n';
  };
  if (!header_.empty()) emit(header_);
  for (const auto& r : rows_) emit(r);
  return os.str();
}

std::string fmt_fixed(double value, int digits) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(digits) << value;
  return os.str();
}

std::string fmt_bytes(unsigned long long bytes) {
  if (bytes >= 1024ull * 1024ull && bytes % (1024ull * 1024ull) == 0) {
    return std::to_string(bytes / (1024ull * 1024ull)) + "MB";
  }
  if (bytes >= 1024ull && bytes % 1024ull == 0) {
    return std::to_string(bytes / 1024ull) + "KB";
  }
  return std::to_string(bytes) + "B";
}

std::ostream& operator<<(std::ostream& os, const TextTable& table) {
  return os << table.to_string();
}

}  // namespace nanocache
