// Plain-text table and CSV emission used by the bench harness and examples.
// Benches print the same rows/series the paper's tables and figures report;
// this keeps that formatting in one place.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace nanocache {

/// Column-aligned text table with an optional title.  Cells are strings;
/// numeric helpers format with fixed precision.
class TextTable {
 public:
  explicit TextTable(std::string title = {}) : title_(std::move(title)) {}

  /// Set the header row; resets nothing else.
  void set_header(std::vector<std::string> header);

  /// Append a fully formed row.  Rows may be ragged; rendering pads.
  void add_row(std::vector<std::string> row);

  /// Render with ASCII rules and column alignment.
  std::string to_string() const;

  /// Render as RFC-4180-ish CSV (quotes cells containing comma/quote/newline).
  std::string to_csv() const;

  std::size_t row_count() const { return rows_.size(); }
  const std::string& title() const { return title_; }

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Format a double with `digits` digits after the decimal point.
std::string fmt_fixed(double value, int digits);

/// Format a byte count as "16KB" / "2MB" style.
std::string fmt_bytes(unsigned long long bytes);

std::ostream& operator<<(std::ostream& os, const TextTable& table);

}  // namespace nanocache
