#include "util/parallel.h"

#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <exception>
#include <limits>
#include <mutex>
#include <string>
#include <thread>

#include "util/error.h"
#include "util/metrics.h"

namespace nanocache::par {

namespace {

std::atomic<int> g_default_threads{0};  // 0 = unset, fall through to env/hw
thread_local int tl_region_depth = 0;
/// Pool worker index of the current thread (0 = a caller thread), for the
/// per-worker chunk-claim counters.
thread_local int tl_worker_id = 0;

metrics::Counter& worker_chunk_counter() {
  // One counter per worker identity.  Worker ids are dense and small
  // (<= kMaxThreads), so the name set is bounded; the reference is cached
  // per thread so steady state is one atomic add per claim.
  thread_local metrics::Counter* counter =
      &metrics::Registry::instance().counter(
          "parallel.worker." + std::to_string(tl_worker_id) +
          ".chunks_claimed");
  return *counter;
}

int env_threads() {
  const char* s = std::getenv("NANOCACHE_THREADS");
  if (s == nullptr || *s == '\0') return 0;
  char* end = nullptr;
  const long v = std::strtol(s, &end, 10);
  NC_REQUIRE(end != s && *end == '\0',
             "NANOCACHE_THREADS must be an integer thread count, got '" +
                 std::string(s) + "'");
  NC_REQUIRE(v >= 1 && v <= 1024,
             "NANOCACHE_THREADS must be in [1, 1024], got '" + std::string(s) +
                 "'");
  return static_cast<int>(v);
}

/// One fork-join region: workers claim chunks from `next` until the range
/// drains or a chunk fails.
///
/// Error determinism: `error_bound` is the lowest failing index recorded so
/// far (SIZE_MAX while none).  Workers stop claiming chunks that start at
/// or above the bound and break out of a running chunk when they reach it.
/// A chunk's indices all lie below the start of every later chunk, so a
/// chunk can only be cancelled at indices the serial loop would never have
/// reached — the chunk containing the globally lowest failing index always
/// runs up to and records it, and the propagated error is byte-identical
/// to the serial run at any thread count.
struct Region {
  std::size_t n = 0;
  std::size_t chunk = 1;
  std::size_t num_chunks = 0;
  detail::RawBody invoke = nullptr;
  void* ctx = nullptr;

  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> error_bound{
      std::numeric_limits<std::size_t>::max()};
  std::mutex error_mutex;
  std::exception_ptr error;
  std::size_t error_index = std::numeric_limits<std::size_t>::max();

  void record_failure(std::size_t i) {
    {
      std::lock_guard<std::mutex> lock(error_mutex);
      if (i < error_index) {
        error_index = i;
        error = std::current_exception();
      }
    }
    std::size_t cur = error_bound.load(std::memory_order_relaxed);
    while (i < cur && !error_bound.compare_exchange_weak(
                          cur, i, std::memory_order_relaxed)) {
    }
  }

  void run_chunks() {
    auto& chunks_claimed = worker_chunk_counter();
    for (;;) {
      const std::size_t c = next.fetch_add(1, std::memory_order_relaxed);
      if (c >= num_chunks) return;
      const std::size_t lo = c * chunk;
      // Every index of this chunk is at or above an already-recorded
      // failure: the serial loop would have stopped before reaching it.
      if (lo >= error_bound.load(std::memory_order_relaxed)) return;
      chunks_claimed.add(1);
      const std::size_t hi = lo + chunk < n ? lo + chunk : n;
      for (std::size_t i = lo; i < hi; ++i) {
        if (i >= error_bound.load(std::memory_order_relaxed)) break;
        try {
          invoke(ctx, i);
        } catch (...) {
          record_failure(i);
          // Every unclaimed chunk starts above i; nothing left to do.
          return;
        }
      }
    }
  }
};

/// Persistent worker pool.  Workers sleep on a condition variable and join
/// the active region when one is published; the spawning thread always
/// participates and waits for every joined worker to leave before the
/// region object (stack-allocated in parallel_for) dies.
class Pool {
 public:
  static Pool& instance() {
    static Pool pool;
    return pool;
  }

  void run(Region& region, int threads) {
    // One region at a time: concurrent top-level calls from distinct user
    // threads serialize here instead of clobbering region_.
    std::lock_guard<std::mutex> run_lock(run_mutex_);
    ensure_workers(threads - 1);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      region_ = &region;
      active_ = 0;
      ++generation_;
    }
    work_cv_.notify_all();
    ++tl_region_depth;
    region.run_chunks();
    --tl_region_depth;
    std::unique_lock<std::mutex> lock(mutex_);
    region_ = nullptr;  // late wakers must not join a drained region
    done_cv_.wait(lock, [&] { return active_ == 0; });
  }

  ~Pool() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      shutdown_ = true;
    }
    work_cv_.notify_all();
    for (auto& w : workers_) w.join();
  }

 private:
  Pool() = default;

  void ensure_workers(int needed) {
    std::lock_guard<std::mutex> lock(mutex_);
    while (static_cast<int>(workers_.size()) < needed) {
      const int worker_id = static_cast<int>(workers_.size()) + 1;
      workers_.emplace_back([this, worker_id] {
        tl_worker_id = worker_id;
        worker_loop();
      });
    }
  }

  void worker_loop() {
    std::uint64_t seen = 0;
    for (;;) {
      Region* region = nullptr;
      {
        std::unique_lock<std::mutex> lock(mutex_);
        work_cv_.wait(lock,
                      [&] { return shutdown_ || generation_ != seen; });
        if (shutdown_) return;
        seen = generation_;
        if (region_ == nullptr) continue;  // region already drained
        region = region_;
        ++active_;
      }
      ++tl_region_depth;
      region->run_chunks();
      --tl_region_depth;
      {
        std::lock_guard<std::mutex> lock(mutex_);
        --active_;
      }
      done_cv_.notify_all();
    }
  }

  std::mutex run_mutex_;  // serializes top-level regions
  std::mutex mutex_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  std::vector<std::thread> workers_;
  Region* region_ = nullptr;  // guarded by mutex_
  int active_ = 0;            // workers currently inside region_
  std::uint64_t generation_ = 0;
  bool shutdown_ = false;
};

constexpr int kMaxThreads = 64;

}  // namespace

int hardware_threads() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<int>(n);
}

void set_default_threads(int n) {
  NC_REQUIRE(n >= 0, "thread count must be >= 0 (0 restores the default)");
  g_default_threads.store(n > kMaxThreads ? kMaxThreads : n,
                          std::memory_order_relaxed);
}

int default_threads() {
  const int n = g_default_threads.load(std::memory_order_relaxed);
  if (n > 0) return n;
  const int e = env_threads();
  if (e > 0) return e > kMaxThreads ? kMaxThreads : e;
  return hardware_threads();
}

bool in_parallel_region() { return tl_region_depth > 0; }

SerialRegionGuard::SerialRegionGuard() { ++tl_region_depth; }
SerialRegionGuard::~SerialRegionGuard() { --tl_region_depth; }

namespace detail {

bool use_serial(std::size_t n, int& threads, std::uint64_t cost_hint_ns) {
  if (threads == 0) threads = default_threads();
  NC_REQUIRE(threads >= 1, "parallel_for thread count must be >= 1");
  if (threads > kMaxThreads) threads = kMaxThreads;
  // Serial paths: single thread requested, a degenerate range, a nested
  // call from inside a worker (rejected from parallelism, run inline), or
  // an estimated total cost too small to amortize a pool round trip.
  if (threads == 1 || n == 1 || tl_region_depth > 0) return true;
  return cost_hint_ns > 0 && n <= kSerialFallbackNs / cost_hint_ns;
}

void count_serial_region() {
  static auto& serial_regions =
      metrics::Registry::instance().counter("parallel.serial_regions");
  serial_regions.add(1);
}

void run_region(std::size_t n, RawBody invoke, void* ctx, int threads,
                std::size_t chunk_size) {
  Region region;
  region.n = n;
  if (chunk_size == 0) {
    // ~4 chunks per thread for balance without excessive claim traffic.
    chunk_size = n / (static_cast<std::size_t>(threads) * 4);
    if (chunk_size == 0) chunk_size = 1;
  }
  region.chunk = chunk_size;
  region.num_chunks = (n + chunk_size - 1) / chunk_size;
  region.invoke = invoke;
  region.ctx = ctx;

  if (region.num_chunks < 2) {
    count_serial_region();
    for (std::size_t i = 0; i < n; ++i) invoke(ctx, i);
    return;
  }

  const int workers =
      region.num_chunks < static_cast<std::size_t>(threads)
          ? static_cast<int>(region.num_chunks)
          : threads;
  {
    auto& registry = metrics::Registry::instance();
    static auto& regions = registry.counter("parallel.regions");
    static auto& fanout = registry.histogram("parallel.region_fanout");
    static auto& peak_fanout = registry.gauge("parallel.peak_fanout");
    regions.add(1);
    fanout.observe(static_cast<std::uint64_t>(workers));
    peak_fanout.record_max(workers);
  }
  Pool::instance().run(region, workers);
  if (region.error) std::rethrow_exception(region.error);
}

}  // namespace detail

}  // namespace nanocache::par
