// Lightweight RAII phase tracing on top of util/metrics.h.
//
// A TraceSpan marks one phase of work on the current thread: construction
// records the begin timestamp and pushes the span onto a thread-local stack
// (so nesting gives parent-child structure for free — including across the
// fork-join pool, where a worker's spans simply root at depth 0 on that
// worker).  Destruction pops the stack, folds the duration into the
// registry's per-phase aggregates under the span NAME (names are stable
// across thread counts; paths are not, because a span issued from a pool
// worker has no parent there), and appends a full record — name, parent,
// depth, thread id, begin/duration — to a bounded ring buffer for export.
//
// Cost: two steady_clock reads plus one short mutex section per span.
// Spans are phase-granular (a sweep, a request, a batch), never
// per-grid-point — counters cover the hot paths.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

namespace nanocache::metrics {

/// One finished span, as exported by recent_spans().
struct SpanRecord {
  std::string name;
  std::string parent;  ///< enclosing span's name; empty at depth 0
  std::uint32_t depth = 0;
  std::uint64_t thread_id = 0;  ///< hashed std::thread::id
  std::uint64_t start_ns = 0;   ///< since the process trace epoch
  std::uint64_t duration_ns = 0;
};

class TraceSpan {
 public:
  explicit TraceSpan(std::string name);
  ~TraceSpan();
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  /// Innermost active span on the calling thread (nullptr outside spans).
  static const TraceSpan* current();

  const std::string& name() const { return name_; }
  std::uint32_t depth() const { return depth_; }

 private:
  std::string name_;
  std::chrono::steady_clock::time_point start_;
  TraceSpan* parent_;
  std::uint32_t depth_;
};

/// Copy of the most recent finished spans (bounded ring, newest last).
std::vector<SpanRecord> recent_spans();

/// Capacity of the finished-span ring buffer.
std::size_t span_buffer_capacity();

/// Drop all buffered span records (reset() on the registry does not —
/// spans and metrics are separate sinks).
void clear_spans();

}  // namespace nanocache::metrics
