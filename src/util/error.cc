#include "util/error.h"

#include <sstream>

namespace nanocache::detail {

void throw_require_failure(const char* condition, const char* file, int line,
                           const std::string& message) {
  std::ostringstream os;
  os << "nanocache precondition failed: " << message << " [" << condition
     << "] at " << file << ":" << line;
  throw Error(os.str());
}

}  // namespace nanocache::detail
