#include "util/error.h"

#include <sstream>

namespace nanocache {

const char* category_name(ErrorCategory category) {
  switch (category) {
    case ErrorCategory::kConfig:
      return "config";
    case ErrorCategory::kNumericDomain:
      return "numeric-domain";
    case ErrorCategory::kIo:
      return "io";
    case ErrorCategory::kInfeasible:
      return "infeasible";
    case ErrorCategory::kInternal:
      return "internal";
  }
  return "internal";
}

Error::Error(ErrorCategory category, const std::string& what)
    : std::runtime_error("[" + std::string(category_name(category)) + "] " +
                         what),
      category_(category) {}

namespace detail {

void throw_require_failure(ErrorCategory category, const char* condition,
                           const char* file, int line,
                           const std::string& message) {
  std::ostringstream os;
  os << "nanocache precondition failed: " << message << " [" << condition
     << "] at " << file << ":" << line;
  throw Error(category, os.str());
}

}  // namespace detail
}  // namespace nanocache
