#include "util/trace_span.h"

#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <utility>

#include "util/metrics.h"

namespace nanocache::metrics {

namespace {

constexpr std::size_t kSpanBufferCapacity = 1024;

thread_local TraceSpan* tl_active_span = nullptr;

std::mutex& span_mutex() {
  static std::mutex m;
  return m;
}

std::deque<SpanRecord>& span_buffer() {
  static std::deque<SpanRecord> buffer;
  return buffer;
}

/// Process trace epoch: the steady-clock instant of the first span, so
/// exported start offsets are small and monotone.
std::chrono::steady_clock::time_point trace_epoch() {
  static const auto epoch = std::chrono::steady_clock::now();
  return epoch;
}

std::uint64_t this_thread_id() {
  return static_cast<std::uint64_t>(
      std::hash<std::thread::id>{}(std::this_thread::get_id()));
}

}  // namespace

TraceSpan::TraceSpan(std::string name)
    : name_(std::move(name)),
      parent_(tl_active_span),
      depth_(tl_active_span == nullptr ? 0 : tl_active_span->depth_ + 1) {
  trace_epoch();  // pin the epoch no later than the first span's start
  start_ = std::chrono::steady_clock::now();
  tl_active_span = this;
}

TraceSpan::~TraceSpan() {
  const auto end = std::chrono::steady_clock::now();
  tl_active_span = parent_;

  SpanRecord record;
  record.name = name_;
  if (parent_ != nullptr) record.parent = parent_->name_;
  record.depth = depth_;
  record.thread_id = this_thread_id();
  record.start_ns = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(start_ -
                                                           trace_epoch())
          .count());
  record.duration_ns = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(end - start_)
          .count());

  Registry::instance().record_phase(name_, record.duration_ns);
  std::lock_guard<std::mutex> lock(span_mutex());
  auto& buffer = span_buffer();
  if (buffer.size() >= kSpanBufferCapacity) buffer.pop_front();
  buffer.push_back(std::move(record));
}

const TraceSpan* TraceSpan::current() { return tl_active_span; }

std::vector<SpanRecord> recent_spans() {
  std::lock_guard<std::mutex> lock(span_mutex());
  const auto& buffer = span_buffer();
  return std::vector<SpanRecord>(buffer.begin(), buffer.end());
}

std::size_t span_buffer_capacity() { return kSpanBufferCapacity; }

void clear_spans() {
  std::lock_guard<std::mutex> lock(span_mutex());
  span_buffer().clear();
}

}  // namespace nanocache::metrics
