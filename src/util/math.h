// Small numerical toolbox: dense linear least squares, the
// exponential-plus-constant fits used by the paper's closed-form models,
// and goodness-of-fit statistics.
#pragma once

#include <cstddef>
#include <vector>

namespace nanocache::math {

/// Solve the square linear system A x = b by Gaussian elimination with
/// partial pivoting.  A is row-major n*n.  Throws nanocache::Error if the
/// system is singular (pivot below 1e-300).
std::vector<double> solve_linear_system(std::vector<double> a,
                                        std::vector<double> b);

/// Ordinary least squares: find beta minimizing ||X beta - y||_2 where X is
/// row-major with `cols` columns.  Solved via the normal equations, which is
/// ample for the small, well-conditioned design matrices used here.
std::vector<double> least_squares(const std::vector<double>& x_rowmajor,
                                  std::size_t cols,
                                  const std::vector<double>& y);

/// Coefficient of determination of predictions vs observations.
double r_squared(const std::vector<double>& observed,
                 const std::vector<double>& predicted);

/// Result of fitting y = c0 + c1 * exp(rate * x).
struct ExpFit {
  double c0 = 0.0;
  double c1 = 0.0;
  double rate = 0.0;
  double r2 = 0.0;

  double operator()(double x) const;
};

/// Fit y = c0 + c1 * exp(rate * x) by scanning `rate` over
/// [rate_lo, rate_hi] (grid of `steps` points, then golden-section refine)
/// and solving the inner linear problem in (c0, c1) by least squares.
/// Deterministic and robust for the monotone device curves fitted here.
ExpFit fit_exponential(const std::vector<double>& x,
                       const std::vector<double>& y, double rate_lo,
                       double rate_hi, int steps = 200);

/// Result of fitting y = c0 + c1 * exp(r1 * x1) + c2 * exp(r2 * x2), the
/// two-variable separable form of the paper's leakage model (Eq. 1).
struct SeparableExpFit {
  double c0 = 0.0;
  double c1 = 0.0;
  double r1 = 0.0;
  double c2 = 0.0;
  double r2 = 0.0;
  double r2_score = 0.0;

  double operator()(double x1, double x2) const;
};

/// Fit the separable double-exponential above over paired samples
/// (x1[i], x2[i]) -> y[i].  Rates are scanned on grids; coefficients come
/// from the inner least-squares solve.
SeparableExpFit fit_separable_exponentials(
    const std::vector<double>& x1, const std::vector<double>& x2,
    const std::vector<double>& y, double r1_lo, double r1_hi, double r2_lo,
    double r2_hi, int steps = 60);

/// Result of fitting y = c0 + c1 * exp(rate * x1) + c2 * x2, the paper's
/// delay model form (Eq. 2): exponential in Vth, linear in Tox.
struct ExpLinearFit {
  double c0 = 0.0;
  double c1 = 0.0;
  double rate = 0.0;
  double c2 = 0.0;
  double r2_score = 0.0;

  double operator()(double x1, double x2) const;
};

ExpLinearFit fit_exp_linear(const std::vector<double>& x1,
                            const std::vector<double>& x2,
                            const std::vector<double>& y, double rate_lo,
                            double rate_hi, int steps = 200);

/// Fit y = c * x^p (power law) via least squares in log-log space.
/// All x and y must be strictly positive.
struct PowerLawFit {
  double scale = 0.0;
  double exponent = 0.0;
  double r2_log = 0.0;

  double operator()(double x) const;
};

PowerLawFit fit_power_law(const std::vector<double>& x,
                          const std::vector<double>& y);

/// Numerically robust linear interpolation helper: clamps outside the table.
double lerp(double a, double b, double t);

}  // namespace nanocache::math
