#include "util/hash.h"

#include <cstdint>

namespace nanocache {

std::string fnv1a64_hex(std::string_view s) {
  std::uint64_t h = 14695981039346656037ull;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  char buf[17];
  static const char* hex = "0123456789abcdef";
  for (int i = 15; i >= 0; --i) {
    buf[15 - i] = hex[(h >> (i * 4)) & 0xF];
  }
  buf[16] = '\0';
  return std::string(buf);
}

}  // namespace nanocache
