// Unit conventions used throughout nanocache.
//
// The library computes in a fixed internal unit system; conversion to the
// units the paper plots in (mW, pS, pJ, Angstrom) happens only at the
// reporting boundary via the helpers below.
//
//   quantity      internal unit   rationale
//   -----------   -------------   ---------------------------------------
//   voltage       V
//   current       A
//   power         W
//   energy        J
//   time          s
//   capacitance   F
//   resistance    Ohm
//   length        um              device/wire geometry is micron-scale
//   area          um^2
//   oxide Tox     Angstrom        the paper's knob is quoted in Angstrom
//
#pragma once

namespace nanocache::units {

// --- physical constants -------------------------------------------------

/// Boltzmann constant over elementary charge, V/K.
inline constexpr double kBoltzmannOverQ = 8.617333262e-5;

/// Permittivity of SiO2, F/m (3.9 * eps0).
inline constexpr double kEpsOxide = 3.9 * 8.8541878128e-12;

/// Thermal voltage kT/q at a given temperature (Kelvin), in volts.
constexpr double thermal_voltage(double temperature_k) {
  return kBoltzmannOverQ * temperature_k;
}

// --- conversions to reporting units --------------------------------------

constexpr double watts_to_mw(double w) { return w * 1e3; }
constexpr double watts_to_uw(double w) { return w * 1e6; }
constexpr double seconds_to_ps(double s) { return s * 1e12; }
constexpr double seconds_to_ns(double s) { return s * 1e9; }
constexpr double joules_to_pj(double j) { return j * 1e12; }
constexpr double joules_to_nj(double j) { return j * 1e9; }
constexpr double farads_to_ff(double f) { return f * 1e15; }

constexpr double mw_to_watts(double mw) { return mw * 1e-3; }
constexpr double ps_to_seconds(double ps) { return ps * 1e-12; }
constexpr double ns_to_seconds(double ns) { return ns * 1e-9; }
constexpr double pj_to_joules(double pj) { return pj * 1e-12; }
constexpr double nj_to_joules(double nj) { return nj * 1e-9; }
constexpr double ff_to_farads(double ff) { return ff * 1e-15; }

/// Oxide capacitance per unit area for a given oxide thickness, F/um^2.
/// Tox is in Angstrom (1 A = 1e-10 m); result converted from F/m^2 to F/um^2.
constexpr double cox_per_um2(double tox_angstrom) {
  const double tox_m = tox_angstrom * 1e-10;
  return kEpsOxide / tox_m * 1e-12;  // F/m^2 -> F/um^2
}

// --- size helpers ---------------------------------------------------------

inline constexpr unsigned long long kKiB = 1024ull;
inline constexpr unsigned long long kMiB = 1024ull * 1024ull;

}  // namespace nanocache::units
