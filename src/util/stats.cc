#include "util/stats.h"

#include <algorithm>
#include <cmath>

#include "util/error.h"

namespace nanocache::math {

double mean(const std::vector<double>& values) {
  NC_REQUIRE(!values.empty(), "mean of empty sample");
  double sum = 0.0;
  for (double v : values) sum += v;
  return sum / static_cast<double>(values.size());
}

double sample_stddev(const std::vector<double>& values) {
  if (values.size() < 2) return 0.0;
  const double m = mean(values);
  double ss = 0.0;
  for (double v : values) ss += (v - m) * (v - m);
  return std::sqrt(ss / static_cast<double>(values.size() - 1));
}

double percentile(std::vector<double> values, double q) {
  NC_REQUIRE(!values.empty(), "percentile of empty sample");
  NC_REQUIRE(q >= 0.0 && q <= 1.0, "percentile q must be in [0,1]");
  std::sort(values.begin(), values.end());
  const auto idx =
      static_cast<std::size_t>(q * static_cast<double>(values.size() - 1));
  return values[idx];
}

double coefficient_of_variation(const std::vector<double>& values) {
  if (values.size() < 2) return 0.0;
  const double m = mean(values);
  if (m <= 0.0) return 0.0;
  return sample_stddev(values) / m;
}

}  // namespace nanocache::math
