// Process-wide metrics registry: named counters, gauges, and fixed-layout
// histograms, plus per-phase wall-time aggregates fed by util/trace_span.h.
//
// Design constraints (this registry sits UNDER the fork-join pool, so sweep
// workers hammer it concurrently):
//  * Increments are lock-free atomics.  The registry mutex is taken only to
//    resolve a name to a metric; hot call sites cache the returned reference
//    in a function-local static, so steady state is one relaxed atomic op.
//  * References returned by counter()/gauge()/histogram() stay valid for the
//    process lifetime — metrics are registered, never erased.  reset() zeroes
//    values in place precisely so cached references survive it.
//  * Snapshots use std::map, so JSON export (src/api/metrics_json.cc) emits
//    keys in a deterministic order.  The VALUES are timing- and
//    scheduling-dependent by nature; nothing here may ever feed back into
//    computation results.  Metrics are observability, excluded from the
//    batch byte-identity contract (docs/API.md).
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>

namespace nanocache::metrics {

/// Monotonic event count.  Padded to a cache line so adjacent metrics in
/// the registry's node storage never false-share under parallel sweeps.
class alignas(64) Counter {
 public:
  void add(std::uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-set level (queue depths, fan-outs).  `record_max` keeps the high
/// watermark instead of the latest value.
class alignas(64) Gauge {
 public:
  void set(std::int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void add(std::int64_t d) { value_.fetch_add(d, std::memory_order_relaxed); }
  void record_max(std::int64_t v) {
    std::int64_t cur = value_.load(std::memory_order_relaxed);
    while (v > cur &&
           !value_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }
  std::int64_t value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Histogram over non-negative integer observations (latencies in µs,
/// sizes, ...).  Every histogram shares one fixed bucket layout — powers of
/// two: bucket b counts observations v with v <= 2^b, the last bucket is
/// the overflow — so snapshots from different runs and different metrics
/// are structurally comparable.
class alignas(64) Histogram {
 public:
  static constexpr std::size_t kBuckets = 28;  // le 1, 2, 4, ... 2^26, +inf

  /// Upper bound of bucket `b` (the overflow bucket has no finite bound).
  static std::uint64_t bucket_bound(std::size_t b) { return 1ull << b; }

  /// Index of the bucket counting `v`.
  static std::size_t bucket_for(std::uint64_t v);

  void observe(std::uint64_t v);

  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  std::uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  std::uint64_t bucket(std::size_t b) const {
    return buckets_[b].load(std::memory_order_relaxed);
  }
  void reset();

 private:
  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
};

struct HistogramSnapshot {
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::array<std::uint64_t, Histogram::kBuckets> buckets{};
};

/// Aggregated wall time of one named phase (all spans with that name).
struct PhaseSnapshot {
  std::uint64_t count = 0;
  std::uint64_t total_ns = 0;
  std::uint64_t max_ns = 0;
};

/// Point-in-time copy of every registered metric, keyed in sorted order.
struct MetricsSnapshot {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, std::int64_t> gauges;
  std::map<std::string, HistogramSnapshot> histograms;
  std::map<std::string, PhaseSnapshot> phases;
};

class Registry {
 public:
  static Registry& instance();

  /// Resolve (registering on first use) a metric by name.  The returned
  /// reference is valid for the process lifetime; cache it in a static at
  /// hot call sites.
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);

  /// Fold one finished span into the per-phase aggregates (called by
  /// TraceSpan's destructor; spans end at phase granularity, so a mutex
  /// here is cheap).
  void record_phase(const std::string& name, std::uint64_t duration_ns);

  MetricsSnapshot snapshot() const;

  /// Zero every metric in place (names stay registered, references stay
  /// valid) and drop the phase aggregates.  For tests and benchmarks that
  /// want a per-run snapshot out of the process-wide registry.
  void reset();

 private:
  Registry() = default;

  mutable std::mutex mutex_;
  // std::map: node stability guarantees the references handed out above.
  std::map<std::string, Counter> counters_;
  std::map<std::string, Gauge> gauges_;
  std::map<std::string, Histogram> histograms_;
  std::map<std::string, PhaseSnapshot> phases_;
};

}  // namespace nanocache::metrics
