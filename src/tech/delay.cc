#include "tech/delay.h"

#include <algorithm>
#include <cmath>

#include "util/error.h"

namespace nanocache::tech {

double horowitz(double input_ramp_s, double tf_s, double switching_v_frac,
                double gain_b) {
  NC_REQUIRE(tf_s >= 0.0, "time constant must be non-negative");
  NC_REQUIRE(switching_v_frac > 0.0 && switching_v_frac < 1.0,
             "switching threshold must be inside (0,1)");
  if (tf_s == 0.0) return 0.0;
  if (input_ramp_s <= 0.0) {
    return 0.69 * tf_s;  // step input: plain RC response
  }
  const double a = input_ramp_s / tf_s;
  const double lnv = std::log(switching_v_frac);
  return tf_s *
         std::sqrt(lnv * lnv + 2.0 * a * gain_b * (1.0 - switching_v_frac));
}

StageDelay gate_stage(double r_drive_ohm, double c_load_f,
                      double input_ramp_s) {
  NC_REQUIRE(r_drive_ohm >= 0.0 && c_load_f >= 0.0,
             "stage parameters must be non-negative");
  const double tf = r_drive_ohm * c_load_f;
  StageDelay out;
  out.delay_s = horowitz(input_ramp_s, tf, 0.5);
  out.out_ramp_s = 2.2 * tf;  // 10-90% transition of an RC stage
  return out;
}

double distributed_rc_delay(double r_drive_ohm, double r_wire_ohm,
                            double c_wire_f, double c_end_f) {
  NC_REQUIRE(r_drive_ohm >= 0.0 && r_wire_ohm >= 0.0 && c_wire_f >= 0.0 &&
                 c_end_f >= 0.0,
             "RC parameters must be non-negative");
  // Elmore: driver sees all capacitance; the wire's own resistance sees half
  // of its distributed capacitance plus the end load.
  return 0.69 * (r_drive_ohm * (c_wire_f + c_end_f) +
                 r_wire_ohm * (0.5 * c_wire_f + c_end_f));
}

namespace {

// One implementation per primitive, templated over the bound-device view
// (DeviceView forwards to the scalar model verbatim; BoundDevice serves
// hoisted factors).  See the view contract in tech/device.h.
template <typename Dev>
DriverChain driver_chain_impl(const Dev& dev, double w_first_um,
                              double c_load_f, double r_wire_ohm,
                              double c_wire_f, double input_ramp_s) {
  NC_REQUIRE(w_first_um > 0.0, "first stage width must be positive");
  NC_REQUIRE(c_load_f >= 0.0, "load must be non-negative");

  constexpr double kStageEffort = 4.0;
  const double c_first = dev.gate_cap_f(w_first_um);
  const double c_total = c_load_f + c_wire_f;
  const double effort = std::max(1.0, c_total / std::max(c_first, 1e-21));
  const int stages = std::max(
      1, static_cast<int>(std::lround(std::log(effort) /
                                      std::log(kStageEffort))));
  const double per_stage = std::pow(effort, 1.0 / stages);

  DriverChain chain;
  chain.stages = stages;
  double ramp = input_ramp_s;
  double width = w_first_um;
  for (int i = 0; i < stages; ++i) {
    chain.total_width_um += width;
    const double r_drive = dev.effective_resistance_ohm(width);
    const bool last = (i + 1 == stages);
    double c_next;
    if (last) {
      c_next = c_load_f + c_wire_f;
    } else {
      c_next = dev.gate_cap_f(width * per_stage);
    }
    const double c_self = dev.drain_cap_f(width);
    if (last && (r_wire_ohm > 0.0 || c_wire_f > 0.0)) {
      // Final stage drives the wire: Elmore including wire resistance.
      const double tf = r_drive * (c_self + c_wire_f + c_load_f) +
                        r_wire_ohm * (0.5 * c_wire_f + c_load_f);
      const double d = horowitz(ramp, tf, 0.5);
      chain.delay_s += d;
      ramp = 2.2 * tf;
    } else {
      const auto st = gate_stage(r_drive, c_self + c_next, ramp);
      chain.delay_s += st.delay_s;
      ramp = st.out_ramp_s;
    }
    width *= per_stage;
  }
  chain.out_ramp_s = ramp;
  return chain;
}

template <typename Dev>
RepeatedWire repeated_wire_impl(const Dev& dev, double length_um,
                                double c_end_f, double input_ramp_s) {
  NC_REQUIRE(length_um > 0.0, "wire length must be positive");
  NC_REQUIRE(c_end_f >= 0.0, "end load must be non-negative");
  const auto& p = dev.params();
  const int segments =
      std::max(1, static_cast<int>(std::ceil(length_um / kRepeaterSegmentUm)));
  const double seg_len = length_um / segments;
  const double r_seg = seg_len * p.rwire_ohm_per_um;
  const double c_seg = seg_len * p.cwire_f_per_um;
  const double r_drv = dev.effective_resistance_ohm(kRepeaterWidthUm);
  const double c_self = dev.drain_cap_f(kRepeaterWidthUm);
  const double c_gate = dev.gate_cap_f(kRepeaterWidthUm);

  RepeatedWire out;
  out.segments = segments;
  out.total_width_um = kRepeaterWidthUm * segments;
  double ramp = input_ramp_s;
  for (int i = 0; i < segments; ++i) {
    const double c_next = (i + 1 == segments) ? c_end_f : c_gate;
    const double tf = r_drv * (c_self + c_seg + c_next) +
                      r_seg * (0.5 * c_seg + c_next);
    out.delay_s += horowitz(ramp, tf, 0.5);
    ramp = 2.2 * tf;
  }
  return out;
}

}  // namespace

DriverChain driver_chain(const DeviceModel& dev, const DeviceKnobs& knobs,
                         double w_first_um, double c_load_f,
                         double r_wire_ohm, double c_wire_f,
                         double input_ramp_s) {
  return driver_chain_impl(DeviceView(dev, knobs), w_first_um, c_load_f,
                           r_wire_ohm, c_wire_f, input_ramp_s);
}

DriverChain driver_chain(const DeviceView& dev, double w_first_um,
                         double c_load_f, double r_wire_ohm, double c_wire_f,
                         double input_ramp_s) {
  return driver_chain_impl(dev, w_first_um, c_load_f, r_wire_ohm, c_wire_f,
                           input_ramp_s);
}

DriverChain driver_chain(const BoundDevice& dev, double w_first_um,
                         double c_load_f, double r_wire_ohm, double c_wire_f,
                         double input_ramp_s) {
  return driver_chain_impl(dev, w_first_um, c_load_f, r_wire_ohm, c_wire_f,
                           input_ramp_s);
}

RepeatedWire repeated_wire(const DeviceModel& dev, const DeviceKnobs& knobs,
                           double length_um, double c_end_f,
                           double input_ramp_s) {
  return repeated_wire_impl(DeviceView(dev, knobs), length_um, c_end_f,
                            input_ramp_s);
}

RepeatedWire repeated_wire(const DeviceView& dev, double length_um,
                           double c_end_f, double input_ramp_s) {
  return repeated_wire_impl(dev, length_um, c_end_f, input_ramp_s);
}

RepeatedWire repeated_wire(const BoundDevice& dev, double length_um,
                           double c_end_f, double input_ramp_s) {
  return repeated_wire_impl(dev, length_um, c_end_f, input_ramp_s);
}

}  // namespace nanocache::tech
