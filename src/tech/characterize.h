// Characterization sweeps: evaluate any scalar figure of merit over a
// discrete (Vth, Tox) grid.  This is the stand-in for the paper's "extensive
// HSPICE simulation" step that produces the samples the closed forms are
// fitted to.
#pragma once

#include <functional>
#include <vector>

#include "tech/device.h"

namespace nanocache::tech {

/// One characterization point.
struct KnobSample {
  DeviceKnobs knobs;
  double value = 0.0;
};

/// Uniform grid over the knob range: `vth_steps` x `tox_steps` points,
/// inclusive of both endpoints.  Throws if steps < 2.
std::vector<DeviceKnobs> knob_grid(const KnobRange& range, int vth_steps,
                                   int tox_steps);

/// Evaluate `figure` at every grid point.
std::vector<KnobSample> characterize(
    const std::vector<DeviceKnobs>& grid,
    const std::function<double(const DeviceKnobs&)>& figure);

}  // namespace nanocache::tech
