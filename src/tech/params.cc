#include "tech/params.h"

#include <cmath>

#include "util/error.h"
#include "util/units.h"

namespace nanocache::tech {

double TechnologyParams::thermal_voltage_v() const {
  return units::thermal_voltage(temperature_k);
}

double TechnologyParams::subthreshold_swing_mv_per_dec() const {
  return subthreshold_ideality_n * thermal_voltage_v() * std::log(10.0) * 1e3;
}

void TechnologyParams::validate() const {
  NC_REQUIRE(vdd_v > 0.0 && vdd_v < 5.0, "vdd out of range");
  NC_REQUIRE(temperature_k > 200.0 && temperature_k < 500.0,
             "temperature out of range");
  NC_REQUIRE(lgate_nominal_um > 0.0, "channel length must be positive");
  NC_REQUIRE(tox_nominal_a > 0.0, "nominal Tox must be positive");
  NC_REQUIRE(subthreshold_ideality_n >= 1.0 && subthreshold_ideality_n < 3.0,
             "subthreshold ideality out of range");
  NC_REQUIRE(isub0_a_per_um > 0.0, "isub0 must be positive");
  NC_REQUIRE(jg_ref_a_per_um2 > 0.0, "gate leakage reference must be positive");
  NC_REQUIRE(jg_tox_slope_per_a > 0.0, "gate leakage slope must be positive");
  NC_REQUIRE(alpha_power >= 1.0 && alpha_power <= 2.0,
             "alpha-power index out of range");
  NC_REQUIRE(idsat_ref_a_per_um > 0.0, "idsat must be positive");
  NC_REQUIRE(delay_calibration > 0.0, "delay calibration must be positive");
  NC_REQUIRE(cell_width_um > 0.0 && cell_height_um > 0.0,
             "cell dimensions must be positive");
  NC_REQUIRE(bitline_swing_v > 0.0 && bitline_swing_v < vdd_v,
             "bitline swing must be inside (0, vdd)");
  NC_REQUIRE(knobs.vth_min_v < knobs.vth_max_v, "empty Vth range");
  NC_REQUIRE(knobs.tox_min_a < knobs.tox_max_a, "empty Tox range");
  NC_REQUIRE(knobs.vth_max_v < vdd_v, "Vth range must stay below Vdd");
}

TechnologyParams bptm65() {
  // Defaults in the header are already the calibrated BPTM-65 values: the
  // 16 KB scheme-III design spans ~0.8-2.2 ns across the full knob window,
  // matching the x-axis of the paper's Figure 1.
  TechnologyParams p;
  p.validate();
  return p;
}

TechnologyParams node90() {
  TechnologyParams p = bptm65();
  p.vdd_v = 1.1;
  p.lgate_nominal_um = 0.050;
  // 90 nm oxides: 16-20 A window; tunnelling ~30x weaker at the window's
  // thin end than 65 nm's 10 A.
  p.knobs.tox_min_a = 16.0;
  p.knobs.tox_max_a = 20.0;
  p.tox_nominal_a = 18.0;
  p.jg_ref_tox_a = 16.0;
  p.jg_ref_a_per_um2 = 0.8e-6;
  p.isub0_a_per_um = 18e-6;      // longer channel, gentler DIBL
  p.idsat_ref_a_per_um = 480e-6;
  // Larger cell (the published 90 nm SRAM cell is ~1 um^2).
  p.cell_width_um = 1.55;
  p.cell_height_um = 0.68;
  p.validate();
  return p;
}

TechnologyParams node45() {
  TechnologyParams p = bptm65();
  p.vdd_v = 0.9;
  p.lgate_nominal_um = 0.025;
  // Pre-high-k 45 nm: 8-11 A oxides with tunnelling up ~an order of
  // magnitude from 65 nm at the same thickness scaling trend.
  p.knobs.tox_min_a = 8.0;
  p.knobs.tox_max_a = 11.0;
  p.tox_nominal_a = 9.5;
  p.jg_ref_tox_a = 8.0;
  p.jg_ref_a_per_um2 = 180e-6;
  p.isub0_a_per_um = 45e-6;      // worse short-channel control
  p.idsat_ref_a_per_um = 620e-6;
  p.cell_width_um = 0.80;
  p.cell_height_um = 0.36;
  p.validate();
  return p;
}

TechnologyParams node32() {
  TechnologyParams p = bptm65();
  p.vdd_v = 0.85;
  p.lgate_nominal_um = 0.018;
  // 32 nm planar oxides: 6.5-9 A, tunnelling up again from 45 nm at the
  // same ~2.9x-per-Angstrom slope.
  p.knobs.tox_min_a = 6.5;
  p.knobs.tox_max_a = 9.0;
  p.tox_nominal_a = 7.5;
  p.jg_ref_tox_a = 6.5;
  p.jg_ref_a_per_um2 = 900e-6;
  p.isub0_a_per_um = 60e-6;      // DIBL worsens with the shorter channel
  p.idsat_ref_a_per_um = 680e-6;
  p.cell_width_um = 0.58;
  p.cell_height_um = 0.26;
  p.validate();
  return p;
}

TechnologyParams node22() {
  TechnologyParams p = bptm65();
  p.vdd_v = 0.8;
  p.lgate_nominal_um = 0.013;
  // 22 nm planar projection: 5.5-7.5 A oxides; gate tunnelling dominates
  // the total across essentially the whole window.
  p.knobs.tox_min_a = 5.5;
  p.knobs.tox_max_a = 7.5;
  p.tox_nominal_a = 6.5;
  p.jg_ref_tox_a = 5.5;
  p.jg_ref_a_per_um2 = 3.5e-3;
  p.isub0_a_per_um = 80e-6;
  p.idsat_ref_a_per_um = 740e-6;
  p.cell_width_um = 0.42;
  p.cell_height_um = 0.19;
  p.validate();
  return p;
}

const std::vector<int>& supported_nodes() {
  static const std::vector<int> nodes = {90, 65, 45, 32, 22};
  return nodes;
}

TechnologyParams node_params(int node_nm) {
  switch (node_nm) {
    case 90: return node90();
    case 65: return bptm65();
    case 45: return node45();
    case 32: return node32();
    case 22: return node22();
    default: break;
  }
  throw Error(ErrorCategory::kConfig,
              "unsupported technology node " + std::to_string(node_nm) +
                  " nm (supported: 90, 65, 45, 32, 22)");
}

std::vector<double> node_tox_grid(const TechnologyParams& params) {
  // Five evenly spaced Tox values across the node's oxide window — the
  // abl_node_scaling rule promoted into the library.
  std::vector<double> tox;
  tox.reserve(5);
  for (int i = 0; i < 5; ++i) {
    tox.push_back(params.knobs.tox_min_a +
                  (params.knobs.tox_max_a - params.knobs.tox_min_a) *
                      static_cast<double>(i) / 4.0);
  }
  return tox;
}

}  // namespace nanocache::tech
