#include "tech/characterize.h"

#include "util/error.h"

namespace nanocache::tech {

std::vector<DeviceKnobs> knob_grid(const KnobRange& range, int vth_steps,
                                   int tox_steps) {
  NC_REQUIRE(vth_steps >= 2 && tox_steps >= 2, "grid needs >= 2 steps per axis");
  std::vector<DeviceKnobs> grid;
  grid.reserve(static_cast<std::size_t>(vth_steps) * tox_steps);
  for (int i = 0; i < vth_steps; ++i) {
    const double vth = range.vth_min_v + (range.vth_max_v - range.vth_min_v) *
                                             static_cast<double>(i) /
                                             (vth_steps - 1);
    for (int j = 0; j < tox_steps; ++j) {
      const double tox = range.tox_min_a + (range.tox_max_a - range.tox_min_a) *
                                               static_cast<double>(j) /
                                               (tox_steps - 1);
      grid.push_back(DeviceKnobs{vth, tox});
    }
  }
  return grid;
}

std::vector<KnobSample> characterize(
    const std::vector<DeviceKnobs>& grid,
    const std::function<double(const DeviceKnobs&)>& figure) {
  NC_REQUIRE(static_cast<bool>(figure), "figure of merit must be callable");
  std::vector<KnobSample> samples;
  samples.reserve(grid.size());
  for (const auto& k : grid) {
    samples.push_back(KnobSample{k, figure(k)});
  }
  return samples;
}

}  // namespace nanocache::tech
