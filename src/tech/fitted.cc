#include "tech/fitted.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/error.h"
#include "util/math.h"
#include "util/numeric_guard.h"

namespace nanocache::tech {

namespace {

void split_samples(const std::vector<KnobSample>& samples,
                   std::vector<double>* vth, std::vector<double>* tox,
                   std::vector<double>* value) {
  NC_REQUIRE(samples.size() >= 6, "fitting needs >= 6 samples");
  vth->reserve(samples.size());
  tox->reserve(samples.size());
  value->reserve(samples.size());
  for (const auto& s : samples) {
    vth->push_back(num::ensure_finite(s.knobs.vth_v, "fit sample Vth"));
    tox->push_back(num::ensure_finite(s.knobs.tox_a, "fit sample Tox"));
    value->push_back(num::ensure_finite(s.value, "fit sample value"));
  }
}

void check_knobs_in(const FitDomain& domain, const DeviceKnobs& knobs,
                    const char* model) {
  num::ensure_finite(knobs.vth_v, model);
  num::ensure_finite(knobs.tox_a, model);
  if (!domain.contains(knobs)) {
    std::ostringstream os;
    os << model << " evaluated outside its fitted domain: Vth="
       << knobs.vth_v << " V, Tox=" << knobs.tox_a << " A not in "
       << domain.describe();
    throw Error(ErrorCategory::kNumericDomain, os.str());
  }
}

}  // namespace

bool FitDomain::contains(const DeviceKnobs& knobs) const {
  // Relative slack ~1e-9 of the span: grid endpoints produced by linspace
  // arithmetic must always count as inside.
  const double vth_tol = 1e-9 * std::max(1.0, vth_max_v - vth_min_v);
  const double tox_tol = 1e-9 * std::max(1.0, tox_max_a - tox_min_a);
  return knobs.vth_v >= vth_min_v - vth_tol &&
         knobs.vth_v <= vth_max_v + vth_tol &&
         knobs.tox_a >= tox_min_a - tox_tol &&
         knobs.tox_a <= tox_max_a + tox_tol;
}

std::string FitDomain::describe() const {
  std::ostringstream os;
  os << "Vth in [" << vth_min_v << ", " << vth_max_v << "] V, Tox in ["
     << tox_min_a << ", " << tox_max_a << "] A";
  return os.str();
}

FitDomain FitDomain::from_samples(const std::vector<KnobSample>& samples) {
  NC_REQUIRE(!samples.empty(), "fit domain needs at least one sample");
  FitDomain d;
  d.vth_min_v = d.vth_max_v =
      num::ensure_finite(samples.front().knobs.vth_v, "fit sample Vth");
  d.tox_min_a = d.tox_max_a =
      num::ensure_finite(samples.front().knobs.tox_a, "fit sample Tox");
  for (const auto& s : samples) {
    num::ensure_finite(s.knobs.vth_v, "fit sample Vth");
    num::ensure_finite(s.knobs.tox_a, "fit sample Tox");
    d.vth_min_v = std::min(d.vth_min_v, s.knobs.vth_v);
    d.vth_max_v = std::max(d.vth_max_v, s.knobs.vth_v);
    d.tox_min_a = std::min(d.tox_min_a, s.knobs.tox_a);
    d.tox_max_a = std::max(d.tox_max_a, s.knobs.tox_a);
  }
  return d;
}

FittedLeakageModel FittedLeakageModel::fit(
    const std::vector<KnobSample>& samples) {
  std::vector<double> vth, tox, value;
  split_samples(samples, &vth, &tox, &value);
  // Subthreshold slope is tens of 1/V; gate slope is ~1 per Angstrom.
  const auto f = math::fit_separable_exponentials(
      vth, tox, value, /*r1*/ -60.0, -5.0, /*r2*/ -3.0, -0.2, /*steps*/ 80);
  FittedLeakageModel m;
  m.a0_ = num::ensure_finite(f.c0, "fitted leakage A0");
  m.a1_ = num::ensure_finite(f.c1, "fitted leakage A1");
  m.rate_vth_ = num::ensure_finite(f.r1, "fitted leakage Vth rate");
  m.a2_ = num::ensure_finite(f.c2, "fitted leakage A2");
  m.rate_tox_ = num::ensure_finite(f.r2, "fitted leakage Tox rate");
  m.r2_ = num::ensure_finite(f.r2_score, "fitted leakage R^2");
  m.domain_ = FitDomain::from_samples(samples);
  return m;
}

double FittedLeakageModel::operator()(const DeviceKnobs& knobs) const {
  return a0_ + a1_ * std::exp(rate_vth_ * knobs.vth_v) +
         a2_ * std::exp(rate_tox_ * knobs.tox_a);
}

double FittedLeakageModel::evaluate_checked(const DeviceKnobs& knobs) const {
  check_knobs_in(domain_, knobs, "fitted leakage model");
  const double value =
      a0_ +
      a1_ * num::checked_exp(rate_vth_ * knobs.vth_v, "fitted leakage") +
      a2_ * num::checked_exp(rate_tox_ * knobs.tox_a, "fitted leakage");
  return num::ensure_finite(value, "fitted leakage result");
}

FittedDelayModel FittedDelayModel::fit(const std::vector<KnobSample>& samples) {
  std::vector<double> vth, tox, value;
  split_samples(samples, &vth, &tox, &value);
  // Delay grows weakly-exponentially with Vth: small positive exponent.
  const auto f =
      math::fit_exp_linear(vth, tox, value, /*rate*/ 0.1, 8.0, /*steps*/ 240);
  FittedDelayModel m;
  m.k0_ = num::ensure_finite(f.c0, "fitted delay k0");
  m.k1_ = num::ensure_finite(f.c1, "fitted delay k1");
  m.k3_ = num::ensure_finite(f.rate, "fitted delay Vth rate");
  m.k2_ = num::ensure_finite(f.c2, "fitted delay Tox slope");
  m.r2_ = num::ensure_finite(f.r2_score, "fitted delay R^2");
  m.domain_ = FitDomain::from_samples(samples);
  return m;
}

double FittedDelayModel::operator()(const DeviceKnobs& knobs) const {
  return k0_ + k1_ * std::exp(k3_ * knobs.vth_v) + k2_ * knobs.tox_a;
}

double FittedDelayModel::evaluate_checked(const DeviceKnobs& knobs) const {
  check_knobs_in(domain_, knobs, "fitted delay model");
  const double value =
      k0_ + k1_ * num::checked_exp(k3_ * knobs.vth_v, "fitted delay") +
      k2_ * knobs.tox_a;
  return num::ensure_finite(value, "fitted delay result");
}

}  // namespace nanocache::tech
