#include "tech/fitted.h"

#include <cmath>

#include "util/error.h"
#include "util/math.h"

namespace nanocache::tech {

namespace {

void split_samples(const std::vector<KnobSample>& samples,
                   std::vector<double>* vth, std::vector<double>* tox,
                   std::vector<double>* value) {
  NC_REQUIRE(samples.size() >= 6, "fitting needs >= 6 samples");
  vth->reserve(samples.size());
  tox->reserve(samples.size());
  value->reserve(samples.size());
  for (const auto& s : samples) {
    vth->push_back(s.knobs.vth_v);
    tox->push_back(s.knobs.tox_a);
    value->push_back(s.value);
  }
}

}  // namespace

FittedLeakageModel FittedLeakageModel::fit(
    const std::vector<KnobSample>& samples) {
  std::vector<double> vth, tox, value;
  split_samples(samples, &vth, &tox, &value);
  // Subthreshold slope is tens of 1/V; gate slope is ~1 per Angstrom.
  const auto f = math::fit_separable_exponentials(
      vth, tox, value, /*r1*/ -60.0, -5.0, /*r2*/ -3.0, -0.2, /*steps*/ 80);
  FittedLeakageModel m;
  m.a0_ = f.c0;
  m.a1_ = f.c1;
  m.rate_vth_ = f.r1;
  m.a2_ = f.c2;
  m.rate_tox_ = f.r2;
  m.r2_ = f.r2_score;
  return m;
}

double FittedLeakageModel::operator()(const DeviceKnobs& knobs) const {
  return a0_ + a1_ * std::exp(rate_vth_ * knobs.vth_v) +
         a2_ * std::exp(rate_tox_ * knobs.tox_a);
}

FittedDelayModel FittedDelayModel::fit(const std::vector<KnobSample>& samples) {
  std::vector<double> vth, tox, value;
  split_samples(samples, &vth, &tox, &value);
  // Delay grows weakly-exponentially with Vth: small positive exponent.
  const auto f =
      math::fit_exp_linear(vth, tox, value, /*rate*/ 0.1, 8.0, /*steps*/ 240);
  FittedDelayModel m;
  m.k0_ = f.c0;
  m.k1_ = f.c1;
  m.k3_ = f.rate;
  m.k2_ = f.c2;
  m.r2_ = f.r2_score;
  return m;
}

double FittedDelayModel::operator()(const DeviceKnobs& knobs) const {
  return k0_ + k1_ * std::exp(k3_ * knobs.vth_v) + k2_ * knobs.tox_a;
}

}  // namespace nanocache::tech
