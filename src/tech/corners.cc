#include "tech/corners.h"

namespace nanocache::tech {

std::string_view corner_name(Corner corner) {
  switch (corner) {
    case Corner::kTypical:
      return "TT";
    case Corner::kFast:
      return "FF";
    case Corner::kSlow:
      return "SS";
  }
  return "unknown";
}

TechnologyParams apply_corner(const TechnologyParams& base, Corner corner) {
  TechnologyParams p = base;
  switch (corner) {
    case Corner::kTypical:
      break;
    case Corner::kFast:
      p.idsat_ref_a_per_um *= 1.15;
      p.isub0_a_per_um *= 2.2;
      p.jg_ref_a_per_um2 *= 1.5;
      break;
    case Corner::kSlow:
      p.idsat_ref_a_per_um /= 1.15;
      p.isub0_a_per_um /= 2.2;
      p.jg_ref_a_per_um2 /= 1.5;
      break;
  }
  p.validate();
  return p;
}

}  // namespace nanocache::tech
