#include "tech/device.h"

#include <cmath>

#include "util/error.h"
#include "util/units.h"

namespace nanocache::tech {

DeviceModel::DeviceModel(TechnologyParams params) : params_(params) {
  params_.validate();
}

double DeviceModel::geometry_scale(double tox_a) const {
  NC_REQUIRE(tox_a > 0.0, "Tox must be positive");
  if (!params_.area_scaling_enabled) return 1.0;
  return tox_a / params_.tox_nominal_a;
}

double DeviceModel::leff_um(double tox_a) const {
  return params_.lgate_nominal_um * geometry_scale(tox_a);
}

double DeviceModel::subthreshold_current_per_um(const DeviceKnobs& knobs,
                                                double vds_v) const {
  NC_REQUIRE(vds_v >= 0.0 && vds_v <= params_.vdd_v, "Vds out of range");
  const double vt = params_.thermal_voltage_v();
  const double n_vt = params_.subthreshold_ideality_n * vt;
  // DIBL lowers the barrier as Vds rises; the reference current isub0 is
  // quoted at Vds = Vdd, so only the *difference* from Vdd enters here.
  const double dibl = params_.dibl_mv_per_v * 1e-3;
  const double vth_eff = knobs.vth_v + dibl * (params_.vdd_v - vds_v);
  // Longer channels (thick Tox) leak slightly less per um: 1/s factor.
  return params_.isub0_a_per_um / geometry_scale(knobs.tox_a) *
         std::exp(-vth_eff / n_vt) * (1.0 - std::exp(-vds_v / vt));
}

double DeviceModel::subthreshold_current_a(double width_um,
                                           const DeviceKnobs& knobs,
                                           double vds_v) const {
  NC_REQUIRE(width_um >= 0.0, "width must be non-negative");
  const double i_per_um = subthreshold_current_per_um(knobs, vds_v);
  return i_per_um * width_um;
}

double DeviceModel::subthreshold_current_a(double width_um,
                                           const DeviceKnobs& knobs) const {
  return subthreshold_current_a(width_um, knobs, params_.vdd_v);
}

double DeviceModel::gate_leakage_density_a_per_um2(
    const DeviceKnobs& knobs) const {
  return params_.jg_ref_a_per_um2 *
         std::exp(-params_.jg_tox_slope_per_a *
                  (knobs.tox_a - params_.jg_ref_tox_a));
}

double DeviceModel::gate_leakage_current_a(double width_um,
                                           const DeviceKnobs& knobs) const {
  NC_REQUIRE(width_um >= 0.0, "width must be non-negative");
  const double area_um2 = width_um * leff_um(knobs.tox_a);
  const double density = gate_leakage_density_a_per_um2(knobs);
  return density * area_um2;
}

double DeviceModel::off_power_w(double width_um,
                                const DeviceKnobs& knobs) const {
  return params_.vdd_v * (subthreshold_current_a(width_um, knobs) +
                          gate_leakage_current_a(width_um, knobs));
}

DeviceModel::LeakageSplit DeviceModel::off_power_split_w(
    double width_um, const DeviceKnobs& knobs) const {
  LeakageSplit s;
  s.subthreshold_w =
      params_.vdd_v * subthreshold_current_a(width_um, knobs);
  s.gate_w = params_.vdd_v * gate_leakage_current_a(width_um, knobs);
  return s;
}

double DeviceModel::on_current_a(double width_um,
                                 const DeviceKnobs& knobs) const {
  NC_REQUIRE(width_um >= 0.0, "width must be non-negative");
  const double overdrive = params_.vdd_v - knobs.vth_v;
  NC_REQUIRE(overdrive > 0.0, "Vth must stay below Vdd");
  const double ref_overdrive = params_.vdd_v - params_.knobs.vth_min_v;
  const double cox_ratio = params_.jg_ref_tox_a / knobs.tox_a;  // Cox ~ 1/Tox
  return params_.idsat_ref_a_per_um * width_um * cox_ratio *
         std::pow(overdrive / ref_overdrive, params_.alpha_power);
}

double DeviceModel::effective_resistance_ohm(double width_um,
                                             const DeviceKnobs& knobs) const {
  NC_REQUIRE(width_um > 0.0, "driver width must be positive");
  return params_.vdd_v / on_current_a(width_um, knobs);
}

double DeviceModel::gate_cap_f(double width_um, double tox_a) const {
  NC_REQUIRE(width_um >= 0.0, "width must be non-negative");
  const double channel =
      width_um * leff_um(tox_a) * units::cox_per_um2(tox_a);
  const double overlap = params_.cov_f_per_um * width_um;
  return channel + overlap;
}

double DeviceModel::drain_cap_f(double width_um) const {
  NC_REQUIRE(width_um >= 0.0, "width must be non-negative");
  return params_.cj_f_per_um * width_um;
}

double DeviceModel::cell_width_um(double tox_a) const {
  return params_.cell_width_um * geometry_scale(tox_a);
}

double DeviceModel::cell_height_um(double tox_a) const {
  return params_.cell_height_um * geometry_scale(tox_a);
}

double DeviceModel::cell_area_um2(double tox_a) const {
  return cell_width_um(tox_a) * cell_height_um(tox_a);
}

DeviceModel::LeakageSplit DeviceModel::cell_leakage_split_w(
    const DeviceKnobs& knobs) const {
  const double s = geometry_scale(knobs.tox_a);
  const double w_pd = params_.wcell_pulldown_um * s;
  const double w_pu = params_.wcell_pullup_um * s;
  const double w_pass = params_.wcell_pass_um * s;

  // Subthreshold: one pull-down and one pull-up are OFF at full rail; the
  // two pass gates see roughly half rail on average during standby.
  const double isub = subthreshold_current_a(w_pd, knobs) +
                      subthreshold_current_a(w_pu, knobs) +
                      2.0 * subthreshold_current_a(w_pass, knobs,
                                                   0.5 * params_.vdd_v);
  // Gate tunnelling: the ON pull-down and pull-up see Vdd across the oxide;
  // the storage-node side of one pass gate also tunnels.
  const double ig = gate_leakage_current_a(w_pd, knobs) +
                    gate_leakage_current_a(w_pu, knobs) +
                    gate_leakage_current_a(w_pass, knobs);
  LeakageSplit split;
  split.subthreshold_w = params_.vdd_v * isub;
  split.gate_w = params_.vdd_v * ig;
  return split;
}

double DeviceModel::cell_leakage_w(const DeviceKnobs& knobs) const {
  return cell_leakage_split_w(knobs).total();
}

double DeviceModel::cell_read_current_a(const DeviceKnobs& knobs) const {
  const double s = geometry_scale(knobs.tox_a);
  // Series pass-gate + pull-down; dominated by the narrower pass device.
  const double w_eff = params_.wcell_pass_um * s * 0.8;
  return on_current_a(w_eff, knobs) / s;  // long channel also slows the cell
}

// ---------------------------------------------------------------------------
// BoundDevice
//
// Every hoisted factor is produced by the same DeviceModel helper the
// scalar path consumes, and every width-dependent expression below repeats
// the scalar method's association order term for term, so the two views
// are bitwise-equal by construction.
// ---------------------------------------------------------------------------

BoundDevice::BoundDevice(const DeviceModel& dev, const DeviceKnobs& knobs)
    : dev_(&dev), knobs_(knobs) {
  const TechnologyParams& p = dev.params();
  s_ = dev.geometry_scale(knobs.tox_a);
  leff_um_ = dev.leff_um(knobs.tox_a);
  cox_per_um2_ = units::cox_per_um2(knobs.tox_a);
  cell_width_um_ = dev.cell_width_um(knobs.tox_a);
  cell_height_um_ = dev.cell_height_um(knobs.tox_a);
  isub_full_per_um_ = dev.subthreshold_current_per_um(knobs, p.vdd_v);
  isub_half_per_um_ = dev.subthreshold_current_per_um(knobs, 0.5 * p.vdd_v);
  ig_density_ = dev.gate_leakage_density_a_per_um2(knobs);
  const double overdrive = p.vdd_v - knobs.vth_v;
  NC_REQUIRE(overdrive > 0.0, "Vth must stay below Vdd");
  const double ref_overdrive = p.vdd_v - p.knobs.vth_min_v;
  cox_ratio_ = p.jg_ref_tox_a / knobs.tox_a;  // Cox ~ 1/Tox
  overdrive_pow_ = std::pow(overdrive / ref_overdrive, p.alpha_power);
}

double BoundDevice::gate_cap_f(double width_um) const {
  NC_REQUIRE(width_um >= 0.0, "width must be non-negative");
  const double channel = width_um * leff_um_ * cox_per_um2_;
  const double overlap = params().cov_f_per_um * width_um;
  return channel + overlap;
}

double BoundDevice::drain_cap_f(double width_um) const {
  NC_REQUIRE(width_um >= 0.0, "width must be non-negative");
  return params().cj_f_per_um * width_um;
}

double BoundDevice::on_current_a(double width_um) const {
  NC_REQUIRE(width_um >= 0.0, "width must be non-negative");
  // Same association order as DeviceModel::on_current_a:
  // ((Idsat * W) * cox_ratio) * pow(overdrive / ref, alpha).
  return params().idsat_ref_a_per_um * width_um * cox_ratio_ * overdrive_pow_;
}

double BoundDevice::effective_resistance_ohm(double width_um) const {
  NC_REQUIRE(width_um > 0.0, "driver width must be positive");
  return params().vdd_v / on_current_a(width_um);
}

DeviceModel::LeakageSplit BoundDevice::off_power_split_w(
    double width_um) const {
  NC_REQUIRE(width_um >= 0.0, "width must be non-negative");
  DeviceModel::LeakageSplit s;
  s.subthreshold_w = params().vdd_v * (isub_full_per_um_ * width_um);
  const double area_um2 = width_um * leff_um_;
  s.gate_w = params().vdd_v * (ig_density_ * area_um2);
  return s;
}

DeviceModel::LeakageSplit BoundDevice::cell_leakage_split_w() const {
  const TechnologyParams& p = params();
  const double w_pd = p.wcell_pulldown_um * s_;
  const double w_pu = p.wcell_pullup_um * s_;
  const double w_pass = p.wcell_pass_um * s_;

  const double isub = (isub_full_per_um_ * w_pd) +
                      (isub_full_per_um_ * w_pu) +
                      2.0 * (isub_half_per_um_ * w_pass);
  const double ig = (ig_density_ * (w_pd * leff_um_)) +
                    (ig_density_ * (w_pu * leff_um_)) +
                    (ig_density_ * (w_pass * leff_um_));
  DeviceModel::LeakageSplit split;
  split.subthreshold_w = p.vdd_v * isub;
  split.gate_w = p.vdd_v * ig;
  return split;
}

double BoundDevice::cell_read_current_a() const {
  const double w_eff = params().wcell_pass_um * s_ * 0.8;
  return on_current_a(w_eff) / s_;
}

}  // namespace nanocache::tech
