#include "tech/device.h"

#include <cmath>

#include "util/error.h"
#include "util/units.h"

namespace nanocache::tech {

DeviceModel::DeviceModel(TechnologyParams params) : params_(params) {
  params_.validate();
}

double DeviceModel::geometry_scale(double tox_a) const {
  NC_REQUIRE(tox_a > 0.0, "Tox must be positive");
  if (!params_.area_scaling_enabled) return 1.0;
  return tox_a / params_.tox_nominal_a;
}

double DeviceModel::leff_um(double tox_a) const {
  return params_.lgate_nominal_um * geometry_scale(tox_a);
}

double DeviceModel::subthreshold_current_a(double width_um,
                                           const DeviceKnobs& knobs,
                                           double vds_v) const {
  NC_REQUIRE(width_um >= 0.0, "width must be non-negative");
  NC_REQUIRE(vds_v >= 0.0 && vds_v <= params_.vdd_v, "Vds out of range");
  const double vt = params_.thermal_voltage_v();
  const double n_vt = params_.subthreshold_ideality_n * vt;
  // DIBL lowers the barrier as Vds rises; the reference current isub0 is
  // quoted at Vds = Vdd, so only the *difference* from Vdd enters here.
  const double dibl = params_.dibl_mv_per_v * 1e-3;
  const double vth_eff = knobs.vth_v + dibl * (params_.vdd_v - vds_v);
  // Longer channels (thick Tox) leak slightly less per um: 1/s factor.
  const double i_per_um = params_.isub0_a_per_um / geometry_scale(knobs.tox_a) *
                          std::exp(-vth_eff / n_vt) *
                          (1.0 - std::exp(-vds_v / vt));
  return i_per_um * width_um;
}

double DeviceModel::subthreshold_current_a(double width_um,
                                           const DeviceKnobs& knobs) const {
  return subthreshold_current_a(width_um, knobs, params_.vdd_v);
}

double DeviceModel::gate_leakage_current_a(double width_um,
                                           const DeviceKnobs& knobs) const {
  NC_REQUIRE(width_um >= 0.0, "width must be non-negative");
  const double area_um2 = width_um * leff_um(knobs.tox_a);
  const double density =
      params_.jg_ref_a_per_um2 *
      std::exp(-params_.jg_tox_slope_per_a * (knobs.tox_a - params_.jg_ref_tox_a));
  return density * area_um2;
}

double DeviceModel::off_power_w(double width_um,
                                const DeviceKnobs& knobs) const {
  return params_.vdd_v * (subthreshold_current_a(width_um, knobs) +
                          gate_leakage_current_a(width_um, knobs));
}

DeviceModel::LeakageSplit DeviceModel::off_power_split_w(
    double width_um, const DeviceKnobs& knobs) const {
  LeakageSplit s;
  s.subthreshold_w =
      params_.vdd_v * subthreshold_current_a(width_um, knobs);
  s.gate_w = params_.vdd_v * gate_leakage_current_a(width_um, knobs);
  return s;
}

double DeviceModel::on_current_a(double width_um,
                                 const DeviceKnobs& knobs) const {
  NC_REQUIRE(width_um >= 0.0, "width must be non-negative");
  const double overdrive = params_.vdd_v - knobs.vth_v;
  NC_REQUIRE(overdrive > 0.0, "Vth must stay below Vdd");
  const double ref_overdrive = params_.vdd_v - params_.knobs.vth_min_v;
  const double cox_ratio = params_.jg_ref_tox_a / knobs.tox_a;  // Cox ~ 1/Tox
  return params_.idsat_ref_a_per_um * width_um * cox_ratio *
         std::pow(overdrive / ref_overdrive, params_.alpha_power);
}

double DeviceModel::effective_resistance_ohm(double width_um,
                                             const DeviceKnobs& knobs) const {
  NC_REQUIRE(width_um > 0.0, "driver width must be positive");
  return params_.vdd_v / on_current_a(width_um, knobs);
}

double DeviceModel::gate_cap_f(double width_um, double tox_a) const {
  NC_REQUIRE(width_um >= 0.0, "width must be non-negative");
  const double channel =
      width_um * leff_um(tox_a) * units::cox_per_um2(tox_a);
  const double overlap = params_.cov_f_per_um * width_um;
  return channel + overlap;
}

double DeviceModel::drain_cap_f(double width_um) const {
  NC_REQUIRE(width_um >= 0.0, "width must be non-negative");
  return params_.cj_f_per_um * width_um;
}

double DeviceModel::cell_width_um(double tox_a) const {
  return params_.cell_width_um * geometry_scale(tox_a);
}

double DeviceModel::cell_height_um(double tox_a) const {
  return params_.cell_height_um * geometry_scale(tox_a);
}

double DeviceModel::cell_area_um2(double tox_a) const {
  return cell_width_um(tox_a) * cell_height_um(tox_a);
}

DeviceModel::LeakageSplit DeviceModel::cell_leakage_split_w(
    const DeviceKnobs& knobs) const {
  const double s = geometry_scale(knobs.tox_a);
  const double w_pd = params_.wcell_pulldown_um * s;
  const double w_pu = params_.wcell_pullup_um * s;
  const double w_pass = params_.wcell_pass_um * s;

  // Subthreshold: one pull-down and one pull-up are OFF at full rail; the
  // two pass gates see roughly half rail on average during standby.
  const double isub = subthreshold_current_a(w_pd, knobs) +
                      subthreshold_current_a(w_pu, knobs) +
                      2.0 * subthreshold_current_a(w_pass, knobs,
                                                   0.5 * params_.vdd_v);
  // Gate tunnelling: the ON pull-down and pull-up see Vdd across the oxide;
  // the storage-node side of one pass gate also tunnels.
  const double ig = gate_leakage_current_a(w_pd, knobs) +
                    gate_leakage_current_a(w_pu, knobs) +
                    gate_leakage_current_a(w_pass, knobs);
  LeakageSplit split;
  split.subthreshold_w = params_.vdd_v * isub;
  split.gate_w = params_.vdd_v * ig;
  return split;
}

double DeviceModel::cell_leakage_w(const DeviceKnobs& knobs) const {
  return cell_leakage_split_w(knobs).total();
}

double DeviceModel::cell_read_current_a(const DeviceKnobs& knobs) const {
  const double s = geometry_scale(knobs.tox_a);
  // Series pass-gate + pull-down; dominated by the narrower pass device.
  const double w_eff = params_.wcell_pass_um * s * 0.8;
  return on_current_a(w_eff, knobs) / s;  // long channel also slows the cell
}

}  // namespace nanocache::tech
