// Process corners: systematic shifts of the device parameters modelling
// fast/slow silicon.  The paper characterizes one (typical) corner; real
// sign-off would check that a knob assignment optimized at TT still meets
// timing at SS and does not blow the leakage budget at FF — which is what
// the corner ablation bench exercises.
#pragma once

#include <string_view>

#include "tech/params.h"

namespace nanocache::tech {

enum class Corner {
  kTypical,  ///< TT: the calibrated baseline
  kFast,     ///< FF: stronger drive, leakier (low-Vth/thin-ox silicon)
  kSlow,     ///< SS: weaker drive, less leaky
};

std::string_view corner_name(Corner corner);

/// Shift `base` to the given corner.  Shifts (symmetric around TT):
///  FF: +15% drive, 2.2x subthreshold, 1.5x gate leakage
///  SS: the reciprocals
/// The magnitudes follow the usual +-3-sigma global-corner spreads quoted
/// for 65 nm-era processes.
TechnologyParams apply_corner(const TechnologyParams& base, Corner corner);

}  // namespace nanocache::tech
