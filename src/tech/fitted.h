// The paper's closed-form models (Section 3), obtained by fitting
// characterization samples:
//
//   Eq. (1)  P_total(Vth, Tox) = A0 + A1 * e^(a1 * Vth) + A2 * e^(a2 * Tox)
//   Eq. (2)  T_d(Vth, Tox)     = k0 + k1 * e^(k3 * Vth) + k2 * Tox
//
// with a1, a2 < 0 (leakage falls with either knob) and k3 > 0 small (delay
// grows weakly-exponentially with Vth, linearly with Tox).
//
// Each fitted model records the (Vth, Tox) rectangle its samples spanned
// and its R^2.  Leakage is sharply nonlinear in the operating point, so
// extrapolating the closed forms outside the characterization grid is not
// merely inaccurate — it is undefined behaviour of the model.  The
// *_checked evaluators make that a detected kNumericDomain event;
// operator() stays unchecked for inner optimizer loops that already
// guarantee in-domain knobs.
#pragma once

#include <string>
#include <vector>

#include "tech/characterize.h"

namespace nanocache::tech {

/// The (Vth, Tox) rectangle a model was fitted over.
struct FitDomain {
  double vth_min_v = 0.0;
  double vth_max_v = 0.0;
  double tox_min_a = 0.0;
  double tox_max_a = 0.0;

  /// True when `knobs` lies inside the rectangle, with a small relative
  /// tolerance so boundary grid points never flap.
  bool contains(const DeviceKnobs& knobs) const;

  /// "Vth in [a, b] V, Tox in [c, d] A" for messages and reports.
  std::string describe() const;

  /// Smallest rectangle covering the samples.  Throws kConfig when empty,
  /// kNumericDomain when any knob is non-finite.
  static FitDomain from_samples(const std::vector<KnobSample>& samples);
};

/// Paper Eq. (1) fitted over (Vth, Tox) samples of total leakage power.
class FittedLeakageModel {
 public:
  /// Fit to characterization samples.  Throws kConfig on degenerate input
  /// and kNumericDomain when samples or the resulting coefficients are
  /// non-finite.
  static FittedLeakageModel fit(const std::vector<KnobSample>& samples);

  double operator()(const DeviceKnobs& knobs) const;

  /// operator() plus full domain validation: knobs must be finite and
  /// inside the fitted rectangle, and the result must be finite.  Throws
  /// nanocache::Error(kNumericDomain) otherwise.
  double evaluate_checked(const DeviceKnobs& knobs) const;

  double a0() const { return a0_; }
  double a1() const { return a1_; }
  double rate_vth() const { return rate_vth_; }  ///< a1 exponent (negative)
  double a2() const { return a2_; }
  double rate_tox() const { return rate_tox_; }  ///< a2 exponent (negative)
  double r2() const { return r2_; }              ///< goodness of fit
  const FitDomain& domain() const { return domain_; }

  /// Default-constructed model evaluates to zero everywhere; fit() is the
  /// meaningful constructor.
  FittedLeakageModel() = default;

 private:
  double a0_ = 0.0, a1_ = 0.0, rate_vth_ = 0.0, a2_ = 0.0, rate_tox_ = 0.0;
  double r2_ = 0.0;
  FitDomain domain_;
};

/// Paper Eq. (2) fitted over (Vth, Tox) samples of delay.
class FittedDelayModel {
 public:
  static FittedDelayModel fit(const std::vector<KnobSample>& samples);

  double operator()(const DeviceKnobs& knobs) const;

  /// operator() with finite-input, in-domain and finite-output checks;
  /// throws nanocache::Error(kNumericDomain) on any violation.
  double evaluate_checked(const DeviceKnobs& knobs) const;

  double k0() const { return k0_; }
  double k1() const { return k1_; }
  double k3() const { return k3_; }  ///< Vth exponent (small, positive)
  double k2() const { return k2_; }  ///< linear Tox slope
  double r2() const { return r2_; }
  const FitDomain& domain() const { return domain_; }

  /// Default-constructed model evaluates to zero everywhere; fit() is the
  /// meaningful constructor.
  FittedDelayModel() = default;

 private:
  double k0_ = 0.0, k1_ = 0.0, k3_ = 0.0, k2_ = 0.0;
  double r2_ = 0.0;
  FitDomain domain_;
};

}  // namespace nanocache::tech
