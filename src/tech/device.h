// Per-device analytical model: leakage currents (subthreshold + gate),
// drive strength, capacitances, and the Tox-coupled geometry scaling the
// paper imposes (Section 2: thicker Tox => longer drawn channel => larger
// cell in both dimensions).
#pragma once

#include "tech/params.h"

namespace nanocache::tech {

/// The two process knobs the paper assigns per cache component.
struct DeviceKnobs {
  double vth_v = 0.30;
  double tox_a = 12.0;

  friend bool operator==(const DeviceKnobs&, const DeviceKnobs&) = default;
};

/// Analytical transistor model.  All width arguments are in um and refer to
/// the *nominal-geometry* width; the model internally applies the Tox-driven
/// geometry scale where the paper requires it (cell area, gate area).
class DeviceModel {
 public:
  explicit DeviceModel(TechnologyParams params);

  const TechnologyParams& params() const { return params_; }

  /// Linear geometry scale s(Tox) = Tox / Tox_nominal (1 when area scaling
  /// is disabled).  Cell width/height and channel length scale by s.
  double geometry_scale(double tox_a) const;

  /// Effective channel length at the given Tox, um.
  double leff_um(double tox_a) const;

  /// Subthreshold (weak-inversion) leakage current of an OFF device with
  /// Vds = vds_v, per the BSIM-style exponential, amperes.
  double subthreshold_current_a(double width_um, const DeviceKnobs& knobs,
                                double vds_v) const;

  /// The width-independent factor of subthreshold_current_a (amperes per um
  /// of device width).  Exposed so BoundDevice can hoist the exp() chain
  /// once per knob pair; the scalar path multiplies this same value by the
  /// width, so both paths are bitwise-identical by construction.
  double subthreshold_current_per_um(const DeviceKnobs& knobs,
                                     double vds_v) const;

  /// The area-independent factor of gate_leakage_current_a (amperes per
  /// um^2 of gate area) — the hoistable Tox exponential.
  double gate_leakage_density_a_per_um2(const DeviceKnobs& knobs) const;

  /// Convenience: OFF current at full rail Vds = Vdd.
  double subthreshold_current_a(double width_um,
                                const DeviceKnobs& knobs) const;

  /// Gate tunnelling current of a device with Vdd across the oxide,
  /// amperes.  Scales with gate area W * L(Tox) and exponentially with Tox.
  double gate_leakage_current_a(double width_um,
                                const DeviceKnobs& knobs) const;

  /// Total static power of one OFF device at full rail: Vdd * (Isub + Ig), W.
  double off_power_w(double width_um, const DeviceKnobs& knobs) const;

  /// Static power split by mechanism — the decomposition the paper's
  /// motivation rests on (gate tunnelling can surpass subthreshold).
  struct LeakageSplit {
    double subthreshold_w = 0.0;
    double gate_w = 0.0;
    double total() const { return subthreshold_w + gate_w; }
  };

  /// off_power_w split by mechanism.
  LeakageSplit off_power_split_w(double width_um,
                                 const DeviceKnobs& knobs) const;

  /// cell_leakage_w split by mechanism.
  LeakageSplit cell_leakage_split_w(const DeviceKnobs& knobs) const;

  /// Saturation drive current, amperes (alpha-power law; Cox ratio folds in
  /// the Tox dependence).
  double on_current_a(double width_um, const DeviceKnobs& knobs) const;

  /// Switching-effective channel resistance Vdd / Ion, ohms.
  double effective_resistance_ohm(double width_um,
                                  const DeviceKnobs& knobs) const;

  /// Gate input capacitance (channel + overlap), farads.  The channel term
  /// W*L(Tox)*Cox(Tox) is nearly Tox-independent because L grows as Cox
  /// shrinks; the overlap term scales with width only.
  double gate_cap_f(double width_um, double tox_a) const;

  /// Drain junction capacitance, farads.
  double drain_cap_f(double width_um) const;

  /// 6T cell footprint at the given Tox, um^2 (Section 2: grows as s^2).
  double cell_area_um2(double tox_a) const;
  double cell_width_um(double tox_a) const;
  double cell_height_um(double tox_a) const;

  /// Static power of one 6T cell holding a value, W: two OFF transistors in
  /// the cross-coupled pair, two (half-biased) OFF pass gates, plus gate
  /// tunnelling through the ON devices.
  double cell_leakage_w(const DeviceKnobs& knobs) const;

  /// Cell read current discharging the bitline (pass gate in series with
  /// pull-down; modelled as the weaker pass-gate drive), amperes.
  double cell_read_current_a(const DeviceKnobs& knobs) const;

 private:
  TechnologyParams params_;
};

// ---------------------------------------------------------------------------
// Knob-bound device views.
//
// The cache component models (src/cachemodel) evaluate one (Vth, Tox) pair
// against many widths and geometries.  Their evaluation bodies are written
// once as templates over a "bound device" vocabulary — the DeviceModel
// surface with the knobs already applied — and instantiated against two
// views:
//
//  * DeviceView forwards every call verbatim to the scalar DeviceModel.
//    It cannot change results: the scalar evaluate(knobs) entry points go
//    through it, performing the identical call sequence they always did.
//  * BoundDevice hoists the knob-only transcendental factors (the two
//    subthreshold exponentials, the gate-tunnelling exponential, and the
//    alpha-power overdrive term) at construction, so a whole option-table
//    row reuses them.  Each hoisted value is produced by the SAME
//    DeviceModel helper the scalar path multiplies through, and every
//    width-dependent expression keeps the scalar path's association order,
//    so the batched path is bitwise-equal to the scalar one (pinned by the
//    differential test in tests/test_cachemodel_batch.cc).
// ---------------------------------------------------------------------------

/// Thin forwarding view: DeviceModel + knobs with no precomputation.
class DeviceView {
 public:
  DeviceView(const DeviceModel& dev, const DeviceKnobs& knobs)
      : dev_(dev), knobs_(knobs) {}

  const TechnologyParams& params() const { return dev_.params(); }
  const DeviceKnobs& knobs() const { return knobs_; }
  double geometry_scale() const { return dev_.geometry_scale(knobs_.tox_a); }
  double leff_um() const { return dev_.leff_um(knobs_.tox_a); }
  double cell_width_um() const { return dev_.cell_width_um(knobs_.tox_a); }
  double cell_height_um() const { return dev_.cell_height_um(knobs_.tox_a); }
  double cell_area_um2() const { return dev_.cell_area_um2(knobs_.tox_a); }
  double gate_cap_f(double width_um) const {
    return dev_.gate_cap_f(width_um, knobs_.tox_a);
  }
  double drain_cap_f(double width_um) const {
    return dev_.drain_cap_f(width_um);
  }
  double on_current_a(double width_um) const {
    return dev_.on_current_a(width_um, knobs_);
  }
  double effective_resistance_ohm(double width_um) const {
    return dev_.effective_resistance_ohm(width_um, knobs_);
  }
  DeviceModel::LeakageSplit off_power_split_w(double width_um) const {
    return dev_.off_power_split_w(width_um, knobs_);
  }
  DeviceModel::LeakageSplit cell_leakage_split_w() const {
    return dev_.cell_leakage_split_w(knobs_);
  }
  double cell_read_current_a() const {
    return dev_.cell_read_current_a(knobs_);
  }

 private:
  const DeviceModel& dev_;
  DeviceKnobs knobs_;
};

/// Hoisted view: binds the knobs once, paying the exp()/pow() chain a
/// single time, then serves every width-dependent query with multiplies
/// and adds only.  Same vocabulary as DeviceView.
class BoundDevice {
 public:
  BoundDevice(const DeviceModel& dev, const DeviceKnobs& knobs);

  const TechnologyParams& params() const { return dev_->params(); }
  const DeviceKnobs& knobs() const { return knobs_; }
  double geometry_scale() const { return s_; }
  double leff_um() const { return leff_um_; }
  double cell_width_um() const { return cell_width_um_; }
  double cell_height_um() const { return cell_height_um_; }
  double cell_area_um2() const { return cell_width_um_ * cell_height_um_; }

  double gate_cap_f(double width_um) const;
  double drain_cap_f(double width_um) const;
  double on_current_a(double width_um) const;
  double effective_resistance_ohm(double width_um) const;
  DeviceModel::LeakageSplit off_power_split_w(double width_um) const;
  DeviceModel::LeakageSplit cell_leakage_split_w() const;
  double cell_read_current_a() const;

 private:
  const DeviceModel* dev_;
  DeviceKnobs knobs_;
  double s_ = 1.0;                 // geometry scale at this Tox
  double leff_um_ = 0.0;           // effective channel length
  double cox_per_um2_ = 0.0;       // oxide capacitance density
  double cell_width_um_ = 0.0;
  double cell_height_um_ = 0.0;
  double isub_full_per_um_ = 0.0;  // subthreshold A/um at Vds = Vdd
  double isub_half_per_um_ = 0.0;  // subthreshold A/um at Vds = Vdd/2
  double ig_density_ = 0.0;        // gate tunnelling A/um^2
  double cox_ratio_ = 0.0;         // Cox(Tox)/Cox(ref) drive factor
  double overdrive_pow_ = 0.0;     // alpha-power overdrive term
};

}  // namespace nanocache::tech
