// Per-device analytical model: leakage currents (subthreshold + gate),
// drive strength, capacitances, and the Tox-coupled geometry scaling the
// paper imposes (Section 2: thicker Tox => longer drawn channel => larger
// cell in both dimensions).
#pragma once

#include "tech/params.h"

namespace nanocache::tech {

/// The two process knobs the paper assigns per cache component.
struct DeviceKnobs {
  double vth_v = 0.30;
  double tox_a = 12.0;

  friend bool operator==(const DeviceKnobs&, const DeviceKnobs&) = default;
};

/// Analytical transistor model.  All width arguments are in um and refer to
/// the *nominal-geometry* width; the model internally applies the Tox-driven
/// geometry scale where the paper requires it (cell area, gate area).
class DeviceModel {
 public:
  explicit DeviceModel(TechnologyParams params);

  const TechnologyParams& params() const { return params_; }

  /// Linear geometry scale s(Tox) = Tox / Tox_nominal (1 when area scaling
  /// is disabled).  Cell width/height and channel length scale by s.
  double geometry_scale(double tox_a) const;

  /// Effective channel length at the given Tox, um.
  double leff_um(double tox_a) const;

  /// Subthreshold (weak-inversion) leakage current of an OFF device with
  /// Vds = vds_v, per the BSIM-style exponential, amperes.
  double subthreshold_current_a(double width_um, const DeviceKnobs& knobs,
                                double vds_v) const;

  /// Convenience: OFF current at full rail Vds = Vdd.
  double subthreshold_current_a(double width_um,
                                const DeviceKnobs& knobs) const;

  /// Gate tunnelling current of a device with Vdd across the oxide,
  /// amperes.  Scales with gate area W * L(Tox) and exponentially with Tox.
  double gate_leakage_current_a(double width_um,
                                const DeviceKnobs& knobs) const;

  /// Total static power of one OFF device at full rail: Vdd * (Isub + Ig), W.
  double off_power_w(double width_um, const DeviceKnobs& knobs) const;

  /// Static power split by mechanism — the decomposition the paper's
  /// motivation rests on (gate tunnelling can surpass subthreshold).
  struct LeakageSplit {
    double subthreshold_w = 0.0;
    double gate_w = 0.0;
    double total() const { return subthreshold_w + gate_w; }
  };

  /// off_power_w split by mechanism.
  LeakageSplit off_power_split_w(double width_um,
                                 const DeviceKnobs& knobs) const;

  /// cell_leakage_w split by mechanism.
  LeakageSplit cell_leakage_split_w(const DeviceKnobs& knobs) const;

  /// Saturation drive current, amperes (alpha-power law; Cox ratio folds in
  /// the Tox dependence).
  double on_current_a(double width_um, const DeviceKnobs& knobs) const;

  /// Switching-effective channel resistance Vdd / Ion, ohms.
  double effective_resistance_ohm(double width_um,
                                  const DeviceKnobs& knobs) const;

  /// Gate input capacitance (channel + overlap), farads.  The channel term
  /// W*L(Tox)*Cox(Tox) is nearly Tox-independent because L grows as Cox
  /// shrinks; the overlap term scales with width only.
  double gate_cap_f(double width_um, double tox_a) const;

  /// Drain junction capacitance, farads.
  double drain_cap_f(double width_um) const;

  /// 6T cell footprint at the given Tox, um^2 (Section 2: grows as s^2).
  double cell_area_um2(double tox_a) const;
  double cell_width_um(double tox_a) const;
  double cell_height_um(double tox_a) const;

  /// Static power of one 6T cell holding a value, W: two OFF transistors in
  /// the cross-coupled pair, two (half-biased) OFF pass gates, plus gate
  /// tunnelling through the ON devices.
  double cell_leakage_w(const DeviceKnobs& knobs) const;

  /// Cell read current discharging the bitline (pass gate in series with
  /// pull-down; modelled as the weaker pass-gate drive), amperes.
  double cell_read_current_a(const DeviceKnobs& knobs) const;

 private:
  TechnologyParams params_;
};

}  // namespace nanocache::tech
