// Technology parameters for the analytical 65 nm device model.
//
// This is the repository's substitute for the paper's HSPICE + Berkeley
// Predictive Technology Model (BPTM) characterization flow: a BSIM-flavoured
// analytical model whose constants are chosen to match published 65 nm
// behaviour (subthreshold swing ~90-100 mV/dec, gate tunnelling growing
// ~2.5-3x per Angstrom of Tox thinning, alpha-power-law drive).  Everything
// downstream (component models, fits, optimizers) consumes only this struct,
// so alternative nodes are a parameter pack away.
#pragma once

#include <vector>

namespace nanocache::tech {

/// Knob bounds studied by the paper (Section 2).
struct KnobRange {
  double vth_min_v = 0.20;
  double vth_max_v = 0.50;
  double tox_min_a = 10.0;
  double tox_max_a = 14.0;
};

struct TechnologyParams {
  // --- operating point ---
  double vdd_v = 1.0;            ///< supply voltage
  double temperature_k = 358.0;  ///< 85C junction temperature

  // --- geometry ---
  double lgate_nominal_um = 0.035;  ///< effective channel length at tox_nominal
  double tox_nominal_a = 12.0;      ///< Tox at which geometry scale == 1
  /// Drawn channel length (and, for cells, width) scales linearly with Tox
  /// to keep DIBL in check (paper Section 2).  When disabled, geometry is
  /// frozen at nominal — used for the area-scaling ablation.
  bool area_scaling_enabled = true;

  // --- subthreshold leakage ---
  double subthreshold_ideality_n = 1.30;  ///< swing = n * vT * ln10
  /// Extrapolated subthreshold current at Vth = 0, Vgs = 0, Vds = Vdd,
  /// per um of width, at nominal geometry (A/um).
  double isub0_a_per_um = 30e-6;
  double dibl_mv_per_v = 120.0;  ///< Vth lowering per volt of Vds

  // --- gate (tunnelling) leakage ---
  /// Gate current density at tox = jg_ref_tox_a with Vdd across the oxide
  /// (A/um^2).  ~10 uA/um^2 at 10 A matches published 65 nm-era data.
  double jg_ref_a_per_um2 = 22e-6;
  double jg_ref_tox_a = 10.0;
  /// ln-slope of gate current density per Angstrom of Tox increase;
  /// exp(-1.05) ~ 0.35 => ~2.9x reduction per added Angstrom.
  double jg_tox_slope_per_a = 1.05;

  // --- drive current / delay ---
  double alpha_power = 1.45;  ///< alpha-power-law velocity saturation index
  /// Saturation drive at the fast corner (Vth = 0.2 V, Tox = 10 A), A/um.
  double idsat_ref_a_per_um = 550e-6;
  /// Global multiplier mapping RC time constants to realized path delay;
  /// calibrated once so the 16 KB scheme-III access-time window matches the
  /// paper's Figure 1 x-axis (~0.8-2.2 ns).
  double delay_calibration = 3.1;

  // --- parasitics ---
  double cov_f_per_um = 0.25e-15;    ///< gate overlap/fringe cap per um width
  double cj_f_per_um = 0.80e-15;     ///< drain junction cap per um width
  double cwire_f_per_um = 0.20e-15;  ///< wire cap per um length
  double rwire_ohm_per_um = 1.0;     ///< wire resistance per um length

  // --- 6T SRAM cell at nominal geometry ---
  double cell_width_um = 1.15;   ///< wordline-direction pitch
  double cell_height_um = 0.50;  ///< bitline-direction pitch
  double wcell_pulldown_um = 0.18;
  double wcell_pullup_um = 0.09;
  double wcell_pass_um = 0.12;
  double bitline_swing_v = 0.15;  ///< differential swing sensed

  KnobRange knobs;

  /// Thermal voltage kT/q at the configured temperature, volts.
  double thermal_voltage_v() const;

  /// Subthreshold swing in mV/decade implied by the ideality factor.
  double subthreshold_swing_mv_per_dec() const;

  /// Throws nanocache::Error if any parameter is non-physical.
  void validate() const;
};

/// BPTM-65-flavoured defaults with the delay calibration applied so that a
/// 16 KB cache spans the paper's Figure 1 access-time window.  This is the
/// node the paper studies and the only one the reproduction's absolute
/// numbers are calibrated at.
TechnologyParams bptm65();

/// The preceding node (90 nm-flavoured): thicker oxide window, weaker gate
/// tunnelling, larger cells — the world of the paper's refs [1-7], where
/// subthreshold dominated and Vth-only optimization was enough.
TechnologyParams node90();

/// A projected following node (45 nm-flavoured, pre-high-k): thinner oxide
/// window with gate tunnelling up another order of magnitude — the
/// "future processor generations" of the paper's introduction.
TechnologyParams node45();

/// Continued projection (32 nm-flavoured): the trends of 90->65->45 carried
/// one step further — lower Vdd, shorter channel, thinner oxide window with
/// gate tunnelling dominating, smaller cell.
TechnologyParams node32();

/// End of the planar-oxide projection (22 nm-flavoured): the regime where
/// the paper's total-leakage framework predicts gate tunnelling overwhelms
/// subthreshold across the whole knob window.
TechnologyParams node22();

/// Selectable node menu: the five nodes the design-space API exposes.
/// Returns {90, 65, 45, 32, 22}, sorted descending (coarse to fine).
const std::vector<int>& supported_nodes();

/// Technology parameters for one of the supported nodes (90/65/45/32/22).
/// Throws nanocache::Error(kConfig) for any other value.
TechnologyParams node_params(int node_nm);

/// The per-node knob grid the design-space optimizers search: the paper's
/// Vth ladder (0.20..0.50 V step 0.05) crossed with five Tox values evenly
/// spaced across the node's oxide window — the same rule the
/// abl_node_scaling bench uses.
std::vector<double> node_tox_grid(const TechnologyParams& params);

}  // namespace nanocache::tech
