// Stage-delay primitives: the Horowitz slope-aware gate delay approximation
// (as used by CACTI) plus simple RC helpers for distributed wires.
#pragma once

#include "tech/device.h"

namespace nanocache::tech {

/// Horowitz gate-delay approximation.
///
///   delay = tf * sqrt( (ln vs)^2 + 2 * a * b * (1 - vs) )
///
/// where tf is the output time constant, `input_ramp` the input transition
/// time, vs the switching threshold (fraction of Vdd), a = input_ramp / tf
/// and b the transistor gain factor (~0.5).  Falls back to 0.69*tf for step
/// inputs.
double horowitz(double input_ramp_s, double tf_s, double switching_v_frac,
                double gain_b = 0.5);

/// Result of a single logic stage evaluation.
struct StageDelay {
  double delay_s = 0.0;      ///< 50% input to 50% output
  double out_ramp_s = 0.0;   ///< output transition time handed to next stage
};

/// Delay of one gate stage: driver with effective resistance `r_drive`
/// charging `c_load`, evaluated via Horowitz with the incoming ramp.
StageDelay gate_stage(double r_drive_ohm, double c_load_f,
                      double input_ramp_s);

/// Elmore delay of a distributed RC wire driven by `r_drive` with a lumped
/// load `c_end` at the far end: R*(Cw/2 + Ce) + Rw*(Cw/2 + Ce) form.
double distributed_rc_delay(double r_drive_ohm, double r_wire_ohm,
                            double c_wire_f, double c_end_f);

/// Inverter-chain driver: given a first-stage input cap target and a final
/// load, size a geometric chain with stage effort ~4 and return its total
/// delay and total transistor width (for leakage accounting).
struct DriverChain {
  double delay_s = 0.0;
  double total_width_um = 0.0;  ///< sum of stage widths (nominal geometry)
  int stages = 0;
  double out_ramp_s = 0.0;
};

/// Build/evaluate an inverter chain in technology `dev` at knobs `knobs`
/// driving `c_load_f` (plus a wire with total resistance r_wire and
/// capacitance c_wire).  `w_first_um` fixes the first stage width.
DriverChain driver_chain(const DeviceModel& dev, const DeviceKnobs& knobs,
                         double w_first_um, double c_load_f,
                         double r_wire_ohm = 0.0, double c_wire_f = 0.0,
                         double input_ramp_s = 0.0);

/// Knob-bound overloads sharing one implementation with the scalar entry
/// point above (see the view contract in tech/device.h).
DriverChain driver_chain(const DeviceView& dev, double w_first_um,
                         double c_load_f, double r_wire_ohm = 0.0,
                         double c_wire_f = 0.0, double input_ramp_s = 0.0);
DriverChain driver_chain(const BoundDevice& dev, double w_first_um,
                         double c_load_f, double r_wire_ohm = 0.0,
                         double c_wire_f = 0.0, double input_ramp_s = 0.0);

/// Repeater-segmented long wire: the wire is cut into ~kRepeaterSegmentUm
/// pieces, each driven by a fixed-width repeater, making delay linear in
/// length (instead of quadratic for an unrepeated RC line).
struct RepeatedWire {
  double delay_s = 0.0;
  double total_width_um = 0.0;  ///< summed repeater width (leakage census)
  int segments = 0;
};

inline constexpr double kRepeaterSegmentUm = 400.0;
inline constexpr double kRepeaterWidthUm = 32.0;

RepeatedWire repeated_wire(const DeviceModel& dev, const DeviceKnobs& knobs,
                           double length_um, double c_end_f,
                           double input_ramp_s = 0.0);

RepeatedWire repeated_wire(const DeviceView& dev, double length_um,
                           double c_end_f, double input_ramp_s = 0.0);
RepeatedWire repeated_wire(const BoundDevice& dev, double length_um,
                           double c_end_f, double input_ramp_s = 0.0);

}  // namespace nanocache::tech
