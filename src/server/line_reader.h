// Per-connection line framing with a bounded line length.
//
// The wire format is newline-delimited JSON, so the reader's job is
// std::getline over a socket — with two server-specific hardenings:
//
//  * CRLF tolerance: a trailing '\r' is stripped, matching the batch
//    reader (run_batch_jsonl), so Windows-ish clients see identical
//    responses.
//  * Bounded memory: a line longer than `max_line_bytes` can never make
//    the server buffer it.  The reader discards the oversized line's bytes
//    up to its terminating newline (holding at most one chunk at a time)
//    and reports it as kTooLong exactly once, so the server can answer
//    with an in-band error response and KEEP the connection — the framing
//    stays synchronized because discarding consumed through the newline.
//
// EOF semantics match std::getline: a final unterminated line (client
// half-closed mid-line, "partial line then disconnect") is still yielded
// as a line, then the next call reports kEof.
#pragma once

#include <cstddef>
#include <string>

namespace nanocache::server {

enum class LineStatus {
  kLine,     ///< `line` holds the next frame ('\n' and trailing '\r' removed)
  kTooLong,  ///< a frame exceeded max_line_bytes and was discarded whole
  kEof,      ///< connection read side is done
};

class LineReader {
 public:
  /// Reads frames from `fd` (a connected stream socket the caller keeps
  /// open for the reader's lifetime).  `max_line_bytes` bounds the payload
  /// length of one frame, newline excluded.
  LineReader(int fd, std::size_t max_line_bytes);

  /// Blocking: the next frame, an oversized-frame report, or EOF.
  LineStatus next(std::string& line);

 private:
  /// Append the next chunk from fd_; flips eof_ on close or hard error.
  void fill();

  int fd_;
  std::size_t max_line_bytes_;
  std::string buffer_;
  /// Bytes of an oversized frame discarded so far (0 = not discarding).
  std::size_t discarded_ = 0;
  bool eof_ = false;
};

}  // namespace nanocache::server
