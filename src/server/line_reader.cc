#include "server/line_reader.h"

#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>

namespace nanocache::server {

LineReader::LineReader(int fd, std::size_t max_line_bytes)
    : fd_(fd), max_line_bytes_(max_line_bytes == 0 ? 1 : max_line_bytes) {}

void LineReader::fill() {
  char chunk[64 * 1024];
  for (;;) {
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n > 0) {
      buffer_.append(chunk, static_cast<std::size_t>(n));
      return;
    }
    if (n == 0) {
      eof_ = true;
      return;
    }
    if (errno == EINTR) continue;
    // A hard read error (ECONNRESET, shutdown) frames the same as EOF:
    // finish what was buffered, then report kEof.
    eof_ = true;
    return;
  }
}

LineStatus LineReader::next(std::string& line) {
  for (;;) {
    const auto nl = buffer_.find('\n');
    if (nl != std::string::npos) {
      if (discarded_ > 0 || nl > max_line_bytes_) {
        // The terminating newline of an oversized frame: consume it so the
        // next frame parses cleanly, and report the rejection once.
        buffer_.erase(0, nl + 1);
        discarded_ = 0;
        return LineStatus::kTooLong;
      }
      line.assign(buffer_, 0, nl);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      buffer_.erase(0, nl + 1);
      return LineStatus::kLine;
    }
    // No newline buffered.  Shed oversized partial frames now so the
    // buffer never grows past max_line_bytes + one read chunk.
    if (discarded_ > 0) {
      discarded_ += buffer_.size();
      buffer_.clear();
    } else if (buffer_.size() > max_line_bytes_) {
      discarded_ = buffer_.size();
      buffer_.clear();
    }
    if (eof_) {
      if (discarded_ > 0) {
        discarded_ = 0;
        return LineStatus::kTooLong;
      }
      if (buffer_.empty()) return LineStatus::kEof;
      // getline semantics: a final unterminated line still counts.
      line = buffer_;
      if (!line.empty() && line.back() == '\r') line.pop_back();
      buffer_.clear();
      return LineStatus::kLine;
    }
    fill();
  }
}

}  // namespace nanocache::server
