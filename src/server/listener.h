// Portable (POSIX) socket listener for the JSONL server.
//
// Two transports, selected by the --listen spec:
//
//   unix:/path/to/sock    stream socket bound to a filesystem path
//   tcp:host:port         IPv4 TCP (host is a dotted quad or "localhost")
//
// Parsing is strict and typed: an empty unix path, a missing/garbage/
// out-of-range port, an empty host, or an unknown scheme is an
// Error(kConfig) quoting the offending spec — the same taxonomy (and
// therefore the same exit code 2) the CLI's other flag validation uses.
// Binding an address that is already in use (a second server, a stale unix
// socket file) is also Error(kConfig): the operator must pick another
// address or remove the stale file; the listener never unlinks a path it
// did not create.  Every other socket failure is Error(kIo).
#pragma once

#include <string>

namespace nanocache::server {

enum class ListenKind { kUnix, kTcp };

struct ListenSpec {
  ListenKind kind = ListenKind::kUnix;
  std::string path;  ///< unix: filesystem path of the socket
  std::string host;  ///< tcp: dotted-quad IPv4 or "localhost"
  int port = 0;      ///< tcp: 1..65535 from the spec (0 = ephemeral, only
                     ///< reachable by constructing the struct directly)

  /// Human-readable round trip ("unix:/run/x.sock", "tcp:127.0.0.1:9100").
  std::string describe() const;
};

/// Strict `--listen` parser.  Accepts exactly `unix:<non-empty path>` and
/// `tcp:<host>:<port>` with port in [1, 65535]; throws Error(kConfig)
/// otherwise (empty path, empty host, non-numeric / out-of-range / trailing
/// garbage port, unknown scheme).  Never guesses defaults.
ListenSpec parse_listen_spec(const std::string& spec);

class Listener {
 public:
  /// Bind + listen on `spec`.  An address already in use (double bind,
  /// stale unix socket file) throws Error(kConfig); other failures throw
  /// Error(kIo).  A unix path bound here is unlinked by close().
  static Listener open(const ListenSpec& spec);

  Listener(Listener&& other) noexcept;
  Listener(const Listener&) = delete;
  Listener& operator=(const Listener&) = delete;
  Listener& operator=(Listener&&) = delete;
  ~Listener();

  /// Wait for the next connection, or for a byte on `wake_fd`.  Returns
  /// the accepted connection fd, or -1 once `wake_fd` became readable or
  /// the listener was closed (the shutdown paths).
  int accept(int wake_fd);

  /// Close the listening socket and unlink a unix path this listener
  /// bound.  Idempotent; accept() returns -1 afterwards.
  void close();

  /// The resolved TCP port (meaningful after open on a tcp spec; equals
  /// the spec's port unless it was 0/ephemeral).
  int bound_port() const { return bound_port_; }

  const ListenSpec& spec() const { return spec_; }

 private:
  Listener() = default;

  ListenSpec spec_;
  int fd_ = -1;
  int bound_port_ = 0;
  bool unlink_on_close_ = false;
};

}  // namespace nanocache::server
