// Persistent concurrent JSONL server — `nanocache_cli serve`.
//
// One warm api::Service is multiplexed across many client connections:
//
//   accept loop ── per-connection reader ──> bounded queue ──> worker pool
//                                                                  │
//   client <──── per-connection in-order response writer <─────────┘
//
// Protocol: each connection speaks the batch-mode JSONL wire format
// (docs/API.md).  Every non-blank request line produces exactly one
// response line, in the order the requests were written — and the response
// bytes are identical to what `nanocache_cli batch` would emit for the same
// stream, because each line goes through the same parse_request_json /
// Service::serve / response_line pipeline with the same line-numbering,
// blank-line, and CRLF rules.  Parse failures and oversized lines are
// answered IN PLACE with an error response; the connection survives.
//
// Two control requests are answered at the server layer:
//   {"kind":"capabilities"}  the standard discovery request (batch-valid)
//   {"kind":"metrics"}       a live snapshot of the process metrics
//                            registry (server-only; excluded, like all
//                            metrics, from the byte-identity contract)
//
// Concurrency model: requests from ALL connections funnel through one
// bounded queue (admission control — a full queue blocks readers, which
// propagates backpressure to clients through the socket) into a fixed pool
// of worker threads.  Each worker evaluates requests serially inline
// (par::SerialRegionGuard), mirroring run_batch's per-worker behavior, so
// cross-request parallelism comes from the worker count while every
// response stays byte-identical to a serial evaluation.  Workers share the
// Service's memoization and disk caches, so concurrent clients asking for
// the same computation get bitwise-equal answers with the cost paid once.
//
// Shutdown (SIGINT/SIGTERM via install_signal_handlers, or shutdown()):
// stop accepting, stop reading (half-close every connection's read side),
// answer everything already admitted, flush the persistent disk cache,
// close connections (clients see EOF after their final response), exit 0.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "nanocache/service.h"
#include "server/bounded_queue.h"
#include "server/listener.h"

namespace nanocache::server {

struct ServerConfig {
  ListenSpec listen;
  /// Maximum request-line length in bytes (newline excluded).  Longer
  /// lines are rejected in-band with a kConfig error response.
  std::size_t max_line_bytes = 1u << 20;
  /// Admission-control bound: requests queued across all connections.
  std::size_t queue_capacity = 256;
  /// Worker threads evaluating requests (0 = par::default_threads()).
  int workers = 0;
};

/// Point-in-time serving counters (also mirrored into the process metrics
/// registry under server.* names).
struct ServerStats {
  std::uint64_t connections_accepted = 0;
  std::uint64_t requests_admitted = 0;
  std::uint64_t responses_written = 0;
  std::uint64_t lines_rejected_too_long = 0;
  std::uint64_t control_requests = 0;
};

class Server {
 public:
  /// The server keeps `service` warm for its lifetime.  `config.listen`
  /// must be fully specified (see parse_listen_spec).
  Server(std::shared_ptr<api::Service> service, ServerConfig config);
  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Bind the listener and spawn the accept loop + worker pool.  Throws
  /// Error(kConfig) when the address is already in use, Error(kIo) for
  /// other socket failures.
  void start();

  /// Initiate graceful shutdown (idempotent, callable from any thread):
  /// stop accepting, drain in-flight requests, flush the disk cache.
  void shutdown();

  /// Block until the server has fully drained and released its resources.
  void wait();

  /// Route SIGINT/SIGTERM to server.shutdown() and ignore SIGPIPE (broken
  /// client connections surface as send() errors instead of killing the
  /// process).  One server per process; installing for a second replaces
  /// the first.
  static void install_signal_handlers(Server& server);

  /// The resolved TCP port (after start(); meaningful for tcp specs —
  /// equals the configured port unless it was 0/ephemeral).
  int tcp_port() const;

  const ServerConfig& config() const { return config_; }

  ServerStats stats() const;

 private:
  /// One accepted client connection: the socket, and the sequencer that
  /// restores response order when workers finish out of order.
  struct Connection {
    explicit Connection(int fd) : fd(fd) {}

    /// Hand back worker results; writes every line that became contiguous.
    void deliver(std::uint64_t seq, std::string line, Server& server);
    /// Half-close the read side so a blocked reader unblocks with EOF.
    void shutdown_read();
    /// Close the socket once the reader is done and every admitted
    /// request was answered (the client then sees EOF).  Idempotent.
    void close_if_drained();
    void close();

    std::mutex mutex;
    int fd;
    /// Out-of-order results parked until their turn (seq -> line).
    std::map<std::uint64_t, std::string> pending;
    std::uint64_t next_write_seq = 0;
    std::uint64_t enqueued = 0;  ///< seqs assigned by the reader
    std::uint64_t written = 0;   ///< responses flushed to the socket
    bool reader_done = false;
    bool write_failed = false;  ///< client went away; drop further writes
  };

  /// One unit of work: answer line `seq` of `conn`.
  struct Task {
    std::shared_ptr<Connection> conn;
    std::uint64_t seq = 0;
    std::uint64_t line_number = 0;  ///< 1-based input line (batch parity)
    bool too_long = false;
    std::string line;
  };

  void accept_loop();
  void reader_loop(const std::shared_ptr<Connection>& conn);
  void worker_loop();
  /// Compute the response line (no trailing newline) for one task.
  std::string respond(const Task& task);
  /// Join reader threads whose connection already drained (bounds thread
  /// accumulation on a long-lived server).  Called from the accept loop.
  void reap_finished_readers();

  std::shared_ptr<api::Service> service_;
  ServerConfig config_;

  std::optional<Listener> listener_;
  bool started_ = false;
  int wake_pipe_[2] = {-1, -1};

  BoundedQueue<Task> queue_;
  std::vector<std::thread> workers_;
  std::thread accept_thread_;

  std::mutex connections_mutex_;
  std::vector<std::pair<std::shared_ptr<Connection>, std::thread>>
      connections_;

  std::atomic<std::uint64_t> connections_accepted_{0};
  std::atomic<std::uint64_t> requests_admitted_{0};
  std::atomic<std::uint64_t> responses_written_{0};
  std::atomic<std::uint64_t> lines_rejected_too_long_{0};
  std::atomic<std::uint64_t> control_requests_{0};
};

}  // namespace nanocache::server
