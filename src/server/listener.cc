#include "server/listener.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "util/error.h"

namespace nanocache::server {

namespace {

/// Strict port parse: digits only, no sign, no trailing garbage, [1,65535].
int parse_port(const std::string& s, const std::string& spec) {
  NC_REQUIRE(!s.empty(), "--listen '" + spec + "': missing port");
  long value = 0;
  for (const char c : s) {
    NC_REQUIRE(c >= '0' && c <= '9',
               "--listen '" + spec + "': port '" + s +
                   "' is not a positive integer");
    value = value * 10 + (c - '0');
    NC_REQUIRE(value <= 65535,
               "--listen '" + spec + "': port '" + s +
                   "' outside [1, 65535]");
  }
  NC_REQUIRE(value >= 1,
             "--listen '" + spec + "': port '" + s + "' outside [1, 65535]");
  return static_cast<int>(value);
}

[[noreturn]] void throw_errno(ErrorCategory category, const std::string& what,
                              const ListenSpec& spec) {
  throw Error(category, what + " for " + spec.describe() + ": " +
                            std::strerror(errno));
}

}  // namespace

std::string ListenSpec::describe() const {
  if (kind == ListenKind::kUnix) return "unix:" + path;
  return "tcp:" + host + ":" + std::to_string(port);
}

ListenSpec parse_listen_spec(const std::string& spec) {
  ListenSpec out;
  if (spec.rfind("unix:", 0) == 0) {
    out.kind = ListenKind::kUnix;
    out.path = spec.substr(5);
    NC_REQUIRE(!out.path.empty(),
               "--listen '" + spec + "': unix socket path is empty");
    NC_REQUIRE(out.path.size() < sizeof(sockaddr_un{}.sun_path),
               "--listen '" + spec + "': unix socket path longer than " +
                   std::to_string(sizeof(sockaddr_un{}.sun_path) - 1) +
                   " bytes");
    return out;
  }
  if (spec.rfind("tcp:", 0) == 0) {
    out.kind = ListenKind::kTcp;
    const std::string rest = spec.substr(4);
    const auto colon = rest.rfind(':');
    NC_REQUIRE(colon != std::string::npos,
               "--listen '" + spec + "': expected tcp:<host>:<port>");
    out.host = rest.substr(0, colon);
    NC_REQUIRE(!out.host.empty(), "--listen '" + spec + "': host is empty");
    out.port = parse_port(rest.substr(colon + 1), spec);
    // Validate the host now (kConfig at flag-parse time, not kIo at bind):
    // a dotted-quad IPv4 address or the literal "localhost".
    if (out.host != "localhost") {
      in_addr addr{};
      NC_REQUIRE(::inet_pton(AF_INET, out.host.c_str(), &addr) == 1,
                 "--listen '" + spec + "': host '" + out.host +
                     "' is not an IPv4 address or 'localhost'");
    }
    return out;
  }
  throw Error(ErrorCategory::kConfig,
              "--listen '" + spec +
                  "' must start with unix:<path> or tcp:<host>:<port>");
}

Listener Listener::open(const ListenSpec& spec) {
  Listener listener;
  listener.spec_ = spec;

  if (spec.kind == ListenKind::kUnix) {
    listener.fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (listener.fd_ < 0) throw_errno(ErrorCategory::kIo, "socket", spec);
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, spec.path.c_str(),
                 sizeof(addr.sun_path) - 1);
    if (::bind(listener.fd_, reinterpret_cast<sockaddr*>(&addr),
               sizeof(addr)) != 0) {
      const int err = errno;
      ::close(listener.fd_);
      listener.fd_ = -1;
      if (err == EADDRINUSE) {
        throw Error(ErrorCategory::kConfig,
                    spec.describe() +
                        " is already in use (another server, or a stale "
                        "socket file — remove it to rebind)");
      }
      errno = err;
      throw_errno(ErrorCategory::kIo, "bind", spec);
    }
    listener.unlink_on_close_ = true;
  } else {
    listener.fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listener.fd_ < 0) throw_errno(ErrorCategory::kIo, "socket", spec);
    // Allow immediate rebinding after a clean shutdown (TIME_WAIT); an
    // actively listening socket still raises EADDRINUSE, so double binds
    // stay detected.
    const int one = 1;
    ::setsockopt(listener.fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(spec.port));
    if (spec.host == "localhost") {
      addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    } else {
      ::inet_pton(AF_INET, spec.host.c_str(), &addr.sin_addr);
    }
    if (::bind(listener.fd_, reinterpret_cast<sockaddr*>(&addr),
               sizeof(addr)) != 0) {
      const int err = errno;
      ::close(listener.fd_);
      listener.fd_ = -1;
      if (err == EADDRINUSE) {
        throw Error(ErrorCategory::kConfig,
                    spec.describe() +
                        " is already in use (another server is listening)");
      }
      errno = err;
      throw_errno(ErrorCategory::kIo, "bind", spec);
    }
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    if (::getsockname(listener.fd_, reinterpret_cast<sockaddr*>(&bound),
                      &len) == 0) {
      listener.bound_port_ = ntohs(bound.sin_port);
    }
  }

  if (::listen(listener.fd_, 64) != 0) {
    const int err = errno;
    listener.close();
    errno = err;
    throw_errno(ErrorCategory::kIo, "listen", spec);
  }
  return listener;
}

Listener::Listener(Listener&& other) noexcept
    : spec_(std::move(other.spec_)),
      fd_(other.fd_),
      bound_port_(other.bound_port_),
      unlink_on_close_(other.unlink_on_close_) {
  other.fd_ = -1;
  other.unlink_on_close_ = false;
}

Listener::~Listener() { close(); }

int Listener::accept(int wake_fd) {
  for (;;) {
    if (fd_ < 0) return -1;
    pollfd fds[2];
    fds[0] = pollfd{fd_, POLLIN, 0};
    fds[1] = pollfd{wake_fd, POLLIN, 0};
    const int n = ::poll(fds, wake_fd >= 0 ? 2 : 1, -1);
    if (n < 0) {
      if (errno == EINTR) continue;
      return -1;
    }
    // Shutdown wins over a simultaneously pending connection: the accept
    // loop must stop admitting the moment the signal lands.
    if (wake_fd >= 0 && (fds[1].revents & (POLLIN | POLLERR | POLLHUP))) {
      return -1;
    }
    if (fds[0].revents & (POLLERR | POLLHUP | POLLNVAL)) return -1;
    if (fds[0].revents & POLLIN) {
      const int conn = ::accept(fd_, nullptr, nullptr);
      if (conn >= 0) return conn;
      if (errno == EINTR || errno == ECONNABORTED) continue;
      return -1;
    }
  }
}

void Listener::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  if (unlink_on_close_) {
    ::unlink(spec_.path.c_str());
    unlink_on_close_ = false;
  }
}

}  // namespace nanocache::server
