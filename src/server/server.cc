#include "server/server.h"

#include <fcntl.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <csignal>
#include <cstring>

#include "api/batch_io.h"
#include "api/metrics_json.h"
#include "server/line_reader.h"
#include "util/error.h"
#include "util/json.h"
#include "util/metrics.h"
#include "util/parallel.h"

namespace nanocache::server {

namespace {

/// A client that stops reading forfeits its remaining responses after this
/// long, instead of parking a worker in send() forever.
constexpr int kSendTimeoutSeconds = 30;

/// Signal handlers may only touch async-signal-safe state: they write one
/// byte into the server's wake pipe, and the accept loop does the rest.
std::atomic<int> g_signal_wake_fd{-1};

void on_terminate_signal(int /*signum*/) {
  const int fd = g_signal_wake_fd.load(std::memory_order_relaxed);
  if (fd >= 0) {
    const char byte = 1;
    [[maybe_unused]] const ssize_t n = ::write(fd, &byte, 1);
  }
}

}  // namespace

// --- Connection -----------------------------------------------------------

void Server::Connection::deliver(std::uint64_t seq, std::string line,
                                 Server& server) {
  std::lock_guard<std::mutex> lock(mutex);
  pending.emplace(seq, std::move(line));
  // Flush every line that just became contiguous: responses leave the
  // socket in request order no matter how workers interleaved.
  while (!pending.empty() && pending.begin()->first == next_write_seq) {
    const std::string& out = pending.begin()->second;
    if (!write_failed && fd >= 0) {
      std::size_t sent = 0;
      while (sent < out.size()) {
        const ssize_t n = ::send(fd, out.data() + sent, out.size() - sent,
                                 MSG_NOSIGNAL);
        if (n < 0) {
          if (errno == EINTR) continue;
          // Broken pipe, reset, or a client that ignored us past the send
          // timeout: keep draining its requests, stop writing.
          write_failed = true;
          break;
        }
        sent += static_cast<std::size_t>(n);
      }
      if (!write_failed) {
        server.responses_written_.fetch_add(1, std::memory_order_relaxed);
      }
    }
    pending.erase(pending.begin());
    ++next_write_seq;
    ++written;
  }
  if (reader_done && written == enqueued && fd >= 0) {
    ::close(fd);
    fd = -1;
  }
}

void Server::Connection::shutdown_read() {
  std::lock_guard<std::mutex> lock(mutex);
  if (fd >= 0) ::shutdown(fd, SHUT_RD);
}

void Server::Connection::close_if_drained() {
  std::lock_guard<std::mutex> lock(mutex);
  if (reader_done && written == enqueued && fd >= 0) {
    ::close(fd);
    fd = -1;
  }
}

void Server::Connection::close() {
  std::lock_guard<std::mutex> lock(mutex);
  if (fd >= 0) {
    ::close(fd);
    fd = -1;
  }
}

// --- Server lifecycle -----------------------------------------------------

Server::Server(std::shared_ptr<api::Service> service, ServerConfig config)
    : service_(std::move(service)),
      config_(std::move(config)),
      queue_(config_.queue_capacity) {}

Server::~Server() {
  if (started_) {
    shutdown();
    wait();
  }
  int expected = wake_pipe_[1];
  g_signal_wake_fd.compare_exchange_strong(expected, -1,
                                           std::memory_order_relaxed);
  for (int& fd : wake_pipe_) {
    if (fd >= 0) {
      ::close(fd);
      fd = -1;
    }
  }
}

void Server::start() {
  NC_REQUIRE_INTERNAL(!started_, "Server::start called twice");
  listener_.emplace(Listener::open(config_.listen));
  NC_REQUIRE_IO(::pipe(wake_pipe_) == 0,
                std::string("pipe: ") + std::strerror(errno));
  // The write end is hit from signal handlers: never let it block.
  ::fcntl(wake_pipe_[1], F_SETFL, O_NONBLOCK);

  const int workers =
      config_.workers > 0 ? config_.workers : par::default_threads();
  workers_.reserve(static_cast<std::size_t>(workers));
  for (int i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
  accept_thread_ = std::thread([this] { accept_loop(); });
  started_ = true;
}

void Server::shutdown() {
  const int fd = wake_pipe_[1];
  if (fd >= 0) {
    const char byte = 1;
    [[maybe_unused]] const ssize_t n = ::write(fd, &byte, 1);
  }
}

void Server::wait() {
  if (accept_thread_.joinable()) accept_thread_.join();
}

void Server::install_signal_handlers(Server& server) {
  NC_REQUIRE_INTERNAL(server.started_,
                      "install_signal_handlers needs a started server");
  g_signal_wake_fd.store(server.wake_pipe_[1], std::memory_order_relaxed);
  // Broken client connections must surface as send() errors on the worker,
  // not kill the process.
  std::signal(SIGPIPE, SIG_IGN);
  struct sigaction sa {};
  sa.sa_handler = on_terminate_signal;
  ::sigemptyset(&sa.sa_mask);
  sa.sa_flags = SA_RESTART;
  ::sigaction(SIGINT, &sa, nullptr);
  ::sigaction(SIGTERM, &sa, nullptr);
}

int Server::tcp_port() const {
  return listener_ ? listener_->bound_port() : 0;
}

ServerStats Server::stats() const {
  ServerStats s;
  s.connections_accepted =
      connections_accepted_.load(std::memory_order_relaxed);
  s.requests_admitted = requests_admitted_.load(std::memory_order_relaxed);
  s.responses_written = responses_written_.load(std::memory_order_relaxed);
  s.lines_rejected_too_long =
      lines_rejected_too_long_.load(std::memory_order_relaxed);
  s.control_requests = control_requests_.load(std::memory_order_relaxed);
  return s;
}

// --- accept / read / work -------------------------------------------------

void Server::accept_loop() {
  for (;;) {
    const int fd = listener_->accept(wake_pipe_[0]);
    if (fd < 0) break;
    // Bound how long a non-reading client can park a worker in send().
    timeval timeout{};
    timeout.tv_sec = kSendTimeoutSeconds;
    ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &timeout, sizeof(timeout));

    connections_accepted_.fetch_add(1, std::memory_order_relaxed);
    metrics::Registry::instance().counter("server.connections").add();
    auto conn = std::make_shared<Connection>(fd);
    std::thread reader([this, conn] { reader_loop(conn); });
    {
      std::lock_guard<std::mutex> lock(connections_mutex_);
      connections_.emplace_back(conn, std::move(reader));
    }
    reap_finished_readers();
  }

  // ---- graceful drain ----------------------------------------------------
  // Stop admitting: close the listener (and unlink a unix socket path) so
  // new connects fail fast while we drain.
  listener_->close();
  {
    // Stop reading: readers wake with EOF, finishing any lines their
    // buffers already hold.
    std::lock_guard<std::mutex> lock(connections_mutex_);
    for (auto& [conn, thread] : connections_) conn->shutdown_read();
  }
  std::vector<std::pair<std::shared_ptr<Connection>, std::thread>> conns;
  {
    std::lock_guard<std::mutex> lock(connections_mutex_);
    conns.swap(connections_);
  }
  // After the readers join, no new work can appear; workers keep draining
  // the queue the whole time, so a reader blocked on a full queue always
  // makes progress to its EOF.
  for (auto& [conn, thread] : conns) thread.join();
  queue_.close();
  for (auto& worker : workers_) worker.join();
  // Every admitted request is now answered: release the sockets so
  // clients see EOF after their final response line.
  for (auto& [conn, thread] : conns) conn->close();
  // Durability before exit: entries computed this run survive to the next.
  service_->flush_disk_cache();
}

void Server::reap_finished_readers() {
  std::vector<std::thread> finished;
  {
    std::lock_guard<std::mutex> lock(connections_mutex_);
    auto it = connections_.begin();
    while (it != connections_.end()) {
      bool done = false;
      {
        std::lock_guard<std::mutex> conn_lock(it->first->mutex);
        done = it->first->reader_done && it->first->fd < 0;
      }
      if (done) {
        finished.push_back(std::move(it->second));
        it = connections_.erase(it);
      } else {
        ++it;
      }
    }
  }
  for (auto& thread : finished) thread.join();
}

void Server::reader_loop(const std::shared_ptr<Connection>& conn) {
  int fd = -1;
  {
    std::lock_guard<std::mutex> lock(conn->mutex);
    fd = conn->fd;
  }
  LineReader reader(fd, config_.max_line_bytes);
  std::string line;
  std::uint64_t line_number = 0;
  for (;;) {
    const LineStatus status = reader.next(line);
    if (status == LineStatus::kEof) break;
    ++line_number;
    if (status == LineStatus::kLine &&
        line.find_first_not_of(" \t") == std::string::npos) {
      // Blank lines are counted but unanswered — the batch reader's rule,
      // so in-band "line N" error messages agree byte for byte.
      continue;
    }
    Task task;
    task.conn = conn;
    task.line_number = line_number;
    task.too_long = status == LineStatus::kTooLong;
    if (!task.too_long) task.line = line;
    {
      std::lock_guard<std::mutex> lock(conn->mutex);
      task.seq = conn->enqueued++;
    }
    // Count BEFORE the push: a worker that pops frame N and snapshots the
    // registry (a metrics control request) must observe every admission up
    // to and including its own — the queue's mutex orders these relaxed
    // increments across threads.
    requests_admitted_.fetch_add(1, std::memory_order_relaxed);
    metrics::Registry::instance().counter("server.requests").add();
    if (!queue_.push(std::move(task))) {
      // Shutdown closed the queue while we blocked: retract the seq (it is
      // the newest — nothing was assigned after it) and stop reading.  The
      // admission counts stay — the frame was received and admitted, the
      // drain just refused to serve it.
      std::lock_guard<std::mutex> lock(conn->mutex);
      --conn->enqueued;
      break;
    }
  }
  {
    std::lock_guard<std::mutex> lock(conn->mutex);
    conn->reader_done = true;
  }
  conn->close_if_drained();
}

void Server::worker_loop() {
  // Each worker evaluates its requests serially inline: cross-request
  // concurrency comes from the worker count, exactly like run_batch's
  // fan-out workers, and every response stays byte-identical to a serial
  // evaluation (the library's thread-count determinism contract).
  par::SerialRegionGuard serial;
  while (auto task = queue_.pop()) {
    std::string line = respond(*task);
    line += '\n';
    task->conn->deliver(task->seq, std::move(line), *this);
  }
}

std::string Server::respond(const Task& task) {
  if (task.too_long) {
    lines_rejected_too_long_.fetch_add(1, std::memory_order_relaxed);
    metrics::Registry::instance().counter("server.rejected_lines").add();
    api::Response r;
    r.ok = false;
    r.error.code = api::ErrorCode::kConfig;
    r.error.message = "line " + std::to_string(task.line_number) +
                      ": request line exceeds the maximum length of " +
                      std::to_string(config_.max_line_bytes) + " bytes";
    return api::response_line(r);
  }
  // {"kind":"metrics"} is a server-layer control request: RequestKind has
  // no metrics member, so it is intercepted before the batch schema sees
  // it.  Malformed JSON falls through to parse_request_json, which reports
  // it exactly as the batch reader would.
  try {
    const auto root = json::parse(task.line);
    const auto kind = root->get("kind");
    if (kind && kind->is_string() && kind->as_string() == "metrics") {
      control_requests_.fetch_add(1, std::memory_order_relaxed);
      const auto id = root->get("id");
      return api::metrics_response_line(
          id && id->is_string() ? id->as_string() : std::string());
    }
  } catch (const Error&) {
  }
  auto parsed = api::parse_request_json(task.line);
  if (!parsed.ok()) {
    api::Response r;
    r.ok = false;
    r.error = parsed.error();
    r.error.message =
        "line " + std::to_string(task.line_number) + ": " + r.error.message;
    return api::response_line(r);
  }
  if (parsed.value().kind == api::RequestKind::kCapabilities) {
    control_requests_.fetch_add(1, std::memory_order_relaxed);
  }
  return api::response_line(service_->serve(parsed.value()));
}

}  // namespace nanocache::server
