// Minimal blocking JSONL client over the server's transports.
//
// This is the in-tree counterpart of the one-liner clients in the README
// (socat / python): connect, write request lines, read response lines.
// The tests and the perf harness drive the server through it; it is an
// internal helper, not part of the stable API surface.
#pragma once

#include <optional>
#include <string>

#include "server/listener.h"

namespace nanocache::server {

class Client {
 public:
  /// Connect to a listening server.  Throws Error(kIo) when the endpoint
  /// does not accept (server down, wrong path/port).
  static Client connect(const ListenSpec& spec);

  Client(Client&& other) noexcept;
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;
  Client& operator=(Client&&) = delete;
  ~Client();

  /// Write raw bytes (the caller supplies the newlines).  Throws
  /// Error(kIo) when the connection broke.
  void send(const std::string& bytes);

  /// Next '\n'-terminated response line (newline stripped), or nullopt at
  /// EOF (server closed the connection).
  std::optional<std::string> read_line();

  /// Half-close: signal end of requests while still reading responses.
  void shutdown_write();

  void close();

 private:
  Client() = default;

  int fd_ = -1;
  std::string buffer_;
  bool eof_ = false;
};

}  // namespace nanocache::server
