// Bounded blocking MPMC queue — the server's admission-control stage.
//
// Connection readers push parsed request lines; worker threads pop them.
// The bound is what keeps a fast writer from ballooning server memory: a
// reader whose push would exceed the capacity blocks (TCP/unix-socket
// backpressure propagates to the client) until a worker drains a slot.
//
// close() flips the queue into drain mode: further pushes fail, pops keep
// returning queued items until the queue is empty and then return nullopt.
// That ordering is the graceful-shutdown contract — every request admitted
// before shutdown is answered, nothing admitted after.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

namespace nanocache::server {

template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(std::size_t capacity)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Block until a slot frees up, then enqueue.  Returns false (dropping
  /// `item`) when the queue was closed before a slot appeared.
  bool push(T item) {
    std::unique_lock<std::mutex> lock(mutex_);
    not_full_.wait(lock,
                   [&] { return closed_ || items_.size() < capacity_; });
    if (closed_) return false;
    items_.push_back(std::move(item));
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  /// Block until an item is available; nullopt once the queue is closed
  /// AND drained (items enqueued before close() are always delivered).
  std::optional<T> pop() {
    std::unique_lock<std::mutex> lock(mutex_);
    not_empty_.wait(lock, [&] { return closed_ || !items_.empty(); });
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return item;
  }

  /// Stop admitting; wake every blocked pusher (fail) and popper (drain).
  void close() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
    }
    not_full_.notify_all();
    not_empty_.notify_all();
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return items_.size();
  }

  std::size_t capacity() const { return capacity_; }

 private:
  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace nanocache::server
