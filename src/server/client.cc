#include "server/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "util/error.h"

namespace nanocache::server {

Client Client::connect(const ListenSpec& spec) {
  Client client;
  if (spec.kind == ListenKind::kUnix) {
    client.fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    NC_REQUIRE_IO(client.fd_ >= 0,
                  std::string("socket: ") + std::strerror(errno));
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, spec.path.c_str(), sizeof(addr.sun_path) - 1);
    if (::connect(client.fd_, reinterpret_cast<sockaddr*>(&addr),
                  sizeof(addr)) != 0) {
      const std::string why = std::strerror(errno);
      client.close();
      throw Error(ErrorCategory::kIo,
                  "cannot connect to " + spec.describe() + ": " + why);
    }
    return client;
  }
  client.fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  NC_REQUIRE_IO(client.fd_ >= 0,
                std::string("socket: ") + std::strerror(errno));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(spec.port));
  if (spec.host == "localhost") {
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  } else {
    ::inet_pton(AF_INET, spec.host.c_str(), &addr.sin_addr);
  }
  if (::connect(client.fd_, reinterpret_cast<sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    const std::string why = std::strerror(errno);
    client.close();
    throw Error(ErrorCategory::kIo,
                "cannot connect to " + spec.describe() + ": " + why);
  }
  return client;
}

Client::Client(Client&& other) noexcept
    : fd_(other.fd_), buffer_(std::move(other.buffer_)), eof_(other.eof_) {
  other.fd_ = -1;
}

Client::~Client() { close(); }

void Client::send(const std::string& bytes) {
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n = ::send(fd_, bytes.data() + sent, bytes.size() - sent,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw Error(ErrorCategory::kIo,
                  std::string("send: ") + std::strerror(errno));
    }
    sent += static_cast<std::size_t>(n);
  }
}

std::optional<std::string> Client::read_line() {
  for (;;) {
    const auto nl = buffer_.find('\n');
    if (nl != std::string::npos) {
      std::string line = buffer_.substr(0, nl);
      buffer_.erase(0, nl + 1);
      return line;
    }
    if (eof_) {
      if (buffer_.empty()) return std::nullopt;
      std::string line = std::move(buffer_);
      buffer_.clear();
      return line;
    }
    char chunk[64 * 1024];
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n > 0) {
      buffer_.append(chunk, static_cast<std::size_t>(n));
    } else if (n == 0) {
      eof_ = true;
    } else if (errno != EINTR) {
      eof_ = true;
    }
  }
}

void Client::shutdown_write() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_WR);
}

void Client::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

}  // namespace nanocache::server
