// JSONL wire format of the batch API (schema v2, see docs/API.md).
//
// One JSON object per line.  Requests carry their payload fields at top
// level, discriminated by "kind", with the shared GridSpec/DelayConstraint
// structs as nested "target"/"delay"/"knobs" objects; schema_version 1
// lines (flat fields) are still accepted and normalized to v2 on parse.
// Unknown keys are ignored (additive schema evolution without a version
// bump).  Responses serialize with a fixed key order and
// shortest-round-trip number formatting, so equal response structs always
// produce equal bytes — the batch determinism contract.
#pragma once

#include <iosfwd>
#include <string>

#include "nanocache/requests.h"
#include "nanocache/responses.h"
#include "nanocache/service.h"
#include "nanocache/types.h"

namespace nanocache::api {

/// Parse one JSONL request line.  Malformed JSON, a wrong schema_version,
/// an unknown kind, or a type-mismatched field yield a typed kConfig
/// failure (kIo for stream-level problems is the caller's business).
Outcome<Request> parse_request_json(const std::string& line);

/// Canonical JSON encoding of a request (round-trips through
/// parse_request_json).  All payload fields of the active kind are written
/// explicitly, defaults included; `id` is written only when non-empty.
std::string request_to_json(const Request& request);

/// Deterministic JSON encoding of a response (single line, no trailing
/// newline).  Key order is fixed; `id` is written only when non-empty;
/// `kind` + payload appear on ok responses, `error` on failed ones.
std::string response_to_json(const Response& response);

/// Exact inverse of response_to_json, used by the persistent disk cache:
/// for any response R, parse_response_json(response_to_json(R)) followed by
/// response_to_json reproduces the original bytes (doubles are
/// shortest-round-trip, conditional omissions map back to defaults).
/// Malformed or truncated lines yield a typed kConfig/kInternal failure.
Outcome<Response> parse_response_json(const std::string& line);

/// The request's structural identity: equal keys <=> the service would run
/// the identical computation.  Ignores `id`.  Doubles are keyed by bit
/// pattern, so two spellings of the same number collide (as they must).
std::string request_canonical_key(const Request& request);

/// `response_to_json`, hardened for the per-line batch path: when the
/// response itself cannot be serialized (a non-finite double in a payload
/// field — NaN/Inf are not JSON and format_double refuses them), the
/// failure is folded into an error response IN PLACE carrying the same id,
/// instead of aborting the whole stream.  Error responses contain no
/// doubles, so the fallback line always serializes.
std::string response_line(const Response& response);

/// Drive a whole JSONL stream through Service::run_batch: every non-empty
/// input line produces exactly one output line in input order (parse
/// failures become error responses in place).  Returns the batch stats
/// (parse-failed lines count as requests but never as hits).
BatchStats run_batch_jsonl(const Service& service, std::istream& in,
                           std::ostream& out);

}  // namespace nanocache::api
