// Offline precompute step of the surrogate serving tier.
//
// Drives the exact engine of an existing Service over a refined knob
// lattice (evals) and a delay-target ladder (optimizes) and writes the
// resulting answer tables to one segment keyed by the service's library
// fingerprint — the same fingerprint a later Service::create computes, so
// a serving process picks the tables up automatically when pointed at the
// output directory via ServiceConfig::surrogate_dir.
//
// Error-bound certification happens here, against the exact engine: every
// eval table's per-metric bound coefficients (see surrogate::BoundModel)
// are calibrated on a validation lattice of cell midpoints — the worst
// case for bilinear interpolation of the paper's smooth response surfaces
// — with a 2x safety margin.  Optimize ladders need no calibration: their
// adjacent-rung bound is rigorous by feasible-set nesting.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "nanocache/service.h"

namespace nanocache::api {

struct PrecomputeOptions {
  /// Cache sizes to tabulate per level.  Empty = the service's configured
  /// default size for that level.
  std::vector<std::uint64_t> l1_sizes;
  std::vector<std::uint64_t> l2_sizes;
  /// Technology nodes to tabulate (0 = the configured default).
  std::vector<int> nodes{0};
  /// Minimum lattice points per knob axis.  The axis starts from the
  /// node's configured grid and inserts cell midpoints until it reaches
  /// this size, so the original grid points are always on the lattice
  /// (served bit-exact) and the defaults refine the paper's 7x5 grid once.
  int vth_steps = 13;
  int tox_steps = 9;
  /// Rungs per optimize ladder (per level, size, node, scheme).
  int target_steps = 25;
  /// Free-form provenance stamp written into the segment header (never
  /// wall-clock derived here: byte-identical reruns stay byte-identical).
  std::string stamp;
};

struct PrecomputeSummary {
  std::string fingerprint;    ///< segment key (= the service's fingerprint)
  std::string path;           ///< segment file written
  std::size_t eval_tables = 0;
  std::size_t optimize_tables = 0;
  std::size_t exact_evals = 0;      ///< exact engine calls spent on lattices
  std::size_t exact_optimizes = 0;  ///< ... and on ladder rungs
};

/// Precompute tables for `service` and write them under `out_dir`.  Throws
/// nanocache::Error (kConfig for bad options, kIo for unwritable output);
/// exact-engine failures on individual lattice points propagate as-is.
PrecomputeSummary precompute_surrogate(const Service& service,
                                       const std::string& out_dir,
                                       const PrecomputeOptions& options);

}  // namespace nanocache::api
