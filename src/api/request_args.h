// Shared command-line -> API translation.  The CLI (and any other driver
// binary) parses argv once into CliArgs and converts the result into the
// facade's typed requests and configuration here, so every front end
// understands the same flags (--fitted / --strict / --threads, sizes,
// schemes, targets) with the same spelling and the same validation.
#pragma once

#include <map>
#include <string>

#include "nanocache/requests.h"
#include "nanocache/service.h"
#include "nanocache/types.h"

namespace nanocache::api {

/// argv split into `command [positional] [--flag [value]]...`.  A flag
/// followed by another flag (or nothing) gets the value "true".
struct CliArgs {
  std::string command;
  std::string positional;
  std::map<std::string, std::string> flags;
};

CliArgs parse_cli_args(int argc, const char* const* argv);

/// Typed flag accessors; throw Error(kConfig) for unparseable values.
double flag_double(const CliArgs& args, const std::string& key,
                   double fallback);
std::uint64_t flag_uint(const CliArgs& args, const std::string& key,
                        std::uint64_t fallback);
bool flag_present(const CliArgs& args, const std::string& key);

/// Service configuration from the shared flags: --fitted, --strict,
/// --cache-dir DIR (falling back to $NANOCACHE_CACHE_DIR; empty disables
/// the persistent result cache), --surrogate-dir DIR (falling back to
/// $NANOCACHE_SURROGATE_DIR; empty disables the surrogate serving tier)
/// and --search pruned|exhaustive.
ServiceConfig service_config_from_args(const CliArgs& args);

/// The --threads flag (0 = keep the pool default).  Throws Error(kConfig)
/// for non-integer or negative values.
int threads_from_args(const CliArgs& args);

/// Translate a request-shaped command into the facade request it denotes:
///   cache    -> kEval      (--size, --l2, --vth, --tox)
///   optimize -> kOptimize  (--size, --l2, --scheme, --delay-ps)
///   run schemes|l2|l2split|l1 -> kSweep (--size, --steps, --amat-ps)
///   capabilities -> kCapabilities
/// Unknown commands/experiments yield a typed kConfig failure.  Commands
/// that are not request-shaped (fig1/fig2 rendering, export, ...) are the
/// caller's business via the Service escape hatch.
Outcome<Request> request_from_args(const CliArgs& args);

/// The documented error-taxonomy -> process-exit-code mapping shared by all
/// drivers: config=2, io=3, numeric-domain/infeasible=4, internal=1.
int exit_code_for(ErrorCode code);

}  // namespace nanocache::api
