#include "api/batch_io.h"

#include <bit>
#include <cstdint>
#include <istream>
#include <ostream>
#include <sstream>
#include <utility>
#include <vector>

#include "util/error.h"
#include "util/json.h"
#include "util/metrics.h"

namespace nanocache::api {

namespace {

using json::ValuePtr;

// --- parsing helpers --------------------------------------------------------

Level parse_level(const std::string& s) {
  if (s == "l1") return Level::kL1;
  if (s == "l2") return Level::kL2;
  throw Error(ErrorCategory::kConfig, "unknown level '" + s + "'");
}

SchemeId parse_scheme(const std::string& s) {
  if (s == "I") return SchemeId::kI;
  if (s == "II") return SchemeId::kII;
  if (s == "III") return SchemeId::kIII;
  throw Error(ErrorCategory::kConfig, "unknown scheme '" + s + "'");
}

RequestKind parse_kind(const std::string& s) {
  if (s == "eval") return RequestKind::kEval;
  if (s == "optimize") return RequestKind::kOptimize;
  if (s == "sweep") return RequestKind::kSweep;
  if (s == "tuple_menu") return RequestKind::kTupleMenu;
  if (s == "capabilities") return RequestKind::kCapabilities;
  throw Error(ErrorCategory::kConfig, "unknown request kind '" + s + "'");
}

Exactness parse_exactness(const std::string& s) {
  if (s == "auto") return Exactness::kAuto;
  if (s == "exact") return Exactness::kExact;
  if (s == "surrogate") return Exactness::kSurrogate;
  throw Error(ErrorCategory::kConfig, "unknown exactness '" + s + "'");
}

ErrorCode parse_error_code(const std::string& s) {
  if (s == "config") return ErrorCode::kConfig;
  if (s == "numeric-domain") return ErrorCode::kNumericDomain;
  if (s == "io") return ErrorCode::kIo;
  if (s == "infeasible") return ErrorCode::kInfeasible;
  if (s == "internal") return ErrorCode::kInternal;
  throw Error(ErrorCategory::kConfig, "unknown error code '" + s + "'");
}

SweepKind parse_sweep_kind(const std::string& s) {
  if (s == "schemes") return SweepKind::kSchemes;
  if (s == "l1_sizes") return SweepKind::kL1Sizes;
  if (s == "l2_sizes") return SweepKind::kL2Sizes;
  throw Error(ErrorCategory::kConfig, "unknown sweep kind '" + s + "'");
}

double get_double(const ValuePtr& obj, const char* key, double fallback) {
  const auto v = obj->get(key);
  return v ? v->as_double() : fallback;
}

std::uint64_t get_uint(const ValuePtr& obj, const char* key,
                       std::uint64_t fallback) {
  const auto v = obj->get(key);
  return v ? v->as_uint() : fallback;
}

int get_int(const ValuePtr& obj, const char* key, int fallback) {
  const auto v = obj->get(key);
  return v ? static_cast<int>(v->as_int()) : fallback;
}

bool get_bool(const ValuePtr& obj, const char* key, bool fallback) {
  const auto v = obj->get(key);
  return v ? v->as_bool() : fallback;
}

std::vector<double> get_double_array(const ValuePtr& obj, const char* key) {
  std::vector<double> out;
  const auto v = obj->get(key);
  if (!v) return out;
  for (const auto& item : v->as_array()) out.push_back(item->as_double());
  return out;
}

/// v2 nested "target" object: {"level": "l1"|"l2", "size_bytes": N}.
void parse_grid_spec(const ValuePtr& root, GridSpec& g) {
  const auto t = root->get("target");
  if (!t) return;
  NC_REQUIRE(t->is_object(), "'target' must be an object");
  if (const auto level = t->get("level")) {
    g.level = parse_level(level->as_string());
  }
  g.size_bytes = get_uint(t, "size_bytes", g.size_bytes);
}

/// v2 nested "delay" object: {"target_ps": X, "targets_ps": [...]}.
void parse_delay(const ValuePtr& root, DelayConstraint& d) {
  const auto v = root->get("delay");
  if (!v) return;
  NC_REQUIRE(v->is_object(), "'delay' must be an object");
  d.target_ps = get_double(v, "target_ps", d.target_ps);
  if (v->get("targets_ps")) d.targets_ps = get_double_array(v, "targets_ps");
}

/// v3 nested "organization" object:
/// {"associativity": 1|2|4|8|"full", "banks": N}.
void parse_organization(const ValuePtr& root, OrganizationSpec& org) {
  const auto v = root->get("organization");
  if (!v) return;
  NC_REQUIRE(v->is_object(), "'organization' must be an object");
  if (const auto assoc = v->get("associativity")) {
    if (assoc->is_string()) {
      NC_REQUIRE(assoc->as_string() == "full",
                 "organization.associativity must be 1, 2, 4, 8, or \"full\"");
      org.associativity = -1;
    } else {
      org.associativity = static_cast<int>(assoc->as_int());
    }
  }
  org.banks = static_cast<std::uint32_t>(get_uint(v, "banks", org.banks));
  // An explicit single bank IS the default organization: normalize at parse
  // so both spellings share one canonical key (and one cache entry).
  if (org.banks == 1) org.banks = 0;
}

/// v3 nested "power_gating" object: {"enabled": B, "perf_loss_budget": X}.
void parse_power_gating(const ValuePtr& root, PowerGatingSpec& g) {
  const auto v = root->get("power_gating");
  if (!v) return;
  NC_REQUIRE(v->is_object(), "'power_gating' must be an object");
  g.enabled = get_bool(v, "enabled", g.enabled);
  g.perf_loss_budget = get_double(v, "perf_loss_budget", g.perf_loss_budget);
}

Request request_from_value(const ValuePtr& root) {
  NC_REQUIRE(root->is_object(), "request must be a JSON object");
  Request r;
  const auto version = root->get("schema_version");
  NC_REQUIRE(version != nullptr, "request is missing schema_version");
  const auto v = static_cast<int>(version->as_int());
  NC_REQUIRE(v >= kMinSchemaVersion && v <= kSchemaVersion,
             "unsupported schema_version " + std::to_string(v) +
                 " (this build speaks " + std::to_string(kMinSchemaVersion) +
                 ".." + std::to_string(kSchemaVersion) + ")");
  // v1 flat fields normalize into the v2 structs below, v3 design-space
  // fields are read only from v3+ requests, and the v4 exactness selector
  // only from v4 requests (absent fields keep their paper-default values);
  // the request carries the current schema version from here on.
  const bool v1 = v == 1;
  const bool v3 = v >= 3;
  const bool v4 = v >= 4;
  r.schema_version = kSchemaVersion;
  if (const auto id = root->get("id")) r.id = id->as_string();
  const auto kind = root->get("kind");
  NC_REQUIRE(kind != nullptr, "request is missing kind");
  r.kind = parse_kind(kind->as_string());
  switch (r.kind) {
    case RequestKind::kEval: {
      auto& e = r.eval;
      if (v1) {
        if (const auto level = root->get("level")) {
          e.target.level = parse_level(level->as_string());
        }
        e.target.size_bytes = get_uint(root, "size_bytes", e.target.size_bytes);
        e.knobs.vth_v = get_double(root, "vth_v", e.knobs.vth_v);
        e.knobs.tox_a = get_double(root, "tox_a", e.knobs.tox_a);
        break;
      }
      parse_grid_spec(root, e.target);
      if (const auto knobs = root->get("knobs")) {
        NC_REQUIRE(knobs->is_object(), "'knobs' must be an object");
        e.knobs.vth_v = get_double(knobs, "vth_v", e.knobs.vth_v);
        e.knobs.tox_a = get_double(knobs, "tox_a", e.knobs.tox_a);
      }
      if (v3) {
        parse_organization(root, e.organization);
        e.node_nm = get_int(root, "node_nm", e.node_nm);
      }
      if (v4) {
        if (const auto exactness = root->get("exactness")) {
          e.exactness = parse_exactness(exactness->as_string());
        }
      }
      break;
    }
    case RequestKind::kOptimize: {
      auto& o = r.optimize;
      if (v1) {
        if (const auto level = root->get("level")) {
          o.target.level = parse_level(level->as_string());
        }
        o.target.size_bytes = get_uint(root, "size_bytes", o.target.size_bytes);
        if (const auto scheme = root->get("scheme")) {
          o.scheme = parse_scheme(scheme->as_string());
        }
        o.delay.target_ps = get_double(root, "delay_ps", o.delay.target_ps);
        break;
      }
      parse_grid_spec(root, o.target);
      if (const auto scheme = root->get("scheme")) {
        o.scheme = parse_scheme(scheme->as_string());
      }
      parse_delay(root, o.delay);
      if (v3) {
        parse_organization(root, o.organization);
        parse_power_gating(root, o.power_gating);
        o.node_nm = get_int(root, "node_nm", o.node_nm);
      }
      if (v4) {
        if (const auto exactness = root->get("exactness")) {
          o.exactness = parse_exactness(exactness->as_string());
        }
      }
      break;
    }
    case RequestKind::kSweep: {
      auto& s = r.sweep;
      if (const auto kindv = root->get("sweep")) {
        s.kind = parse_sweep_kind(kindv->as_string());
      }
      s.ladder_steps = get_int(root, "ladder_steps", s.ladder_steps);
      if (const auto scheme = root->get("scheme")) {
        s.l2_scheme = parse_scheme(scheme->as_string());
      }
      if (v1) {
        s.target.size_bytes =
            get_uint(root, "cache_size_bytes", s.target.size_bytes);
        s.delay.targets_ps = get_double_array(root, "delay_targets_ps");
        s.delay.target_ps = get_double(root, "amat_ps", s.delay.target_ps);
        break;
      }
      parse_grid_spec(root, s.target);
      parse_delay(root, s.delay);
      if (v3) s.node_nm = get_int(root, "node_nm", s.node_nm);
      break;
    }
    case RequestKind::kTupleMenu: {
      auto& t = r.tuple_menu;
      t.num_tox = get_int(root, "num_tox", t.num_tox);
      t.num_vth = get_int(root, "num_vth", t.num_vth);
      if (v1) {
        t.delay.targets_ps = get_double_array(root, "amat_targets_ps");
      } else {
        parse_delay(root, t.delay);
      }
      t.include_frontier =
          get_bool(root, "include_frontier", t.include_frontier);
      t.frontier_max_points =
          get_int(root, "frontier_max_points", t.frontier_max_points);
      break;
    }
    case RequestKind::kCapabilities:
      break;  // no payload
  }
  return r;
}

// --- response parsing -------------------------------------------------------
//
// Exact inverse of the response writers below, used by the persistent disk
// cache: parse + re-serialize must reproduce the stored line byte for byte.
// Doubles round-trip exactly (format_double emits shortest-round-trip
// decimals), and every conditional omission on the writer side maps to a
// default value here so the re-serialized struct omits it again.

ValuePtr req_field(const ValuePtr& obj, const char* key) {
  auto v = obj->get(key);
  NC_REQUIRE(v != nullptr, std::string("response is missing '") + key + "'");
  return v;
}

double req_double(const ValuePtr& obj, const char* key) {
  const auto v = obj->get(key);
  NC_REQUIRE(v != nullptr, std::string("response is missing '") + key + "'");
  return v->as_double();
}

std::uint64_t req_uint(const ValuePtr& obj, const char* key) {
  const auto v = obj->get(key);
  NC_REQUIRE(v != nullptr, std::string("response is missing '") + key + "'");
  return v->as_uint();
}

int req_int(const ValuePtr& obj, const char* key) {
  const auto v = obj->get(key);
  NC_REQUIRE(v != nullptr, std::string("response is missing '") + key + "'");
  return static_cast<int>(v->as_int());
}

bool req_bool(const ValuePtr& obj, const char* key) {
  const auto v = obj->get(key);
  NC_REQUIRE(v != nullptr, std::string("response is missing '") + key + "'");
  return v->as_bool();
}

std::string req_string(const ValuePtr& obj, const char* key) {
  const auto v = obj->get(key);
  NC_REQUIRE(v != nullptr, std::string("response is missing '") + key + "'");
  return v->as_string();
}

json::Value::Array req_array(const ValuePtr& obj, const char* key) {
  const auto v = obj->get(key);
  NC_REQUIRE(v != nullptr, std::string("response is missing '") + key + "'");
  return v->as_array();
}

std::vector<ComponentKnobs> parse_assignment(const ValuePtr& obj,
                                             const char* key) {
  std::vector<ComponentKnobs> out;
  for (const auto& item : req_array(obj, key)) {
    ComponentKnobs c;
    c.component = req_string(item, "component");
    c.knobs.vth_v = req_double(item, "vth_v");
    c.knobs.tox_a = req_double(item, "tox_a");
    // Omitted unless true (a power-gated sleep-state component).
    if (const auto gated = item->get("gated")) c.gated = gated->as_bool();
    out.push_back(std::move(c));
  }
  return out;
}

OptimizedCache parse_optimized_cache(const ValuePtr& v) {
  OptimizedCache c;
  c.feasible = req_bool(v, "feasible");
  if (!c.feasible) {
    c.infeasible_reason = req_string(v, "infeasible_reason");
    return c;
  }
  c.leakage_mw = req_double(v, "leakage_mw");
  c.access_time_ps = req_double(v, "access_time_ps");
  c.dynamic_pj = req_double(v, "dynamic_pj");
  c.assignment = parse_assignment(v, "assignment");
  return c;
}

EvalResponse parse_eval_response(const ValuePtr& v) {
  EvalResponse e;
  e.organization = req_string(v, "organization");
  e.access_time_ps = req_double(v, "access_time_ps");
  e.leakage_mw = req_double(v, "leakage_mw");
  e.leakage_sub_mw = req_double(v, "leakage_sub_mw");
  e.leakage_gate_mw = req_double(v, "leakage_gate_mw");
  e.dynamic_pj = req_double(v, "dynamic_pj");
  e.area_um2 = req_double(v, "area_um2");
  for (const auto& item : req_array(v, "components")) {
    ComponentEval c;
    c.component = req_string(item, "component");
    c.knobs.vth_v = req_double(item, "vth_v");
    c.knobs.tox_a = req_double(item, "tox_a");
    c.delay_ps = req_double(item, "delay_ps");
    c.leakage_mw = req_double(item, "leakage_mw");
    c.dynamic_pj = req_double(item, "dynamic_pj");
    e.components.push_back(std::move(c));
  }
  return e;
}

SweepResponse parse_sweep_response(const ValuePtr& v) {
  SweepResponse s;
  s.kind = parse_sweep_kind(req_string(v, "sweep"));
  if (s.kind == SweepKind::kSchemes) {
    for (const auto& item : req_array(v, "rows")) {
      SchemesRow row;
      row.delay_target_ps = req_double(item, "delay_target_ps");
      row.scheme1 = parse_optimized_cache(req_field(item, "scheme_I"));
      row.scheme2 = parse_optimized_cache(req_field(item, "scheme_II"));
      row.scheme3 = parse_optimized_cache(req_field(item, "scheme_III"));
      s.schemes.push_back(std::move(row));
    }
    return s;
  }
  s.amat_target_ps = req_double(v, "amat_target_ps");
  for (const auto& item : req_array(v, "rows")) {
    SizeRow row;
    row.size_bytes = req_uint(item, "size_bytes");
    row.feasible = req_bool(item, "feasible");
    if (!row.feasible) {
      row.infeasible_reason = req_string(item, "infeasible_reason");
      row.miss_rate = req_double(item, "miss_rate");
    } else {
      row.miss_rate = req_double(item, "miss_rate");
      row.amat_ps = req_double(item, "amat_ps");
      row.level_leakage_mw = req_double(item, "level_leakage_mw");
      row.total_leakage_mw = req_double(item, "total_leakage_mw");
      row.result = parse_optimized_cache(req_field(item, "result"));
    }
    s.sizes.push_back(std::move(row));
  }
  return s;
}

std::vector<double> parse_double_array(const ValuePtr& obj, const char* key) {
  std::vector<double> out;
  for (const auto& item : req_array(obj, key)) out.push_back(item->as_double());
  return out;
}

MenuDesign parse_menu_design(const ValuePtr& v) {
  MenuDesign d;
  // The writer omits amat_target_ps when it is not positive (frontier
  // points); absence maps back to the 0.0 default.
  if (const auto target = v->get("amat_target_ps")) {
    d.amat_target_ps = target->as_double();
  }
  d.feasible = req_bool(v, "feasible");
  if (!d.feasible) return d;
  d.amat_ps = req_double(v, "amat_ps");
  d.energy_pj = req_double(v, "energy_pj");
  d.leakage_mw = req_double(v, "leakage_mw");
  d.tox_menu_a = parse_double_array(v, "tox_menu_a");
  d.vth_menu_v = parse_double_array(v, "vth_menu_v");
  d.l1_assignment = parse_assignment(v, "l1_assignment");
  d.l2_assignment = parse_assignment(v, "l2_assignment");
  return d;
}

TupleMenuResponse parse_tuple_menu_response(const ValuePtr& v) {
  TupleMenuResponse t;
  t.num_tox = req_int(v, "num_tox");
  t.num_vth = req_int(v, "num_vth");
  t.label = req_string(v, "label");
  t.min_amat_ps = req_double(v, "min_amat_ps");
  for (const auto& item : req_array(v, "targets")) {
    t.targets.push_back(parse_menu_design(item));
  }
  // Omitted when empty; an empty frontier re-serializes to omission.
  if (v->get("frontier")) {
    for (const auto& item : req_array(v, "frontier")) {
      t.frontier.push_back(parse_menu_design(item));
    }
  }
  return t;
}

CapabilitiesResponse parse_capabilities_response(const ValuePtr& v) {
  CapabilitiesResponse c;
  for (const auto& item : req_array(v, "schema_versions")) {
    c.schema_versions.push_back(static_cast<int>(item->as_int()));
  }
  c.api_version_major = req_int(v, "api_version_major");
  c.api_version_minor = req_int(v, "api_version_minor");
  c.vth_min_v = req_double(v, "vth_min_v");
  c.vth_max_v = req_double(v, "vth_max_v");
  c.tox_min_a = req_double(v, "tox_min_a");
  c.tox_max_a = req_double(v, "tox_max_a");
  c.grid_vth_v = parse_double_array(v, "grid_vth_v");
  c.grid_tox_a = parse_double_array(v, "grid_tox_a");
  for (const auto& item : req_array(v, "schemes")) {
    c.schemes.push_back(item->as_string());
  }
  for (const auto& item : req_array(v, "sweeps")) {
    c.sweeps.push_back(item->as_string());
  }
  c.l1_size_bytes = req_uint(v, "l1_size_bytes");
  c.l2_size_bytes = req_uint(v, "l2_size_bytes");
  c.threads = req_int(v, "threads");
  c.search_mode = req_string(v, "search_mode");
  c.fitted_models = req_bool(v, "fitted_models");
  c.disk_cache = req_bool(v, "disk_cache");
  c.cache_dir = req_string(v, "cache_dir");
  const auto org = req_field(v, "organization");
  for (const auto& item : req_array(org, "associativities")) {
    c.organization_associativities.push_back(static_cast<int>(item->as_int()));
  }
  c.organization_fully_associative = req_bool(org, "fully_associative");
  c.organization_max_banks =
      static_cast<std::uint32_t>(req_uint(org, "max_banks"));
  const auto gating = req_field(v, "power_gating");
  c.power_gating_supported = req_bool(gating, "supported");
  c.power_gating_sleep_factor = req_double(gating, "sleep_leakage_factor");
  c.power_gating_wake_factor = req_double(gating, "wake_delay_factor");
  c.power_gating_max_budget = req_double(gating, "max_perf_loss_budget");
  for (const auto& item : req_array(v, "nodes_nm")) {
    c.nodes_nm.push_back(static_cast<int>(item->as_int()));
  }
  const auto surrogate = req_field(v, "surrogate");
  c.surrogate_loaded = req_bool(surrogate, "loaded");
  c.surrogate_eval_tables = req_int(surrogate, "eval_tables");
  c.surrogate_optimize_tables = req_int(surrogate, "optimize_tables");
  c.surrogate_fingerprint = req_string(surrogate, "fingerprint");
  c.surrogate_stamp = req_string(surrogate, "stamp");
  for (const auto& item : req_array(surrogate, "sizes_bytes")) {
    c.surrogate_sizes_bytes.push_back(item->as_uint());
  }
  for (const auto& item : req_array(surrogate, "nodes_nm")) {
    c.surrogate_nodes_nm.push_back(static_cast<int>(item->as_int()));
  }
  for (const auto& item : req_array(surrogate, "schemes")) {
    c.surrogate_schemes.push_back(item->as_string());
  }
  const auto bounds = req_field(surrogate, "max_error");
  c.surrogate_max_error_leakage_mw = req_double(bounds, "leakage_mw");
  c.surrogate_max_error_access_time_ps = req_double(bounds, "access_time_ps");
  c.surrogate_max_error_dynamic_pj = req_double(bounds, "dynamic_pj");
  return c;
}

Response response_from_value(const ValuePtr& root) {
  NC_REQUIRE(root->is_object(), "response must be a JSON object");
  Response r;
  const auto version = root->get("schema_version");
  NC_REQUIRE(version != nullptr, "response is missing schema_version");
  r.schema_version = static_cast<int>(version->as_int());
  if (const auto id = root->get("id")) r.id = id->as_string();
  r.ok = req_bool(root, "ok");
  if (!r.ok) {
    const auto err = root->get("error");
    NC_REQUIRE(err != nullptr && err->is_object(),
               "error response is missing 'error'");
    r.error.code = parse_error_code(req_string(err, "code"));
    r.error.message = req_string(err, "message");
    // Error responses do not serialize `kind`; the default survives the
    // round trip because re-serialization omits it too.
    return r;
  }
  r.kind = parse_kind(req_string(root, "kind"));
  // The writer emits served_by (plus max_error) only for surrogate
  // answers, so an absent field maps back to the kExact default and exact
  // responses re-serialize without it.
  if (const auto served_by = root->get("served_by")) {
    const std::string& name = served_by->as_string();
    NC_REQUIRE(name == "surrogate", "unknown served_by '" + name + "'");
    r.served_by = ServedBy::kSurrogate;
    const auto bounds = req_field(root, "max_error");
    r.max_error.leakage_mw = req_double(bounds, "leakage_mw");
    r.max_error.access_time_ps = req_double(bounds, "access_time_ps");
    r.max_error.dynamic_pj = req_double(bounds, "dynamic_pj");
  }
  const auto result = root->get("result");
  NC_REQUIRE(result != nullptr, "response is missing 'result'");
  switch (r.kind) {
    case RequestKind::kEval:
      r.eval = parse_eval_response(result);
      break;
    case RequestKind::kOptimize:
      r.optimize.result = parse_optimized_cache(result);
      break;
    case RequestKind::kSweep:
      r.sweep = parse_sweep_response(result);
      break;
    case RequestKind::kTupleMenu:
      r.tuple_menu = parse_tuple_menu_response(result);
      break;
    case RequestKind::kCapabilities:
      r.capabilities = parse_capabilities_response(result);
      break;
  }
  return r;
}

// --- writing helpers --------------------------------------------------------

/// Tiny ordered-object writer: fields appear exactly in append order.
class ObjectWriter {
 public:
  void field(const char* key, const std::string& raw) {
    if (!out_.empty()) out_ += ',';
    out_ += json::quote(key);
    out_ += ':';
    out_ += raw;
  }
  void string_field(const char* key, const std::string& s) {
    field(key, json::quote(s));
  }
  void double_field(const char* key, double d) {
    field(key, json::format_double(d));
  }
  void uint_field(const char* key, std::uint64_t u) {
    field(key, std::to_string(u));
  }
  void int_field(const char* key, int i) { field(key, std::to_string(i)); }
  void bool_field(const char* key, bool b) { field(key, b ? "true" : "false"); }

  std::string str() const { return "{" + out_ + "}"; }

 private:
  std::string out_;
};

std::string double_array_json(const std::vector<double>& values) {
  std::string out = "[";
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i > 0) out += ',';
    out += json::format_double(values[i]);
  }
  return out + "]";
}

std::string int_array_json(const std::vector<int>& values) {
  std::string out = "[";
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i > 0) out += ',';
    out += std::to_string(values[i]);
  }
  return out + "]";
}

std::string uint_array_json(const std::vector<std::uint64_t>& values) {
  std::string out = "[";
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i > 0) out += ',';
    out += std::to_string(values[i]);
  }
  return out + "]";
}

std::string string_array_json(const std::vector<std::string>& values) {
  std::string out = "[";
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i > 0) out += ',';
    out += json::quote(values[i]);
  }
  return out + "]";
}

std::string grid_spec_json(const GridSpec& g) {
  ObjectWriter w;
  w.string_field("level", level_name(g.level));
  w.uint_field("size_bytes", g.size_bytes);
  return w.str();
}

std::string delay_constraint_json(const DelayConstraint& d) {
  ObjectWriter w;
  w.double_field("target_ps", d.target_ps);
  w.field("targets_ps", double_array_json(d.targets_ps));
  return w.str();
}

std::string knobs_json(const Knobs& k) {
  ObjectWriter w;
  w.double_field("vth_v", k.vth_v);
  w.double_field("tox_a", k.tox_a);
  return w.str();
}

/// v3 "organization" object.  Only non-default members are emitted, and the
/// whole object is omitted by callers when the spec is all-default, so
/// serialize(parse(line)) is exact for v3 lines and byte-identical to the
/// v2 encoding for normalized v1/v2 requests.
std::string organization_json(const OrganizationSpec& org) {
  ObjectWriter w;
  if (org.associativity == -1) {
    w.string_field("associativity", "full");
  } else if (org.associativity != 0) {
    w.int_field("associativity", org.associativity);
  }
  if (org.banks != 0) w.uint_field("banks", org.banks);
  return w.str();
}

std::string power_gating_json(const PowerGatingSpec& g) {
  ObjectWriter w;
  w.bool_field("enabled", g.enabled);
  w.double_field("perf_loss_budget", g.perf_loss_budget);
  return w.str();
}

std::string assignment_json(const std::vector<ComponentKnobs>& assignment) {
  std::string out = "[";
  for (std::size_t i = 0; i < assignment.size(); ++i) {
    if (i > 0) out += ',';
    ObjectWriter w;
    w.string_field("component", assignment[i].component);
    w.double_field("vth_v", assignment[i].knobs.vth_v);
    w.double_field("tox_a", assignment[i].knobs.tox_a);
    // v3 power gating; omitted when false so v1/v2 output is unchanged.
    if (assignment[i].gated) w.bool_field("gated", true);
    out += w.str();
  }
  return out + "]";
}

std::string optimized_cache_json(const OptimizedCache& c) {
  ObjectWriter w;
  w.bool_field("feasible", c.feasible);
  if (!c.feasible) {
    w.string_field("infeasible_reason", c.infeasible_reason);
    return w.str();
  }
  w.double_field("leakage_mw", c.leakage_mw);
  w.double_field("access_time_ps", c.access_time_ps);
  w.double_field("dynamic_pj", c.dynamic_pj);
  w.field("assignment", assignment_json(c.assignment));
  return w.str();
}

std::string eval_json(const EvalResponse& e) {
  ObjectWriter w;
  w.string_field("organization", e.organization);
  w.double_field("access_time_ps", e.access_time_ps);
  w.double_field("leakage_mw", e.leakage_mw);
  w.double_field("leakage_sub_mw", e.leakage_sub_mw);
  w.double_field("leakage_gate_mw", e.leakage_gate_mw);
  w.double_field("dynamic_pj", e.dynamic_pj);
  w.double_field("area_um2", e.area_um2);
  std::string components = "[";
  for (std::size_t i = 0; i < e.components.size(); ++i) {
    if (i > 0) components += ',';
    ObjectWriter c;
    c.string_field("component", e.components[i].component);
    c.double_field("vth_v", e.components[i].knobs.vth_v);
    c.double_field("tox_a", e.components[i].knobs.tox_a);
    c.double_field("delay_ps", e.components[i].delay_ps);
    c.double_field("leakage_mw", e.components[i].leakage_mw);
    c.double_field("dynamic_pj", e.components[i].dynamic_pj);
    components += c.str();
  }
  w.field("components", components + "]");
  return w.str();
}

std::string schemes_row_json(const SchemesRow& row) {
  ObjectWriter w;
  w.double_field("delay_target_ps", row.delay_target_ps);
  w.field("scheme_I", optimized_cache_json(row.scheme1));
  w.field("scheme_II", optimized_cache_json(row.scheme2));
  w.field("scheme_III", optimized_cache_json(row.scheme3));
  return w.str();
}

std::string size_row_json(const SizeRow& row) {
  ObjectWriter w;
  w.uint_field("size_bytes", row.size_bytes);
  w.bool_field("feasible", row.feasible);
  if (!row.feasible) {
    w.string_field("infeasible_reason", row.infeasible_reason);
    w.double_field("miss_rate", row.miss_rate);
    return w.str();
  }
  w.double_field("miss_rate", row.miss_rate);
  w.double_field("amat_ps", row.amat_ps);
  w.double_field("level_leakage_mw", row.level_leakage_mw);
  w.double_field("total_leakage_mw", row.total_leakage_mw);
  w.field("result", optimized_cache_json(row.result));
  return w.str();
}

std::string sweep_json(const SweepResponse& s) {
  ObjectWriter w;
  w.string_field("sweep", sweep_kind_name(s.kind));
  if (s.kind == SweepKind::kSchemes) {
    std::string rows = "[";
    for (std::size_t i = 0; i < s.schemes.size(); ++i) {
      if (i > 0) rows += ',';
      rows += schemes_row_json(s.schemes[i]);
    }
    w.field("rows", rows + "]");
  } else {
    w.double_field("amat_target_ps", s.amat_target_ps);
    std::string rows = "[";
    for (std::size_t i = 0; i < s.sizes.size(); ++i) {
      if (i > 0) rows += ',';
      rows += size_row_json(s.sizes[i]);
    }
    w.field("rows", rows + "]");
  }
  return w.str();
}

std::string menu_design_json(const MenuDesign& d) {
  ObjectWriter w;
  if (d.amat_target_ps > 0.0) w.double_field("amat_target_ps", d.amat_target_ps);
  w.bool_field("feasible", d.feasible);
  if (!d.feasible) return w.str();
  w.double_field("amat_ps", d.amat_ps);
  w.double_field("energy_pj", d.energy_pj);
  w.double_field("leakage_mw", d.leakage_mw);
  w.field("tox_menu_a", double_array_json(d.tox_menu_a));
  w.field("vth_menu_v", double_array_json(d.vth_menu_v));
  w.field("l1_assignment", assignment_json(d.l1_assignment));
  w.field("l2_assignment", assignment_json(d.l2_assignment));
  return w.str();
}

std::string tuple_menu_json(const TupleMenuResponse& t) {
  ObjectWriter w;
  w.int_field("num_tox", t.num_tox);
  w.int_field("num_vth", t.num_vth);
  w.string_field("label", t.label);
  w.double_field("min_amat_ps", t.min_amat_ps);
  std::string targets = "[";
  for (std::size_t i = 0; i < t.targets.size(); ++i) {
    if (i > 0) targets += ',';
    targets += menu_design_json(t.targets[i]);
  }
  w.field("targets", targets + "]");
  if (!t.frontier.empty()) {
    std::string frontier = "[";
    for (std::size_t i = 0; i < t.frontier.size(); ++i) {
      if (i > 0) frontier += ',';
      frontier += menu_design_json(t.frontier[i]);
    }
    w.field("frontier", frontier + "]");
  }
  return w.str();
}

std::string capabilities_json(const CapabilitiesResponse& c) {
  ObjectWriter w;
  w.field("schema_versions", int_array_json(c.schema_versions));
  w.int_field("api_version_major", c.api_version_major);
  w.int_field("api_version_minor", c.api_version_minor);
  w.double_field("vth_min_v", c.vth_min_v);
  w.double_field("vth_max_v", c.vth_max_v);
  w.double_field("tox_min_a", c.tox_min_a);
  w.double_field("tox_max_a", c.tox_max_a);
  w.field("grid_vth_v", double_array_json(c.grid_vth_v));
  w.field("grid_tox_a", double_array_json(c.grid_tox_a));
  w.field("schemes", string_array_json(c.schemes));
  w.field("sweeps", string_array_json(c.sweeps));
  w.uint_field("l1_size_bytes", c.l1_size_bytes);
  w.uint_field("l2_size_bytes", c.l2_size_bytes);
  w.int_field("threads", c.threads);
  w.string_field("search_mode", c.search_mode);
  w.bool_field("fitted_models", c.fitted_models);
  w.bool_field("disk_cache", c.disk_cache);
  w.string_field("cache_dir", c.cache_dir);
  // v3 design-space discovery (kept in lockstep with
  // parse_capabilities_response above).
  ObjectWriter org;
  org.field("associativities", int_array_json(c.organization_associativities));
  org.bool_field("fully_associative", c.organization_fully_associative);
  org.uint_field("max_banks", c.organization_max_banks);
  w.field("organization", org.str());
  ObjectWriter gating;
  gating.bool_field("supported", c.power_gating_supported);
  gating.double_field("sleep_leakage_factor", c.power_gating_sleep_factor);
  gating.double_field("wake_delay_factor", c.power_gating_wake_factor);
  gating.double_field("max_perf_loss_budget", c.power_gating_max_budget);
  w.field("power_gating", gating.str());
  w.field("nodes_nm", int_array_json(c.nodes_nm));
  // v4 surrogate-tier discovery (also lockstep with the parser above).
  ObjectWriter surrogate;
  surrogate.bool_field("loaded", c.surrogate_loaded);
  surrogate.int_field("eval_tables", c.surrogate_eval_tables);
  surrogate.int_field("optimize_tables", c.surrogate_optimize_tables);
  surrogate.string_field("fingerprint", c.surrogate_fingerprint);
  surrogate.string_field("stamp", c.surrogate_stamp);
  surrogate.field("sizes_bytes", uint_array_json(c.surrogate_sizes_bytes));
  surrogate.field("nodes_nm", int_array_json(c.surrogate_nodes_nm));
  surrogate.field("schemes", string_array_json(c.surrogate_schemes));
  ObjectWriter bounds;
  bounds.double_field("leakage_mw", c.surrogate_max_error_leakage_mw);
  bounds.double_field("access_time_ps", c.surrogate_max_error_access_time_ps);
  bounds.double_field("dynamic_pj", c.surrogate_max_error_dynamic_pj);
  surrogate.field("max_error", bounds.str());
  w.field("surrogate", surrogate.str());
  return w.str();
}

/// Bit-pattern key of a double: structural identity, not decimal identity.
std::string key_double(double d) {
  const auto bits = std::bit_cast<std::uint64_t>(d);
  char buf[17];
  static const char* hex = "0123456789abcdef";
  for (int i = 15; i >= 0; --i) {
    buf[15 - i] = hex[(bits >> (i * 4)) & 0xF];
  }
  buf[16] = '\0';
  return std::string(buf);
}

void key_doubles(std::string& key, const std::vector<double>& values) {
  key += '[';
  for (const double v : values) {
    key += key_double(v);
    key += ',';
  }
  key += ']';
}

}  // namespace

Outcome<Request> parse_request_json(const std::string& line) {
  try {
    return request_from_value(json::parse(line));
  } catch (const Error& e) {
    const ErrorCode code = e.category() == ErrorCategory::kConfig
                               ? ErrorCode::kConfig
                               : ErrorCode::kInternal;
    return Outcome<Request>::failure(code, e.what());
  } catch (const std::exception& e) {
    return Outcome<Request>::failure(ErrorCode::kInternal, e.what());
  }
}

Outcome<Response> parse_response_json(const std::string& line) {
  try {
    return response_from_value(json::parse(line));
  } catch (const Error& e) {
    const ErrorCode code = e.category() == ErrorCategory::kConfig
                               ? ErrorCode::kConfig
                               : ErrorCode::kInternal;
    return Outcome<Response>::failure(code, e.what());
  } catch (const std::exception& e) {
    return Outcome<Response>::failure(ErrorCode::kInternal, e.what());
  }
}

std::string request_to_json(const Request& request) {
  ObjectWriter w;
  // Serialization always speaks the current schema: v1-v3 requests were
  // normalized into the current structs at parse time.  The v3 design-space
  // fields and the v4 exactness selector are omitted when default, so
  // normalized old requests serialize exactly as they did under v2 (modulo
  // schema_version).
  w.int_field("schema_version", kSchemaVersion);
  if (!request.id.empty()) w.string_field("id", request.id);
  w.string_field("kind", request_kind_name(request.kind));
  switch (request.kind) {
    case RequestKind::kEval: {
      const auto& e = request.eval;
      w.field("target", grid_spec_json(e.target));
      w.field("knobs", knobs_json(e.knobs));
      if (!e.organization.is_default()) {
        w.field("organization", organization_json(e.organization));
      }
      if (e.node_nm != 0) w.int_field("node_nm", e.node_nm);
      if (e.exactness != Exactness::kAuto) {
        w.string_field("exactness", exactness_name(e.exactness));
      }
      break;
    }
    case RequestKind::kOptimize: {
      const auto& o = request.optimize;
      w.field("target", grid_spec_json(o.target));
      w.string_field("scheme", scheme_id_name(o.scheme));
      w.field("delay", delay_constraint_json(o.delay));
      if (!o.organization.is_default()) {
        w.field("organization", organization_json(o.organization));
      }
      if (o.power_gating.enabled || o.power_gating.perf_loss_budget != 0.0) {
        w.field("power_gating", power_gating_json(o.power_gating));
      }
      if (o.node_nm != 0) w.int_field("node_nm", o.node_nm);
      if (o.exactness != Exactness::kAuto) {
        w.string_field("exactness", exactness_name(o.exactness));
      }
      break;
    }
    case RequestKind::kSweep: {
      const auto& s = request.sweep;
      w.string_field("sweep", sweep_kind_name(s.kind));
      w.field("target", grid_spec_json(s.target));
      w.int_field("ladder_steps", s.ladder_steps);
      w.field("delay", delay_constraint_json(s.delay));
      w.string_field("scheme", scheme_id_name(s.l2_scheme));
      if (s.node_nm != 0) w.int_field("node_nm", s.node_nm);
      break;
    }
    case RequestKind::kTupleMenu: {
      const auto& t = request.tuple_menu;
      w.int_field("num_tox", t.num_tox);
      w.int_field("num_vth", t.num_vth);
      w.field("delay", delay_constraint_json(t.delay));
      w.bool_field("include_frontier", t.include_frontier);
      w.int_field("frontier_max_points", t.frontier_max_points);
      break;
    }
    case RequestKind::kCapabilities:
      break;  // no payload
  }
  return w.str();
}

std::string response_to_json(const Response& response) {
  ObjectWriter w;
  w.int_field("schema_version", response.schema_version);
  if (!response.id.empty()) w.string_field("id", response.id);
  if (!response.ok) {
    ObjectWriter err;
    err.string_field("code", error_code_name(response.error.code));
    err.string_field("message", response.error.message);
    w.bool_field("ok", false);
    w.field("error", err.str());
    return w.str();
  }
  w.string_field("kind", request_kind_name(response.kind));
  w.bool_field("ok", true);
  // served_by (and the certified bounds) only appear on surrogate answers:
  // exact answers keep their pre-v4 bytes, and parse_response_json maps the
  // omission back to kExact.
  if (response.served_by == ServedBy::kSurrogate) {
    w.string_field("served_by", served_by_name(response.served_by));
    ObjectWriter bounds;
    bounds.double_field("leakage_mw", response.max_error.leakage_mw);
    bounds.double_field("access_time_ps", response.max_error.access_time_ps);
    bounds.double_field("dynamic_pj", response.max_error.dynamic_pj);
    w.field("max_error", bounds.str());
  }
  switch (response.kind) {
    case RequestKind::kEval:
      w.field("result", eval_json(response.eval));
      break;
    case RequestKind::kOptimize:
      w.field("result", optimized_cache_json(response.optimize.result));
      break;
    case RequestKind::kSweep:
      w.field("result", sweep_json(response.sweep));
      break;
    case RequestKind::kTupleMenu:
      w.field("result", tuple_menu_json(response.tuple_menu));
      break;
    case RequestKind::kCapabilities:
      w.field("result", capabilities_json(response.capabilities));
      break;
  }
  return w.str();
}

std::string request_canonical_key(const Request& request) {
  // Supported schema versions mean the identical computation (v1 payloads
  // normalize to the v2 structs), so they share keys under the current
  // version.  Unsupported versions keep their own number: their (error)
  // responses quote it, so they must never dedup against supported
  // requests or each other.
  const bool supported = request.schema_version >= kMinSchemaVersion &&
                         request.schema_version <= kSchemaVersion;
  std::string key =
      "v" +
      std::to_string(supported ? kSchemaVersion : request.schema_version) +
      "|";
  key += request_kind_name(request.kind);
  key += '|';
  switch (request.kind) {
    case RequestKind::kEval: {
      const auto& e = request.eval;
      key += level_name(e.target.level);
      key += '|';
      key += std::to_string(e.target.size_bytes);
      key += '|';
      key += key_double(e.knobs.vth_v);
      key += '|';
      key += key_double(e.knobs.tox_a);
      // v3 design-space fields, appended UNCONDITIONALLY: a v1/v2 request
      // and its v3-normalized form (all defaults) produce the same key, and
      // any non-default knob gets a distinct one.
      key += "|a";
      key += std::to_string(e.organization.associativity);
      key += "|b";
      key += std::to_string(e.organization.banks);
      key += "|n";
      key += std::to_string(e.node_nm);
      // v4 exactness, also unconditional: `auto` (the normalized form of an
      // absent field) keys as x0, so pre-v4 spellings share keys — but a
      // pinned request gets its own key, keeping exact and surrogate
      // answers out of each other's cache entries.
      key += "|x";
      key += std::to_string(static_cast<int>(e.exactness));
      break;
    }
    case RequestKind::kOptimize: {
      const auto& o = request.optimize;
      key += level_name(o.target.level);
      key += '|';
      key += std::to_string(o.target.size_bytes);
      key += '|';
      key += scheme_id_name(o.scheme);
      key += '|';
      key += key_double(o.delay.target_ps);
      key += "|a";
      key += std::to_string(o.organization.associativity);
      key += "|b";
      key += std::to_string(o.organization.banks);
      key += "|g";
      key += o.power_gating.enabled ? '1' : '0';
      key += "|pb";
      key += key_double(o.power_gating.perf_loss_budget);
      key += "|n";
      key += std::to_string(o.node_nm);
      key += "|x";
      key += std::to_string(static_cast<int>(o.exactness));
      break;
    }
    case RequestKind::kSweep: {
      const auto& s = request.sweep;
      key += sweep_kind_name(s.kind);
      key += '|';
      key += level_name(s.target.level);
      key += '|';
      key += std::to_string(s.target.size_bytes);
      key += '|';
      key += std::to_string(s.ladder_steps);
      key += '|';
      key_doubles(key, s.delay.targets_ps);
      key += '|';
      key += key_double(s.delay.target_ps);
      key += '|';
      key += scheme_id_name(s.l2_scheme);
      key += "|n";
      key += std::to_string(s.node_nm);
      break;
    }
    case RequestKind::kTupleMenu: {
      const auto& t = request.tuple_menu;
      key += std::to_string(t.num_tox);
      key += '|';
      key += std::to_string(t.num_vth);
      key += '|';
      key_doubles(key, t.delay.targets_ps);
      key += '|';
      key += t.include_frontier ? "f1" : "f0";
      key += '|';
      key += std::to_string(t.frontier_max_points);
      break;
    }
    case RequestKind::kCapabilities:
      break;  // no payload fields
  }
  return key;
}

std::string response_line(const Response& response) {
  try {
    return response_to_json(response);
  } catch (const Error& e) {
    static auto& serialize_errors = metrics::Registry::instance().counter(
        "api.batch.serialize_errors");
    serialize_errors.add(1);
    Response fallback;
    fallback.schema_version = response.schema_version;
    fallback.id = response.id;
    fallback.kind = response.kind;
    fallback.ok = false;
    fallback.error.code = e.category() == ErrorCategory::kNumericDomain
                              ? ErrorCode::kNumericDomain
                              : ErrorCode::kInternal;
    fallback.error.message =
        std::string("response serialization failed: ") + e.what();
    return response_to_json(fallback);
  }
}

BatchStats run_batch_jsonl(const Service& service, std::istream& in,
                           std::ostream& out) {
  // Slot per non-empty input line: either a parsed request (index into the
  // batch) or a ready-made parse-error response.
  struct Slot {
    bool parsed = false;
    std::size_t batch_index = 0;
    Response error_response{};
  };
  std::vector<Slot> slots;
  std::vector<Request> requests;
  std::string line;
  std::size_t line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    // Skip blank lines so hand-edited files with trailing newlines work.
    if (line.find_first_not_of(" \t") == std::string::npos) continue;
    Slot slot;
    auto parsed = parse_request_json(line);
    if (parsed.ok()) {
      slot.parsed = true;
      slot.batch_index = requests.size();
      requests.push_back(std::move(parsed.value()));
    } else {
      Response r;
      r.ok = false;
      r.error = parsed.error();
      r.error.message =
          "line " + std::to_string(line_number) + ": " + r.error.message;
      slot.error_response = std::move(r);
    }
    slots.push_back(std::move(slot));
  }

  BatchResult batch = service.run_batch(requests);
  BatchStats stats = batch.stats;
  stats.requests += slots.size() - requests.size();  // count failed lines

  {
    auto& registry = metrics::Registry::instance();
    static auto& lines = registry.counter("api.batch.lines");
    static auto& parse_errors = registry.counter("api.batch.parse_errors");
    lines.add(slots.size());
    parse_errors.add(slots.size() - requests.size());
  }
  for (const auto& slot : slots) {
    const Response& r = slot.parsed ? batch.responses[slot.batch_index]
                                    : slot.error_response;
    // response_line (not response_to_json): a response field that cannot be
    // serialized degrades to an error line in place, preserving line order.
    out << response_line(r) << '\n';
  }
  return stats;
}

}  // namespace nanocache::api
