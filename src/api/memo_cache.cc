#include "api/memo_cache.h"

#include "util/error.h"
#include "util/metrics.h"

namespace nanocache::api {

MemoCache::MemoCache(std::size_t shards) {
  if (shards == 0) shards = kDefaultShards;
  NC_REQUIRE(shards <= 4096 && (shards & (shards - 1)) == 0,
             "memo cache shard count must be a power of two in [1, 4096], "
             "got " +
                 std::to_string(shards));
  shards_ = std::vector<Shard>(shards);
}

MemoCache::Stats MemoCache::stats() const {
  Stats s;
  for (auto& shard : shards_) {
    s.hits += shard.hits.load(std::memory_order_relaxed);
    s.misses += shard.misses.load(std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(shard.mutex);
    s.entries += shard.entries.size();
  }
  return s;
}

std::shared_ptr<const void> MemoCache::lookup(const std::string& key) {
  // Process-wide observability counters aggregate across every MemoCache
  // instance; the per-shard counters stay the source of MemoStats.
  static auto& memo_hits =
      metrics::Registry::instance().counter("api.memo.hits");
  static auto& memo_misses =
      metrics::Registry::instance().counter("api.memo.misses");
  Shard& shard = shard_for(key);
  {
    std::lock_guard<std::mutex> lock(shard.mutex);
    const auto it = shard.entries.find(key);
    if (it != shard.entries.end()) {
      shard.hits.fetch_add(1, std::memory_order_relaxed);
      memo_hits.add(1);
      return it->second;
    }
  }
  // Counters are relaxed atomics, so the miss increment no longer needs
  // the entry-map critical section: stats() reads never contend with the
  // lookup path.
  shard.misses.fetch_add(1, std::memory_order_relaxed);
  memo_misses.add(1);
  return nullptr;
}

std::shared_ptr<const void> MemoCache::publish(
    const std::string& key, std::shared_ptr<const void> value) {
  Shard& shard = shard_for(key);
  std::lock_guard<std::mutex> lock(shard.mutex);
  const auto [it, inserted] = shard.entries.emplace(key, std::move(value));
  return it->second;
}

}  // namespace nanocache::api
