#include "api/memo_cache.h"

#include "util/metrics.h"

namespace nanocache::api {

MemoCache::Stats MemoCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return Stats{hits_, misses_, entries_.size()};
}

std::shared_ptr<const void> MemoCache::lookup(const std::string& key) {
  // Process-wide observability counters aggregate across every MemoCache
  // instance; the per-instance counters below stay the source of MemoStats.
  static auto& memo_hits =
      metrics::Registry::instance().counter("api.memo.hits");
  static auto& memo_misses =
      metrics::Registry::instance().counter("api.memo.misses");
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = entries_.find(key);
    if (it != entries_.end()) {
      ++hits_;
      memo_hits.add(1);
      return it->second;
    }
    // The miss increment shares the hit path's critical section so a
    // stats() snapshot never observes a lookup split across the two
    // counters.
    ++misses_;
  }
  memo_misses.add(1);
  return nullptr;
}

std::shared_ptr<const void> MemoCache::publish(
    const std::string& key, std::shared_ptr<const void> value) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto [it, inserted] = entries_.emplace(key, std::move(value));
  return it->second;
}

}  // namespace nanocache::api
