#include "api/memo_cache.h"

#include "util/metrics.h"

namespace nanocache::api {

std::size_t MemoCache::entries() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

std::shared_ptr<const void> MemoCache::lookup(const std::string& key) {
  // Process-wide observability counters aggregate across every MemoCache
  // instance; the per-instance atomics below stay the source of MemoStats.
  static auto& memo_hits =
      metrics::Registry::instance().counter("api.memo.hits");
  static auto& memo_misses =
      metrics::Registry::instance().counter("api.memo.misses");
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = entries_.find(key);
    if (it != entries_.end()) {
      hits_.fetch_add(1, std::memory_order_relaxed);
      memo_hits.add(1);
      return it->second;
    }
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  memo_misses.add(1);
  return nullptr;
}

std::shared_ptr<const void> MemoCache::publish(
    const std::string& key, std::shared_ptr<const void> value) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto [it, inserted] = entries_.emplace(key, std::move(value));
  return it->second;
}

}  // namespace nanocache::api
