#include "api/memo_cache.h"

namespace nanocache::api {

std::size_t MemoCache::entries() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

std::shared_ptr<const void> MemoCache::lookup(const std::string& key) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = entries_.find(key);
    if (it != entries_.end()) {
      hits_.fetch_add(1, std::memory_order_relaxed);
      return it->second;
    }
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  return nullptr;
}

std::shared_ptr<const void> MemoCache::publish(
    const std::string& key, std::shared_ptr<const void> value) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto [it, inserted] = entries_.emplace(key, std::move(value));
  return it->second;
}

}  // namespace nanocache::api
