// Content-keyed memoization cache for the batched evaluation service.
//
// Keys are canonical strings describing a sub-evaluation's full structural
// identity (model identity + knobs + grid fingerprint + scheme + target
// bits), so two requests that would run the same computation share one
// result.  Values are immutable shared_ptrs: a hit hands back the exact
// object the miss path stored, which makes the "hit is bitwise-equal to
// miss" guarantee trivial.
//
// Concurrency: the entry map is lock-striped into a power-of-two number of
// shards selected by the canonical-key hash, so concurrent lookups on
// distinct keys almost never contend.  The compute callback runs OUTSIDE
// any lock so slow model evaluations don't serialize the pool.  Two
// threads racing on the same key may both compute; the first insert wins
// and both receive the winning (deterministic, bitwise-identical) value.
// Hit/miss counters are relaxed per-shard atomics folded into one Stats
// snapshot — they are timing-dependent and feed reporting, never results.
// A snapshot taken concurrently with lookups is approximately consistent
// (each shard's pair is read without stopping traffic); every completed
// lookup is counted exactly once.
#pragma once

#include <atomic>
#include <cstddef>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

namespace nanocache::api {

class MemoCache {
 public:
  /// Snapshot of the cache's counters summed across shards.
  struct Stats {
    std::size_t hits = 0;
    std::size_t misses = 0;
    std::size_t entries = 0;
  };

  static constexpr std::size_t kDefaultShards = 16;

  /// `shards` must be a power of two in [1, 4096] (throws Error(kConfig)
  /// otherwise); 0 selects the default.
  explicit MemoCache(std::size_t shards = 0);

  /// Return the cached value for `key`, or run `compute`, publish its
  /// result, and return it.  `T` must match the type stored under `key`;
  /// callers namespace keys with a type tag prefix ("eval|", "opt|", ...)
  /// so a collision across types is impossible by construction.
  template <typename T>
  std::shared_ptr<const T> get_or_compute(
      const std::string& key,
      const std::function<std::shared_ptr<const T>()>& compute) {
    if (auto hit = lookup(key)) {
      return std::static_pointer_cast<const T>(hit);
    }
    std::shared_ptr<const T> fresh = compute();
    const auto winner = publish(key, fresh);
    return std::static_pointer_cast<const T>(winner);
  }

  Stats stats() const;
  std::size_t hits() const { return stats().hits; }
  std::size_t misses() const { return stats().misses; }
  std::size_t entries() const { return stats().entries; }
  std::size_t shard_count() const { return shards_.size(); }

 private:
  /// One lock stripe.  Cache-line aligned so one shard's mutex traffic
  /// never invalidates a neighbour's counters.
  struct alignas(64) Shard {
    std::mutex mutex;
    std::unordered_map<std::string, std::shared_ptr<const void>> entries;
    std::atomic<std::size_t> hits{0};
    std::atomic<std::size_t> misses{0};
  };

  Shard& shard_for(const std::string& key) const {
    // shards_.size() is a power of two, so the hash masks cleanly.
    return shards_[std::hash<std::string>{}(key) & (shards_.size() - 1)];
  }

  /// nullptr on miss (miss counter bumped); the stored value on hit.
  std::shared_ptr<const void> lookup(const std::string& key);

  /// Insert `value` unless another thread won the race; returns the entry
  /// that ended up (or already was) in the cache.
  std::shared_ptr<const void> publish(const std::string& key,
                                      std::shared_ptr<const void> value);

  // Shards never move after construction (vector sized once), so
  // references handed out by shard_for stay valid for the cache lifetime.
  mutable std::vector<Shard> shards_;
};

}  // namespace nanocache::api
