// Content-keyed memoization cache for the batched evaluation service.
//
// Keys are canonical strings describing a sub-evaluation's full structural
// identity (model identity + knobs + grid fingerprint + scheme + target
// bits), so two requests that would run the same computation share one
// result.  Values are immutable shared_ptrs: a hit hands back the exact
// object the miss path stored, which makes the "hit is bitwise-equal to
// miss" guarantee trivial.
//
// Concurrency: lookups/inserts take a mutex; the compute callback runs
// OUTSIDE the lock so slow model evaluations don't serialize the pool.  Two
// threads racing on the same key may both compute; the first insert wins
// and both receive the winning (deterministic, bitwise-identical) value.
// Hit/miss counters are therefore timing-dependent — they feed reporting,
// never results.  The counters live under the same mutex as the entry map,
// so a stats() snapshot is internally consistent (hits + misses covers
// exactly the lookups that completed before the snapshot).
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>

namespace nanocache::api {

class MemoCache {
 public:
  /// One consistent snapshot of the cache's counters, taken under a single
  /// lock acquisition — the metrics path must never see a hits/misses pair
  /// straddling a concurrent lookup.
  struct Stats {
    std::size_t hits = 0;
    std::size_t misses = 0;
    std::size_t entries = 0;
  };

  /// Return the cached value for `key`, or run `compute`, publish its
  /// result, and return it.  `T` must match the type stored under `key`;
  /// callers namespace keys with a type tag prefix ("eval|", "opt|", ...)
  /// so a collision across types is impossible by construction.
  template <typename T>
  std::shared_ptr<const T> get_or_compute(
      const std::string& key,
      const std::function<std::shared_ptr<const T>()>& compute) {
    if (auto hit = lookup(key)) {
      return std::static_pointer_cast<const T>(hit);
    }
    std::shared_ptr<const T> fresh = compute();
    const auto winner = publish(key, fresh);
    return std::static_pointer_cast<const T>(winner);
  }

  Stats stats() const;
  std::size_t hits() const { return stats().hits; }
  std::size_t misses() const { return stats().misses; }
  std::size_t entries() const { return stats().entries; }

 private:
  /// nullptr on miss (miss counter bumped); the stored value on hit.
  std::shared_ptr<const void> lookup(const std::string& key);

  /// Insert `value` unless another thread won the race; returns the entry
  /// that ended up (or already was) in the cache.
  std::shared_ptr<const void> publish(const std::string& key,
                                      std::shared_ptr<const void> value);

  mutable std::mutex mutex_;
  std::unordered_map<std::string, std::shared_ptr<const void>> entries_;
  std::size_t hits_ = 0;    // guarded by mutex_
  std::size_t misses_ = 0;  // guarded by mutex_
};

}  // namespace nanocache::api
