// JSON export of the process-wide observability state (util/metrics.h +
// util/trace_span.h), reusing the batch API's deterministic serializer.
//
// Keys appear in a deterministic order (snapshot maps are sorted, struct
// fields are written in a fixed sequence); VALUES are wall-clock and
// scheduling dependent.  Metrics therefore go to their own sink
// (`nanocache_cli --metrics <file|->`, the bench harness's "metrics"
// section) and are explicitly excluded from the batch response
// byte-identity contract — see docs/API.md.
#pragma once

#include <string>
#include <vector>

#include "nanocache/responses.h"
#include "util/metrics.h"
#include "util/trace_span.h"

namespace nanocache::api {

/// Serialize one snapshot (+ finished spans, + an optional batch `stats`
/// block) as a single JSON object.  Histogram buckets with zero counts are
/// omitted; phase times are reported in milliseconds.
std::string metrics_to_json(const metrics::MetricsSnapshot& snapshot,
                            const std::vector<metrics::SpanRecord>& spans,
                            const BatchStats* batch = nullptr);

/// Convenience: snapshot the registry and span buffer right now.
std::string current_metrics_json(const BatchStats* batch = nullptr);

/// One JSONL response line for the server's {"kind":"metrics"} control
/// request: the standard response envelope (schema_version / optional id /
/// kind / ok) around a live current_metrics_json() snapshot.  Like every
/// metrics sink, the values are timing-dependent and excluded from the
/// batch byte-identity contract.
std::string metrics_response_line(const std::string& id,
                                  const BatchStats* batch = nullptr);

}  // namespace nanocache::api
