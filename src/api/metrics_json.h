// JSON export of the process-wide observability state (util/metrics.h +
// util/trace_span.h), reusing the batch API's deterministic serializer.
//
// Keys appear in a deterministic order (snapshot maps are sorted, struct
// fields are written in a fixed sequence); VALUES are wall-clock and
// scheduling dependent.  Metrics therefore go to their own sink
// (`nanocache_cli --metrics <file|->`, the bench harness's "metrics"
// section) and are explicitly excluded from the batch response
// byte-identity contract — see docs/API.md.
#pragma once

#include <string>
#include <vector>

#include "nanocache/responses.h"
#include "util/metrics.h"
#include "util/trace_span.h"

namespace nanocache::api {

/// Serialize one snapshot (+ finished spans, + an optional batch `stats`
/// block) as a single JSON object.  Histogram buckets with zero counts are
/// omitted; phase times are reported in milliseconds.
std::string metrics_to_json(const metrics::MetricsSnapshot& snapshot,
                            const std::vector<metrics::SpanRecord>& spans,
                            const BatchStats* batch = nullptr);

/// Convenience: snapshot the registry and span buffer right now.
std::string current_metrics_json(const BatchStats* batch = nullptr);

}  // namespace nanocache::api
