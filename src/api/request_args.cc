#include "api/request_args.h"

#include <cstdlib>
#include <cstring>
#include <exception>

#include "util/error.h"

namespace nanocache::api {

namespace {

SchemeId parse_scheme_flag(const std::string& s) {
  if (s == "I") return SchemeId::kI;
  if (s == "II") return SchemeId::kII;
  if (s == "III") return SchemeId::kIII;
  throw Error(ErrorCategory::kConfig, "unknown scheme '" + s + "'");
}

/// --assoc accepts 1/2/4/8 or "full" (fully associative), like the wire's
/// organization.associativity.
int parse_assoc_flag(const std::string& s) {
  if (s == "full") return -1;
  try {
    return std::stoi(s);
  } catch (const std::exception&) {
    throw Error(ErrorCategory::kConfig,
                "--assoc expects 1, 2, 4, 8 or 'full', got '" + s + "'");
  }
}

/// Shared v3 design-space flags of the cache/optimize commands.
void apply_organization_flags(const CliArgs& args, OrganizationSpec& org) {
  const auto assoc = args.flags.find("assoc");
  if (assoc != args.flags.end()) {
    org.associativity = parse_assoc_flag(assoc->second);
  }
  org.banks = static_cast<std::uint32_t>(flag_uint(args, "banks", org.banks));
  if (org.banks == 1) org.banks = 0;  // same normalization as the parser
}

int node_flag(const CliArgs& args) {
  return static_cast<int>(flag_uint(args, "node", 0));
}

/// v4 --exactness exact|surrogate|auto (absent = auto, the wire default).
Exactness exactness_flag(const CliArgs& args) {
  const auto it = args.flags.find("exactness");
  if (it == args.flags.end()) return Exactness::kAuto;
  if (it->second == "auto") return Exactness::kAuto;
  if (it->second == "exact") return Exactness::kExact;
  if (it->second == "surrogate") return Exactness::kSurrogate;
  throw Error(ErrorCategory::kConfig,
              "--exactness expects 'exact', 'surrogate' or 'auto', got '" +
                  it->second + "'");
}

}  // namespace

CliArgs parse_cli_args(int argc, const char* const* argv) {
  CliArgs a;
  if (argc < 2) return a;
  a.command = argv[1];
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) == 0) {
      const std::string key = arg.substr(2);
      if (i + 1 < argc && std::strncmp(argv[i + 1], "--", 2) != 0) {
        a.flags[key] = argv[++i];
      } else {
        a.flags[key] = "true";
      }
    } else if (a.positional.empty()) {
      a.positional = arg;
    }
  }
  return a;
}

double flag_double(const CliArgs& args, const std::string& key,
                   double fallback) {
  const auto it = args.flags.find(key);
  if (it == args.flags.end()) return fallback;
  try {
    return std::stod(it->second);
  } catch (const std::exception&) {
    throw Error(ErrorCategory::kConfig,
                "--" + key + " expects a number, got '" + it->second + "'");
  }
}

std::uint64_t flag_uint(const CliArgs& args, const std::string& key,
                        std::uint64_t fallback) {
  const auto it = args.flags.find(key);
  if (it == args.flags.end()) return fallback;
  try {
    return std::stoull(it->second);
  } catch (const std::exception&) {
    throw Error(ErrorCategory::kConfig, "--" + key +
                    " expects a non-negative integer, got '" + it->second +
                    "'");
  }
}

bool flag_present(const CliArgs& args, const std::string& key) {
  return args.flags.count(key) > 0;
}

ServiceConfig service_config_from_args(const CliArgs& args) {
  ServiceConfig config;
  config.use_fitted_models = flag_present(args, "fitted");
  config.strict_degradation = flag_present(args, "strict");

  // Persistent result cache: --cache-dir wins, then NANOCACHE_CACHE_DIR;
  // neither means no persistence.
  const auto dir = args.flags.find("cache-dir");
  if (dir != args.flags.end()) {
    NC_REQUIRE(dir->second != "true",
               "--cache-dir expects a directory path");
    config.cache_dir = dir->second;
  } else if (const char* env = std::getenv("NANOCACHE_CACHE_DIR")) {
    config.cache_dir = env;
  }

  // Surrogate answer tables: --surrogate-dir wins, then
  // NANOCACHE_SURROGATE_DIR; neither means exact-only serving.
  const auto surrogate = args.flags.find("surrogate-dir");
  if (surrogate != args.flags.end()) {
    NC_REQUIRE(surrogate->second != "true",
               "--surrogate-dir expects a directory path");
    config.surrogate_dir = surrogate->second;
  } else if (const char* env = std::getenv("NANOCACHE_SURROGATE_DIR")) {
    config.surrogate_dir = env;
  }

  const auto search = args.flags.find("search");
  if (search != args.flags.end()) {
    if (search->second == "exhaustive") {
      config.exhaustive_search = true;
    } else {
      NC_REQUIRE(search->second == "pruned",
                 "--search expects 'pruned' or 'exhaustive', got '" +
                     search->second + "'");
    }
  }

  // Memo-cache lock striping: --memo-shards wins, then
  // NANOCACHE_MEMO_SHARDS; 0 keeps the library default.  Range/power-of-two
  // validation happens in Service::create so both spellings share it.
  config.memo_shards =
      static_cast<std::size_t>(flag_uint(args, "memo-shards", 0));
  if (config.memo_shards == 0) {
    if (const char* env = std::getenv("NANOCACHE_MEMO_SHARDS")) {
      try {
        config.memo_shards = static_cast<std::size_t>(std::stoull(env));
      } catch (const std::exception&) {
        throw Error(ErrorCategory::kConfig,
                    "NANOCACHE_MEMO_SHARDS expects a non-negative integer, "
                    "got '" + std::string(env) + "'");
      }
    }
  }
  return config;
}

int threads_from_args(const CliArgs& args) {
  const auto it = args.flags.find("threads");
  if (it == args.flags.end()) return 0;
  int threads = 0;
  try {
    threads = std::stoi(it->second);
  } catch (const std::exception&) {
    throw Error(ErrorCategory::kConfig,
                "--threads expects an integer, got '" + it->second + "'");
  }
  NC_REQUIRE(threads >= 0, "--threads must be >= 0");
  return threads;
}

Outcome<Request> request_from_args(const CliArgs& args) {
  try {
    Request r;
    if (args.command == "capabilities") {
      r.kind = RequestKind::kCapabilities;
      return r;
    }
    if (args.command == "cache") {
      r.kind = RequestKind::kEval;
      r.eval.target.level = flag_present(args, "l2") ? Level::kL2 : Level::kL1;
      r.eval.target.size_bytes =
          flag_uint(args, "size", r.eval.target.size_bytes);
      r.eval.knobs.vth_v = flag_double(args, "vth", r.eval.knobs.vth_v);
      r.eval.knobs.tox_a = flag_double(args, "tox", r.eval.knobs.tox_a);
      apply_organization_flags(args, r.eval.organization);
      r.eval.node_nm = node_flag(args);
      r.eval.exactness = exactness_flag(args);
      return r;
    }
    if (args.command == "optimize") {
      r.kind = RequestKind::kOptimize;
      r.optimize.target.level =
          flag_present(args, "l2") ? Level::kL2 : Level::kL1;
      r.optimize.target.size_bytes =
          flag_uint(args, "size", r.optimize.target.size_bytes);
      const auto it = args.flags.find("scheme");
      if (it != args.flags.end()) r.optimize.scheme = parse_scheme_flag(it->second);
      r.optimize.delay.target_ps =
          flag_double(args, "delay-ps", r.optimize.delay.target_ps);
      apply_organization_flags(args, r.optimize.organization);
      r.optimize.node_nm = node_flag(args);
      if (flag_present(args, "power-gating")) {
        r.optimize.power_gating.enabled = true;
      }
      r.optimize.power_gating.perf_loss_budget = flag_double(
          args, "perf-loss-budget", r.optimize.power_gating.perf_loss_budget);
      r.optimize.exactness = exactness_flag(args);
      return r;
    }
    if (args.command == "run") {
      r.kind = RequestKind::kSweep;
      if (args.positional == "schemes") {
        r.sweep.kind = SweepKind::kSchemes;
        r.sweep.target.size_bytes = flag_uint(args, "size", 0);
        r.sweep.ladder_steps =
            static_cast<int>(flag_uint(args, "steps", 9));
      } else if (args.positional == "l2" || args.positional == "l2split") {
        r.sweep.kind = SweepKind::kL2Sizes;
        r.sweep.l2_scheme =
            args.positional == "l2split" ? SchemeId::kII : SchemeId::kIII;
        r.sweep.delay.target_ps = flag_double(args, "amat-ps", 0.0);
      } else if (args.positional == "l1") {
        r.sweep.kind = SweepKind::kL1Sizes;
        r.sweep.delay.target_ps = flag_double(args, "amat-ps", 0.0);
      } else {
        throw Error(ErrorCategory::kConfig,
                    "experiment '" + args.positional +
                        "' is not request-shaped (expected schemes, l2, "
                        "l2split or l1)");
      }
      r.sweep.node_nm = node_flag(args);
      return r;
    }
    throw Error(ErrorCategory::kConfig,
                "command '" + args.command + "' has no request translation");
  } catch (const Error& e) {
    const ErrorCode code = e.category() == ErrorCategory::kConfig
                               ? ErrorCode::kConfig
                               : ErrorCode::kInternal;
    return Outcome<Request>::failure(code, e.what());
  }
}

int exit_code_for(ErrorCode code) {
  switch (code) {
    case ErrorCode::kConfig: return 2;
    case ErrorCode::kIo: return 3;
    case ErrorCode::kNumericDomain:
    case ErrorCode::kInfeasible: return 4;
    case ErrorCode::kInternal: return 1;
  }
  return 1;
}

}  // namespace nanocache::api
