// Persistent cross-run result cache under api::MemoCache.
//
// A DiskCache holds one JSONL segment file of (request key -> serialized
// response) entries, content-addressed by the same canonical bit-pattern
// request keys the in-memory batch dedup uses.  The segment is bound to one
// library fingerprint — a hash over everything that can change an answer
// (model configuration, grid bit patterns, schema + API version, search
// mode) — so a run with a different configuration reads from, and writes
// to, a different file instead of mixing results.
//
// File layout (one directory may hold segments of many configurations):
//
//   <dir>/nanocache-<fingerprint>.jsonl
//     {"nanocache_cache":1,"fingerprint":"<16 hex>"}          <- header
//     {"key":"...","checksum":"<16 hex>","response":"{...}"}  <- entries
//
// Each entry carries an FNV-1a-64 checksum over `key + '\n' + response`.
// Robustness is strictly "never a wrong answer": a truncated tail line, a
// garbage line, or a checksum mismatch drops that entry (counted in
// api.disk.corrupt_lines) and the lookup falls through to computation; a
// header that does not match the expected fingerprint discards the whole
// segment and rewrites it.  Only an unusable cache *directory* is an error
// (Error(kIo) from open()), because the caller asked for persistence it
// cannot have.
//
// Concurrency: entries load fully into memory at open(); lookups and the
// append-on-store run under one mutex.  The cache stores serialized
// response lines, not structs — a hit re-parses with parse_response_json,
// whose round-trip exactness keeps cached responses byte-identical to
// freshly computed ones.
#pragma once

#include <cstddef>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>

#include "util/hash.h"

namespace nanocache::api {

/// FNV-1a 64-bit hash, fixed-width lower-case hex (now in util so the
/// surrogate store can share it).  Re-exported here for the existing
/// segment-checksum and fingerprint call sites.
using ::nanocache::fnv1a64_hex;

class DiskCache {
 public:
  /// Open (creating as needed) the segment for `fingerprint` inside `dir`.
  /// Creates the directory, validates the header, loads all intact entries.
  /// Throws Error(kIo) when the directory or segment cannot be created or
  /// written — a cache that cannot persist is a configuration error, not a
  /// silent no-op.
  static std::unique_ptr<DiskCache> open(const std::string& dir,
                                         const std::string& fingerprint);

  /// The stored response line for `key`, or nullopt (miss).  Counts into
  /// hits()/misses() and the api.disk.* metrics.
  std::optional<std::string> lookup(const std::string& key);

  /// Append (key -> response_json) unless the key is already present.
  /// Appends are flushed per entry; a failed append disables further writes
  /// for this run (the in-memory copy stays serving) rather than throwing
  /// mid-batch.
  void store(const std::string& key, const std::string& response_json);

  /// Durability barrier: fsync the segment file.  store() flushes each
  /// append out of the process, but only into the OS page cache; flush()
  /// pushes the segment to stable storage (a server shutting down calls
  /// this).  Returns the in-memory entry count.  A failed sync degrades
  /// like a failed append: the in-memory copy keeps serving.
  std::size_t flush();

  const std::string& path() const { return path_; }

  std::size_t hits() const;
  std::size_t misses() const;
  std::size_t stores() const;
  /// Entries dropped while loading (truncated/garbage/checksum mismatch).
  std::size_t corrupt_lines() const;
  std::size_t entries() const;

 private:
  DiskCache() = default;
  void load();

  std::string path_;
  std::string fingerprint_;
  mutable std::mutex mutex_;
  std::unordered_map<std::string, std::string> entries_;
  bool writable_ = true;
  std::size_t hits_ = 0;
  std::size_t misses_ = 0;
  std::size_t stores_ = 0;
  std::size_t corrupt_lines_ = 0;
};

}  // namespace nanocache::api
