#include "api/metrics_json.h"

#include <cstdint>
#include <string>

#include "util/json.h"

namespace nanocache::api {

namespace {

double ns_to_ms(std::uint64_t ns) { return static_cast<double>(ns) / 1e6; }

std::string histogram_json(const metrics::HistogramSnapshot& h) {
  std::string out = "{";
  out += json::quote("count") + ":" + std::to_string(h.count);
  out += "," + json::quote("sum") + ":" + std::to_string(h.sum);
  out += "," + json::quote("buckets") + ":[";
  bool first = true;
  for (std::size_t b = 0; b < metrics::Histogram::kBuckets; ++b) {
    if (h.buckets[b] == 0) continue;  // omit empty buckets
    if (!first) out += ',';
    first = false;
    out += "{" + json::quote("le") + ":";
    out += b + 1 < metrics::Histogram::kBuckets
               ? std::to_string(metrics::Histogram::bucket_bound(b))
               : json::quote("+inf");
    out += "," + json::quote("count") + ":" + std::to_string(h.buckets[b]);
    out += "}";
  }
  return out + "]}";
}

std::string phase_json(const metrics::PhaseSnapshot& p) {
  std::string out = "{";
  out += json::quote("count") + ":" + std::to_string(p.count);
  out += "," + json::quote("total_ms") + ":" +
         json::format_double(ns_to_ms(p.total_ns));
  out += "," + json::quote("max_ms") + ":" +
         json::format_double(ns_to_ms(p.max_ns));
  return out + "}";
}

std::string span_json(const metrics::SpanRecord& s) {
  std::string out = "{";
  out += json::quote("name") + ":" + json::quote(s.name);
  out += "," + json::quote("parent") + ":" + json::quote(s.parent);
  out += "," + json::quote("depth") + ":" + std::to_string(s.depth);
  out += "," + json::quote("thread") + ":" + std::to_string(s.thread_id);
  out += "," + json::quote("start_ms") + ":" +
         json::format_double(ns_to_ms(s.start_ns));
  out += "," + json::quote("duration_ms") + ":" +
         json::format_double(ns_to_ms(s.duration_ns));
  return out + "}";
}

std::string batch_json(const BatchStats& stats) {
  std::string out = "{";
  out += json::quote("requests") + ":" + std::to_string(stats.requests);
  out += "," + json::quote("unique_requests") + ":" +
         std::to_string(stats.unique_requests);
  out += "," + json::quote("request_hits") + ":" +
         std::to_string(stats.request_hits);
  out += "," + json::quote("memo_hits") + ":" +
         std::to_string(stats.memo_hits);
  out += "," + json::quote("memo_misses") + ":" +
         std::to_string(stats.memo_misses);
  const double dedup_ratio =
      stats.requests == 0
          ? 0.0
          : static_cast<double>(stats.request_hits) /
                static_cast<double>(stats.requests);
  out += "," + json::quote("dedup_ratio") + ":" +
         json::format_double(dedup_ratio);
  out += "," + json::quote("hit_rate") + ":" +
         json::format_double(stats.hit_rate());
  return out + "}";
}

}  // namespace

std::string metrics_to_json(const metrics::MetricsSnapshot& snapshot,
                            const std::vector<metrics::SpanRecord>& spans,
                            const BatchStats* batch) {
  std::string out = "{";
  out += json::quote("schema_version") + ":1";

  out += "," + json::quote("counters") + ":{";
  bool first = true;
  for (const auto& [name, value] : snapshot.counters) {
    if (!first) out += ',';
    first = false;
    out += json::quote(name) + ":" + std::to_string(value);
  }
  out += "}";

  out += "," + json::quote("gauges") + ":{";
  first = true;
  for (const auto& [name, value] : snapshot.gauges) {
    if (!first) out += ',';
    first = false;
    out += json::quote(name) + ":" + std::to_string(value);
  }
  out += "}";

  out += "," + json::quote("histograms") + ":{";
  first = true;
  for (const auto& [name, h] : snapshot.histograms) {
    if (!first) out += ',';
    first = false;
    out += json::quote(name) + ":" + histogram_json(h);
  }
  out += "}";

  out += "," + json::quote("phases") + ":{";
  first = true;
  for (const auto& [name, p] : snapshot.phases) {
    if (!first) out += ',';
    first = false;
    out += json::quote(name) + ":" + phase_json(p);
  }
  out += "}";

  out += "," + json::quote("spans") + ":[";
  for (std::size_t i = 0; i < spans.size(); ++i) {
    if (i > 0) out += ',';
    out += span_json(spans[i]);
  }
  out += "]";

  if (batch != nullptr) {
    out += "," + json::quote("batch") + ":" + batch_json(*batch);
  }
  return out + "}";
}

std::string current_metrics_json(const BatchStats* batch) {
  return metrics_to_json(metrics::Registry::instance().snapshot(),
                         metrics::recent_spans(), batch);
}

std::string metrics_response_line(const std::string& id,
                                  const BatchStats* batch) {
  // Mirrors response_to_json's envelope key order (schema_version, id,
  // kind, ok, result) so server clients parse one uniform shape.
  std::string out = "{";
  out += json::quote("schema_version") + ":" + std::to_string(kSchemaVersion);
  if (!id.empty()) out += "," + json::quote("id") + ":" + json::quote(id);
  out += "," + json::quote("kind") + ":" + json::quote("metrics");
  out += "," + json::quote("ok") + ":true";
  out += "," + json::quote("result") + ":" + current_metrics_json(batch);
  return out + "}";
}

}  // namespace nanocache::api
