#include "api/surrogate_precompute.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "opt/options.h"
#include "surrogate/tables.h"
#include "tech/params.h"
#include "util/error.h"
#include "util/interp.h"

namespace nanocache::api {

namespace {

ErrorCategory to_category(ErrorCode code) {
  switch (code) {
    case ErrorCode::kConfig: return ErrorCategory::kConfig;
    case ErrorCode::kNumericDomain: return ErrorCategory::kNumericDomain;
    case ErrorCode::kIo: return ErrorCategory::kIo;
    case ErrorCode::kInfeasible: return ErrorCategory::kInfeasible;
    case ErrorCode::kInternal: return ErrorCategory::kInternal;
  }
  return ErrorCategory::kInternal;
}

/// Re-raise a failed facade outcome inside the precompute (which reports
/// through exceptions, like the rest of the non-facade code).
template <typename T>
const T& require_ok(const Outcome<T>& out) {
  if (!out) throw Error(to_category(out.error().code), out.error().message);
  return out.value();
}

/// Insert cell midpoints until the axis holds at least `steps` points.
/// The input points always survive, so grid knobs are served bit-exact.
std::vector<double> refine_axis(std::vector<double> axis, int steps) {
  NC_REQUIRE(axis.size() >= 2, "knob grid axis needs at least two points");
  while (static_cast<int>(axis.size()) < steps) {
    std::vector<double> refined;
    refined.reserve(axis.size() * 2 - 1);
    for (std::size_t i = 0; i + 1 < axis.size(); ++i) {
      refined.push_back(axis[i]);
      refined.push_back(0.5 * (axis[i] + axis[i + 1]));
    }
    refined.push_back(axis.back());
    axis = std::move(refined);
  }
  return axis;
}

/// The knob grid a node's requests run against: the service's configured
/// grid for the default node, the paper's Vth ladder crossed with the
/// node's oxide window otherwise (mirroring the service's node explorers).
std::pair<std::vector<double>, std::vector<double>> node_grid(
    const Service& service, int node_nm) {
  if (node_nm == 0) {
    const auto caps = require_ok(service.capabilities({}));
    return {caps.grid_vth_v, caps.grid_tox_a};
  }
  const auto grid = opt::KnobGrid::paper_default();
  return {grid.vth_values, tech::node_tox_grid(tech::node_params(node_nm))};
}

struct ExactEngine {
  const Service& service;
  std::size_t evals = 0;
  std::size_t optimizes = 0;

  EvalResponse eval(Level level, std::uint64_t size_bytes, int node_nm,
                    double vth_v, double tox_a) {
    EvalRequest request;
    request.target = GridSpec{level, size_bytes};
    request.knobs = Knobs{vth_v, tox_a};
    request.node_nm = node_nm;
    request.exactness = Exactness::kExact;
    ++evals;
    return require_ok(service.evaluate(request));
  }

  Outcome<OptimizeResponse> optimize(Level level, std::uint64_t size_bytes,
                                     int node_nm, SchemeId scheme,
                                     double target_ps) {
    OptimizeRequest request;
    request.target = GridSpec{level, size_bytes};
    request.scheme = scheme;
    request.delay = DelayConstraint{target_ps, {}};
    request.node_nm = node_nm;
    request.exactness = Exactness::kExact;
    ++optimizes;
    return service.optimize(request);
  }
};

/// Worst-case calibration of one metric's bound coefficients over every
/// cell: `err <= scale * spread` wherever the cell has spread, `err <=
/// floor` on flat cells, each with a 2x safety margin (the validation
/// lattice samples midpoints only; queries land anywhere in the cell).
struct BoundCalibration {
  double max_ratio = 0.0;      ///< err / spread over cells with spread
  double max_flat_err = 0.0;   ///< err over spread-free cells

  void observe(double err, double spread) {
    if (spread > 0.0) {
      max_ratio = std::max(max_ratio, err / spread);
    } else {
      max_flat_err = std::max(max_flat_err, err);
    }
  }
  surrogate::BoundModel model() const {
    return surrogate::BoundModel{2.0 * std::max(1.0, max_ratio),
                                 2.0 * max_flat_err};
  }
};

surrogate::EvalTable build_eval_table(ExactEngine& engine, Level level,
                                      std::uint64_t size_bytes, int node_nm,
                                      std::vector<double> vth_v,
                                      std::vector<double> tox_a) {
  surrogate::EvalTable table;
  table.level = level;
  table.size_bytes = size_bytes;
  table.node_nm = node_nm;
  table.vth_v = std::move(vth_v);
  table.tox_a = std::move(tox_a);

  for (std::size_t iv = 0; iv < table.vth_v.size(); ++iv) {
    for (std::size_t it = 0; it < table.tox_a.size(); ++it) {
      const auto r = engine.eval(level, size_bytes, node_nm, table.vth_v[iv],
                                 table.tox_a[it]);
      if (table.components.empty()) {
        table.organization = r.organization;
        for (const auto& c : r.components) {
          table.components.push_back(c.component);
        }
      }
      table.values.push_back(r.access_time_ps);
      table.values.push_back(r.leakage_mw);
      table.values.push_back(r.leakage_sub_mw);
      table.values.push_back(r.leakage_gate_mw);
      table.values.push_back(r.dynamic_pj);
      table.values.push_back(r.area_um2);
      for (const auto& c : r.components) {
        table.values.push_back(c.delay_ps);
        table.values.push_back(c.leakage_mw);
        table.values.push_back(c.dynamic_pj);
      }
    }
  }

  // Certify against the exact engine on the validation lattice (every cell
  // midpoint).  Spread and interpolation mirror serving exactly.
  const math::BilinearGrid grid(table.vth_v, table.tox_a);
  const auto corner = [&](std::size_t iv, std::size_t it, std::size_t m) {
    return table.values[table.point_index(iv, it) + m];
  };
  const auto interp_at = [&](const math::BilinearGrid::Cell& cell,
                             std::size_t m) {
    return grid.interpolate(cell, corner(cell.ix, cell.iy, m),
                            corner(cell.ix + 1, cell.iy, m),
                            corner(cell.ix, cell.iy + 1, m),
                            corner(cell.ix + 1, cell.iy + 1, m));
  };
  const auto spread_of = [&](std::size_t iv, std::size_t it, std::size_t m) {
    const double v00 = corner(iv, it, m);
    const double v10 = corner(iv + 1, it, m);
    const double v01 = corner(iv, it + 1, m);
    const double v11 = corner(iv + 1, it + 1, m);
    return std::max(std::max(v00, v10), std::max(v01, v11)) -
           std::min(std::min(v00, v10), std::min(v01, v11));
  };

  BoundCalibration leakage;
  BoundCalibration access;
  BoundCalibration dynamic;
  for (std::size_t iv = 0; iv + 1 < table.vth_v.size(); ++iv) {
    for (std::size_t it = 0; it + 1 < table.tox_a.size(); ++it) {
      const double mid_vth = 0.5 * (table.vth_v[iv] + table.vth_v[iv + 1]);
      const double mid_tox = 0.5 * (table.tox_a[it] + table.tox_a[it + 1]);
      const auto exact =
          engine.eval(level, size_bytes, node_nm, mid_vth, mid_tox);
      const auto cell = grid.locate(mid_vth, mid_tox);
      leakage.observe(
          std::abs(exact.leakage_mw - interp_at(cell, surrogate::kLeakageMw)),
          spread_of(iv, it, surrogate::kLeakageMw));
      access.observe(std::abs(exact.access_time_ps -
                              interp_at(cell, surrogate::kAccessTimePs)),
                     spread_of(iv, it, surrogate::kAccessTimePs));
      dynamic.observe(
          std::abs(exact.dynamic_pj - interp_at(cell, surrogate::kDynamicPj)),
          spread_of(iv, it, surrogate::kDynamicPj));
    }
  }
  table.bound_leakage = leakage.model();
  table.bound_access = access.model();
  table.bound_dynamic = dynamic.model();
  return table;
}

std::vector<surrogate::OptimizeTable> build_optimize_tables(
    ExactEngine& engine, Level level, std::uint64_t size_bytes, int node_nm,
    const std::vector<double>& vth_v, const std::vector<double>& tox_a,
    int target_steps) {
  // The reachable access-time window: the grid's fastest corner (min Vth,
  // min Tox) through the slowest, padded 5% so slack targets stay covered.
  const double t_fast =
      engine.eval(level, size_bytes, node_nm, vth_v.front(), tox_a.front())
          .access_time_ps;
  const double t_slow =
      engine.eval(level, size_bytes, node_nm, vth_v.back(), tox_a.back())
          .access_time_ps;
  const double lo = t_fast;
  const double hi = 1.05 * std::max(t_slow, t_fast);

  std::vector<surrogate::OptimizeTable> tables;
  for (const SchemeId scheme : {SchemeId::kI, SchemeId::kII, SchemeId::kIII}) {
    surrogate::OptimizeTable table;
    table.level = level;
    table.size_bytes = size_bytes;
    table.node_nm = node_nm;
    table.scheme = scheme;
    for (int i = 0; i < target_steps; ++i) {
      const double target_ps =
          lo + (hi - lo) * static_cast<double>(i) /
                   static_cast<double>(target_steps - 1);
      const auto out =
          engine.optimize(level, size_bytes, node_nm, scheme, target_ps);
      // Infeasible rungs (targets below what the scheme can reach) simply
      // shrink the ladder's coverage; they are not precompute failures.
      if (!out || !out.value().result.feasible) continue;
      const auto& result = out.value().result;
      surrogate::OptimizeRung rung;
      rung.target_ps = target_ps;
      rung.leakage_mw = result.leakage_mw;
      rung.access_time_ps = result.access_time_ps;
      rung.dynamic_pj = result.dynamic_pj;
      rung.assignment = result.assignment;
      table.rungs.push_back(std::move(rung));
    }
    // A one-rung ladder covers a single point; not worth a table.
    if (table.rungs.size() >= 2) tables.push_back(std::move(table));
  }
  return tables;
}

}  // namespace

PrecomputeSummary precompute_surrogate(const Service& service,
                                       const std::string& out_dir,
                                       const PrecomputeOptions& options) {
  NC_REQUIRE(!out_dir.empty(), "precompute output directory must be set");
  NC_REQUIRE(options.vth_steps >= 2 && options.tox_steps >= 2,
             "lattice steps must be at least 2 per axis");
  NC_REQUIRE(options.target_steps >= 2,
             "target_steps must be at least 2 (a ladder needs two rungs)");
  NC_REQUIRE(!options.nodes.empty(), "nodes must name at least one node");

  std::vector<std::uint64_t> l1_sizes = options.l1_sizes;
  std::vector<std::uint64_t> l2_sizes = options.l2_sizes;
  const auto caps = require_ok(service.capabilities({}));
  if (l1_sizes.empty()) l1_sizes.push_back(caps.l1_size_bytes);
  if (l2_sizes.empty()) l2_sizes.push_back(caps.l2_size_bytes);

  ExactEngine engine{service};
  std::vector<surrogate::EvalTable> evals;
  std::vector<surrogate::OptimizeTable> optimizes;
  for (const int node : options.nodes) {
    const auto [grid_vth, grid_tox] = node_grid(service, node);
    const auto vth = refine_axis(grid_vth, options.vth_steps);
    const auto tox = refine_axis(grid_tox, options.tox_steps);
    const auto tabulate = [&](Level level, std::uint64_t size_bytes) {
      evals.push_back(
          build_eval_table(engine, level, size_bytes, node, vth, tox));
      auto ladders = build_optimize_tables(engine, level, size_bytes, node,
                                           vth, tox, options.target_steps);
      for (auto& t : ladders) optimizes.push_back(std::move(t));
    };
    for (const std::uint64_t size : l1_sizes) tabulate(Level::kL1, size);
    for (const std::uint64_t size : l2_sizes) tabulate(Level::kL2, size);
  }

  const std::string& fingerprint = service.configuration_fingerprint();
  surrogate::write_segment(out_dir, fingerprint, options.stamp, evals,
                           optimizes);

  PrecomputeSummary summary;
  summary.fingerprint = fingerprint;
  summary.path = surrogate::segment_path(out_dir, fingerprint);
  summary.eval_tables = evals.size();
  summary.optimize_tables = optimizes.size();
  summary.exact_evals = engine.evals;
  summary.exact_optimizes = engine.optimizes;
  return summary;
}

}  // namespace nanocache::api
