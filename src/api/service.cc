#include "nanocache/service.h"

#include <algorithm>
#include <bit>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "api/batch_io.h"
#include "api/disk_cache.h"
#include "api/memo_cache.h"
#include "cachemodel/cache_model.h"
#include "core/explorer.h"
#include "opt/options.h"
#include "opt/schemes.h"
#include "opt/tuple_menu.h"
#include "surrogate/store.h"
#include "tech/params.h"
#include "util/error.h"
#include "util/metrics.h"
#include "util/parallel.h"
#include "util/trace_span.h"
#include "util/units.h"

namespace nanocache::api {

namespace {

ErrorCode to_error_code(ErrorCategory category) {
  switch (category) {
    case ErrorCategory::kConfig: return ErrorCode::kConfig;
    case ErrorCategory::kNumericDomain: return ErrorCode::kNumericDomain;
    case ErrorCategory::kIo: return ErrorCode::kIo;
    case ErrorCategory::kInfeasible: return ErrorCode::kInfeasible;
    case ErrorCategory::kInternal: return ErrorCode::kInternal;
  }
  return ErrorCode::kInternal;
}

opt::Scheme to_scheme(SchemeId id) {
  switch (id) {
    case SchemeId::kI: return opt::Scheme::kPerComponent;
    case SchemeId::kII: return opt::Scheme::kArrayPeriphery;
    case SchemeId::kIII: return opt::Scheme::kUniform;
  }
  return opt::Scheme::kArrayPeriphery;
}

/// Run `fn`, folding thrown nanocache::Errors (and anything else) into a
/// typed failure.  Every facade entry point funnels through here so no
/// internal exception type ever crosses the public boundary.
template <typename Fn>
auto guarded(Fn&& fn) -> Outcome<decltype(fn())> {
  using R = decltype(fn());
  try {
    return Outcome<R>(fn());
  } catch (const Error& e) {
    return Outcome<R>::failure(to_error_code(e.category()), e.what());
  } catch (const std::exception& e) {
    return Outcome<R>::failure(ErrorCode::kInternal, e.what());
  }
}

/// Bit-pattern key of a double (same convention as batch_io's canonical
/// request keys): memo entries match on structural identity.
std::string key_double(double d) {
  const auto bits = std::bit_cast<std::uint64_t>(d);
  char buf[17];
  static const char* hex = "0123456789abcdef";
  for (int i = 15; i >= 0; --i) {
    buf[15 - i] = hex[(bits >> (i * 4)) & 0xF];
  }
  buf[16] = '\0';
  return std::string(buf);
}

/// Library fingerprint for the persistent disk cache: a hash over everything
/// that can change an answer — model selection, degradation policy, default
/// sizes, the exact grid bit patterns, schema/API version, and the search
/// mode (byte-identical by contract, but a fingerprint mismatch costs only a
/// cold segment while a collision could serve stale bits).
std::string service_fingerprint(const core::ExperimentConfig& config) {
  std::string s = "nanocache|schema=";
  s += std::to_string(kSchemaVersion);
  s += "|api=";
  s += std::to_string(kApiVersionMajor);
  s += '.';
  s += std::to_string(kApiVersionMinor);
  s += "|fitted=";
  s += config.use_fitted_models ? '1' : '0';
  s += "|strict=";
  s += config.degradation_policy == core::DegradationPolicy::kStrict ? '1'
                                                                     : '0';
  s += "|l1=";
  s += std::to_string(config.l1_size_bytes);
  s += "|l2=";
  s += std::to_string(config.l2_size_bytes);
  s += "|mode=";
  s += opt::search_mode_name(config.search_mode);
  s += "|vth=";
  for (const double v : config.grid.vth_values) {
    s += key_double(v);
    s += ',';
  }
  s += "|tox=";
  for (const double v : config.grid.tox_values) {
    s += key_double(v);
    s += ',';
  }
  return fnv1a64_hex(s);
}

/// Routing counters of the surrogate serving tier.  Registered eagerly on
/// the first served request (whether or not a store is loaded) so metrics
/// snapshots always expose the full `api.surrogate.*` key set.
struct SurrogateCounters {
  metrics::Counter& hits;
  metrics::Counter& fallbacks;
  metrics::Counter& exact_pins;
  metrics::Counter& rejects;
};

SurrogateCounters& surrogate_counters() {
  static auto& registry = metrics::Registry::instance();
  static SurrogateCounters counters{
      registry.counter("api.surrogate.hits"),
      registry.counter("api.surrogate.fallbacks"),
      registry.counter("api.surrogate.exact_pins"),
      registry.counter("api.surrogate.rejects")};
  return counters;
}

/// Wire form of a per-component assignment.  `num_components` is 4 for the
/// paper's fixed organization and 6 for split-tag design-space variants
/// (kExtendedComponents keeps the fixed four at indices 0-3, so the default
/// yields exactly the v2 output).
std::vector<ComponentKnobs> assignment_out(
    const cachemodel::ComponentAssignment& assignment,
    std::size_t num_components = cachemodel::kNumComponents) {
  std::vector<ComponentKnobs> out;
  out.reserve(num_components);
  for (std::size_t i = 0; i < num_components; ++i) {
    const auto kind = cachemodel::kExtendedComponents[i];
    const auto& knobs = assignment.get(kind);
    ComponentKnobs c{std::string(cachemodel::component_name(kind)),
                     Knobs{knobs.vth_v, knobs.tox_a}};
    c.gated = assignment.gated(kind);
    out.push_back(std::move(c));
  }
  return out;
}

OptimizedCache to_optimized(
    const opt::SchemeResult& result,
    std::size_t num_components = cachemodel::kNumComponents) {
  OptimizedCache c;
  c.feasible = true;
  c.leakage_mw = units::watts_to_mw(result.leakage_w);
  c.access_time_ps = units::seconds_to_ps(result.access_time_s);
  c.dynamic_pj = units::joules_to_pj(result.dynamic_energy_j);
  c.assignment = assignment_out(result.assignment, num_components);
  return c;
}

OptimizedCache to_optimized(
    const opt::OptOutcome<opt::SchemeResult>& outcome,
    std::size_t num_components = cachemodel::kNumComponents) {
  if (!outcome) {
    OptimizedCache c;
    c.infeasible_reason = outcome.why().describe();
    return c;
  }
  return to_optimized(*outcome, num_components);
}

SizeRow to_size_row(const core::SizeSweepRow& row) {
  SizeRow out;
  out.size_bytes = row.size_bytes;
  out.feasible = row.feasible;
  out.infeasible_reason = row.infeasible_reason;
  out.miss_rate = row.miss_rate;
  if (row.feasible) {
    out.amat_ps = units::seconds_to_ps(row.amat_s);
    out.level_leakage_mw = units::watts_to_mw(row.level_leakage_w);
    out.total_leakage_mw = units::watts_to_mw(row.total_leakage_w);
    out.result = to_optimized(row.result);
  }
  return out;
}

MenuDesign to_menu_design(const opt::SystemDesignPoint& point,
                          double amat_target_ps) {
  MenuDesign d;
  d.amat_target_ps = amat_target_ps;
  d.feasible = true;
  d.amat_ps = units::seconds_to_ps(point.amat_s);
  d.energy_pj = units::joules_to_pj(point.energy_j);
  d.leakage_mw = units::watts_to_mw(point.leakage_w);
  d.tox_menu_a = point.tox_menu;
  d.vth_menu_v = point.vth_menu;
  d.l1_assignment = assignment_out(point.l1);
  d.l2_assignment = assignment_out(point.l2);
  return d;
}

/// Satellite check: a grid override must stay inside the paper's knob
/// ranges (the fitted forms and the BPTM device model are calibrated for
/// them).  Out-of-range values are a typed kConfig error — never clamped.
void validate_grid_axis(const char* axis, const std::vector<double>& values,
                        double min, double max) {
  NC_REQUIRE(!values.empty(),
             std::string(axis) + " grid override must be non-empty");
  for (std::size_t i = 0; i < values.size(); ++i) {
    NC_REQUIRE(values[i] >= min && values[i] <= max,
               std::string(axis) + " grid value " + std::to_string(values[i]) +
                   " outside the paper's knob range [" + std::to_string(min) +
                   ", " + std::to_string(max) + "]");
    NC_REQUIRE(i == 0 || values[i - 1] < values[i],
               std::string(axis) +
                   " grid values must be strictly increasing");
  }
}

// --- v3 design-space validation: typed kConfig errors, never clamps -------

void validate_organization(const OrganizationSpec& org) {
  NC_REQUIRE(org.associativity == 0 || org.associativity == -1 ||
                 org.associativity == 1 || org.associativity == 2 ||
                 org.associativity == 4 || org.associativity == 8,
             "organization.associativity must be 1, 2, 4, 8, or \"full\"");
  NC_REQUIRE(
      org.banks == 0 || (std::has_single_bit(org.banks) && org.banks <= 8),
      "organization.banks must be a power of two <= 8");
}

void validate_node(int node_nm) {
  // node_params throws the typed kConfig error (listing the supported
  // menu) for anything outside {90, 65, 45, 32, 22}.
  if (node_nm != 0) (void)tech::node_params(node_nm);
}

void validate_power_gating(const PowerGatingSpec& gating) {
  NC_REQUIRE(gating.perf_loss_budget >= 0.0 && gating.perf_loss_budget <= 1.0,
             "power_gating.perf_loss_budget must be in [0, 1]");
}

/// Associativity actually built when a request overrides the organization:
/// an explicit value wins; 0 inherits the fixed organizations' defaults
/// (2-way L1 / 8-way L2, see l1_organization / l2_organization).
int resolve_associativity(Level level, const OrganizationSpec& org) {
  if (org.associativity != 0) return org.associativity;
  return level == Level::kL2 ? 8 : 2;
}

/// Fork-join cost hints for run_batch's two request classes.  Order of
/// magnitude only — they feed the par::kSerialFallbackNs comparison, so
/// all that matters is that a handful of evals stays serial while a
/// handful of optimizer runs forks.
constexpr std::uint64_t kCheapRequestCostHintNs = 20'000;    // memoized eval
constexpr std::uint64_t kHeavyRequestCostHintNs = 1'000'000; // optimizer run

/// One scheme-comparison row solves three scheme optimizations; even a
/// two-row sweep is worth forking.
constexpr std::uint64_t kSchemesRowCostHintNs = 3'000'000;

}  // namespace

struct Service::Impl {
  explicit Impl(std::size_t memo_shards) : memo(memo_shards) {}

  ServiceConfig api_config;
  core::ExperimentConfig config;
  /// The library fingerprint of this configuration (names disk-cache and
  /// surrogate-table segments; see service_fingerprint above).
  std::string fingerprint;
  std::unique_ptr<core::Explorer> explorer;
  /// Precomputed answer tables (null when surrogate_dir is empty; empty —
  /// loaded() false — when the directory holds no matching segment).
  std::unique_ptr<surrogate::SurrogateStore> surrogate_store;
  /// Sub-evaluation memo.  Per-service, and a Service's model/grid/mode
  /// configuration is immutable, so keys only carry the per-request fields.
  mutable MemoCache memo;
  /// Persistent cross-run result cache (null when cache_dir is empty).
  std::unique_ptr<DiskCache> disk;

  /// Lazily-built per-node Explorers for v3 `node_nm` overrides.  Node 0 is
  /// the main explorer (the configured default technology and grid).  Node
  /// explorers always use the node's own default grid — the paper's Vth
  /// ladder crossed with the node's oxide window — because a user grid
  /// override is calibrated against the default node's ranges only.
  mutable std::mutex node_mutex;
  mutable std::map<int, std::unique_ptr<core::Explorer>> node_explorers;

  const core::Explorer& explorer_for(int node_nm) const {
    if (node_nm == 0) return *explorer;
    std::lock_guard<std::mutex> lock(node_mutex);
    auto it = node_explorers.find(node_nm);
    if (it == node_explorers.end()) {
      core::ExperimentConfig node_config = config;
      node_config.technology = tech::node_params(node_nm);
      node_config.grid = opt::KnobGrid::paper_default();
      node_config.grid.tox_values = tech::node_tox_grid(node_config.technology);
      // Mid-window defaults, mirroring the 65 nm (0.35 V, nominal-Tox) pair.
      node_config.default_knobs =
          tech::DeviceKnobs{0.35, node_config.technology.tox_nominal_a};
      it = node_explorers
               .emplace(node_nm, std::make_unique<core::Explorer>(
                                     std::move(node_config)))
               .first;
    }
    return *it->second;
  }

  const cachemodel::CacheModel& model(Level level,
                                      std::uint64_t size_bytes) const {
    return level == Level::kL2 ? explorer->l2_model(size_bytes)
                               : explorer->l1_model(size_bytes);
  }

  /// The cache model a v3 request addresses: the fixed organization when
  /// `org` is all-default, else the split-tag design-space variant.
  const cachemodel::CacheModel& model_for(Level level,
                                          std::uint64_t size_bytes,
                                          const OrganizationSpec& org,
                                          int node_nm) const {
    const auto& ex = explorer_for(node_nm);
    if (org.is_default()) {
      return level == Level::kL2 ? ex.l2_model(size_bytes)
                                 : ex.l1_model(size_bytes);
    }
    return ex.variant_model(size_bytes, level == Level::kL2,
                            resolve_associativity(level, org),
                            org.banks == 0 ? 1 : org.banks);
  }

  /// Evaluator for a v3 request's model.  Design-space variants always run
  /// the structural model: the fitted closed forms are calibrated on the
  /// fixed four-component organization only.
  opt::ComponentEvaluator evaluator_for(const cachemodel::CacheModel& m,
                                        const OrganizationSpec& org,
                                        int node_nm) const {
    if (org.is_default()) return explorer_for(node_nm).evaluator(m);
    return opt::structural_evaluator(m);
  }

  /// v2 GridSpec semantics: size_bytes 0 means the service's configured
  /// default size for the addressed level.
  std::uint64_t resolve_size(Level level, std::uint64_t size_bytes) const {
    if (size_bytes != 0) return size_bytes;
    return level == Level::kL2 ? config.l2_size_bytes : config.l1_size_bytes;
  }

  /// v3 design-space memo-key suffix.  Appended unconditionally — all
  /// defaults append "|a0|b0|n0", so v1/v2 requests and their v3-normalized
  /// forms land on the same entry while any non-default knob gets its own.
  static void append_space_key(std::string& key, const OrganizationSpec& org,
                               int node_nm) {
    key += "|a";
    key += std::to_string(org.associativity);
    key += "|b";
    key += std::to_string(org.banks);
    key += "|n";
    key += std::to_string(node_nm);
  }

  /// Memoized uniform-knob cache evaluation ("eval|" entries).
  std::shared_ptr<const cachemodel::CacheMetrics> eval_memo(
      Level level, std::uint64_t size_bytes, const Knobs& knobs,
      const OrganizationSpec& org, int node_nm) const {
    std::string key = "eval|";
    key += level_name(level);
    key += '|';
    key += std::to_string(size_bytes);
    key += '|';
    key += key_double(knobs.vth_v);
    key += '|';
    key += key_double(knobs.tox_a);
    append_space_key(key, org, node_nm);
    return memo.get_or_compute<cachemodel::CacheMetrics>(key, [&] {
      const auto& m = model_for(level, size_bytes, org, node_nm);
      const auto eval = evaluator_for(m, org, node_nm);
      const tech::DeviceKnobs device{knobs.vth_v, knobs.tox_a};
      auto metrics = std::make_shared<cachemodel::CacheMetrics>();
      for (std::size_t i = 0; i < m.num_components(); ++i) {
        const auto kind = cachemodel::kExtendedComponents[i];
        const auto cm = eval(kind, device);
        metrics->per_component[static_cast<std::size_t>(kind)] = cm;
        metrics->access_time_s += cm.delay_s;
        metrics->leakage_w += cm.leakage_w;
        metrics->leakage_sub_w += cm.leakage_sub_w;
        metrics->leakage_gate_w += cm.leakage_gate_w;
        metrics->dynamic_energy_j += cm.dynamic_energy_j;
        metrics->dynamic_write_energy_j += cm.dynamic_write_energy_j;
        metrics->area_um2 += cm.area_um2;
      }
      return metrics;
    });
  }

  /// Memoized single-cache scheme optimization ("opt|" entries).  Shared
  /// between optimize requests and the scheme-comparison sweep, so a batch
  /// that asks for both computes each (cache, scheme, target) cell once.
  std::shared_ptr<const opt::OptOutcome<opt::SchemeResult>> optimize_memo(
      Level level, std::uint64_t size_bytes, SchemeId scheme, double delay_s,
      const OrganizationSpec& org, const PowerGatingSpec& gating,
      int node_nm) const {
    std::string key = "opt|";
    key += level_name(level);
    key += '|';
    key += std::to_string(size_bytes);
    key += '|';
    key += scheme_id_name(scheme);
    key += '|';
    key += key_double(delay_s);
    append_space_key(key, org, node_nm);
    key += "|g";
    key += gating.enabled ? '1' : '0';
    key += "|pb";
    key += key_double(gating.perf_loss_budget);
    return memo.get_or_compute<opt::OptOutcome<opt::SchemeResult>>(key, [&] {
      const auto& ex = explorer_for(node_nm);
      const auto& m = model_for(level, size_bytes, org, node_nm);
      const auto eval = evaluator_for(m, org, node_nm);
      opt::OptSpace space = org.is_default() ? opt::OptSpace::base()
                                             : opt::OptSpace::extended();
      space.gating.enabled = gating.enabled;
      // The performance-loss budget relaxes the delay constraint: sleep
      // states may slow the cache by up to that fraction of the target.
      const double effective_delay_s =
          gating.enabled ? delay_s * (1.0 + gating.perf_loss_budget)
                         : delay_s;
      return std::make_shared<const opt::OptOutcome<opt::SchemeResult>>(
          opt::optimize_single_cache(eval, ex.config().grid, to_scheme(scheme),
                                     effective_delay_s, config.search_mode,
                                     space));
    });
  }

  /// Memoized Section 5 size sweeps, keyed by the *resolved* AMAT target so
  /// an explicit `amat_ps` and the squeeze default it equals share a slot.
  std::shared_ptr<const std::vector<core::SizeSweepRow>> size_sweep_memo(
      SweepKind kind, SchemeId l2_scheme, double amat_s, int node_nm) const {
    std::string key = "sweep|";
    key += sweep_kind_name(kind);
    key += '|';
    key += scheme_id_name(l2_scheme);
    key += '|';
    key += key_double(amat_s);
    key += "|n";
    key += std::to_string(node_nm);
    return memo.get_or_compute<std::vector<core::SizeSweepRow>>(key, [&] {
      const auto& ex = explorer_for(node_nm);
      auto rows = kind == SweepKind::kL1Sizes
                      ? ex.l1_size_sweep(amat_s)
                      : ex.l2_size_sweep(to_scheme(l2_scheme), amat_s);
      return std::make_shared<const std::vector<core::SizeSweepRow>>(
          std::move(rows));
    });
  }

  /// Memoized tuple-problem solutions ("menu*|" entries).
  std::shared_ptr<const std::optional<opt::SystemDesignPoint>> menu_best_memo(
      const opt::TupleMenuSolver& solver, const opt::MenuSpec& spec,
      double target_s) const {
    std::string key = "menu|";
    key += std::to_string(spec.num_tox);
    key += '|';
    key += std::to_string(spec.num_vth);
    key += '|';
    key += key_double(target_s);
    return memo.get_or_compute<std::optional<opt::SystemDesignPoint>>(
        key, [&] {
          return std::make_shared<const std::optional<opt::SystemDesignPoint>>(
              solver.best_at(spec, target_s));
        });
  }
};

Service::Service() = default;
Service::~Service() = default;

Outcome<std::shared_ptr<Service>> Service::create(ServiceConfig config) {
  return guarded([&config] {
    // Surface a malformed NANOCACHE_THREADS here as a typed kConfig outcome
    // rather than mid-sweep: default_threads() validates the variable.
    (void)par::default_threads();

    const tech::KnobRange ranges{};  // the paper's knob ranges (bptm65)
    if (!config.grid_vth_v.empty()) {
      validate_grid_axis("Vth", config.grid_vth_v, ranges.vth_min_v,
                         ranges.vth_max_v);
    }
    if (!config.grid_tox_a.empty()) {
      validate_grid_axis("Tox", config.grid_tox_a, ranges.tox_min_a,
                         ranges.tox_max_a);
    }

    core::ExperimentConfig experiment;
    experiment.use_fitted_models = config.use_fitted_models;
    experiment.degradation_policy =
        config.strict_degradation ? core::DegradationPolicy::kStrict
                                  : core::DegradationPolicy::kFallbackToStructural;
    if (config.l1_size_bytes != 0) {
      experiment.l1_size_bytes = config.l1_size_bytes;
    }
    if (config.l2_size_bytes != 0) {
      experiment.l2_size_bytes = config.l2_size_bytes;
    }
    if (!config.grid_vth_v.empty()) {
      experiment.grid.vth_values = config.grid_vth_v;
    }
    if (!config.grid_tox_a.empty()) {
      experiment.grid.tox_values = config.grid_tox_a;
    }
    experiment.search_mode = config.exhaustive_search
                                 ? opt::SearchMode::kExhaustive
                                 : opt::SearchMode::kPruned;

    auto service = std::shared_ptr<Service>(new Service());
    // The MemoCache constructor validates the shard count (power of two in
    // [1, 4096]) and throws the typed kConfig error guarded() folds.
    service->impl_ = std::make_unique<Impl>(config.memo_shards);
    service->impl_->api_config = std::move(config);
    service->impl_->config = std::move(experiment);
    service->impl_->explorer =
        std::make_unique<core::Explorer>(service->impl_->config);
    service->impl_->fingerprint = service_fingerprint(service->impl_->config);
    if (!service->impl_->api_config.surrogate_dir.empty()) {
      service->impl_->surrogate_store = surrogate::SurrogateStore::open(
          service->impl_->api_config.surrogate_dir,
          service->impl_->fingerprint);
    }
    if (!service->impl_->api_config.cache_dir.empty()) {
      // With tables loaded, `auto` requests may persist surrogate answers;
      // fold the table content hash into the segment name so those entries
      // can never replay into an exact-only (or differently-tabled) run.
      std::string disk_fingerprint = service->impl_->fingerprint;
      const auto* store = service->impl_->surrogate_store.get();
      if (store != nullptr && store->loaded()) {
        disk_fingerprint = fnv1a64_hex(disk_fingerprint + "|surrogate=" +
                                       store->content_checksum());
      }
      service->impl_->disk = DiskCache::open(
          service->impl_->api_config.cache_dir, disk_fingerprint);
    }
    return service;
  });
}

const ServiceConfig& Service::config() const { return impl_->api_config; }

const std::string& Service::configuration_fingerprint() const {
  return impl_->fingerprint;
}

const core::Explorer& Service::explorer() const { return *impl_->explorer; }

MemoStats Service::memo_stats() const {
  const auto stats = impl_->memo.stats();
  return MemoStats{stats.hits, stats.misses, stats.entries};
}

std::size_t Service::flush_disk_cache() const {
  return impl_->disk ? impl_->disk->flush() : 0;
}

Outcome<CapabilitiesResponse> Service::capabilities(
    const CapabilitiesRequest&) const {
  return guarded([&] {
    CapabilitiesResponse c;
    for (int v = kMinSchemaVersion; v <= kSchemaVersion; ++v) {
      c.schema_versions.push_back(v);
    }
    c.api_version_major = kApiVersionMajor;
    c.api_version_minor = kApiVersionMinor;
    const tech::KnobRange ranges{};
    c.vth_min_v = ranges.vth_min_v;
    c.vth_max_v = ranges.vth_max_v;
    c.tox_min_a = ranges.tox_min_a;
    c.tox_max_a = ranges.tox_max_a;
    c.grid_vth_v = impl_->config.grid.vth_values;
    c.grid_tox_a = impl_->config.grid.tox_values;
    c.schemes = {"I", "II", "III"};
    c.sweeps = {"schemes", "l1_sizes", "l2_sizes"};
    c.l1_size_bytes = impl_->config.l1_size_bytes;
    c.l2_size_bytes = impl_->config.l2_size_bytes;
    c.threads = par::default_threads();
    c.search_mode = opt::search_mode_name(impl_->config.search_mode);
    c.fitted_models = impl_->config.use_fitted_models;
    c.disk_cache = impl_->disk != nullptr;
    c.cache_dir = impl_->api_config.cache_dir;
    c.organization_associativities = {1, 2, 4, 8};
    c.organization_fully_associative = true;
    c.organization_max_banks = 8;
    const opt::GatingSpec gating{};
    c.power_gating_supported = true;
    c.power_gating_sleep_factor = gating.sleep_leakage_factor;
    c.power_gating_wake_factor = gating.wake_delay_factor;
    c.power_gating_max_budget = 1.0;
    c.nodes_nm = tech::supported_nodes();
    const auto* store = impl_->surrogate_store.get();
    c.surrogate_loaded = store != nullptr && store->loaded();
    if (c.surrogate_loaded) {
      c.surrogate_eval_tables = static_cast<int>(store->eval_tables());
      c.surrogate_optimize_tables =
          static_cast<int>(store->optimize_tables());
      c.surrogate_fingerprint = store->fingerprint();
      c.surrogate_stamp = store->stamp();
      c.surrogate_sizes_bytes = store->covered_sizes();
      c.surrogate_nodes_nm = store->covered_nodes();
      c.surrogate_schemes = store->covered_schemes();
      const auto worst = store->worst_bounds();
      c.surrogate_max_error_leakage_mw = worst.leakage_mw;
      c.surrogate_max_error_access_time_ps = worst.access_time_ps;
      c.surrogate_max_error_dynamic_pj = worst.dynamic_pj;
    }
    return c;
  });
}

Outcome<EvalResponse> Service::evaluate(const EvalRequest& request) const {
  return guarded([&] {
    validate_organization(request.organization);
    validate_node(request.node_nm);
    const Level level = request.target.level;
    const std::uint64_t size =
        impl_->resolve_size(level, request.target.size_bytes);
    const auto metrics = impl_->eval_memo(level, size, request.knobs,
                                          request.organization,
                                          request.node_nm);
    const auto& model =
        impl_->model_for(level, size, request.organization, request.node_nm);
    EvalResponse r;
    r.organization = model.organization().describe();
    r.access_time_ps = units::seconds_to_ps(metrics->access_time_s);
    r.leakage_mw = units::watts_to_mw(metrics->leakage_w);
    r.leakage_sub_mw = units::watts_to_mw(metrics->leakage_sub_w);
    r.leakage_gate_mw = units::watts_to_mw(metrics->leakage_gate_w);
    r.dynamic_pj = units::joules_to_pj(metrics->dynamic_energy_j);
    r.area_um2 = metrics->area_um2;
    for (std::size_t i = 0; i < model.num_components(); ++i) {
      const auto kind = cachemodel::kExtendedComponents[i];
      const auto& cm = metrics->per_component[static_cast<std::size_t>(kind)];
      ComponentEval c;
      c.component = std::string(cachemodel::component_name(kind));
      c.knobs = request.knobs;
      c.delay_ps = units::seconds_to_ps(cm.delay_s);
      c.leakage_mw = units::watts_to_mw(cm.leakage_w);
      c.dynamic_pj = units::joules_to_pj(cm.dynamic_energy_j);
      r.components.push_back(std::move(c));
    }
    return r;
  });
}

Outcome<OptimizeResponse> Service::optimize(const OptimizeRequest& request) const {
  return guarded([&] {
    NC_REQUIRE(request.delay.target_ps > 0.0, "delay.target_ps must be positive");
    validate_organization(request.organization);
    validate_node(request.node_nm);
    validate_power_gating(request.power_gating);
    const auto outcome = impl_->optimize_memo(
        request.target.level,
        impl_->resolve_size(request.target.level, request.target.size_bytes),
        request.scheme, units::ps_to_seconds(request.delay.target_ps),
        request.organization, request.power_gating, request.node_nm);
    const std::size_t num_components = request.organization.is_default()
                                           ? cachemodel::kNumComponents
                                           : cachemodel::kMaxComponents;
    return OptimizeResponse{to_optimized(*outcome, num_components)};
  });
}

Outcome<SweepResponse> Service::sweep(const SweepRequest& request) const {
  return guarded([&] {
    validate_node(request.node_nm);
    const auto& explorer = impl_->explorer_for(request.node_nm);
    // Defaulted org/gating: sweeps run over the node's fixed organization.
    const OrganizationSpec org{};
    const PowerGatingSpec gating{};
    SweepResponse r;
    r.kind = request.kind;
    if (request.kind == SweepKind::kSchemes) {
      NC_REQUIRE(request.target.level == Level::kL1,
                 "the scheme-comparison sweep targets the L1 cache");
      const std::uint64_t size =
          impl_->resolve_size(Level::kL1, request.target.size_bytes);
      std::vector<double> targets_s;
      if (!request.delay.targets_ps.empty()) {
        for (const double ps : request.delay.targets_ps) {
          NC_REQUIRE(ps > 0.0, "delay.targets_ps must be positive");
          targets_s.push_back(units::ps_to_seconds(ps));
        }
      } else {
        targets_s = explorer.delay_ladder(size, request.ladder_steps);
      }
      // Computed here (not via Explorer::scheme_comparison) so the cells
      // share "opt|" memo entries with single optimize requests.
      metrics::TraceSpan span("api.sweep.schemes");
      r.schemes = par::parallel_map(
          targets_s.size(),
          [&](std::size_t i) {
            SchemesRow row;
            row.delay_target_ps = units::seconds_to_ps(targets_s[i]);
            row.scheme1 = to_optimized(*impl_->optimize_memo(
                Level::kL1, size, SchemeId::kI, targets_s[i], org, gating,
                request.node_nm));
            row.scheme2 = to_optimized(*impl_->optimize_memo(
                Level::kL1, size, SchemeId::kII, targets_s[i], org, gating,
                request.node_nm));
            row.scheme3 = to_optimized(*impl_->optimize_memo(
                Level::kL1, size, SchemeId::kIII, targets_s[i], org, gating,
                request.node_nm));
            return row;
          },
          /*threads=*/0, /*chunk_size=*/1, kSchemesRowCostHintNs);
      return r;
    }

    NC_REQUIRE(request.delay.target_ps >= 0.0,
               "delay.target_ps must be non-negative");
    const double amat_s =
        request.delay.target_ps > 0.0
            ? units::ps_to_seconds(request.delay.target_ps)
            : (request.kind == SweepKind::kL1Sizes
                   ? explorer.l2_squeeze_target_s(1.25)
                   : explorer.l2_squeeze_target_s());
    r.amat_target_ps = units::seconds_to_ps(amat_s);
    const auto rows = impl_->size_sweep_memo(request.kind, request.l2_scheme,
                                             amat_s, request.node_nm);
    r.sizes.reserve(rows->size());
    for (const auto& row : *rows) r.sizes.push_back(to_size_row(row));
    return r;
  });
}

Outcome<TupleMenuResponse> Service::tuple_menu(
    const TupleMenuRequest& request) const {
  return guarded([&] {
    const auto& grid = impl_->config.grid;
    NC_REQUIRE(request.num_tox >= 1 &&
                   request.num_tox <= static_cast<int>(grid.tox_values.size()),
               "num_tox must be between 1 and the grid's Tox count");
    NC_REQUIRE(request.num_vth >= 1 &&
                   request.num_vth <= static_cast<int>(grid.vth_values.size()),
               "num_vth must be between 1 and the grid's Vth count");
    NC_REQUIRE(!request.include_frontier || request.frontier_max_points > 0,
               "frontier_max_points must be positive");

    metrics::TraceSpan span("api.tuple_menu");
    const opt::MenuSpec spec{request.num_tox, request.num_vth};
    const auto system = impl_->explorer->default_system();
    const opt::TupleMenuSolver solver(system, grid);

    TupleMenuResponse r;
    r.num_tox = spec.num_tox;
    r.num_vth = spec.num_vth;
    r.label = core::Explorer::menu_label(spec);

    std::vector<double> targets_s;
    if (!request.delay.targets_ps.empty()) {
      for (const double ps : request.delay.targets_ps) {
        NC_REQUIRE(ps > 0.0, "delay.targets_ps must be positive");
        targets_s.push_back(units::ps_to_seconds(ps));
      }
    } else {
      targets_s = impl_->config.amat_targets_s();
    }

    const auto min_amat = impl_->memo.get_or_compute<double>(
        "menumin|" + std::to_string(spec.num_tox) + "|" +
            std::to_string(spec.num_vth),
        [&] { return std::make_shared<const double>(solver.min_amat_s(spec)); });
    r.min_amat_ps = units::seconds_to_ps(*min_amat);

    // Targets run serially: best_at fans its menu enumeration out over the
    // pool already (parallelizing both layers would collapse the inner one).
    for (const double target_s : targets_s) {
      const auto best = impl_->menu_best_memo(solver, spec, target_s);
      if (*best) {
        r.targets.push_back(
            to_menu_design(**best, units::seconds_to_ps(target_s)));
      } else {
        MenuDesign d;
        d.amat_target_ps = units::seconds_to_ps(target_s);
        r.targets.push_back(std::move(d));
      }
    }

    if (request.include_frontier) {
      std::string key = "menufront|" + std::to_string(spec.num_tox) + "|" +
                        std::to_string(spec.num_vth) + "|" +
                        std::to_string(request.frontier_max_points);
      const auto frontier =
          impl_->memo.get_or_compute<std::vector<opt::SystemDesignPoint>>(
              key, [&] {
                return std::make_shared<
                    const std::vector<opt::SystemDesignPoint>>(solver.frontier(
                    spec,
                    static_cast<std::size_t>(request.frontier_max_points)));
              });
      for (const auto& point : *frontier) {
        r.frontier.push_back(to_menu_design(point, 0.0));
      }
    }
    return r;
  });
}

Response Service::serve(const Request& request) const {
  metrics::TraceSpan span("api.serve");
  const auto start = std::chrono::steady_clock::now();

  // Persistent-cache fast path.  Capabilities answers describe the live
  // process (thread count, cache state) and are never persisted; everything
  // else is keyed by the same canonical bit-pattern key the batch dedup
  // uses, which already folds in every answer-affecting request field.
  Response response;
  bool served_from_disk = false;
  const bool cacheable =
      impl_->disk != nullptr && request.kind != RequestKind::kCapabilities;
  std::string disk_key;
  if (cacheable) {
    disk_key = request_canonical_key(request);
    if (const auto stored = impl_->disk->lookup(disk_key)) {
      // Stored lines passed the segment checksum, but stay paranoid: any
      // parse failure falls through to recomputation — a corrupt cache may
      // cost time, never a wrong answer.
      if (auto parsed = parse_response_json(*stored)) {
        response = std::move(parsed.value());
        response.id = request.id;  // ids are per-call, stored stripped
        served_from_disk = true;
      }
    }
  }
  if (!served_from_disk) {
    response = serve_impl(request);
    // Persist only successful answers: error text may mention per-run
    // context and costs nothing to recompute.
    if (cacheable && response.ok) {
      Response stripped = response;
      stripped.id.clear();
      impl_->disk->store(disk_key, response_to_json(stripped));
    }
  }
  {
    auto& registry = metrics::Registry::instance();
    static auto& latency = registry.histogram("api.request.latency_us");
    static auto& requests = registry.counter("api.requests");
    static auto& errors = registry.counter("api.request_errors");
    latency.observe(static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - start)
            .count()));
    requests.add(1);
    if (!response.ok) errors.add(1);
  }
  return response;
}

Response Service::serve_impl(const Request& request) const {
  Response response;
  response.id = request.id;
  response.kind = request.kind;
  if (request.schema_version < kMinSchemaVersion ||
      request.schema_version > kSchemaVersion) {
    response.error = ErrorInfo{
        ErrorCode::kConfig,
        "unsupported schema_version " + std::to_string(request.schema_version) +
            " (this build speaks " + std::to_string(kMinSchemaVersion) + ".." +
            std::to_string(kSchemaVersion) + ")"};
    return response;
  }
  switch (request.kind) {
    case RequestKind::kEval: {
      const EvalRequest& e = request.eval;
      auto& counters = surrogate_counters();
      const auto* store = impl_->surrogate_store.get();
      const bool store_loaded = store != nullptr && store->loaded();
      if (e.exactness == Exactness::kExact) {
        if (store_loaded) counters.exact_pins.add(1);
      } else if (store_loaded && e.organization.is_default()) {
        const Level level = e.target.level;
        const std::uint64_t size =
            impl_->resolve_size(level, e.target.size_bytes);
        if (auto hit = store->lookup_eval(level, size, e.node_nm, e.knobs)) {
          counters.hits.add(1);
          response.ok = true;
          response.served_by = ServedBy::kSurrogate;
          response.max_error = hit->bounds;
          response.eval = std::move(hit->response);
          break;
        }
      }
      if (e.exactness == Exactness::kSurrogate) {
        counters.rejects.add(1);
        response.error = ErrorInfo{
            ErrorCode::kConfig,
            "exactness 'surrogate' requested but no loaded table covers "
            "this eval request"};
        break;
      }
      if (store_loaded && e.exactness != Exactness::kExact) {
        counters.fallbacks.add(1);
      }
      auto out = evaluate(e);
      if (out) {
        response.ok = true;
        response.eval = std::move(out.value());
      } else {
        response.error = out.error();
      }
      break;
    }
    case RequestKind::kOptimize: {
      const OptimizeRequest& o = request.optimize;
      auto& counters = surrogate_counters();
      const auto* store = impl_->surrogate_store.get();
      const bool store_loaded = store != nullptr && store->loaded();
      if (o.exactness == Exactness::kExact) {
        if (store_loaded) counters.exact_pins.add(1);
      } else if (store_loaded && o.organization.is_default() &&
                 !o.power_gating.enabled && o.delay.target_ps > 0.0) {
        const Level level = o.target.level;
        const std::uint64_t size =
            impl_->resolve_size(level, o.target.size_bytes);
        if (auto hit = store->lookup_optimize(level, size, o.node_nm,
                                              o.scheme, o.delay.target_ps)) {
          counters.hits.add(1);
          response.ok = true;
          response.served_by = ServedBy::kSurrogate;
          response.max_error = hit->bounds;
          response.optimize = std::move(hit->response);
          break;
        }
      }
      if (o.exactness == Exactness::kSurrogate) {
        counters.rejects.add(1);
        response.error = ErrorInfo{
            ErrorCode::kConfig,
            "exactness 'surrogate' requested but no loaded table covers "
            "this optimize request"};
        break;
      }
      if (store_loaded && o.exactness != Exactness::kExact) {
        counters.fallbacks.add(1);
      }
      auto out = optimize(o);
      if (out) {
        response.ok = true;
        response.optimize = std::move(out.value());
      } else {
        response.error = out.error();
      }
      break;
    }
    case RequestKind::kSweep: {
      auto out = sweep(request.sweep);
      if (out) {
        response.ok = true;
        response.sweep = std::move(out.value());
      } else {
        response.error = out.error();
      }
      break;
    }
    case RequestKind::kTupleMenu: {
      auto out = tuple_menu(request.tuple_menu);
      if (out) {
        response.ok = true;
        response.tuple_menu = std::move(out.value());
      } else {
        response.error = out.error();
      }
      break;
    }
    case RequestKind::kCapabilities: {
      auto out = capabilities(request.capabilities);
      if (out) {
        response.ok = true;
        response.capabilities = std::move(out.value());
      } else {
        response.error = out.error();
      }
      break;
    }
  }
  return response;
}

BatchResult Service::run_batch(const std::vector<Request>& requests) const {
  metrics::TraceSpan span("api.batch");
  BatchResult batch;
  batch.stats.requests = requests.size();
  const auto memo_before = impl_->memo.stats();
  const std::size_t disk_hits_before = impl_->disk ? impl_->disk->hits() : 0;
  const std::size_t disk_misses_before =
      impl_->disk ? impl_->disk->misses() : 0;

  // Request-level dedup: structurally identical requests (ids ignored)
  // collapse to one evaluation.  Unique requests keep first-occurrence
  // order, so the fan-out below is deterministic at any thread count.
  std::unordered_map<std::string, std::size_t> seen;
  std::vector<std::size_t> first_occurrence;
  std::vector<std::size_t> unique_of(requests.size());
  for (std::size_t i = 0; i < requests.size(); ++i) {
    const auto [it, inserted] =
        seen.emplace(request_canonical_key(requests[i]), first_occurrence.size());
    if (inserted) first_occurrence.push_back(i);
    unique_of[i] = it->second;
  }
  batch.stats.unique_requests = first_occurrence.size();
  batch.stats.request_hits = requests.size() - first_occurrence.size();

  auto& registry = metrics::Registry::instance();
  static auto& queue_depth = registry.gauge("api.batch.queue_depth");
  {
    static auto& batch_requests = registry.counter("api.batch.requests");
    static auto& unique_requests =
        registry.counter("api.batch.unique_requests");
    static auto& request_hits = registry.counter("api.batch.request_hits");
    static auto& peak_queue = registry.gauge("api.batch.peak_queue_depth");
    batch_requests.add(batch.stats.requests);
    unique_requests.add(batch.stats.unique_requests);
    request_hits.add(batch.stats.request_hits);
    queue_depth.set(static_cast<std::int64_t>(first_occurrence.size()));
    peak_queue.record_max(static_cast<std::int64_t>(first_occurrence.size()));
  }

  // Partition unique requests by expected cost.  Heavy requests (optimizer
  // and sweep runs, milliseconds each) are dealt one at a time so a slow
  // straggler never pins a whole chunk behind it; cheap ones (evals,
  // capabilities, tens of microseconds) keep the default contiguous
  // chunking, which hands each worker a run of requests per pool ticket —
  // and the cost hint collapses a batch of only-cheap requests to a serial
  // loop that skips pool wake-up entirely.  Both regions write unique slot
  // u, so response assembly is independent of the partition.
  std::vector<std::size_t> cheap;
  std::vector<std::size_t> heavy;
  for (std::size_t u = 0; u < first_occurrence.size(); ++u) {
    const auto kind = requests[first_occurrence[u]].kind;
    const bool is_cheap = kind == RequestKind::kEval ||
                          kind == RequestKind::kCapabilities;
    (is_cheap ? cheap : heavy).push_back(u);
  }

  // More workers than cores just adds contention on the memo shards and
  // the metrics registry; requests themselves fan out no further (nested
  // parallel regions run inline).  Capped here at the service layer so
  // explicit oversubscribed thread counts still exercise the pool
  // machinery in unit tests that call par::parallel_for directly.
  const int batch_threads =
      std::min(par::default_threads(), par::hardware_threads());

  std::vector<Response> unique_responses(first_occurrence.size());
  par::parallel_for(
      heavy.size(),
      [&](std::size_t i) {
        const std::size_t u = heavy[i];
        unique_responses[u] = serve(requests[first_occurrence[u]]);
      },
      batch_threads, /*chunk_size=*/1, kHeavyRequestCostHintNs);
  par::parallel_for(
      cheap.size(),
      [&](std::size_t i) {
        const std::size_t u = cheap[i];
        unique_responses[u] = serve(requests[first_occurrence[u]]);
      },
      batch_threads, /*chunk_size=*/0, kCheapRequestCostHintNs);

  batch.responses.resize(requests.size());
  for (std::size_t i = 0; i < requests.size(); ++i) {
    Response r = unique_responses[unique_of[i]];
    r.id = requests[i].id;  // a copied response answers to the copy's id
    batch.responses[i] = std::move(r);
  }

  const auto memo_after = impl_->memo.stats();
  batch.stats.memo_hits = memo_after.hits - memo_before.hits;
  batch.stats.memo_misses = memo_after.misses - memo_before.misses;
  if (impl_->disk) {
    batch.stats.disk_hits = impl_->disk->hits() - disk_hits_before;
    batch.stats.disk_misses = impl_->disk->misses() - disk_misses_before;
  }
  queue_depth.set(0);
  return batch;
}

}  // namespace nanocache::api
