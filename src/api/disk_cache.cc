#include "api/disk_cache.h"

#include <fcntl.h>
#include <unistd.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <utility>

#include "util/error.h"
#include "util/json.h"
#include "util/metrics.h"

namespace nanocache::api {

namespace {

struct DiskCounters {
  metrics::Counter& hits;
  metrics::Counter& misses;
  metrics::Counter& stores;
  metrics::Counter& corrupt;
  metrics::Counter& resets;
};

/// Process-wide observability counters; per-instance counts stay the
/// source of BatchStats.
DiskCounters& disk_counters() {
  static auto& registry = metrics::Registry::instance();
  static DiskCounters counters{
      registry.counter("api.disk.hits"), registry.counter("api.disk.misses"),
      registry.counter("api.disk.stores"),
      registry.counter("api.disk.corrupt_lines"),
      registry.counter("api.disk.segment_resets")};
  return counters;
}

std::string entry_checksum(const std::string& key,
                           const std::string& response) {
  return fnv1a64_hex(key + '\n' + response);
}

std::string header_line(const std::string& fingerprint) {
  return "{\"nanocache_cache\":1,\"fingerprint\":" + json::quote(fingerprint) +
         "}";
}

std::string entry_line(const std::string& key, const std::string& response) {
  return "{\"key\":" + json::quote(key) +
         ",\"checksum\":" + json::quote(entry_checksum(key, response)) +
         ",\"response\":" + json::quote(response) + "}";
}

}  // namespace

std::unique_ptr<DiskCache> DiskCache::open(const std::string& dir,
                                           const std::string& fingerprint) {
  NC_REQUIRE(!dir.empty(), "disk cache directory must be non-empty");
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  NC_REQUIRE_IO(!ec, "cannot create cache directory '" + dir +
                         "': " + ec.message());

  auto cache = std::unique_ptr<DiskCache>(new DiskCache());
  cache->fingerprint_ = fingerprint;
  cache->path_ =
      (std::filesystem::path(dir) / ("nanocache-" + fingerprint + ".jsonl"))
          .string();
  cache->load();
  return cache;
}

void DiskCache::load() {
  bool rewrite = false;
  {
    std::ifstream in(path_);
    if (in.good()) {
      std::string line;
      if (!std::getline(in, line)) {
        rewrite = true;  // empty file: (re)write the header
      } else {
        // Validate the header; any mismatch (garbage, different
        // fingerprint) discards the whole segment — its entries answer for
        // a different configuration or cannot be trusted.
        bool header_ok = false;
        try {
          const auto root = json::parse(line);
          const auto magic = root->get("nanocache_cache");
          const auto fp = root->get("fingerprint");
          header_ok = magic != nullptr && magic->as_int() == 1 &&
                      fp != nullptr && fp->as_string() == fingerprint_;
        } catch (const Error&) {
          header_ok = false;
        }
        if (!header_ok) {
          rewrite = true;
          disk_counters().resets.add(1);
        } else {
          while (std::getline(in, line)) {
            if (line.empty()) continue;
            try {
              const auto root = json::parse(line);
              const auto key = root->get("key");
              const auto checksum = root->get("checksum");
              const auto response = root->get("response");
              NC_REQUIRE(key != nullptr && checksum != nullptr &&
                             response != nullptr,
                         "cache entry is missing a field");
              NC_REQUIRE(checksum->as_string() ==
                             entry_checksum(key->as_string(),
                                            response->as_string()),
                         "cache entry checksum mismatch");
              entries_.emplace(key->as_string(), response->as_string());
            } catch (const Error&) {
              // Truncated tail, garbage line, or checksum mismatch: drop
              // the entry; the lookup path recomputes and re-stores.
              ++corrupt_lines_;
              disk_counters().corrupt.add(1);
            }
          }
        }
      }
    } else {
      rewrite = true;  // no segment yet
    }
  }

  if (rewrite) {
    std::ofstream out(path_, std::ios::trunc);
    out << header_line(fingerprint_) << '\n';
    out.flush();
    NC_REQUIRE_IO(out.good(), "cannot write cache segment: " + path_);
    return;
  }
  // Loaded (possibly with dropped entries): probe appendability now so a
  // read-only segment surfaces at open, not mid-batch.
  std::ofstream out(path_, std::ios::app);
  NC_REQUIRE_IO(out.good(), "cannot append to cache segment: " + path_);
}

std::optional<std::string> DiskCache::lookup(const std::string& key) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = entries_.find(key);
  if (it == entries_.end()) {
    ++misses_;
    disk_counters().misses.add(1);
    return std::nullopt;
  }
  ++hits_;
  disk_counters().hits.add(1);
  return it->second;
}

void DiskCache::store(const std::string& key,
                      const std::string& response_json) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto [it, inserted] = entries_.emplace(key, response_json);
  if (!inserted) return;  // racing duplicate: first store wins
  ++stores_;
  disk_counters().stores.add(1);
  if (!writable_) return;
  std::ofstream out(path_, std::ios::app);
  out << entry_line(key, response_json) << '\n';
  out.flush();
  if (!out.good()) {
    // Persistence failed mid-run (disk full, segment deleted).  The
    // in-memory copy keeps serving this run; stop appending rather than
    // failing requests that already computed fine.
    writable_ = false;
    metrics::Registry::instance().counter("api.disk.write_errors").add(1);
  }
}

std::size_t DiskCache::flush() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (writable_) {
    const int fd = ::open(path_.c_str(), O_WRONLY | O_APPEND);
    if (fd >= 0) {
      if (::fsync(fd) != 0) {
        metrics::Registry::instance().counter("api.disk.write_errors").add(1);
      }
      ::close(fd);
    } else {
      metrics::Registry::instance().counter("api.disk.write_errors").add(1);
    }
  }
  return entries_.size();
}

std::size_t DiskCache::hits() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return hits_;
}
std::size_t DiskCache::misses() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return misses_;
}
std::size_t DiskCache::stores() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stores_;
}
std::size_t DiskCache::corrupt_lines() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return corrupt_lines_;
}
std::size_t DiskCache::entries() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

}  // namespace nanocache::api
