// Split-L1 memory-system model (extension beyond the paper): separate
// instruction and data L1 caches in front of a shared L2.  The reference
// stream blends instruction fetches (fraction `instruction_fraction`) and
// data accesses:
//
//   AMAT = fi * [tI + mI*(tL2 + mL2*tmem)] +
//          (1-fi) * [tD + mD*(tL2 + mL2*tmem)]
//
// Leakage sums all three caches; dynamic energy weights each cache by its
// access frequency.
#pragma once

#include "energy/memory_system.h"

namespace nanocache::energy {

struct SplitMissRates {
  double instruction_fraction = 0.3;  ///< fetches per reference
  double l1i = 0.01;                  ///< local I-cache miss rate
  double l1d = 0.04;                  ///< local D-cache miss rate
  double l2_local = 0.15;
};

class SplitMemorySystemModel {
 public:
  SplitMemorySystemModel(const cachemodel::CacheModel& l1i,
                         const cachemodel::CacheModel& l1d,
                         const cachemodel::CacheModel& l2,
                         SplitMissRates miss, MainMemoryParams memory = {});

  SystemMetrics evaluate(
      const cachemodel::ComponentAssignment& l1i_knobs,
      const cachemodel::ComponentAssignment& l1d_knobs,
      const cachemodel::ComponentAssignment& l2_knobs) const;

  /// Misses per reference reaching the L2 (the weight on tL2 in AMAT).
  double l2_weight() const;

  const SplitMissRates& miss() const { return miss_; }

 private:
  const cachemodel::CacheModel& l1i_;
  const cachemodel::CacheModel& l1d_;
  const cachemodel::CacheModel& l2_;
  SplitMissRates miss_;
  MainMemoryParams memory_;
};

}  // namespace nanocache::energy
