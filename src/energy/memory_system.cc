#include "energy/memory_system.h"

#include "util/error.h"
#include "util/numeric_guard.h"

namespace nanocache::energy {

MemorySystemModel::MemorySystemModel(const cachemodel::CacheModel& l1,
                                     const cachemodel::CacheModel& l2,
                                     MissRates miss, MainMemoryParams memory)
    : l1_(l1), l2_(l2), miss_(miss), memory_(memory) {
  num::ensure_finite(miss_.l1, "L1 miss rate");
  num::ensure_finite(miss_.l2_local, "L2 miss rate");
  num::ensure_finite(memory_.access_latency_s, "memory latency");
  NC_REQUIRE(miss_.l1 >= 0.0 && miss_.l1 <= 1.0, "L1 miss rate out of range");
  NC_REQUIRE(miss_.l2_local >= 0.0 && miss_.l2_local <= 1.0,
             "L2 miss rate out of range");
  NC_REQUIRE(miss_.write_fraction >= 0.0 && miss_.write_fraction <= 1.0,
             "write fraction out of range");
  NC_REQUIRE(memory_.access_latency_s > 0.0, "memory latency must be positive");
  NC_REQUIRE(memory_.access_energy_j >= 0.0,
             "memory energy must be non-negative");
  NC_REQUIRE(memory_.background_power_w >= 0.0,
             "memory background power must be non-negative");
}

double MemorySystemModel::amat_s(double l1_time_s, double l2_time_s) const {
  return l1_time_s +
         miss_.l1 * (l2_time_s + miss_.l2_local * memory_.access_latency_s);
}

double MemorySystemModel::memory_dynamic_energy_j() const {
  return miss_.l1 * miss_.l2_local * memory_.access_energy_j;
}

double MemorySystemModel::memory_amat_term_s() const {
  return miss_.l1 * miss_.l2_local * memory_.access_latency_s;
}

SystemMetrics MemorySystemModel::evaluate(
    const cachemodel::ComponentAssignment& l1_knobs,
    const cachemodel::ComponentAssignment& l2_knobs,
    cachemodel::AreaCoupling coupling) const {
  const auto m1 = l1_.evaluate(l1_knobs, coupling);
  const auto m2 = l2_.evaluate(l2_knobs, coupling);

  SystemMetrics out;
  out.l1_access_time_s = m1.access_time_s;
  out.l2_access_time_s = m2.access_time_s;
  out.amat_s = amat_s(m1.access_time_s, m2.access_time_s);
  out.leakage_w =
      m1.leakage_w + m2.leakage_w + memory_.background_power_w;
  const double wf = miss_.write_fraction;
  const double e1 = (1.0 - wf) * m1.dynamic_energy_j +
                    wf * m1.dynamic_write_energy_j;
  const double e2 = (1.0 - wf) * m2.dynamic_energy_j +
                    wf * m2.dynamic_write_energy_j;
  out.dynamic_energy_j = e1 + miss_.l1 * e2 + memory_dynamic_energy_j();
  out.leakage_energy_j = out.leakage_w * out.amat_s;
  out.total_energy_j = out.dynamic_energy_j + out.leakage_energy_j;
  // A NaN here means a cache model was fed garbage knobs; stop it before
  // it contaminates a frontier.
  num::ensure_finite(out.amat_s, "system AMAT");
  num::ensure_finite(out.leakage_w, "system leakage");
  num::ensure_finite(out.total_energy_j, "system total energy");
  return out;
}

}  // namespace nanocache::energy
