// Whole memory-system model (Section 5 / Figure 2 substrate): L1 + L2 +
// main memory.  Combines structural cache metrics with architectural miss
// statistics into AMAT and total energy per access.
//
//   AMAT = tL1 + mL1 * (tL2 + mL2 * tMEM)
//   E/access = EdynL1 + mL1 * (EdynL2 + mL2 * Emem)
//              + (PleakL1 + PleakL2) * AMAT
//
// Leakage is charged over one average access interval (AMAT), which is what
// couples the leakage and delay knobs into a single energy trade-off.
#pragma once

#include "cachemodel/cache_model.h"

namespace nanocache::energy {

/// Main-memory (DRAM) parameters.  The paper's "entire processor memory
/// system" includes main memory; we model it as a fixed-latency,
/// fixed-energy-per-access device.
struct MainMemoryParams {
  double access_latency_s = 50e-9;  ///< row activate + transfer
  double access_energy_j = 10e-9;   ///< per L2-miss line fetch
  /// DRAM background (standby + refresh) power.  Default 0 keeps the
  /// calibrated Figure 2 window; set >0 to charge it over AMAT like the
  /// caches' leakage ("entire processor memory system" accounting).
  double background_power_w = 0.0;
};

/// Per-level miss statistics feeding the model (from sim:: or analytic).
struct MissRates {
  double l1 = 0.03;        ///< misses per reference (local L1)
  double l2_local = 0.15;  ///< misses per L2 access (local L2)
  /// Fraction of references that are writes.  With the default 0 the model
  /// charges read energy for every access (the paper does not separate the
  /// two); set >0 to use the per-component write energies.
  double write_fraction = 0.0;
};

struct SystemMetrics {
  double amat_s = 0.0;
  double leakage_w = 0.0;            ///< total static power, caches + DRAM background
  double dynamic_energy_j = 0.0;     ///< switching energy per reference
  double leakage_energy_j = 0.0;     ///< leakage * AMAT per reference
  double total_energy_j = 0.0;       ///< dynamic + leakage energy
  double l1_access_time_s = 0.0;
  double l2_access_time_s = 0.0;
};

class MemorySystemModel {
 public:
  MemorySystemModel(const cachemodel::CacheModel& l1,
                    const cachemodel::CacheModel& l2, MissRates miss,
                    MainMemoryParams memory = {});

  /// Evaluate a full two-level knob assignment.
  SystemMetrics evaluate(
      const cachemodel::ComponentAssignment& l1_knobs,
      const cachemodel::ComponentAssignment& l2_knobs,
      cachemodel::AreaCoupling coupling =
          cachemodel::AreaCoupling::kNominal) const;

  /// AMAT from already-known level access times (same formula the
  /// optimizers use on weighted component sums).
  double amat_s(double l1_time_s, double l2_time_s) const;

  const cachemodel::CacheModel& l1() const { return l1_; }
  const cachemodel::CacheModel& l2() const { return l2_; }
  const MissRates& miss() const { return miss_; }
  const MainMemoryParams& memory() const { return memory_; }

  /// Dynamic energy charged to main memory per reference (constant).
  double memory_dynamic_energy_j() const;
  /// AMAT contribution of main memory per reference (constant).
  double memory_amat_term_s() const;

 private:
  const cachemodel::CacheModel& l1_;
  const cachemodel::CacheModel& l2_;
  MissRates miss_;
  MainMemoryParams memory_;
};

}  // namespace nanocache::energy
