#include "energy/split_system.h"

#include "util/error.h"

namespace nanocache::energy {

SplitMemorySystemModel::SplitMemorySystemModel(
    const cachemodel::CacheModel& l1i, const cachemodel::CacheModel& l1d,
    const cachemodel::CacheModel& l2, SplitMissRates miss,
    MainMemoryParams memory)
    : l1i_(l1i), l1d_(l1d), l2_(l2), miss_(miss), memory_(memory) {
  NC_REQUIRE(miss_.instruction_fraction >= 0.0 &&
                 miss_.instruction_fraction <= 1.0,
             "instruction fraction out of range");
  for (double m : {miss_.l1i, miss_.l1d, miss_.l2_local}) {
    NC_REQUIRE(m >= 0.0 && m <= 1.0, "miss rate out of range");
  }
  NC_REQUIRE(memory_.access_latency_s > 0.0,
             "memory latency must be positive");
}

double SplitMemorySystemModel::l2_weight() const {
  return miss_.instruction_fraction * miss_.l1i +
         (1.0 - miss_.instruction_fraction) * miss_.l1d;
}

SystemMetrics SplitMemorySystemModel::evaluate(
    const cachemodel::ComponentAssignment& l1i_knobs,
    const cachemodel::ComponentAssignment& l1d_knobs,
    const cachemodel::ComponentAssignment& l2_knobs) const {
  const auto mi = l1i_.evaluate(l1i_knobs);
  const auto md = l1d_.evaluate(l1d_knobs);
  const auto m2 = l2_.evaluate(l2_knobs);

  const double fi = miss_.instruction_fraction;
  const double l2_path =
      m2.access_time_s + miss_.l2_local * memory_.access_latency_s;

  SystemMetrics out;
  out.l1_access_time_s =
      fi * mi.access_time_s + (1.0 - fi) * md.access_time_s;
  out.l2_access_time_s = m2.access_time_s;
  out.amat_s = fi * (mi.access_time_s + miss_.l1i * l2_path) +
               (1.0 - fi) * (md.access_time_s + miss_.l1d * l2_path);
  out.leakage_w = mi.leakage_w + md.leakage_w + m2.leakage_w +
                  memory_.background_power_w;
  out.dynamic_energy_j =
      fi * mi.dynamic_energy_j + (1.0 - fi) * md.dynamic_energy_j +
      l2_weight() * (m2.dynamic_energy_j +
                     miss_.l2_local * memory_.access_energy_j);
  out.leakage_energy_j = out.leakage_w * out.amat_s;
  out.total_energy_j = out.dynamic_energy_j + out.leakage_energy_j;
  return out;
}

}  // namespace nanocache::energy
