// Whole-cache model: assembles the paper's four components and sums their
// delay/leakage/energy (Section 3's independence assumption), with an
// optional exact mode that couples bus lengths to the cell array's
// Tox-dependent area (Section 2).
//
// Split-tag organizations (extended_organization) add the tag array and way
// comparators as fifth/sixth components, and multi-bank organizations scale
// the decode path and bus geometry with the bank count.  The paper's fixed
// organization takes none of these paths, so its numbers are untouched.
#pragma once

#include <memory>
#include <vector>

#include "cachemodel/array.h"
#include "cachemodel/component.h"
#include "cachemodel/decoder.h"
#include "cachemodel/drivers.h"
#include "cachemodel/organization.h"
#include "cachemodel/tagpath.h"

namespace nanocache::cachemodel {

/// How bus lengths react to the array's Tox.
enum class AreaCoupling {
  /// Bus geometry frozen at nominal Tox.  Keeps components independent,
  /// which is what the paper's additive model (and our per-component
  /// optimizers) assume.
  kNominal,
  /// Bus lengths recomputed from the array area at the assigned array Tox.
  /// Used for final reporting; quantifies the linearization error.
  kArrayTox,
};

class CacheModel {
 public:
  CacheModel(CacheOrganization org, tech::DeviceModel dev);

  CacheModel(const CacheModel&) = delete;
  CacheModel& operator=(const CacheModel&) = delete;

  const CacheOrganization& organization() const { return org_; }
  const tech::DeviceModel& device() const { return dev_; }

  /// Components this organization is made of: the paper's four, or all six
  /// when the tag path is split out.
  std::size_t num_components() const {
    return org_.split_tag ? kMaxComponents : kNumComponents;
  }

  /// Metrics of one component at the given knobs, with nominal-Tox bus
  /// geometry (independent-component view used by the optimizers).  The tag
  /// components require a split-tag organization.
  ComponentMetrics component(ComponentKind kind,
                             const tech::DeviceKnobs& knobs) const;

  /// Batched kernel behind opt::ComponentEvaluator: evaluate every kind in
  /// `kinds` at every knob pair in `pairs`, binding each pair's device op
  /// point (the subthreshold/gate-leakage exp() chain and the alpha-power
  /// term) once and reusing it across the kinds.  out[k][r] is bitwise
  /// equal to component(kinds[k], pairs[r]) — the contract the option-table
  /// builders and the argmin-invariance proof rely on (docs/MODELING.md).
  std::vector<std::vector<ComponentMetrics>> components_batch(
      const std::vector<ComponentKind>& kinds,
      const std::vector<tech::DeviceKnobs>& pairs) const;

  /// Full-cache metrics for a per-component assignment.
  CacheMetrics evaluate(const ComponentAssignment& assignment,
                        AreaCoupling coupling = AreaCoupling::kNominal) const;

  /// Scheme-III convenience: one pair everywhere.
  CacheMetrics evaluate_uniform(
      const tech::DeviceKnobs& knobs,
      AreaCoupling coupling = AreaCoupling::kNominal) const;

  const ArrayModel& array_model() const { return array_; }

 private:
  BusDriverModel make_address_drivers(double bus_length_um) const;
  BusDriverModel make_data_drivers(double bus_length_um) const;
  double nominal_bus_length_um() const;
  /// Effective bus length including the multi-bank fan-out factor.
  double effective_bus_length_um(double bus_length_um) const;
  /// Multi-bank adjustments for one component's metrics: decoder
  /// replication and the bank-select term on the address bus.  Identity
  /// when banks == 1.
  template <typename Dev>
  ComponentMetrics banked_impl(ComponentKind kind, ComponentMetrics m,
                               const Dev& dev) const;
  ComponentMetrics banked(ComponentKind kind, ComponentMetrics m,
                          const tech::DeviceKnobs& knobs) const;
  ComponentMetrics banked(ComponentKind kind, ComponentMetrics m,
                          const tech::BoundDevice& bdev) const;
  ComponentMetrics component_at(ComponentKind kind,
                                const tech::DeviceKnobs& knobs,
                                double bus_length_um) const;
  ComponentMetrics component_at(ComponentKind kind,
                                const tech::BoundDevice& bdev,
                                double bus_length_um) const;

  CacheOrganization org_;
  tech::DeviceModel dev_;
  ArrayModel array_;
  DecoderModel decoder_;
  std::unique_ptr<TagArrayModel> tag_;        ///< set iff org_.split_tag
  std::unique_ptr<WayComparatorModel> cmp_;   ///< set iff org_.split_tag
};

}  // namespace nanocache::cachemodel
