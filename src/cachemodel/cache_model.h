// Whole-cache model: assembles the paper's four components and sums their
// delay/leakage/energy (Section 3's independence assumption), with an
// optional exact mode that couples bus lengths to the cell array's
// Tox-dependent area (Section 2).
#pragma once

#include "cachemodel/array.h"
#include "cachemodel/component.h"
#include "cachemodel/decoder.h"
#include "cachemodel/drivers.h"
#include "cachemodel/organization.h"

namespace nanocache::cachemodel {

/// How bus lengths react to the array's Tox.
enum class AreaCoupling {
  /// Bus geometry frozen at nominal Tox.  Keeps components independent,
  /// which is what the paper's additive model (and our per-component
  /// optimizers) assume.
  kNominal,
  /// Bus lengths recomputed from the array area at the assigned array Tox.
  /// Used for final reporting; quantifies the linearization error.
  kArrayTox,
};

class CacheModel {
 public:
  CacheModel(CacheOrganization org, tech::DeviceModel dev);

  CacheModel(const CacheModel&) = delete;
  CacheModel& operator=(const CacheModel&) = delete;

  const CacheOrganization& organization() const { return org_; }
  const tech::DeviceModel& device() const { return dev_; }

  /// Metrics of one component at the given knobs, with nominal-Tox bus
  /// geometry (independent-component view used by the optimizers).
  ComponentMetrics component(ComponentKind kind,
                             const tech::DeviceKnobs& knobs) const;

  /// Full-cache metrics for a per-component assignment.
  CacheMetrics evaluate(const ComponentAssignment& assignment,
                        AreaCoupling coupling = AreaCoupling::kNominal) const;

  /// Scheme-III convenience: one pair everywhere.
  CacheMetrics evaluate_uniform(
      const tech::DeviceKnobs& knobs,
      AreaCoupling coupling = AreaCoupling::kNominal) const;

  const ArrayModel& array_model() const { return array_; }

 private:
  BusDriverModel make_address_drivers(double bus_length_um) const;
  BusDriverModel make_data_drivers(double bus_length_um) const;
  double nominal_bus_length_um() const;

  CacheOrganization org_;
  tech::DeviceModel dev_;
  ArrayModel array_;
  DecoderModel decoder_;
};

}  // namespace nanocache::cachemodel
