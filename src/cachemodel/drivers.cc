#include "cachemodel/drivers.h"

#include <cmath>

#include "tech/delay.h"
#include "util/error.h"

namespace nanocache::cachemodel {

double bus_length_from_area_um(double area_um2) {
  NC_REQUIRE(area_um2 > 0.0, "area must be positive");
  return std::sqrt(area_um2);
}

BusDriverModel::BusDriverModel(const tech::DeviceModel& dev,
                               std::uint32_t bits, double bus_length_um,
                               double receiver_cap_f, double activity)
    : dev_(dev),
      bits_(bits),
      bus_length_um_(bus_length_um),
      receiver_cap_f_(receiver_cap_f),
      activity_(activity) {
  NC_REQUIRE(bits_ > 0, "bus needs at least one bit");
  NC_REQUIRE(bus_length_um_ > 0.0, "bus length must be positive");
  NC_REQUIRE(receiver_cap_f_ >= 0.0, "receiver cap must be non-negative");
  NC_REQUIRE(activity_ > 0.0 && activity_ <= 1.0,
             "activity must be in (0, 1]");
}

template <typename Dev>
ComponentMetrics BusDriverModel::evaluate_impl(const Dev& dev) const {
  const auto& p = dev.params();

  double delay = 0.0;
  double total_width = 0.0;
  if (bus_length_um_ > tech::kRepeaterSegmentUm) {
    // Long bus: a short launch chain into a repeater-segmented wire.
    const double c_rep_in = dev.gate_cap_f(tech::kRepeaterWidthUm);
    const auto chain = tech::driver_chain(dev, kDriverFirstStageUm, c_rep_in);
    const auto wire = tech::repeated_wire(dev, bus_length_um_,
                                          receiver_cap_f_, chain.out_ramp_s);
    delay = chain.delay_s + wire.delay_s;
    total_width = chain.total_width_um + wire.total_width_um;
  } else {
    const double c_wire = bus_length_um_ * p.cwire_f_per_um;
    const double r_wire = bus_length_um_ * p.rwire_ohm_per_um;
    const auto chain = tech::driver_chain(dev, kDriverFirstStageUm,
                                          receiver_cap_f_, r_wire, c_wire);
    delay = chain.delay_s;
    total_width = chain.total_width_um;
  }

  ComponentMetrics m;
  // All bits switch in parallel; the critical path is one chain.
  m.delay_s = delay * p.delay_calibration;
  const auto leak = dev.off_power_split_w(total_width * 0.5);
  m.leakage_sub_w = static_cast<double>(bits_) * leak.subthreshold_w;
  m.leakage_gate_w = static_cast<double>(bits_) * leak.gate_w;
  m.leakage_w = m.leakage_sub_w + m.leakage_gate_w;
  const double c_per_bit = bus_length_um_ * p.cwire_f_per_um +
                           receiver_cap_f_ +
                           dev.drain_cap_f(total_width * 0.4);
  m.dynamic_energy_j = static_cast<double>(bits_) * activity_ * c_per_bit *
                       p.vdd_v * p.vdd_v;
  m.dynamic_write_energy_j = m.dynamic_energy_j;
  m.area_um2 = static_cast<double>(bits_) * total_width *
               dev.leff_um() * 8.0;
  return m;
}

ComponentMetrics BusDriverModel::evaluate(
    const tech::DeviceKnobs& knobs) const {
  return evaluate_impl(tech::DeviceView(dev_, knobs));
}

ComponentMetrics BusDriverModel::evaluate(const tech::BoundDevice& bdev) const {
  return evaluate_impl(bdev);
}

}  // namespace nanocache::cachemodel
