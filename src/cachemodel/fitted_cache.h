// Closed-form cache model (the paper's Section 3 endpoint): for a fixed
// organization, fit Eq. (1)/(2) per component over a characterization grid
// and expose fast evaluators.  This is what the paper's optimizer actually
// consumes; the structural model plays the role of HSPICE.
//
// The fit records its characterization rectangle and per-fit R^2 so
// callers can detect (rather than silently extrapolate through) two
// failure modes: knobs outside the fitted domain, and poorly-conditioned
// fits whose closed forms no longer track the structural model.
#pragma once

#include <array>

#include "cachemodel/cache_model.h"
#include "tech/fitted.h"

namespace nanocache::cachemodel {

/// Per-component fitted leakage/delay models plus fit diagnostics.
class FittedCacheModel {
 public:
  /// Characterize `model` on a vth_steps x tox_steps grid and fit each
  /// component's leakage (Eq. 1) and delay (Eq. 2).
  static FittedCacheModel fit(const CacheModel& model, int vth_steps = 13,
                              int tox_steps = 9);

  double component_leakage_w(ComponentKind kind,
                             const tech::DeviceKnobs& knobs) const;
  double component_delay_s(ComponentKind kind,
                           const tech::DeviceKnobs& knobs) const;

  /// Checked variants: validate the knobs are finite and inside the
  /// characterization rectangle and the result is finite; throw
  /// nanocache::Error(kNumericDomain) otherwise.
  double component_leakage_checked_w(ComponentKind kind,
                                     const tech::DeviceKnobs& knobs) const;
  double component_delay_checked_s(ComponentKind kind,
                                   const tech::DeviceKnobs& knobs) const;

  /// Whole-cache evaluation by summation (paper Section 3).
  double leakage_w(const ComponentAssignment& a) const;
  double access_time_s(const ComponentAssignment& a) const;

  const tech::FittedLeakageModel& leakage_fit(ComponentKind kind) const {
    return leakage_[static_cast<std::size_t>(kind)];
  }
  const tech::FittedDelayModel& delay_fit(ComponentKind kind) const {
    return delay_[static_cast<std::size_t>(kind)];
  }

  /// The (Vth, Tox) rectangle all eight component fits were characterized
  /// over (one grid covers every component).
  const tech::FitDomain& domain() const { return domain_; }

  /// True when the knobs lie inside the characterization rectangle.
  bool in_domain(const tech::DeviceKnobs& knobs) const {
    return domain_.contains(knobs);
  }

  /// Worst R^2 across all eight fits — a single number summarizing how well
  /// the paper's closed forms track the structural model.
  double worst_r2() const;

 private:
  FittedCacheModel() = default;
  std::array<tech::FittedLeakageModel, kNumComponents> leakage_{
      tech::FittedLeakageModel{}, tech::FittedLeakageModel{},
      tech::FittedLeakageModel{}, tech::FittedLeakageModel{}};
  std::array<tech::FittedDelayModel, kNumComponents> delay_{
      tech::FittedDelayModel{}, tech::FittedDelayModel{},
      tech::FittedDelayModel{}, tech::FittedDelayModel{}};
  tech::FitDomain domain_;
};

}  // namespace nanocache::cachemodel
