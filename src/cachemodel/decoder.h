// Row-decoder component model: 3-bit predecoders (NAND3 + buffer) followed
// by per-row combine gates (NOR of predecode lines) that drive the wordline
// drivers' inputs.  Structure and sizing follow CACTI's decoder.
#pragma once

#include "cachemodel/component.h"
#include "cachemodel/organization.h"

namespace nanocache::cachemodel {

class DecoderModel {
 public:
  DecoderModel(const CacheOrganization& org, const tech::DeviceModel& dev);

  ComponentMetrics evaluate(const tech::DeviceKnobs& knobs) const;
  /// Batched-kernel entry point (see the view contract in tech/device.h).
  ComponentMetrics evaluate(const tech::BoundDevice& bdev) const;

  std::uint32_t predecode_groups() const { return groups_; }
  std::uint64_t row_gate_count() const { return row_gates_; }

 private:
  template <typename Dev>
  ComponentMetrics evaluate_impl(const Dev& dev) const;

  CacheOrganization org_;
  const tech::DeviceModel& dev_;
  std::uint32_t decode_bits_ = 0;
  std::uint32_t groups_ = 0;       ///< number of 3-bit predecode groups
  std::uint64_t row_gates_ = 0;    ///< per-row combine gates, all subarrays
};

/// Gate widths (nominal geometry, um).
inline constexpr double kPredecodeNandWidthUm = 2.0;
inline constexpr double kPredecodeBufferWidthUm = 6.0;
inline constexpr double kRowGateWidthUm = 1.2;

}  // namespace nanocache::cachemodel
