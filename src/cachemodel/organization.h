// Cache organization: logical parameters (capacity, block, associativity)
// plus the CACTI-style physical partition of the data array into subarrays
// (Ndwl wordline segments x Ndbl bitline segments, Nspd sets per row).
#pragma once

#include <cstdint>
#include <string>

#include "tech/device.h"

namespace nanocache::cachemodel {

struct CacheOrganization {
  std::uint64_t size_bytes = 16 * 1024;
  std::uint32_t block_bytes = 32;
  std::uint32_t associativity = 2;

  // Physical partition (powers of two).
  std::uint32_t ndwl = 1;  ///< wordline segments: splits columns
  std::uint32_t ndbl = 1;  ///< bitline segments: splits rows
  std::uint32_t nspd = 1;  ///< sets mapped into one physical row

  std::uint32_t address_bits = 32;
  std::uint32_t data_bus_bits = 64;  ///< width of the read-out bus

  // --- derived quantities -------------------------------------------------

  std::uint64_t num_sets() const;
  /// Data bits stored (capacity * 8).
  std::uint64_t data_bits() const;
  /// Tag bits per block (address - offset - index + valid/dirty status).
  std::uint32_t tag_bits_per_block() const;
  /// Total bits including tags; this is what leaks.
  std::uint64_t total_bits() const;

  std::uint64_t rows_per_subarray() const;
  std::uint64_t cols_per_subarray() const;
  std::uint32_t num_subarrays() const { return ndwl * ndbl; }
  /// Row-decode input width, bits.
  std::uint32_t row_decode_bits() const;

  /// Throws nanocache::Error when the partition does not divide evenly or
  /// any parameter is out of range.
  void validate() const;

  std::string describe() const;

  friend bool operator==(const CacheOrganization&,
                         const CacheOrganization&) = default;
};

/// Search Ndwl/Ndbl/Nspd (powers of two) minimizing nominal-knob access time
/// (area is the tie-break).  This mirrors CACTI's internal organization
/// search and is how all benches construct their caches.
CacheOrganization optimal_partition(CacheOrganization base,
                                    const tech::DeviceModel& dev);

/// Convenience factories with the defaults used across the experiments.
CacheOrganization l1_organization(std::uint64_t size_bytes,
                                  const tech::DeviceModel& dev);
CacheOrganization l2_organization(std::uint64_t size_bytes,
                                  const tech::DeviceModel& dev);

}  // namespace nanocache::cachemodel
