// Cache organization: logical parameters (capacity, block, associativity)
// plus the CACTI-style physical partition of the data array into subarrays
// (Ndwl wordline segments x Ndbl bitline segments, Nspd sets per row).
#pragma once

#include <cstdint>
#include <string>

#include "tech/device.h"

namespace nanocache::cachemodel {

struct CacheOrganization {
  std::uint64_t size_bytes = 16 * 1024;
  std::uint32_t block_bytes = 32;
  std::uint32_t associativity = 2;

  // Physical partition (powers of two).
  std::uint32_t ndwl = 1;  ///< wordline segments: splits columns
  std::uint32_t ndbl = 1;  ///< bitline segments: splits rows
  std::uint32_t nspd = 1;  ///< sets mapped into one physical row

  std::uint32_t address_bits = 32;
  std::uint32_t data_bus_bits = 64;  ///< width of the read-out bus

  /// Identical banks the cache is replicated into (power of two, <= 8).
  /// Each bank holds size_bytes/banks and has its own decoder; the address
  /// bus fans out to every bank and a bank-select term picks one.
  std::uint32_t banks = 1;
  /// Fully-associative layout: a single set spanning all blocks.  Stored
  /// with associativity == 1 so the physical array layout (one block per
  /// row slot) stays valid; the flag only changes how tags are counted.
  bool fully_associative = false;
  /// Model the tag path explicitly: tags live in their own array (component
  /// kTagArray) with way comparators (kWayComparators) instead of being
  /// folded into the data array's bit count.
  bool split_tag = false;

  // --- derived quantities -------------------------------------------------

  std::uint64_t num_sets() const;
  /// Data bits stored (capacity * 8).
  std::uint64_t data_bits() const;
  /// Tag bits per block (address - offset - index + valid/dirty status).
  std::uint32_t tag_bits_per_block() const;
  /// Total bits including tags; this is what leaks.
  std::uint64_t total_bits() const;
  /// Bits in the main data array: excludes tags when they are split out
  /// into their own component, otherwise equals total_bits().
  std::uint64_t array_bits() const;
  /// Blocks per set as seen by the tag match: associativity, or the whole
  /// block count when fully associative.
  std::uint64_t ways() const;

  std::uint64_t rows_per_subarray() const;
  std::uint64_t cols_per_subarray() const;
  std::uint32_t num_subarrays() const { return ndwl * ndbl; }
  /// Row-decode input width, bits.
  std::uint32_t row_decode_bits() const;

  /// Throws nanocache::Error when the partition does not divide evenly or
  /// any parameter is out of range.
  void validate() const;

  std::string describe() const;

  friend bool operator==(const CacheOrganization&,
                         const CacheOrganization&) = default;
};

/// Search Ndwl/Ndbl/Nspd (powers of two) minimizing nominal-knob access time
/// (area is the tie-break).  This mirrors CACTI's internal organization
/// search and is how all benches construct their caches.
CacheOrganization optimal_partition(CacheOrganization base,
                                    const tech::DeviceModel& dev);

/// Convenience factories with the defaults used across the experiments.
CacheOrganization l1_organization(std::uint64_t size_bytes,
                                  const tech::DeviceModel& dev);
CacheOrganization l2_organization(std::uint64_t size_bytes,
                                  const tech::DeviceModel& dev);

/// Parameterized factory for the design-space API: associativity 1/2/4/8
/// (or -1 for fully associative), 1-8 banks (power of two).  The result has
/// split_tag set, so the tag array and way comparators are modeled as their
/// own components.  Throws nanocache::Error(kConfig) for any other
/// associativity or bank count.
CacheOrganization extended_organization(std::uint64_t size_bytes, bool is_l2,
                                        int associativity, std::uint32_t banks,
                                        const tech::DeviceModel& dev);

}  // namespace nanocache::cachemodel
