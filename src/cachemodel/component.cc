#include "cachemodel/component.h"

namespace nanocache::cachemodel {

std::string_view component_name(ComponentKind kind) {
  switch (kind) {
    case ComponentKind::kCellArray:
      return "cell-array+senseamp";
    case ComponentKind::kDecoder:
      return "decoder";
    case ComponentKind::kAddressDrivers:
      return "address-bus-drivers";
    case ComponentKind::kDataDrivers:
      return "data-bus-drivers";
    case ComponentKind::kTagArray:
      return "tag-array";
    case ComponentKind::kWayComparators:
      return "way-comparators";
  }
  return "unknown";
}

}  // namespace nanocache::cachemodel
