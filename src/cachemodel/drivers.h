// Address- and data-bus driver component models: per-bit inverter chains
// driving distribution wires whose length tracks the physical span of the
// data array.  The paper's Section 2 area coupling (thicker Tox -> larger
// cells -> longer buses) enters through the bus length.
#pragma once

#include "cachemodel/component.h"
#include "cachemodel/organization.h"

namespace nanocache::cachemodel {

/// Common model for both bus-driver components; they differ in bit count,
/// per-bit receiver load and switching activity.
class BusDriverModel {
 public:
  /// `bits` wires of length `bus_length_um`, each terminated by
  /// `receiver_cap_f`, toggling with `activity` probability per access.
  BusDriverModel(const tech::DeviceModel& dev, std::uint32_t bits,
                 double bus_length_um, double receiver_cap_f,
                 double activity);

  ComponentMetrics evaluate(const tech::DeviceKnobs& knobs) const;
  /// Batched-kernel entry point (see the view contract in tech/device.h).
  ComponentMetrics evaluate(const tech::BoundDevice& bdev) const;

  double bus_length_um() const { return bus_length_um_; }
  std::uint32_t bits() const { return bits_; }

 private:
  template <typename Dev>
  ComponentMetrics evaluate_impl(const Dev& dev) const;

  const tech::DeviceModel& dev_;
  std::uint32_t bits_;
  double bus_length_um_;
  double receiver_cap_f_;
  double activity_;
};

/// First-stage width of each per-bit chain, um.
inline constexpr double kDriverFirstStageUm = 1.0;

/// Physical span of the cache seen by its buses: half the perimeter walk of
/// a square of the given area.
double bus_length_from_area_um(double area_um2);

}  // namespace nanocache::cachemodel
