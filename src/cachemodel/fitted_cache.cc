#include "cachemodel/fitted_cache.h"

#include <algorithm>

#include "tech/characterize.h"
#include "util/numeric_guard.h"

namespace nanocache::cachemodel {

FittedCacheModel FittedCacheModel::fit(const CacheModel& model, int vth_steps,
                                       int tox_steps) {
  FittedCacheModel out;
  const auto grid = tech::knob_grid(model.device().params().knobs, vth_steps,
                                    tox_steps);
  for (ComponentKind kind : kAllComponents) {
    const auto idx = static_cast<std::size_t>(kind);
    const auto leak_samples = tech::characterize(
        grid, [&](const tech::DeviceKnobs& k) {
          return model.component(kind, k).leakage_w;
        });
    const auto delay_samples = tech::characterize(
        grid, [&](const tech::DeviceKnobs& k) {
          return model.component(kind, k).delay_s;
        });
    out.leakage_[idx] = tech::FittedLeakageModel::fit(leak_samples);
    out.delay_[idx] = tech::FittedDelayModel::fit(delay_samples);
  }
  out.domain_ =
      out.leakage_[static_cast<std::size_t>(ComponentKind::kCellArray)]
          .domain();
  return out;
}

double FittedCacheModel::component_leakage_w(
    ComponentKind kind, const tech::DeviceKnobs& knobs) const {
  return leakage_[static_cast<std::size_t>(kind)](knobs);
}

double FittedCacheModel::component_delay_s(
    ComponentKind kind, const tech::DeviceKnobs& knobs) const {
  return delay_[static_cast<std::size_t>(kind)](knobs);
}

double FittedCacheModel::component_leakage_checked_w(
    ComponentKind kind, const tech::DeviceKnobs& knobs) const {
  return leakage_[static_cast<std::size_t>(kind)].evaluate_checked(knobs);
}

double FittedCacheModel::component_delay_checked_s(
    ComponentKind kind, const tech::DeviceKnobs& knobs) const {
  return delay_[static_cast<std::size_t>(kind)].evaluate_checked(knobs);
}

double FittedCacheModel::leakage_w(const ComponentAssignment& a) const {
  double sum = 0.0;
  for (ComponentKind kind : kAllComponents) {
    sum += component_leakage_w(kind, a.get(kind));
  }
  return num::ensure_finite(sum, "fitted cache leakage");
}

double FittedCacheModel::access_time_s(const ComponentAssignment& a) const {
  double sum = 0.0;
  for (ComponentKind kind : kAllComponents) {
    sum += component_delay_s(kind, a.get(kind));
  }
  return num::ensure_finite(sum, "fitted cache access time");
}

double FittedCacheModel::worst_r2() const {
  double worst = 1.0;
  for (std::size_t i = 0; i < kNumComponents; ++i) {
    worst = std::min(worst, leakage_[i].r2());
    worst = std::min(worst, delay_[i].r2());
  }
  return worst;
}

}  // namespace nanocache::cachemodel
