#include "cachemodel/cache_model.h"

#include "util/error.h"
#include "util/numeric_guard.h"

namespace nanocache::cachemodel {

namespace {
/// Receiver load per bus wire: a handful of gate inputs at the far end.
/// Gate channel cap is nearly Tox-independent (L grows as Cox shrinks), so
/// evaluating at nominal Tox keeps components decoupled without real error.
double receiver_cap_f(const tech::DeviceModel& dev, double width_um) {
  return dev.gate_cap_f(width_um, dev.params().tox_nominal_a);
}
}  // namespace

CacheModel::CacheModel(CacheOrganization org, tech::DeviceModel dev)
    : org_(org), dev_(std::move(dev)), array_(org_, dev_), decoder_(org_, dev_) {
  org_.validate();
}

double CacheModel::nominal_bus_length_um() const {
  return bus_length_from_area_um(array_.area_um2(dev_.params().tox_nominal_a));
}

BusDriverModel CacheModel::make_address_drivers(double bus_length_um) const {
  // Each address bit fans out to one predecoder input per wordline segment.
  const double rx =
      receiver_cap_f(dev_, kPredecodeNandWidthUm) * org_.ndwl;
  return BusDriverModel(dev_, org_.address_bits, bus_length_um, rx,
                        /*activity=*/0.5);
}

BusDriverModel CacheModel::make_data_drivers(double bus_length_um) const {
  // Each data bit drives the output mux/latch input.
  const double rx = receiver_cap_f(dev_, 4.0) * 2.0;
  return BusDriverModel(dev_, org_.data_bus_bits, bus_length_um, rx,
                        /*activity=*/0.5);
}

ComponentMetrics CacheModel::component(ComponentKind kind,
                                       const tech::DeviceKnobs& knobs) const {
  // NaN knobs would otherwise trip range checks deeper in the device model
  // and masquerade as configuration errors.
  num::ensure_finite(knobs.vth_v, "component knob Vth");
  num::ensure_finite(knobs.tox_a, "component knob Tox");
  switch (kind) {
    case ComponentKind::kCellArray:
      return array_.evaluate(knobs);
    case ComponentKind::kDecoder:
      return decoder_.evaluate(knobs);
    case ComponentKind::kAddressDrivers:
      return make_address_drivers(nominal_bus_length_um()).evaluate(knobs);
    case ComponentKind::kDataDrivers:
      return make_data_drivers(nominal_bus_length_um()).evaluate(knobs);
  }
  throw Error("unknown component kind");
}

CacheMetrics CacheModel::evaluate(const ComponentAssignment& assignment,
                                  AreaCoupling coupling) const {
  double bus_length = nominal_bus_length_um();
  if (coupling == AreaCoupling::kArrayTox) {
    bus_length =
        bus_length_from_area_um(array_.area_um2(assignment.array().tox_a));
  }

  CacheMetrics total;
  for (ComponentKind kind : kAllComponents) {
    const auto& knobs = assignment.get(kind);
    num::ensure_finite(knobs.vth_v, "assignment knob Vth");
    num::ensure_finite(knobs.tox_a, "assignment knob Tox");
    ComponentMetrics m;
    switch (kind) {
      case ComponentKind::kCellArray:
        m = array_.evaluate(knobs);
        break;
      case ComponentKind::kDecoder:
        m = decoder_.evaluate(knobs);
        break;
      case ComponentKind::kAddressDrivers:
        m = make_address_drivers(bus_length).evaluate(knobs);
        break;
      case ComponentKind::kDataDrivers:
        m = make_data_drivers(bus_length).evaluate(knobs);
        break;
    }
    total.per_component[static_cast<std::size_t>(kind)] = m;
    total.access_time_s += m.delay_s;
    total.leakage_w += m.leakage_w;
    total.leakage_sub_w += m.leakage_sub_w;
    total.leakage_gate_w += m.leakage_gate_w;
    total.dynamic_energy_j += m.dynamic_energy_j;
    total.dynamic_write_energy_j += m.dynamic_write_energy_j;
    total.area_um2 += m.area_um2;
  }
  return total;
}

CacheMetrics CacheModel::evaluate_uniform(const tech::DeviceKnobs& knobs,
                                          AreaCoupling coupling) const {
  return evaluate(ComponentAssignment(knobs), coupling);
}

}  // namespace nanocache::cachemodel
