#include "cachemodel/cache_model.h"

#include <bit>
#include <cmath>

#include "util/error.h"
#include "util/numeric_guard.h"

namespace nanocache::cachemodel {

namespace {
/// Receiver load per bus wire: a handful of gate inputs at the far end.
/// Gate channel cap is nearly Tox-independent (L grows as Cox shrinks), so
/// evaluating at nominal Tox keeps components decoupled without real error.
double receiver_cap_f(const tech::DeviceModel& dev, double width_um) {
  return dev.gate_cap_f(width_um, dev.params().tox_nominal_a);
}

/// Driver width of one bank-select line (nominal geometry, um).
constexpr double kBankSelectDriverWidthUm = 8.0;
}  // namespace

CacheModel::CacheModel(CacheOrganization org, tech::DeviceModel dev)
    : org_(org), dev_(std::move(dev)), array_(org_, dev_), decoder_(org_, dev_) {
  org_.validate();
  if (org_.split_tag) {
    tag_ = std::make_unique<TagArrayModel>(org_, dev_);
    cmp_ = std::make_unique<WayComparatorModel>(org_, dev_);
  }
}

double CacheModel::nominal_bus_length_um() const {
  return bus_length_from_area_um(array_.area_um2(dev_.params().tox_nominal_a));
}

double CacheModel::effective_bus_length_um(double bus_length_um) const {
  // Banks spread across the floorplan; the shared buses grow with the
  // linear dimension of the bank grid.  Exactly the input when banks == 1
  // so the fixed organization's arithmetic is untouched.
  if (org_.banks <= 1) return bus_length_um;
  return bus_length_um * std::sqrt(static_cast<double>(org_.banks));
}

BusDriverModel CacheModel::make_address_drivers(double bus_length_um) const {
  // Each address bit fans out to one predecoder input per wordline segment.
  const double rx =
      receiver_cap_f(dev_, kPredecodeNandWidthUm) * org_.ndwl;
  return BusDriverModel(dev_, org_.address_bits, bus_length_um, rx,
                        /*activity=*/0.5);
}

BusDriverModel CacheModel::make_data_drivers(double bus_length_um) const {
  // Each data bit drives the output mux/latch input.
  const double rx = receiver_cap_f(dev_, 4.0) * 2.0;
  return BusDriverModel(dev_, org_.data_bus_bits, bus_length_um, rx,
                        /*activity=*/0.5);
}

template <typename Dev>
ComponentMetrics CacheModel::banked_impl(ComponentKind kind,
                                         ComponentMetrics m,
                                         const Dev& dev) const {
  if (org_.banks <= 1) return m;
  const double b = static_cast<double>(org_.banks);
  switch (kind) {
    case ComponentKind::kDecoder: {
      // One decoder per bank; all of them leak, all of them occupy area.
      m.leakage_sub_w *= b;
      m.leakage_gate_w *= b;
      m.leakage_w = m.leakage_sub_w + m.leakage_gate_w;
      m.area_um2 *= b;
      break;
    }
    case ComponentKind::kAddressDrivers: {
      // Bank-select lines ride the address bus: log2(banks) extra wires
      // switched every access, with their own always-on drivers.
      const auto& p = dev.params();
      const double select_lines =
          static_cast<double>(std::bit_width(org_.banks) - 1);
      const double bus_length =
          effective_bus_length_um(nominal_bus_length_um());
      const double e_select = select_lines * bus_length * p.cwire_f_per_um *
                              p.vdd_v * p.vdd_v;
      m.dynamic_energy_j += e_select;
      m.dynamic_write_energy_j += e_select;
      const auto sel = dev.off_power_split_w(kBankSelectDriverWidthUm * 0.5);
      m.leakage_sub_w += select_lines * sel.subthreshold_w;
      m.leakage_gate_w += select_lines * sel.gate_w;
      m.leakage_w = m.leakage_sub_w + m.leakage_gate_w;
      break;
    }
    default:
      break;
  }
  return m;
}

ComponentMetrics CacheModel::banked(ComponentKind kind, ComponentMetrics m,
                                    const tech::DeviceKnobs& knobs) const {
  return banked_impl(kind, m, tech::DeviceView(dev_, knobs));
}

ComponentMetrics CacheModel::banked(ComponentKind kind, ComponentMetrics m,
                                    const tech::BoundDevice& bdev) const {
  return banked_impl(kind, m, bdev);
}

ComponentMetrics CacheModel::component_at(ComponentKind kind,
                                          const tech::DeviceKnobs& knobs,
                                          double bus_length_um) const {
  switch (kind) {
    case ComponentKind::kCellArray:
      return array_.evaluate(knobs);
    case ComponentKind::kDecoder:
      return banked(kind, decoder_.evaluate(knobs), knobs);
    case ComponentKind::kAddressDrivers:
      return banked(kind,
                    make_address_drivers(effective_bus_length_um(bus_length_um))
                        .evaluate(knobs),
                    knobs);
    case ComponentKind::kDataDrivers:
      return make_data_drivers(effective_bus_length_um(bus_length_um))
          .evaluate(knobs);
    case ComponentKind::kTagArray:
      NC_REQUIRE(tag_ != nullptr,
                 "tag array component requires a split-tag organization");
      return tag_->evaluate(knobs);
    case ComponentKind::kWayComparators:
      NC_REQUIRE(cmp_ != nullptr,
                 "way comparator component requires a split-tag organization");
      return cmp_->evaluate(knobs);
  }
  throw Error("unknown component kind");
}

ComponentMetrics CacheModel::component_at(ComponentKind kind,
                                          const tech::BoundDevice& bdev,
                                          double bus_length_um) const {
  switch (kind) {
    case ComponentKind::kCellArray:
      return array_.evaluate(bdev);
    case ComponentKind::kDecoder:
      return banked(kind, decoder_.evaluate(bdev), bdev);
    case ComponentKind::kAddressDrivers:
      return banked(kind,
                    make_address_drivers(effective_bus_length_um(bus_length_um))
                        .evaluate(bdev),
                    bdev);
    case ComponentKind::kDataDrivers:
      return make_data_drivers(effective_bus_length_um(bus_length_um))
          .evaluate(bdev);
    case ComponentKind::kTagArray:
      NC_REQUIRE(tag_ != nullptr,
                 "tag array component requires a split-tag organization");
      return tag_->evaluate(bdev);
    case ComponentKind::kWayComparators:
      NC_REQUIRE(cmp_ != nullptr,
                 "way comparator component requires a split-tag organization");
      return cmp_->evaluate(bdev);
  }
  throw Error("unknown component kind");
}

ComponentMetrics CacheModel::component(ComponentKind kind,
                                       const tech::DeviceKnobs& knobs) const {
  // NaN knobs would otherwise trip range checks deeper in the device model
  // and masquerade as configuration errors.
  num::ensure_finite(knobs.vth_v, "component knob Vth");
  num::ensure_finite(knobs.tox_a, "component knob Tox");
  return component_at(kind, knobs, nominal_bus_length_um());
}

std::vector<std::vector<ComponentMetrics>> CacheModel::components_batch(
    const std::vector<ComponentKind>& kinds,
    const std::vector<tech::DeviceKnobs>& pairs) const {
  const double bus_length = nominal_bus_length_um();
  std::vector<std::vector<ComponentMetrics>> out(kinds.size());
  for (auto& table : out) table.resize(pairs.size());
  for (std::size_t r = 0; r < pairs.size(); ++r) {
    const auto& knobs = pairs[r];
    // Same guard (and message) as component(): the batch kernel must fail
    // exactly where the scalar path would.
    num::ensure_finite(knobs.vth_v, "component knob Vth");
    num::ensure_finite(knobs.tox_a, "component knob Tox");
    const tech::BoundDevice bdev(dev_, knobs);
    for (std::size_t k = 0; k < kinds.size(); ++k) {
      out[k][r] = component_at(kinds[k], bdev, bus_length);
    }
  }
  return out;
}

CacheMetrics CacheModel::evaluate(const ComponentAssignment& assignment,
                                  AreaCoupling coupling) const {
  double bus_length = nominal_bus_length_um();
  if (coupling == AreaCoupling::kArrayTox) {
    bus_length =
        bus_length_from_area_um(array_.area_um2(assignment.array().tox_a));
  }

  CacheMetrics total;
  const std::size_t n = num_components();
  for (std::size_t i = 0; i < n; ++i) {
    const ComponentKind kind = kExtendedComponents[i];
    const auto& knobs = assignment.get(kind);
    num::ensure_finite(knobs.vth_v, "assignment knob Vth");
    num::ensure_finite(knobs.tox_a, "assignment knob Tox");
    const ComponentMetrics m = component_at(kind, knobs, bus_length);
    total.per_component[static_cast<std::size_t>(kind)] = m;
    total.access_time_s += m.delay_s;
    total.leakage_w += m.leakage_w;
    total.leakage_sub_w += m.leakage_sub_w;
    total.leakage_gate_w += m.leakage_gate_w;
    total.dynamic_energy_j += m.dynamic_energy_j;
    total.dynamic_write_energy_j += m.dynamic_write_energy_j;
    total.area_um2 += m.area_um2;
  }
  return total;
}

CacheMetrics CacheModel::evaluate_uniform(const tech::DeviceKnobs& knobs,
                                          AreaCoupling coupling) const {
  return evaluate(ComponentAssignment(knobs), coupling);
}

}  // namespace nanocache::cachemodel
