// Tag-path component models for split-tag organizations: the tag array
// (component kTagArray) and the way comparators + select mux
// (kWayComparators).
//
// In the paper's fixed organization the tag bits are folded into the data
// array's bit count and the tag path never appears on the critical path.
// The design-space API exposes associativity as a knob, which makes the
// tag path a first-class power/delay contributor: every way's tag is read
// and compared on each access, the matching way drives the output mux, and
// all tag cells plus all comparator gates leak whether or not they match.
//
// Critical path through the tag array mirrors the data array: wordline
// driver -> wordline RC across all ways' tag columns -> bitline discharge
// -> sense amp.  A fully-associative organization degenerates to a single
// logical row spanning every block's tag — the CAM-style broadcast that
// makes large FA caches slow and hot.
#pragma once

#include "cachemodel/component.h"
#include "cachemodel/organization.h"

namespace nanocache::cachemodel {

class TagArrayModel {
 public:
  TagArrayModel(const CacheOrganization& org, const tech::DeviceModel& dev);

  ComponentMetrics evaluate(const tech::DeviceKnobs& knobs) const;
  /// Batched-kernel entry point (see the view contract in tech/device.h).
  ComponentMetrics evaluate(const tech::BoundDevice& bdev) const;

  // Exposed stages for tests and diagnostics.
  double wordline_delay_s(const tech::DeviceKnobs& knobs) const;
  double bitline_delay_s(const tech::DeviceKnobs& knobs) const;
  double senseamp_delay_s(const tech::DeviceKnobs& knobs) const;

  std::uint64_t cell_count() const { return cell_count_; }
  std::uint64_t senseamp_count() const { return senseamp_count_; }

 private:
  template <typename Dev>
  ComponentMetrics evaluate_impl(const Dev& dev) const;
  template <typename Dev>
  double wordline_delay_impl(const Dev& dev) const;
  template <typename Dev>
  double bitline_delay_impl(const Dev& dev) const;
  template <typename Dev>
  double senseamp_delay_impl(const Dev& dev) const;

  CacheOrganization org_;
  const tech::DeviceModel& dev_;
  std::uint64_t rows_ = 0;        ///< tag rows (1 when fully associative)
  std::uint64_t cols_ = 0;        ///< ways * tag bits per block
  std::uint64_t cell_count_ = 0;  ///< total tag bits
  std::uint64_t senseamp_count_ = 0;
  double wl_driver_width_um_ = 0.0;
};

/// Tag match gates plus the way-select output mux.  One comparator per way
/// XORs the stored tag against the address tag; the match lines combine
/// into way-select signals that steer the data array's read-out onto the
/// data bus.
class WayComparatorModel {
 public:
  WayComparatorModel(const CacheOrganization& org,
                     const tech::DeviceModel& dev);

  ComponentMetrics evaluate(const tech::DeviceKnobs& knobs) const;
  /// Batched-kernel entry point (see the view contract in tech/device.h).
  ComponentMetrics evaluate(const tech::BoundDevice& bdev) const;

 private:
  template <typename Dev>
  ComponentMetrics evaluate_impl(const Dev& dev) const;

  CacheOrganization org_;
  const tech::DeviceModel& dev_;
  std::uint64_t ways_ = 0;
  std::uint32_t tag_bits_ = 0;
};

/// Width of one tag comparator (XOR/XNOR) bit-slice gate, um.
inline constexpr double kComparatorGateWidthUm = 1.5;
/// Width of the per-way match-combine (wide NOR) gate, um.
inline constexpr double kMatchCombineWidthUm = 3.0;
/// Width of one way-select mux pass gate on the data bus, um.
inline constexpr double kWayMuxGateWidthUm = 2.0;

}  // namespace nanocache::cachemodel
