// Memory-cell array + sense-amplifier component model.
//
// Critical path through this component: wordline driver -> wordline RC
// (loaded by the pass gates of every cell in the selected subarray row) ->
// bitline discharge by the selected cell to the sense swing -> sense
// amplifier resolution.  Leakage: every cell in the cache (data + tags),
// the wordline drivers, and the sense amplifiers.
#pragma once

#include "cachemodel/component.h"
#include "cachemodel/organization.h"

namespace nanocache::cachemodel {

class ArrayModel {
 public:
  ArrayModel(const CacheOrganization& org, const tech::DeviceModel& dev);

  ComponentMetrics evaluate(const tech::DeviceKnobs& knobs) const;
  /// Batched-kernel entry point: same body as evaluate(knobs), served from
  /// a knob-bound device (see the view contract in tech/device.h).
  ComponentMetrics evaluate(const tech::BoundDevice& bdev) const;

  // Exposed stages for tests and diagnostics.
  double wordline_delay_s(const tech::DeviceKnobs& knobs) const;
  double bitline_delay_s(const tech::DeviceKnobs& knobs) const;
  double senseamp_delay_s(const tech::DeviceKnobs& knobs) const;

  std::uint64_t cell_count() const { return cell_count_; }
  std::uint64_t senseamp_count() const { return senseamp_count_; }

  /// Data-array footprint at the given Tox, um^2 (tags included, plus a
  /// fixed periphery overhead factor).  Used for bus-length coupling.
  double area_um2(double tox_a) const;

 private:
  template <typename Dev>
  ComponentMetrics evaluate_impl(const Dev& dev) const;
  template <typename Dev>
  double wordline_delay_impl(const Dev& dev) const;
  template <typename Dev>
  double bitline_delay_impl(const Dev& dev) const;
  template <typename Dev>
  double senseamp_delay_impl(const Dev& dev) const;
  template <typename Dev>
  double area_impl(const Dev& dev) const;

  CacheOrganization org_;
  const tech::DeviceModel& dev_;
  std::uint64_t cell_count_ = 0;
  std::uint64_t senseamp_count_ = 0;
  double wl_driver_width_um_ = 0.0;
};

/// Degree of column multiplexing in front of each sense amp.
inline constexpr std::uint32_t kColumnMuxDegree = 4;
/// Equivalent leaking width of one sense amplifier, um (nominal geometry).
inline constexpr double kSenseAmpLeakWidthUm = 6.0;
/// Sense-amp input capacitance, F.
inline constexpr double kSenseAmpCapF = 25e-15;
/// Sense resolution margin multiplier (timing guard band).
inline constexpr double kSenseMargin = 4.0;
/// Area overhead multiplier for intra-array periphery (precharge, mux).
inline constexpr double kArrayAreaOverhead = 1.15;
/// Height of the sense-amp/precharge strip under each subarray, um.
inline constexpr double kSenseStripHeightUm = 30.0;
/// Width of the local wordline-drive/decode strip beside each subarray, um.
inline constexpr double kDecodeStripWidthUm = 20.0;

}  // namespace nanocache::cachemodel
