#include "cachemodel/tagpath.h"

#include <algorithm>
#include <cmath>

#include "cachemodel/array.h"
#include "tech/delay.h"
#include "util/error.h"

namespace nanocache::cachemodel {

TagArrayModel::TagArrayModel(const CacheOrganization& org,
                             const tech::DeviceModel& dev)
    : org_(org), dev_(dev) {
  org_.validate();
  NC_REQUIRE(org_.split_tag, "tag array model requires a split-tag layout");
  rows_ = org_.fully_associative ? 1 : org_.num_sets();
  cols_ = org_.ways() * org_.tag_bits_per_block();
  cell_count_ = rows_ * cols_;
  senseamp_count_ = std::max<std::uint64_t>(1, cols_ / kColumnMuxDegree);
  wl_driver_width_um_ = 2.0 + 0.05 * static_cast<double>(cols_);
}

template <typename Dev>
double TagArrayModel::wordline_delay_impl(const Dev& dev) const {
  const auto& p = dev.params();
  const double s = dev.geometry_scale();
  const double cols = static_cast<double>(cols_);
  const double wl_length = cols * dev.cell_width_um();
  const double c_wire = wl_length * p.cwire_f_per_um;
  const double r_wire = wl_length * p.rwire_ohm_per_um;
  const double c_cells = cols * 2.0 * dev.gate_cap_f(p.wcell_pass_um * s);
  const double r_drv = dev.effective_resistance_ohm(wl_driver_width_um_);
  return tech::distributed_rc_delay(r_drv, r_wire, c_wire, c_cells);
}

template <typename Dev>
double TagArrayModel::bitline_delay_impl(const Dev& dev) const {
  const auto& p = dev.params();
  const double s = dev.geometry_scale();
  const double rows = static_cast<double>(rows_);
  const double bl_length = rows * dev.cell_height_um();
  const double c_bitline = rows * dev.drain_cap_f(p.wcell_pass_um * s) +
                           bl_length * p.cwire_f_per_um;
  const double i_cell = dev.cell_read_current_a();
  NC_REQUIRE(i_cell > 0.0, "cell read current must be positive");
  return c_bitline * p.bitline_swing_v / i_cell;
}

template <typename Dev>
double TagArrayModel::senseamp_delay_impl(const Dev& dev) const {
  const double r_amp = dev.effective_resistance_ohm(2.0);
  return kSenseMargin * 0.69 * r_amp * kSenseAmpCapF;
}

double TagArrayModel::wordline_delay_s(const tech::DeviceKnobs& knobs) const {
  return wordline_delay_impl(tech::DeviceView(dev_, knobs));
}

double TagArrayModel::bitline_delay_s(const tech::DeviceKnobs& knobs) const {
  return bitline_delay_impl(tech::DeviceView(dev_, knobs));
}

double TagArrayModel::senseamp_delay_s(const tech::DeviceKnobs& knobs) const {
  return senseamp_delay_impl(tech::DeviceView(dev_, knobs));
}

template <typename Dev>
ComponentMetrics TagArrayModel::evaluate_impl(const Dev& dev) const {
  const auto& p = dev.params();
  ComponentMetrics m;
  m.delay_s = (wordline_delay_impl(dev) + bitline_delay_impl(dev) +
               senseamp_delay_impl(dev)) *
              p.delay_calibration;

  // --- leakage: every tag cell, sense amps, idle wordline drivers ---
  const auto cell = dev.cell_leakage_split_w();
  const auto sa = dev.off_power_split_w(kSenseAmpLeakWidthUm);
  const auto wl = dev.off_power_split_w(wl_driver_width_um_ * 0.5);
  const double cells = static_cast<double>(cell_count_);
  const double sas = static_cast<double>(senseamp_count_);
  const double n_wl = static_cast<double>(rows_);
  m.leakage_sub_w = cells * cell.subthreshold_w + sas * sa.subthreshold_w +
                    n_wl * wl.subthreshold_w;
  m.leakage_gate_w =
      cells * cell.gate_w + sas * sa.gate_w + n_wl * wl.gate_w;
  m.leakage_w = m.leakage_sub_w + m.leakage_gate_w;

  // --- dynamic energy per access: every way's tag is read ---
  const double s = dev.geometry_scale();
  const double cols = static_cast<double>(cols_);
  const double rows = static_cast<double>(rows_);
  const double wl_length = cols * dev.cell_width_um();
  const double c_wl = wl_length * p.cwire_f_per_um +
                      cols * 2.0 * dev.gate_cap_f(p.wcell_pass_um * s);
  const double e_wordline = c_wl * p.vdd_v * p.vdd_v;
  const double c_bl = rows * dev.drain_cap_f(p.wcell_pass_um * s) +
                      rows * dev.cell_height_um() * p.cwire_f_per_um;
  const double e_bitlines = cols * c_bl * p.vdd_v * p.bitline_swing_v;
  const double e_sense =
      static_cast<double>(senseamp_count_) * kSenseAmpCapF * p.vdd_v * p.vdd_v;
  m.dynamic_energy_j = e_wordline + e_bitlines + e_sense;
  // Tag writes happen only on fills/evictions, off the read critical path;
  // charge them like reads so per-access accounting stays conservative.
  m.dynamic_write_energy_j = m.dynamic_energy_j;

  const double cell_area = dev.cell_area_um2();
  const double sub_w = cols * dev.cell_width_um();
  const double sub_h = rows * dev.cell_height_um();
  m.area_um2 = cells * cell_area * kArrayAreaOverhead +
               sub_w * kSenseStripHeightUm + sub_h * kDecodeStripWidthUm;
  return m;
}

ComponentMetrics TagArrayModel::evaluate(
    const tech::DeviceKnobs& knobs) const {
  return evaluate_impl(tech::DeviceView(dev_, knobs));
}

ComponentMetrics TagArrayModel::evaluate(const tech::BoundDevice& bdev) const {
  return evaluate_impl(bdev);
}

WayComparatorModel::WayComparatorModel(const CacheOrganization& org,
                                       const tech::DeviceModel& dev)
    : org_(org), dev_(dev) {
  org_.validate();
  NC_REQUIRE(org_.split_tag,
             "way comparator model requires a split-tag layout");
  ways_ = org_.ways();
  tag_bits_ = org_.tag_bits_per_block();
}

template <typename Dev>
ComponentMetrics WayComparatorModel::evaluate_impl(const Dev& dev) const {
  const auto& p = dev.params();
  ComponentMetrics m;

  const double ways = static_cast<double>(ways_);
  const double bits = static_cast<double>(tag_bits_);

  // Stage 1: XOR bit-slice drives the wide match-combine gate.  Series
  // stack in the XOR costs ~2x the unit resistance.
  const double r_xor =
      dev.effective_resistance_ohm(kComparatorGateWidthUm) * 2.0;
  const double c_combine_in = dev.gate_cap_f(kMatchCombineWidthUm);
  const auto st1 = tech::gate_stage(
      r_xor, c_combine_in + dev.drain_cap_f(kComparatorGateWidthUm), 0.0);

  // Stage 2: match-combine (fan-in grows with tag width) raises the way
  // select, loaded by this way's mux pass gates across the data bus.
  const double fanin_penalty = std::max(1.0, bits / 8.0);
  const double r_combine =
      dev.effective_resistance_ohm(kMatchCombineWidthUm) * fanin_penalty;
  const double c_mux_gates =
      static_cast<double>(org_.data_bus_bits) *
      dev.gate_cap_f(kWayMuxGateWidthUm);
  const auto st2 = tech::gate_stage(
      r_combine, c_mux_gates + dev.drain_cap_f(kMatchCombineWidthUm),
      st1.out_ramp_s);

  // Stage 3: the selected mux pass gate steers its way's data onto the bus.
  const double r_mux = dev.effective_resistance_ohm(kWayMuxGateWidthUm);
  const double c_bus_in = ways * dev.drain_cap_f(kWayMuxGateWidthUm);
  const auto st3 = tech::gate_stage(r_mux, c_bus_in, st2.out_ramp_s);

  m.delay_s =
      (st1.delay_s + st2.delay_s + st3.delay_s) * p.delay_calibration;

  // --- leakage: all bit-slices, combine gates, and mux pass gates ---
  const double n_xor = ways * bits;
  const double n_mux = ways * static_cast<double>(org_.data_bus_bits);
  const auto xor_leak = dev.off_power_split_w(kComparatorGateWidthUm * 0.5);
  const auto combine_leak = dev.off_power_split_w(kMatchCombineWidthUm * 0.5);
  const auto mux_leak = dev.off_power_split_w(kWayMuxGateWidthUm * 0.5);
  m.leakage_sub_w = n_xor * xor_leak.subthreshold_w +
                    ways * combine_leak.subthreshold_w +
                    n_mux * mux_leak.subthreshold_w;
  m.leakage_gate_w = n_xor * xor_leak.gate_w + ways * combine_leak.gate_w +
                     n_mux * mux_leak.gate_w;
  m.leakage_w = m.leakage_sub_w + m.leakage_gate_w;

  // --- dynamic energy: about half the comparator inputs toggle per access,
  // one way select rises and one falls, one mux column switches ---
  const double c_xor_in = dev.gate_cap_f(kComparatorGateWidthUm);
  const double e_compare = 0.5 * n_xor * c_xor_in * p.vdd_v * p.vdd_v;
  const double e_select =
      2.0 * (c_combine_in + c_mux_gates / ways) * p.vdd_v * p.vdd_v;
  const double e_mux = c_bus_in * p.vdd_v * p.vdd_v;
  m.dynamic_energy_j = e_compare + e_select + e_mux;
  m.dynamic_write_energy_j = m.dynamic_energy_j;

  const double total_width =
      n_xor * kComparatorGateWidthUm + ways * kMatchCombineWidthUm +
      n_mux * kWayMuxGateWidthUm;
  m.area_um2 = total_width * dev.leff_um() * 8.0;
  return m;
}

ComponentMetrics WayComparatorModel::evaluate(
    const tech::DeviceKnobs& knobs) const {
  return evaluate_impl(tech::DeviceView(dev_, knobs));
}

ComponentMetrics WayComparatorModel::evaluate(
    const tech::BoundDevice& bdev) const {
  return evaluate_impl(bdev);
}

}  // namespace nanocache::cachemodel
