// Process-variation analysis: Monte-Carlo evaluation of a knob assignment
// under Gaussian Vth/Tox perturbations.  Leakage is exponential in both
// knobs, so variation skews it upward — the nominal numbers the paper (and
// our optimizers) report are optimistic by a quantifiable margin, and
// timing yield is what a shipped assignment must additionally satisfy.
#pragma once

#include <cstdint>

#include "cachemodel/cache_model.h"

namespace nanocache::cachemodel {

struct VariationParams {
  /// Per-component global-variation sigmas (all devices of a component
  /// shift together; within-component mismatch averages out across the
  /// millions of cells).
  double vth_sigma_v = 0.020;
  double tox_sigma_a = 0.15;
  int samples = 500;
};

/// Summary statistics of a Monte-Carlo metric sample.
struct Distribution {
  double mean = 0.0;
  double stddev = 0.0;
  double p95 = 0.0;  ///< 95th percentile
  double min = 0.0;
  double max = 0.0;
};

struct VariationResult {
  Distribution leakage_w;
  Distribution access_time_s;
  /// Fraction of samples meeting the delay constraint (1.0 when no
  /// constraint was given).
  double timing_yield = 1.0;
  int samples = 0;
};

/// Monte-Carlo the assignment under variation.  `delay_constraint_s` <= 0
/// disables the yield check.  Deterministic for a given seed.
VariationResult monte_carlo(const CacheModel& model,
                            const ComponentAssignment& assignment,
                            const VariationParams& params,
                            double delay_constraint_s = 0.0,
                            std::uint64_t seed = 12345);

}  // namespace nanocache::cachemodel
