#include "cachemodel/variation.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/error.h"
#include "util/rng.h"
#include "util/stats.h"

namespace nanocache::cachemodel {

namespace {

/// Box-Muller standard normal from the deterministic Rng.
double standard_normal(Rng& rng) {
  double u1 = rng.uniform();
  if (u1 <= 1e-300) u1 = 1e-300;
  const double u2 = rng.uniform();
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
}

Distribution summarize(std::vector<double> values) {
  Distribution d;
  d.mean = math::mean(values);
  d.stddev = math::sample_stddev(values);
  d.p95 = math::percentile(values, 0.95);
  std::sort(values.begin(), values.end());
  d.min = values.front();
  d.max = values.back();
  return d;
}

}  // namespace

VariationResult monte_carlo(const CacheModel& model,
                            const ComponentAssignment& assignment,
                            const VariationParams& params,
                            double delay_constraint_s, std::uint64_t seed) {
  NC_REQUIRE(params.samples >= 2, "variation needs >= 2 samples");
  NC_REQUIRE(params.vth_sigma_v >= 0.0 && params.tox_sigma_a >= 0.0,
             "variation sigmas must be non-negative");

  const auto& tech_params = model.device().params();
  Rng rng(seed);
  std::vector<double> leak;
  std::vector<double> delay;
  leak.reserve(static_cast<std::size_t>(params.samples));
  delay.reserve(static_cast<std::size_t>(params.samples));
  int meets = 0;

  for (int s = 0; s < params.samples; ++s) {
    ComponentAssignment shifted = assignment;
    for (ComponentKind kind : kAllComponents) {
      tech::DeviceKnobs k = assignment.get(kind);
      k.vth_v += params.vth_sigma_v * standard_normal(rng);
      k.tox_a += params.tox_sigma_a * standard_normal(rng);
      // Physical floors/ceilings (NOT the menu window — silicon does not
      // respect the designer's grid).
      k.vth_v = std::clamp(k.vth_v, 0.05, tech_params.vdd_v - 0.05);
      k.tox_a = std::max(k.tox_a, 5.0);
      shifted.set(kind, k);
    }
    const auto m = model.evaluate(shifted);
    leak.push_back(m.leakage_w);
    delay.push_back(m.access_time_s);
    if (delay_constraint_s <= 0.0 ||
        m.access_time_s <= delay_constraint_s) {
      ++meets;
    }
  }

  VariationResult r;
  r.leakage_w = summarize(std::move(leak));
  r.access_time_s = summarize(std::move(delay));
  r.timing_yield = static_cast<double>(meets) / params.samples;
  r.samples = params.samples;
  return r;
}

}  // namespace nanocache::cachemodel
