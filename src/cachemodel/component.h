// The paper's four-way component decomposition of a cache (Section 3) and
// the per-component metric/knob containers shared by all structural models.
#pragma once

#include <array>
#include <cstddef>
#include <string_view>

#include "tech/device.h"

namespace nanocache::cachemodel {

/// "Internally, the cache consists of four components: memory cell array and
/// sense amplifier, decoder, address bus drivers, and data bus drivers."
///
/// Organizations with an explicit tag path (set-associative designs built by
/// extended_organization with split_tag) add two more components: the tag
/// array and the way comparators + select mux.  The paper's four components
/// keep indices 0-3 so all fixed-organization code is untouched.
enum class ComponentKind : std::size_t {
  kCellArray = 0,       ///< cells + wordline drive + bitlines + sense amps
  kDecoder = 1,         ///< predecoders and row-select gates
  kAddressDrivers = 2,  ///< chains driving the address distribution bus
  kDataDrivers = 3,     ///< chains driving the data read-out bus
  kTagArray = 4,        ///< tag cells + tag wordline/bitline + tag sense amps
  kWayComparators = 5,  ///< tag match gates + way-select output mux
};

inline constexpr std::size_t kNumComponents = 4;

/// Capacity of per-component containers when the tag path is modeled.
inline constexpr std::size_t kMaxComponents = 6;

inline constexpr std::array<ComponentKind, kNumComponents> kAllComponents = {
    ComponentKind::kCellArray, ComponentKind::kDecoder,
    ComponentKind::kAddressDrivers, ComponentKind::kDataDrivers};

/// All six components in critical-path order for split-tag organizations.
inline constexpr std::array<ComponentKind, kMaxComponents>
    kExtendedComponents = {ComponentKind::kCellArray, ComponentKind::kDecoder,
                           ComponentKind::kAddressDrivers,
                           ComponentKind::kDataDrivers,
                           ComponentKind::kTagArray,
                           ComponentKind::kWayComparators};

std::string_view component_name(ComponentKind kind);

/// Figures of merit of one component at one knob setting.
struct ComponentMetrics {
  double delay_s = 0.0;           ///< contribution to the access critical path
  double leakage_w = 0.0;         ///< total static power (sub + gate)
  double leakage_sub_w = 0.0;     ///< subthreshold share of leakage_w
  double leakage_gate_w = 0.0;    ///< gate-tunnelling share of leakage_w
  double dynamic_energy_j = 0.0;  ///< switching energy per read access
  /// Switching energy per write access.  Differs from reads only in the
  /// cell array (written columns swing full rail instead of the sense
  /// margin); equal to dynamic_energy_j for the other components.
  double dynamic_write_energy_j = 0.0;
  double area_um2 = 0.0;
};

/// A (Vth, Tox) pair per component — the decision vector of the paper's
/// optimization problem.
class ComponentAssignment {
 public:
  ComponentAssignment() = default;

  /// Uniform assignment (the paper's Scheme III).
  explicit ComponentAssignment(const tech::DeviceKnobs& all) {
    knobs_.fill(all);
  }

  /// Array/periphery split (the paper's Scheme II): one pair for the cell
  /// array (and tag array, which shares its cell design), one shared by the
  /// logic-style components (decoder, both driver groups, comparators).
  static ComponentAssignment split(const tech::DeviceKnobs& array,
                                   const tech::DeviceKnobs& periphery) {
    ComponentAssignment a;
    a.set(ComponentKind::kCellArray, array);
    a.set(ComponentKind::kDecoder, periphery);
    a.set(ComponentKind::kAddressDrivers, periphery);
    a.set(ComponentKind::kDataDrivers, periphery);
    a.set(ComponentKind::kTagArray, array);
    a.set(ComponentKind::kWayComparators, periphery);
    return a;
  }

  const tech::DeviceKnobs& get(ComponentKind kind) const {
    return knobs_[static_cast<std::size_t>(kind)];
  }
  void set(ComponentKind kind, const tech::DeviceKnobs& knobs) {
    knobs_[static_cast<std::size_t>(kind)] = knobs;
  }

  /// Power-gating state: a gated component spends its idle time in a
  /// sleep state that retains only a fraction of its leakage.
  bool gated(ComponentKind kind) const {
    return gated_[static_cast<std::size_t>(kind)];
  }
  void set_gated(ComponentKind kind, bool gated) {
    gated_[static_cast<std::size_t>(kind)] = gated;
  }

  const tech::DeviceKnobs& array() const {
    return get(ComponentKind::kCellArray);
  }

  friend bool operator==(const ComponentAssignment&,
                         const ComponentAssignment&) = default;

 private:
  std::array<tech::DeviceKnobs, kMaxComponents> knobs_{};
  std::array<bool, kMaxComponents> gated_{};
};

/// Whole-cache metrics for a full assignment.
struct CacheMetrics {
  double access_time_s = 0.0;     ///< sum of component delays (paper Sec. 3)
  double leakage_w = 0.0;         ///< sum of component leakage
  double leakage_sub_w = 0.0;     ///< subthreshold share
  double leakage_gate_w = 0.0;    ///< gate-tunnelling share
  double dynamic_energy_j = 0.0;        ///< per-read switching energy
  double dynamic_write_energy_j = 0.0;  ///< per-write switching energy
  double area_um2 = 0.0;
  std::array<ComponentMetrics, kMaxComponents> per_component{};
};

}  // namespace nanocache::cachemodel
