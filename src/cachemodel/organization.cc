#include "cachemodel/organization.h"

#include <bit>
#include <cmath>
#include <limits>
#include <sstream>

#include "cachemodel/cache_model.h"
#include "util/error.h"
#include "util/table.h"

namespace nanocache::cachemodel {

namespace {
bool is_pow2(std::uint64_t v) { return v != 0 && (v & (v - 1)) == 0; }
std::uint32_t log2u(std::uint64_t v) {
  return static_cast<std::uint32_t>(std::bit_width(v) - 1);
}
}  // namespace

std::uint64_t CacheOrganization::num_sets() const {
  return size_bytes / (static_cast<std::uint64_t>(block_bytes) * associativity);
}

std::uint64_t CacheOrganization::data_bits() const { return size_bytes * 8; }

std::uint32_t CacheOrganization::tag_bits_per_block() const {
  const std::uint32_t offset = log2u(block_bytes);
  // A fully-associative cache has no index field: every address bit above
  // the offset participates in the tag match.
  const std::uint32_t index = fully_associative ? 0 : log2u(num_sets());
  NC_REQUIRE(address_bits > offset + index, "address too narrow for cache");
  return address_bits - offset - index + 2;  // +valid +dirty
}

std::uint64_t CacheOrganization::total_bits() const {
  return data_bits() +
         num_sets() * associativity * tag_bits_per_block();
}

std::uint64_t CacheOrganization::array_bits() const {
  return split_tag ? data_bits() : total_bits();
}

std::uint64_t CacheOrganization::ways() const {
  return fully_associative
             ? size_bytes / block_bytes
             : static_cast<std::uint64_t>(associativity);
}

std::uint64_t CacheOrganization::rows_per_subarray() const {
  return num_sets() / (static_cast<std::uint64_t>(ndbl) * nspd);
}

std::uint64_t CacheOrganization::cols_per_subarray() const {
  return static_cast<std::uint64_t>(block_bytes) * 8 * associativity * nspd /
         ndwl;
}

std::uint32_t CacheOrganization::row_decode_bits() const {
  return log2u(rows_per_subarray());
}

void CacheOrganization::validate() const {
  NC_REQUIRE(is_pow2(size_bytes), "cache size must be a power of two");
  NC_REQUIRE(is_pow2(block_bytes) && block_bytes >= 8,
             "block size must be a power of two >= 8");
  NC_REQUIRE(is_pow2(associativity), "associativity must be a power of two");
  NC_REQUIRE(size_bytes >=
                 static_cast<std::uint64_t>(block_bytes) * associativity,
             "cache must hold at least one set");
  NC_REQUIRE(is_pow2(ndwl) && is_pow2(ndbl) && is_pow2(nspd),
             "partition factors must be powers of two");
  NC_REQUIRE(num_sets() % (static_cast<std::uint64_t>(ndbl) * nspd) == 0,
             "Ndbl*Nspd must divide the set count");
  NC_REQUIRE(static_cast<std::uint64_t>(block_bytes) * 8 * associativity *
                     nspd % ndwl == 0,
             "Ndwl must divide the row width");
  NC_REQUIRE(rows_per_subarray() >= 8, "subarray needs >= 8 rows");
  NC_REQUIRE(cols_per_subarray() >= 16, "subarray needs >= 16 columns");
  NC_REQUIRE(address_bits >= 16 && address_bits <= 64,
             "address width out of range");
  NC_REQUIRE(data_bus_bits >= 8 && is_pow2(data_bus_bits),
             "data bus width must be a power of two >= 8");
  NC_REQUIRE(is_pow2(banks) && banks <= 8,
             "bank count must be a power of two <= 8");
  NC_REQUIRE(!fully_associative || associativity == 1,
             "fully-associative layout stores associativity == 1");
}

std::string CacheOrganization::describe() const {
  std::ostringstream os;
  os << fmt_bytes(size_bytes) << " ";
  if (fully_associative) {
    os << "fully-assoc ";
  } else {
    os << associativity << "-way ";
  }
  os << block_bytes << "B-block (Ndwl=" << ndwl << " Ndbl=" << ndbl
     << " Nspd=" << nspd << ", " << num_subarrays() << "x"
     << rows_per_subarray() << "r*" << cols_per_subarray() << "c)";
  if (banks > 1) {
    os << " x" << banks << "banks";
  }
  return os.str();
}

CacheOrganization optimal_partition(CacheOrganization base,
                                    const tech::DeviceModel& dev) {
  const tech::DeviceKnobs nominal{0.30, dev.params().tox_nominal_a};
  CacheOrganization best = base;
  double best_cost = std::numeric_limits<double>::infinity();
  bool found = false;

  for (std::uint32_t ndwl = 1; ndwl <= 32; ndwl *= 2) {
    for (std::uint32_t ndbl = 1; ndbl <= 32; ndbl *= 2) {
      for (std::uint32_t nspd = 1; nspd <= 8; nspd *= 2) {
        CacheOrganization cand = base;
        cand.ndwl = ndwl;
        cand.ndbl = ndbl;
        cand.nspd = nspd;
        try {
          cand.validate();
        } catch (const Error&) {
          continue;
        }
        // Favour compact subarrays: CACTI-like bound on physical tile size.
        if (cand.rows_per_subarray() > 1024 ||
            cand.cols_per_subarray() > 1024) {
          continue;
        }
        CacheModel model(cand, tech::DeviceModel(dev.params()));
        const auto metrics = model.evaluate_uniform(nominal);
        // CACTI-style composite objective: delay-squared weighted by area,
        // so partitioning stops when extra subarrays buy little speed.
        const double cost = metrics.access_time_s * metrics.access_time_s *
                            metrics.area_um2;
        if (!found || cost < best_cost) {
          best = cand;
          best_cost = cost;
          found = true;
        }
      }
    }
  }
  NC_REQUIRE(found, "no valid physical partition for this organization");
  return best;
}

CacheOrganization l1_organization(std::uint64_t size_bytes,
                                  const tech::DeviceModel& dev) {
  CacheOrganization org;
  org.size_bytes = size_bytes;
  org.block_bytes = 32;
  org.associativity = 2;
  org.data_bus_bits = 64;
  return optimal_partition(org, dev);
}

CacheOrganization l2_organization(std::uint64_t size_bytes,
                                  const tech::DeviceModel& dev) {
  CacheOrganization org;
  org.size_bytes = size_bytes;
  org.block_bytes = 64;
  org.associativity = 8;
  org.data_bus_bits = 128;
  return optimal_partition(org, dev);
}

CacheOrganization extended_organization(std::uint64_t size_bytes, bool is_l2,
                                        int associativity, std::uint32_t banks,
                                        const tech::DeviceModel& dev) {
  NC_REQUIRE(associativity == -1 || associativity == 1 || associativity == 2 ||
                 associativity == 4 || associativity == 8,
             "associativity must be 1, 2, 4, 8, or -1 (fully associative)");
  NC_REQUIRE(is_pow2(banks) && banks <= 8,
             "bank count must be a power of two <= 8");
  CacheOrganization org;
  org.size_bytes = size_bytes;
  org.block_bytes = is_l2 ? 64 : 32;
  org.data_bus_bits = is_l2 ? 128 : 64;
  if (associativity == -1) {
    // Physical layout of one block per row slot; the flag widens the tag
    // match to every block.
    org.associativity = 1;
    org.fully_associative = true;
  } else {
    org.associativity = static_cast<std::uint32_t>(associativity);
  }
  org.banks = banks;
  org.split_tag = true;
  return optimal_partition(org, dev);
}

}  // namespace nanocache::cachemodel
