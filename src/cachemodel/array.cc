#include "cachemodel/array.h"

#include <algorithm>
#include <cmath>

#include "tech/delay.h"
#include "util/error.h"

namespace nanocache::cachemodel {

ArrayModel::ArrayModel(const CacheOrganization& org,
                       const tech::DeviceModel& dev)
    : org_(org), dev_(dev) {
  org_.validate();
  cell_count_ = org_.array_bits();
  // One sense amp per kColumnMuxDegree columns in every subarray.
  senseamp_count_ =
      org_.cols_per_subarray() / kColumnMuxDegree * org_.num_subarrays();
  if (senseamp_count_ == 0) senseamp_count_ = org_.num_subarrays();
  // Wordline driver sized proportionally to the columns it drives.
  wl_driver_width_um_ =
      2.0 + 0.05 * static_cast<double>(org_.cols_per_subarray());
}

template <typename Dev>
double ArrayModel::wordline_delay_impl(const Dev& dev) const {
  const auto& p = dev.params();
  const double s = dev.geometry_scale();
  const double cols = static_cast<double>(org_.cols_per_subarray());
  const double wl_length = cols * dev.cell_width_um();
  const double c_wire = wl_length * p.cwire_f_per_um;
  const double r_wire = wl_length * p.rwire_ohm_per_um;
  // Two pass-gate gates hang off the wordline per cell (per column).
  const double c_cells = cols * 2.0 * dev.gate_cap_f(p.wcell_pass_um * s);
  const double r_drv = dev.effective_resistance_ohm(wl_driver_width_um_);
  return tech::distributed_rc_delay(r_drv, r_wire, c_wire, c_cells);
}

template <typename Dev>
double ArrayModel::bitline_delay_impl(const Dev& dev) const {
  const auto& p = dev.params();
  const double s = dev.geometry_scale();
  const double rows = static_cast<double>(org_.rows_per_subarray());
  const double bl_length = rows * dev.cell_height_um();
  const double c_bitline = rows * dev.drain_cap_f(p.wcell_pass_um * s) +
                           bl_length * p.cwire_f_per_um;
  const double i_cell = dev.cell_read_current_a();
  NC_REQUIRE(i_cell > 0.0, "cell read current must be positive");
  return c_bitline * p.bitline_swing_v / i_cell;
}

template <typename Dev>
double ArrayModel::senseamp_delay_impl(const Dev& dev) const {
  // Regenerative latch resolving a bitline_swing input to full rail;
  // modelled as a margin-multiplied RC of the amp's internal node.
  const double r_amp = dev.effective_resistance_ohm(2.0);
  return kSenseMargin * 0.69 * r_amp * kSenseAmpCapF;
}

template <typename Dev>
double ArrayModel::area_impl(const Dev& dev) const {
  const double cell_area = dev.cell_area_um2();
  const double cells =
      static_cast<double>(cell_count_) * cell_area * kArrayAreaOverhead;
  // Per-subarray periphery strips (sense amps/precharge along the width,
  // local decode along the height): this is what makes over-partitioning
  // expensive and drives the Ndwl/Ndbl search to realistic tiles.
  const double sub_w = static_cast<double>(org_.cols_per_subarray()) *
                       dev.cell_width_um();
  const double sub_h = static_cast<double>(org_.rows_per_subarray()) *
                       dev.cell_height_um();
  const double strips =
      org_.num_subarrays() * (sub_w * kSenseStripHeightUm +
                              sub_h * kDecodeStripWidthUm);
  return cells + strips;
}

double ArrayModel::wordline_delay_s(const tech::DeviceKnobs& knobs) const {
  return wordline_delay_impl(tech::DeviceView(dev_, knobs));
}

double ArrayModel::bitline_delay_s(const tech::DeviceKnobs& knobs) const {
  return bitline_delay_impl(tech::DeviceView(dev_, knobs));
}

double ArrayModel::senseamp_delay_s(const tech::DeviceKnobs& knobs) const {
  return senseamp_delay_impl(tech::DeviceView(dev_, knobs));
}

double ArrayModel::area_um2(double tox_a) const {
  tech::DeviceKnobs knobs;  // only the Tox component enters the geometry
  knobs.tox_a = tox_a;
  return area_impl(tech::DeviceView(dev_, knobs));
}

template <typename Dev>
ComponentMetrics ArrayModel::evaluate_impl(const Dev& dev) const {
  const auto& p = dev.params();
  ComponentMetrics m;
  m.delay_s = (wordline_delay_impl(dev) + bitline_delay_impl(dev) +
               senseamp_delay_impl(dev)) *
              p.delay_calibration;

  // --- leakage (kept split by mechanism for the breakdown analyses) ---
  const auto cell = dev.cell_leakage_split_w();
  const auto sa = dev.off_power_split_w(kSenseAmpLeakWidthUm);
  // One wordline driver per row per subarray; all but the selected one idle.
  const double n_wl_drivers = static_cast<double>(org_.rows_per_subarray()) *
                              org_.num_subarrays();
  const auto wl = dev.off_power_split_w(wl_driver_width_um_ * 0.5);
  const double cells = static_cast<double>(cell_count_);
  const double sas = static_cast<double>(senseamp_count_);
  m.leakage_sub_w = cells * cell.subthreshold_w + sas * sa.subthreshold_w +
                    n_wl_drivers * wl.subthreshold_w;
  m.leakage_gate_w =
      cells * cell.gate_w + sas * sa.gate_w + n_wl_drivers * wl.gate_w;
  m.leakage_w = m.leakage_sub_w + m.leakage_gate_w;

  // --- dynamic energy per read ---
  const double s = dev.geometry_scale();
  const double cols = static_cast<double>(org_.cols_per_subarray());
  const double rows = static_cast<double>(org_.rows_per_subarray());
  const double wl_length = cols * dev.cell_width_um();
  const double c_wl = wl_length * p.cwire_f_per_um +
                      cols * 2.0 * dev.gate_cap_f(p.wcell_pass_um * s);
  const double e_wordline = c_wl * p.vdd_v * p.vdd_v;
  const double c_bl = rows * dev.drain_cap_f(p.wcell_pass_um * s) +
                      rows * dev.cell_height_um() * p.cwire_f_per_um;
  // Every column of the selected subarray swings by the sense margin.
  const double e_bitlines = cols * c_bl * p.vdd_v * p.bitline_swing_v;
  const double sa_per_subarray = cols / kColumnMuxDegree;
  const double e_sense =
      sa_per_subarray * kSenseAmpCapF * p.vdd_v * p.vdd_v;
  m.dynamic_energy_j = e_wordline + e_bitlines + e_sense;
  // Writes drive the written word's bitline pairs across the full rail
  // (write drivers overpower the cells); the unwritten columns of the row
  // still precharge/sense as in a read, the written ones skip the sense
  // amps.
  const double written_cols =
      std::min(cols, static_cast<double>(org_.data_bus_bits));
  const double e_write_cols = written_cols * c_bl * p.vdd_v * p.vdd_v;
  const double e_sense_unwritten = e_sense * (1.0 - written_cols / cols);
  m.dynamic_write_energy_j =
      e_wordline + e_bitlines + e_sense_unwritten + e_write_cols;

  m.area_um2 = area_impl(dev);
  return m;
}

ComponentMetrics ArrayModel::evaluate(const tech::DeviceKnobs& knobs) const {
  return evaluate_impl(tech::DeviceView(dev_, knobs));
}

ComponentMetrics ArrayModel::evaluate(const tech::BoundDevice& bdev) const {
  return evaluate_impl(bdev);
}

}  // namespace nanocache::cachemodel
