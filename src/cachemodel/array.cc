#include "cachemodel/array.h"

#include <algorithm>
#include <cmath>

#include "tech/delay.h"
#include "util/error.h"

namespace nanocache::cachemodel {

ArrayModel::ArrayModel(const CacheOrganization& org,
                       const tech::DeviceModel& dev)
    : org_(org), dev_(dev) {
  org_.validate();
  cell_count_ = org_.array_bits();
  // One sense amp per kColumnMuxDegree columns in every subarray.
  senseamp_count_ =
      org_.cols_per_subarray() / kColumnMuxDegree * org_.num_subarrays();
  if (senseamp_count_ == 0) senseamp_count_ = org_.num_subarrays();
  // Wordline driver sized proportionally to the columns it drives.
  wl_driver_width_um_ =
      2.0 + 0.05 * static_cast<double>(org_.cols_per_subarray());
}

double ArrayModel::wordline_delay_s(const tech::DeviceKnobs& knobs) const {
  const auto& p = dev_.params();
  const double s = dev_.geometry_scale(knobs.tox_a);
  const double cols = static_cast<double>(org_.cols_per_subarray());
  const double wl_length = cols * dev_.cell_width_um(knobs.tox_a);
  const double c_wire = wl_length * p.cwire_f_per_um;
  const double r_wire = wl_length * p.rwire_ohm_per_um;
  // Two pass-gate gates hang off the wordline per cell (per column).
  const double c_cells =
      cols * 2.0 * dev_.gate_cap_f(p.wcell_pass_um * s, knobs.tox_a);
  const double r_drv =
      dev_.effective_resistance_ohm(wl_driver_width_um_, knobs);
  return tech::distributed_rc_delay(r_drv, r_wire, c_wire, c_cells);
}

double ArrayModel::bitline_delay_s(const tech::DeviceKnobs& knobs) const {
  const auto& p = dev_.params();
  const double s = dev_.geometry_scale(knobs.tox_a);
  const double rows = static_cast<double>(org_.rows_per_subarray());
  const double bl_length = rows * dev_.cell_height_um(knobs.tox_a);
  const double c_bitline = rows * dev_.drain_cap_f(p.wcell_pass_um * s) +
                           bl_length * p.cwire_f_per_um;
  const double i_cell = dev_.cell_read_current_a(knobs);
  NC_REQUIRE(i_cell > 0.0, "cell read current must be positive");
  return c_bitline * p.bitline_swing_v / i_cell;
}

double ArrayModel::senseamp_delay_s(const tech::DeviceKnobs& knobs) const {
  // Regenerative latch resolving a bitline_swing input to full rail;
  // modelled as a margin-multiplied RC of the amp's internal node.
  const double r_amp = dev_.effective_resistance_ohm(2.0, knobs);
  return kSenseMargin * 0.69 * r_amp * kSenseAmpCapF;
}

double ArrayModel::area_um2(double tox_a) const {
  const double cell_area = dev_.cell_area_um2(tox_a);
  const double cells =
      static_cast<double>(cell_count_) * cell_area * kArrayAreaOverhead;
  // Per-subarray periphery strips (sense amps/precharge along the width,
  // local decode along the height): this is what makes over-partitioning
  // expensive and drives the Ndwl/Ndbl search to realistic tiles.
  const double sub_w = static_cast<double>(org_.cols_per_subarray()) *
                       dev_.cell_width_um(tox_a);
  const double sub_h = static_cast<double>(org_.rows_per_subarray()) *
                       dev_.cell_height_um(tox_a);
  const double strips =
      org_.num_subarrays() * (sub_w * kSenseStripHeightUm +
                              sub_h * kDecodeStripWidthUm);
  return cells + strips;
}

ComponentMetrics ArrayModel::evaluate(const tech::DeviceKnobs& knobs) const {
  const auto& p = dev_.params();
  ComponentMetrics m;
  m.delay_s = (wordline_delay_s(knobs) + bitline_delay_s(knobs) +
               senseamp_delay_s(knobs)) *
              p.delay_calibration;

  // --- leakage (kept split by mechanism for the breakdown analyses) ---
  const auto cell = dev_.cell_leakage_split_w(knobs);
  const auto sa = dev_.off_power_split_w(kSenseAmpLeakWidthUm, knobs);
  // One wordline driver per row per subarray; all but the selected one idle.
  const double n_wl_drivers = static_cast<double>(org_.rows_per_subarray()) *
                              org_.num_subarrays();
  const auto wl = dev_.off_power_split_w(wl_driver_width_um_ * 0.5, knobs);
  const double cells = static_cast<double>(cell_count_);
  const double sas = static_cast<double>(senseamp_count_);
  m.leakage_sub_w = cells * cell.subthreshold_w + sas * sa.subthreshold_w +
                    n_wl_drivers * wl.subthreshold_w;
  m.leakage_gate_w =
      cells * cell.gate_w + sas * sa.gate_w + n_wl_drivers * wl.gate_w;
  m.leakage_w = m.leakage_sub_w + m.leakage_gate_w;

  // --- dynamic energy per read ---
  const double s = dev_.geometry_scale(knobs.tox_a);
  const double cols = static_cast<double>(org_.cols_per_subarray());
  const double rows = static_cast<double>(org_.rows_per_subarray());
  const double wl_length = cols * dev_.cell_width_um(knobs.tox_a);
  const double c_wl = wl_length * p.cwire_f_per_um +
                      cols * 2.0 * dev_.gate_cap_f(p.wcell_pass_um * s,
                                                   knobs.tox_a);
  const double e_wordline = c_wl * p.vdd_v * p.vdd_v;
  const double c_bl = rows * dev_.drain_cap_f(p.wcell_pass_um * s) +
                      rows * dev_.cell_height_um(knobs.tox_a) *
                          p.cwire_f_per_um;
  // Every column of the selected subarray swings by the sense margin.
  const double e_bitlines = cols * c_bl * p.vdd_v * p.bitline_swing_v;
  const double sa_per_subarray = cols / kColumnMuxDegree;
  const double e_sense =
      sa_per_subarray * kSenseAmpCapF * p.vdd_v * p.vdd_v;
  m.dynamic_energy_j = e_wordline + e_bitlines + e_sense;
  // Writes drive the written word's bitline pairs across the full rail
  // (write drivers overpower the cells); the unwritten columns of the row
  // still precharge/sense as in a read, the written ones skip the sense
  // amps.
  const double written_cols =
      std::min(cols, static_cast<double>(org_.data_bus_bits));
  const double e_write_cols = written_cols * c_bl * p.vdd_v * p.vdd_v;
  const double e_sense_unwritten = e_sense * (1.0 - written_cols / cols);
  m.dynamic_write_energy_j =
      e_wordline + e_bitlines + e_sense_unwritten + e_write_cols;

  m.area_um2 = area_um2(knobs.tox_a);
  return m;
}

}  // namespace nanocache::cachemodel
