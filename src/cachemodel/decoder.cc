#include "cachemodel/decoder.h"

#include <algorithm>
#include <cmath>

#include "tech/delay.h"
#include "util/error.h"

namespace nanocache::cachemodel {

DecoderModel::DecoderModel(const CacheOrganization& org,
                           const tech::DeviceModel& dev)
    : org_(org), dev_(dev) {
  org_.validate();
  decode_bits_ = org_.row_decode_bits();
  groups_ = (decode_bits_ + 2) / 3;
  row_gates_ = org_.rows_per_subarray() * org_.num_subarrays();
}

template <typename Dev>
ComponentMetrics DecoderModel::evaluate_impl(const Dev& dev) const {
  const auto& p = dev.params();
  ComponentMetrics m;

  const double rows = static_cast<double>(org_.rows_per_subarray());

  // Stage 1: NAND3 predecode gate driving its buffer.
  const double r_nand =
      dev.effective_resistance_ohm(kPredecodeNandWidthUm) * 1.5;
  const double c_buf_in = dev.gate_cap_f(kPredecodeBufferWidthUm);
  const auto st1 = tech::gate_stage(
      r_nand, c_buf_in + dev.drain_cap_f(kPredecodeNandWidthUm), 0.0);

  // Stage 2: predecode buffer drives a predecode line loaded by one input
  // of every row gate that listens to this group (rows/8 listeners per
  // subarray, across the subarrays in one bitline-segment column).
  const double listeners = std::max(1.0, rows / 8.0) * org_.ndwl;
  const double line_length = rows * dev.cell_height_um();
  const double c_line = listeners * dev.gate_cap_f(kRowGateWidthUm) +
                        line_length * p.cwire_f_per_um;
  const double r_line = line_length * p.rwire_ohm_per_um;
  const double r_buf = dev.effective_resistance_ohm(kPredecodeBufferWidthUm);
  const double d2 =
      tech::distributed_rc_delay(r_buf, r_line, line_length * p.cwire_f_per_um,
                                 c_line - line_length * p.cwire_f_per_um);

  // Stage 3: row combine gate (fan-in = number of groups) drives the
  // wordline-driver input (width grows with columns; approximate load).
  const double wl_in_width =
      0.5 * (2.0 + 0.05 * static_cast<double>(org_.cols_per_subarray()));
  const double r_row =
      dev.effective_resistance_ohm(kRowGateWidthUm) * groups_;
  const auto st3 = tech::gate_stage(
      r_row,
      dev.gate_cap_f(wl_in_width) + dev.drain_cap_f(kRowGateWidthUm),
      2.2 * r_buf * c_line);

  m.delay_s = (st1.delay_s + d2 + st3.delay_s) * p.delay_calibration;

  // --- leakage: all predecode gates + all row gates ---
  const double n_pre = static_cast<double>(groups_) * 8.0 *
                       org_.num_subarrays();
  const double pre_width = kPredecodeNandWidthUm + kPredecodeBufferWidthUm;
  const auto pre = dev.off_power_split_w(pre_width * 0.5);
  const auto row = dev.off_power_split_w(kRowGateWidthUm * 0.5);
  const double n_rows = static_cast<double>(row_gates_);
  m.leakage_sub_w = n_pre * pre.subthreshold_w + n_rows * row.subthreshold_w;
  m.leakage_gate_w = n_pre * pre.gate_w + n_rows * row.gate_w;
  m.leakage_w = m.leakage_sub_w + m.leakage_gate_w;

  // --- dynamic energy: switched predecode lines + selected row gates ---
  const double e_lines = 2.0 * groups_ * c_line * p.vdd_v * p.vdd_v;
  const double e_row = dev.gate_cap_f(wl_in_width) * p.vdd_v *
                       p.vdd_v * org_.ndwl;
  m.dynamic_energy_j = e_lines + e_row;
  m.dynamic_write_energy_j = m.dynamic_energy_j;

  // --- area: small next to the array; count gate footprints ---
  const double gate_area =
      (n_pre * pre_width + static_cast<double>(row_gates_) * kRowGateWidthUm) *
      dev.leff_um() * 8.0;  // layout overhead factor
  m.area_um2 = gate_area;
  return m;
}

ComponentMetrics DecoderModel::evaluate(const tech::DeviceKnobs& knobs) const {
  return evaluate_impl(tech::DeviceView(dev_, knobs));
}

ComponentMetrics DecoderModel::evaluate(const tech::BoundDevice& bdev) const {
  return evaluate_impl(bdev);
}

}  // namespace nanocache::cachemodel
