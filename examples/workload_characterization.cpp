// Scenario: characterize a new workload against the built-in suite —
// run it through the trace-driven two-level simulator, extract its
// miss-rate-vs-size curves, and fit the power-law model the exploration
// API consumes.
#include <iostream>

#include "sim/generators.h"
#include "sim/hierarchy.h"
#include "sim/missmodel.h"
#include "sim/suite.h"
#include "util/table.h"

using namespace nanocache;

namespace {

/// The "new" workload: a blocked matrix kernel — strided panel sweeps over
/// a working set that fits mid-size caches.
std::unique_ptr<sim::TraceSource> make_matrix_kernel(std::uint64_t seed) {
  std::vector<std::unique_ptr<sim::TraceSource>> parts;
  parts.push_back(
      std::make_unique<sim::StrideGenerator>(0x0, 8, 768 * 1024, 0.3, seed));
  parts.push_back(std::make_unique<sim::StrideGenerator>(
      0x4000'0000ull, 512, 768 * 1024, 0.0, seed ^ 1));
  sim::WorkingSetGenerator::Config hot;
  hot.base = 0x8000'0000ull;
  hot.footprint_bytes = 32 * 1024;
  hot.zipf_s = 1.1;
  hot.run_length = 16;
  parts.push_back(std::make_unique<sim::WorkingSetGenerator>(hot, seed ^ 2));
  return std::make_unique<sim::MixGenerator>(
      std::move(parts), std::vector<double>{0.4, 0.2, 0.4}, seed ^ 3);
}

}  // namespace

int main() {
  const std::vector<std::uint64_t> l2_sizes = {256 * 1024, 512 * 1024,
                                               1024 * 1024, 2048 * 1024};
  std::vector<double> rates;

  TextTable t("matrix-kernel workload: simulated two-level miss statistics");
  t.set_header({"L1", "L2", "L1 miss", "local L2 miss", "L2 writebacks"});
  for (auto l2_size : l2_sizes) {
    auto trace = make_matrix_kernel(42);
    sim::TwoLevelHierarchy hier(sim::SetAssociativeCache(16 * 1024, 32, 2),
                                sim::SetAssociativeCache(l2_size, 64, 8));
    hier.warmup(*trace, 100'000);
    hier.run(*trace, 400'000);
    const auto& s = hier.stats();
    rates.push_back(s.l2_local_miss_rate());
    t.add_row({fmt_bytes(16 * 1024), fmt_bytes(l2_size),
               fmt_fixed(s.l1_miss_rate() * 100.0, 2) + "%",
               fmt_fixed(s.l2_local_miss_rate() * 100.0, 1) + "%",
               std::to_string(s.l2_writebacks)});
  }
  std::cout << t << "\n";

  // Fit the analytic curve the exploration API consumes.
  try {
    const auto fit = sim::PowerLawMissModel::fit(l2_sizes, rates);
    std::cout << "fitted power law: miss(C) ~ C^-"
              << fmt_fixed(fit.exponent(), 2) << " (floor "
              << fmt_fixed(fit.floor() * 100.0, 1) << "%)\n"
              << "predicted local miss at 4MB: "
              << fmt_fixed(fit(4 * 1024 * 1024) * 100.0, 1) << "%\n";
  } catch (const std::exception& e) {
    std::cout << "power-law fit unavailable for this workload: " << e.what()
              << "\n";
  }

  // Compare against the built-in suite averages for context.
  std::cout << "\nbuilt-in suite, same configurations (for context):\n";
  sim::SuiteRunConfig cfg;
  cfg.l1_sizes = {16 * 1024};
  cfg.l2_sizes = l2_sizes;
  cfg.warmup_refs = 60'000;
  cfg.measured_refs = 200'000;
  const auto points = sim::measure_suite(cfg);
  const auto avg = sim::average_l2_curve(points, l2_sizes);
  TextTable t2("suite average local L2 miss rate");
  t2.set_header({"L2", "suite avg"});
  for (std::size_t i = 0; i < l2_sizes.size(); ++i) {
    t2.add_row({fmt_bytes(l2_sizes[i]), fmt_fixed(avg[i] * 100.0, 1) + "%"});
  }
  std::cout << t2;
  return 0;
}
