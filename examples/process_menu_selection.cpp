// Scenario: a foundry offers a limited number of distinct oxide
// thicknesses and threshold voltages per wafer (each extra option costs
// masks and process steps).  Which menu should a memory-system team buy,
// and which concrete values?  — the Figure 2 tuple problem as a
// procurement decision.
#include <iostream>

#include "core/explorer.h"
#include "util/table.h"
#include "util/units.h"

using namespace nanocache;

int main() {
  core::Explorer explorer;
  const auto system = explorer.default_system();
  const opt::TupleMenuSolver solver(system, explorer.config().grid);

  const double target = solver.min_amat_s({3, 3}) * 1.4;
  std::cout << "performance requirement: AMAT <= "
            << fmt_fixed(units::seconds_to_ps(target), 0) << " pS\n\n";

  TextTable t("process menu options (price ~ #Tox + #Vth)");
  t.set_header({"menu", "best energy [pJ]", "Tox values [A]",
                "Vth values [V]"});
  struct Row {
    opt::MenuSpec spec;
    std::optional<opt::SystemDesignPoint> best;
  };
  std::vector<Row> rows;
  for (const auto spec : {opt::MenuSpec{1, 1}, opt::MenuSpec{1, 2},
                          opt::MenuSpec{2, 1}, opt::MenuSpec{2, 2},
                          opt::MenuSpec{2, 3}, opt::MenuSpec{3, 2}}) {
    rows.push_back({spec, solver.best_at(spec, target)});
  }
  for (const auto& r : rows) {
    std::string toxes = "-";
    std::string vths = "-";
    std::string energy = "infeasible";
    if (r.best) {
      toxes.clear();
      for (double v : r.best->tox_menu) {
        toxes += (toxes.empty() ? "" : ", ") + fmt_fixed(v, 0);
      }
      vths.clear();
      for (double v : r.best->vth_menu) {
        vths += (vths.empty() ? "" : ", ") + fmt_fixed(v, 2);
      }
      energy = fmt_fixed(units::joules_to_pj(r.best->energy_j), 1);
    }
    t.add_row({core::Explorer::menu_label(r.spec), energy, toxes, vths});
  }
  std::cout << t << "\n";

  // The punchline the paper draws: where to spend the next process dollar.
  const auto& e12 = rows[1].best;  // 1 Tox + 2 Vth
  const auto& e21 = rows[2].best;  // 2 Tox + 1 Vth
  const auto& e22 = rows[3].best;
  const auto& e23 = rows[4].best;
  if (e12 && e21) {
    std::cout << "adding a second Vth saves "
              << fmt_fixed(units::joules_to_pj(e21->energy_j - e12->energy_j),
                           1)
              << " pJ more than adding a second Tox at this requirement —\n"
              << "Vth is the more effective knob, so restrict the number of\n"
              << "Tox's rather than Vth's if cost is a concern (paper, "
                 "abstract).\n";
  }
  if (e22 && e23) {
    const double gain = (e22->energy_j - e23->energy_j) / e22->energy_j;
    std::cout << "going from 2 to 3 Vth's buys only "
              << fmt_fixed(gain * 100.0, 1)
              << "% — dual Tox + dual Vth is sufficient.\n";
  }
  return 0;
}
