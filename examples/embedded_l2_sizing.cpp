// Scenario: an embedded SoC team must pick an L2 size and process knobs
// under a firm average-memory-access-time budget, minimizing standby
// (leakage) power — the Section 5 study as a design-flow walkthrough.
#include <iostream>

#include "core/explorer.h"
#include "util/table.h"
#include "util/units.h"

using namespace nanocache;

int main() {
  core::ExperimentConfig cfg;
  cfg.l1_size_bytes = 16 * 1024;
  cfg.l2_size_sweep = {256 * 1024, 512 * 1024, 1024 * 1024, 2048 * 1024};
  core::Explorer explorer(cfg);

  // A budget that genuinely squeezes the smaller candidates.
  const double amat_budget = explorer.l2_squeeze_target_s(1.12);
  std::cout << "AMAT budget: "
            << fmt_fixed(units::seconds_to_ps(amat_budget), 0) << " pS\n\n";

  TextTable t("L2 candidates under the AMAT budget");
  t.set_header({"L2 size", "one-pair leakage [mW]",
                "split (array/periph) leakage [mW]", "verdict"});
  const auto one = explorer.l2_size_sweep(opt::Scheme::kUniform, amat_budget);
  const auto split =
      explorer.l2_size_sweep(opt::Scheme::kArrayPeriphery, amat_budget);
  const core::SizeSweepRow* winner = nullptr;
  for (std::size_t i = 0; i < one.size(); ++i) {
    std::string verdict = "infeasible";
    if (split[i].feasible) {
      if (!winner || split[i].level_leakage_w < winner->level_leakage_w) {
        winner = &split[i];
        verdict = "candidate";
      } else {
        verdict = "dominated";
      }
    }
    t.add_row({fmt_bytes(one[i].size_bytes),
               one[i].feasible
                   ? fmt_fixed(units::watts_to_mw(one[i].level_leakage_w), 2)
                   : "infeasible",
               split[i].feasible
                   ? fmt_fixed(units::watts_to_mw(split[i].level_leakage_w), 2)
                   : "infeasible",
               verdict});
  }
  std::cout << t << "\n";

  if (winner) {
    const auto& arr =
        winner->result.assignment.get(cachemodel::ComponentKind::kCellArray);
    const auto& per =
        winner->result.assignment.get(cachemodel::ComponentKind::kDecoder);
    std::cout << "recommended design: " << fmt_bytes(winner->size_bytes)
              << " L2, array at " << fmt_fixed(arr.vth_v, 2) << "V/"
              << fmt_fixed(arr.tox_a, 0) << "A, periphery at "
              << fmt_fixed(per.vth_v, 2) << "V/" << fmt_fixed(per.tox_a, 0)
              << "A\n"
              << "standby leakage: "
              << fmt_fixed(units::watts_to_mw(winner->level_leakage_w), 2)
              << " mW, achieved AMAT "
              << fmt_fixed(units::seconds_to_ps(winner->amat_s), 0)
              << " pS\n"
              << "\nlesson (paper Section 5): giving the cell array its own\n"
              << "conservative (Vth, Tox) pair lets a smaller L2 beat a\n"
              << "bigger one that must share a single pair.\n";
  }
  return 0;
}
