// Scenario: a battery-powered device must hold its cache subsystem under a
// hard standby-power budget without giving up responsiveness.  The flow
// combines everything in the library: capture a representative trace,
// replay it against decay configurations, optimize the process knobs, and
// pick the cheapest combination that meets the budget.
#include <filesystem>
#include <iostream>

#include "core/explorer.h"
#include "sim/hierarchy.h"
#include "sim/suite.h"
#include "sim/trace_io.h"
#include "util/table.h"
#include "util/units.h"

using namespace nanocache;

int main() {
  const double budget_mw = 3.0;  // standby budget for the 16KB L1
  constexpr double kSleepRatio = 0.05;

  // 1. Capture a representative trace from the workload of interest and
  //    reload it (in a real flow this file comes from the target system).
  const auto trace_path =
      std::filesystem::temp_directory_path() / "standby_example.trace";
  {
    auto live = sim::make_workload("web");
    sim::save_trace(*live, 400'000, trace_path.string());
  }
  std::cout << "captured trace: " << trace_path << "\n\n";

  // 2. Knob optimization at the required L1 access time.
  core::Explorer explorer;
  const auto& l1 = explorer.l1_model(16 * 1024);
  const auto eval = opt::structural_evaluator(l1);
  const auto& grid = explorer.config().grid;
  const double t_budget =
      opt::min_access_time(eval, grid, opt::Scheme::kArrayPeriphery) * 1.3;
  const auto knobs = opt::optimize_single_cache(
      eval, grid, opt::Scheme::kArrayPeriphery, t_budget);
  if (!knobs) {
    std::cout << "timing budget infeasible\n";
    return 1;
  }
  std::cout << "knob-optimized L1 leakage: "
            << fmt_fixed(units::watts_to_mw(knobs->leakage_w), 3)
            << " mW at "
            << fmt_fixed(units::seconds_to_ps(knobs->access_time_s), 0)
            << " pS\n\n";

  // 3. Sweep decay intervals on the captured trace.
  TextTable t("decay sweep on the captured trace (knob-optimized leakage)");
  t.set_header({"decay interval", "live lines", "L1 miss rate",
                "standby leakage [mW]", "meets " +
                    fmt_fixed(budget_mw, 1) + " mW budget?"});
  bool met = false;
  for (std::uint64_t interval : {0ull, 8192ull, 2048ull, 512ull}) {
    auto replay = sim::load_trace(trace_path.string());
    sim::SetAssociativeCache l1_sim(16 * 1024, 32, 2);
    if (interval) l1_sim.enable_decay(interval);
    sim::TwoLevelHierarchy hier(std::move(l1_sim),
                                sim::SetAssociativeCache(1024 * 1024, 64, 8));
    hier.warmup(replay, 100'000);
    hier.run(replay, 300'000);
    const double live = hier.l1().average_live_fraction();
    const double standby_mw = units::watts_to_mw(
        knobs->leakage_w * (live + kSleepRatio * (1.0 - live)));
    const bool ok = standby_mw <= budget_mw;
    met |= ok;
    t.add_row({interval == 0 ? "off" : std::to_string(interval),
               fmt_fixed(live * 100.0, 1) + "%",
               fmt_fixed(hier.stats().l1_miss_rate() * 100.0, 2) + "%",
               fmt_fixed(standby_mw, 3), ok ? "yes" : "no"});
  }
  std::cout << t << "\n"
            << (met ? "budget met: ship the knob assignment above plus the "
                      "slowest decay interval that fits.\n"
                    : "budget not met: consider a smaller L1 or a more "
                      "aggressive sleep transistor.\n");
  std::filesystem::remove(trace_path);
  return 0;
}
