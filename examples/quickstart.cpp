// Quickstart: build a cache model, evaluate it at a few (Vth, Tox)
// settings, and run one delay-constrained leakage optimization — the
// five-minute tour of the public API.
#include <iostream>

#include "cachemodel/cache_model.h"
#include "opt/schemes.h"
#include "util/table.h"
#include "util/units.h"

using namespace nanocache;

int main() {
  // 1. A technology and a cache: BPTM-65-flavoured device model, 16 KB
  //    2-way L1 with a CACTI-style physical partition chosen automatically.
  tech::DeviceModel device(tech::bptm65());
  const auto org = cachemodel::l1_organization(16 * 1024, device);
  cachemodel::CacheModel cache(org, tech::DeviceModel(device.params()));
  std::cout << "cache: " << org.describe() << "\n\n";

  // 2. Evaluate the whole cache at a uniform knob setting.
  TextTable t("uniform (Vth, Tox) sweep");
  t.set_header({"Vth [V]", "Tox [A]", "access time [pS]", "leakage [mW]",
                "read energy [pJ]"});
  for (double vth : {0.20, 0.35, 0.50}) {
    for (double tox : {10.0, 14.0}) {
      const auto m = cache.evaluate_uniform({vth, tox});
      t.add_row({fmt_fixed(vth, 2), fmt_fixed(tox, 0),
                 fmt_fixed(units::seconds_to_ps(m.access_time_s), 1),
                 fmt_fixed(units::watts_to_mw(m.leakage_w), 3),
                 fmt_fixed(units::joules_to_pj(m.dynamic_energy_j), 2)});
    }
  }
  std::cout << t << "\n";

  // 3. Optimize: minimum leakage subject to a 1.4 ns access-time budget,
  //    with the paper's Scheme II (array pair + periphery pair).
  const auto eval = opt::structural_evaluator(cache);
  const auto grid = opt::KnobGrid::paper_default();
  const auto best = opt::optimize_single_cache(
      eval, grid, opt::Scheme::kArrayPeriphery, 1.4e-9);
  if (!best) {
    std::cout << "1.4 ns is infeasible for this cache\n";
    return 1;
  }
  const auto& arr =
      best->assignment.get(cachemodel::ComponentKind::kCellArray);
  const auto& per = best->assignment.get(cachemodel::ComponentKind::kDecoder);
  std::cout << "scheme II optimum under 1.4 ns:\n"
            << "  array:     Vth=" << fmt_fixed(arr.vth_v, 2)
            << " V, Tox=" << fmt_fixed(arr.tox_a, 0) << " A\n"
            << "  periphery: Vth=" << fmt_fixed(per.vth_v, 2)
            << " V, Tox=" << fmt_fixed(per.tox_a, 0) << " A\n"
            << "  leakage:   "
            << fmt_fixed(units::watts_to_mw(best->leakage_w), 3) << " mW at "
            << fmt_fixed(units::seconds_to_ps(best->access_time_s), 1)
            << " pS\n";
  return 0;
}
