// Scenario: sign off a knob assignment for production.  The optimization
// flow of the paper runs at one typical corner; before committing masks,
// a design team must confirm the assignment across process corners and
// within-die variation — and add margin where it falls short.  This
// example walks that flow for a 64 KB L1.
#include <iostream>

#include "cachemodel/variation.h"
#include "core/explorer.h"
#include "tech/corners.h"
#include "util/table.h"
#include "util/units.h"

using namespace nanocache;

namespace {

struct CornerCache {
  explicit CornerCache(tech::Corner corner)
      : dev(tech::apply_corner(tech::bptm65(), corner)),
        model(cachemodel::l1_organization(64 * 1024, dev),
              tech::DeviceModel(dev.params())) {}
  tech::DeviceModel dev;
  cachemodel::CacheModel model;
};

}  // namespace

int main() {
  const auto grid = opt::KnobGrid::paper_default();
  CornerCache tt(tech::Corner::kTypical);
  CornerCache ff(tech::Corner::kFast);
  CornerCache ss(tech::Corner::kSlow);

  // Requirement from the micro-architects: 1.9 ns access at sign-off.
  const double requirement = 1.9e-9;
  std::cout << "requirement: 64KB L1 access in "
            << fmt_fixed(units::seconds_to_ps(requirement), 0) << " pS "
            << "at every corner, >=99% timing yield under variation\n\n";

  // Iterate margin until the worst corner and the Monte Carlo both pass.
  cachemodel::VariationParams var;
  var.samples = 600;
  for (double margin : {1.00, 0.95, 0.90, 0.85}) {
    const auto opt = opt::optimize_single_cache(
        opt::structural_evaluator(tt.model), grid,
        opt::Scheme::kArrayPeriphery, requirement * margin);
    if (!opt) {
      std::cout << "margin " << fmt_fixed(margin * 100, 0)
                << "%: infeasible at TT, stopping\n";
      break;
    }
    // Worst corner timing (SS silicon) and variation yield at SS.
    const auto ss_metrics = ss.model.evaluate(opt->assignment);
    const auto mc = cachemodel::monte_carlo(ss.model, opt->assignment, var,
                                            requirement);
    const auto ff_metrics = ff.model.evaluate(opt->assignment);
    const bool pass =
        ss_metrics.access_time_s <= requirement && mc.timing_yield >= 0.99;

    TextTable t("margin " + fmt_fixed(margin * 100, 0) + "% -> optimize at " +
                fmt_fixed(units::seconds_to_ps(requirement * margin), 0) +
                " pS");
    t.set_header({"corner", "delay [pS]", "leakage [mW]", "note"});
    const auto tt_metrics = tt.model.evaluate(opt->assignment);
    t.add_row({"TT", fmt_fixed(units::seconds_to_ps(tt_metrics.access_time_s), 0),
               fmt_fixed(units::watts_to_mw(tt_metrics.leakage_w), 2),
               "nominal"});
    t.add_row({"SS",
               fmt_fixed(units::seconds_to_ps(ss_metrics.access_time_s), 0),
               fmt_fixed(units::watts_to_mw(ss_metrics.leakage_w), 2),
               "yield " + fmt_fixed(mc.timing_yield * 100, 1) + "%"});
    t.add_row({"FF",
               fmt_fixed(units::seconds_to_ps(ff_metrics.access_time_s), 0),
               fmt_fixed(units::watts_to_mw(ff_metrics.leakage_w), 2),
               "worst-case leakage"});
    std::cout << t << (pass ? "PASS" : "FAIL") << "\n\n";
    if (pass) {
      const auto& arr =
          opt->assignment.get(cachemodel::ComponentKind::kCellArray);
      const auto& per =
          opt->assignment.get(cachemodel::ComponentKind::kDecoder);
      std::cout << "sign-off: array " << fmt_fixed(arr.vth_v, 2) << "V/"
                << fmt_fixed(arr.tox_a, 0) << "A, periphery "
                << fmt_fixed(per.vth_v, 2) << "V/" << fmt_fixed(per.tox_a, 0)
                << "A; budget leakage to the FF number above.\n";
      return 0;
    }
  }
  std::cout << "no margin in the sweep passed — revisit the requirement.\n";
  return 1;
}
