// nanocache command-line driver: ad-hoc model queries, single
// optimizations, experiment runs, batched JSONL serving and CSV export
// without writing C++.
//
//   nanocache_cli list
//   nanocache_cli cache --size 16384 [--l2] [--vth 0.35] [--tox 12]
//   nanocache_cli optimize --size 16384 --scheme II --delay-ps 1400
//   nanocache_cli run fig1|schemes|l2|l2split|l1|fig2
//   nanocache_cli batch requests.jsonl
//   nanocache_cli serve --listen unix:/run/nanocache.sock
//   nanocache_cli export --dir out_csv
//
// Request-shaped commands (cache, optimize, run schemes/l2/l2split/l1,
// batch) go through the public nanocache::api::Service facade — the same
// code path library consumers use; figure rendering and diagnostics use the
// documented Explorer escape hatch.
#include <fstream>
#include <iostream>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "api/batch_io.h"
#include "api/metrics_json.h"
#include "api/request_args.h"
#include "api/surrogate_precompute.h"
#include "server/server.h"
#include "cachemodel/variation.h"
#include "core/explorer.h"
#include "core/report.h"
#include "nanocache/api.h"
#include "opt/sensitivity.h"
#include "util/error.h"
#include "util/parallel.h"
#include "util/table.h"
#include "util/units.h"

using namespace nanocache;
using api::CliArgs;

namespace {

/// Batch statistics captured by cmd_batch for the --metrics snapshot; the
/// metrics sink is written after dispatch, outside the command handlers.
std::optional<api::BatchStats> g_batch_stats;

int usage() {
  std::cout <<
      "usage:\n"
      "  nanocache_cli list\n"
      "  nanocache_cli cache --size <bytes> [--l2] [--vth V] [--tox A]\n"
      "               [--assoc 1|2|4|8|full] [--banks N] [--node nm]\n"
      "  nanocache_cli optimize --size <bytes> --scheme I|II|III "
      "--delay-ps <ps>\n"
      "               [--assoc 1|2|4|8|full] [--banks N] [--node nm]\n"
      "               [--power-gating] [--perf-loss-budget F]\n"
      "  nanocache_cli run fig1|schemes|l2|l2split|l1|fig2 "
      "[--fitted] [--strict]\n"
      "  nanocache_cli run schemes [--size <bytes>] [--steps N]\n"
      "  nanocache_cli run l2|l2split|l1 [--amat-ps <ps>] [--node nm]\n"
      "  nanocache_cli batch <requests.jsonl | -> \n"
      "  nanocache_cli serve --listen <unix:/path/sock | tcp:host:port>\n"
      "               [--max-line-bytes N] [--queue-capacity N]\n"
      "  nanocache_cli capabilities\n"
      "  nanocache_cli precompute --out <dir> [--l1-sizes a,b] "
      "[--l2-sizes a,b]\n"
      "               [--nodes 0,90,...] [--vth-steps N] [--tox-steps N]\n"
      "               [--target-steps N] [--stamp TEXT]\n"
      "  nanocache_cli frontier --size <bytes> [--l2] --scheme I|II|III\n"
      "  nanocache_cli sensitivity --size <bytes> [--l2] [--vth V] "
      "[--tox A]\n"
      "  nanocache_cli variation --size <bytes> [--l2] [--vth V] [--tox A] "
      "[--samples N]\n"
      "  nanocache_cli export [--dir <directory>] [--fitted] [--strict]\n"
      "flags:\n"
      "  --fitted     drive experiments from the paper's fitted closed forms\n"
      "  --strict     treat fitted-model degradation as a hard error\n"
      "  --assoc 1|2|4|8|full  explicit set-associativity: engages the\n"
      "               split-tag model (tag array + way comparators as fifth\n"
      "               and sixth optimizable components)\n"
      "  --banks N    multi-bank organization (power of two <= 8)\n"
      "  --node nm    technology node: 90|65|45|32|22 (default: the 65 nm\n"
      "               node the paper calibrates)\n"
      "  --power-gating          let the optimizer park idle components in\n"
      "               sleep states (leakage cut to a fraction)\n"
      "  --perf-loss-budget F    relax the delay constraint by the fraction\n"
      "               F in [0,1] to pay for sleep-state wake latency\n"
      "  --cache-dir <dir>  persist results across runs (also the\n"
      "               NANOCACHE_CACHE_DIR environment variable; the flag\n"
      "               wins).  Segments are fingerprinted by configuration,\n"
      "               so differently configured runs never share entries.\n"
      "  --surrogate-dir <dir>  load precomputed answer tables and serve\n"
      "               covered eval/optimize requests by interpolation (also\n"
      "               the NANOCACHE_SURROGATE_DIR environment variable; the\n"
      "               flag wins).  Uncovered requests fall back to the exact\n"
      "               engine; see --exactness.\n"
      "  --exactness exact|surrogate|auto  v4 routing for cache/optimize:\n"
      "               'exact' always runs the exact engine, 'surrogate'\n"
      "               errors unless a table covers the request, 'auto'\n"
      "               (default) prefers tables and falls back\n"
      "  --search pruned|exhaustive  assignment search engine (default\n"
      "               pruned; both return byte-identical results, the\n"
      "               exhaustive oracle is for differential testing)\n"
      "  --memo-shards N  lock-stripe shards of the in-process memo cache\n"
      "               (power of two <= 4096; default 16; also the\n"
      "               NANOCACHE_MEMO_SHARDS environment variable, the flag\n"
      "               wins).  Purely a concurrency knob: results are\n"
      "               byte-identical at any shard count.\n"
      "  --threads N  worker threads for sweeps (default: hardware "
      "concurrency;\n"
      "               results are identical at any thread count).  The\n"
      "               NANOCACHE_THREADS environment variable accepts 1-1024\n"
      "               (capped at 64 workers); anything else is a config "
      "error.\n"
      "  --metrics <file|->  after the command finishes, write the process\n"
      "               metrics snapshot (counters, histograms, phase timings,\n"
      "               spans; docs/API.md) as JSON to <file>, or to stderr\n"
      "               for '-'.  Never touches stdout: command output stays\n"
      "               byte-identical with or without this flag.\n"
      "batch: one JSON request per line (docs/API.md); one response line per\n"
      "  request, in input order.  Per-request failures stay in-band as\n"
      "  error responses; the process exits 0 unless the stream itself is\n"
      "  unreadable.  Dedup/memoization stats go to stderr.\n"
      "precompute: drive the exact engine over a refined knob lattice and a\n"
      "  delay-target ladder and write surrogate answer tables (with\n"
      "  certified per-answer error bounds) under --out, keyed by the\n"
      "  service configuration's fingerprint.  A later run pointed at the\n"
      "  same directory via --surrogate-dir picks them up automatically.\n"
      "serve: speak the batch JSONL protocol over a socket, multiplexing\n"
      "  concurrent clients onto one warm service (docs/API.md).  Responses\n"
      "  per connection are byte-identical to batch output for the same\n"
      "  lines.  SIGINT/SIGTERM drain in-flight requests, flush the disk\n"
      "  cache, and exit 0.\n"
      "exit codes (from the error taxonomy; scripts branch on these):\n"
      "  0 ok    1 internal     2 config (malformed request/flags)\n"
      "  3 io    4 numeric-domain or infeasible\n";
  return 2;
}

/// Build the facade service honoring the shared --fitted/--strict flags;
/// prints the typed error and exits via the documented code on failure.
std::shared_ptr<api::Service> make_service(const CliArgs& args) {
  auto service = api::Service::create(api::service_config_from_args(args));
  if (!service) {
    std::cerr << "error: " << service.error().message << "\n";
    std::exit(api::exit_code_for(service.error().code));
  }
  return service.value();
}

/// Surface recorded fitted->structural fallbacks after a run; silent when
/// nothing degraded.  Goes to stderr so stdout stays machine-comparable.
void print_degradations(const api::Service& service) {
  const auto& events = service.explorer().degradation_events();
  if (events.empty()) return;
  std::cerr << "note: fitted model degraded " << events.size()
            << " time(s):\n";
  for (const auto& e : events) {
    std::cerr << "  " << e.model << ": " << e.reason << "\n";
  }
}

int cmd_list() {
  TextTable t("experiments");
  t.set_header({"name", "paper artifact"});
  t.add_row({"fig1", "Figure 1: fixed-Vth vs fixed-Tox, 16KB"});
  t.add_row({"schemes", "Section 4: scheme I/II/III comparison"});
  t.add_row({"l2", "Section 5: L2 size sweep, one pair"});
  t.add_row({"l2split", "Section 5: L2 size sweep, array/periphery split"});
  t.add_row({"l1", "Section 5: L1 size sweep"});
  t.add_row({"fig2", "Figure 2: (Tox, Vth) tuple problem"});
  std::cout << t;
  return 0;
}

int cmd_cache(const api::Service& service, const api::Request& request) {
  const auto out = service.evaluate(request.eval);
  if (!out) {
    std::cerr << "error: " << out.error().message << "\n";
    return api::exit_code_for(out.error().code);
  }
  const auto& e = *out;
  std::cout << e.organization << " at Vth="
            << fmt_fixed(request.eval.knobs.vth_v, 2) << "V Tox="
            << fmt_fixed(request.eval.knobs.tox_a, 1) << "A\n";
  TextTable t;
  t.set_header({"component", "delay [pS]", "leakage [mW]", "dynamic [pJ]"});
  for (const auto& c : e.components) {
    t.add_row({c.component, fmt_fixed(c.delay_ps, 1),
               fmt_fixed(c.leakage_mw, 4), fmt_fixed(c.dynamic_pj, 3)});
  }
  t.add_row({"TOTAL", fmt_fixed(e.access_time_ps, 1),
             fmt_fixed(e.leakage_mw, 4), fmt_fixed(e.dynamic_pj, 3)});
  std::cout << t;
  print_degradations(service);
  return 0;
}

int cmd_optimize(const api::Service& service, const api::Request& request) {
  const auto out = service.optimize(request.optimize);
  if (!out) {
    std::cerr << "error: " << out.error().message << "\n";
    return api::exit_code_for(out.error().code);
  }
  const auto& r = out->result;
  if (!r.feasible) {
    std::cerr << "error: " << r.infeasible_reason << "\n";
    return 4;
  }
  std::cout << "scheme " << api::scheme_id_name(request.optimize.scheme)
            << " optimum under "
            << fmt_fixed(request.optimize.delay.target_ps, 0) << " pS:\n";
  bool any_gated = false;
  for (const auto& c : r.assignment) any_gated |= c.gated;
  TextTable t;
  if (any_gated) {
    t.set_header({"component", "Vth [V]", "Tox [A]", "sleep"});
    for (const auto& c : r.assignment) {
      t.add_row({c.component, fmt_fixed(c.knobs.vth_v, 2),
                 fmt_fixed(c.knobs.tox_a, 0), c.gated ? "gated" : ""});
    }
  } else {
    t.set_header({"component", "Vth [V]", "Tox [A]"});
    for (const auto& c : r.assignment) {
      t.add_row({c.component, fmt_fixed(c.knobs.vth_v, 2),
                 fmt_fixed(c.knobs.tox_a, 0)});
    }
  }
  std::cout << t << "leakage " << fmt_fixed(r.leakage_mw, 4) << " mW at "
            << fmt_fixed(r.access_time_ps, 1) << " pS\n";
  print_degradations(service);
  return 0;
}

TextTable schemes_table(const api::SweepResponse& sweep) {
  TextTable t("scheme_comparison");
  t.set_header({"target_ps", "scheme", "leakage_mw", "achieved_ps", "note"});
  const auto emit = [&t](double target_ps, const char* name,
                         const api::OptimizedCache& r) {
    t.add_row({fmt_fixed(target_ps, 1), name,
               r.feasible ? fmt_fixed(r.leakage_mw, 4) : "infeasible",
               r.feasible ? fmt_fixed(r.access_time_ps, 1) : "-",
               r.feasible ? "" : r.infeasible_reason});
  };
  for (const auto& row : sweep.schemes) {
    emit(row.delay_target_ps, "I", row.scheme1);
    emit(row.delay_target_ps, "II", row.scheme2);
    emit(row.delay_target_ps, "III", row.scheme3);
  }
  return t;
}

TextTable sizes_table(const api::SweepResponse& sweep,
                      const std::string& level_name) {
  TextTable t(level_name + "_size_sweep");
  t.set_header({"size_bytes", "miss_rate", "feasible", "level_leakage_mw",
                "total_leakage_mw", "amat_ps", "note"});
  for (const auto& r : sweep.sizes) {
    t.add_row({std::to_string(r.size_bytes), fmt_fixed(r.miss_rate, 5),
               r.feasible ? "1" : "0",
               r.feasible ? fmt_fixed(r.level_leakage_mw, 4) : "-",
               r.feasible ? fmt_fixed(r.total_leakage_mw, 4) : "-",
               r.feasible ? fmt_fixed(r.amat_ps, 1) : "-",
               r.infeasible_reason});
  }
  return t;
}

int cmd_run(const api::Service& service, const CliArgs& args) {
  const std::string& which = args.positional;
  // Figure rendering is not request-shaped; it uses the escape hatch.
  if (which == "fig1") {
    const auto& explorer = service.explorer();
    std::cout << core::fig1_long_table(
        explorer.fig1_fixed_knob(explorer.config().l1_size_bytes));
    print_degradations(service);
    return 0;
  }
  if (which == "fig2") {
    std::cout << core::fig2_long_table(service.explorer().fig2_tuple_frontiers());
    print_degradations(service);
    return 0;
  }
  auto request = api::request_from_args(args);
  if (!request) {
    std::cerr << "error: " << request.error().message << "\n";
    return usage();
  }
  const auto out = service.sweep(request->sweep);
  if (!out) {
    std::cerr << "error: " << out.error().message << "\n";
    return api::exit_code_for(out.error().code);
  }
  if (out->kind == api::SweepKind::kSchemes) {
    std::cout << schemes_table(*out);
  } else if (which == "l2") {
    std::cout << sizes_table(*out, "l2_uniform");
  } else if (which == "l2split") {
    std::cout << sizes_table(*out, "l2_split");
  } else {
    std::cout << sizes_table(*out, "l1");
  }
  print_degradations(service);
  return 0;
}

int cmd_batch(const api::Service& service, const CliArgs& args) {
  std::ifstream file;
  std::istream* in = &std::cin;
  if (!args.positional.empty() && args.positional != "-") {
    file.open(args.positional);
    NC_REQUIRE_IO(file.good(),
                  "cannot open batch request file: " + args.positional);
    in = &file;
  }
  const auto stats = api::run_batch_jsonl(service, *in, std::cout);
  g_batch_stats = stats;
  std::cerr << "batch: " << stats.requests << " request(s), "
            << stats.unique_requests << " unique; request hits "
            << stats.request_hits << ", memo hits " << stats.memo_hits
            << ", memo misses " << stats.memo_misses << ", hit rate "
            << fmt_fixed(stats.hit_rate(), 3) << "\n";
  if (!service.config().cache_dir.empty()) {
    std::cerr << "disk cache: " << stats.disk_hits << " hit(s), "
              << stats.disk_misses << " miss(es)\n";
  }
  print_degradations(service);
  return 0;
}

int cmd_serve(std::shared_ptr<api::Service> service, const CliArgs& args) {
  const auto it = args.flags.find("listen");
  NC_REQUIRE(it != args.flags.end() && it->second != "true",
             "serve requires --listen unix:<path> or tcp:<host>:<port>");
  server::ServerConfig config;
  config.listen = server::parse_listen_spec(it->second);
  config.max_line_bytes =
      static_cast<std::size_t>(api::flag_uint(args, "max-line-bytes",
                                              config.max_line_bytes));
  NC_REQUIRE(config.max_line_bytes > 0, "--max-line-bytes must be positive");
  config.queue_capacity =
      static_cast<std::size_t>(api::flag_uint(args, "queue-capacity",
                                              config.queue_capacity));
  NC_REQUIRE(config.queue_capacity > 0, "--queue-capacity must be positive");
  // config.workers = 0: the server sizes its pool from the process default,
  // which --threads / NANOCACHE_THREADS already configured in main().

  server::Server server(std::move(service), std::move(config));
  server.start();
  server::Server::install_signal_handlers(server);
  const auto& spec = server.config().listen;
  std::cerr << "serve: listening on "
            << (spec.kind == server::ListenKind::kTcp
                    ? "tcp:" + spec.host + ":" +
                          std::to_string(server.tcp_port())
                    : spec.describe())
            << " (SIGINT/SIGTERM to drain and exit)\n";
  server.wait();
  const auto stats = server.stats();
  std::cerr << "serve: drained; " << stats.connections_accepted
            << " connection(s), " << stats.requests_admitted
            << " request(s), " << stats.responses_written
            << " response(s) written, " << stats.lines_rejected_too_long
            << " oversized line(s) rejected, " << stats.control_requests
            << " control request(s)\n";
  return 0;
}

/// Comma-separated unsigned list flag ("16384,32768"); empty when absent.
std::vector<std::uint64_t> flag_uint_list(const CliArgs& args,
                                          const std::string& key) {
  std::vector<std::uint64_t> values;
  const auto it = args.flags.find(key);
  if (it == args.flags.end()) return values;
  std::string item;
  std::istringstream stream(it->second);
  while (std::getline(stream, item, ',')) {
    try {
      values.push_back(std::stoull(item));
    } catch (const std::exception&) {
      throw Error(ErrorCategory::kConfig,
                  "--" + key + " expects comma-separated non-negative "
                  "integers, got '" + it->second + "'");
    }
  }
  return values;
}

int cmd_precompute(const api::Service& service, const CliArgs& args) {
  const auto out_it = args.flags.find("out");
  NC_REQUIRE(out_it != args.flags.end() && out_it->second != "true",
             "precompute requires --out <dir>");
  api::PrecomputeOptions options;
  options.l1_sizes = flag_uint_list(args, "l1-sizes");
  options.l2_sizes = flag_uint_list(args, "l2-sizes");
  if (const auto nodes = flag_uint_list(args, "nodes"); !nodes.empty()) {
    options.nodes.assign(nodes.begin(), nodes.end());
  }
  options.vth_steps = static_cast<int>(
      api::flag_uint(args, "vth-steps", options.vth_steps));
  options.tox_steps = static_cast<int>(
      api::flag_uint(args, "tox-steps", options.tox_steps));
  options.target_steps = static_cast<int>(
      api::flag_uint(args, "target-steps", options.target_steps));
  const auto stamp = args.flags.find("stamp");
  if (stamp != args.flags.end() && stamp->second != "true") {
    options.stamp = stamp->second;
  }
  const auto summary =
      api::precompute_surrogate(service, out_it->second, options);
  std::cout << "wrote " << summary.eval_tables << " eval table(s) and "
            << summary.optimize_tables << " optimize table(s) to "
            << summary.path << "\n"
            << "fingerprint " << summary.fingerprint << "; spent "
            << summary.exact_evals << " exact eval(s), "
            << summary.exact_optimizes << " exact optimize(s)\n";
  print_degradations(service);
  return 0;
}

int cmd_capabilities(const api::Service& service) {
  api::Request request;
  request.kind = api::RequestKind::kCapabilities;
  const api::Response response = service.serve(request);
  std::cout << api::response_to_json(response) << "\n";
  return response.ok ? 0 : api::exit_code_for(response.error.code);
}

int cmd_frontier(const api::Service& service, const CliArgs& args) {
  const auto size = api::flag_uint(args, "size", 16 * 1024);
  const bool is_l2 = api::flag_present(args, "l2");
  opt::Scheme scheme = opt::Scheme::kArrayPeriphery;
  const auto it = args.flags.find("scheme");
  if (it != args.flags.end()) {
    if (it->second == "I") scheme = opt::Scheme::kPerComponent;
    else if (it->second == "III") scheme = opt::Scheme::kUniform;
  }
  const auto& explorer = service.explorer();
  const auto& model =
      is_l2 ? explorer.l2_model(size) : explorer.l1_model(size);
  const auto front = opt::scheme_frontier(explorer.evaluator(model),
                                          explorer.config().grid, scheme);
  TextTable t("leakage/delay frontier, scheme " + opt::scheme_name(scheme));
  t.set_header({"access time [pS]", "leakage [mW]"});
  for (const auto& p : front) {
    t.add_row({fmt_fixed(units::seconds_to_ps(p.access_time_s), 1),
               fmt_fixed(units::watts_to_mw(p.leakage_w), 4)});
  }
  std::cout << t;
  print_degradations(service);
  return 0;
}

int cmd_sensitivity(const api::Service& service, const CliArgs& args) {
  const auto size = api::flag_uint(args, "size", 16 * 1024);
  const bool is_l2 = api::flag_present(args, "l2");
  const tech::DeviceKnobs at{api::flag_double(args, "vth", 0.35),
                             api::flag_double(args, "tox", 12.0)};
  const auto& explorer = service.explorer();
  const auto& model =
      is_l2 ? explorer.l2_model(size) : explorer.l1_model(size);
  const auto s = opt::cache_sensitivity(opt::structural_evaluator(model), at,
                                        explorer.config().technology.knobs);
  TextTable t("knob sensitivities at Vth=" + fmt_fixed(at.vth_v, 2) +
              "V, Tox=" + fmt_fixed(at.tox_a, 1) + "A");
  t.set_header({"metric", "vs Vth", "vs Tox"});
  t.add_row({"d ln(leakage) / d knob", fmt_fixed(s.leakage_vs_vth, 2) + " /V",
             fmt_fixed(s.leakage_vs_tox, 3) + " /A"});
  t.add_row({"d ln(delay) / d knob", fmt_fixed(s.delay_vs_vth, 2) + " /V",
             fmt_fixed(s.delay_vs_tox, 3) + " /A"});
  t.add_row({"leakage bought per delay",
             fmt_fixed(s.leakage_efficiency_vth(), 2),
             fmt_fixed(s.leakage_efficiency_tox(), 2)});
  std::cout << t;
  return 0;
}

int cmd_variation(const api::Service& service, const CliArgs& args) {
  const auto size = api::flag_uint(args, "size", 16 * 1024);
  const bool is_l2 = api::flag_present(args, "l2");
  const cachemodel::ComponentAssignment knobs(
      tech::DeviceKnobs{api::flag_double(args, "vth", 0.35),
                        api::flag_double(args, "tox", 12.0)});
  const auto& explorer = service.explorer();
  const auto& model =
      is_l2 ? explorer.l2_model(size) : explorer.l1_model(size);
  cachemodel::VariationParams p;
  p.samples = static_cast<int>(api::flag_uint(args, "samples", 500));
  const auto nominal = model.evaluate(knobs);
  const auto r = cachemodel::monte_carlo(model, knobs, p,
                                         nominal.access_time_s);
  TextTable t("Monte Carlo (" + std::to_string(r.samples) + " samples)");
  t.set_header({"metric", "nominal", "mean", "p95", "max"});
  t.add_row({"leakage [mW]",
             fmt_fixed(units::watts_to_mw(nominal.leakage_w), 3),
             fmt_fixed(units::watts_to_mw(r.leakage_w.mean), 3),
             fmt_fixed(units::watts_to_mw(r.leakage_w.p95), 3),
             fmt_fixed(units::watts_to_mw(r.leakage_w.max), 3)});
  t.add_row({"access time [pS]",
             fmt_fixed(units::seconds_to_ps(nominal.access_time_s), 1),
             fmt_fixed(units::seconds_to_ps(r.access_time_s.mean), 1),
             fmt_fixed(units::seconds_to_ps(r.access_time_s.p95), 1),
             fmt_fixed(units::seconds_to_ps(r.access_time_s.max), 1)});
  std::cout << t << "timing yield at the nominal delay: "
            << fmt_fixed(r.timing_yield * 100.0, 1) << "%\n";
  return 0;
}

int cmd_export(const api::Service& service, const CliArgs& args) {
  const auto it = args.flags.find("dir");
  const std::string dir = it == args.flags.end() ? "nanocache_csv" : it->second;
  const int n = core::export_all_csv(service.explorer(), dir);
  std::cout << "wrote " << n << " CSV files to " << dir << "/\n";
  print_degradations(service);
  return 0;
}

int dispatch(const CliArgs& args) {
  if (args.command == "list") return cmd_list();
  if (args.command == "cache" || args.command == "optimize") {
    auto request = api::request_from_args(args);
    if (!request) {
      std::cerr << "error: " << request.error().message << "\n";
      return api::exit_code_for(request.error().code);
    }
    const auto service = make_service(args);
    return args.command == "cache" ? cmd_cache(*service, *request)
                                   : cmd_optimize(*service, *request);
  }
  if (args.command == "run") return cmd_run(*make_service(args), args);
  if (args.command == "batch") return cmd_batch(*make_service(args), args);
  if (args.command == "serve") return cmd_serve(make_service(args), args);
  if (args.command == "capabilities") {
    return cmd_capabilities(*make_service(args));
  }
  if (args.command == "precompute") {
    return cmd_precompute(*make_service(args), args);
  }
  if (args.command == "frontier") return cmd_frontier(*make_service(args), args);
  if (args.command == "sensitivity") {
    return cmd_sensitivity(*make_service(args), args);
  }
  if (args.command == "variation") {
    return cmd_variation(*make_service(args), args);
  }
  if (args.command == "export") return cmd_export(*make_service(args), args);
  return usage();
}

/// Honor --metrics <file|-> after the command ran.  The snapshot goes to a
/// separate sink (a file, or stderr for "-") so stdout — the surface the
/// byte-identity guarantees cover — is never mixed with observability data.
void write_metrics_if_requested(const CliArgs& args) {
  const auto it = args.flags.find("metrics");
  if (it == args.flags.end()) return;
  NC_REQUIRE(it->second != "true" && !it->second.empty(),
             "--metrics expects a file path or '-'");
  const api::BatchStats* batch =
      g_batch_stats ? &*g_batch_stats : nullptr;
  const std::string json = api::current_metrics_json(batch);
  if (it->second == "-") {
    std::cerr << json << "\n";
    return;
  }
  std::ofstream out(it->second);
  NC_REQUIRE_IO(out.good(),
                "cannot open metrics output file: " + it->second);
  out << json << "\n";
  out.flush();
  NC_REQUIRE_IO(out.good(),
                "cannot write metrics output file: " + it->second);
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const CliArgs args = api::parse_cli_args(argc, argv);
    // 0 or a missing flag keeps the pool default (hardware concurrency, or
    // the NANOCACHE_THREADS environment variable when set).
    if (const int threads = api::threads_from_args(args); threads > 0) {
      par::set_default_threads(threads);
    }
    // Surface a malformed NANOCACHE_THREADS as a config error (exit 2)
    // before any command runs, instead of at first pool use.
    (void)par::default_threads();
    const int rc = dispatch(args);
    write_metrics_if_requested(args);
    return rc;
  } catch (const Error& e) {
    std::cerr << "error: " << e.what() << "\n";
    switch (e.category()) {
      case ErrorCategory::kConfig: return 2;
      case ErrorCategory::kIo: return 3;
      case ErrorCategory::kNumericDomain:
      case ErrorCategory::kInfeasible: return 4;
      case ErrorCategory::kInternal: return 1;
    }
    return 1;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
