// nanocache command-line driver: ad-hoc model queries, single
// optimizations, experiment runs and CSV export without writing C++.
//
//   nanocache_cli list
//   nanocache_cli cache --size 16384 [--l2] [--vth 0.35] [--tox 12]
//   nanocache_cli optimize --size 16384 --scheme II --delay-ps 1400
//   nanocache_cli run fig1|schemes|l2|l2split|l1|fig2
//   nanocache_cli export --dir out_csv
#include <cstring>
#include <iostream>
#include <map>
#include <string>

#include "core/explorer.h"
#include "core/report.h"
#include "cachemodel/variation.h"
#include "opt/sensitivity.h"
#include "util/error.h"
#include "util/parallel.h"
#include "util/table.h"
#include "util/units.h"

using namespace nanocache;

namespace {

struct Args {
  std::string command;
  std::string positional;
  std::map<std::string, std::string> flags;
};

Args parse(int argc, char** argv) {
  Args a;
  if (argc < 2) return a;
  a.command = argv[1];
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) == 0) {
      const std::string key = arg.substr(2);
      if (i + 1 < argc && std::strncmp(argv[i + 1], "--", 2) != 0) {
        a.flags[key] = argv[++i];
      } else {
        a.flags[key] = "true";
      }
    } else if (a.positional.empty()) {
      a.positional = arg;
    }
  }
  return a;
}

double flag_d(const Args& a, const std::string& key, double fallback) {
  const auto it = a.flags.find(key);
  return it == a.flags.end() ? fallback : std::stod(it->second);
}

std::uint64_t flag_u(const Args& a, const std::string& key,
                     std::uint64_t fallback) {
  const auto it = a.flags.find(key);
  return it == a.flags.end() ? fallback : std::stoull(it->second);
}

int usage() {
  std::cout <<
      "usage:\n"
      "  nanocache_cli list\n"
      "  nanocache_cli cache --size <bytes> [--l2] [--vth V] [--tox A]\n"
      "  nanocache_cli optimize --size <bytes> --scheme I|II|III "
      "--delay-ps <ps>\n"
      "  nanocache_cli run fig1|schemes|l2|l2split|l1|fig2 "
      "[--fitted] [--strict]\n"
      "  nanocache_cli frontier --size <bytes> [--l2] --scheme I|II|III\n"
      "  nanocache_cli sensitivity --size <bytes> [--l2] [--vth V] "
      "[--tox A]\n"
      "  nanocache_cli variation --size <bytes> [--l2] [--vth V] [--tox A] "
      "[--samples N]\n"
      "  nanocache_cli export [--dir <directory>] [--fitted] [--strict]\n"
      "flags:\n"
      "  --fitted     drive experiments from the paper's fitted closed forms\n"
      "  --strict     treat fitted-model degradation as a hard error\n"
      "  --threads N  worker threads for sweeps (default: hardware "
      "concurrency;\n"
      "               results are identical at any thread count)\n"
      "exit codes: 0 ok, 1 internal, 2 config, 3 io, 4 numeric/infeasible\n";
  return 2;
}

/// Explorer honoring the shared --fitted / --strict flags.
core::Explorer make_explorer(const Args& args) {
  core::ExperimentConfig config;
  if (args.flags.count("fitted") > 0) config.use_fitted_models = true;
  if (args.flags.count("strict") > 0) {
    config.degradation_policy = core::DegradationPolicy::kStrict;
  }
  return core::Explorer(config);
}

/// Surface recorded fitted->structural fallbacks after a run; silent when
/// nothing degraded.
void print_degradations(const core::Explorer& explorer) {
  if (explorer.degradation_events().empty()) return;
  std::cerr << "note: fitted model degraded "
            << explorer.degradation_events().size() << " time(s):\n";
  for (const auto& e : explorer.degradation_events()) {
    std::cerr << "  " << e.model << ": " << e.reason << "\n";
  }
}

int cmd_list() {
  TextTable t("experiments");
  t.set_header({"name", "paper artifact"});
  t.add_row({"fig1", "Figure 1: fixed-Vth vs fixed-Tox, 16KB"});
  t.add_row({"schemes", "Section 4: scheme I/II/III comparison"});
  t.add_row({"l2", "Section 5: L2 size sweep, one pair"});
  t.add_row({"l2split", "Section 5: L2 size sweep, array/periphery split"});
  t.add_row({"l1", "Section 5: L1 size sweep"});
  t.add_row({"fig2", "Figure 2: (Tox, Vth) tuple problem"});
  std::cout << t;
  return 0;
}

int cmd_cache(const Args& args) {
  const auto size = flag_u(args, "size", 16 * 1024);
  const bool is_l2 = args.flags.count("l2") > 0;
  const tech::DeviceKnobs knobs{flag_d(args, "vth", 0.35),
                                flag_d(args, "tox", 12.0)};
  core::Explorer explorer;
  const auto& model =
      is_l2 ? explorer.l2_model(size) : explorer.l1_model(size);
  const auto m = model.evaluate_uniform(knobs);
  std::cout << model.organization().describe() << " at Vth="
            << fmt_fixed(knobs.vth_v, 2) << "V Tox="
            << fmt_fixed(knobs.tox_a, 1) << "A\n";
  TextTable t;
  t.set_header({"component", "delay [pS]", "leakage [mW]", "dynamic [pJ]"});
  for (auto kind : cachemodel::kAllComponents) {
    const auto& c = m.per_component[static_cast<std::size_t>(kind)];
    t.add_row({std::string(cachemodel::component_name(kind)),
               fmt_fixed(units::seconds_to_ps(c.delay_s), 1),
               fmt_fixed(units::watts_to_mw(c.leakage_w), 4),
               fmt_fixed(units::joules_to_pj(c.dynamic_energy_j), 3)});
  }
  t.add_row({"TOTAL", fmt_fixed(units::seconds_to_ps(m.access_time_s), 1),
             fmt_fixed(units::watts_to_mw(m.leakage_w), 4),
             fmt_fixed(units::joules_to_pj(m.dynamic_energy_j), 3)});
  std::cout << t;
  return 0;
}

int cmd_optimize(const Args& args) {
  const auto size = flag_u(args, "size", 16 * 1024);
  const bool is_l2 = args.flags.count("l2") > 0;
  const double delay_ps = flag_d(args, "delay-ps", 1400.0);
  const auto scheme_it = args.flags.find("scheme");
  opt::Scheme scheme = opt::Scheme::kArrayPeriphery;
  if (scheme_it != args.flags.end()) {
    if (scheme_it->second == "I") {
      scheme = opt::Scheme::kPerComponent;
    } else if (scheme_it->second == "II") {
      scheme = opt::Scheme::kArrayPeriphery;
    } else if (scheme_it->second == "III") {
      scheme = opt::Scheme::kUniform;
    } else {
      std::cerr << "unknown scheme: " << scheme_it->second << "\n";
      return 2;
    }
  }
  core::Explorer explorer;
  const auto& model =
      is_l2 ? explorer.l2_model(size) : explorer.l1_model(size);
  const auto eval = opt::structural_evaluator(model);
  const auto grid = opt::KnobGrid::paper_default();
  const auto result = opt::optimize_single_cache(
      eval, grid, scheme, units::ps_to_seconds(delay_ps));
  if (!result) {
    std::cerr << "error: " << result.why().describe() << "\n";
    return 4;
  }
  std::cout << "scheme " << opt::scheme_name(scheme) << " optimum under "
            << fmt_fixed(delay_ps, 0) << " pS:\n";
  TextTable t;
  t.set_header({"component", "Vth [V]", "Tox [A]"});
  for (auto kind : cachemodel::kAllComponents) {
    const auto& k = result->assignment.get(kind);
    t.add_row({std::string(cachemodel::component_name(kind)),
               fmt_fixed(k.vth_v, 2), fmt_fixed(k.tox_a, 0)});
  }
  std::cout << t << "leakage "
            << fmt_fixed(units::watts_to_mw(result->leakage_w), 4)
            << " mW at "
            << fmt_fixed(units::seconds_to_ps(result->access_time_s), 1)
            << " pS\n";
  return 0;
}

int cmd_run(const Args& args) {
  core::Explorer explorer = make_explorer(args);
  const std::string& which = args.positional;
  if (which == "fig1") {
    std::cout << core::fig1_long_table(
        explorer.fig1_fixed_knob(explorer.config().l1_size_bytes));
  } else if (which == "schemes") {
    const auto ladder =
        explorer.delay_ladder(explorer.config().l1_size_bytes, 9);
    std::cout << core::scheme_long_table(explorer.scheme_comparison(
        explorer.config().l1_size_bytes, ladder));
  } else if (which == "l2") {
    std::cout << core::size_sweep_table(
        explorer.l2_size_sweep(opt::Scheme::kUniform,
                               explorer.l2_squeeze_target_s()),
        "l2_uniform");
  } else if (which == "l2split") {
    std::cout << core::size_sweep_table(
        explorer.l2_size_sweep(opt::Scheme::kArrayPeriphery,
                               explorer.l2_squeeze_target_s()),
        "l2_split");
  } else if (which == "l1") {
    std::cout << core::size_sweep_table(
        explorer.l1_size_sweep(explorer.l2_squeeze_target_s(1.25)), "l1");
  } else if (which == "fig2") {
    std::cout << core::fig2_long_table(explorer.fig2_tuple_frontiers());
  } else {
    std::cerr << "unknown experiment: '" << which << "'\n";
    return usage();
  }
  print_degradations(explorer);
  return 0;
}

int cmd_frontier(const Args& args) {
  const auto size = flag_u(args, "size", 16 * 1024);
  const bool is_l2 = args.flags.count("l2") > 0;
  opt::Scheme scheme = opt::Scheme::kArrayPeriphery;
  const auto it = args.flags.find("scheme");
  if (it != args.flags.end()) {
    if (it->second == "I") scheme = opt::Scheme::kPerComponent;
    else if (it->second == "III") scheme = opt::Scheme::kUniform;
  }
  core::Explorer explorer;
  const auto& model =
      is_l2 ? explorer.l2_model(size) : explorer.l1_model(size);
  const auto front = opt::scheme_frontier(opt::structural_evaluator(model),
                                          opt::KnobGrid::paper_default(),
                                          scheme);
  TextTable t("leakage/delay frontier, scheme " + opt::scheme_name(scheme));
  t.set_header({"access time [pS]", "leakage [mW]"});
  for (const auto& p : front) {
    t.add_row({fmt_fixed(units::seconds_to_ps(p.access_time_s), 1),
               fmt_fixed(units::watts_to_mw(p.leakage_w), 4)});
  }
  std::cout << t;
  return 0;
}

int cmd_sensitivity(const Args& args) {
  const auto size = flag_u(args, "size", 16 * 1024);
  const bool is_l2 = args.flags.count("l2") > 0;
  const tech::DeviceKnobs at{flag_d(args, "vth", 0.35),
                             flag_d(args, "tox", 12.0)};
  core::Explorer explorer;
  const auto& model =
      is_l2 ? explorer.l2_model(size) : explorer.l1_model(size);
  const auto s = opt::cache_sensitivity(
      opt::structural_evaluator(model), at,
      explorer.config().technology.knobs);
  TextTable t("knob sensitivities at Vth=" + fmt_fixed(at.vth_v, 2) +
              "V, Tox=" + fmt_fixed(at.tox_a, 1) + "A");
  t.set_header({"metric", "vs Vth", "vs Tox"});
  t.add_row({"d ln(leakage) / d knob", fmt_fixed(s.leakage_vs_vth, 2) + " /V",
             fmt_fixed(s.leakage_vs_tox, 3) + " /A"});
  t.add_row({"d ln(delay) / d knob", fmt_fixed(s.delay_vs_vth, 2) + " /V",
             fmt_fixed(s.delay_vs_tox, 3) + " /A"});
  t.add_row({"leakage bought per delay",
             fmt_fixed(s.leakage_efficiency_vth(), 2),
             fmt_fixed(s.leakage_efficiency_tox(), 2)});
  std::cout << t;
  return 0;
}

int cmd_variation(const Args& args) {
  const auto size = flag_u(args, "size", 16 * 1024);
  const bool is_l2 = args.flags.count("l2") > 0;
  const cachemodel::ComponentAssignment knobs(
      tech::DeviceKnobs{flag_d(args, "vth", 0.35), flag_d(args, "tox", 12.0)});
  core::Explorer explorer;
  const auto& model =
      is_l2 ? explorer.l2_model(size) : explorer.l1_model(size);
  cachemodel::VariationParams p;
  p.samples = static_cast<int>(flag_u(args, "samples", 500));
  const auto nominal = model.evaluate(knobs);
  const auto r = cachemodel::monte_carlo(model, knobs, p,
                                         nominal.access_time_s);
  TextTable t("Monte Carlo (" + std::to_string(r.samples) + " samples)");
  t.set_header({"metric", "nominal", "mean", "p95", "max"});
  t.add_row({"leakage [mW]",
             fmt_fixed(units::watts_to_mw(nominal.leakage_w), 3),
             fmt_fixed(units::watts_to_mw(r.leakage_w.mean), 3),
             fmt_fixed(units::watts_to_mw(r.leakage_w.p95), 3),
             fmt_fixed(units::watts_to_mw(r.leakage_w.max), 3)});
  t.add_row({"access time [pS]",
             fmt_fixed(units::seconds_to_ps(nominal.access_time_s), 1),
             fmt_fixed(units::seconds_to_ps(r.access_time_s.mean), 1),
             fmt_fixed(units::seconds_to_ps(r.access_time_s.p95), 1),
             fmt_fixed(units::seconds_to_ps(r.access_time_s.max), 1)});
  std::cout << t << "timing yield at the nominal delay: "
            << fmt_fixed(r.timing_yield * 100.0, 1) << "%\n";
  return 0;
}

int cmd_export(const Args& args) {
  const auto it = args.flags.find("dir");
  const std::string dir = it == args.flags.end() ? "nanocache_csv" : it->second;
  core::Explorer explorer = make_explorer(args);
  const int n = core::export_all_csv(explorer, dir);
  std::cout << "wrote " << n << " CSV files to " << dir << "/\n";
  print_degradations(explorer);
  return 0;
}

/// Error-taxonomy to process-exit-code mapping.  Scripts branch on these
/// without parsing stderr.
int exit_code_for(ErrorCategory category) {
  switch (category) {
    case ErrorCategory::kConfig:
      return 2;
    case ErrorCategory::kIo:
      return 3;
    case ErrorCategory::kNumericDomain:
    case ErrorCategory::kInfeasible:
      return 4;
    case ErrorCategory::kInternal:
      return 1;
  }
  return 1;
}

}  // namespace

/// Apply the global --threads flag before any command runs.  0 or a
/// missing flag keeps the pool default (hardware concurrency, or the
/// NANOCACHE_THREADS environment variable when set).
void apply_threads_flag(const Args& args) {
  const auto it = args.flags.find("threads");
  if (it == args.flags.end()) return;
  int threads = 0;
  try {
    threads = std::stoi(it->second);
  } catch (const std::exception&) {
    throw Error(ErrorCategory::kConfig,
                "--threads expects an integer, got '" + it->second + "'");
  }
  NC_REQUIRE(threads >= 0, "--threads must be >= 0");
  par::set_default_threads(threads);
}

int main(int argc, char** argv) {
  try {
    const Args args = parse(argc, argv);
    apply_threads_flag(args);
    if (args.command == "list") return cmd_list();
    if (args.command == "cache") return cmd_cache(args);
    if (args.command == "optimize") return cmd_optimize(args);
    if (args.command == "run") return cmd_run(args);
    if (args.command == "frontier") return cmd_frontier(args);
    if (args.command == "sensitivity") return cmd_sensitivity(args);
    if (args.command == "variation") return cmd_variation(args);
    if (args.command == "export") return cmd_export(args);
    return usage();
  } catch (const Error& e) {
    std::cerr << "error: " << e.what() << "\n";
    return exit_code_for(e.category());
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
