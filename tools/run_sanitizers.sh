#!/usr/bin/env bash
# Build and run the full test suite under sanitizers (the `asan`, `ubsan`
# and `tsan` CMake presets).  The fault-injection suite in particular is
# meant to run under asan/ubsan: an injected fault that corrupts memory
# instead of throwing a typed error fails here even if the plain build
# happens to pass.  The tsan preset targets the parallel sweep engine:
# NANOCACHE_THREADS=4 forces multi-threaded sweeps even on small CI boxes,
# so data races in the pool or the explorer caches surface as hard errors.
#
# Usage: tools/run_sanitizers.sh [asan|ubsan|tsan ...]   (default: asan ubsan)
set -euo pipefail
cd "$(dirname "$0")/.."

presets=("${@:-asan ubsan}")
# shellcheck disable=SC2128,SC2086
read -r -a presets <<< "${presets[*]}"

# Exercise the thread pool under the sanitizers regardless of the host's
# core count (results are identical at any thread count by contract).
export NANOCACHE_THREADS=4

for preset in "${presets[@]}"; do
  echo "=== configuring ${preset} ==="
  cmake --preset "${preset}"
  echo "=== building ${preset} ==="
  cmake --build --preset "${preset}" -j "$(nproc)"
  echo "=== testing ${preset} ==="
  ctest --preset "${preset}" -j "$(nproc)"
done
echo "=== all sanitizer suites passed ==="
