#!/usr/bin/env bash
# Build and run the full test suite under ASan and UBSan (the `asan` and
# `ubsan` CMake presets).  The fault-injection suite in particular is meant
# to run under both: an injected fault that corrupts memory instead of
# throwing a typed error fails here even if the plain build happens to pass.
#
# Usage: tools/run_sanitizers.sh [asan|ubsan]   (default: both)
set -euo pipefail
cd "$(dirname "$0")/.."

presets=("${@:-asan ubsan}")
# shellcheck disable=SC2128,SC2086
read -r -a presets <<< "${presets[*]}"

for preset in "${presets[@]}"; do
  echo "=== configuring ${preset} ==="
  cmake --preset "${preset}"
  echo "=== building ${preset} ==="
  cmake --build --preset "${preset}" -j "$(nproc)"
  echo "=== testing ${preset} ==="
  ctest --preset "${preset}" -j "$(nproc)"
done
echo "=== all sanitizer suites passed ==="
