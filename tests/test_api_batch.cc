// Batch evaluation contract: JSONL round-trips, canonical request keys,
// request-level dedup accounting, and the headline determinism guarantee —
// run_batch produces byte-identical responses to sequential serve() calls
// at any thread count.
#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "api/batch_io.h"
#include "nanocache/api.h"
#include "util/parallel.h"

namespace nanocache::api {
namespace {

/// Restores the process-wide default thread count on scope exit.
struct ThreadCountGuard {
  ~ThreadCountGuard() { par::set_default_threads(0); }
};

std::shared_ptr<Service> make_service() {
  auto service = Service::create({});
  EXPECT_TRUE(service.ok()) << service.error().message;
  return service.value();
}

/// A small mixed workload with deliberate overlap: duplicate requests
/// (ids differ), an optimize whose delay target reappears inside a schemes
/// sweep, and an eval repeated at the same knobs.
std::vector<Request> mixed_workload() {
  std::vector<Request> requests;

  for (int i = 0; i < 3; ++i) {
    Request r;
    r.id = "eval-" + std::to_string(i);
    r.kind = RequestKind::kEval;
    r.eval.knobs = Knobs{0.25 + 0.05 * (i % 2), 12.0};  // i==2 repeats i==0
    requests.push_back(std::move(r));
  }

  for (int i = 0; i < 2; ++i) {
    Request r;
    r.id = "opt-" + std::to_string(i);
    r.kind = RequestKind::kOptimize;
    r.optimize.scheme = i == 0 ? SchemeId::kII : SchemeId::kIII;
    r.optimize.delay.target_ps = 1500.0;
    requests.push_back(std::move(r));
  }

  Request sweep;
  sweep.id = "sweep-0";
  sweep.kind = RequestKind::kSweep;
  sweep.sweep.kind = SweepKind::kSchemes;
  sweep.sweep.delay.targets_ps = {1500.0};  // shares "opt|" memo entries
  requests.push_back(std::move(sweep));

  return requests;
}

TEST(ApiBatch, RequestJsonRoundTrips) {
  for (const auto& request : mixed_workload()) {
    const std::string encoded = request_to_json(request);
    const auto parsed = parse_request_json(encoded);
    ASSERT_TRUE(parsed.ok()) << parsed.error().message << " for " << encoded;
    EXPECT_EQ(request_to_json(parsed.value()), encoded);
    EXPECT_EQ(request_canonical_key(parsed.value()),
              request_canonical_key(request));
  }
}

TEST(ApiBatch, ParseRejectsMalformedRequests) {
  const auto expect_config_error = [](const std::string& line) {
    const auto parsed = parse_request_json(line);
    ASSERT_FALSE(parsed.ok()) << line;
    EXPECT_EQ(parsed.error().code, ErrorCode::kConfig) << line;
  };
  expect_config_error("not json at all");
  expect_config_error("{\"kind\":\"eval\"}");  // missing schema_version
  expect_config_error("{\"schema_version\":99,\"kind\":\"eval\"}");
  expect_config_error("{\"schema_version\":1}");  // missing kind
  expect_config_error("{\"schema_version\":1,\"kind\":\"bogus\"}");
  expect_config_error(
      "{\"schema_version\":1,\"kind\":\"eval\",\"level\":\"l3\"}");

  // Unknown keys are ignored (additive schema evolution).
  const auto parsed = parse_request_json(
      "{\"schema_version\":1,\"kind\":\"eval\",\"future_field\":42}");
  EXPECT_TRUE(parsed.ok());
}

TEST(ApiBatch, CanonicalKeyIgnoresIdOnly) {
  Request a;
  a.id = "a";
  a.kind = RequestKind::kOptimize;
  Request b = a;
  b.id = "b";
  EXPECT_EQ(request_canonical_key(a), request_canonical_key(b));

  b.optimize.delay.target_ps += 1.0;
  EXPECT_NE(request_canonical_key(a), request_canonical_key(b));
}

TEST(ApiBatch, DedupStatsAndIdEcho) {
  const auto service = make_service();
  const auto requests = mixed_workload();
  const auto batch = service->run_batch(requests);

  ASSERT_EQ(batch.responses.size(), requests.size());
  // eval-2 repeats eval-0's payload: one request-level hit.
  EXPECT_EQ(batch.stats.requests, requests.size());
  EXPECT_EQ(batch.stats.unique_requests, requests.size() - 1);
  EXPECT_EQ(batch.stats.request_hits, 1u);
  // The schemes sweep reuses the optimize requests' "opt|" entries.
  EXPECT_GT(batch.stats.memo_hits, 0u);
  EXPECT_GT(batch.stats.hit_rate(), 0.0);

  // Every response answers to its own request's id, duplicates included.
  for (std::size_t i = 0; i < requests.size(); ++i) {
    EXPECT_EQ(batch.responses[i].id, requests[i].id);
    EXPECT_TRUE(batch.responses[i].ok) << batch.responses[i].error.message;
  }
  // The duplicate's payload bytes equal the original's.
  Response copy = batch.responses[2];
  copy.id = batch.responses[0].id;
  EXPECT_EQ(response_to_json(copy), response_to_json(batch.responses[0]));
}

TEST(ApiBatch, BatchMatchesSequentialAtAnyThreadCount) {
  ThreadCountGuard guard;
  const auto requests = mixed_workload();

  // Sequential baseline: one warm service, serve() in input order.
  par::set_default_threads(1);
  std::vector<std::string> baseline;
  {
    const auto service = make_service();
    for (const auto& request : requests) {
      baseline.push_back(response_to_json(service->serve(request)));
    }
  }

  for (const int threads : {1, 8}) {
    par::set_default_threads(threads);
    const auto service = make_service();
    const auto batch = service->run_batch(requests);
    ASSERT_EQ(batch.responses.size(), baseline.size());
    for (std::size_t i = 0; i < baseline.size(); ++i) {
      EXPECT_EQ(response_to_json(batch.responses[i]), baseline[i])
          << "request " << i << " at " << threads << " thread(s)";
    }
  }
}

TEST(ApiBatch, JsonlStreamKeepsLineOrderAndReportsParseFailures) {
  ThreadCountGuard guard;
  par::set_default_threads(2);
  const auto service = make_service();

  std::istringstream in(
      "{\"schema_version\":1,\"id\":\"e1\",\"kind\":\"eval\"}\n"
      "\n"
      "this line is not json\n"
      "{\"schema_version\":1,\"id\":\"o1\",\"kind\":\"optimize\","
      "\"delay_ps\":1500}\r\n"
      "{\"schema_version\":1,\"id\":\"e2\",\"kind\":\"eval\"}\n");
  std::ostringstream out;
  const auto stats = run_batch_jsonl(*service, in, out);

  // Blank line skipped; the parse failure still occupies its slot.
  EXPECT_EQ(stats.requests, 4u);
  EXPECT_EQ(stats.unique_requests, 2u);  // e1 == e2 structurally
  EXPECT_EQ(stats.request_hits, 1u);

  std::vector<std::string> lines;
  std::string line;
  std::istringstream rendered(out.str());
  while (std::getline(rendered, line)) lines.push_back(line);
  ASSERT_EQ(lines.size(), 4u);
  EXPECT_NE(lines[0].find("\"id\":\"e1\""), std::string::npos);
  EXPECT_NE(lines[0].find("\"ok\":true"), std::string::npos);
  // The bad line reports its input line number (3: after e1 and the blank).
  EXPECT_NE(lines[1].find("\"ok\":false"), std::string::npos);
  EXPECT_NE(lines[1].find("line 3"), std::string::npos);
  EXPECT_NE(lines[2].find("\"id\":\"o1\""), std::string::npos);
  EXPECT_NE(lines[3].find("\"id\":\"e2\""), std::string::npos);

  // e1 and e2 received byte-identical payloads (ids aside).
  const auto strip_id = [](std::string s, const std::string& id) {
    const auto pos = s.find("\"id\":\"" + id + "\",");
    EXPECT_NE(pos, std::string::npos);
    s.erase(pos, id.size() + 8);
    return s;
  };
  EXPECT_EQ(strip_id(lines[0], "e1"), strip_id(lines[3], "e2"));
}

}  // namespace
}  // namespace nanocache::api
