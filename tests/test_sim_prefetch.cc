// Tests for the L2 next-line prefetcher extension.
#include <gtest/gtest.h>

#include "sim/generators.h"
#include "sim/hierarchy.h"

namespace nanocache::sim {
namespace {

TwoLevelHierarchy make_hier(bool prefetch) {
  TwoLevelHierarchy h(SetAssociativeCache(4096, 32, 2),
                      SetAssociativeCache(64 * 1024, 64, 8));
  if (prefetch) h.enable_l2_next_line_prefetch();
  return h;
}

TEST(Prefetch, DisabledByDefault) {
  auto h = make_hier(false);
  h.access(0x10000, false);
  EXPECT_EQ(h.stats().l2_prefetches, 0u);
  EXPECT_FALSE(h.l2().contains(0x10040));
}

TEST(Prefetch, MissFetchesNextBlock) {
  auto h = make_hier(true);
  h.access(0x10000, false);
  EXPECT_EQ(h.stats().l2_prefetches, 1u);
  EXPECT_TRUE(h.l2().contains(0x10000));
  EXPECT_TRUE(h.l2().contains(0x10040));  // next 64B block
}

TEST(Prefetch, NoDuplicateFetchWhenResident) {
  auto h = make_hier(true);
  h.access(0x10040, false);  // brings in 0x10040 and prefetches 0x10080
  const auto before = h.stats().l2_prefetches;
  h.access(0x10000, false);  // demand miss; next block 0x10040 resident
  EXPECT_EQ(h.stats().l2_prefetches, before);
}

TEST(Prefetch, DemandCountersUnaffected) {
  auto on = make_hier(true);
  auto off = make_hier(false);
  for (std::uint64_t a = 0; a < 64; ++a) {
    on.access(0x40000 + a * 4096, false);
    off.access(0x40000 + a * 4096, false);
  }
  // Pure random-strided misses: prefetches never help, demand stats match.
  EXPECT_EQ(on.stats().l2_misses, off.stats().l2_misses);
  EXPECT_EQ(on.stats().l2_accesses, off.stats().l2_accesses);
  EXPECT_GT(on.stats().l2_prefetches, 0u);
  EXPECT_GT(on.stats().memory_accesses, off.stats().memory_accesses);
}

TEST(Prefetch, HelpsSequentialStreams) {
  auto run = [](bool prefetch) {
    // Footprint far beyond L2 so every block is a compulsory miss.
    StrideGenerator gen(0, 8, 32ull << 20, 0.0, 1);
    auto h = make_hier(prefetch);
    h.warmup(gen, 10'000);
    h.run(gen, 200'000);
    return h.stats().l2_local_miss_rate();
  };
  const double without = run(false);
  const double with = run(true);
  // Next-line prefetch should absorb roughly half the sequential demand
  // misses (it runs exactly one block ahead).
  EXPECT_LT(with, without * 0.7);
}

TEST(Prefetch, DoesNotHelpPointerChase) {
  auto run = [](bool prefetch) {
    PointerChaseGenerator gen(0, 8 << 20, 64, 3);
    auto h = make_hier(prefetch);
    h.warmup(gen, 10'000);
    h.run(gen, 100'000);
    return h.stats().l2_local_miss_rate();
  };
  const double without = run(false);
  const double with = run(true);
  EXPECT_NEAR(with, without, without * 0.1 + 0.02);
}

}  // namespace
}  // namespace nanocache::sim
