// Differential tests for the dominance-pruned search engine: byte-identical
// results (values, assignments, infeasibility diagnostics) against the
// exhaustive reference at every thread count, plus the >= 5x search-effort
// reduction the pruning exists for.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "cachemodel/fitted_cache.h"
#include "opt/pruned.h"
#include "opt/schemes.h"
#include "util/metrics.h"
#include "util/parallel.h"

namespace nanocache::opt {
namespace {

using cachemodel::CacheModel;
using cachemodel::ComponentKind;
using cachemodel::kAllComponents;

const CacheModel& cache16k() {
  static auto model = [] {
    tech::DeviceModel dev(tech::bptm65());
    return std::make_unique<CacheModel>(
        cachemodel::l1_organization(16 * 1024, dev),
        tech::DeviceModel(dev.params()));
  }();
  return *model;
}

/// A delay ladder spanning clearly infeasible through unconstrained.
std::vector<double> constraint_ladder() {
  std::vector<double> targets;
  for (double ps = 600.0; ps <= 2600.0; ps += 100.0) {
    targets.push_back(ps * 1e-12);
  }
  return targets;
}

void expect_identical(const OptOutcome<SchemeResult>& pruned,
                      const OptOutcome<SchemeResult>& exhaustive,
                      const std::string& context) {
  ASSERT_EQ(pruned.has_value(), exhaustive.has_value()) << context;
  if (!pruned.has_value()) {
    // Infeasibility diagnostics must match byte for byte: same constraint,
    // same fastest-achievable bound, same description.
    EXPECT_EQ(pruned.why().describe(), exhaustive.why().describe()) << context;
    return;
  }
  // Bitwise-equal doubles (EXPECT_EQ, not NEAR) and identical knobs: the
  // pruned engine must reproduce the exhaustive argmin exactly, including
  // grid-index tie-breaks and floating-point association.
  EXPECT_EQ(pruned->leakage_w, exhaustive->leakage_w) << context;
  EXPECT_EQ(pruned->access_time_s, exhaustive->access_time_s) << context;
  EXPECT_EQ(pruned->dynamic_energy_j, exhaustive->dynamic_energy_j) << context;
  EXPECT_TRUE(pruned->assignment == exhaustive->assignment) << context;
}

void run_differential(const ComponentEvaluator& eval, const KnobGrid& grid,
                      const std::string& label) {
  for (const Scheme scheme :
       {Scheme::kPerComponent, Scheme::kArrayPeriphery, Scheme::kUniform}) {
    for (const double target : constraint_ladder()) {
      const auto pruned = optimize_single_cache(eval, grid, scheme, target,
                                                SearchMode::kPruned);
      const auto exhaustive = optimize_single_cache(
          eval, grid, scheme, target, SearchMode::kExhaustive);
      expect_identical(pruned, exhaustive,
                       label + " scheme=" + scheme_name(scheme) +
                           " target=" + std::to_string(target));
    }
  }
}

TEST(PrunedSearch, MatchesExhaustiveOnStructuralModel) {
  run_differential(structural_evaluator(cache16k()),
                   KnobGrid::paper_default(), "structural/default");
}

TEST(PrunedSearch, MatchesExhaustiveOnFittedModel) {
  const auto fits = cachemodel::FittedCacheModel::fit(cache16k());
  run_differential(fitted_evaluator(fits, cache16k()),
                   KnobGrid::paper_default(), "fitted/default");
}

TEST(PrunedSearch, MatchesExhaustiveOnFineGrid) {
  run_differential(structural_evaluator(cache16k()), KnobGrid::fine(),
                   "structural/fine");
}

TEST(PrunedSearch, MatchesExhaustiveAtEveryThreadCount) {
  const auto eval = structural_evaluator(cache16k());
  const int before = par::default_threads();
  for (const int threads : {1, 8}) {
    par::set_default_threads(threads);
    run_differential(eval, KnobGrid::paper_default(),
                     "threads=" + std::to_string(threads));
  }
  par::set_default_threads(before);
}

TEST(PrunedSearch, CurveMatchesExhaustive) {
  const auto eval = structural_evaluator(cache16k());
  const auto grid = KnobGrid::paper_default();
  const auto targets = constraint_ladder();
  const auto pruned = leakage_delay_curve(eval, grid, Scheme::kPerComponent,
                                          targets, SearchMode::kPruned);
  const auto exhaustive = leakage_delay_curve(
      eval, grid, Scheme::kPerComponent, targets, SearchMode::kExhaustive);
  ASSERT_EQ(pruned.size(), exhaustive.size());
  for (std::size_t i = 0; i < pruned.size(); ++i) {
    EXPECT_EQ(pruned[i].delay_constraint_s, exhaustive[i].delay_constraint_s);
    expect_identical(OptOutcome<SchemeResult>(pruned[i].result),
                     OptOutcome<SchemeResult>(exhaustive[i].result),
                     "curve point " + std::to_string(i));
  }
}

TEST(PrunedSearch, SchemeOneEvaluatesAtLeastFiveTimesFewerCombos) {
  const auto eval = structural_evaluator(cache16k());
  const auto grid = KnobGrid::paper_default();
  auto& evaluated =
      metrics::Registry::instance().counter("opt.combos_evaluated");
  const auto measure = [&](SearchMode mode) {
    const std::uint64_t before = evaluated.value();
    for (const double target : constraint_ladder()) {
      (void)optimize_single_cache(eval, grid, Scheme::kPerComponent, target,
                                  mode);
    }
    return evaluated.value() - before;
  };
  const std::uint64_t exhaustive = measure(SearchMode::kExhaustive);
  const std::uint64_t pruned = measure(SearchMode::kPruned);
  ASSERT_GT(pruned, 0u);
  EXPECT_GE(exhaustive, 5 * pruned)
      << "exhaustive=" << exhaustive << " pruned=" << pruned;
}

TEST(PrunedSearch, SkippedCounterTracksAvoidedWork) {
  const auto eval = structural_evaluator(cache16k());
  auto& skipped = metrics::Registry::instance().counter("opt.combos_skipped");
  const std::uint64_t before = skipped.value();
  (void)optimize_single_cache(eval, KnobGrid::paper_default(),
                              Scheme::kPerComponent, 1.4e-9,
                              SearchMode::kPruned);
  EXPECT_GT(skipped.value(), before);
}

}  // namespace
}  // namespace nanocache::opt
