// Differential byte-identity suite for the parallel-throughput work: the
// checked-in 100-request fixture must produce a response stream byte-equal
// to the pre-change golden at every thread count, through both the batch
// path and a served unix socket under 8 concurrent connections (the latter
// doubles as the tsan soak of the sharded MemoCache — tier-1 runs under
// tools/run_sanitizers.sh tsan).
//
// Regenerating the golden after an *intentional* model change:
//   NANOCACHE_REGEN_GOLDEN=1 ./tests/test_batch_golden
#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "api/batch_io.h"
#include "nanocache/service.h"
#include "server/client.h"
#include "server/server.h"
#include "util/error.h"
#include "util/parallel.h"

namespace nanocache {
namespace {

/// Restores the process-wide thread default on scope exit so thread-count
/// sweeps can't leak into other tests of this binary.
class ThreadCountGuard {
 public:
  ~ThreadCountGuard() { par::set_default_threads(0); }
};

std::string data_path(const std::string& name) {
  return std::string(NANOCACHE_TEST_DATA_DIR) + "/" + name;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing fixture " << path;
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

std::shared_ptr<api::Service> make_service() {
  auto out = api::Service::create({});
  EXPECT_TRUE(out.ok()) << (out.ok() ? "" : out.error().message);
  return out.value();
}

std::string batch_output(const api::Service& service,
                         const std::string& input) {
  std::istringstream in(input);
  std::ostringstream out;
  api::run_batch_jsonl(service, in, out);
  return out.str();
}

/// True (and the golden rewritten) when the caller asked for regeneration;
/// tests then skip their comparisons.
bool maybe_regenerate_golden(const std::string& input) {
  if (std::getenv("NANOCACHE_REGEN_GOLDEN") == nullptr) return false;
  par::set_default_threads(1);
  const auto service = make_service();
  std::ofstream out(data_path("batch_responses_golden.jsonl"),
                    std::ios::binary);
  out << batch_output(*service, input);
  return true;
}

TEST(BatchGolden, ByteIdenticalToGoldenAtAnyThreadCount) {
  ThreadCountGuard guard;
  const std::string input = read_file(data_path("batch_requests.jsonl"));
  ASSERT_FALSE(input.empty());
  if (maybe_regenerate_golden(input)) {
    GTEST_SKIP() << "golden regenerated";
  }
  const std::string golden = read_file(data_path("batch_responses_golden.jsonl"));
  ASSERT_FALSE(golden.empty());

  for (int threads : {1, 2, 8}) {
    par::set_default_threads(threads);
    // Fresh service per thread count: memo and disk state from a previous
    // pass must not be able to mask a divergence.
    const auto service = make_service();
    EXPECT_EQ(batch_output(*service, input), golden)
        << "threads=" << threads;
  }
}

TEST(BatchGolden, EightServedConnectionsEachMatchGolden) {
  ThreadCountGuard guard;
  const std::string input = read_file(data_path("batch_requests.jsonl"));
  ASSERT_FALSE(input.empty());
  if (maybe_regenerate_golden(input)) {
    GTEST_SKIP() << "golden regenerated";
  }
  const std::string golden = read_file(data_path("batch_responses_golden.jsonl"));

  par::set_default_threads(8);
  const auto service = make_service();
  server::ListenSpec spec;
  spec.kind = server::ListenKind::kUnix;
  spec.path = testing::TempDir() + "nc_golden_" + std::to_string(::getpid()) +
              ".sock";
  server::Server server(service, {spec, 1u << 20, /*queue_capacity=*/64,
                                  /*workers=*/8});
  server.start();

  constexpr int kClients = 8;
  std::vector<std::string> got(kClients);
  std::vector<std::string> errors(kClients);
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      try {
        server::Client client = server::Client::connect(server.config().listen);
        client.send(input);
        client.shutdown_write();
        std::string out;
        while (auto line = client.read_line()) {
          out += *line;
          out += '\n';
        }
        got[c] = std::move(out);
      } catch (const Error& e) {
        errors[c] = e.what();
      }
    });
  }
  for (auto& t : clients) t.join();
  server.shutdown();
  server.wait();

  for (int c = 0; c < kClients; ++c) {
    EXPECT_TRUE(errors[c].empty()) << "client " << c << ": " << errors[c];
    EXPECT_EQ(got[c], golden) << "client " << c;
  }
  // The sharded memo cache must have been shared across connections: 8
  // identical 100-request streams can miss at most once per unique key.
  const auto stats = service->memo_stats();
  EXPECT_GT(stats.hits, 0u);
}

}  // namespace
}  // namespace nanocache
