// Parameterized scaling sweeps: structural-model invariants across the
// full range of cache sizes the experiments touch (4 KB L1 through 4 MB
// L2).  These are the properties the Section 5 size sweeps lean on.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "cachemodel/cache_model.h"

namespace nanocache::cachemodel {
namespace {

struct SizeCase {
  std::uint64_t bytes;
  bool is_l2;
};

std::unique_ptr<CacheModel> build(const SizeCase& c) {
  tech::DeviceModel dev(tech::bptm65());
  auto org = c.is_l2 ? l2_organization(c.bytes, dev)
                     : l1_organization(c.bytes, dev);
  return std::make_unique<CacheModel>(org, tech::DeviceModel(dev.params()));
}

class SizeScaling : public ::testing::TestWithParam<SizeCase> {};

TEST_P(SizeScaling, MetricsPositiveAndFinite) {
  const auto m = build(GetParam());
  for (double vth : {0.2, 0.5}) {
    for (double tox : {10.0, 14.0}) {
      const auto r = m->evaluate_uniform({vth, tox});
      EXPECT_GT(r.access_time_s, 0.0);
      EXPECT_LT(r.access_time_s, 100e-9);
      EXPECT_GT(r.leakage_w, 0.0);
      EXPECT_LT(r.leakage_w, 100.0);
      EXPECT_GT(r.dynamic_energy_j, 0.0);
      EXPECT_LT(r.dynamic_energy_j, 1e-6);
      EXPECT_GT(r.area_um2, 0.0);
    }
  }
}

TEST_P(SizeScaling, KnobMonotonicityHoldsAtEverySize) {
  const auto m = build(GetParam());
  EXPECT_LT(m->evaluate_uniform({0.2, 10.0}).access_time_s,
            m->evaluate_uniform({0.5, 14.0}).access_time_s);
  EXPECT_GT(m->evaluate_uniform({0.2, 10.0}).leakage_w,
            m->evaluate_uniform({0.5, 14.0}).leakage_w);
}

TEST_P(SizeScaling, SplitAssignmentDominatesUniformSlow) {
  // Array conservative + periphery fast must be faster than all-
  // conservative and less leaky than all-fast, at every size.
  const auto m = build(GetParam());
  const auto split = m->evaluate(
      ComponentAssignment::split({0.5, 14.0}, {0.2, 10.0}));
  EXPECT_LT(split.access_time_s,
            m->evaluate_uniform({0.5, 14.0}).access_time_s);
  EXPECT_LT(split.leakage_w, m->evaluate_uniform({0.2, 10.0}).leakage_w);
}

TEST_P(SizeScaling, TagOverheadBounded) {
  const auto m = build(GetParam());
  const auto& org = m->organization();
  const double overhead =
      static_cast<double>(org.total_bits()) / org.data_bits();
  EXPECT_GT(overhead, 1.0);
  EXPECT_LT(overhead, 1.25);  // tags are a thin slice of the array
}

INSTANTIATE_TEST_SUITE_P(
    PaperSizeRange, SizeScaling,
    ::testing::Values(SizeCase{4 * 1024, false}, SizeCase{8 * 1024, false},
                      SizeCase{16 * 1024, false}, SizeCase{32 * 1024, false},
                      SizeCase{64 * 1024, false},
                      SizeCase{256 * 1024, true}, SizeCase{512 * 1024, true},
                      SizeCase{1024 * 1024, true},
                      SizeCase{2048 * 1024, true},
                      SizeCase{4096 * 1024, true}),
    [](const auto& info) {
      return std::string(info.param.is_l2 ? "L2_" : "L1_") +
             std::to_string(info.param.bytes / 1024) + "K";
    });

TEST(SizeScalingCross, LeakageRoughlyLinearInCapacity) {
  // Same level, same knobs: leakage per byte within a 2x band across sizes.
  const tech::DeviceKnobs k{0.35, 12.0};
  std::vector<double> per_byte;
  for (std::uint64_t size : {256ull << 10, 1024ull << 10, 4096ull << 10}) {
    const auto m = build({size, true});
    per_byte.push_back(m->evaluate_uniform(k).leakage_w /
                       static_cast<double>(size));
  }
  for (double v : per_byte) {
    EXPECT_GT(v, per_byte[0] * 0.5);
    EXPECT_LT(v, per_byte[0] * 2.0);
  }
}

TEST(SizeScalingCross, AccessTimeGrowsSublinearly) {
  // 16x capacity should cost far less than 16x delay (banking).
  const tech::DeviceKnobs k{0.35, 12.0};
  const auto small = build({256 * 1024, true});
  const auto large = build({4096 * 1024, true});
  const double ratio = large->evaluate_uniform(k).access_time_s /
                       small->evaluate_uniform(k).access_time_s;
  EXPECT_GT(ratio, 1.2);
  EXPECT_LT(ratio, 5.0);
}

}  // namespace
}  // namespace nanocache::cachemodel
