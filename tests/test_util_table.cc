// Unit tests for the table/CSV formatter and error plumbing.
#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "util/error.h"
#include "util/table.h"

namespace nanocache {
namespace {

TEST(TextTable, RendersHeaderAndRows) {
  TextTable t("demo");
  t.set_header({"a", "bb"});
  t.add_row({"1", "2"});
  t.add_row({"33", "4"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("== demo =="), std::string::npos);
  EXPECT_NE(s.find("| a "), std::string::npos);
  EXPECT_NE(s.find("| 33 "), std::string::npos);
  EXPECT_EQ(t.row_count(), 2u);
}

TEST(TextTable, PadsRaggedRows) {
  TextTable t;
  t.set_header({"x", "y", "z"});
  t.add_row({"only-one"});
  const std::string s = t.to_string();
  // Every data line must have the same number of separators as the header.
  const auto count_pipes = [](const std::string& line) {
    return std::count(line.begin(), line.end(), '|');
  };
  std::istringstream is(s);
  std::string line;
  long pipes = -1;
  while (std::getline(is, line)) {
    if (line.empty() || line[0] != '|') continue;
    if (pipes == -1) {
      pipes = count_pipes(line);
    } else {
      EXPECT_EQ(count_pipes(line), pipes);
    }
  }
  EXPECT_EQ(pipes, 4);
}

TEST(TextTable, EmptyTableRendersTitleOnly) {
  TextTable t("empty");
  EXPECT_EQ(t.to_string(), "== empty ==\n");
}

TEST(TextTable, CsvEscapesSpecialCells) {
  TextTable t;
  t.set_header({"name", "note"});
  t.add_row({"a,b", "say \"hi\""});
  const std::string csv = t.to_csv();
  EXPECT_NE(csv.find("\"a,b\""), std::string::npos);
  EXPECT_NE(csv.find("\"say \"\"hi\"\"\""), std::string::npos);
}

TEST(TextTable, CsvPlainCellsUnquoted) {
  TextTable t;
  t.add_row({"plain", "1.5"});
  EXPECT_EQ(t.to_csv(), "plain,1.5\n");
}

TEST(FmtFixed, RespectsDigits) {
  EXPECT_EQ(fmt_fixed(3.14159, 2), "3.14");
  EXPECT_EQ(fmt_fixed(2.0, 0), "2");
  EXPECT_EQ(fmt_fixed(-1.005, 1), "-1.0");
}

TEST(FmtBytes, HumanReadable) {
  EXPECT_EQ(fmt_bytes(512), "512B");
  EXPECT_EQ(fmt_bytes(4096), "4KB");
  EXPECT_EQ(fmt_bytes(16 * 1024), "16KB");
  EXPECT_EQ(fmt_bytes(1024 * 1024), "1MB");
  EXPECT_EQ(fmt_bytes(3 * 1024 * 1024), "3MB");
}

TEST(FmtBytes, NonRoundFallsBack) {
  EXPECT_EQ(fmt_bytes(1536), "1536B");
}

TEST(Error, RequireMacroThrowsWithContext) {
  try {
    NC_REQUIRE(1 == 2, "the message");
    FAIL() << "expected throw";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("the message"), std::string::npos);
    EXPECT_NE(what.find("1 == 2"), std::string::npos);
    EXPECT_NE(what.find("test_util_table.cc"), std::string::npos);
  }
}

TEST(Error, RequirePassesSilently) {
  EXPECT_NO_THROW(NC_REQUIRE(true, "never"));
}

}  // namespace
}  // namespace nanocache
