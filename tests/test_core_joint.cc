// Tests for the scheme-frontier primitive and the joint L1 x L2 sizing
// extension.
#include <gtest/gtest.h>

#include <memory>

#include "core/explorer.h"
#include "opt/schemes.h"
#include "util/error.h"

namespace nanocache::core {
namespace {

Explorer& explorer() {
  static Explorer e;
  return e;
}

TEST(SchemeFrontier, SortedAndStrictlyImproving) {
  const auto eval = opt::structural_evaluator(explorer().l1_model(16 * 1024));
  for (opt::Scheme s : {opt::Scheme::kPerComponent,
                        opt::Scheme::kArrayPeriphery,
                        opt::Scheme::kUniform}) {
    const auto front =
        opt::scheme_frontier(eval, explorer().config().grid, s);
    ASSERT_GT(front.size(), 3u);
    for (std::size_t i = 1; i < front.size(); ++i) {
      EXPECT_GT(front[i].access_time_s, front[i - 1].access_time_s);
      EXPECT_LT(front[i].leakage_w, front[i - 1].leakage_w);
    }
  }
}

TEST(SchemeFrontier, EndpointsMatchMinDelayAndMinLeak) {
  const auto eval = opt::structural_evaluator(explorer().l1_model(16 * 1024));
  const auto& grid = explorer().config().grid;
  const auto front =
      opt::scheme_frontier(eval, grid, opt::Scheme::kUniform);
  EXPECT_NEAR(front.front().access_time_s,
              opt::min_access_time(eval, grid, opt::Scheme::kUniform),
              front.front().access_time_s * 1e-9);
  // The slow end of the frontier is the global leakage minimum.
  const auto loose = opt::optimize_single_cache(eval, grid,
                                                opt::Scheme::kUniform, 1.0);
  ASSERT_TRUE(loose.has_value());
  EXPECT_NEAR(front.back().leakage_w, loose->leakage_w,
              loose->leakage_w * 1e-9);
}

TEST(SchemeFrontier, ConsistentWithConstrainedOptimizer) {
  // For any frontier point's access time used as a constraint, the
  // constrained optimizer must return the same leakage.
  const auto eval = opt::structural_evaluator(explorer().l1_model(16 * 1024));
  const auto& grid = explorer().config().grid;
  const auto front =
      opt::scheme_frontier(eval, grid, opt::Scheme::kArrayPeriphery);
  for (std::size_t i = 0; i < front.size(); i += front.size() / 5 + 1) {
    const auto r = opt::optimize_single_cache(
        eval, grid, opt::Scheme::kArrayPeriphery,
        front[i].access_time_s * (1 + 1e-12));
    ASSERT_TRUE(r.has_value());
    EXPECT_NEAR(r->leakage_w, front[i].leakage_w,
                front[i].leakage_w * 1e-9);
  }
}

TEST(SchemeFrontier, RicherSchemesDominate) {
  // At every scheme-III frontier point, scheme I achieves at most that
  // leakage at the same access time.
  const auto eval = opt::structural_evaluator(explorer().l1_model(16 * 1024));
  const auto& grid = explorer().config().grid;
  const auto f3 = opt::scheme_frontier(eval, grid, opt::Scheme::kUniform);
  const auto f1 =
      opt::scheme_frontier(eval, grid, opt::Scheme::kPerComponent);
  for (const auto& p3 : f3) {
    double best1 = 1e18;
    for (const auto& p1 : f1) {
      if (p1.access_time_s <= p3.access_time_s * (1 + 1e-12)) {
        best1 = std::min(best1, p1.leakage_w);
      }
    }
    EXPECT_LE(best1, p3.leakage_w * (1 + 1e-9));
  }
}

TEST(JointSizing, CoversCrossProduct) {
  const auto rows =
      explorer().joint_size_study(explorer().l2_squeeze_target_s(1.15));
  const auto& cfg = explorer().config();
  EXPECT_EQ(rows.size(), cfg.l1_size_sweep.size() * cfg.l2_size_sweep.size());
}

TEST(JointSizing, FeasibleRowsMeetTarget) {
  const double target = explorer().l2_squeeze_target_s(1.15);
  for (const auto& r : explorer().joint_size_study(target)) {
    if (!r.feasible) continue;
    EXPECT_LE(r.amat_s, target * (1 + 1e-9));
    EXPECT_NEAR(r.total_leakage_w, r.l1.leakage_w + r.l2.leakage_w,
                r.total_leakage_w * 1e-9);
  }
}

TEST(JointSizing, NeverWorseThanOneAtATime) {
  // With the L1 free, the joint optimum at (16K, any L2) must be at least
  // as good as the Section 5 one-at-a-time result for the same sizes.
  const double target = explorer().l2_squeeze_target_s(1.15);
  const auto joint = explorer().joint_size_study(target);
  const auto separate =
      explorer().l2_size_sweep(opt::Scheme::kArrayPeriphery, target);
  for (const auto& s : separate) {
    if (!s.feasible) continue;
    for (const auto& j : joint) {
      if (j.l1_size_bytes != explorer().config().l1_size_bytes ||
          j.l2_size_bytes != s.size_bytes || !j.feasible) {
        continue;
      }
      EXPECT_LE(j.total_leakage_w, s.total_leakage_w * (1 + 1e-9))
          << s.size_bytes;
    }
  }
}

TEST(JointSizing, SmallL1AlwaysOptimal) {
  const auto rows =
      explorer().joint_size_study(explorer().l2_squeeze_target_s(1.1));
  // Within each L2 column, the 4K L1 row must be minimal.
  for (std::uint64_t l2 : explorer().config().l2_size_sweep) {
    const Explorer::JointSizingRow* best = nullptr;
    for (const auto& r : rows) {
      if (r.l2_size_bytes != l2 || !r.feasible) continue;
      if (!best || r.total_leakage_w < best->total_leakage_w) best = &r;
    }
    if (best != nullptr) {
      EXPECT_EQ(best->l1_size_bytes,
                explorer().config().l1_size_sweep.front())
          << l2;
    }
  }
}

TEST(JointSizing, RejectsBadTarget) {
  EXPECT_THROW(explorer().joint_size_study(-1.0), Error);
}

}  // namespace
}  // namespace nanocache::core
