// Tests for the synthetic benchmark suite and the analytic miss models —
// including the cross-validation between the trace-driven simulator and
// the power-law curves Section 5's sweeps consume.
#include <gtest/gtest.h>

#include "sim/missmodel.h"
#include "sim/suite.h"
#include "util/error.h"

namespace nanocache::sim {
namespace {

TEST(MissModel, EvaluatesPowerLaw) {
  PowerLawMissModel m(0.2, 1024, 0.5, 0.01);
  EXPECT_NEAR(m(1024), 0.2, 1e-12);
  EXPECT_NEAR(m(4096), 0.1, 1e-12);  // 4x size, sqrt rule -> half
}

TEST(MissModel, ClampsToFloorAndOne) {
  PowerLawMissModel m(0.9, 1024, 1.0, 0.05);
  EXPECT_DOUBLE_EQ(m(1 << 30), 0.05);  // floor
  EXPECT_LE(m(1), 1.0);
}

TEST(MissModel, Validates) {
  EXPECT_THROW(PowerLawMissModel(0.0, 1024, 0.5, 0.0), Error);
  EXPECT_THROW(PowerLawMissModel(0.5, 1024, -0.5, 0.0), Error);
  EXPECT_THROW(PowerLawMissModel(0.5, 1024, 0.5, 0.6), Error);
  PowerLawMissModel ok(0.5, 1024, 0.5, 0.0);
  EXPECT_THROW(ok(0), Error);
}

TEST(MissModel, FitRecoversSyntheticCurve) {
  PowerLawMissModel truth(0.3, 4096, 0.4, 0.0001);
  std::vector<std::uint64_t> sizes;
  std::vector<double> rates;
  for (std::uint64_t s = 4096; s <= 4096 * 64; s *= 2) {
    sizes.push_back(s);
    rates.push_back(truth(s));
  }
  const auto fit = PowerLawMissModel::fit(sizes, rates);
  EXPECT_NEAR(fit.exponent(), 0.4, 0.01);
  EXPECT_NEAR(fit(16384) / truth(16384), 1.0, 0.02);
}

TEST(MissModel, FitRejectsRisingCurves) {
  EXPECT_THROW(
      PowerLawMissModel::fit({1024, 2048}, {0.1, 0.2}), Error);
}

TEST(MissModel, DefaultCurvesShape) {
  const auto curves = default_miss_curves();
  // L1: low and falling slowly across 4K-64K.
  EXPECT_LT(curves.l1(4096), 0.08);
  EXPECT_GT(curves.l1(4096), curves.l1(65536));
  EXPECT_LT(curves.l1(4096) / curves.l1(65536), 3.0);  // "do not vary much"
  // L2: falls with size, floor-dominated at the top.
  EXPECT_GT(curves.l2(256 * 1024), curves.l2(4096 * 1024));
  EXPECT_GT(curves.l2(4096 * 1024), 0.05);
}

TEST(Suite, HasEightNamedWorkloads) {
  const auto& suite = default_suite();
  ASSERT_EQ(suite.size(), 8u);
  for (const auto& w : suite) {
    EXPECT_FALSE(w.name.empty());
    auto gen = w.make(w.seed);
    ASSERT_NE(gen, nullptr);
    EXPECT_NO_THROW(gen->next());
  }
}

TEST(Suite, MakeWorkloadByName) {
  EXPECT_NE(make_workload("intcode"), nullptr);
  EXPECT_NE(make_workload("oltp", 123), nullptr);
  EXPECT_THROW(make_workload("no-such-benchmark"), Error);
}

TEST(Suite, WorkloadsAreDeterministic) {
  for (const auto& w : default_suite()) {
    auto a = w.make(w.seed);
    auto b = w.make(w.seed);
    for (int i = 0; i < 200; ++i) {
      EXPECT_EQ(a->next().address, b->next().address) << w.name;
    }
  }
}

// The heavier cross-validation: run a reduced suite sweep and check the
// properties the paper relies on.  Kept at modest trace lengths so the
// whole test file stays in seconds.
class SuiteCrossValidation : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    SuiteRunConfig cfg;
    cfg.l1_sizes = {4096, 16384, 65536};
    cfg.l2_sizes = {256 * 1024, 1024 * 1024, 4096 * 1024};
    cfg.warmup_refs = 60'000;
    cfg.measured_refs = 240'000;
    points_ = new std::vector<SuitePoint>(measure_suite(cfg));
    cfg_ = new SuiteRunConfig(cfg);
  }
  static void TearDownTestSuite() {
    delete points_;
    delete cfg_;
    points_ = nullptr;
    cfg_ = nullptr;
  }
  static std::vector<SuitePoint>* points_;
  static SuiteRunConfig* cfg_;
};

std::vector<SuitePoint>* SuiteCrossValidation::points_ = nullptr;
SuiteRunConfig* SuiteCrossValidation::cfg_ = nullptr;

TEST_F(SuiteCrossValidation, L1LocalMissRatesLowAndFlat) {
  const auto avg = average_l1_curve(*points_, cfg_->l1_sizes);
  for (double m : avg) {
    EXPECT_LT(m, 0.18);
    EXPECT_GT(m, 0.005);
  }
  EXPECT_LT(avg.front() / avg.back(), 3.0);  // 4K vs 64K: "do not vary much"
}

TEST_F(SuiteCrossValidation, L1MissRateFallsWithSize) {
  const auto avg = average_l1_curve(*points_, cfg_->l1_sizes);
  for (std::size_t i = 1; i < avg.size(); ++i) {
    EXPECT_LE(avg[i], avg[i - 1] * 1.05) << i;  // small noise band
  }
}

TEST_F(SuiteCrossValidation, L2LocalMissRateFallsWithSize) {
  const auto avg = average_l2_curve(*points_, cfg_->l2_sizes);
  EXPECT_LT(avg.back(), avg.front());
}

TEST_F(SuiteCrossValidation, L2CurveSameBallparkAsAnalyticModel) {
  // The analytic curve is a regime calibration, not a trace fit; require
  // agreement in order of magnitude and direction, not in value.
  const auto avg = average_l2_curve(*points_, cfg_->l2_sizes);
  const auto curves = default_miss_curves();
  for (std::size_t i = 0; i < cfg_->l2_sizes.size(); ++i) {
    const double model = curves.l2(cfg_->l2_sizes[i]);
    EXPECT_GT(avg[i], model * 0.3) << i;
    EXPECT_LT(avg[i], model * 4.0) << i;
  }
}

TEST_F(SuiteCrossValidation, PerWorkloadRatesAreSane) {
  for (const auto& p : *points_) {
    EXPECT_GE(p.l1_miss_rate, 0.0);
    EXPECT_LE(p.l1_miss_rate, 1.0);
    EXPECT_GE(p.l2_local_miss_rate, 0.0);
    EXPECT_LE(p.l2_local_miss_rate, 1.0);
  }
}

TEST(Suite, AverageCurveRejectsUnknownSizes) {
  std::vector<SuitePoint> pts{{"w", 4096, 65536, 0.1, 0.2}};
  EXPECT_THROW(average_l1_curve(pts, {8192}), Error);
}

}  // namespace
}  // namespace nanocache::sim
