// Unit + property tests for the analytical device model: leakage
// monotonicities, geometry scaling, drive strength, and parameter
// validation.  These are the physical invariants everything downstream
// (Figure 1's shape, the scheme optimizer's choices) rests on.
#include <gtest/gtest.h>

#include <cmath>

#include "tech/characterize.h"
#include "tech/device.h"
#include "util/error.h"

namespace nanocache::tech {
namespace {

DeviceModel make_model() { return DeviceModel(bptm65()); }

TEST(TechnologyParams, DefaultsValidate) {
  EXPECT_NO_THROW(bptm65().validate());
}

TEST(TechnologyParams, SubthresholdSwingRealistic) {
  // 65 nm-era swing: ~80-110 mV/decade.
  const double swing = bptm65().subthreshold_swing_mv_per_dec();
  EXPECT_GT(swing, 75.0);
  EXPECT_LT(swing, 115.0);
}

TEST(TechnologyParams, ValidationCatchesBadValues) {
  auto bad = bptm65();
  bad.vdd_v = -1.0;
  EXPECT_THROW(bad.validate(), Error);

  bad = bptm65();
  bad.knobs.vth_min_v = 0.6;  // empty range
  EXPECT_THROW(bad.validate(), Error);

  bad = bptm65();
  bad.bitline_swing_v = 2.0;  // above vdd
  EXPECT_THROW(bad.validate(), Error);

  bad = bptm65();
  bad.alpha_power = 3.0;
  EXPECT_THROW(bad.validate(), Error);
}

TEST(DeviceModel, GeometryScaleLinearInTox) {
  const auto dev = make_model();
  const double t0 = dev.params().tox_nominal_a;
  EXPECT_DOUBLE_EQ(dev.geometry_scale(t0), 1.0);
  EXPECT_NEAR(dev.geometry_scale(t0 * 1.5), 1.5, 1e-12);
  EXPECT_NEAR(dev.leff_um(14.0) / dev.leff_um(10.0), 1.4, 1e-12);
}

TEST(DeviceModel, GeometryScaleDisabledIsUnity) {
  auto p = bptm65();
  p.area_scaling_enabled = false;
  DeviceModel dev(p);
  EXPECT_DOUBLE_EQ(dev.geometry_scale(10.0), 1.0);
  EXPECT_DOUBLE_EQ(dev.geometry_scale(14.0), 1.0);
  EXPECT_DOUBLE_EQ(dev.cell_area_um2(10.0), dev.cell_area_um2(14.0));
}

TEST(DeviceModel, SubthresholdFallsExponentiallyWithVth) {
  const auto dev = make_model();
  const double i02 = dev.subthreshold_current_a(1.0, {0.2, 12.0});
  const double i03 = dev.subthreshold_current_a(1.0, {0.3, 12.0});
  const double i04 = dev.subthreshold_current_a(1.0, {0.4, 12.0});
  EXPECT_GT(i02, i03);
  EXPECT_GT(i03, i04);
  // Exponential: constant ratio per 100 mV.
  EXPECT_NEAR(i02 / i03, i03 / i04, (i02 / i03) * 1e-6);
}

TEST(DeviceModel, SubthresholdScalesWithWidth) {
  const auto dev = make_model();
  const DeviceKnobs k{0.3, 12.0};
  EXPECT_NEAR(dev.subthreshold_current_a(2.0, k),
              2.0 * dev.subthreshold_current_a(1.0, k), 1e-18);
}

TEST(DeviceModel, SubthresholdVanishesAtZeroVds) {
  const auto dev = make_model();
  EXPECT_DOUBLE_EQ(dev.subthreshold_current_a(1.0, {0.3, 12.0}, 0.0), 0.0);
}

TEST(DeviceModel, DiblRaisesLeakageWithVds) {
  const auto dev = make_model();
  const DeviceKnobs k{0.3, 12.0};
  const double full = dev.subthreshold_current_a(1.0, k, 1.0);
  const double half = dev.subthreshold_current_a(1.0, k, 0.5);
  EXPECT_GT(full, half);
}

TEST(DeviceModel, GateLeakageFallsExponentiallyWithTox) {
  const auto dev = make_model();
  const double i10 = dev.gate_leakage_current_a(1.0, {0.3, 10.0});
  const double i12 = dev.gate_leakage_current_a(1.0, {0.3, 12.0});
  const double i14 = dev.gate_leakage_current_a(1.0, {0.3, 14.0});
  EXPECT_GT(i10, i12);
  EXPECT_GT(i12, i14);
  // ~2.5-3x reduction per Angstrom (slope 1.05/A), corrected for the
  // linear gate-area growth with Tox.
  const double per_angstrom = std::pow(i10 / i14, 1.0 / 4.0);
  EXPECT_GT(per_angstrom, 2.2);
  EXPECT_LT(per_angstrom, 3.2);
}

TEST(DeviceModel, GateLeakageIndependentOfVth) {
  const auto dev = make_model();
  EXPECT_DOUBLE_EQ(dev.gate_leakage_current_a(1.0, {0.2, 12.0}),
                   dev.gate_leakage_current_a(1.0, {0.5, 12.0}));
}

TEST(DeviceModel, OffPowerCombinesBothMechanisms) {
  const auto dev = make_model();
  const DeviceKnobs k{0.35, 11.0};
  const double expected =
      dev.params().vdd_v * (dev.subthreshold_current_a(1.0, k) +
                            dev.gate_leakage_current_a(1.0, k));
  EXPECT_DOUBLE_EQ(dev.off_power_w(1.0, k), expected);
}

TEST(DeviceModel, OnCurrentFallsWithVthAndTox) {
  const auto dev = make_model();
  EXPECT_GT(dev.on_current_a(1.0, {0.2, 12.0}),
            dev.on_current_a(1.0, {0.4, 12.0}));
  EXPECT_GT(dev.on_current_a(1.0, {0.3, 10.0}),
            dev.on_current_a(1.0, {0.3, 14.0}));
}

TEST(DeviceModel, OnCurrentAtReferenceCorner) {
  const auto dev = make_model();
  EXPECT_NEAR(dev.on_current_a(1.0, {0.2, 10.0}),
              dev.params().idsat_ref_a_per_um, 1e-9);
}

TEST(DeviceModel, OnCurrentRejectsVthAboveVdd) {
  const auto dev = make_model();
  EXPECT_THROW(dev.on_current_a(1.0, {1.2, 12.0}), Error);
}

TEST(DeviceModel, EffectiveResistanceInverseOfDrive) {
  const auto dev = make_model();
  const DeviceKnobs k{0.3, 12.0};
  EXPECT_NEAR(dev.effective_resistance_ohm(2.0, k) * dev.on_current_a(2.0, k),
              dev.params().vdd_v, 1e-9);
}

TEST(DeviceModel, GateCapNearlyToxIndependent) {
  // Channel term W*L(Tox)*Cox(Tox): L grows as Cox shrinks, so the total
  // gate cap moves by well under 10% across the Tox window.
  const auto dev = make_model();
  const double c10 = dev.gate_cap_f(1.0, 10.0);
  const double c14 = dev.gate_cap_f(1.0, 14.0);
  EXPECT_NEAR(c10 / c14, 1.0, 0.1);
}

TEST(DeviceModel, CellAreaGrowsQuadratically) {
  // Section 2: the cell grows in BOTH dimensions with Tox.
  const auto dev = make_model();
  const double ratio = dev.cell_area_um2(14.0) / dev.cell_area_um2(10.0);
  EXPECT_NEAR(ratio, (14.0 / 10.0) * (14.0 / 10.0), 1e-9);
}

TEST(DeviceModel, CellAreaRealisticFor65nm) {
  const auto dev = make_model();
  const double a = dev.cell_area_um2(dev.params().tox_nominal_a);
  EXPECT_GT(a, 0.3);  // um^2
  EXPECT_LT(a, 1.0);
}

TEST(DeviceModel, CellLeakageMonotoneInBothKnobs) {
  const auto dev = make_model();
  for (double tox : {10.0, 12.0, 14.0}) {
    EXPECT_GT(dev.cell_leakage_w({0.2, tox}), dev.cell_leakage_w({0.35, tox}))
        << "tox=" << tox;
    EXPECT_GT(dev.cell_leakage_w({0.35, tox}), dev.cell_leakage_w({0.5, tox}))
        << "tox=" << tox;
  }
  for (double vth : {0.2, 0.35, 0.5}) {
    EXPECT_GT(dev.cell_leakage_w({vth, 10.0}), dev.cell_leakage_w({vth, 12.0}))
        << "vth=" << vth;
    EXPECT_GT(dev.cell_leakage_w({vth, 12.0}), dev.cell_leakage_w({vth, 14.0}))
        << "vth=" << vth;
  }
}

TEST(DeviceModel, CellLeakageNanoampScale) {
  // Per-cell leakage at mid knobs should be nA-scale (10s of nW at 1 V) —
  // the magnitude that makes a 16 KB array land in Figure 1's mW window.
  const auto dev = make_model();
  const double w = dev.cell_leakage_w({0.35, 12.0});
  EXPECT_GT(w, 1e-9);
  EXPECT_LT(w, 1e-6);
}

TEST(DeviceModel, CellReadCurrentFallsWithBothKnobs) {
  const auto dev = make_model();
  EXPECT_GT(dev.cell_read_current_a({0.2, 12.0}),
            dev.cell_read_current_a({0.4, 12.0}));
  EXPECT_GT(dev.cell_read_current_a({0.3, 10.0}),
            dev.cell_read_current_a({0.3, 14.0}));
}

TEST(DeviceModel, NegativeWidthRejected) {
  const auto dev = make_model();
  EXPECT_THROW(dev.subthreshold_current_a(-1.0, {0.3, 12.0}), Error);
  EXPECT_THROW(dev.gate_leakage_current_a(-1.0, {0.3, 12.0}), Error);
  EXPECT_THROW(dev.on_current_a(-1.0, {0.3, 12.0}), Error);
}

// --- gate vs subthreshold crossover: the paper's core premise -------------

TEST(DeviceModel, GateLeakageDominatesAtThinToxHighVth) {
  // "With aggressive Tox scaling, gate leakage can surpass subthreshold":
  // at Tox = 10 A and Vth = 0.4 V the tunnelling component must dominate.
  const auto dev = make_model();
  const DeviceKnobs k{0.4, 10.0};
  EXPECT_GT(dev.gate_leakage_current_a(1.0, k),
            dev.subthreshold_current_a(1.0, k));
}

TEST(DeviceModel, SubthresholdDominatesAtThickToxLowVth) {
  const auto dev = make_model();
  const DeviceKnobs k{0.2, 14.0};
  EXPECT_GT(dev.subthreshold_current_a(1.0, k),
            dev.gate_leakage_current_a(1.0, k));
}

// --- characterization sweeps ----------------------------------------------

TEST(Characterize, GridHasExpectedShape) {
  const auto grid = knob_grid(bptm65().knobs, 7, 5);
  EXPECT_EQ(grid.size(), 35u);
  EXPECT_DOUBLE_EQ(grid.front().vth_v, 0.20);
  EXPECT_DOUBLE_EQ(grid.front().tox_a, 10.0);
  EXPECT_DOUBLE_EQ(grid.back().vth_v, 0.50);
  EXPECT_DOUBLE_EQ(grid.back().tox_a, 14.0);
}

TEST(Characterize, GridRejectsDegenerateSteps) {
  EXPECT_THROW(knob_grid(bptm65().knobs, 1, 5), Error);
  EXPECT_THROW(knob_grid(bptm65().knobs, 5, 1), Error);
}

TEST(Characterize, EvaluatesFigureOfMerit) {
  const auto grid = knob_grid(bptm65().knobs, 3, 3);
  const auto samples =
      characterize(grid, [](const DeviceKnobs& k) { return k.vth_v + k.tox_a; });
  ASSERT_EQ(samples.size(), 9u);
  for (const auto& s : samples) {
    EXPECT_DOUBLE_EQ(s.value, s.knobs.vth_v + s.knobs.tox_a);
  }
}

// --- parameterized monotonicity sweep across the full knob plane ----------

class DeviceMonotonicity : public ::testing::TestWithParam<double> {};

TEST_P(DeviceMonotonicity, OffPowerFallsAlongVthAtFixedTox) {
  const auto dev = make_model();
  const double tox = GetParam();
  double prev = dev.off_power_w(1.0, {0.20, tox});
  for (double vth = 0.25; vth <= 0.501; vth += 0.05) {
    const double cur = dev.off_power_w(1.0, {vth, tox});
    EXPECT_LT(cur, prev) << "vth=" << vth << " tox=" << tox;
    prev = cur;
  }
}

TEST_P(DeviceMonotonicity, DelayProxyRisesAlongVthAtFixedTox) {
  const auto dev = make_model();
  const double tox = GetParam();
  double prev = dev.effective_resistance_ohm(1.0, {0.20, tox});
  for (double vth = 0.25; vth <= 0.501; vth += 0.05) {
    const double cur = dev.effective_resistance_ohm(1.0, {vth, tox});
    EXPECT_GT(cur, prev) << "vth=" << vth << " tox=" << tox;
    prev = cur;
  }
}

INSTANTIATE_TEST_SUITE_P(ToxPlane, DeviceMonotonicity,
                         ::testing::Values(10.0, 11.0, 12.0, 13.0, 14.0));

}  // namespace
}  // namespace nanocache::tech
