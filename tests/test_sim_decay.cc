// Tests for the cache-decay extension (gated-Vdd-style sleeping lines):
// decay semantics, the lazy dirty-drain accounting, and the live-fraction
// time integration.
#include <gtest/gtest.h>

#include "sim/cache.h"

namespace nanocache::sim {
namespace {

TEST(Decay, DisabledByDefault) {
  SetAssociativeCache c(1024, 32, 2);
  EXPECT_EQ(c.decay_interval(), 0u);
  EXPECT_DOUBLE_EQ(c.average_live_fraction(), 1.0);
}

TEST(Decay, LineSleepsAfterInterval) {
  SetAssociativeCache c(1024, 32, 2);
  c.enable_decay(4);
  c.access(0, false);
  // Five accesses to other sets age the line strictly past its interval.
  for (int i = 1; i <= 5; ++i) c.access(i * 32, false);
  EXPECT_FALSE(c.contains(0));  // asleep
  const auto r = c.access(0, false);
  EXPECT_FALSE(r.hit);
  EXPECT_EQ(c.stats().decay_misses, 1u);
}

TEST(Decay, LineSurvivesWithinInterval) {
  SetAssociativeCache c(1024, 32, 2);
  c.enable_decay(16);
  c.access(0, false);
  for (int i = 1; i <= 8; ++i) c.access(i * 32, false);
  EXPECT_TRUE(c.contains(0));
  EXPECT_TRUE(c.access(0, false).hit);
  EXPECT_EQ(c.stats().decay_misses, 0u);
}

TEST(Decay, RepeatedTouchKeepsLineAlive) {
  SetAssociativeCache c(1024, 32, 2);
  c.enable_decay(4);
  for (int round = 0; round < 20; ++round) {
    EXPECT_EQ(c.access(0, false).hit, round != 0);
    c.access(32, false);  // one intervening access in another set
  }
  EXPECT_EQ(c.stats().decay_misses, 0u);
}

TEST(Decay, DirtySleepingLineDrainsOnReRef) {
  SetAssociativeCache c(1024, 32, 2);
  c.enable_decay(2);
  c.access(0, true);  // dirty
  c.access(32, false);
  c.access(64, false);
  c.access(96, false);
  const auto r = c.access(0, false);  // decayed re-reference
  EXPECT_FALSE(r.hit);
  EXPECT_TRUE(r.writeback);
  EXPECT_EQ(c.stats().writebacks, 1u);
  // The refill is clean: evicting it later must not write back again.
  EXPECT_TRUE(c.access(0, false).hit);
}

TEST(Decay, DecayMissesCountedInsideMisses) {
  SetAssociativeCache c(1024, 32, 2);
  c.enable_decay(2);
  c.access(0, false);  // cold miss
  c.access(32, false);
  c.access(64, false);
  c.access(96, false);
  c.access(0, false);  // decay miss
  EXPECT_EQ(c.stats().decay_misses, 1u);
  EXPECT_EQ(c.stats().misses, 5u);
}

TEST(Decay, LiveFractionShrinksWithShorterIntervals) {
  // Cold-scan the whole cache once, then spin on one line: every scanned
  // line stays awake for exactly its decay interval, so the time-averaged
  // live fraction is proportional to the interval.
  auto run = [](std::uint64_t interval) {
    SetAssociativeCache c(4096, 32, 2);
    if (interval) c.enable_decay(interval);
    for (int b = 0; b < 128; ++b) {
      c.access(static_cast<std::uint64_t>(b) * 32, false);
    }
    for (int i = 0; i < 4096; ++i) c.access(0, false);
    return c.average_live_fraction();
  };
  const double off = run(0);
  const double slow = run(2048);
  const double fast = run(64);
  EXPECT_DOUBLE_EQ(off, 1.0);
  EXPECT_LT(slow, 1.0);
  EXPECT_LT(fast, slow);
  EXPECT_GT(fast, 0.0);
}

TEST(Decay, LiveFractionNearOneForHotLoop) {
  SetAssociativeCache c(1024, 32, 2);
  c.enable_decay(1024);
  // Every line touched every 32 accesses: all lines stay awake.
  for (int rep = 0; rep < 100; ++rep) {
    for (int b = 0; b < 32; ++b) {
      c.access(static_cast<std::uint64_t>(b) * 32, false);
    }
  }
  EXPECT_GT(c.average_live_fraction(), 0.9);
}

TEST(Decay, ResetStatsRestartsWindow) {
  SetAssociativeCache c(1024, 32, 2);
  c.enable_decay(32);  // longer than the hot loop's 16-access revisit gap
  for (int b = 0; b < 64; ++b) {
    c.access(static_cast<std::uint64_t>(b) * 32, false);
  }
  c.reset_stats();
  EXPECT_EQ(c.stats().accesses, 0u);
  // Fresh window with a hot loop: live fraction reflects only the window.
  for (int rep = 0; rep < 50; ++rep) {
    for (int b = 0; b < 16; ++b) {
      c.access(static_cast<std::uint64_t>(b) * 32, false);
    }
  }
  EXPECT_GT(c.average_live_fraction(), 0.3);
}

TEST(Decay, NormalEvictionOfDirtyDecayedVictimStillDrainsOnce) {
  // 1-way set: a dirty line decays, then a conflicting block replaces it;
  // exactly one writeback must be charged.
  SetAssociativeCache c(1024, 32, 1);
  c.enable_decay(2);
  c.access(0, true);  // dirty
  c.access(32, false);
  c.access(64, false);
  c.access(96, false);   // line 0 now decayed
  c.access(1024, false); // conflicts with 0, evicts it
  EXPECT_EQ(c.stats().writebacks, 1u);
}

}  // namespace
}  // namespace nanocache::sim
