// Tests for the four component models and the assembled CacheModel:
// monotonicities in both knobs, size scaling, the Section 3 additivity, the
// Section 2 area coupling, and the per-component fitted closed forms.
#include <gtest/gtest.h>

#include <memory>

#include "cachemodel/cache_model.h"
#include "cachemodel/fitted_cache.h"
#include "util/error.h"

namespace nanocache::cachemodel {
namespace {

std::unique_ptr<CacheModel> make_cache(std::uint64_t size,
                                       bool is_l2 = false) {
  tech::DeviceModel dev(tech::bptm65());
  auto org = is_l2 ? l2_organization(size, dev) : l1_organization(size, dev);
  return std::make_unique<CacheModel>(org, tech::DeviceModel(dev.params()));
}

class ComponentKnobMonotonicity
    : public ::testing::TestWithParam<ComponentKind> {};

TEST_P(ComponentKnobMonotonicity, LeakageFallsWithVth) {
  const auto m = make_cache(16 * 1024);
  const auto kind = GetParam();
  for (double tox : {10.0, 12.0, 14.0}) {
    double prev = m->component(kind, {0.20, tox}).leakage_w;
    for (double vth = 0.25; vth <= 0.501; vth += 0.05) {
      const double cur = m->component(kind, {vth, tox}).leakage_w;
      EXPECT_LT(cur, prev * 1.0001) << "tox=" << tox << " vth=" << vth;
      prev = cur;
    }
  }
}

TEST_P(ComponentKnobMonotonicity, LeakageFallsWithTox) {
  const auto m = make_cache(16 * 1024);
  const auto kind = GetParam();
  for (double vth : {0.2, 0.35, 0.5}) {
    double prev = m->component(kind, {vth, 10.0}).leakage_w;
    for (double tox = 11.0; tox <= 14.01; tox += 1.0) {
      const double cur = m->component(kind, {vth, tox}).leakage_w;
      EXPECT_LT(cur, prev) << "vth=" << vth << " tox=" << tox;
      prev = cur;
    }
  }
}

TEST_P(ComponentKnobMonotonicity, DelayRisesWithBothKnobs) {
  const auto m = make_cache(16 * 1024);
  const auto kind = GetParam();
  EXPECT_LT(m->component(kind, {0.2, 12.0}).delay_s,
            m->component(kind, {0.5, 12.0}).delay_s);
  EXPECT_LT(m->component(kind, {0.35, 10.0}).delay_s,
            m->component(kind, {0.35, 14.0}).delay_s);
}

TEST_P(ComponentKnobMonotonicity, MetricsArePositive) {
  const auto m = make_cache(16 * 1024);
  const auto c = m->component(GetParam(), {0.35, 12.0});
  EXPECT_GT(c.delay_s, 0.0);
  EXPECT_GT(c.leakage_w, 0.0);
  EXPECT_GT(c.dynamic_energy_j, 0.0);
  EXPECT_GT(c.area_um2, 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    AllComponents, ComponentKnobMonotonicity,
    ::testing::Values(ComponentKind::kCellArray, ComponentKind::kDecoder,
                      ComponentKind::kAddressDrivers,
                      ComponentKind::kDataDrivers),
    [](const auto& info) {
      return std::string(component_name(info.param)).substr(0, 4) +
             std::to_string(static_cast<int>(info.param));
    });

TEST(ArrayModel, LeakageScalesWithCacheSize) {
  const tech::DeviceKnobs k{0.35, 12.0};
  const auto small = make_cache(4 * 1024);
  const auto large = make_cache(64 * 1024);
  const double ratio =
      large->component(ComponentKind::kCellArray, k).leakage_w /
      small->component(ComponentKind::kCellArray, k).leakage_w;
  // 16x the bits -> roughly 16x the leakage (periphery makes it inexact).
  EXPECT_GT(ratio, 10.0);
  EXPECT_LT(ratio, 22.0);
}

TEST(ArrayModel, ArrayDominatesCacheLeakage) {
  // The paper's premise: the cell array is the leakiest component.
  const auto m = make_cache(16 * 1024);
  const tech::DeviceKnobs k{0.35, 12.0};
  const double array = m->component(ComponentKind::kCellArray, k).leakage_w;
  for (ComponentKind kind :
       {ComponentKind::kDecoder, ComponentKind::kAddressDrivers,
        ComponentKind::kDataDrivers}) {
    EXPECT_GT(array, m->component(kind, k).leakage_w * 3.0);
  }
}

TEST(ArrayModel, StagesArePositiveAndSum) {
  tech::DeviceModel dev(tech::bptm65());
  const auto org = l1_organization(16 * 1024, dev);
  const ArrayModel array(org, dev);
  const tech::DeviceKnobs k{0.3, 12.0};
  EXPECT_GT(array.wordline_delay_s(k), 0.0);
  EXPECT_GT(array.bitline_delay_s(k), 0.0);
  EXPECT_GT(array.senseamp_delay_s(k), 0.0);
  const double sum = (array.wordline_delay_s(k) + array.bitline_delay_s(k) +
                      array.senseamp_delay_s(k)) *
                     dev.params().delay_calibration;
  EXPECT_NEAR(array.evaluate(k).delay_s, sum, sum * 1e-12);
}

TEST(ArrayModel, AreaGrowsWithTox) {
  tech::DeviceModel dev(tech::bptm65());
  const auto org = l1_organization(16 * 1024, dev);
  const ArrayModel array(org, dev);
  EXPECT_GT(array.area_um2(14.0), array.area_um2(10.0) * 1.5);
}

TEST(ArrayModel, CellCountIncludesTags) {
  tech::DeviceModel dev(tech::bptm65());
  const auto org = l1_organization(16 * 1024, dev);
  const ArrayModel array(org, dev);
  EXPECT_GT(array.cell_count(), org.data_bits());
  EXPECT_EQ(array.cell_count(), org.total_bits());
}

TEST(DecoderModel, GateCountTracksRows) {
  tech::DeviceModel dev(tech::bptm65());
  const auto small_org = l1_organization(4 * 1024, dev);
  const auto large_org = l1_organization(64 * 1024, dev);
  const DecoderModel small(small_org, dev);
  const DecoderModel large(large_org, dev);
  EXPECT_GT(large.row_gate_count(), small.row_gate_count());
}

TEST(BusDrivers, LongerBusSlowerAndLeakier) {
  tech::DeviceModel dev(tech::bptm65());
  const tech::DeviceKnobs k{0.3, 12.0};
  const BusDriverModel short_bus(dev, 32, 200.0, 5e-15, 0.5);
  const BusDriverModel long_bus(dev, 32, 2000.0, 5e-15, 0.5);
  EXPECT_GT(long_bus.evaluate(k).delay_s, short_bus.evaluate(k).delay_s);
  EXPECT_GT(long_bus.evaluate(k).leakage_w, short_bus.evaluate(k).leakage_w);
  EXPECT_GT(long_bus.evaluate(k).dynamic_energy_j,
            short_bus.evaluate(k).dynamic_energy_j);
}

TEST(BusDrivers, EnergyScalesWithBitsAndActivity) {
  tech::DeviceModel dev(tech::bptm65());
  const tech::DeviceKnobs k{0.3, 12.0};
  const BusDriverModel narrow(dev, 32, 500.0, 5e-15, 0.5);
  const BusDriverModel wide(dev, 64, 500.0, 5e-15, 0.5);
  EXPECT_NEAR(wide.evaluate(k).dynamic_energy_j /
                  narrow.evaluate(k).dynamic_energy_j,
              2.0, 1e-9);
  const BusDriverModel busy(dev, 32, 500.0, 5e-15, 1.0);
  EXPECT_NEAR(busy.evaluate(k).dynamic_energy_j /
                  narrow.evaluate(k).dynamic_energy_j,
              2.0, 1e-9);
}

TEST(BusDrivers, ValidatesArguments) {
  tech::DeviceModel dev(tech::bptm65());
  EXPECT_THROW(BusDriverModel(dev, 0, 100.0, 1e-15, 0.5), Error);
  EXPECT_THROW(BusDriverModel(dev, 8, -1.0, 1e-15, 0.5), Error);
  EXPECT_THROW(BusDriverModel(dev, 8, 100.0, 1e-15, 0.0), Error);
}

TEST_P(ComponentKnobMonotonicity, LeakageSplitSumsToTotal) {
  const auto m = make_cache(16 * 1024);
  for (double vth : {0.2, 0.35, 0.5}) {
    for (double tox : {10.0, 12.0, 14.0}) {
      const auto c = m->component(GetParam(), {vth, tox});
      EXPECT_NEAR(c.leakage_sub_w + c.leakage_gate_w, c.leakage_w,
                  c.leakage_w * 1e-12);
      EXPECT_GT(c.leakage_sub_w, 0.0);
      EXPECT_GT(c.leakage_gate_w, 0.0);
    }
  }
}

TEST(CacheModel, GateShareGrowsAsToxThins) {
  const auto m = make_cache(16 * 1024);
  double prev_share = 1.1;
  for (double tox : {10.0, 11.0, 12.0, 13.0, 14.0}) {
    const auto r = m->evaluate_uniform({0.35, tox});
    const double share = r.leakage_gate_w / r.leakage_w;
    EXPECT_LT(share, prev_share) << tox;
    prev_share = share;
  }
}

TEST(CacheModel, MotivationGateSurpassesSubAtThinTox) {
  // Section 1: "gate leakage power can potentially surpass the
  // subthreshold leakage at low Tox".
  const auto m = make_cache(16 * 1024);
  const auto thin = m->evaluate_uniform({0.4, 10.0});
  EXPECT_GT(thin.leakage_gate_w, thin.leakage_sub_w);
  const auto low_vth_thick = m->evaluate_uniform({0.2, 14.0});
  EXPECT_GT(low_vth_thick.leakage_sub_w, low_vth_thick.leakage_gate_w);
}

TEST(CacheModel, EvaluateSumsComponents) {
  const auto m = make_cache(16 * 1024);
  const tech::DeviceKnobs k{0.35, 12.0};
  const auto total = m->evaluate_uniform(k);
  double delay = 0.0;
  double leak = 0.0;
  for (ComponentKind kind : kAllComponents) {
    delay += total.per_component[static_cast<std::size_t>(kind)].delay_s;
    leak += total.per_component[static_cast<std::size_t>(kind)].leakage_w;
  }
  EXPECT_NEAR(total.access_time_s, delay, delay * 1e-12);
  EXPECT_NEAR(total.leakage_w, leak, leak * 1e-12);
}

TEST(CacheModel, UniformMatchesComponentView) {
  // The independent-component view at uniform knobs must agree with the
  // assembled evaluation under nominal coupling.
  const auto m = make_cache(16 * 1024);
  const tech::DeviceKnobs k{0.3, 13.0};
  double sum = 0.0;
  for (ComponentKind kind : kAllComponents) {
    sum += m->component(kind, k).delay_s;
  }
  EXPECT_NEAR(m->evaluate_uniform(k).access_time_s, sum, sum * 1e-12);
}

TEST(CacheModel, MixedAssignmentBlendsKnobs) {
  const auto m = make_cache(16 * 1024);
  ComponentAssignment mixed = ComponentAssignment::split(
      /*array=*/{0.5, 14.0}, /*periphery=*/{0.2, 10.0});
  const auto slow = m->evaluate_uniform({0.5, 14.0});
  const auto fast = m->evaluate_uniform({0.2, 10.0});
  const auto mix = m->evaluate(mixed);
  EXPECT_GT(mix.access_time_s, fast.access_time_s);
  EXPECT_LT(mix.access_time_s, slow.access_time_s);
  EXPECT_LT(mix.leakage_w, fast.leakage_w);
  EXPECT_GT(mix.leakage_w, slow.leakage_w);
}

TEST(CacheModel, AreaCouplingChangesDriverDelay) {
  // Section 2: thicker array Tox -> larger cells -> longer buses.  Exact
  // coupling must show slower drivers than the nominal-geometry view when
  // the array runs thick Tox.
  const auto m = make_cache(64 * 1024);
  ComponentAssignment a = ComponentAssignment::split(
      /*array=*/{0.5, 14.0}, /*periphery=*/{0.2, 10.0});
  const auto nominal = m->evaluate(a, AreaCoupling::kNominal);
  const auto coupled = m->evaluate(a, AreaCoupling::kArrayTox);
  const auto idx = static_cast<std::size_t>(ComponentKind::kAddressDrivers);
  EXPECT_GT(coupled.per_component[idx].delay_s,
            nominal.per_component[idx].delay_s);
}

TEST(CacheModel, LargerCachesSlowerAndLeakier) {
  const tech::DeviceKnobs k{0.35, 12.0};
  const auto small = make_cache(4 * 1024);
  const auto large = make_cache(64 * 1024);
  EXPECT_LT(small->evaluate_uniform(k).access_time_s,
            large->evaluate_uniform(k).access_time_s);
  EXPECT_LT(small->evaluate_uniform(k).leakage_w,
            large->evaluate_uniform(k).leakage_w);
}

TEST(CacheModel, SixteenKbMatchesFigure1Window) {
  // Calibration contract: the paper's Figure 1 plots the 16 KB design
  // between ~0.8 and ~2.3 ns with leakage tens of mW at the fast corner.
  const auto m = make_cache(16 * 1024);
  const auto fast = m->evaluate_uniform({0.2, 10.0});
  const auto slow = m->evaluate_uniform({0.5, 14.0});
  EXPECT_GT(fast.access_time_s, 0.6e-9);
  EXPECT_LT(fast.access_time_s, 1.1e-9);
  EXPECT_GT(slow.access_time_s, 1.8e-9);
  EXPECT_LT(slow.access_time_s, 2.6e-9);
  EXPECT_GT(fast.leakage_w, 20e-3);
  EXPECT_LT(fast.leakage_w, 80e-3);
  EXPECT_LT(slow.leakage_w, 5e-3);
}

// --- fitted per-component closed forms -------------------------------------

TEST(FittedCacheModel, AllFitsHighQuality) {
  const auto m = make_cache(16 * 1024);
  const auto fits = FittedCacheModel::fit(*m);
  EXPECT_GT(fits.worst_r2(), 0.95);
}

TEST(FittedCacheModel, SummationMatchesDefinition) {
  const auto m = make_cache(16 * 1024);
  const auto fits = FittedCacheModel::fit(*m);
  const ComponentAssignment a(tech::DeviceKnobs{0.35, 12.0});
  double leak = 0.0;
  double delay = 0.0;
  for (ComponentKind kind : kAllComponents) {
    leak += fits.component_leakage_w(kind, a.get(kind));
    delay += fits.component_delay_s(kind, a.get(kind));
  }
  EXPECT_NEAR(fits.leakage_w(a), leak, std::abs(leak) * 1e-12);
  EXPECT_NEAR(fits.access_time_s(a), delay, delay * 1e-12);
}

TEST(FittedCacheModel, TracksStructuralModel) {
  const auto m = make_cache(16 * 1024);
  const auto fits = FittedCacheModel::fit(*m);
  for (const auto& k :
       {tech::DeviceKnobs{0.25, 11.0}, tech::DeviceKnobs{0.45, 13.0}}) {
    const ComponentAssignment a(k);
    const auto truth = m->evaluate(a);
    EXPECT_NEAR(fits.access_time_s(a) / truth.access_time_s, 1.0, 0.05);
    EXPECT_NEAR(fits.leakage_w(a) / truth.leakage_w, 1.0, 0.5);
  }
}

}  // namespace
}  // namespace nanocache::cachemodel
