// Thread-count invariance of the optimizers and reports: every result the
// library computes must be identical at --threads 1 and --threads 8, down
// to the exact bytes of the rendered tables.  This is the regression gate
// for the deterministic-reduction contract (index-order merges, grid-index
// argmin tie-breaking, buffered degradation logs).
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "core/explorer.h"
#include "core/report.h"
#include "opt/schemes.h"
#include "opt/tuple_menu.h"
#include "util/parallel.h"

namespace nanocache {
namespace {

/// Run `fn` under a fixed pool default thread count, restoring afterwards.
template <typename Fn>
auto with_threads(int threads, Fn&& fn) {
  par::set_default_threads(threads);
  auto result = fn();
  par::set_default_threads(0);
  return result;
}

std::string render(const TextTable& t) {
  std::ostringstream os;
  os << t;
  return os.str();
}

TEST(ParallelDeterminism, SingleCacheOptimaIdenticalAcrossThreadCounts) {
  core::Explorer explorer;
  const auto& m = explorer.l1_model(16 * 1024);
  const auto eval = opt::structural_evaluator(m);
  const auto grid = explorer.config().grid;
  const auto ladder = explorer.delay_ladder(16 * 1024, 5);
  for (const auto scheme :
       {opt::Scheme::kPerComponent, opt::Scheme::kArrayPeriphery,
        opt::Scheme::kUniform}) {
    for (const double target : ladder) {
      const auto solve = [&] {
        return opt::optimize_single_cache(eval, grid, scheme, target);
      };
      const auto serial = with_threads(1, solve);
      const auto parallel = with_threads(8, solve);
      ASSERT_EQ(serial.has_value(), parallel.has_value());
      if (!serial) continue;
      // Exact equality: same leakage bits AND the same knob assignment —
      // argmin ties must break by grid index, not worker arrival order.
      EXPECT_EQ(serial->leakage_w, parallel->leakage_w);
      EXPECT_EQ(serial->access_time_s, parallel->access_time_s);
      for (auto kind : cachemodel::kAllComponents) {
        EXPECT_EQ(serial->assignment.get(kind).vth_v,
                  parallel->assignment.get(kind).vth_v);
        EXPECT_EQ(serial->assignment.get(kind).tox_a,
                  parallel->assignment.get(kind).tox_a);
      }
    }
  }
}

TEST(ParallelDeterminism, SchemeComparisonReportBytesIdentical) {
  const auto run = [](int threads) {
    return with_threads(threads, [] {
      core::Explorer explorer;
      const auto size = explorer.config().l1_size_bytes;
      const auto ladder = explorer.delay_ladder(size, 7);
      return render(
          core::scheme_long_table(explorer.scheme_comparison(size, ladder)));
    });
  };
  EXPECT_EQ(run(1), run(8));
}

TEST(ParallelDeterminism, TupleMenuDesignsIdenticalAcrossThreadCounts) {
  core::Explorer explorer;
  const auto system = explorer.default_system();
  const opt::TupleMenuSolver solver(system, explorer.config().grid);
  const opt::MenuSpec spec{2, 2};
  const auto frontier_at = [&](int threads) {
    return with_threads(threads, [&] { return solver.frontier(spec); });
  };
  const auto serial = frontier_at(1);
  const auto parallel = frontier_at(8);
  ASSERT_EQ(serial.size(), parallel.size());
  ASSERT_FALSE(serial.empty());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].amat_s, parallel[i].amat_s);
    EXPECT_EQ(serial[i].energy_j, parallel[i].energy_j);
    EXPECT_EQ(serial[i].leakage_w, parallel[i].leakage_w);
  }

  const auto best_serial =
      with_threads(1, [&] { return solver.best_at(spec, 1.7e-9); });
  const auto best_parallel =
      with_threads(8, [&] { return solver.best_at(spec, 1.7e-9); });
  ASSERT_EQ(best_serial.has_value(), best_parallel.has_value());
  if (best_serial) {
    EXPECT_EQ(best_serial->energy_j, best_parallel->energy_j);
    EXPECT_EQ(best_serial->amat_s, best_parallel->amat_s);
  }
}

TEST(ParallelDeterminism, SizeSweepAndFig1ReportsBytesIdentical) {
  const auto run = [](int threads) {
    return with_threads(threads, [] {
      core::Explorer explorer;
      std::ostringstream os;
      os << core::fig1_long_table(
                explorer.fig1_fixed_knob(explorer.config().l1_size_bytes))
         << core::size_sweep_table(
                explorer.l2_size_sweep(opt::Scheme::kUniform,
                                       explorer.l2_squeeze_target_s()),
                "l2_uniform")
         << core::size_sweep_table(
                explorer.l1_size_sweep(explorer.l2_squeeze_target_s(1.25)),
                "l1");
      return os.str();
    });
  };
  EXPECT_EQ(run(1), run(8));
}

TEST(ParallelDeterminism, FittedPathDegradationLogIdentical) {
  // The fitted path records degradation events from inside worker threads;
  // buffered per-task logs merged in index order must make the log (and
  // its rendering) thread-count invariant.
  const auto run = [](int threads) {
    return with_threads(threads, [] {
      core::ExperimentConfig config;
      config.use_fitted_models = true;
      core::Explorer explorer(config);
      const auto size = explorer.config().l1_size_bytes;
      const auto ladder = explorer.delay_ladder(size, 5);
      std::ostringstream os;
      os << core::scheme_long_table(explorer.scheme_comparison(size, ladder))
         << render(core::degradation_table(explorer));
      return os.str();
    });
  };
  EXPECT_EQ(run(1), run(8));
}

}  // namespace
}  // namespace nanocache
