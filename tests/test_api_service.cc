// Public facade (nanocache::api::Service): golden request/response checks,
// the grid-bounds validation contract, typed-error folding, and the
// memo-cache bitwise-equality guarantee (a hit returns the same object a
// miss computed, so serialized responses never depend on cache state).
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "api/batch_io.h"
#include "core/explorer.h"
#include "nanocache/api.h"

namespace nanocache::api {
namespace {

std::shared_ptr<Service> make_service(ServiceConfig config = {}) {
  auto service = Service::create(std::move(config));
  EXPECT_TRUE(service.ok()) << service.error().message;
  return service.value();
}

TEST(ApiService, EvaluateGolden) {
  const auto service = make_service();
  EvalRequest request;  // L1, 16 KB, Vth 0.35 V, Tox 12 A
  const auto response = service->evaluate(request);
  ASSERT_TRUE(response.ok()) << response.error().message;

  const auto& r = response.value();
  EXPECT_FALSE(r.organization.empty());
  EXPECT_GT(r.access_time_ps, 0.0);
  EXPECT_GT(r.leakage_mw, 0.0);
  EXPECT_GT(r.dynamic_pj, 0.0);
  EXPECT_GT(r.area_um2, 0.0);
  // Total leakage decomposes into the subthreshold and gate shares.
  EXPECT_NEAR(r.leakage_mw, r.leakage_sub_mw + r.leakage_gate_mw,
              1e-9 * r.leakage_mw);

  // The paper's four components, cell array first, each at the requested
  // uniform knobs, summing to the cache totals.
  ASSERT_EQ(r.components.size(), 4u);
  double delay_sum = 0.0;
  double leak_sum = 0.0;
  for (const auto& c : r.components) {
    EXPECT_EQ(c.knobs.vth_v, request.knobs.vth_v);
    EXPECT_EQ(c.knobs.tox_a, request.knobs.tox_a);
    delay_sum += c.delay_ps;
    leak_sum += c.leakage_mw;
  }
  EXPECT_NEAR(delay_sum, r.access_time_ps, 1e-9 * r.access_time_ps);
  EXPECT_NEAR(leak_sum, r.leakage_mw, 1e-9 * r.leakage_mw);
}

TEST(ApiService, OptimizeGoldenAndInfeasibleIsData) {
  const auto service = make_service();

  OptimizeRequest request;  // L1, 16 KB, scheme II, 1400 pS
  const auto response = service->optimize(request);
  ASSERT_TRUE(response.ok()) << response.error().message;
  const auto& r = response.value().result;
  ASSERT_TRUE(r.feasible);
  EXPECT_LE(r.access_time_ps, request.delay.target_ps * (1.0 + 1e-9));
  EXPECT_GT(r.leakage_mw, 0.0);
  ASSERT_EQ(r.assignment.size(), 4u);

  // An unmeetable constraint is data (feasible=false + reason), not an
  // error: the Outcome is ok.
  request.delay.target_ps = 1.0;
  const auto squeezed = service->optimize(request);
  ASSERT_TRUE(squeezed.ok()) << squeezed.error().message;
  EXPECT_FALSE(squeezed.value().result.feasible);
  EXPECT_FALSE(squeezed.value().result.infeasible_reason.empty());

  // A nonsensical constraint is a typed config error.
  request.delay.target_ps = -5.0;
  const auto bad = service->optimize(request);
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.error().code, ErrorCode::kConfig);
}

TEST(ApiService, CreateRejectsOutOfRangeGrid) {
  // The paper's knob ranges: Vth 0.2-0.5 V, Tox 10-14 A.  Out-of-range
  // overrides must fail with a typed kConfig error, never clamp.
  ServiceConfig too_high_vth;
  too_high_vth.grid_vth_v = {0.25, 0.60};
  auto outcome = Service::create(too_high_vth);
  ASSERT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.error().code, ErrorCode::kConfig);
  EXPECT_NE(outcome.error().message.find("Vth"), std::string::npos);

  ServiceConfig too_low_vth;
  too_low_vth.grid_vth_v = {0.10, 0.35};
  EXPECT_FALSE(Service::create(too_low_vth).ok());

  ServiceConfig too_thin_tox;
  too_thin_tox.grid_tox_a = {9.0, 12.0};
  outcome = Service::create(too_thin_tox);
  ASSERT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.error().code, ErrorCode::kConfig);
  EXPECT_NE(outcome.error().message.find("Tox"), std::string::npos);

  ServiceConfig not_increasing;
  not_increasing.grid_vth_v = {0.35, 0.35};
  outcome = Service::create(not_increasing);
  ASSERT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.error().code, ErrorCode::kConfig);

  // An in-range override is honored verbatim.
  ServiceConfig valid;
  valid.grid_vth_v = {0.25, 0.35, 0.45};
  valid.grid_tox_a = {10.0, 12.0, 14.0};
  const auto service = make_service(valid);
  EXPECT_EQ(service->explorer().config().grid.vth_values, valid.grid_vth_v);
  EXPECT_EQ(service->explorer().config().grid.tox_values, valid.grid_tox_a);
}

TEST(ApiService, ServeRejectsWrongSchemaVersion) {
  const auto service = make_service();
  Request request;
  request.schema_version = kSchemaVersion + 1;
  request.id = "r1";
  const auto response = service->serve(request);
  EXPECT_FALSE(response.ok);
  EXPECT_EQ(response.id, "r1");
  EXPECT_EQ(response.error.code, ErrorCode::kConfig);
}

TEST(ApiService, TupleMenuValidatesCardinality) {
  const auto service = make_service();
  TupleMenuRequest request;
  request.num_tox = 0;
  auto outcome = service->tuple_menu(request);
  ASSERT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.error().code, ErrorCode::kConfig);

  request.num_tox = 2;
  request.num_vth = 99;  // larger than the grid's Vth count
  outcome = service->tuple_menu(request);
  ASSERT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.error().code, ErrorCode::kConfig);
}

TEST(ApiService, MemoHitIsBitwiseEqualToMiss) {
  Request request;
  request.kind = RequestKind::kEval;
  request.eval.knobs = Knobs{0.30, 13.0};

  // Miss path: a fresh service computes the evaluation.
  const auto cold = make_service();
  const auto miss = cold->serve(request);
  EXPECT_GT(cold->memo_stats().misses, 0u);
  EXPECT_EQ(cold->memo_stats().hits, 0u);

  // Hit path: the same service serves the same request from the memo.
  const auto hit = cold->serve(request);
  EXPECT_GT(cold->memo_stats().hits, 0u);

  // The contract behind batch determinism: a hit is bitwise-equal to the
  // miss that populated it, so serialized bytes are identical.
  EXPECT_EQ(response_to_json(miss), response_to_json(hit));

  // And a second fresh service (independent miss) agrees too.
  const auto cold2 = make_service();
  EXPECT_EQ(response_to_json(miss), response_to_json(cold2->serve(request)));
}

TEST(ApiService, OptimizeAndSchemesSweepShareMemoEntries) {
  const auto service = make_service();

  OptimizeRequest single;
  single.scheme = SchemeId::kII;
  single.delay.target_ps = 1400.0;
  const auto direct = service->optimize(single);
  ASSERT_TRUE(direct.ok());
  const auto stats_before = service->memo_stats();

  // A schemes sweep over the same delay target reuses the "opt|" entry the
  // single optimize populated: same bits in, same memo slot.
  SweepRequest sweep;
  sweep.kind = SweepKind::kSchemes;
  sweep.delay.targets_ps = {1400.0};
  const auto swept = service->sweep(sweep);
  ASSERT_TRUE(swept.ok()) << swept.error().message;
  EXPECT_GT(service->memo_stats().hits, stats_before.hits);

  ASSERT_EQ(swept.value().schemes.size(), 1u);
  const auto& row = swept.value().schemes.front();
  EXPECT_EQ(row.scheme2.leakage_mw, direct.value().result.leakage_mw);
  EXPECT_EQ(row.scheme2.access_time_ps, direct.value().result.access_time_ps);
}

}  // namespace
}  // namespace nanocache::api
