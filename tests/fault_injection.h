// Fault-injection harness: a registry of deliberately-broken inputs for
// every public entry point (model fitting, cache construction, trace I/O,
// optimizers, experiment configs) plus a driver that checks each fault
// dies with a correctly-categorized nanocache::Error — no crash, no hang,
// no silent NaN, no miscategorized exception.
//
// The registry is a plain data structure so the GoogleTest suite, the
// sanitizer presets and any future fuzz driver can share it.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "util/error.h"

namespace nanocache::testing {

/// One injected fault: a closure poking a broken input into a public API,
/// and the error category the library contract promises for it.
struct FaultCase {
  std::string name;              ///< unique slug, e.g. "trace-bad-hex"
  ErrorCategory expected;        ///< category the Error must carry
  std::function<void()> inject;  ///< must throw nanocache::Error(expected)
};

/// What actually happened when a fault ran.
struct FaultOutcome {
  std::string name;
  bool ok = false;           ///< threw nanocache::Error with the right category
  std::string detail;        ///< what() on success; diagnosis on failure
  ErrorCategory expected{};  ///< from the case
  ErrorCategory actual{};    ///< only meaningful when a nanocache::Error threw
};

/// Run one fault, classifying the outcome (never lets the exception
/// escape).
FaultOutcome run_fault(const FaultCase& fault);

/// Run every fault in order.
std::vector<FaultOutcome> run_all(const std::vector<FaultCase>& cases);

/// The standard registry covering the library surface (>= 30 faults).
std::vector<FaultCase> build_standard_faults();

}  // namespace nanocache::testing
