// Tests for the high-level Explorer API: configuration validation, model
// caching, and the structure of each experiment's output.
#include <gtest/gtest.h>

#include "core/explorer.h"
#include "util/error.h"

namespace nanocache::core {
namespace {

Explorer& explorer() {
  static Explorer e;
  return e;
}

TEST(ExperimentConfig, DefaultsValidate) {
  EXPECT_NO_THROW(ExperimentConfig{}.validate());
}

TEST(ExperimentConfig, RejectsBadValues) {
  ExperimentConfig c;
  c.l2_size_bytes = c.l1_size_bytes;  // L2 must exceed L1
  EXPECT_THROW(c.validate(), Error);

  c = ExperimentConfig{};
  c.amat_target_s = 0.0;
  EXPECT_THROW(c.validate(), Error);

  c = ExperimentConfig{};
  c.l1_size_sweep.clear();
  EXPECT_THROW(c.validate(), Error);
}

TEST(ExperimentConfig, AmatTargetsSpanPaperRange) {
  const auto targets = ExperimentConfig{}.amat_targets_s();
  ASSERT_EQ(targets.size(), 9u);
  EXPECT_NEAR(targets.front(), 1300e-12, 1e-15);
  EXPECT_NEAR(targets.back(), 2100e-12, 1e-15);
}

TEST(Explorer, ModelCachingReturnsSameInstance) {
  const auto& a = explorer().l1_model(16 * 1024);
  const auto& b = explorer().l1_model(16 * 1024);
  EXPECT_EQ(&a, &b);
  // L1 and L2 of the same size are distinct models.
  const auto& l2 = explorer().l2_model(256 * 1024);
  EXPECT_NE(static_cast<const void*>(&a), static_cast<const void*>(&l2));
}

TEST(Explorer, Fig1SeriesStructure) {
  const auto series = explorer().fig1_fixed_knob(16 * 1024, 5);
  ASSERT_EQ(series.size(), 4u);
  EXPECT_FALSE(series[0].vth_fixed);  // Tox = 10 A
  EXPECT_FALSE(series[1].vth_fixed);  // Tox = 14 A
  EXPECT_TRUE(series[2].vth_fixed);   // Vth = 0.2 V
  EXPECT_TRUE(series[3].vth_fixed);   // Vth = 0.4 V
  for (const auto& s : series) {
    ASSERT_EQ(s.points.size(), 5u);
    for (const auto& p : s.points) {
      EXPECT_GT(p.access_time_s, 0.0);
      EXPECT_GT(p.leakage_w, 0.0);
    }
    // Swept axis strictly increasing.
    for (std::size_t i = 1; i < s.points.size(); ++i) {
      EXPECT_GT(s.points[i].swept_value, s.points[i - 1].swept_value);
    }
  }
}

TEST(Explorer, Fig1LabelsMatchPaper) {
  const auto series = explorer().fig1_fixed_knob(16 * 1024, 3);
  EXPECT_EQ(series[0].label, "Tox=10A");
  EXPECT_EQ(series[1].label, "Tox=14A");
  EXPECT_EQ(series[2].label, "Vth=200mV");
  EXPECT_EQ(series[3].label, "Vth=400mV");
}

TEST(Explorer, DelayLadderMonotone) {
  const auto ladder = explorer().delay_ladder(16 * 1024, 6);
  ASSERT_EQ(ladder.size(), 6u);
  for (std::size_t i = 1; i < ladder.size(); ++i) {
    EXPECT_GT(ladder[i], ladder[i - 1]);
  }
  EXPECT_THROW(explorer().delay_ladder(16 * 1024, 1), Error);
}

TEST(Explorer, SchemeComparisonRowsAlign) {
  const auto ladder = explorer().delay_ladder(16 * 1024, 4);
  const auto rows = explorer().scheme_comparison(16 * 1024, ladder);
  ASSERT_EQ(rows.size(), ladder.size());
  for (std::size_t i = 0; i < rows.size(); ++i) {
    EXPECT_DOUBLE_EQ(rows[i].delay_target_s, ladder[i]);
  }
  // The loosest target must be feasible for all three schemes.
  ASSERT_TRUE(rows.back().scheme1 && rows.back().scheme2 &&
              rows.back().scheme3);
}

TEST(Explorer, SqueezeTargetBetweenExtremes) {
  const double tight = explorer().l2_squeeze_target_s(1.0);
  const double loose = explorer().l2_squeeze_target_s(1.5);
  EXPECT_LT(tight, loose);
  EXPECT_GT(tight, 1e-9);
  EXPECT_LT(loose, 4e-9);
  EXPECT_THROW(explorer().l2_squeeze_target_s(0.5), Error);
}

TEST(Explorer, L2SweepCoversConfiguredSizes) {
  const double target = explorer().l2_squeeze_target_s(1.15);
  const auto rows = explorer().l2_size_sweep(opt::Scheme::kUniform, target);
  ASSERT_EQ(rows.size(), explorer().config().l2_size_sweep.size());
  for (std::size_t i = 0; i < rows.size(); ++i) {
    EXPECT_EQ(rows[i].size_bytes, explorer().config().l2_size_sweep[i]);
    if (rows[i].feasible) {
      EXPECT_LE(rows[i].amat_s, target * (1 + 1e-9));
      EXPECT_GT(rows[i].total_leakage_w, rows[i].level_leakage_w);
    }
  }
}

TEST(Explorer, L2SweepMissRatesFallWithSize) {
  const auto rows = explorer().l2_size_sweep(
      opt::Scheme::kUniform, explorer().l2_squeeze_target_s(1.3));
  for (std::size_t i = 1; i < rows.size(); ++i) {
    EXPECT_LT(rows[i].miss_rate, rows[i - 1].miss_rate);
  }
}

TEST(Explorer, L1SweepSmallestWins) {
  const double target = explorer().l2_squeeze_target_s(1.25);
  const auto rows = explorer().l1_size_sweep(target);
  ASSERT_EQ(rows.size(), explorer().config().l1_size_sweep.size());
  const SizeSweepRow* best = nullptr;
  for (const auto& r : rows) {
    if (!r.feasible) continue;
    if (!best || r.total_leakage_w < best->total_leakage_w) best = &r;
  }
  ASSERT_NE(best, nullptr);
  EXPECT_EQ(best->size_bytes, rows.front().size_bytes);
}

TEST(Explorer, MenuLabels) {
  EXPECT_EQ(Explorer::menu_label({2, 3}), "2 Tox + 3 Vth");
  const auto specs = Explorer::default_fig2_specs();
  ASSERT_EQ(specs.size(), 5u);
  EXPECT_EQ(specs[0].num_tox, 2);
  EXPECT_EQ(specs[0].num_vth, 2);
}

TEST(Explorer, DefaultSystemUsesConfiguredSizes) {
  const auto sys = explorer().default_system();
  EXPECT_EQ(sys.l1().organization().size_bytes,
            explorer().config().l1_size_bytes);
  EXPECT_EQ(sys.l2().organization().size_bytes,
            explorer().config().l2_size_bytes);
  EXPECT_GT(sys.miss().l1, 0.0);
  EXPECT_LT(sys.miss().l1, 0.2);
}

}  // namespace
}  // namespace nanocache::core
