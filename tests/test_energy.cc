// Tests for the memory-system model: the AMAT identity, energy accounting,
// and monotonicity in miss rates and knob choices.
#include <gtest/gtest.h>

#include <memory>

#include "energy/memory_system.h"
#include "util/error.h"

namespace nanocache::energy {
namespace {

using cachemodel::CacheModel;
using cachemodel::ComponentAssignment;

struct Fixture {
  Fixture() {
    tech::DeviceModel dev(tech::bptm65());
    l1 = std::make_unique<CacheModel>(
        cachemodel::l1_organization(16 * 1024, dev),
        tech::DeviceModel(dev.params()));
    l2 = std::make_unique<CacheModel>(
        cachemodel::l2_organization(1024 * 1024, dev),
        tech::DeviceModel(dev.params()));
  }
  std::unique_ptr<CacheModel> l1;
  std::unique_ptr<CacheModel> l2;
};

Fixture& fixture() {
  static Fixture f;
  return f;
}

MemorySystemModel make_system(MissRates miss = {0.03, 0.15},
                              MainMemoryParams mem = {}) {
  return MemorySystemModel(*fixture().l1, *fixture().l2, miss, mem);
}

TEST(MemorySystem, AmatIdentity) {
  const auto sys = make_system({0.05, 0.2}, {40e-9, 10e-9});
  EXPECT_NEAR(sys.amat_s(1e-9, 4e-9), 1e-9 + 0.05 * (4e-9 + 0.2 * 40e-9),
              1e-18);
}

TEST(MemorySystem, ConstantTerms) {
  const auto sys = make_system({0.05, 0.2}, {40e-9, 10e-9});
  EXPECT_NEAR(sys.memory_amat_term_s(), 0.05 * 0.2 * 40e-9, 1e-18);
  EXPECT_NEAR(sys.memory_dynamic_energy_j(), 0.05 * 0.2 * 10e-9, 1e-18);
}

TEST(MemorySystem, EvaluateCombinesLevels) {
  const auto sys = make_system();
  const ComponentAssignment knobs(tech::DeviceKnobs{0.35, 12.0});
  const auto m = sys.evaluate(knobs, knobs);
  const auto l1m = fixture().l1->evaluate(knobs);
  const auto l2m = fixture().l2->evaluate(knobs);
  EXPECT_NEAR(m.l1_access_time_s, l1m.access_time_s, 1e-18);
  EXPECT_NEAR(m.l2_access_time_s, l2m.access_time_s, 1e-18);
  EXPECT_NEAR(m.leakage_w, l1m.leakage_w + l2m.leakage_w, 1e-12);
  EXPECT_NEAR(m.amat_s, sys.amat_s(l1m.access_time_s, l2m.access_time_s),
              1e-18);
  EXPECT_NEAR(m.total_energy_j, m.dynamic_energy_j + m.leakage_energy_j,
              1e-20);
  EXPECT_NEAR(m.leakage_energy_j, m.leakage_w * m.amat_s, 1e-20);
}

TEST(MemorySystem, DynamicEnergyWeightsL2ByMissRate) {
  const ComponentAssignment knobs(tech::DeviceKnobs{0.35, 12.0});
  const auto low = make_system({0.01, 0.15}).evaluate(knobs, knobs);
  const auto high = make_system({0.10, 0.15}).evaluate(knobs, knobs);
  EXPECT_GT(high.dynamic_energy_j, low.dynamic_energy_j);
  EXPECT_GT(high.amat_s, low.amat_s);
}

TEST(MemorySystem, SlowerKnobsLessLeakageMoreAmat) {
  const auto sys = make_system();
  const ComponentAssignment fast(tech::DeviceKnobs{0.2, 10.0});
  const ComponentAssignment slow(tech::DeviceKnobs{0.5, 14.0});
  const auto mf = sys.evaluate(fast, fast);
  const auto ms = sys.evaluate(slow, slow);
  EXPECT_GT(mf.leakage_w, ms.leakage_w);
  EXPECT_LT(mf.amat_s, ms.amat_s);
}

TEST(MemorySystem, EnergyTradeoffExistsAcrossKnobs) {
  // Total energy must not be monotone in the knobs: leakage dominates at
  // the fast corner, the AMAT-scaled residual at the slow one is small,
  // so the minimum lies strictly between in leakage terms.
  const auto sys = make_system();
  const auto fast = sys.evaluate(ComponentAssignment({0.2, 10.0}),
                                 ComponentAssignment({0.2, 10.0}));
  const auto mid = sys.evaluate(ComponentAssignment({0.4, 13.0}),
                                ComponentAssignment({0.4, 13.0}));
  EXPECT_LT(mid.total_energy_j, fast.total_energy_j);
}

TEST(MemorySystem, Figure2EnergyWindow) {
  // Calibration contract for Figure 2: at sensible operating points the
  // system lands in the paper's 50-400 pJ / 1.3-2.1 ns window.
  const auto sys = make_system({0.0318, 0.162});
  const auto m = sys.evaluate(
      ComponentAssignment::split({0.45, 14.0}, {0.30, 12.0}),
      ComponentAssignment::split({0.50, 14.0}, {0.30, 13.0}));
  EXPECT_GT(m.amat_s, 1.2e-9);
  EXPECT_LT(m.amat_s, 2.3e-9);
  EXPECT_GT(m.total_energy_j, 40e-12);
  EXPECT_LT(m.total_energy_j, 450e-12);
}

TEST(MemorySystem, ValidatesInputs) {
  EXPECT_THROW(make_system({-0.1, 0.2}), Error);
  EXPECT_THROW(make_system({0.1, 1.5}), Error);
  EXPECT_THROW(make_system({0.1, 0.2}, {0.0, 1e-9}), Error);
  EXPECT_THROW(make_system({0.1, 0.2}, {1e-9, -1.0}), Error);
}

TEST(MemorySystem, AccessorsExposeConfiguration) {
  const auto sys = make_system({0.07, 0.33}, {25e-9, 5e-9});
  EXPECT_EQ(&sys.l1(), fixture().l1.get());
  EXPECT_EQ(&sys.l2(), fixture().l2.get());
  EXPECT_DOUBLE_EQ(sys.miss().l1, 0.07);
  EXPECT_DOUBLE_EQ(sys.miss().l2_local, 0.33);
  EXPECT_DOUBLE_EQ(sys.memory().access_latency_s, 25e-9);
}

}  // namespace
}  // namespace nanocache::energy
