// End-to-end tests of the JSONL server (src/server): strict --listen
// parsing, framing edge cases, per-connection byte-identity with batch
// mode, cross-client cache sharing, concurrency, and graceful shutdown.
#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "api/batch_io.h"
#include "nanocache/service.h"
#include "server/client.h"
#include "server/line_reader.h"
#include "server/listener.h"
#include "server/server.h"
#include "util/error.h"
#include "util/json.h"

namespace nanocache::server {
namespace {

std::shared_ptr<api::Service> make_service() {
  auto out = api::Service::create({});
  EXPECT_TRUE(out.ok()) << (out.ok() ? "" : out.error().message);
  return out.value();
}

/// Unique unix socket path per test: ctest runs tests of this binary as
/// separate parallel processes, so paths must not collide.
std::string unique_sock(const std::string& tag) {
  return testing::TempDir() + "nc_" + tag + "_" + std::to_string(::getpid()) +
         ".sock";
}

ListenSpec unix_spec(const std::string& path) {
  ListenSpec spec;
  spec.kind = ListenKind::kUnix;
  spec.path = path;
  return spec;
}

/// The reference bytes: what `nanocache_cli batch` emits for `input`.
std::string batch_output(const api::Service& service,
                         const std::string& input) {
  std::istringstream in(input);
  std::ostringstream out;
  api::run_batch_jsonl(service, in, out);
  return out.str();
}

/// Drive `input` through a served connection and collect the full response
/// stream (each line newline-terminated, as on the wire).
std::string serve_roundtrip(const ListenSpec& spec, const std::string& input) {
  Client client = Client::connect(spec);
  client.send(input);
  client.shutdown_write();
  std::string out;
  while (auto line = client.read_line()) {
    out += *line;
    out += '\n';
  }
  return out;
}

template <typename Fn>
ErrorCategory category_of(Fn&& fn) {
  try {
    fn();
  } catch (const Error& e) {
    return e.category();
  }
  ADD_FAILURE() << "expected nanocache::Error";
  return ErrorCategory::kInternal;
}

// --- --listen parsing (satellite: strict typed kConfig errors) ------------

TEST(ListenSpecParse, AcceptsUnixAndTcp) {
  const auto u = parse_listen_spec("unix:/run/nanocache.sock");
  EXPECT_EQ(u.kind, ListenKind::kUnix);
  EXPECT_EQ(u.path, "/run/nanocache.sock");
  EXPECT_EQ(u.describe(), "unix:/run/nanocache.sock");

  const auto t = parse_listen_spec("tcp:127.0.0.1:9100");
  EXPECT_EQ(t.kind, ListenKind::kTcp);
  EXPECT_EQ(t.host, "127.0.0.1");
  EXPECT_EQ(t.port, 9100);
  EXPECT_EQ(t.describe(), "tcp:127.0.0.1:9100");

  EXPECT_EQ(parse_listen_spec("tcp:localhost:1").port, 1);
  EXPECT_EQ(parse_listen_spec("tcp:localhost:65535").port, 65535);
}

TEST(ListenSpecParse, RejectsMalformedSpecsAsConfigErrors) {
  const std::vector<std::string> bad = {
      "",                       // no scheme
      "unix:",                  // empty path
      "tcp:localhost",          // missing port
      "tcp::9100",              // empty host
      "tcp:localhost:",         // empty port
      "tcp:localhost:abc",      // non-numeric port
      "tcp:localhost:-1",       // sign
      "tcp:localhost:0",        // below range
      "tcp:localhost:65536",    // above range
      "tcp:localhost:9100x",    // trailing garbage
      "tcp:not-a-host:9100",    // unresolvable host literal
      "http:localhost:9100",    // unknown scheme
      "/run/nanocache.sock",    // scheme required
  };
  for (const auto& spec : bad) {
    EXPECT_EQ(category_of([&] { parse_listen_spec(spec); }),
              ErrorCategory::kConfig)
        << "spec: '" << spec << "'";
  }
}

TEST(ListenSpecParse, RejectsOverlongUnixPath) {
  EXPECT_EQ(category_of([&] {
              parse_listen_spec("unix:/" + std::string(300, 'x'));
            }),
            ErrorCategory::kConfig);
}

TEST(Listener, DoubleBindIsConfigError) {
  const auto path = unique_sock("dbind");
  auto first = Listener::open(unix_spec(path));
  EXPECT_EQ(category_of([&] { Listener::open(unix_spec(path)); }),
            ErrorCategory::kConfig);
  first.close();
  ::unlink(path.c_str());

  ListenSpec tcp;
  tcp.kind = ListenKind::kTcp;
  tcp.host = "127.0.0.1";
  tcp.port = 0;  // ephemeral
  auto bound = Listener::open(tcp);
  ASSERT_GT(bound.bound_port(), 0);
  tcp.port = bound.bound_port();
  EXPECT_EQ(category_of([&] { Listener::open(tcp); }),
            ErrorCategory::kConfig);
}

TEST(Listener, UnixCloseUnlinksSocketFile) {
  const auto path = unique_sock("unlink");
  auto listener = Listener::open(unix_spec(path));
  EXPECT_EQ(::access(path.c_str(), F_OK), 0);
  listener.close();
  EXPECT_NE(::access(path.c_str(), F_OK), 0);
}

// --- byte-identity with batch mode ----------------------------------------

TEST(Serve, ResponsesAreByteIdenticalToBatch) {
  const auto service = make_service();
  const std::string input =
      "{\"schema_version\":1,\"id\":\"e1\",\"kind\":\"eval\"}\n"
      "\n"
      "this is not json\n"
      "{\"schema_version\":2,\"id\":\"o1\",\"kind\":\"optimize\","
      "\"scheme\":\"II\",\"delay\":{\"target_ps\":1400}}\n"
      "{\"schema_version\":1,\"id\":\"e2\",\"kind\":\"eval\"}\n"
      "{\"schema_version\":2,\"id\":\"cap\",\"kind\":\"capabilities\"}\n"
      // v3 requests exercising each design-space knob.
      "{\"schema_version\":3,\"id\":\"v3org\",\"kind\":\"eval\","
      "\"organization\":{\"associativity\":4,\"banks\":2}}\n"
      "{\"schema_version\":3,\"id\":\"v3node\",\"kind\":\"eval\","
      "\"node_nm\":45}\n"
      "{\"schema_version\":3,\"id\":\"v3gate\",\"kind\":\"optimize\","
      "\"scheme\":\"III\",\"delay\":{\"target_ps\":1400},"
      "\"power_gating\":{\"enabled\":true,\"perf_loss_budget\":0.1}}\n"
      "{\"schema_version\":3,\"id\":\"v3full\",\"kind\":\"eval\","
      "\"organization\":{\"associativity\":\"full\"}}\n";
  const std::string expected = batch_output(*service, input);

  Server server(service, {unix_spec(unique_sock("ident")), 1u << 20, 16, 4});
  server.start();
  EXPECT_EQ(serve_roundtrip(server.config().listen, input), expected);
  // The parse failure reported its input line number (3: after e1 and the
  // blank), exactly as batch mode numbers it.
  EXPECT_NE(expected.find("line 3"), std::string::npos);
  server.shutdown();
  server.wait();
}

TEST(Serve, CrlfLinesMatchBatch) {
  const auto service = make_service();
  const std::string input =
      "{\"schema_version\":1,\"id\":\"w1\",\"kind\":\"eval\"}\r\n"
      "{\"schema_version\":1,\"id\":\"w2\",\"kind\":\"eval\"}\r\n";
  const std::string expected = batch_output(*service, input);
  ASSERT_NE(expected.find("\"ok\":true"), std::string::npos);

  Server server(service, {unix_spec(unique_sock("crlf")), 1u << 20, 16, 2});
  server.start();
  EXPECT_EQ(serve_roundtrip(server.config().listen, input), expected);
  server.shutdown();
  server.wait();
}

TEST(Serve, PartialLineThenDisconnectIsStillAnswered) {
  // getline semantics: a final unterminated line counts.  The client
  // half-closes mid-line; the server answers it, then closes.
  const auto service = make_service();
  const std::string input =
      "{\"schema_version\":1,\"id\":\"full\",\"kind\":\"eval\"}\n"
      "{\"schema_version\":1,\"id\":\"torn\",\"kind\":\"eval\"}";  // no \n
  const std::string expected = batch_output(*service, input);

  Server server(service, {unix_spec(unique_sock("torn")), 1u << 20, 16, 2});
  server.start();
  const std::string got = serve_roundtrip(server.config().listen, input);
  EXPECT_EQ(got, expected);
  EXPECT_NE(got.find("\"id\":\"torn\""), std::string::npos);
  server.shutdown();
  server.wait();
}

// --- framing hardening ----------------------------------------------------

TEST(Serve, OversizedLineRejectedInBandAndConnectionSurvives) {
  const auto service = make_service();
  Server server(service,
                {unix_spec(unique_sock("long")), /*max_line_bytes=*/256,
                 /*queue_capacity=*/16, /*workers=*/2});
  server.start();

  std::string input(4096, 'x');  // far past the 256-byte bound
  input += '\n';
  input += "{\"schema_version\":1,\"id\":\"after\",\"kind\":\"eval\"}\n";
  const std::string got = serve_roundtrip(server.config().listen, input);

  std::istringstream lines(got);
  std::string first, second, extra;
  ASSERT_TRUE(std::getline(lines, first));
  ASSERT_TRUE(std::getline(lines, second));
  EXPECT_FALSE(std::getline(lines, extra));

  const auto err = json::parse(first);
  EXPECT_FALSE(err->get("ok")->as_bool());
  EXPECT_EQ(err->get("error")->get("code")->as_string(), "config");
  EXPECT_NE(err->get("error")->get("message")->as_string().find(
                "line 1: request line exceeds the maximum length of 256"),
            std::string::npos);
  // The next line on the same connection is served normally.
  const auto ok = json::parse(second);
  EXPECT_TRUE(ok->get("ok")->as_bool());
  EXPECT_EQ(ok->get("id")->as_string(), "after");

  EXPECT_EQ(server.stats().lines_rejected_too_long, 1u);
  server.shutdown();
  server.wait();
}

TEST(Serve, BlankLinesCountTowardLineNumbers) {
  const auto service = make_service();
  Server server(service, {unix_spec(unique_sock("blank")), 1u << 20, 16, 1});
  server.start();
  // Two blank-ish lines, then garbage: the error must say line 3.
  const std::string got =
      serve_roundtrip(server.config().listen, "\n \t \nnope\n");
  EXPECT_NE(got.find("line 3"), std::string::npos);
  // Blank lines are answered by nothing — exactly one response line.
  EXPECT_EQ(std::count(got.begin(), got.end(), '\n'), 1);
  server.shutdown();
  server.wait();
}

// --- control requests -----------------------------------------------------

TEST(Serve, MetricsControlRequestReturnsLiveSnapshot) {
  const auto service = make_service();
  Server server(service, {unix_spec(unique_sock("metrics")), 1u << 20, 16, 2});
  server.start();
  const std::string got = serve_roundtrip(
      server.config().listen,
      "{\"schema_version\":1,\"id\":\"e\",\"kind\":\"eval\"}\n"
      "{\"kind\":\"metrics\",\"id\":\"m\"}\n");
  std::istringstream lines(got);
  std::string eval_line, metrics_line;
  ASSERT_TRUE(std::getline(lines, eval_line));
  ASSERT_TRUE(std::getline(lines, metrics_line));

  const auto root = json::parse(metrics_line);
  EXPECT_EQ(root->get("id")->as_string(), "m");
  EXPECT_EQ(root->get("kind")->as_string(), "metrics");
  EXPECT_TRUE(root->get("ok")->as_bool());
  const auto result = root->get("result");
  ASSERT_NE(result, nullptr);
  ASSERT_NE(result->get("counters"), nullptr);
  // The snapshot is live: it has seen this server's own request counter.
  const auto served = result->get("counters")->get("server.requests");
  ASSERT_NE(served, nullptr);
  EXPECT_GE(served->as_int(), 2);
  EXPECT_EQ(server.stats().control_requests, 1u);
  server.shutdown();
  server.wait();
}

// --- cache sharing and concurrency ----------------------------------------

TEST(Serve, InterleavedClientsShareTheMemoCache) {
  const auto service = make_service();
  Server server(service, {unix_spec(unique_sock("share")), 1u << 20, 16, 4});
  server.start();
  const std::string request =
      "{\"schema_version\":2,\"kind\":\"optimize\",\"id\":\"same\","
      "\"scheme\":\"II\",\"delay\":{\"target_ps\":1500}}\n";

  Client a = Client::connect(server.config().listen);
  Client b = Client::connect(server.config().listen);
  // Sequence the sends so the second request deterministically finds the
  // memoized entry; concurrent identical misses may legally both compute.
  a.send(request);
  const auto ra = a.read_line();
  b.send(request);
  const auto rb = b.read_line();
  ASSERT_TRUE(ra.has_value());
  ASSERT_TRUE(rb.has_value());
  // Bitwise-equal answers across connections, computed once.
  EXPECT_EQ(*ra, *rb);
  EXPECT_NE(ra->find("\"ok\":true"), std::string::npos);
  EXPECT_GT(service->memo_stats().hits, 0u);
  a.close();
  b.close();
  server.shutdown();
  server.wait();
}

TEST(Serve, EightConcurrentClientsGetOrderedIdenticalStreams) {
  const auto service = make_service();
  // Small queue: admission control engages under this fan-in.
  Server server(service, {unix_spec(unique_sock("soak")), 1u << 20,
                          /*queue_capacity=*/4, /*workers=*/4});
  server.start();

  std::string input;
  for (int i = 0; i < 12; ++i) {
    input += "{\"schema_version\":1,\"id\":\"q" + std::to_string(i) +
             "\",\"kind\":\"eval\",\"vth_v\":" +
             (i % 3 == 0 ? "0.3" : i % 3 == 1 ? "0.35" : "0.4") + "}\n";
  }
  input += "broken json\n";
  input += "{\"schema_version\":2,\"id\":\"last\",\"kind\":\"capabilities\"}\n";
  const std::string expected = batch_output(*service, input);

  constexpr int kClients = 8;
  std::vector<std::string> got(kClients);
  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      try {
        got[c] = serve_roundtrip(server.config().listen, input);
      } catch (const Error&) {
        failures.fetch_add(1);
      }
    });
  }
  for (auto& t : clients) t.join();
  EXPECT_EQ(failures.load(), 0);
  for (int c = 0; c < kClients; ++c) {
    EXPECT_EQ(got[c], expected) << "client " << c;
  }
  const auto stats = server.stats();
  EXPECT_EQ(stats.connections_accepted, static_cast<std::uint64_t>(kClients));
  EXPECT_EQ(stats.requests_admitted,
            static_cast<std::uint64_t>(kClients * 14));
  server.shutdown();
  server.wait();
}

// --- transports and shutdown ----------------------------------------------

TEST(Serve, TcpEphemeralPortRoundTrips) {
  const auto service = make_service();
  ListenSpec spec;
  spec.kind = ListenKind::kTcp;
  spec.host = "127.0.0.1";
  spec.port = 0;  // ephemeral: only reachable by struct construction
  Server server(service, {spec, 1u << 20, 16, 2});
  server.start();
  ASSERT_GT(server.tcp_port(), 0);

  ListenSpec connect_spec = spec;
  connect_spec.port = server.tcp_port();
  const std::string input = "{\"schema_version\":1,\"kind\":\"eval\"}\n";
  EXPECT_EQ(serve_roundtrip(connect_spec, input),
            batch_output(*service, input));
  server.shutdown();
  server.wait();
}

TEST(Serve, ShutdownDrainsAndStopsAccepting) {
  const auto service = make_service();
  const auto path = unique_sock("drain");
  Server server(service, {unix_spec(path), 1u << 20, 16, 2});
  server.start();

  Client client = Client::connect(server.config().listen);
  client.send("{\"schema_version\":1,\"id\":\"pre\",\"kind\":\"eval\"}\n");
  const auto response = client.read_line();
  ASSERT_TRUE(response.has_value());
  EXPECT_NE(response->find("\"id\":\"pre\""), std::string::npos);

  server.shutdown();
  server.wait();
  // Admitted work was answered, the socket file is gone, and new
  // connections are refused.
  EXPECT_EQ(server.stats().responses_written, 1u);
  EXPECT_NE(::access(path.c_str(), F_OK), 0);
  EXPECT_EQ(category_of([&] { Client::connect(server.config().listen); }),
            ErrorCategory::kIo);
  // The connection drained to EOF rather than being severed.
  EXPECT_FALSE(client.read_line().has_value());
}

TEST(Serve, ShutdownIsIdempotentAndSafeWithInflightWork) {
  const auto service = make_service();
  Server server(service, {unix_spec(unique_sock("inflight")), 1u << 20,
                          /*queue_capacity=*/2, /*workers=*/2});
  server.start();
  Client client = Client::connect(server.config().listen);
  std::string burst;
  for (int i = 0; i < 6; ++i) {
    burst += "{\"schema_version\":1,\"id\":\"b" + std::to_string(i) +
             "\",\"kind\":\"eval\",\"tox_a\":1" + std::to_string(i % 5) +
             "}\n";
  }
  client.send(burst);
  server.shutdown();
  server.shutdown();  // idempotent
  server.wait();
  // Every request the reader admitted before the drain was answered, in
  // order; the tail may have been cut off by the read-side close, but the
  // stream is a strict prefix of the batch reference.
  std::string got;
  while (auto line = client.read_line()) {
    got += *line;
    got += '\n';
  }
  const std::string expected = batch_output(*service, burst);
  EXPECT_EQ(expected.compare(0, got.size(), got), 0)
      << "served responses must be a prefix of the batch reference";
}

}  // namespace
}  // namespace nanocache::server
