// Tests for cache organization arithmetic, validation and the physical
// partition search.
#include <gtest/gtest.h>

#include "cachemodel/cache_model.h"
#include "cachemodel/organization.h"
#include "util/error.h"

namespace nanocache::cachemodel {
namespace {

tech::DeviceModel make_dev() { return tech::DeviceModel(tech::bptm65()); }

CacheOrganization basic16k() {
  CacheOrganization org;
  org.size_bytes = 16 * 1024;
  org.block_bytes = 32;
  org.associativity = 2;
  org.ndwl = 4;
  org.ndbl = 4;
  return org;
}

TEST(Organization, DerivedQuantities) {
  const auto org = basic16k();
  EXPECT_EQ(org.num_sets(), 256u);
  EXPECT_EQ(org.data_bits(), 16u * 1024 * 8);
  EXPECT_EQ(org.rows_per_subarray(), 64u);
  EXPECT_EQ(org.cols_per_subarray(), 128u);
  EXPECT_EQ(org.num_subarrays(), 16u);
  EXPECT_EQ(org.row_decode_bits(), 6u);
}

TEST(Organization, TagBitsAccounting) {
  const auto org = basic16k();
  // 32-bit address - 5 offset - 8 index + 2 status = 21.
  EXPECT_EQ(org.tag_bits_per_block(), 21u);
  EXPECT_EQ(org.total_bits(),
            org.data_bits() + 256u * 2 * org.tag_bits_per_block());
}

TEST(Organization, NspdMapsSetsIntoRows) {
  auto org = basic16k();
  org.nspd = 2;
  org.ndbl = 2;
  EXPECT_EQ(org.rows_per_subarray(), 64u);
  EXPECT_EQ(org.cols_per_subarray(), 256u);
  EXPECT_NO_THROW(org.validate());
}

TEST(Organization, ValidatesHappyPath) { EXPECT_NO_THROW(basic16k().validate()); }

TEST(Organization, RejectsNonPowerOfTwo) {
  auto org = basic16k();
  org.size_bytes = 10000;
  EXPECT_THROW(org.validate(), Error);

  org = basic16k();
  org.block_bytes = 48;
  EXPECT_THROW(org.validate(), Error);

  org = basic16k();
  org.associativity = 3;
  EXPECT_THROW(org.validate(), Error);
}

TEST(Organization, RejectsOverPartitioning) {
  auto org = basic16k();
  org.ndbl = 64;  // 256 sets / 64 = 4 rows < 8 minimum
  EXPECT_THROW(org.validate(), Error);

  org = basic16k();
  org.ndwl = 64;  // 512 bits per row / 64 = 8 cols < 16 minimum
  EXPECT_THROW(org.validate(), Error);
}

TEST(Organization, RejectsTooNarrowAddress) {
  auto org = basic16k();
  org.address_bits = 12;  // fewer bits than offset+index
  EXPECT_THROW(org.validate(), Error);
}

TEST(Organization, DescribeMentionsGeometry) {
  const auto s = basic16k().describe();
  EXPECT_NE(s.find("16KB"), std::string::npos);
  EXPECT_NE(s.find("2-way"), std::string::npos);
  EXPECT_NE(s.find("Ndwl=4"), std::string::npos);
}

TEST(OptimalPartition, ProducesValidOrganization) {
  const auto dev = make_dev();
  CacheOrganization base;
  base.size_bytes = 64 * 1024;
  base.block_bytes = 32;
  base.associativity = 2;
  const auto org = optimal_partition(base, dev);
  EXPECT_NO_THROW(org.validate());
  EXPECT_EQ(org.size_bytes, base.size_bytes);
}

TEST(OptimalPartition, AvoidsDegenerateTiles) {
  const auto dev = make_dev();
  for (std::uint64_t size : {16ull << 10, 256ull << 10, 1ull << 20}) {
    const auto org = size >= (256ull << 10) ? l2_organization(size, dev)
                                            : l1_organization(size, dev);
    EXPECT_GE(org.rows_per_subarray(), 16u) << org.describe();
    EXPECT_LE(org.rows_per_subarray(), 1024u) << org.describe();
    EXPECT_LE(org.cols_per_subarray(), 1024u) << org.describe();
  }
}

TEST(OptimalPartition, BeatsUnpartitionedOnDelay) {
  const auto dev = make_dev();
  CacheOrganization flat;
  flat.size_bytes = 256 * 1024;
  flat.block_bytes = 64;
  flat.associativity = 8;
  // Unpartitioned 256 KB: 512 sets x 4096 bits — a terrible tile, but it
  // exceeds the search's own 1024-column bound, so compare against a
  // minimally partitioned variant instead.
  flat.ndwl = 4;
  flat.ndbl = 1;
  flat.validate();
  const auto best = optimal_partition(flat, dev);
  const tech::DeviceKnobs nominal{0.30, dev.params().tox_nominal_a};
  CacheModel flat_model(flat, tech::DeviceModel(dev.params()));
  CacheModel best_model(best, tech::DeviceModel(dev.params()));
  EXPECT_LE(best_model.evaluate_uniform(nominal).access_time_s,
            flat_model.evaluate_uniform(nominal).access_time_s);
}

TEST(Factories, L1AndL2Defaults) {
  const auto dev = make_dev();
  const auto l1 = l1_organization(16 * 1024, dev);
  EXPECT_EQ(l1.block_bytes, 32u);
  EXPECT_EQ(l1.associativity, 2u);
  const auto l2 = l2_organization(1024 * 1024, dev);
  EXPECT_EQ(l2.block_bytes, 64u);
  EXPECT_EQ(l2.associativity, 8u);
  EXPECT_EQ(l2.data_bus_bits, 128u);
}

TEST(Factories, ScaleAcrossPaperSizeRange) {
  const auto dev = make_dev();
  for (std::uint64_t size = 4 * 1024; size <= 64 * 1024; size *= 2) {
    EXPECT_NO_THROW(l1_organization(size, dev).validate()) << size;
  }
  for (std::uint64_t size = 256 * 1024; size <= 4096 * 1024; size *= 2) {
    EXPECT_NO_THROW(l2_organization(size, dev).validate()) << size;
  }
}

}  // namespace
}  // namespace nanocache::cachemodel
