// The sharded MemoCache: shard-count validation, concurrent lookup/publish
// semantics (pointer-identical values, exact hit+miss accounting), and the
// ServiceConfig::memo_shards knob — including that the shard count is a pure
// concurrency knob with byte-identical request output.
#include "api/memo_cache.h"

#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "api/batch_io.h"
#include "nanocache/service.h"
#include "util/error.h"

namespace nanocache::api {
namespace {

TEST(MemoCache, DefaultAndExplicitShardCounts) {
  EXPECT_EQ(MemoCache().shard_count(), MemoCache::kDefaultShards);
  EXPECT_EQ(MemoCache(0).shard_count(), MemoCache::kDefaultShards);
  EXPECT_EQ(MemoCache(1).shard_count(), 1u);
  EXPECT_EQ(MemoCache(64).shard_count(), 64u);
  EXPECT_EQ(MemoCache(4096).shard_count(), 4096u);
}

TEST(MemoCache, RejectsInvalidShardCounts) {
  for (std::size_t bad : {std::size_t{3}, std::size_t{6}, std::size_t{100},
                          std::size_t{8192}}) {
    try {
      MemoCache cache(bad);
      FAIL() << "accepted shard count " << bad;
    } catch (const Error& e) {
      EXPECT_EQ(e.category(), ErrorCategory::kConfig) << bad;
    }
  }
}

TEST(MemoCache, HitReturnsTheStoredPointer) {
  MemoCache cache(4);
  const auto first = cache.get_or_compute<int>(
      "eval|k", [] { return std::make_shared<const int>(7); });
  const auto second = cache.get_or_compute<int>(
      "eval|k", [] { return std::make_shared<const int>(99); });
  EXPECT_EQ(first.get(), second.get());
  EXPECT_EQ(*second, 7);
  const auto stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.entries, 1u);
}

TEST(MemoCache, ConcurrentLookupsAgreeAndCountExactly) {
  constexpr int kThreads = 8;
  constexpr int kKeys = 64;
  constexpr int kRounds = 50;
  MemoCache cache(16);

  // got[t][k]: the value thread t observed for key k on its last round.
  std::vector<std::vector<std::shared_ptr<const int>>> got(
      kThreads, std::vector<std::shared_ptr<const int>>(kKeys));
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int round = 0; round < kRounds; ++round) {
        for (int k = 0; k < kKeys; ++k) {
          got[t][k] = cache.get_or_compute<int>(
              "eval|key" + std::to_string(k),
              [k] { return std::make_shared<const int>(k); });
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();

  // Racing first-inserts may compute a key twice, but everyone must end up
  // holding the one published object, with the right value.
  for (int k = 0; k < kKeys; ++k) {
    for (int t = 0; t < kThreads; ++t) {
      ASSERT_NE(got[t][k], nullptr);
      EXPECT_EQ(*got[t][k], k);
      EXPECT_EQ(got[t][k].get(), got[0][k].get()) << "thread " << t
                                                  << " key " << k;
    }
  }
  const auto stats = cache.stats();
  EXPECT_EQ(stats.entries, static_cast<std::size_t>(kKeys));
  // Every completed lookup is exactly one hit or one miss.
  EXPECT_EQ(stats.hits + stats.misses,
            static_cast<std::size_t>(kThreads) * kRounds * kKeys);
  EXPECT_GE(stats.misses, static_cast<std::size_t>(kKeys));
}

TEST(ServiceMemoShards, CreateRejectsNonPowerOfTwo) {
  ServiceConfig config;
  config.memo_shards = 3;
  const auto out = Service::create(config);
  ASSERT_FALSE(out.ok());
  EXPECT_EQ(out.error().code, ErrorCode::kConfig);
}

TEST(ServiceMemoShards, ShardCountDoesNotChangeBytes) {
  std::string input;
  for (int i = 0; i < 6; ++i) {
    input += "{\"schema_version\":1,\"id\":\"s" + std::to_string(i) +
             "\",\"kind\":\"eval\",\"vth_v\":" +
             (i % 2 == 0 ? "0.25" : "0.4") + ",\"tox_a\":" +
             (i < 3 ? "11" : "13") + "}\n";
  }

  std::string reference;
  for (std::size_t shards : {std::size_t{0}, std::size_t{1}, std::size_t{64},
                             std::size_t{4096}}) {
    ServiceConfig config;
    config.memo_shards = shards;
    const auto out = Service::create(config);
    ASSERT_TRUE(out.ok()) << out.error().message;
    std::istringstream in(input);
    std::ostringstream os;
    run_batch_jsonl(*out.value(), in, os);
    if (reference.empty()) {
      reference = os.str();
      EXPECT_FALSE(reference.empty());
    } else {
      EXPECT_EQ(os.str(), reference) << "shards=" << shards;
    }
  }
}

}  // namespace
}  // namespace nanocache::api
