// Number-formatting edge cases of the batch wire format, and the
// error-in-place guarantee: a response that cannot serialize (non-finite
// doubles) is replaced by an in-band error line preserving id and order,
// never an abort.  Companions to test_api_batch.cc, which covers the
// happy-path JSONL round trips.
#include "util/json.h"

#include <gtest/gtest.h>

#include <cfloat>
#include <cmath>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "api/batch_io.h"
#include "nanocache/api.h"
#include "util/error.h"

namespace nanocache::api {
namespace {

double round_trip(double d) {
  return json::parse(json::format_double(d))->as_double();
}

TEST(FormatDouble, ShortestRoundTripIsBitExact) {
  const std::vector<double> cases = {
      0.0,
      1.0,
      -1.0,
      0.1,                                    // classic non-representable
      1.0 / 3.0,                              // needs all 17 digits
      3.141592653589793,
      6.02214076e23,
      1e-308,                                 // near the normal/subnormal edge
      2.2250738585072014e-308,                // DBL_MIN
      4.9406564584124654e-324,                // smallest subnormal
      DBL_MAX,
      -DBL_MAX,
      1234567890123456.7,                     // 17 significant digits
  };
  for (const double d : cases) {
    const double back = round_trip(d);
    EXPECT_EQ(std::signbit(back), std::signbit(d)) << d;
    EXPECT_EQ(back, d) << json::format_double(d);
  }
}

TEST(FormatDouble, NegativeZeroKeepsItsSign) {
  const std::string s = json::format_double(-0.0);
  EXPECT_EQ(s.front(), '-') << s;
  const double back = json::parse(s)->as_double();
  EXPECT_TRUE(std::signbit(back));
  EXPECT_EQ(back, 0.0);
}

TEST(FormatDouble, RejectsNonFiniteWithNumericDomain) {
  for (const double d : {std::numeric_limits<double>::quiet_NaN(),
                         std::numeric_limits<double>::infinity(),
                         -std::numeric_limits<double>::infinity()}) {
    try {
      json::format_double(d);
      FAIL() << "expected Error for non-finite double";
    } catch (const Error& e) {
      EXPECT_EQ(e.category(), ErrorCategory::kNumericDomain);
    }
  }
}

TEST(ResponseLine, NonFiniteResponseBecomesErrorLineInPlace) {
  // A response whose payload carries a NaN cannot serialize; the wire
  // layer must substitute an in-band error response that preserves the
  // request id — never throw out of the batch loop.
  Response poisoned;
  poisoned.id = "poisoned-42";
  poisoned.kind = RequestKind::kEval;
  poisoned.ok = true;
  poisoned.eval.access_time_ps = std::numeric_limits<double>::quiet_NaN();

  const std::string line = response_line(poisoned);
  const auto root = json::parse(line);  // the fallback always serializes
  EXPECT_EQ(root->get("id")->as_string(), "poisoned-42");
  EXPECT_FALSE(root->get("ok")->as_bool());
  EXPECT_EQ(root->get("error")->get("code")->as_string(), "numeric-domain");
  EXPECT_NE(root->get("error")->get("message")->as_string().find(
                "serialization"),
            std::string::npos);
}

TEST(ResponseLine, SerializableResponsePassesThroughUnchanged) {
  Response ok;
  ok.id = "fine";
  ok.kind = RequestKind::kEval;
  ok.ok = true;
  ok.eval.access_time_ps = 1341.5;
  EXPECT_EQ(response_line(ok), response_to_json(ok));
}

std::shared_ptr<Service> make_service() {
  auto service = Service::create({});
  EXPECT_TRUE(service) << "default ServiceConfig must be valid";
  return service.value();
}

TEST(BatchJsonl, MissingTrailingNewlineStillServesLastLine) {
  const auto service = make_service();
  std::istringstream in(
      "{\"schema_version\":1,\"id\":\"a\",\"kind\":\"eval\"}\n"
      "{\"schema_version\":1,\"id\":\"b\",\"kind\":\"eval\"}");  // no \n
  std::ostringstream out;
  const auto stats = run_batch_jsonl(*service, in, out);
  EXPECT_EQ(stats.requests, 2u);
  std::vector<std::string> lines;
  std::istringstream result(out.str());
  for (std::string line; std::getline(result, line);) lines.push_back(line);
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(json::parse(lines[0])->get("id")->as_string(), "a");
  EXPECT_EQ(json::parse(lines[1])->get("id")->as_string(), "b");
  EXPECT_TRUE(json::parse(lines[1])->get("ok")->as_bool());
}

TEST(BatchJsonl, CrlfLineEndingsParse) {
  const auto service = make_service();
  std::istringstream in(
      "{\"schema_version\":1,\"id\":\"win1\",\"kind\":\"eval\"}\r\n"
      "{\"schema_version\":1,\"id\":\"win2\",\"kind\":\"eval\"}\r\n");
  std::ostringstream out;
  const auto stats = run_batch_jsonl(*service, in, out);
  EXPECT_EQ(stats.requests, 2u);
  std::istringstream result(out.str());
  for (std::string line; std::getline(result, line);) {
    const auto root = json::parse(line);
    EXPECT_TRUE(root->get("ok")->as_bool())
        << "CRLF must not poison the JSON: " << line;
  }
}

TEST(BatchJsonl, NonFiniteKnobYieldsErrorLineInPlaceNotAbort) {
  // End-to-end version of the response_line test: an extreme knob drives
  // the evaluation to non-finite outputs, the serializer rejects them,
  // and the batch emits an error response at that position while the
  // neighbors are served normally.
  const auto service = make_service();
  std::istringstream in(
      "{\"schema_version\":1,\"id\":\"ok1\",\"kind\":\"eval\"}\n"
      "{\"schema_version\":1,\"id\":\"bad\",\"kind\":\"eval\","
      "\"vth_v\":-1e308}\n"
      "{\"schema_version\":1,\"id\":\"ok2\",\"kind\":\"eval\"}\n");
  std::ostringstream out;
  const auto stats = run_batch_jsonl(*service, in, out);
  EXPECT_EQ(stats.requests, 3u);
  std::vector<std::string> lines;
  std::istringstream result(out.str());
  for (std::string line; std::getline(result, line);) lines.push_back(line);
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_EQ(json::parse(lines[0])->get("id")->as_string(), "ok1");
  EXPECT_TRUE(json::parse(lines[0])->get("ok")->as_bool());
  const auto bad = json::parse(lines[1]);
  EXPECT_EQ(bad->get("id")->as_string(), "bad");
  EXPECT_FALSE(bad->get("ok")->as_bool());
  EXPECT_EQ(json::parse(lines[2])->get("id")->as_string(), "ok2");
  EXPECT_TRUE(json::parse(lines[2])->get("ok")->as_bool());
}

}  // namespace
}  // namespace nanocache::api
